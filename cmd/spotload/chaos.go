package main

// The -chaos scenario: failure-domain smoke for the whole PR 8 surface.
//
// Topology (all in-process):
//
//	leader (accelerated study)
//	  ├── durable follower F1, replicating through a chaos.Proxy
//	  ├── memory follower F2, attached directly (the reference replica)
//	  └── gateway over {leader, F1, F2} with a fault-injecting transport
//	      (delays + random connection resets), retries, hedging, and
//	      breaker-based ejection
//
// Script, under continuous gateway read load:
//
//	1. warm up, then kill F1's replication stream repeatedly (proxy
//	   connection kills) — F1 must reconnect with resume, no gap
//	2. restart F1 from its data dir — it must replay locally and resume
//	   the stream from its durable cursor
//	3. halt the leader's simulation (generation freezes, streams stay
//	   up) and prove exactly-once replication: once both replicas drain
//	   to the frozen state, F1 and F2 must answer absolute-window
//	   queries byte-identically, ETags included (a duplicated or lost
//	   event would skew F1's generations and change every tag)
//	4. kill the leader — the fleet keeps answering from the replicas
//	5. promote F1 (no force — the split-brain guard must accept a dead
//	   leader) and watch its store generation advance: the promoted
//	   node accepts writes
//	6. assert gateway read availability stayed >= 99% through all of it
//
// The run writes a phase-by-phase report (printed, and archived in CI
// next to the bench and load reports).

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/chaos"
	"spotlight/internal/daemon"
	"spotlight/internal/gateway"
	"spotlight/internal/obs"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

// chaosAvailabilityTarget is the acceptance floor for gateway reads.
const chaosAvailabilityTarget = 99.0

// chaosTally counts gateway read outcomes.
type chaosTally struct {
	total atomic.Uint64
	ok    atomic.Uint64
}

func (t *chaosTally) availability() float64 {
	total := t.total.Load()
	if total == 0 {
		return 0
	}
	return 100 * float64(t.ok.Load()) / float64(total)
}

// runChaos executes the scenario and returns an error unless every
// assertion holds.
func runChaos(o options) error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var report strings.Builder
	logf := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		fmt.Println(line)
		report.WriteString(line + "\n")
	}
	logf("chaos: failure-domain smoke starting")

	dataDir, err := os.MkdirTemp("", "spotlight-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()

	// Leader with an aggressively accelerated study so every phase has
	// fresh appends to replicate.
	leader, err := daemon.Start(daemon.Options{
		Addr: "127.0.0.1:0", Seed: 42, Tick: 5 * time.Minute, Speed: 600, MaxWatchers: 64,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return fmt.Errorf("chaos: start leader: %w", err)
	}
	leaderClosed := false
	closers = append(closers, func() {
		if !leaderClosed {
			leader.Close()
		}
	})
	if err := waitForProbes(ctx, leader.BaseURL()); err != nil {
		return fmt.Errorf("chaos: leader ingest: %w", err)
	}
	logf("chaos: leader up at %s", leader.BaseURL())

	// F1 replicates through a TCP chaos proxy so its stream can be killed
	// on the wire.
	leaderHost := strings.TrimPrefix(leader.BaseURL(), "http://")
	proxy, err := chaos.NewProxy("127.0.0.1:0", leaderHost)
	if err != nil {
		return fmt.Errorf("chaos: proxy: %w", err)
	}
	closers = append(closers, proxy.Close)

	followOpts := daemon.Options{
		Addr: "127.0.0.1:0", Tick: 5 * time.Minute, Speed: 600,
		DataDir: dataDir, SnapInterval: time.Hour, MaxWatchers: 64,
		Follow: "http://" + proxy.Addr(), FollowBackfill: 24 * time.Hour,
		FollowStaleAfter: time.Second,
	}
	// Each daemon life gets its own registry: series describe one
	// process, and the restart below must not inherit the first life's
	// counts.
	followOpts.Metrics = obs.NewRegistry()
	f1, err := daemon.Start(followOpts)
	if err != nil {
		return fmt.Errorf("chaos: start durable follower: %w", err)
	}
	f1Closed := false
	closers = append(closers, func() {
		if !f1Closed {
			f1.Close()
		}
	})

	// F2 is the never-killed reference replica.
	f2, err := daemon.Start(daemon.Options{
		Addr: "127.0.0.1:0", Follow: leader.BaseURL(), FollowBackfill: 24 * time.Hour,
		FollowStaleAfter: time.Second, MaxWatchers: 64,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return fmt.Errorf("chaos: start memory follower: %w", err)
	}
	closers = append(closers, func() { f2.Close() })
	logf("chaos: followers up — durable %s (via proxy %s), memory %s", f1.BaseURL(), proxy.Addr(), f2.BaseURL())

	// Gateway over all three nodes, its upstream transport injecting
	// per-request delays and random connection resets for the whole run.
	tr := chaos.NewTransport(nil, 42)
	tr.SetDelay(time.Millisecond, 4*time.Millisecond)
	tr.SetResetRate(0.01)
	f1URL := f1.BaseURL()
	gw, err := gateway.New(gateway.Config{
		Nodes:         []string{leader.BaseURL(), f1URL, f2.BaseURL()},
		Timeout:       5 * time.Second,
		HTTPClient:    &http.Client{Transport: tr},
		Retries:       2,
		HedgeAfter:    150 * time.Millisecond,
		FailThreshold: 3,
		EjectFor:      time.Second,
		ProbeInterval: 250 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("chaos: build gateway: %w", err)
	}
	gw.EnableMetrics(obs.NewRegistry())
	closers = append(closers, gw.Close)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("chaos: gateway listen: %w", err)
	}
	gwSrv := &http.Server{Handler: gw.Handler()}
	go func() { _ = gwSrv.Serve(ln) }()
	closers = append(closers, func() {
		shutCtx, c := context.WithTimeout(context.Background(), 3*time.Second)
		defer c()
		_ = gwSrv.Shutdown(shutCtx)
	})
	gwURL := "http://" + ln.Addr().String()
	logf("chaos: gateway up at %s (injected: %s)", gwURL, tr)

	// Continuous read load against the gateway: mixed scope-less and
	// market-scoped batches, tallying availability.
	gc, err := client.New(gwURL, &http.Client{Timeout: 5 * time.Second})
	if err != nil {
		return err
	}
	markets, err := gc.Markets(ctx, "", "")
	if err != nil || len(markets) == 0 {
		return fmt.Errorf("chaos: market catalog via gateway: %w", err)
	}
	var tally chaosTally
	loadCtx, stopLoad := context.WithCancel(ctx)
	defer stopLoad()
	var loadWG sync.WaitGroup
	for w := 0; w < 3; w++ {
		loadWG.Add(1)
		go func(w int) {
			defer loadWG.Done()
			m := markets[w%len(markets)].Market
			for loadCtx.Err() == nil {
				rctx, rcancel := context.WithTimeout(loadCtx, 5*time.Second)
				resp, err := gc.Batch(rctx,
					api.Query{Kind: api.KindSummary},
					api.Query{Kind: api.KindStable, N: 5, Window: api.Last(24 * time.Hour)},
					api.Query{Kind: api.KindPrices, Market: m, Window: api.Last(6 * time.Hour)},
				)
				rcancel()
				if loadCtx.Err() != nil {
					return // shutdown race, not an availability sample
				}
				tally.total.Add(1)
				good := err == nil
				if good {
					for _, res := range resp.Results {
						if res.Error != nil && res.Error.Code == api.CodeUpstream {
							good = false
						}
					}
				}
				if good {
					tally.ok.Add(1)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}(w)
	}

	// Phase 1: warm load, then repeated replication-stream kills.
	time.Sleep(1500 * time.Millisecond)
	for i := 0; i < 3; i++ {
		proxy.KillConnections()
		time.Sleep(300 * time.Millisecond)
	}
	if err := waitCaughtUp(ctx, f1URL, leader.BaseURL()); err != nil {
		return fmt.Errorf("chaos: follower did not recover from stream kills: %w", err)
	}
	logf("chaos: phase 1 ok — replication survived 3 stream kills (availability so far %.2f%%)", tally.availability())

	// Phase 2: restart the durable follower; it must come back from its
	// WAL'd store + durable cursor and catch up.
	if err := f1.Close(); err != nil {
		return fmt.Errorf("chaos: stop durable follower: %w", err)
	}
	f1Closed = true
	time.Sleep(700 * time.Millisecond) // fleet runs a node short; load keeps flowing
	followOpts.Metrics = obs.NewRegistry()
	f1, err = daemon.Start(followOpts)
	if err != nil {
		return fmt.Errorf("chaos: restart durable follower: %w", err)
	}
	f1Closed = false
	if f1.BaseURL() != f1URL {
		// The restarted node got a fresh ephemeral port; repoint checks at
		// it (the gateway keeps the old URL and treats it as a dead node —
		// which is itself part of the failure drill).
		logf("chaos: follower restarted on %s (was %s); gateway sees the old address as dead", f1.BaseURL(), f1URL)
	}
	if err := waitCaughtUp(ctx, f1.BaseURL(), leader.BaseURL()); err != nil {
		return fmt.Errorf("chaos: restarted follower did not catch up: %w", err)
	}
	st, err := nodeHealth(ctx, f1.BaseURL())
	if err != nil {
		return err
	}
	if st.Replication == nil || st.Replication.Role != "follower" {
		return fmt.Errorf("chaos: restarted node is not reporting follower state: %+v", st.Replication)
	}
	if st.Replication.Resyncs > 0 {
		// A windowed resync is at-least-once; the byte-identical check
		// below would fail anyway, but fail loudly at the cause.
		return fmt.Errorf("chaos: restarted follower fell out of the replay ring (%d resyncs) — exactly-once resume not exercised", st.Replication.Resyncs)
	}
	logf("chaos: phase 2 ok — durable follower restarted from %s and resumed (gen %d, cursor %s)",
		dataDir, st.Store.Generation, st.Replication.LastEventID)

	// Phase 3: halt the leader's simulation — its generation freezes while
	// streams stay up, so both replicas drain to exactly the final state.
	// (An abrupt kill would freeze each follower at whatever its own
	// connection had delivered; the exactly-once comparison needs a common
	// target, and "halt, drain, then die" is also the realistic graceful-
	// handoff sequence.)
	leader.Halt()
	if err := waitQuiesced(ctx, f1.BaseURL(), f2.BaseURL()); err != nil {
		return fmt.Errorf("chaos: replicas did not settle after leader halt: %w", err)
	}
	compared, err := compareReplicas(ctx, f1.BaseURL(), f2.BaseURL(), markets)
	if err != nil {
		return fmt.Errorf("chaos: exactly-once check failed: %w", err)
	}
	logf("chaos: phase 3 ok — %d absolute-window responses byte-identical across restarted and reference replicas (zero duplicated or lost events)", compared)

	// Phase 4: now kill the leader outright, mid-load.
	if err := leader.Close(); err != nil {
		return fmt.Errorf("chaos: kill leader: %w", err)
	}
	leaderClosed = true
	logf("chaos: phase 4 — leader killed")

	// Phase 5: promote the durable follower. The split-brain guard must
	// accept (leader confirmed dead, stream stale) without force.
	f1c, err := client.New(f1.BaseURL(), nil)
	if err != nil {
		return err
	}
	if err := waitDisconnected(ctx, f1.BaseURL()); err != nil {
		return fmt.Errorf("chaos: follower still thinks the dead leader streams: %w", err)
	}
	genBefore := st.Store.Generation
	if st, err = nodeHealth(ctx, f1.BaseURL()); err == nil {
		genBefore = st.Store.Generation
	}
	if _, err := f1c.Promote(ctx, false); err != nil {
		return fmt.Errorf("chaos: promote refused: %w", err)
	}
	if err := waitGenAbove(ctx, f1.BaseURL(), genBefore); err != nil {
		return fmt.Errorf("chaos: promoted leader is not appending: %w", err)
	}
	st, err = nodeHealth(ctx, f1.BaseURL())
	if err != nil {
		return err
	}
	if st.Status != "ok" || st.Replication == nil || st.Replication.Role != "promoted" {
		return fmt.Errorf("chaos: promoted node health: status %q, replication %+v", st.Status, st.Replication)
	}
	logf("chaos: phase 5 ok — follower promoted, store generation %d > %d, health %q", st.Store.Generation, genBefore, st.Status)

	// Phase 6: the verdict. First scrape every surviving node's metrics:
	// the drill also proves the observability layer serves its core
	// series on a promoted node, a live follower, and the gateway.
	time.Sleep(500 * time.Millisecond)
	stopLoad()
	loadWG.Wait()
	summary, dump, err := scrapeMetrics(ctx, []scrapeTarget{
		followerTarget("f1-promoted", f1.BaseURL()),
		followerTarget("f2", f2.BaseURL()),
		gatewayTarget("gateway", gwURL),
	})
	if err != nil {
		return fmt.Errorf("chaos: %w", err)
	}
	for _, line := range summary {
		logf("chaos: %s", line)
	}
	if err := writeMetricsDump(o.metricsDump, dump); err != nil {
		return err
	}
	avail := tally.availability()
	logf("chaos: load summary — %d gateway reads, %d ok, availability %.2f%% (target >= %.0f%%)",
		tally.total.Load(), tally.ok.Load(), avail, chaosAvailabilityTarget)
	if avail < chaosAvailabilityTarget {
		logf("chaos: FAIL — availability below target")
		writeChaosReport(o.report, report.String())
		return fmt.Errorf("chaos: gateway availability %.2f%% below %.0f%%", avail, chaosAvailabilityTarget)
	}
	logf("chaos: ok — every failure domain held")
	return writeChaosReport(o.report, report.String())
}

func writeChaosReport(path, content string) error {
	if path == "" {
		return nil
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return fmt.Errorf("write chaos report: %w", err)
	}
	fmt.Printf("spotload: chaos report written to %s\n", path)
	return nil
}

// nodeHealth fetches one node's /v2/health.
func nodeHealth(ctx context.Context, baseURL string) (*api.Health, error) {
	c, err := client.New(baseURL, nil)
	if err != nil {
		return nil, err
	}
	hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	return c.Health(hctx)
}

// waitCaughtUp polls until follower's global generation reaches the
// leader's (sampling the leader first keeps the race benign: the
// follower may be ahead of the sample, never behind the truth).
func waitCaughtUp(ctx context.Context, followerURL, leaderURL string) error {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	polls := 0
	for {
		lh, lerr := nodeHealth(ctx, leaderURL)
		fh, ferr := nodeHealth(ctx, followerURL)
		if lerr == nil && ferr == nil &&
			fh.Replication != nil && fh.Replication.Connected &&
			fh.Store.Generation >= lh.Store.Generation && lh.Store.Generation > 0 {
			return nil
		}
		if polls++; polls%5 == 0 {
			state := fmt.Sprintf("leader err %v, follower err %v", lerr, ferr)
			if lerr == nil && ferr == nil {
				state = fmt.Sprintf("leader gen %d, follower gen %d, replication %+v",
					lh.Store.Generation, fh.Store.Generation, fh.Replication)
			}
			fmt.Printf("chaos: still waiting for catch-up: %s\n", state)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// waitQuiesced polls until both nodes report the same global generation
// twice in a row — the replicas drained the dead leader's final events.
func waitQuiesced(ctx context.Context, aURL, bURL string) error {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	var last uint64
	stable := 0
	polls := 0
	for {
		ah, aerr := nodeHealth(ctx, aURL)
		bh, berr := nodeHealth(ctx, bURL)
		if polls++; polls%10 == 0 {
			if aerr == nil && berr == nil {
				fmt.Printf("chaos: still waiting for quiesce: a gen %d (%+v), b gen %d (%+v)\n",
					ah.Store.Generation, ah.Replication, bh.Store.Generation, bh.Replication)
			} else {
				fmt.Printf("chaos: still waiting for quiesce: a err %v, b err %v\n", aerr, berr)
			}
		}
		if aerr == nil && berr == nil && ah.Store.Generation == bh.Store.Generation && ah.Store.Generation > 0 {
			if ah.Store.Generation == last {
				stable++
				if stable >= 2 {
					return nil
				}
			} else {
				stable = 0
				last = ah.Store.Generation
			}
		} else {
			stable = 0
		}
		select {
		case <-ctx.Done():
			if aerr != nil || berr != nil {
				return fmt.Errorf("health polls failing (a: %v, b: %v): %w", aerr, berr, ctx.Err())
			}
			return ctx.Err()
		case <-time.After(150 * time.Millisecond):
		}
	}
}

// waitDisconnected polls until the follower reports its stream down
// (the staleness detector fired after the leader died).
func waitDisconnected(ctx context.Context, baseURL string) error {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for {
		h, err := nodeHealth(ctx, baseURL)
		if err == nil && h.Replication != nil && !h.Replication.Connected {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(150 * time.Millisecond):
		}
	}
}

// waitGenAbove polls until the node's global generation exceeds floor —
// proof a promoted node's own study is appending.
func waitGenAbove(ctx context.Context, baseURL string, floor uint64) error {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for {
		h, err := nodeHealth(ctx, baseURL)
		if err == nil && h.Store.Generation > floor {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// compareReplicas fetches a battery of absolute-window /v1 responses
// from both nodes and requires byte-identical bodies AND equal ETags.
// Absolute windows keep the service clock out of the tags, so equality
// is exactly "same records, same generations, same salt" — the
// exactly-once property. Returns how many URLs were compared.
func compareReplicas(ctx context.Context, aURL, bURL string, markets []api.MarketInfo) (int, error) {
	h, err := nodeHealth(ctx, bURL)
	if err != nil {
		return 0, err
	}
	from := url.QueryEscape("2000-01-01T00:00:00Z")
	to := url.QueryEscape(h.Now.Add(time.Hour).UTC().Format(time.RFC3339))
	win := "from=" + from + "&to=" + to

	paths := []string{
		"/v1/stable?n=25&" + win,
		"/v1/volatile?n=25&" + win,
	}
	n := len(markets)
	if n > 3 {
		n = 3
	}
	for _, m := range markets[:n] {
		id := url.QueryEscape(m.Market)
		paths = append(paths,
			"/v1/prices?market="+id+"&"+win,
			"/v1/outages?market="+id+"&"+win,
			"/v1/unavailability?market="+id+"&kind=spot&"+win,
		)
	}
	for _, p := range paths {
		aBody, aTag, err := fetchTagged(ctx, aURL+p)
		if err != nil {
			return 0, fmt.Errorf("fetch %s from restarted replica: %w", p, err)
		}
		bBody, bTag, err := fetchTagged(ctx, bURL+p)
		if err != nil {
			return 0, fmt.Errorf("fetch %s from reference replica: %w", p, err)
		}
		if aTag == "" || aTag != bTag {
			return 0, fmt.Errorf("%s: ETag mismatch (restarted %q vs reference %q)", p, aTag, bTag)
		}
		if string(aBody) != string(bBody) {
			return 0, fmt.Errorf("%s: bodies differ (%d vs %d bytes)", p, len(aBody), len(bBody))
		}
	}
	return len(paths), nil
}

// fetchTagged GETs one URL raw, returning body bytes and the ETag.
func fetchTagged(ctx context.Context, u string) ([]byte, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get(api.HeaderETag), nil
}
