// Command spotload drives a SpotLight serving surface with a mixed read
// workload and reports per-operation latency distributions
// (p50/p90/p95/p99/max), throughput, and live-stream delivery counts.
//
// Usage:
//
//	spotload -targets http://gateway:8090 [-duration 10s]
//	         [-concurrency 8] [-watchers 2] [-report FILE]
//	spotload -smoke [-report FILE]
//	spotload -chaos [-report FILE]
//
// With -targets the harness loads whatever is listening there — a single
// spotlightd, a follower, or a spotlight-gateway fleet front.
//
// With -smoke the harness is self-contained: it boots a leader, attaches
// one read replica over /v2/watch, fronts both with a scatter-gather
// gateway, runs a short load against the gateway, and exits non-zero
// unless every request succeeded and both nodes answered health checks —
// the CI proof that the whole scale-out path (replication, routing,
// batch splitting) serves under concurrent load. The report is printed
// and, with -report, also written to a file for archiving.
//
// With -chaos the harness runs the failure-domain drill instead: a
// leader, a durable follower replicating through a fault-injecting TCP
// proxy, a memory follower, and a health-aware gateway whose upstream
// transport injects delays and connection resets. Under continuous
// gateway load it kills the replication stream, restarts the durable
// follower from its data dir, kills the leader, byte-compares the
// replicas, and promotes the durable follower — exiting non-zero unless
// replication is exactly-once and gateway read availability stays at or
// above 99%. See cmd/spotload/chaos.go for the full script.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"spotlight/internal/daemon"
	"spotlight/internal/gateway"
	"spotlight/internal/loadgen"
	"spotlight/internal/obs"
	"spotlight/pkg/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).
			Error("fatal", "component", "spotload", "err", err)
		os.Exit(1)
	}
}

type options struct {
	targets     []string
	duration    time.Duration
	concurrency int
	watchers    int
	report      string
	metricsDump string
	smoke       bool
	chaos       bool
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("spotload", flag.ContinueOnError)
	var (
		o       options
		targets string
	)
	fs.StringVar(&targets, "targets", "", "comma-separated base URLs to load")
	fs.DurationVar(&o.duration, "duration", 10*time.Second, "load duration")
	fs.IntVar(&o.concurrency, "concurrency", 8, "concurrent workers")
	fs.IntVar(&o.watchers, "watchers", 2, "live /v2/watch streams held open for the run")
	fs.StringVar(&o.report, "report", "", "also write the report to this file")
	fs.StringVar(&o.metricsDump, "metrics-dump", "",
		"write every node's raw /metrics exposition to this file at the end of the run")
	fs.BoolVar(&o.smoke, "smoke", false,
		"boot a leader + follower + gateway in-process, load the gateway briefly, and verify the run")
	fs.BoolVar(&o.chaos, "chaos", false,
		"run the self-contained failure-domain drill (leader kill, follower restart, promotion) and verify availability")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	for _, t := range strings.Split(targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			o.targets = append(o.targets, t)
		}
	}
	if o.smoke && o.chaos {
		return o, errors.New("-smoke and -chaos are separate runs; pick one")
	}
	if !o.smoke && !o.chaos && len(o.targets) == 0 {
		return o, errors.New("-targets is required (or use -smoke / -chaos for a self-contained run)")
	}
	if o.duration <= 0 || o.concurrency <= 0 || o.watchers < 0 {
		return o, errors.New("duration and concurrency must be positive; watchers must not be negative")
	}
	return o, nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.chaos {
		return runChaos(o)
	}
	ctx := context.Background()

	cfg := loadgen.Config{
		Targets:     o.targets,
		Duration:    o.duration,
		Concurrency: o.concurrency,
		Watchers:    o.watchers,
	}

	var cleanup func()
	var scrapes []scrapeTarget
	if o.smoke {
		gwURL, nodes, stop, err := bootSmokeFleet(ctx)
		if err != nil {
			return err
		}
		cleanup = stop
		cfg.Targets = []string{gwURL}
		if o.duration > 3*time.Second {
			cfg.Duration = 3 * time.Second
		}
		scrapes = []scrapeTarget{
			leaderTarget("leader", nodes[0]),
			followerTarget("follower", nodes[1]),
			gatewayTarget("gateway", gwURL),
		}
		fmt.Printf("spotload: smoke fleet up — gateway %s over %d nodes (%s)\n",
			gwURL, len(nodes), strings.Join(nodes, ", "))
	} else {
		// External targets: role unknown, so the scrape is best-effort
		// (and only runs when a dump was asked for).
		if o.metricsDump != "" {
			for _, t := range o.targets {
				scrapes = append(scrapes, scrapeTarget{name: t, url: t})
			}
		}
	}

	rep, err := loadgen.Run(ctx, cfg)
	if cleanup != nil {
		defer cleanup()
	}
	if err != nil {
		return err
	}

	out := rep.String()
	// Scrape every node before teardown: the smoke verdict requires each
	// role's /metrics to serve its core series, and the folded headline
	// numbers ride in the archived report.
	if len(scrapes) > 0 {
		summary, dump, err := scrapeMetrics(ctx, scrapes)
		if err != nil {
			return err
		}
		out += strings.Join(summary, "\n") + "\n"
		if err := writeMetricsDump(o.metricsDump, dump); err != nil {
			return err
		}
	}
	fmt.Print(out)
	if o.report != "" {
		if err := os.WriteFile(o.report, []byte(out), 0o644); err != nil {
			return fmt.Errorf("write report: %w", err)
		}
		fmt.Printf("spotload: report written to %s\n", o.report)
	}

	if o.smoke {
		if rep.Requests == 0 {
			return errors.New("smoke: no requests completed")
		}
		if rep.Errors > 0 {
			return fmt.Errorf("smoke: %d of %d requests failed", rep.Errors, rep.Requests)
		}
		fmt.Printf("spotload: smoke ok — %d requests across the 2-node fleet, 0 errors\n", rep.Requests)
	}
	return nil
}

// bootSmokeFleet assembles the in-process topology: an accelerated
// leader, one follower attached over /v2/watch (with backfill so it
// catches up on the leader's head start), and a gateway fronting both as
// a replica fleet. It returns once the gateway's aggregated health shows
// every node answering.
func bootSmokeFleet(ctx context.Context) (gwURL string, nodes []string, cleanup func(), err error) {
	leader, err := daemon.Start(daemon.Options{
		Addr: "127.0.0.1:0", Seed: 42, Tick: 5 * time.Minute, Speed: 30000, MaxWatchers: 64,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return "", nil, nil, fmt.Errorf("smoke: start leader: %w", err)
	}
	closers := []func(){func() { leader.Close() }}
	cleanup = func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	fail := func(err error) (string, []string, func(), error) {
		cleanup()
		return "", nil, nil, err
	}

	// Let the study ingest before attaching load: the market-scoped ops
	// want history, and the follower's backfill then has data to ship.
	if err := waitForProbes(ctx, leader.BaseURL()); err != nil {
		return fail(fmt.Errorf("smoke: leader ingest: %w", err))
	}

	follower, err := daemon.Start(daemon.Options{
		Addr: "127.0.0.1:0", Follow: leader.BaseURL(), FollowBackfill: 24 * time.Hour, MaxWatchers: 64,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		return fail(fmt.Errorf("smoke: start follower: %w", err))
	}
	closers = append(closers, func() { follower.Close() })

	nodes = []string{leader.BaseURL(), follower.BaseURL()}
	gw, err := gateway.New(gateway.Config{Nodes: nodes})
	if err != nil {
		return fail(fmt.Errorf("smoke: build gateway: %w", err))
	}
	gw.EnableMetrics(obs.NewRegistry())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(fmt.Errorf("smoke: gateway listen: %w", err))
	}
	gwSrv := &http.Server{Handler: gw.Handler()}
	go func() { _ = gwSrv.Serve(ln) }()
	closers = append(closers, func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = gwSrv.Shutdown(shutCtx)
	})
	gwURL = "http://" + ln.Addr().String()

	// The load only proves the fleet if every node is actually behind the
	// gateway; require the aggregated health to say so.
	gc, err := client.New(gwURL, nil)
	if err != nil {
		return fail(err)
	}
	hctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	h, err := gc.Health(hctx)
	if err != nil {
		return fail(fmt.Errorf("smoke: gateway health: %w", err))
	}
	if h.Gateway == nil || len(h.Gateway.Nodes) != len(nodes) {
		return fail(fmt.Errorf("smoke: gateway health missing the per-node breakdown: %+v", h))
	}
	for _, nh := range h.Gateway.Nodes {
		if nh.Status == "unreachable" {
			return fail(fmt.Errorf("smoke: node %s unreachable: %s", nh.URL, nh.Error))
		}
	}
	return gwURL, nodes, cleanup, nil
}

// waitForProbes polls the leader's summary until the study has ingested
// probe records.
func waitForProbes(ctx context.Context, baseURL string) error {
	c, err := client.New(baseURL, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	for {
		rows, err := c.Summary(ctx)
		if err == nil {
			total := 0
			for _, r := range rows {
				total += r.TotalODProbes + r.TotalSpotProbes
			}
			if total > 0 {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("no probes ingested before timeout: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}
