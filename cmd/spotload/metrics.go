package main

// End-of-run metrics scrape: spotload pulls GET /metrics (Prometheus
// text) and GET /v2/metrics (JSON) from every node it drove, verifies
// the core series each role must serve, folds the headline numbers into
// the run report, and optionally archives the raw expositions to a dump
// file (-metrics-dump) for CI artifacts.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"spotlight/internal/obs"
)

// Core-series requirements per role. Store-side series register
// unconditionally (zeros on in-memory nodes), so every store node must
// serve all of them regardless of durability.
var (
	coreHTTP = []string{
		"spotlight_http_requests_total",
		"spotlight_http_request_seconds_bucket",
		"spotlight_http_in_flight",
	}
	coreStore = []string{
		"spotlight_store_append_records_total",
		"spotlight_store_generation",
		"spotlight_store_wal_flushes_total",
		"spotlight_store_snapshots_total",
		"spotlight_feed_dropped_total",
	}
	coreReplica = []string{
		"spotlight_replica_applied_total",
		"spotlight_replica_lag_records",
		"spotlight_replica_reconnects_total",
	}
	coreGateway = []string{
		"spotlight_gateway_upstream_seconds",
		"spotlight_gateway_upstream_requests_total",
		"spotlight_gateway_breaker_state",
		"spotlight_gateway_breaker_opens_total",
	}
)

// scrapeTarget is one node to pull metrics from.
type scrapeTarget struct {
	name     string
	url      string
	required []string // series the scrape must contain; nil means best-effort
}

func leaderTarget(name, url string) scrapeTarget {
	return scrapeTarget{name: name, url: url, required: append(append([]string{}, coreHTTP...), coreStore...)}
}

func followerTarget(name, url string) scrapeTarget {
	req := append(append([]string{}, coreHTTP...), coreStore...)
	return scrapeTarget{name: name, url: url, required: append(req, coreReplica...)}
}

func gatewayTarget(name, url string) scrapeTarget {
	return scrapeTarget{name: name, url: url, required: append(append([]string{}, coreHTTP...), coreGateway...)}
}

// scrapeMetrics pulls every target and returns per-node summary lines
// plus the concatenated raw text expositions. A target with required
// series fails the scrape when /metrics is unserveable or a series is
// missing; best-effort targets degrade to a note.
func scrapeMetrics(ctx context.Context, targets []scrapeTarget) (summary []string, dump string, err error) {
	var db strings.Builder
	for _, t := range targets {
		text, terr := fetchText(ctx, t.url+"/metrics")
		if terr != nil {
			if t.required != nil {
				return nil, "", fmt.Errorf("metrics: %s (%s): /metrics unserveable: %w", t.name, t.url, terr)
			}
			summary = append(summary, fmt.Sprintf("metrics: %s — scrape failed: %v", t.name, terr))
			continue
		}
		for _, series := range t.required {
			if !strings.Contains(text, series) {
				return nil, "", fmt.Errorf("metrics: %s (%s): core series %q missing from /metrics", t.name, t.url, series)
			}
		}
		fmt.Fprintf(&db, "==== %s (%s) ====\n%s\n", t.name, t.url, text)
		line, lerr := foldJSON(ctx, t)
		if lerr != nil {
			if t.required != nil {
				return nil, "", lerr
			}
			line = fmt.Sprintf("metrics: %s — /v2/metrics: %v", t.name, lerr)
		}
		summary = append(summary, line)
	}
	return summary, db.String(), nil
}

// foldJSON reduces one node's /v2/metrics into a single report line:
// request totals, worst-route HTTP p99, feed drops, replica lag, and
// gateway breaker opens — the numbers a failed CI run is triaged from.
func foldJSON(ctx context.Context, t scrapeTarget) (string, error) {
	body, err := fetchText(ctx, t.url+"/v2/metrics")
	if err != nil {
		return "", fmt.Errorf("metrics: %s: /v2/metrics unserveable: %w", t.name, err)
	}
	var fams []obs.FamilySnapshot
	if err := json.Unmarshal([]byte(body), &fams); err != nil {
		return "", fmt.Errorf("metrics: %s: bad /v2/metrics JSON: %w", t.name, err)
	}
	var (
		requests, feedDrops, breakerOpens, lag, retries float64
		p99                                             float64
		hasDrops, hasLag, hasBreaker                    bool
	)
	for _, f := range fams {
		switch f.Name {
		case "spotlight_http_requests_total":
			for _, v := range f.Values {
				requests += v.Value
			}
		case "spotlight_http_request_seconds":
			for _, v := range f.Values {
				if v.P99 > p99 {
					p99 = v.P99
				}
			}
		case "spotlight_feed_dropped_total":
			hasDrops = true
			for _, v := range f.Values {
				feedDrops += v.Value
			}
		case "spotlight_replica_lag_records":
			hasLag = true
			for _, v := range f.Values {
				lag += v.Value
			}
		case "spotlight_gateway_breaker_opens_total":
			hasBreaker = true
			for _, v := range f.Values {
				breakerOpens += v.Value
			}
		case "spotlight_gateway_retries_total":
			for _, v := range f.Values {
				retries += v.Value
			}
		}
	}
	line := fmt.Sprintf("metrics: %s — %.0f http requests, worst-route p99 %.1fms",
		t.name, requests, 1000*p99)
	if hasDrops {
		line += fmt.Sprintf(", %.0f feed drops", feedDrops)
	}
	if hasLag {
		line += fmt.Sprintf(", replica lag %.0f", lag)
	}
	if hasBreaker {
		line += fmt.Sprintf(", %.0f breaker opens, %.0f retries", breakerOpens, retries)
	}
	return line, nil
}

// fetchText GETs one URL and returns the body as a string.
func fetchText(ctx context.Context, url string) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("HTTP %d: %.200s", resp.StatusCode, body)
	}
	return string(body), nil
}

// writeMetricsDump archives the concatenated expositions.
func writeMetricsDump(path, dump string) error {
	if path == "" {
		return nil
	}
	if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
		return fmt.Errorf("write metrics dump: %w", err)
	}
	fmt.Printf("spotload: metrics dump written to %s\n", path)
	return nil
}
