package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
)

// writeSnapshot dumps a tiny synthetic store to disk.
func writeSnapshot(t *testing.T) string {
	t.Helper()
	db := store.New()
	m := market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	t0 := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	db.AppendSpike(store.SpikeEvent{At: t0, Market: m, Ratio: 2, Probed: true})
	db.AppendProbe(store.ProbeRecord{
		At: t0, Market: m, Kind: store.ProbeOnDemand,
		Trigger: store.TriggerSpike, TriggerMarket: m, Rejected: true, Code: "x",
	})
	db.AppendProbe(store.ProbeRecord{
		At: t0.Add(10 * time.Minute), Market: m, Kind: store.ProbeOnDemand,
		Trigger: store.TriggerRecheck, TriggerMarket: m,
	})
	path := filepath.Join(t.TempDir(), "store.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := db.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeAllFigures(t *testing.T) {
	path := writeSnapshot(t)
	var sb strings.Builder
	if err := run([]string{"-in", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"loaded", "Fig 5.4", "Fig 5.12", "1 outages"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAnalyzeSingleFigure(t *testing.T) {
	path := writeSnapshot(t)
	var sb strings.Builder
	if err := run([]string{"-in", path, "-fig", "5.9"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig 5.9") {
		t.Error("missing requested figure")
	}
	if strings.Contains(out, "Fig 5.4") {
		t.Error("printed figures beyond the requested one")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-in", "/nonexistent/store.json"}, &sb); err == nil {
		t.Error("missing input accepted")
	}
	path := writeSnapshot(t)
	if err := run([]string{"-in", path, "-fig", "99.9"}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
	garbage := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(garbage, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", garbage}, &sb); err == nil {
		t.Error("garbage snapshot accepted")
	}
}
