// Command spotlight-analyze regenerates the paper's Chapter 5 figures
// from a previously dumped store snapshot (store.json written by
// `spotlight-study -out`), without re-running the simulation — the
// collect-once / analyze-many workflow of a real measurement study.
//
// Usage:
//
//	spotlight-analyze -in results/store.json
//	spotlight-analyze -in results/store.json -fig 5.4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spotlight/internal/analysis"
	"spotlight/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spotlight-analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spotlight-analyze", flag.ContinueOnError)
	var (
		in  = fs.String("in", "store.json", "store snapshot to analyze")
		fig = fs.String("fig", "", "single figure to print (e.g. 5.4); empty prints all")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := store.ReadJSON(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "loaded %s: %d probes, %d spikes, %d outages\n",
		*in, db.ProbeCount(), len(db.Spikes()), len(db.Outages()))

	figures := []struct {
		id    string
		title string
		write func(io.Writer) error
	}{
		{"5.4", "P(on-demand unavailable) vs spike size", analysis.Fig54GlobalUnavailability(db, nil).WriteText},
		{"5.5", "rejected probes per region", analysis.Fig55RegionRejectShare(db).WriteText},
		{"5.6", "per-region unavailability (900s)", analysis.Fig56RegionUnavailability(db, 0).WriteText},
		{"5.7", "spike vs related-market rejections", analysis.Fig57TriggerBreakdown(db).WriteText},
		{"5.8", "cross-zone coupling", analysis.Fig58CrossAZ(db, nil).WriteText},
		{"5.9", "outage duration CDF", analysis.Fig59OutageDurationCDF(db).WriteText},
		{"5.10", "spot capacity-not-available vs price", analysis.Fig510SpotUnavailability(db).WriteText},
		{"5.11", "spot insufficiency distribution", analysis.Fig511SpotInsufficiencyDist(db).WriteText},
		{"5.12", "related-market insufficiency pairs", analysis.Fig512CrossKind(db, nil).WriteText},
	}
	matched := false
	for _, fg := range figures {
		if *fig != "" && fg.id != *fig {
			continue
		}
		matched = true
		fmt.Fprintf(out, "\n=== Fig %s — %s ===\n", fg.id, fg.title)
		if err := fg.write(out); err != nil {
			return err
		}
	}
	if !matched {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return nil
}
