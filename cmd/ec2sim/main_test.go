package main

import (
	"strings"
	"testing"
)

func TestRunPrintsSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator command test skipped in -short mode")
	}
	var sb strings.Builder
	err := run([]string{"-days", "1", "-seed", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"price changes", "ground-truth on-demand outages", "region"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator command test skipped in -short mode")
	}
	var sb strings.Builder
	err := run([]string{"-days", "1", "-seed", "4", "-trace"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x od)") {
		t.Error("trace output missing price lines")
	}
}

func TestRunRejectsBadMarket(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-market", "garbage"}, &sb); err == nil {
		t.Error("malformed market accepted")
	}
}
