// Command ec2sim runs the cloud substrate standalone and inspects it: it
// prints a market's spot price trace, the platform's ground-truth
// on-demand outages, and per-region summaries — useful when calibrating
// the demand model or debugging the simulator without SpotLight on top.
//
// Usage:
//
//	ec2sim [-days 3] [-seed 42] [-tick 5m]
//	       [-market us-east-1d:c3.2xlarge:Linux/UNIX] [-trace]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"spotlight/internal/cloud"
	"spotlight/internal/market"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ec2sim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ec2sim", flag.ContinueOnError)
	var (
		days      = fs.Int("days", 3, "simulated days")
		seed      = fs.Uint64("seed", 42, "seed")
		tick      = fs.Duration("tick", 5*time.Minute, "simulation tick")
		marketStr = fs.String("market", "us-east-1d:c3.2xlarge:Linux/UNIX", "market to trace")
		showTrace = fs.Bool("trace", false, "print every price change of -market")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := market.ParseSpotID(*marketStr)
	if err != nil {
		return err
	}

	cat := market.New()
	sim, err := cloud.New(cat, cloud.Config{Seed: *seed, Tick: *tick})
	if err != nil {
		return err
	}
	start := sim.Now()
	steps := int(time.Duration(*days) * 24 * time.Hour / *tick)
	for i := 0; i < steps; i++ {
		sim.Step()
	}

	od, err := sim.OnDemandPrice(id)
	if err != nil {
		return err
	}
	hist, err := sim.SpotPriceHistory(id, start, sim.Now())
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "market %s: od=$%.4f, %d price changes over %d days\n", id, od, len(hist), *days)
	if *showTrace {
		for _, p := range hist {
			fmt.Fprintf(out, "%s  $%.4f  (%.2fx od)\n", p.At.Format("01-02 15:04"), p.Price, p.Price/od)
		}
	}

	outages := sim.TrueOutages()
	byRegion := make(map[market.Region]int)
	byRegionDur := make(map[market.Region]time.Duration)
	for _, o := range outages {
		r := o.Pool.Zone.RegionOf()
		byRegion[r]++
		byRegionDur[r] += o.Duration(sim.Now())
	}
	var regions []market.Region
	for r := range byRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })

	fmt.Fprintf(out, "\nground-truth on-demand outages: %d intervals\n", len(outages))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "region\toutages\tmean_duration")
	for _, r := range regions {
		mean := time.Duration(0)
		if byRegion[r] > 0 {
			mean = byRegionDur[r] / time.Duration(byRegion[r])
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\n", r, byRegion[r], mean.Round(time.Minute))
	}
	return tw.Flush()
}
