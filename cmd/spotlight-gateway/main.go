// Command spotlight-gateway fronts a fleet of SpotLight store nodes with
// one scatter-gather HTTP endpoint (see internal/gateway and
// docs/replication.md).
//
// Usage:
//
//	spotlight-gateway -nodes http://a:8080,http://b:8080 [-addr :8090]
//	                  [-partitioned] [-timeout 10s]
//	                  [-retries 1] [-hedge-after 0] [-fail-threshold 3]
//	                  [-eject-for 5s] [-probe-interval 0]
//	                  [-log-format text|json] [-debug-addr ADDR]
//
// The gateway serves its own metrics — per-node upstream latency and
// outcomes, retries, hedges, breaker state, partial merges, plus the
// shared HTTP series — on GET /metrics (Prometheus text) and GET
// /v2/metrics (JSON). -debug-addr adds a second listener with
// net/http/pprof. Logs are structured (log/slog); -log-format picks
// text or json.
//
// Without -partitioned the nodes are assumed to be full replicas (a
// leader and its -follow followers): each query routes whole to one node
// by consistent hash, spreading load while preserving per-market cache
// affinity, and upstream ETags pass through untouched. With -partitioned
// the nodes are assumed to each own a disjoint subset of markets:
// market-scoped queries route to the owner, and the scope-less
// aggregations (summary, stable, volatile, and the /v2/advise decision
// endpoint) fan out to every node and are merged at the gateway.
//
// POST /v2/query batches are split per node and the sub-batches run
// concurrently; a node failure fails only its own queries (code
// "upstream", with the node URL in details) while the rest of the batch
// answers normally. GET /v2/health aggregates the whole fleet.
//
// The gateway is health-aware: idempotent reads retry on a peer
// (-retries), optionally hedge to one after -hedge-after of silence, and
// a node that fails -fail-threshold calls in a row is ejected from
// rotation for -eject-for (circuit breaker; /v2/health shows per-node
// breaker state). -probe-interval starts a background health poll that
// re-admits recovered nodes without waiting for live traffic. On a
// partitioned fleet a missing partition degrades fanned-out answers to
// partial (named in the "partial" field / X-Spotlight-Partial header)
// instead of failing them, and complete fan-outs carry a merged gateway
// ETag honored against If-None-Match.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spotlight/internal/gateway"
	"spotlight/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).
			Error("fatal", "component", "spotlight-gateway", "err", err)
		os.Exit(1)
	}
}

// cmdOptions are the command-only switches.
type cmdOptions struct {
	addr      string
	logFormat string
	debugAddr string
}

// parseFlags maps the command line onto a gateway.Config plus the
// command-only switches.
func parseFlags(args []string) (gateway.Config, cmdOptions, error) {
	fs := flag.NewFlagSet("spotlight-gateway", flag.ContinueOnError)
	var (
		c     cmdOptions
		nodes string
		cfg   gateway.Config
	)
	fs.StringVar(&c.addr, "addr", ":8090", "HTTP listen address")
	fs.StringVar(&c.logFormat, "log-format", "text", "structured log format: text or json")
	fs.StringVar(&c.debugAddr, "debug-addr", "",
		"optional debug listener serving net/http/pprof plus /metrics (empty disables)")
	fs.StringVar(&nodes, "nodes", "",
		"comma-separated store node base URLs (e.g. http://a:8080,http://b:8080)")
	fs.BoolVar(&cfg.Partitioned, "partitioned", false,
		"nodes each own a disjoint market subset (fan out and merge scope-less aggregations) instead of being full replicas")
	fs.DurationVar(&cfg.Timeout, "timeout", 10*time.Second, "per upstream round-trip timeout")
	fs.IntVar(&cfg.Retries, "retries", 0,
		"extra attempts for an idempotent read after its first choice fails (0: default 1; negative disables)")
	fs.DurationVar(&cfg.HedgeAfter, "hedge-after", 0,
		"hedge an unanswered idempotent read to the next replica after this long (0 disables)")
	fs.IntVar(&cfg.FailThreshold, "fail-threshold", 0,
		"consecutive failures before a node is ejected from rotation (0: default 3)")
	fs.DurationVar(&cfg.EjectFor, "eject-for", 0,
		"how long an ejected node sits out before re-admission trials (0: default 5s)")
	fs.DurationVar(&cfg.ProbeInterval, "probe-interval", 0,
		"background health-poll interval for ejected nodes (0 disables)")
	if err := fs.Parse(args); err != nil {
		return cfg, c, err
	}
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			cfg.Nodes = append(cfg.Nodes, n)
		}
	}
	if len(cfg.Nodes) == 0 {
		return cfg, c, errors.New("-nodes is required (comma-separated store node base URLs)")
	}
	if cfg.Timeout <= 0 {
		return cfg, c, errors.New("timeout must be positive")
	}
	return cfg, c, nil
}

func run(args []string) error {
	cfg, cmd, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, cmd.logFormat, "spotlight-gateway")
	if err != nil {
		return err
	}
	g, err := gateway.New(cfg)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	g.EnableMetrics(reg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", cmd.addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: g.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	mode := "replica-fleet"
	if cfg.Partitioned {
		mode = "partitioned"
	}
	logger.Info("serving", "addr", ln.Addr().String(), "mode", mode, "nodes", len(cfg.Nodes))
	if cmd.debugAddr != "" {
		dbg, stopDbg, err := obs.ServeDebug(cmd.debugAddr, reg)
		if err != nil {
			g.Close()
			return err
		}
		defer stopDbg()
		logger.Info("debug listener up", "addr", dbg)
	}

	select {
	case err := <-serveErr:
		g.Close()
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		err := srv.Shutdown(shutCtx)
		g.Close()
		return err
	}
}
