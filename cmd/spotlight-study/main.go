// Command spotlight-study runs the paper's measurement study end to end on
// the simulated cloud and regenerates every table and figure of the
// evaluation as text tables (Chapter 5 observations and the Chapter 6 case
// studies). Optionally dumps the raw probe/price logs for offline
// plotting.
//
// Usage:
//
//	spotlight-study [-days 30] [-seed 42] [-tick 5m] [-trials 100]
//	                [-regions us-east-1,sa-east-1] [-out results/]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spotlight/internal/analysis"
	"spotlight/internal/demand"
	"spotlight/internal/experiment"
	"spotlight/internal/market"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spotlight-study:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spotlight-study", flag.ContinueOnError)
	var (
		days     = fs.Int("days", 30, "simulated study length in days")
		seed     = fs.Uint64("seed", 42, "study seed")
		tick     = fs.Duration("tick", 5*time.Minute, "simulation tick")
		trials   = fs.Int("trials", 100, "SpotOn trials per market (Fig 6.2)")
		regions  = fs.String("regions", "", "comma-separated region filter (default: all)")
		outDir   = fs.String("out", "", "directory for raw CSV/JSON dumps (optional)")
		profiles = fs.String("profiles", "", "JSON file overriding per-region demand profiles")
		quiet    = fs.Bool("quiet", false, "suppress progress output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiment.Config{
		Seed: *seed,
		Days: *days,
		Tick: *tick,
	}
	if *profiles != "" {
		f, err := os.Open(*profiles)
		if err != nil {
			return err
		}
		profs, err := demand.LoadProfiles(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Cloud.Profiles = profs
	}
	if *regions != "" {
		for _, r := range strings.Split(*regions, ",") {
			cfg.Regions = append(cfg.Regions, market.Region(strings.TrimSpace(r)))
		}
	}
	if !*quiet {
		cfg.Progress = func(day, total int) {
			fmt.Fprintf(os.Stderr, "\rsimulating day %d/%d...", day, total)
			if day == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	start := time.Now()
	st, err := experiment.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "study: %d days, seed %d, %d probes, %d spikes, $%.0f spent (wall %v)\n\n",
		*days, *seed, st.DB.ProbeCount(), len(st.DB.Spikes()), st.Svc.Spent(),
		time.Since(start).Round(time.Second))

	if err := writeFigures(out, st, *trials); err != nil {
		return err
	}
	if *outDir != "" {
		if err := dump(st, *outDir); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nraw data written to %s\n", *outDir)
	}
	return nil
}

func section(out io.Writer, title string) {
	fmt.Fprintf(out, "\n=== %s ===\n", title)
}

func writeFigures(out io.Writer, st *experiment.Study, trials int) error {
	from, to := st.Window()

	section(out, "Table 2.1 — contract tradeoffs")
	if err := analysis.WriteTable21(out); err != nil {
		return err
	}

	section(out, "Fig 2.1 — spot price vs on-demand (c3.2xlarge us-east-1d)")
	c32 := market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	if tr, err := analysis.Fig21PriceTrace(st.DB, st.Cat, c32, from, to); err == nil {
		if err := tr.WriteText(out); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(out, "(no trace)", err)
	}

	section(out, "Fig 5.1a — c3.* family prices in us-east-1d")
	fam := []market.SpotID{
		{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux},
		{Zone: "us-east-1d", Type: "c3.4xlarge", Product: market.ProductLinux},
		{Zone: "us-east-1d", Type: "c3.8xlarge", Product: market.ProductLinux},
	}
	if trs, err := analysis.Fig51Traces(st.DB, st.Cat, fam, from, to); err == nil {
		for _, tr := range trs {
			if err := tr.WriteText(out); err != nil {
				return err
			}
		}
	}

	section(out, "Fig 5.1b — c3.2xlarge prices across us-east-1 zones")
	zones := []market.SpotID{
		{Zone: "us-east-1a", Type: "c3.2xlarge", Product: market.ProductLinux},
		{Zone: "us-east-1b", Type: "c3.2xlarge", Product: market.ProductLinux},
		{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux},
	}
	if trs, err := analysis.Fig51Traces(st.DB, st.Cat, zones, from, to); err == nil {
		for _, tr := range trs {
			if err := tr.WriteText(out); err != nil {
				return err
			}
		}
	}

	section(out, "Fig 5.2 — intrinsic bid price (BidSpread)")
	if err := analysis.Fig52IntrinsicPrice(st.DB, experiment.BidSpreadMarket()).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 5.3 — least bid to hold a spot instance")
	if f53, err := analysis.Fig53HoldPrices(st.DB, st.Cat, c32, from, to, nil, 0); err == nil {
		if err := f53.WriteText(out); err != nil {
			return err
		}
	}

	section(out, "Fig 5.4 — P(on-demand unavailable) vs spike size (global)")
	if err := analysis.Fig54GlobalUnavailability(st.DB, nil).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 5.5 — rejected probes per region vs spike size")
	if err := analysis.Fig55RegionRejectShare(st.DB).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 5.6 — P(on-demand unavailable) per region (window 900s)")
	if err := analysis.Fig56RegionUnavailability(st.DB, 0).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 5.7 — rejections by price spikes vs related markets")
	if err := analysis.Fig57TriggerBreakdown(st.DB).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 5.8 — P(related zone unavailable) vs spike size")
	if err := analysis.Fig58CrossAZ(st.DB, nil).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 5.9 — CDF of on-demand outage durations")
	if err := analysis.Fig59OutageDurationCDF(st.DB).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 5.10 — spot capacity-not-available vs price level")
	if err := analysis.Fig510SpotUnavailability(st.DB).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 5.11 — spot insufficiency distribution")
	if err := analysis.Fig511SpotInsufficiencyDist(st.DB).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 5.12 — related-market insufficiency by contract pair")
	if err := analysis.Fig512CrossKind(st.DB, nil).WriteText(out); err != nil {
		return err
	}

	section(out, "Fig 6.1 — SpotCheck availability")
	rows61, err := st.RunSpotCheck()
	if err != nil {
		return err
	}
	if err := experiment.WriteFig61(out, rows61); err != nil {
		return err
	}

	section(out, "Fig 6.2 — SpotOn completion time")
	rows62, err := st.RunSpotOn(trials)
	if err != nil {
		return err
	}
	return experiment.WriteFig62(out, rows62)
}

// dump writes the raw logs plus one plot-ready CSV per figure.
func dump(st *experiment.Study, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeFile := func(name string, fill func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fill(f); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return f.Close()
	}

	if err := writeFile("probes.csv", st.DB.WriteProbesCSV); err != nil {
		return err
	}
	if err := writeFile("prices.csv", st.DB.WritePricesCSV); err != nil {
		return err
	}
	if err := writeFile("spikes.csv", st.DB.WriteSpikesCSV); err != nil {
		return err
	}
	if err := writeFile("outages.csv", st.DB.WriteOutagesCSV); err != nil {
		return err
	}
	if err := writeFile("store.json", st.DB.WriteJSON); err != nil {
		return err
	}

	from, to := st.Window()
	figs := map[string]func(io.Writer) error{
		"fig5_4.csv":  analysis.Fig54GlobalUnavailability(st.DB, nil).WriteCSV,
		"fig5_5.csv":  analysis.Fig55RegionRejectShare(st.DB).WriteCSV,
		"fig5_6.csv":  analysis.Fig56RegionUnavailability(st.DB, 0).WriteCSV,
		"fig5_7.csv":  analysis.Fig57TriggerBreakdown(st.DB).WriteCSV,
		"fig5_8.csv":  analysis.Fig58CrossAZ(st.DB, nil).WriteCSV,
		"fig5_9.csv":  analysis.Fig59OutageDurationCDF(st.DB).WriteCSV,
		"fig5_10.csv": analysis.Fig510SpotUnavailability(st.DB).WriteCSV,
		"fig5_11.csv": analysis.Fig511SpotInsufficiencyDist(st.DB).WriteCSV,
		"fig5_12.csv": analysis.Fig512CrossKind(st.DB, nil).WriteCSV,
		"fig5_2.csv":  analysis.Fig52IntrinsicPrice(st.DB, experiment.BidSpreadMarket()).WriteCSV,
	}
	c32 := market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	if tr, err := analysis.Fig21PriceTrace(st.DB, st.Cat, c32, from, to); err == nil {
		figs["fig2_1.csv"] = tr.WriteCSV
	}
	if f53, err := analysis.Fig53HoldPrices(st.DB, st.Cat, c32, from, to, nil, 0); err == nil {
		figs["fig5_3.csv"] = f53.WriteCSV
	}
	for name, fill := range figs {
		if err := writeFile(name, fill); err != nil {
			return err
		}
	}
	return nil
}
