package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTinyStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("study command test skipped in -short mode")
	}
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{
		"-days", "1",
		"-seed", "9",
		"-trials", "5",
		"-quiet",
		"-out", dir,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 2.1", "Fig 2.1", "Fig 5.4", "Fig 5.10", "Fig 5.12",
		"Fig 6.1", "Fig 6.2", "SpotCheck%", "SpotOn_h",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("study output missing %q", want)
		}
	}
	for _, f := range []string{
		"probes.csv", "prices.csv", "store.json",
		"fig2_1.csv", "fig5_2.csv", "fig5_3.csv", "fig5_4.csv", "fig5_5.csv",
		"fig5_6.csv", "fig5_7.csv", "fig5_8.csv", "fig5_9.csv",
		"fig5_10.csv", "fig5_11.csv", "fig5_12.csv",
	} {
		info, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("dump file %s missing: %v", f, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("dump file %s is empty", f)
		}
	}
}

func TestRunRegionFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("study command test skipped in -short mode")
	}
	var sb strings.Builder
	err := run([]string{
		"-days", "1", "-seed", "3", "-trials", "2", "-quiet",
		"-regions", "sa-east-1",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sa-east-1") {
		t.Error("filtered study output missing the selected region")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-days", "not-a-number"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-profiles", "/nonexistent.json"}, &sb); err == nil {
		t.Error("missing profiles file accepted")
	}
}

func TestRunWithProfileOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("study command test skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "profiles.json")
	override := `{"sa-east-1": {"provision": 1.5, "volatility": 0.05,
		"spikeRatePerDay": 0.1, "marketSpikeRatePerDay": 1.0,
		"regionalShare": 0.3, "poolScale": 1.0, "spotCNABase": 0.02}}`
	if err := os.WriteFile(path, []byte(override), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{
		"-days", "1", "-seed", "5", "-trials", "2", "-quiet",
		"-regions", "sa-east-1", "-profiles", path,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "study:") {
		t.Error("override study produced no summary")
	}
}
