// Command spotlightd runs the SpotLight information service as a daemon:
// the cloud simulation advances in accelerated time in the background
// while the query API (package query) is served over HTTP. This is the
// deployment shape of the paper's prototype — a continuously running
// information plane that applications query for availability data.
//
// Usage:
//
//	spotlightd [-addr :8080] [-seed 42] [-tick 5m] [-speed 300]
//	           [-data-dir DIR] [-snapshot-interval 1h]
//	           [-max-watchers 256] [-smoke]
//	           [-follow URL] [-follow-backfill 0] [-follow-stale-after 45s]
//	           [-log-format text|json] [-slow-query 0] [-debug-addr ADDR]
//
// With -speed 300, five simulated minutes (one tick) pass per wall-clock
// second. By default the store is in-memory and a restart starts a fresh
// study. With -data-dir the store is durable (see docs/persistence.md):
// every tick's records are flushed to per-shard write-ahead-log segments,
// the whole store snapshots and compacts every -snapshot-interval of
// simulated time, and on restart the daemon replays snapshot plus WAL,
// resumes the recorded study clock, and serves byte-identical responses —
// ETags included — for everything recovered.
//
// With -follow the daemon is a read replica instead: no simulation runs;
// the store is built by tailing the leader's /v2/watch stream with
// Last-Event-ID resume, and the node serves the same read-only query
// surface with the leader's ETag salt and clock, so a caught-up follower
// answers byte-identically to its leader — ETags included. Replica lag
// is exposed in /v2/health. See docs/replication.md. -follow-backfill
// asks the leader for that much trailing history on first attach
// (bounded server-side to 24h); the default 0 is live-only.
//
// -follow combines with -data-dir: the follower then persists the
// replicated store through the same WAL/snapshot layer a leader uses and
// WALs its stream cursor, so a restart replays locally and resumes the
// leader's stream from the durable cursor instead of re-tailing the
// backfill window — with zero duplicated or lost events. A follower can
// also be promoted to leader when its leader dies: SIGUSR1 (or POST
// /v2/admin/promote) drains the subscription and resumes a study over
// the replicated store, preserving the ETag salt, clock timeline, and
// generations. Promotion is refused while the leader still streams
// (split-brain guard) — the endpoint's ?force=1 overrides; the signal
// path never forces. -follow-stale-after tunes how quickly a silent
// stream is declared disconnected.
//
// The service exposes two API surfaces (see docs/api.md for the full
// reference):
//
//	GET  /v1/unavailability?market=zone:type:product&kind=od|spot&window=24h
//	GET  /v1/stable?region=...&n=10&from=...&to=...
//	GET  /v1/volatile?region=...&n=10&window=24h
//	GET  /v1/fallback?market=...&n=5&window=24h
//	GET  /v1/prices?market=...&window=24h
//	GET  /v1/outages?market=...&window=24h
//	GET  /v1/predict?market=...&ratio=1.5&window=24h
//	GET  /v1/reserved-value?market=...&utilization=0.5&window=24h
//	GET  /v1/markets?region=...
//	GET  /v1/summary
//	POST /v2/query   — a batch of typed query specs answered in one round
//	                   trip; request and response DTOs live in pkg/api and
//	                   the Go SDK in pkg/client
//	GET  /v2/watch   — live Server-Sent Events stream of typed store
//	                   events (probes, prices, spikes, revocations,
//	                   outage transitions) with Last-Event-ID resume; see
//	                   docs/streaming.md and pkg/client.Watch
//	GET  /v2/health  — store mode, durability state, watch-stream
//	                   counters, and (on followers) replication lag
//	GET  /metrics    — Prometheus text exposition of the node's metrics
//	                   (HTTP latencies, store appends, WAL flushes,
//	                   replica lag, ...; see docs/observability.md)
//	GET  /v2/metrics — the same registry as JSON, quantiles precomputed
//
// Logs are structured (log/slog): -log-format picks text or json.
// -slow-query THRESHOLD logs any request slower than the threshold with
// a per-stage breakdown (parse, cache probe, exec, encode). -debug-addr
// starts a second listener serving net/http/pprof and /metrics, so
// profiling stays off the serving port.
//
// Windows are absolute (from/to, RFC3339) or relative (window=24h,
// resolved against the simulation clock). Errors use the machine-readable
// {code, message, details} envelope. Query responses carry Cache-Control
// max-age hints equal to the wall-clock tick interval.
//
// With -smoke the daemon starts, opens a /v2/watch stream, issues one v2
// batch query against itself through the pkg/client SDK, waits for a live
// event, prints the result, and exits — the CI health check for the whole
// serving path, streaming included.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spotlight/internal/daemon"
	"spotlight/internal/obs"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).
			Error("fatal", "component", "spotlightd", "err", err)
		os.Exit(1)
	}
}

// cmdOptions are the command-only switches that do not map onto
// daemon.Options.
type cmdOptions struct {
	smoke     bool
	logFormat string
	debugAddr string
}

// parseFlags maps the command line onto daemon.Options plus the
// command-only switches.
func parseFlags(args []string) (daemon.Options, cmdOptions, error) {
	fs := flag.NewFlagSet("spotlightd", flag.ContinueOnError)
	var (
		o daemon.Options
		c cmdOptions
	)
	fs.StringVar(&o.Addr, "addr", ":8080", "HTTP listen address")
	fs.Uint64Var(&o.Seed, "seed", 42, "simulation seed")
	fs.DurationVar(&o.Tick, "tick", 5*time.Minute, "simulation tick")
	fs.Float64Var(&o.Speed, "speed", 300, "simulated seconds per wall second")
	fs.BoolVar(&c.smoke, "smoke", false, "serve, query self once via the client SDK, and exit")
	fs.StringVar(&c.logFormat, "log-format", "text", "structured log format: text or json")
	fs.StringVar(&c.debugAddr, "debug-addr", "",
		"optional debug listener serving net/http/pprof plus /metrics (e.g. 127.0.0.1:6060; empty disables)")
	fs.DurationVar(&o.SlowQuery, "slow-query", 0,
		"log any query slower than this with a per-stage breakdown (0 disables tracing)")
	fs.StringVar(&o.DataDir, "data-dir", "",
		"durable store directory (WAL segments + snapshots); empty keeps the store in memory")
	fs.DurationVar(&o.SnapInterval, "snapshot-interval", time.Hour,
		"simulated time between store snapshots when -data-dir is set (0: snapshot only at shutdown)")
	fs.IntVar(&o.MaxWatchers, "max-watchers", 256,
		"concurrent /v2/watch subscriber cap (above it new streams get 429)")
	fs.StringVar(&o.Follow, "follow", "",
		"run as a read replica of the leader at this base URL (no simulation; see docs/replication.md)")
	fs.DurationVar(&o.FollowBackfill, "follow-backfill", 0,
		"trailing history to request from the leader on first attach (bounded server-side to 24h; 0 is live-only)")
	fs.DurationVar(&o.FollowStaleAfter, "follow-stale-after", 0,
		"how long without stream progress before the follower reports disconnected (0: 45s default)")
	if err := fs.Parse(args); err != nil {
		return o, c, err
	}
	if o.Speed <= 0 {
		return o, c, errors.New("speed must be positive")
	}
	if o.SnapInterval < 0 {
		return o, c, errors.New("snapshot-interval must not be negative")
	}
	if o.MaxWatchers <= 0 {
		return o, c, errors.New("max-watchers must be positive")
	}
	if o.FollowBackfill < 0 {
		return o, c, errors.New("follow-backfill must not be negative")
	}
	if o.SlowQuery < 0 {
		return o, c, errors.New("slow-query must not be negative")
	}
	return o, c, nil
}

func run(args []string) error {
	opts, cmd, err := parseFlags(args)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, cmd.logFormat, "spotlightd")
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	opts.Metrics = reg
	opts.Logger = logger

	// SIGTERM is how systemd/docker stop a daemon; treating it like
	// Ctrl-C makes routine stops clean shutdowns (final WAL flush,
	// snapshot, clean marker) instead of crashes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, err := daemon.Start(opts)
	if err != nil {
		return err
	}
	if opts.Follow != "" {
		logger.Info("serving", "addr", d.Addr(), "store", d.StoreDesc)
	} else {
		logger.Info("serving", "addr", d.Addr(), "tick", opts.Tick, "speed", opts.Speed, "store", d.StoreDesc)
	}
	if cmd.debugAddr != "" {
		dbg, stopDbg, err := obs.ServeDebug(cmd.debugAddr, reg)
		if err != nil {
			_ = d.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		defer stopDbg()
		logger.Info("debug listener up", "addr", dbg)
	}

	if cmd.smoke {
		serr := smokeCheck(ctx, d.BaseURL())
		if cerr := d.Close(); serr == nil {
			serr = cerr
		}
		return serr
	}

	// SIGUSR1 asks a follower to promote itself to leader — the
	// operator's failover lever when the leader host is gone. The signal
	// path never forces past the split-brain guard; use the
	// /v2/admin/promote endpoint with ?force=1 for that.
	promote := make(chan os.Signal, 1)
	signal.Notify(promote, syscall.SIGUSR1)
	defer signal.Stop(promote)

	for {
		select {
		case <-promote:
			if err := d.Promote(false); err != nil {
				logger.Error("promote refused", "err", err)
			} else {
				logger.Info("promoted to leader")
			}
		case err := <-d.ServeErr():
			// Close's error carries the session's sticky durability errors
			// (per-tick flush failures only resurface here), so it must not
			// be swallowed by the serve error.
			return errors.Join(err, d.Close())
		case <-ctx.Done():
			return d.Close()
		}
	}
}

// smokeCheck exercises the full serving path end to end: a live
// /v2/watch stream opened through the client SDK must deliver at least
// one ingested event, one v2 batch of three distinct query kinds must
// succeed, and the /v2/advise decision endpoint must accept a
// constrained workload (an empty ranking is fine this early in a run —
// the advisor only ranks markets it holds price history for).
func smokeCheck(ctx context.Context, baseURL string) error {
	c, err := client.New(baseURL, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()

	// Open the stream before querying so the ticks that answer the batch
	// also feed the watcher.
	w, err := c.Watch(ctx, client.WatchOptions{})
	if err != nil {
		return fmt.Errorf("smoke: watch failed to open: %w", err)
	}
	defer w.Close()

	resp, err := c.Batch(ctx,
		api.Query{Kind: api.KindStable, Region: "us-east-1", N: 5, Window: api.Last(24 * time.Hour)},
		api.Query{Kind: api.KindMarkets, Region: "us-east-1", Product: "Linux/UNIX"},
		api.Query{Kind: api.KindSummary},
	)
	if err != nil {
		return fmt.Errorf("smoke: batch query failed: %w", err)
	}
	for i, res := range resp.Results {
		if res.Error != nil {
			return fmt.Errorf("smoke: query %d (%s) failed: %v", i, res.Kind, res.Error)
		}
	}

	adv, err := c.Advise(ctx, api.AdviseRequest{
		AdviseConstraints: api.AdviseConstraints{
			Regions:  []string{"us-east-1"},
			Products: []string{"Linux/UNIX"},
			MinVCPU:  2,
			N:        5,
		},
		Window: api.Last(24 * time.Hour),
	})
	if err != nil {
		return fmt.Errorf("smoke: advise failed: %w", err)
	}

	// The simulation ticks continuously, so a data event must arrive.
	var firstEvent api.EventKind
waitEvent:
	for {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				return fmt.Errorf("smoke: watch ended before any event: %v", w.Err())
			}
			if ev.Kind == api.EventHello {
				continue
			}
			firstEvent = ev.Kind
			break waitEvent
		case <-ctx.Done():
			return fmt.Errorf("smoke: no watch event before timeout: %w", ctx.Err())
		}
	}

	fmt.Printf("smoke: ok — v2 batch at sim clock %s: %d stable rows, %d markets, %d region summaries; advise ranked %d candidates; watch delivered a %q event\n",
		resp.Now.Format(time.RFC3339), len(resp.Results[0].Stable), len(resp.Results[1].Markets), len(resp.Results[2].Summary), len(adv.Candidates), firstEvent)
	return nil
}
