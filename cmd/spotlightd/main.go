// Command spotlightd runs the SpotLight information service as a daemon:
// the cloud simulation advances in accelerated time in the background
// while the query API (package query) is served over HTTP. This is the
// deployment shape of the paper's prototype — a continuously running
// information plane that applications query for availability data.
//
// Usage:
//
//	spotlightd [-addr :8080] [-seed 42] [-tick 5m] [-speed 300]
//	           [-data-dir DIR] [-snapshot-interval 1h]
//	           [-max-watchers 256] [-smoke]
//
// With -speed 300, five simulated minutes (one tick) pass per wall-clock
// second. By default the store is in-memory and a restart starts a fresh
// study. With -data-dir the store is durable (see docs/persistence.md):
// every tick's records are flushed to per-shard write-ahead-log segments,
// the whole store snapshots and compacts every -snapshot-interval of
// simulated time, and on restart the daemon replays snapshot plus WAL,
// resumes the recorded study clock, and serves byte-identical responses —
// ETags included — for everything recovered.
//
// The service exposes two API surfaces (see docs/api.md for the full
// reference):
//
//	GET  /v1/unavailability?market=zone:type:product&kind=od|spot&window=24h
//	GET  /v1/stable?region=...&n=10&from=...&to=...
//	GET  /v1/volatile?region=...&n=10&window=24h
//	GET  /v1/fallback?market=...&n=5&window=24h
//	GET  /v1/prices?market=...&window=24h
//	GET  /v1/outages?market=...&window=24h
//	GET  /v1/predict?market=...&ratio=1.5&window=24h
//	GET  /v1/reserved-value?market=...&utilization=0.5&window=24h
//	GET  /v1/markets?region=...
//	GET  /v1/summary
//	POST /v2/query   — a batch of typed query specs answered in one round
//	                   trip; request and response DTOs live in pkg/api and
//	                   the Go SDK in pkg/client
//	GET  /v2/watch   — live Server-Sent Events stream of typed store
//	                   events (probes, prices, spikes, revocations,
//	                   outage transitions) with Last-Event-ID resume; see
//	                   docs/streaming.md and pkg/client.Watch
//	GET  /v2/health  — store mode, durability state, and watch-stream
//	                   counters
//
// Windows are absolute (from/to, RFC3339) or relative (window=24h,
// resolved against the simulation clock). Errors use the machine-readable
// {code, message, details} envelope. Query responses carry Cache-Control
// max-age hints equal to the wall-clock tick interval.
//
// With -smoke the daemon starts, opens a /v2/watch stream, issues one v2
// batch query against itself through the pkg/client SDK, waits for a live
// event, prints the result, and exits — the CI health check for the whole
// serving path, streaming included.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/query"
	"spotlight/internal/store"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("spotlightd: ", err)
	}
}

// options are the parsed command-line flags.
type options struct {
	addr         string
	seed         uint64
	tick         time.Duration
	speed        float64
	smoke        bool
	dataDir      string
	snapInterval time.Duration
	maxWatchers  int
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("spotlightd", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", ":8080", "HTTP listen address")
	fs.Uint64Var(&o.seed, "seed", 42, "simulation seed")
	fs.DurationVar(&o.tick, "tick", 5*time.Minute, "simulation tick")
	fs.Float64Var(&o.speed, "speed", 300, "simulated seconds per wall second")
	fs.BoolVar(&o.smoke, "smoke", false, "serve, query self once via the client SDK, and exit")
	fs.StringVar(&o.dataDir, "data-dir", "",
		"durable store directory (WAL segments + snapshots); empty keeps the store in memory")
	fs.DurationVar(&o.snapInterval, "snapshot-interval", time.Hour,
		"simulated time between store snapshots when -data-dir is set (0: snapshot only at shutdown)")
	fs.IntVar(&o.maxWatchers, "max-watchers", 256,
		"concurrent /v2/watch subscriber cap (above it new streams get 429)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.speed <= 0 {
		return o, errors.New("speed must be positive")
	}
	if o.snapInterval < 0 {
		return o, errors.New("snapshot-interval must not be negative")
	}
	if o.maxWatchers <= 0 {
		return o, errors.New("max-watchers must be positive")
	}
	return o, nil
}

func run(args []string) error {
	opts, err := parseFlags(args)
	if err != nil {
		return err
	}

	// SIGTERM is how systemd/docker stop a daemon; treating it like
	// Ctrl-C makes routine stops clean shutdowns (final WAL flush,
	// snapshot, clean marker) instead of crashes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	d, err := startDaemon(opts)
	if err != nil {
		return err
	}
	fmt.Printf("spotlightd: serving on %s (tick %v, %gx real time%s)\n",
		d.addr(), opts.tick, opts.speed, d.storeDesc)

	if opts.smoke {
		serr := smokeCheck(ctx, "http://"+d.addr())
		if cerr := d.Close(); serr == nil {
			serr = cerr
		}
		return serr
	}

	select {
	case err := <-d.serveErr:
		// Close's error carries the session's sticky durability errors
		// (per-tick flush failures only resurface here), so it must not
		// be swallowed by the serve error.
		return errors.Join(err, d.Close())
	case <-ctx.Done():
		return d.Close()
	}
}

// daemon is one running spotlightd instance: the study loop, the HTTP
// server, and (optionally) the durable store behind both. Tests drive it
// directly; run wires it to flags and signals.
type daemon struct {
	st        *experiment.Study
	mu        sync.Mutex // owns st.Sim and st.Svc; HTTP touches only the clock under it
	ln        net.Listener
	srv       *http.Server
	apiSrv    *query.API
	serveErr  chan error
	stopTick  context.CancelFunc
	tickDone  chan struct{}
	storeDesc string

	closeOnce sync.Once
	closeErr  error
}

// startDaemon builds the study (recovering a durable store when
// configured), starts the tick loop and the HTTP server, and returns once
// the listener is live.
func startDaemon(opts options) (*daemon, error) {
	expCfg := experiment.Config{Seed: opts.seed, Days: 1, Tick: opts.tick}
	d := &daemon{serveErr: make(chan error, 1)}

	var pers *store.Persister
	if opts.dataDir != "" {
		db, err := store.Open(opts.dataDir, store.PersistOptions{})
		if err != nil {
			return nil, err
		}
		pers = db.Persister()
		expCfg.DB = db
		expCfg.Spotlight.SnapshotInterval = opts.snapInterval
		// Resume the study clock where the previous process stopped, so
		// the recovered record and the new one share a single timeline.
		expCfg.ResumeAt = pers.Clock()
		d.storeDesc = fmt.Sprintf(", durable store %s (%d markets recovered)",
			opts.dataDir, len(db.Markets()))
	}

	st, err := experiment.New(expCfg)
	if err != nil {
		if pers != nil {
			pers.Close() // release the data-dir lock; nothing was appended
		}
		return nil, err
	}
	d.st = st

	// The simulator and service are single-threaded by design; the tick
	// goroutine owns them and the HTTP layer only touches the
	// (concurrency-safe) store plus the clock under the mutex.
	interval := time.Duration(float64(opts.tick) / opts.speed)
	if interval <= 0 {
		interval = time.Millisecond
	}
	tickCtx, stopTick := context.WithCancel(context.Background())
	d.stopTick = stopTick
	d.tickDone = make(chan struct{})
	go func() {
		defer close(d.tickDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-tickCtx.Done():
				return
			case <-ticker.C:
				d.mu.Lock()
				st.Sim.Step()
				st.Svc.OnTick()
				d.mu.Unlock()
			}
		}
	}()

	engine := query.NewEngine(st.DB, st.Cat)
	apiSrv := query.NewAPI(engine, func() time.Time {
		d.mu.Lock()
		defer d.mu.Unlock()
		return st.Sim.Now()
	})
	d.apiSrv = apiSrv
	// Results cannot change faster than the study ticks, so intermediaries
	// may cache exactly one wall-clock tick without revalidating.
	apiSrv.SetCacheTTL(interval)
	apiSrv.SetWatchLimit(opts.maxWatchers)
	if pers != nil {
		// A durable store's generations survive restarts, so its ETags
		// should too: salt them with the data directory's stable salt
		// instead of this process's boot instant.
		apiSrv.SetETagSalt(pers.Salt())
	}

	// Listen explicitly so ":0" resolves to a concrete port before the
	// smoke check (and tests) need the base URL.
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		stopTick()
		<-d.tickDone
		// Close the durability layer too (flush + data-dir lock release),
		// so a failed start leaves the directory reusable in-process.
		if cerr := st.Svc.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	d.ln = ln
	d.srv = &http.Server{
		Handler:           apiSrv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { d.serveErr <- d.srv.Serve(ln) }()
	return d, nil
}

// addr returns the listener's concrete address.
func (d *daemon) addr() string { return d.ln.Addr().String() }

// Close shuts the daemon down cleanly: HTTP drains, the tick loop stops,
// and the service closes its durability layer (flushing the WAL, taking
// a final snapshot, and persisting the study clock). Idempotent.
func (d *daemon) Close() error {
	d.closeOnce.Do(func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		// Tear down live /v2/watch streams first: SSE handlers never
		// return on their own, so without this Shutdown would hang until
		// its timeout and leak the stream goroutines.
		d.apiSrv.Shutdown()
		err := d.srv.Shutdown(shutCtx)
		d.stopTick()
		<-d.tickDone
		d.mu.Lock()
		cerr := d.st.Svc.Close()
		d.mu.Unlock()
		if err == nil {
			err = cerr
		}
		d.closeErr = err
	})
	return d.closeErr
}

// smokeCheck exercises the full serving path end to end: a live
// /v2/watch stream opened through the client SDK must deliver at least
// one ingested event, one v2 batch of three distinct query kinds must
// succeed, and /v2/health must report an ok service.
func smokeCheck(ctx context.Context, baseURL string) error {
	c, err := client.New(baseURL, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()

	// Open the stream before querying so the ticks that answer the batch
	// also feed the watcher.
	w, err := c.Watch(ctx, client.WatchOptions{})
	if err != nil {
		return fmt.Errorf("smoke: watch failed to open: %w", err)
	}
	defer w.Close()

	resp, err := c.Batch(ctx,
		api.Query{Kind: api.KindStable, Region: "us-east-1", N: 5, Window: api.Last(24 * time.Hour)},
		api.Query{Kind: api.KindMarkets, Region: "us-east-1", Product: "Linux/UNIX"},
		api.Query{Kind: api.KindSummary},
	)
	if err != nil {
		return fmt.Errorf("smoke: batch query failed: %w", err)
	}
	for i, res := range resp.Results {
		if res.Error != nil {
			return fmt.Errorf("smoke: query %d (%s) failed: %v", i, res.Kind, res.Error)
		}
	}

	// The simulation ticks continuously, so a data event must arrive.
	var firstEvent api.EventKind
waitEvent:
	for {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				return fmt.Errorf("smoke: watch ended before any event: %v", w.Err())
			}
			if ev.Kind == api.EventHello {
				continue
			}
			firstEvent = ev.Kind
			break waitEvent
		case <-ctx.Done():
			return fmt.Errorf("smoke: no watch event before timeout: %w", ctx.Err())
		}
	}

	fmt.Printf("smoke: ok — v2 batch at sim clock %s: %d stable rows, %d markets, %d region summaries; watch delivered a %q event\n",
		resp.Now.Format(time.RFC3339), len(resp.Results[0].Stable), len(resp.Results[1].Markets), len(resp.Results[2].Summary), firstEvent)
	return nil
}
