// Command spotlightd runs the SpotLight information service as a daemon:
// the cloud simulation advances in accelerated time in the background
// while the query API (package query) is served over HTTP. This is the
// deployment shape of the paper's prototype — a continuously running
// information plane that applications query for availability data.
//
// Usage:
//
//	spotlightd [-addr :8080] [-seed 42] [-tick 5m] [-speed 300] [-smoke]
//
// With -speed 300, five simulated minutes (one tick) pass per wall-clock
// second. The service exposes two API surfaces (see docs/api.md for the
// full reference):
//
//	GET  /v1/unavailability?market=zone:type:product&kind=od|spot&window=24h
//	GET  /v1/stable?region=...&n=10&from=...&to=...
//	GET  /v1/volatile?region=...&n=10&window=24h
//	GET  /v1/fallback?market=...&n=5&window=24h
//	GET  /v1/prices?market=...&window=24h
//	GET  /v1/outages?market=...&window=24h
//	GET  /v1/predict?market=...&ratio=1.5&window=24h
//	GET  /v1/reserved-value?market=...&utilization=0.5&window=24h
//	GET  /v1/markets?region=...
//	GET  /v1/summary
//	POST /v2/query   — a batch of typed query specs answered in one round
//	                   trip; request and response DTOs live in pkg/api and
//	                   the Go SDK in pkg/client
//
// Windows are absolute (from/to, RFC3339) or relative (window=24h,
// resolved against the simulation clock). Errors use the machine-readable
// {code, message, details} envelope.
//
// With -smoke the daemon starts, issues one v2 batch query against itself
// through the pkg/client SDK, prints the result, and exits — the CI
// health check for the whole serving path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/query"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("spotlightd: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spotlightd", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", ":8080", "HTTP listen address")
		seed  = fs.Uint64("seed", 42, "simulation seed")
		tick  = fs.Duration("tick", 5*time.Minute, "simulation tick")
		speed = fs.Float64("speed", 300, "simulated seconds per wall second")
		smoke = fs.Bool("smoke", false, "serve, query self once via the client SDK, and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *speed <= 0 {
		return errors.New("speed must be positive")
	}

	st, err := experiment.New(experiment.Config{Seed: *seed, Days: 1, Tick: *tick})
	if err != nil {
		return err
	}

	// The simulator and service are single-threaded by design; the
	// driver goroutine owns them and the HTTP layer only touches the
	// (concurrency-safe) store plus the clock under the mutex.
	var mu sync.Mutex
	interval := time.Duration(float64(*tick) / *speed)
	if interval <= 0 {
		interval = time.Millisecond
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				mu.Lock()
				st.Sim.Step()
				st.Svc.OnTick()
				mu.Unlock()
			}
		}
	}()

	engine := query.NewEngine(st.DB, st.Cat)
	apiSrv := query.NewAPI(engine, func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return st.Sim.Now()
	})

	// Listen explicitly so ":0" resolves to a concrete port before the
	// smoke check (and tests) need the base URL.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           apiSrv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Printf("spotlightd: serving on %s (tick %v, %gx real time)\n", ln.Addr(), *tick, *speed)

	shutdown := func() error {
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}

	if *smoke {
		serr := smokeCheck(ctx, "http://"+ln.Addr().String())
		if herr := shutdown(); serr == nil {
			serr = herr
		}
		return serr
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		return shutdown()
	}
}

// smokeCheck exercises the full serving path end to end: one v2 batch of
// three distinct query kinds issued through the client SDK, every result
// required to succeed.
func smokeCheck(ctx context.Context, baseURL string) error {
	c, err := client.New(baseURL, nil)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	resp, err := c.Batch(ctx,
		api.Query{Kind: api.KindStable, Region: "us-east-1", N: 5, Window: api.Last(24 * time.Hour)},
		api.Query{Kind: api.KindMarkets, Region: "us-east-1", Product: "Linux/UNIX"},
		api.Query{Kind: api.KindSummary},
	)
	if err != nil {
		return fmt.Errorf("smoke: batch query failed: %w", err)
	}
	for i, res := range resp.Results {
		if res.Error != nil {
			return fmt.Errorf("smoke: query %d (%s) failed: %v", i, res.Kind, res.Error)
		}
	}
	fmt.Printf("smoke: ok — v2 batch at sim clock %s: %d stable rows, %d markets, %d region summaries\n",
		resp.Now.Format(time.RFC3339), len(resp.Results[0].Stable), len(resp.Results[1].Markets), len(resp.Results[2].Summary))
	return nil
}
