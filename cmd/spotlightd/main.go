// Command spotlightd runs the SpotLight information service as a daemon:
// the cloud simulation advances in accelerated time in the background
// while the query API (package query) is served over HTTP. This is the
// deployment shape of the paper's prototype — a continuously running
// information plane that applications query for availability data.
//
// Usage:
//
//	spotlightd [-addr :8080] [-seed 42] [-tick 5m] [-speed 300]
//
// With -speed 300, five simulated minutes (one tick) pass per wall-clock
// second. Endpoints:
//
//	GET /v1/unavailability?market=zone:type:product&kind=od|spot&from=...&to=...
//	GET /v1/stable?region=...&n=10&from=...&to=...
//	GET /v1/fallback?market=...&n=5&from=...&to=...
//	GET /v1/prices?market=...&from=...&to=...
//	GET /v1/summary
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/query"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal("spotlightd: ", err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("spotlightd", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", ":8080", "HTTP listen address")
		seed  = fs.Uint64("seed", 42, "simulation seed")
		tick  = fs.Duration("tick", 5*time.Minute, "simulation tick")
		speed = fs.Float64("speed", 300, "simulated seconds per wall second")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *speed <= 0 {
		return errors.New("speed must be positive")
	}

	st, err := experiment.New(experiment.Config{Seed: *seed, Days: 1, Tick: *tick})
	if err != nil {
		return err
	}

	// The simulator and service are single-threaded by design; the
	// driver goroutine owns them and the HTTP layer only touches the
	// (concurrency-safe) store plus the clock under the mutex.
	var mu sync.Mutex
	interval := time.Duration(float64(*tick) / *speed)
	if interval <= 0 {
		interval = time.Millisecond
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				mu.Lock()
				st.Sim.Step()
				st.Svc.OnTick()
				mu.Unlock()
			}
		}
	}()

	engine := query.NewEngine(st.DB, st.Cat)
	api := query.NewAPI(engine, func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return st.Sim.Now()
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("spotlightd: serving on %s (tick %v, %gx real time)\n", *addr, *tick, *speed)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}
