package main

import "testing"

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-speed", "not-a-number"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-speed", "0"}); err == nil {
		t.Error("zero speed accepted")
	}
	if err := run([]string{"-speed", "-5"}); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon startup test skipped in -short mode")
	}
	// ListenAndServe fails immediately on an unusable address and run
	// returns the error.
	if err := run([]string{"-addr", "256.256.256.256:99999"}); err == nil {
		t.Error("unusable address accepted")
	}
}
