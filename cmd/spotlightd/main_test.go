package main

import "testing"

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-speed", "not-a-number"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-speed", "0"}); err == nil {
		t.Error("zero speed accepted")
	}
	if err := run([]string{"-speed", "-5"}); err == nil {
		t.Error("negative speed accepted")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon startup test skipped in -short mode")
	}
	// net.Listen fails immediately on an unusable address and run
	// returns the error.
	if err := run([]string{"-addr", "256.256.256.256:99999"}); err == nil {
		t.Error("unusable address accepted")
	}
}

// TestSmokeServesV2Batch boots the daemon on an ephemeral port and runs
// the -smoke path: a three-kind v2 batch issued against the live server
// through the pkg/client SDK. This is the same check CI runs as a
// workflow step.
func TestSmokeServesV2Batch(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon smoke test skipped in -short mode")
	}
	if err := run([]string{"-addr", "127.0.0.1:0", "-smoke"}); err != nil {
		t.Fatalf("smoke run failed: %v", err)
	}
}
