// BidSpread example: discover the *intrinsic* price of a volatile spot
// market — the lowest bid that actually wins an instance right now, which
// can sit above the published price because the published feed lags the
// true clearing price (§5.1.2, Fig 5.2). The target's volatility ranking
// is first confirmed against the live query service through the Go client
// SDK, the way a user would pick a market to aim BidSpread at.
//
//	go run ./examples/bidspread
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"spotlight/internal/analysis"
	"spotlight/internal/core"
	"spotlight/internal/experiment"
	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	target := experiment.BidSpreadMarket()
	st, err := experiment.Run(experiment.Config{
		Seed: 5,
		Days: 5,
		Spotlight: core.Config{
			BidSpreadMarkets:  []market.SpotID{target},
			BidSpreadInterval: 2 * time.Hour, // search aggressively for the demo
		},
	})
	if err != nil {
		return err
	}
	from, to := st.Window()

	// Chapter 4: the Revocation/BidSpread probing functions target
	// "selected markets by users with high volatility" — so ask the
	// service for the volatility ranking the selection would come from.
	apiSrv := query.NewAPI(query.NewEngine(st.DB, st.Cat), func() time.Time { return to })
	srv := httptest.NewServer(apiSrv.Handler())
	defer srv.Close()
	c, err := client.New(srv.URL, nil)
	if err != nil {
		return err
	}
	volatile, err := c.Volatile(context.Background(), string(target.Region()), string(target.Product), 5, api.Between(from, to))
	if err != nil {
		return err
	}
	fmt.Printf("most volatile %s %s markets over the study:\n", target.Region(), target.Product)
	for i, v := range volatile {
		marker := " "
		if v.Market == target.String() {
			marker = "*"
		}
		fmt.Printf("%s %d. %-42s crossings=%d maxRatio=%.2f\n", marker, i+1, v.Market, v.Crossings, v.MaxRatio)
	}
	fmt.Println()

	res := analysis.Fig52IntrinsicPrice(st.DB, target)
	fmt.Printf("BidSpread on %s over 5 simulated days\n", target)
	fmt.Printf("searches: %d, mean attempts: %.2f (paper: avg 2-3, max 6)\n",
		len(res.Records), res.MeanAttempts)
	fmt.Printf("published price was insufficient in %.1f%% of searches\n\n",
		100*res.PremiumFraction)

	fmt.Println("        time   published   intrinsic   premium  attempts")
	for _, r := range res.Records {
		premium := 100 * (r.Intrinsic - r.Published) / r.Published
		fmt.Printf("%s   $%8.4f   $%8.4f   %+6.1f%%  %d\n",
			r.At.Format("01-02 15:04"), r.Published, r.Intrinsic, premium, r.Attempts)
	}
	fmt.Println("\nIn stable periods the intrinsic price equals the published price;")
	fmt.Println("during volatility a winning bid must exceed it (Fig 5.2).")
	return nil
}
