// Live-watch example: the push side of the information service. A
// SpotLight study ingests in the background while a consumer — a
// SpotCheck-style derivative platform — subscribes to GET /v2/watch
// through pkg/client.Watch and steers its fallback market from pushed
// events instead of polling: every revocation or outage-open event in
// its region invalidates the cached recommendation, and the next
// migration decision re-fetches it over the query API. This closes the
// loop the poll-based examples leave open: one store append fans out to
// every subscriber, and reaction latency drops from a polling interval
// to a tick.
//
//	go run ./examples/live-watch
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/internal/spotcheck"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A one-day study stepped manually, the daemon's serving shape in
	// miniature: ticks ingest, the query API serves, the feed pushes.
	st, err := experiment.New(experiment.Config{Seed: 21, Days: 1})
	if err != nil {
		return err
	}
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return st.Sim.Now()
	}
	apiSrv := query.NewAPI(query.NewEngine(st.DB, st.Cat), now)
	apiSrv.SetCacheTTL(time.Second)
	defer apiSrv.Shutdown()
	srv := httptest.NewServer(apiSrv.Handler())
	defer srv.Close()

	c, err := client.New(srv.URL, nil)
	if err != nil {
		return err
	}
	ctx := context.Background()

	// The platform hosts VMs on this case-study market and watches its
	// region for availability news.
	host := experiment.CaseStudyMarkets()[0]
	w, err := c.Watch(ctx, client.WatchOptions{
		Region: string(host.Region()),
		Kinds:  []api.EventKind{api.EventRevocation, api.EventOutageOpen, api.EventOutageClose},
		Buffer: 1024,
	})
	if err != nil {
		return err
	}
	defer w.Close()

	// Event-steered fallback: recompute only when the watch pushed news
	// since the last migration decision.
	signaled := func(time.Time) bool {
		saw := false
		for {
			select {
			case ev, ok := <-w.Events():
				if !ok {
					return saw
				}
				if ev.Kind == api.EventRevocation || ev.Kind == api.EventOutageOpen || ev.Kind == api.EventOutageClose {
					saw = true
				}
			default:
				return saw
			}
		}
	}
	recomputes := 0
	steer := spotcheck.EventSteeredFallback(signaled, func(t time.Time) market.SpotID {
		recomputes++
		fbs, err := c.Fallback(ctx, host.String(), 1, api.Last(24*time.Hour))
		if err != nil || len(fbs) == 0 {
			return host
		}
		parsed, perr := market.ParseSpotID(fbs[0].Market)
		if perr != nil {
			return host
		}
		return parsed
	})

	fmt.Printf("live-watch: hosting on %s, watching region %s for revocations/outages\n\n", host, host.Region())

	// Ingest half a simulated day, consulting the steering every hour the
	// way a migration controller would.
	const ticks = 144 // 12h at 5m
	decisions := 0
	for i := 0; i < ticks; i++ {
		mu.Lock()
		st.Sim.Step()
		st.Svc.OnTick()
		mu.Unlock()
		if i%12 == 11 { // once per simulated hour
			decisions++
			target := steer(now())
			if target != host {
				fmt.Printf("%s  steering: fall back to %s\n", now().Format("15:04"), target)
			}
		}
	}

	stats := st.DB.Feed().Stats()
	fmt.Printf("\nafter 12 simulated hours: %d feed events published, %d migration decisions, %d steering recomputes\n",
		stats.Published, decisions, recomputes)
	fmt.Printf("(the controller re-ran the fallback query only when events arrived — %d times, not %d)\n",
		recomputes, decisions)

	// The operator's view of the same subsystem.
	health, err := fetchHealth(srv.URL)
	if err != nil {
		return err
	}
	fmt.Printf("health: status=%s store=%s watchers=%d/%d published=%d dropped=%d\n",
		health.Status, health.Store.Mode, health.Watch.Subscribers, health.Watch.Cap,
		health.Watch.Published, health.Watch.Dropped)
	return nil
}

// fetchHealth reads GET /v2/health.
func fetchHealth(baseURL string) (api.Health, error) {
	var h api.Health
	resp, err := http.Get(baseURL + "/v2/health")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("health: HTTP %d", resp.StatusCode)
	}
	return h, json.NewDecoder(resp.Body).Decode(&h)
}
