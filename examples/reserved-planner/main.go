// Reserved-planner example: the paper's opening motivation made
// executable. "Determining whether the reserved instance is worth it
// requires knowing how frequently on-demand instances are unavailable"
// (§1) — so run a study, serve it, and ask the information service per
// market whether a reservation is worth buying. §5.2.2's punchline falls
// out: a reserved server in an under-provisioned region is worth more
// than the same server in us-east-1. The three assessments travel as one
// v2 batch through the Go client SDK.
//
//	go run ./examples/reserved-planner
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	st, err := experiment.Run(experiment.Config{Seed: 17, Days: 7})
	if err != nil {
		return err
	}
	from, to := st.Window()

	apiSrv := query.NewAPI(query.NewEngine(st.DB, st.Cat), func() time.Time { return to })
	srv := httptest.NewServer(apiSrv.Handler())
	defer srv.Close()
	c, err := client.New(srv.URL, nil)
	if err != nil {
		return err
	}

	// The same server type in a healthy and an unhealthy region, plus a
	// known-hot market; a moderate 50% planned duty cycle for all.
	candidates := []market.SpotID{
		{Zone: "us-east-1a", Type: "m4.xlarge", Product: market.ProductLinux},
		{Zone: "sa-east-1a", Type: "m4.xlarge", Product: market.ProductLinux},
		{Zone: "us-east-1e", Type: "d2.8xlarge", Product: market.ProductLinux},
	}
	const duty = 0.5

	fmt.Printf("reservation planning at %.0f%% planned utilization\n", 100*duty)
	fmt.Printf("(break-even duty cycle: %.0f%%; unavailability that justifies the\n",
		100*(1-query.DefaultReservedDiscount))
	fmt.Printf(" obtainability guarantee regardless of cost: %.1f%%)\n\n",
		100*query.UnavailabilityWorthReserving)

	// One round trip for all three assessments.
	week := api.Last(to.Sub(from))
	queries := make([]api.Query, len(candidates))
	for i, m := range candidates {
		queries[i] = api.Query{Kind: api.KindReservedValue, Market: m.String(), Utilization: duty, Window: week}
	}
	resp, err := c.Batch(context.Background(), queries...)
	if err != nil {
		return err
	}
	for i, res := range resp.Results {
		if res.Error != nil {
			return fmt.Errorf("reserved-value query %d: %v", i, res.Error)
		}
		rv := res.ReservedValue
		decision := "stay on-demand"
		if rv.Reserve {
			decision = "RESERVE"
		}
		fmt.Printf("%-44s od $%.4f/h, reserved $%.4f/h, measured od-unavailability %.3f%%\n",
			rv.Market, rv.ODHourly, rv.ReservedEffectiveHourly, 100*rv.ODUnavailability)
		fmt.Printf("  -> %s (%s)\n\n", decision, rv.Reason)
	}

	// And the purchase itself, against the platform: a granted
	// reservation starts even while the pool rejects on-demand requests.
	target := candidates[2]
	res, err := st.Sim.PurchaseReservation(target, 30*24*3600e9)
	if err != nil {
		fmt.Printf("purchase on %s rejected right now (%v) — §2.1.2's footnote:\n", target, err)
		fmt.Println("the guarantee only begins once a reservation is granted.")
		return nil
	}
	fmt.Printf("purchased %s on %s for $%.2f upfront (30-day term)\n", res.ID, target, res.UpfrontCost)
	if err := st.Sim.StartReserved(res.ID); err != nil {
		return err
	}
	fmt.Println("reserved instance started — guaranteed obtainable, unlike on-demand")
	return nil
}
