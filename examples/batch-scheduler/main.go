// Batch-scheduler example: a SpotOn-style service that places checkpointed
// batch jobs on the spot market with the lowest expected cost (the
// paper's Eq 6.1), then measures real completion times with and without
// SpotLight's availability data (the Fig 6.2 effect).
//
// The scheduler consumes SpotLight the way an external service would:
// over HTTP through the Go client SDK, fetching every candidate's price
// history in one POST /v2/query batch instead of hand-rolled URLs.
//
//	go run ./examples/batch-scheduler
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"sort"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/internal/spoton"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	st, err := experiment.Run(experiment.Config{Seed: 33, Days: 7})
	if err != nil {
		return err
	}
	from, to := st.Window()

	apiSrv := query.NewAPI(query.NewEngine(st.DB, st.Cat), func() time.Time { return to })
	srv := httptest.NewServer(apiSrv.Handler())
	defer srv.Close()
	c, err := client.New(srv.URL, nil)
	if err != nil {
		return err
	}

	// Step 1: fetch every candidate's price series in one batch round
	// trip, then rank by Eq 6.1's expected cost for a 1-hour job with a
	// 6-minute checkpoint, estimating revocation statistics from
	// SpotLight's spike log.
	candidates := experiment.CaseStudyMarkets()
	window := api.Between(from, to)
	queries := make([]api.Query, len(candidates))
	for i, id := range candidates {
		queries[i] = api.Query{Kind: api.KindPrices, Market: id.String(), Window: window}
	}
	resp, err := c.Batch(context.Background(), queries...)
	if err != nil {
		return err
	}

	fmt.Println("Eq 6.1 expected cost per useful hour (1h job, 6m checkpoints):")
	type scored struct {
		id   market.SpotID
		cost float64
		mttr time.Duration
	}
	var ranked []scored
	for i, id := range candidates {
		if resp.Results[i].Error != nil {
			return fmt.Errorf("prices query for %s: %v", id, resp.Results[i].Error)
		}
		pts := resp.Results[i].Prices
		if len(pts) == 0 {
			continue
		}
		od, err := st.Cat.SpotODPrice(id)
		if err != nil {
			return err
		}
		mean := 0.0
		for _, p := range pts {
			mean += p.Price
		}
		mean /= float64(len(pts))
		crossings := len(st.DB.SpikesFor(id, from, to))
		mttr := to.Sub(from) / time.Duration(crossings+1)
		tau := spoton.OptimalCheckpointInterval(6*time.Minute, mttr, time.Hour)
		pRevoke := 1 - float64(mttr)/(float64(mttr)+float64(time.Hour))
		cost, err := spoton.ExpectedCostPerUnitTime(spoton.ExpectedCostParams{
			SpotPrice:              mean,
			RevocationProb:         pRevoke,
			ExpectedRevocationTime: mttr / 2,
			RemainingTime:          time.Hour,
			CheckpointTime:         6 * time.Minute,
			CheckpointInterval:     tau,
			LostWork:               tau / 2,
		})
		if err != nil {
			continue
		}
		ranked = append(ranked, scored{id: id, cost: cost, mttr: mttr})
		fmt.Printf("  %-42s $%.4f/useful-hour (od $%.4f, mttr %v)\n",
			id, cost, od, mttr.Round(time.Hour))
	}
	if len(ranked) == 0 {
		return fmt.Errorf("no candidate markets had price data")
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].cost < ranked[j].cost })
	fmt.Printf("\nEq 6.1 picks %s\n\n", ranked[0].id)

	// Step 2: run the actual jobs and show what the paper's Fig 6.2
	// shows — the naive fallback pays for the availability assumption,
	// SpotLight does not.
	rows, err := st.RunSpotOn(50)
	if err != nil {
		return err
	}
	fmt.Println("mean completion of a 1-hour job (50 trials per market):")
	for _, r := range rows {
		fmt.Printf("  %-42s naive %.2fh  spotlight %.2fh  ideal %.2fh\n",
			r.Market, r.SpotOnHours, r.SpotLightHours, r.IdealHours)
	}

	// Step 3: SpotOn's other fault-tolerance mechanism — replication
	// across two volatile markets instead of checkpointing (§6.2). No
	// checkpoint overhead, but every replica's spot hours are paid.
	fmt.Println("\nreplication instead of checkpointing (2 replicas, 20 trials):")
	repA, repB := ranked[0].id, ranked[len(ranked)-1].id
	var replicas []spoton.Replica
	for _, id := range []market.SpotID{repA, repB} {
		od, err := st.Cat.SpotODPrice(id)
		if err != nil {
			return err
		}
		replicas = append(replicas, spoton.Replica{
			Market: id, ODPrice: od, Trace: st.DB.Prices(id),
		})
	}
	starts := make([]time.Time, 20)
	for i := range starts {
		starts[i] = from.Add(time.Duration(i) * 6 * time.Hour)
	}
	stats, err := spoton.RunReplicatedTrials(spoton.ReplicatedJobConfig{
		Replicas:    replicas,
		Platform:    alwaysUp{},
		RunningTime: time.Hour,
	}, starts)
	if err != nil {
		return err
	}
	fmt.Printf("  replicas %s + %s\n", repA, repB)
	fmt.Printf("  mean completion %.2fh (no checkpoint overhead), mean spot cost $%.3f/run, %d restarts\n",
		stats.MeanCompletion.Hours(), stats.MeanSpotCost, stats.Restarts)
	return nil
}

// alwaysUp is the optimistic platform assumption for the replication demo.
type alwaysUp struct{}

func (alwaysUp) ODAvailable(market.SpotID, time.Time) bool { return true }
