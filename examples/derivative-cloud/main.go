// Derivative-cloud example: a SpotCheck-style interactive service that
// hosts nested VMs on spot servers and live-migrates to on-demand servers
// on revocation. It compares the naive fallback (same market, assumed
// always obtainable — the assumption the paper debunks) against a
// SpotLight-informed fallback to an uncorrelated family, reproducing the
// Fig 6.1 effect.
//
//	go run ./examples/derivative-cloud
package main

import (
	"fmt"
	"log"

	"spotlight/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	st, err := experiment.Run(experiment.Config{Seed: 21, Days: 7})
	if err != nil {
		return err
	}

	rows, err := st.RunSpotCheck()
	if err != nil {
		return err
	}

	fmt.Println("SpotCheck-style derivative cloud availability over one simulated week")
	fmt.Println("(naive = fall back to the same market's on-demand tier; informed =")
	fmt.Println(" fall back to the uncorrelated market SpotLight recommends)")
	fmt.Println()
	for _, r := range rows {
		verdict := "ok"
		if r.FailedFails > 0 {
			verdict = fmt.Sprintf("%d failovers hit unavailable on-demand pools", r.FailedFails)
		}
		fmt.Printf("%-42s naive %6.2f%%  informed %6.2f%%  (%d revocations; %s)\n",
			r.Market, r.SpotCheckPct, r.SpotLightPct, r.Revocations, verdict)
	}
	fmt.Println()
	fmt.Println("The paper's observation: revocations happen exactly when the spot price")
	fmt.Println("spikes past the on-demand price — which is exactly when the same pool's")
	fmt.Println("on-demand tier is most likely to be sold out (§6.1).")
	return nil
}
