// Derivative-cloud example: a SpotCheck-style interactive service that
// hosts nested VMs on spot servers and live-migrates to on-demand servers
// on revocation. It compares the naive fallback (same market, assumed
// always obtainable — the assumption the paper debunks) against a
// SpotLight-informed fallback to an uncorrelated family, reproducing the
// Fig 6.1 effect. The fallback recommendations and the closing region
// summary are fetched from the live service through the Go client SDK.
//
//	go run ./examples/derivative-cloud
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/query"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	st, err := experiment.Run(experiment.Config{Seed: 21, Days: 7})
	if err != nil {
		return err
	}
	from, to := st.Window()

	apiSrv := query.NewAPI(query.NewEngine(st.DB, st.Cat), func() time.Time { return to })
	srv := httptest.NewServer(apiSrv.Handler())
	defer srv.Close()
	c, err := client.New(srv.URL, nil)
	if err != nil {
		return err
	}

	rows, err := st.RunSpotCheck()
	if err != nil {
		return err
	}

	fmt.Println("SpotCheck-style derivative cloud availability over one simulated week")
	fmt.Println("(naive = fall back to the same market's on-demand tier; informed =")
	fmt.Println(" fall back to the uncorrelated market SpotLight recommends)")
	fmt.Println()
	ctx := context.Background()
	for _, r := range rows {
		verdict := "ok"
		if r.FailedFails > 0 {
			verdict = fmt.Sprintf("%d failovers hit unavailable on-demand pools", r.FailedFails)
		}
		fmt.Printf("%-42s naive %6.2f%%  informed %6.2f%%  (%d revocations; %s)\n",
			r.Market, r.SpotCheckPct, r.SpotLightPct, r.Revocations, verdict)

		// The recommendation an operator would fetch before deploying:
		// the service's top uncorrelated fail-over market.
		fbs, err := c.Fallback(ctx, r.Market.String(), 1, api.Between(from, to))
		if err != nil {
			return err
		}
		if len(fbs) > 0 {
			fmt.Printf("%-42s   service recommends failing over to %s (od-unavailability %.4f%%)\n",
				"", fbs[0].Market, 100*fbs[0].ODUnavailability)
		}
	}
	fmt.Println()
	fmt.Println("The paper's observation: revocations happen exactly when the spot price")
	fmt.Println("spikes past the on-demand price — which is exactly when the same pool's")
	fmt.Println("on-demand tier is most likely to be sold out (§6.1).")

	// Close with the service's own per-region accounting of the week.
	sums, err := c.Summary(ctx)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("per-region availability summary (from GET /v1/summary):")
	for _, s := range sums {
		fmt.Printf("  %-16s od outages %4d (mean %v), spot outages %4d\n",
			s.Region, s.ODOutages, s.MeanODOutage.Round(time.Minute), s.SpotOutages)
	}
	return nil
}
