// Fleet-manager example: the full observe→decide→act loop. A SpotLight
// deployment monitors a simulated cloud; the decision layer is consumed
// the way an external operator would — POST /v2/advise over HTTP through
// the Go client SDK — and then the fleet subsystem runs the paper's
// threshold bidding policy head-to-head against the feedback-control
// policy (Li/Kihl/Robertsson) on identically-seeded clouds, reporting
// cost, availability, and migration counts.
//
//	go run ./examples/fleet-manager [-days N] [-seed N] [-target N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/query"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	days := flag.Int("days", 2, "simulated days each fleet runs")
	seed := flag.Uint64("seed", 42, "simulation seed")
	target := flag.Int("target", 4, "fleet size")
	flag.Parse()
	if err := run(*days, *seed, *target); err != nil {
		log.Fatal(err)
	}
}

func run(days int, seed uint64, target int) error {
	// Part 1: ask the advisor over the wire. One warmed-up study gives
	// the endpoint price history to rank from.
	st, err := experiment.Run(experiment.Config{Seed: seed, Days: 1})
	if err != nil {
		return err
	}
	apiSrv := query.NewAPI(query.NewEngine(st.DB, st.Cat), st.Sim.Now)
	srv := httptest.NewServer(apiSrv.Handler())
	defer srv.Close()
	c, err := client.New(srv.URL, nil)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := c.Advise(ctx, api.AdviseRequest{
		AdviseConstraints: api.AdviseConstraints{
			Regions:  []string{"us-east-1"},
			Products: []string{"Linux/UNIX"},
			MinVCPU:  4,
			N:        5,
		},
		Window: api.Last(24 * time.Hour),
	})
	if err != nil {
		return err
	}
	fmt.Printf("POST /v2/advise — top markets for >=4 vCPU Linux in us-east-1 (window %s..%s):\n",
		resp.From.Format("01-02 15:04"), resp.To.Format("01-02 15:04"))
	for _, cand := range resp.Candidates {
		fmt.Printf("  #%d %-34s score %5.1f  mean $%.4f/h (od $%.3f, save %4.1f%%)  interrupt %.2f/h  %d vCPU\n",
			cand.Rank, cand.Market, cand.Score, cand.SpotPriceMean,
			cand.OnDemandPrice, cand.SavingsPcnt, cand.InterruptionRate, cand.VCPU)
	}

	// Part 2: the event-steered fleets, one per bidding policy.
	fmt.Printf("\nfleet head-to-head — target %d instances, %d simulated day(s) after warm-up:\n\n", target, days)
	rows, err := experiment.RunFleetComparison(experiment.FleetStudyConfig{
		Seed:   seed,
		Days:   days,
		Target: target,
	})
	if err != nil {
		return err
	}
	return experiment.WriteFleetComparison(os.Stdout, rows)
}
