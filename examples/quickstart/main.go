// Quickstart: run a short SpotLight study against the simulated cloud,
// serve it over HTTP, and ask the information service the paper's
// canonical questions through the Go client SDK — which spot markets were
// the most stable over the past week, how available was a given market's
// on-demand tier, and where should an application there fail over to?
// All three questions travel in ONE POST /v2/query round trip.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One simulated week of monitoring all ~4500 markets.
	st, err := experiment.Run(experiment.Config{Seed: 7, Days: 7})
	if err != nil {
		return err
	}
	from, to := st.Window()
	fmt.Printf("monitored %d markets for %v: %d probes, %d price spikes, $%.0f spent\n\n",
		len(st.Cat.SpotMarkets()), to.Sub(from), st.DB.ProbeCount(), len(st.DB.Spikes()), st.Svc.Spent())

	// Serve the study over HTTP and talk to it like any external consumer:
	// through pkg/client, never with hand-rolled URLs.
	apiSrv := query.NewAPI(query.NewEngine(st.DB, st.Cat), func() time.Time { return to })
	srv := httptest.NewServer(apiSrv.Handler())
	defer srv.Close()
	c, err := client.New(srv.URL, nil)
	if err != nil {
		return err
	}

	target := market.SpotID{Zone: "sa-east-1a", Type: "d2.8xlarge", Product: market.ProductLinux}
	week := api.Last(to.Sub(from))

	// Three distinct query kinds, one round trip. The first is the
	// paper's example query (Chapter 3): "the top ten server types with
	// the longest mean-time-to-revocation for a bid price equal to the
	// corresponding on-demand price over the past week".
	resp, err := c.Batch(context.Background(),
		api.Query{Kind: api.KindStable, Region: "us-east-1", Product: string(market.ProductLinux), N: 10, Window: week},
		api.Query{Kind: api.KindUnavailability, Market: target.String(), Window: week},
		api.Query{Kind: api.KindFallback, Market: target.String(), N: 3, Window: week},
	)
	if err != nil {
		return err
	}
	for i, res := range resp.Results {
		if res.Error != nil {
			return fmt.Errorf("batch query %d (%s): %v", i, res.Kind, res.Error)
		}
	}

	fmt.Println("most stable us-east-1 Linux spot markets (bid = on-demand price):")
	for i, row := range resp.Results[0].Stable {
		fmt.Printf("%2d. %-42s mttr>=%v crossings=%d\n",
			i+1, row.Market, row.MTTR.Round(time.Hour), row.Crossings)
	}

	unav := resp.Results[1].Unavailability
	fmt.Printf("\non-demand availability of %s: %.3f%%\n", unav.Market, 100*unav.Availability)

	fmt.Println("recommended uncorrelated fallback markets:")
	for _, fb := range resp.Results[2].Fallbacks {
		fmt.Printf("  %-42s od-unavailability=%.4f%%\n", fb.Market, 100*fb.ODUnavailability)
	}
	return nil
}
