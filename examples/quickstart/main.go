// Quickstart: run a short SpotLight study against the simulated cloud and
// ask the information service the paper's canonical question — which spot
// markets were the most stable over the past week, and how available was a
// given market's on-demand tier?
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/market"
	"spotlight/internal/query"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One simulated week of monitoring all ~4500 markets.
	st, err := experiment.Run(experiment.Config{Seed: 7, Days: 7})
	if err != nil {
		return err
	}
	from, to := st.Window()
	fmt.Printf("monitored %d markets for %v: %d probes, %d price spikes, $%.0f spent\n\n",
		len(st.Cat.SpotMarkets()), to.Sub(from), st.DB.ProbeCount(), len(st.DB.Spikes()), st.Svc.Spent())

	engine := query.NewEngine(st.DB, st.Cat)

	// The paper's example query (Chapter 3): "the top ten server types
	// with the longest mean-time-to-revocation for a bid price equal to
	// the corresponding on-demand price over the past week".
	stable, err := engine.TopStableMarkets("us-east-1", market.ProductLinux, 10, from, to)
	if err != nil {
		return err
	}
	fmt.Println("most stable us-east-1 Linux spot markets (bid = on-demand price):")
	for i, row := range stable {
		fmt.Printf("%2d. %-42s mttr>=%v crossings=%d\n",
			i+1, row.Market, row.MTTR.Round(time.Hour), row.Crossings)
	}

	// How available was a specific on-demand market?
	target := market.SpotID{Zone: "sa-east-1a", Type: "d2.8xlarge", Product: market.ProductLinux}
	unav, err := engine.ODUnavailability(target, from, to)
	if err != nil {
		return err
	}
	fmt.Printf("\non-demand availability of %s: %.3f%%\n", target, 100*(1-unav))

	// And where should an application running there fail over to?
	fallbacks, err := engine.RecommendFallback(target, 3, from, to)
	if err != nil {
		return err
	}
	fmt.Println("recommended uncorrelated fallback markets:")
	for _, fb := range fallbacks {
		fmt.Printf("  %-42s od-unavailability=%.4f%%\n", fb.Market, 100*fb.ODUnavailability)
	}
	return nil
}
