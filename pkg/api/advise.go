package api

import "time"

// The advise query: the decision layer on top of the ten observational
// kinds. Given workload constraints (capacity floors, price and
// interruption ceilings, a region/product set — the input schema of
// spotinfo's find_spot_instances), the service ranks the spot markets it
// has price history for by a composite score over its own rollup
// aggregates. It is reachable two ways with identical semantics: as the
// dedicated POST /v2/advise endpoint (body: AdviseRequest) and as the
// KindAdvise arm of the POST /v2/query batch envelope.

// KindAdvise ranks candidate spot markets for a workload's constraints.
// It is the eleventh query kind; unlike the observational ten it answers
// "what should I run" rather than "what is the market doing".
const KindAdvise Kind = "advise"

// AdviseConstraints is the workload description the advisor filters and
// ranks against. The zero value means "any market with price history".
type AdviseConstraints struct {
	// Regions restricts candidates to these regions. Empty, or a single
	// "all" entry, means every region. An unknown region name is a
	// bad_param error, not an empty result.
	Regions []string `json:"regions,omitempty"`
	// Products restricts candidates to these platforms ("Linux/UNIX",
	// "SUSE Linux", "Windows"). Empty means every platform.
	Products []string `json:"products,omitempty"`
	// InstanceTypes filters by instance type: an exact type ("c3.2xlarge"),
	// a family glob ("c3.*"), or empty for all types.
	InstanceTypes string `json:"instanceTypes,omitempty"`
	// MinVCPU is the minimum vCPU count per instance; 0 means no floor.
	MinVCPU int `json:"minVCPU,omitempty"`
	// MinMemoryGB is the minimum memory per instance; 0 means no floor.
	MinMemoryGB float64 `json:"minMemoryGB,omitempty"`
	// MaxPricePerHour caps the window's mean spot price; 0 means no cap.
	MaxPricePerHour float64 `json:"maxPricePerHour,omitempty"`
	// MaxInterruptionRate caps the estimated probability in [0,1] that an
	// instance bid at the on-demand price is revoked within one hour; 0
	// means no cap.
	MaxInterruptionRate float64 `json:"maxInterruptionRate,omitempty"`
	// N bounds the ranking; 0 means the default of 10.
	N int `json:"n,omitempty"`
}

// AdviseRequest is the body of POST /v2/advise: the constraints plus the
// history window the ranking statistics are computed over. A zero window
// defaults to the last 24 hours.
type AdviseRequest struct {
	AdviseConstraints
	Window
}

// AdviseCandidate is one ranked market recommendation. Every statistic is
// computed over the request window from the store's own observations;
// markets the service has no price samples for are not candidates.
type AdviseCandidate struct {
	// Rank is the 1-based position in the ranking.
	Rank   int    `json:"rank"`
	Market string `json:"market"`
	// VCPU and MemoryGB are the instance type's capacity attributes.
	VCPU     int     `json:"vcpu"`
	MemoryGB float64 `json:"memoryGB"`
	// OnDemandPrice is the catalog on-demand price for the market.
	OnDemandPrice float64 `json:"onDemandPrice"`
	// Spot price statistics over the window.
	SpotPriceMin  float64 `json:"spotPriceMin"`
	SpotPriceMean float64 `json:"spotPriceMean"`
	SpotPriceMax  float64 `json:"spotPriceMax"`
	PriceSamples  int     `json:"priceSamples"`
	// SavingsPcnt is the mean spot discount vs on-demand, in percent.
	SavingsPcnt float64 `json:"savingsPcnt"`
	// Crossings counts spot-above-on-demand price crossings in the window.
	Crossings int `json:"crossings"`
	// InterruptionRate estimates P(revocation within 1h) for a bid equal
	// to the on-demand price, from the window's crossing rate, in [0,1].
	InterruptionRate float64 `json:"interruptionRate"`
	// SpotUnavailability is the detected spot-tier outage fraction of the
	// window.
	SpotUnavailability float64 `json:"spotUnavailability"`
	// Revocations counts completed revocation-watch observations.
	Revocations int `json:"revocations"`
	// LiveOutage reports an outage (either tier) open at the window end.
	LiveOutage bool `json:"liveOutage"`
	// Score is the composite ranking score in [0,100]; higher is better.
	Score float64 `json:"score"`
}

// AdviseResult is the payload of one advise answer: the resolved window
// and the ranked candidates (empty when no market satisfies the
// constraints — that is a valid answer, not an error).
type AdviseResult struct {
	From       time.Time         `json:"from"`
	To         time.Time         `json:"to"`
	Candidates []AdviseCandidate `json:"candidates"`
}

// AdviseResponse is the body of a successful POST /v2/advise: the service
// clock the window resolved against plus the result.
type AdviseResponse struct {
	Now time.Time `json:"now"`
	AdviseResult
	// Partial, set only by the gateway, lists the upstream nodes whose
	// answers are missing from a fanned-out merge (ejected, timed out, or
	// erroring). The ranking covers the remaining partitions' markets.
	Partial []string `json:"partial,omitempty"`
}
