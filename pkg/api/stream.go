package api

import "time"

// Live streaming (GET /v2/watch).
//
// The watch endpoint is SpotLight's push surface: instead of polling the
// query endpoints and revalidating ETags, a consumer opens one
// long-lived request and receives typed events — probes, price samples,
// spike crossings, revocations, bid spreads, and derived outage
// open/close transitions — as the store ingests them, over standard
// Server-Sent Events (text/event-stream).
//
// Wire format: each event is one SSE frame
//
//	id: <resume token>
//	event: <kind>
//	data: <StreamEvent JSON>
//
// followed by a blank line. The stream opens with a "hello" frame
// carrying the store generation the subscription attached at, emits
// "heartbeat" frames while idle, and — when the consumer falls behind
// the per-subscription buffer — a terminal "lagged" frame whose data
// names the generation to resume from, after which the server closes the
// stream and the client reconnects with Last-Event-ID.
//
// Resume: replaying the last received id in the Last-Event-ID header (or
// the lastEventId query parameter) continues the stream. The gap is
// bridged exactly — from the server's in-memory replay ring — whenever
// it is still covered; otherwise the server sends a "resync" frame and
// rebuilds the gap best-effort from the store's windowed indexes
// (at-least-once: events at the resume boundary may repeat). Query
// parameters: market OR region/product scope the subscription, kinds is
// a comma-separated EventKind list, and since=<duration> asks a fresh
// subscription for an initial windowed backfill.
//
// Capacity: the server enforces a subscriber cap; beyond it /v2/watch
// answers 429 with the usual error envelope (code "overloaded") and a
// Retry-After header.
const (
	// HeaderLastEventID carries the resume token on reconnect (the SSE
	// standard header EventSource sends automatically).
	HeaderLastEventID = "Last-Event-ID"
	// HeaderRetryAfter tells a rejected (429) watcher how many seconds to
	// wait before reconnecting.
	HeaderRetryAfter = "Retry-After"
)

// EventKind names one live-stream event family on the wire.
type EventKind string

// Stream event kinds. The first seven mirror the store's change feed;
// hello/heartbeat/lagged/resync are stream-control frames.
const (
	// EventProbe: one probe was logged.
	EventProbe EventKind = "probe"
	// EventPrice: one spot price observation was recorded.
	EventPrice EventKind = "price"
	// EventSpike: one spot-price threshold crossing was logged.
	EventSpike EventKind = "spike"
	// EventRevocation: one completed revocation watch was logged.
	EventRevocation EventKind = "revocation"
	// EventBidSpread: one intrinsic-price search result was logged.
	EventBidSpread EventKind = "bid-spread"
	// EventOutageOpen: a detected outage interval opened.
	EventOutageOpen EventKind = "outage-open"
	// EventOutageClose: a detected outage interval closed.
	EventOutageClose EventKind = "outage-close"
	// EventHello opens every stream: the generation and clock the
	// subscription attached at, and how a resume request was bridged.
	EventHello EventKind = "hello"
	// EventHeartbeat keeps idle connections alive (and lets clients
	// detect dead ones).
	EventHeartbeat EventKind = "heartbeat"
	// EventLagged is terminal: the consumer fell behind and events were
	// dropped; Gen in the payload is the position to resume from.
	EventLagged EventKind = "lagged"
	// EventResync precedes a best-effort windowed replay: events from
	// From onward may duplicate ones the consumer already saw.
	EventResync EventKind = "resync"
)

// StreamEvent is the data payload of one /v2/watch frame. Kind selects
// which payload arm (if any) is populated.
type StreamEvent struct {
	// ID is the frame's resume token (the SSE id field); not part of the
	// JSON payload.
	ID string `json:"-"`

	Kind EventKind `json:"kind"`
	// Seq is the server-assigned sequence number; 0 on control frames and
	// windowed replays.
	Seq uint64 `json:"seq,omitempty"`
	// Gen is the store generation the event (or control frame) is
	// anchored at.
	Gen uint64 `json:"gen,omitempty"`
	// Market is the affected market for data events.
	Market string `json:"market,omitempty"`
	// At is the event's record timestamp (or the clock, for control
	// frames).
	At time.Time `json:"at,omitempty"`

	Probe      *StreamProbe      `json:"probe,omitempty"`
	Price      *PricePoint       `json:"price,omitempty"`
	Spike      *StreamSpike      `json:"spike,omitempty"`
	Revocation *StreamRevocation `json:"revocation,omitempty"`
	BidSpread  *StreamBidSpread  `json:"bidSpread,omitempty"`
	Outage     *Outage           `json:"outage,omitempty"`
	Hello      *StreamHello      `json:"hello,omitempty"`
	Lagged     *StreamLagged     `json:"lagged,omitempty"`
	Resync     *StreamResync     `json:"resync,omitempty"`
}

// StreamProbe is one logged probe on the stream. The payload carries the
// full probe record — provenance fields included — so a consumer can
// rebuild the store's probe log exactly; read replicas depend on this.
type StreamProbe struct {
	// Contract is the probed tier: "on-demand" or "spot".
	Contract string `json:"kind"`
	// Trigger names why the probe was issued (spike, recheck, ...).
	Trigger  string  `json:"trigger"`
	Rejected bool    `json:"rejected"`
	Code     string  `json:"code,omitempty"`
	Bid      float64 `json:"bid,omitempty"`
	Cost     float64 `json:"cost"`
	// TriggerMarket is the market whose event caused this probe (equal to
	// the event's market for direct spike probes).
	TriggerMarket string `json:"triggerMarket,omitempty"`
	// SourceKind is the contract tier whose event triggered this probe.
	SourceKind string `json:"sourceKind,omitempty"`
	// SpikeRatio is spot/on-demand price at the originating trigger.
	SpikeRatio float64 `json:"spikeRatio,omitempty"`
	// PriceRatio is the probed market's own spot/on-demand ratio at probe
	// time.
	PriceRatio float64 `json:"priceRatio,omitempty"`
}

// StreamSpike is one threshold crossing on the stream.
type StreamSpike struct {
	Price float64 `json:"price"`
	// Ratio is spot price / on-demand price at the crossing.
	Ratio  float64 `json:"ratio"`
	Probed bool    `json:"probed"`
}

// StreamRevocation is one completed revocation watch on the stream.
type StreamRevocation struct {
	Bid  float64       `json:"bid"`
	Held time.Duration `json:"heldNanos"`
}

// StreamBidSpread is one intrinsic-price search result on the stream.
type StreamBidSpread struct {
	Published float64 `json:"published"`
	Intrinsic float64 `json:"intrinsic"`
	Attempts  int     `json:"attempts"`
}

// StreamHello opens the stream.
type StreamHello struct {
	// Gen is the store generation the subscription attached at.
	Gen uint64 `json:"gen"`
	// Resume reports how a Last-Event-ID was bridged: "live" (nothing
	// missed), "replay" (exact ring replay), "resync" (best-effort
	// windowed rebuild), or "none" (fresh subscription).
	Resume string `json:"resume"`
	// Salt is the server's ETag/token salt, hex-encoded — the first
	// segment of every resume token. A read replica adopts it so the
	// ETags it mints match the leader's byte for byte.
	Salt string `json:"salt,omitempty"`
}

// StreamLagged is the terminal overflow notice.
type StreamLagged struct {
	// Gen is the generation of the last delivered event — the position to
	// resume from.
	Gen uint64 `json:"gen"`
}

// StreamResync warns that the following replay is best-effort.
type StreamResync struct {
	// From is the timestamp the windowed rebuild starts at (inclusive).
	From time.Time `json:"from"`
	// Gen is the store generation the rebuilt events are anchored at.
	Gen uint64 `json:"gen"`
}

// Health is the GET /v2/health payload: the serving process's view of
// its store and live-stream subsystem.
type Health struct {
	// Status is "ok", or "degraded" when the durable store has a sticky
	// durability error (the daemon keeps serving from memory).
	Status string `json:"status"`
	// Now is the service clock.
	Now   time.Time   `json:"now"`
	Store HealthStore `json:"store"`
	Watch HealthWatch `json:"watch"`
	// Replication is present only on follower nodes: the state of the
	// leader subscription this store is built from.
	Replication *HealthReplication `json:"replication,omitempty"`
	// Gateway is present only on gateway nodes: the per-upstream health
	// the aggregate Status was computed from.
	Gateway *HealthGateway `json:"gateway,omitempty"`
}

// HealthStore describes the store behind the service.
type HealthStore struct {
	// Mode is "memory" or "durable".
	Mode string `json:"mode"`
	// Healthy is false when the durability layer reported a sticky error;
	// always true for in-memory stores.
	Healthy bool `json:"healthy"`
	// Error carries the durability error text when unhealthy.
	Error string `json:"error,omitempty"`
	// Markets counts markets holding at least one record.
	Markets int `json:"markets"`
	// Generation is the store's global append generation.
	Generation uint64 `json:"generation"`
}

// HealthWatch describes the live-stream subsystem.
type HealthWatch struct {
	// Subscribers counts open /v2/watch streams; Cap is the server limit.
	Subscribers int `json:"subscribers"`
	Cap         int `json:"cap"`
	// Published counts events ever fanned out; Dropped counts events lost
	// to slow consumers; Lagged counts subscriptions ever marked lagged.
	Published uint64 `json:"published"`
	Dropped   uint64 `json:"dropped"`
	Lagged    uint64 `json:"lagged"`
	// LastSeq is the newest assigned event sequence number.
	LastSeq uint64 `json:"lastSeq"`
}

// HealthReplication is a follower's view of its leader subscription.
type HealthReplication struct {
	// Role is "follower", or "promoted" after the node took over as
	// leader (leaders that never were followers omit the whole struct).
	Role string `json:"role"`
	// Leader is the base URL of the node this store replicates.
	Leader string `json:"leader"`
	// Connected reports whether the watch stream is currently open; the
	// replicator reconnects with Last-Event-ID resume while it is not.
	Connected bool `json:"connected"`
	// LastEventID is the newest resume token applied.
	LastEventID string `json:"lastEventId,omitempty"`
	// Applied counts data events applied to the local store.
	Applied uint64 `json:"applied"`
	// LocalGeneration and LeaderGeneration are the two stores' global
	// append generations; Lag is leader minus local (0 when caught up or
	// when the leader generation is not yet known).
	LocalGeneration  uint64 `json:"localGeneration"`
	LeaderGeneration uint64 `json:"leaderGeneration"`
	Lag              uint64 `json:"lag"`
	// Resyncs counts best-effort windowed rebuilds (at-least-once replays
	// — each one may duplicate boundary events); Reconnects counts stream
	// re-establishments.
	Resyncs    uint64 `json:"resyncs"`
	Reconnects uint64 `json:"reconnects"`
}

// HealthGateway is a gateway's per-upstream health breakdown.
type HealthGateway struct {
	// Partitioned reports the routing mode: true when markets are
	// sharded across upstreams, false when every upstream is a full
	// replica.
	Partitioned bool         `json:"partitioned"`
	Nodes       []NodeHealth `json:"nodes"`
}

// NodeHealth is one upstream's health as seen by the gateway.
type NodeHealth struct {
	URL string `json:"url"`
	// Status mirrors the node's own health status, or "unreachable".
	Status string `json:"status"`
	// Generation is the node's global store generation when reachable.
	Generation uint64 `json:"generation,omitempty"`
	Error      string `json:"error,omitempty"`
	// Breaker is the gateway's circuit-breaker state for this upstream:
	// "closed" (healthy), "open" (ejected), or "half-open" (probing
	// re-admission). Empty when the gateway runs without health tracking.
	Breaker string `json:"breaker,omitempty"`
	// ConsecutiveFails counts back-to-back call failures; it resets to
	// zero on any success.
	ConsecutiveFails int `json:"consecutiveFails,omitempty"`
}

// PromoteResponse is the body of a successful POST /v2/admin/promote:
// the node drained its leader subscription and now accepts writes from
// its own study, preserving the ETag salt, clock timeline, and store
// generations of the failed leader.
type PromoteResponse struct {
	Promoted bool      `json:"promoted"`
	Now      time.Time `json:"now"`
}
