package api

// Conditional requests.
//
// Every successful query response — GET /v1/* and POST /v2/query alike —
// carries a strong ETag derived from the query parameters and the append
// generation of the store scope the answer reads. Replaying the same
// request with the tag in If-None-Match yields 304 Not Modified with an
// empty body until the scope changes: an append to any market the query
// could observe produces a new tag, while appends elsewhere leave it
// valid.
//
// Two query shapes also bind the tag to the service clock, because their
// answers change as time passes even without appends: relative windows
// ("window=24h") resolve against now, and the summary measures ongoing
// outages to now. Their tags differ whenever the clock differs.
//
// For /v2/query the tag covers the whole batch; the BatchResponse.Now
// echo is evaluation metadata and intentionally excluded — a 304 asserts
// the results are unchanged, not the clock reading.
//
// Tags are salted with the serving process's boot instant, so a service
// restart retires every outstanding tag (the first replay simply fetches
// fresh data). Error responses never carry an ETag.
const (
	// HeaderETag is the response header carrying the scope-generation tag.
	HeaderETag = "ETag"
	// HeaderIfNoneMatch is the request header revalidating a held tag.
	HeaderIfNoneMatch = "If-None-Match"
	// HeaderPartial is set by the gateway on bare /v1 fan-out payloads
	// whose merge is missing partitions (the envelope-carrying endpoints
	// report the same list in the "partial" field instead): a
	// comma-separated list of the unreachable upstream nodes.
	HeaderPartial = "X-Spotlight-Partial"
)
