package api

import "fmt"

// Error codes carried by the machine-readable error envelope. Clients
// should branch on Code, never on Message text.
const (
	// CodeBadRequest covers malformed requests: unreadable JSON bodies,
	// empty batches, or a query that fails validation in a way no more
	// specific code describes.
	CodeBadRequest = "bad_request"
	// CodeUnknownKind marks a query whose Kind is not one of the
	// documented query kinds.
	CodeUnknownKind = "unknown_kind"
	// CodeBadWindow marks a missing, unparseable, empty, or inverted time
	// window.
	CodeBadWindow = "bad_window"
	// CodeBadMarket marks a missing or malformed market ID (the expected
	// form is "zone:type:product").
	CodeBadMarket = "bad_market"
	// CodeBadParam marks an out-of-range or unparseable query parameter;
	// Details["param"] names it.
	CodeBadParam = "bad_param"
	// CodeTooManyQueries marks a batch exceeding the per-request query
	// limit; Details carries "limit" and "got".
	CodeTooManyQueries = "too_many_queries"
	// CodeOverloaded marks a /v2/watch subscription rejected by the
	// per-server subscriber cap (HTTP 429); Details carries "cap" and the
	// Retry-After header says when to reconnect.
	CodeOverloaded = "overloaded"
	// CodeInternal marks a server-side failure evaluating the query.
	CodeInternal = "internal"
	// CodeUpstream marks a gateway query whose target store node could
	// not be reached or answered badly; Details carries "node". Other
	// queries in the same batch are unaffected.
	CodeUpstream = "upstream"
)

// Error is the wire error envelope every SpotLight endpoint returns —
// both as the body of non-2xx responses and inline per query inside a
// batch response.
type Error struct {
	Code    string            `json:"code"`
	Message string            `json:"message"`
	Details map[string]string `json:"details,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if len(e.Details) == 0 {
		return e.Code + ": " + e.Message
	}
	return fmt.Sprintf("%s: %s %v", e.Code, e.Message, e.Details)
}

// Errorf builds an Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// WithDetail returns e with one detail key set, for fluent construction.
func (e *Error) WithDetail(k, v string) *Error {
	if e.Details == nil {
		e.Details = make(map[string]string, 1)
	}
	e.Details[k] = v
	return e
}
