// Package api defines the versioned, typed wire contract of the SpotLight
// query service: one request DTO per query kind, the response DTOs those
// queries produce, the batch envelope of POST /v2/query, and the
// machine-readable error envelope shared by every endpoint.
//
// The paper's core contribution is this interface — "SpotLight exports a
// query interface that enables applications or users to query information
// about availability characteristics" — so the contract lives in a public
// package that both the server (internal/query) and the client SDK
// (pkg/client) compile against; external consumers import it instead of
// hand-rolling URLs and anonymous JSON.
//
// Market IDs travel as their canonical "zone:type:product" string form,
// durations as nanosecond integers in fields suffixed "Nanos" (matching
// encoding/json's time.Duration representation), and timestamps as
// RFC3339.
package api

import "time"

// Kind names a query kind. Each kind maps to one GET /v1/<kind> endpoint
// and to one arm of the POST /v2/query batch envelope.
type Kind string

// The ten query kinds.
const (
	// KindUnavailability: fraction of a window one market's contract tier
	// was detected unavailable.
	KindUnavailability Kind = "unavailability"
	// KindStable: markets ranked by fewest on-demand price crossings (the
	// paper's example query: longest mean-time-to-revocation at a bid
	// equal to the on-demand price).
	KindStable Kind = "stable"
	// KindVolatile: markets ranked by most crossings, enriched with
	// revocation-watch observations.
	KindVolatile Kind = "volatile"
	// KindFallback: uncorrelated fail-over markets for one market.
	KindFallback Kind = "fallback"
	// KindPrices: one market's recorded price series in a window.
	KindPrices Kind = "prices"
	// KindOutages: one market's detected outage intervals in a window.
	KindOutages Kind = "outages"
	// KindPredict: probability of an on-demand outage near a spike of a
	// given size.
	KindPredict Kind = "predict"
	// KindReservedValue: the reserved-vs-on-demand purchase assessment.
	KindReservedValue Kind = "reserved-value"
	// KindMarkets: catalog discovery, optionally filtered.
	KindMarkets Kind = "markets"
	// KindSummary: per-region availability aggregates at the service
	// clock.
	KindSummary Kind = "summary"
)

// KindAdvise (the eleventh kind, the decision layer) is declared in
// advise.go next to its DTOs.

// MaxBatchQueries is the largest number of queries one POST /v2/query
// request may carry.
const MaxBatchQueries = 64

// Query is one typed query spec: a Kind plus the parameters that kind
// consumes (others are ignored). The embedded Window marshals inline as
// from/to/window.
//
// Parameter use by kind:
//
//	unavailability  Market, Contract (od|spot, default od), Window
//	stable          Region?, Product?, N (default 10), Window
//	volatile        Region?, Product?, N (default 10), Window
//	fallback        Market, N (default 5), Window
//	prices          Market, Window
//	outages         Market, Window
//	predict         Market, Ratio, Horizon (default 15m), Window
//	reserved-value  Market, Utilization in [0,1], Window
//	markets         Region?, Product?
//	summary         (none)
//	advise          Advise (constraints), Window
type Query struct {
	Kind Kind `json:"kind"`
	Window
	// Market is the "zone:type:product" spot market ID, for the
	// single-market kinds.
	Market string `json:"market,omitempty"`
	// Region filters multi-market kinds to one region when non-empty.
	Region string `json:"region,omitempty"`
	// Product filters multi-market kinds to one platform when non-empty.
	Product string `json:"product,omitempty"`
	// N bounds ranked results; 0 means the kind's default.
	N int `json:"n,omitempty"`
	// Contract selects the contract tier for unavailability: "od"
	// (default) or "spot".
	Contract string `json:"contract,omitempty"`
	// Ratio is the spike multiple for predict (spot price / od price).
	Ratio float64 `json:"ratio,omitempty"`
	// Horizon is the predict look-ahead as a duration string ("15m").
	Horizon string `json:"horizon,omitempty"`
	// Utilization is the planned duty cycle in [0,1] for reserved-value.
	Utilization float64 `json:"utilization,omitempty"`
	// Advise carries the workload constraints for KindAdvise.
	Advise *AdviseConstraints `json:"advise,omitempty"`
}

// BatchRequest is the body of POST /v2/query: up to MaxBatchQueries
// heterogeneous queries evaluated in one round trip.
type BatchRequest struct {
	Queries []Query `json:"queries"`
}

// BatchResponse answers a BatchRequest. Results align 1:1 with the
// request's Queries; each result succeeds or fails independently, so one
// bad query never poisons the rest of the batch.
type BatchResponse struct {
	// Now is the service clock the batch was evaluated at — the instant
	// relative windows resolved against.
	Now     time.Time `json:"now"`
	Results []Result  `json:"results"`
}

// Result is one per-query outcome inside a BatchResponse: the echoed
// Kind, either an Error or exactly one populated payload arm.
type Result struct {
	Kind  Kind   `json:"kind"`
	Error *Error `json:"error,omitempty"`

	Unavailability *Unavailability  `json:"unavailability,omitempty"`
	Stable         []StableMarket   `json:"stable,omitempty"`
	Volatile       []VolatileMarket `json:"volatile,omitempty"`
	Fallbacks      []Fallback       `json:"fallbacks,omitempty"`
	Prices         []PricePoint     `json:"prices,omitempty"`
	Outages        []Outage         `json:"outages,omitempty"`
	Prediction     *Prediction      `json:"prediction,omitempty"`
	ReservedValue  *ReservedValue   `json:"reservedValue,omitempty"`
	Markets        []MarketInfo     `json:"markets,omitempty"`
	Summary        []RegionSummary  `json:"summary,omitempty"`
	Advise         *AdviseResult    `json:"advise,omitempty"`

	// Partial, set only by the gateway, lists the upstream nodes whose
	// shares are missing from a fanned-out merge (ejected, timed out, or
	// erroring). The payload covers the remaining partitions' markets —
	// degraded but usable, instead of failing the whole merge.
	Partial []string `json:"partial,omitempty"`
}

// Unavailability answers an unavailability query.
type Unavailability struct {
	Market string `json:"market"`
	// Contract is the tier measured: "on-demand" or "spot".
	Contract       string  `json:"kind"`
	Unavailability float64 `json:"unavailability"`
	Availability   float64 `json:"availability"`
}

// StableMarket is one row of a stability ranking.
type StableMarket struct {
	Market string `json:"market"`
	// Crossings is how many times the spot price crossed the on-demand
	// price in the window.
	Crossings int `json:"crossings"`
	// MTTR is the estimated mean time to revocation for a bid equal to
	// the on-demand price: window / (crossings + 1).
	MTTR time.Duration `json:"mttrNanos"`
	// ODUnavailability is the market's detected on-demand outage fraction
	// over the window.
	ODUnavailability float64 `json:"odUnavailability"`
}

// VolatileMarket is one row of a volatility ranking.
type VolatileMarket struct {
	Market    string  `json:"market"`
	Crossings int     `json:"crossings"`
	MaxRatio  float64 `json:"maxRatio"`
	// MeanHeld is the observed mean time-to-revocation from completed
	// revocation watches, when any exist.
	MeanHeld time.Duration `json:"meanHeldNanos"`
	Watches  int           `json:"watches"`
}

// Fallback is one recommended uncorrelated fail-over market.
type Fallback struct {
	Market           string  `json:"market"`
	ODUnavailability float64 `json:"odUnavailability"`
	Crossings        int     `json:"crossings"`
}

// PricePoint is one observed published price sample.
type PricePoint struct {
	At    time.Time `json:"at"`
	Price float64   `json:"price"`
}

// Outage is one detected unavailability interval.
type Outage struct {
	Market string `json:"market"`
	// Contract is the affected tier: "on-demand" or "spot".
	Contract string    `json:"kind"`
	Start    time.Time `json:"start"`
	// End is the zero timestamp (serialized "0001-01-01T00:00:00Z")
	// while the outage is ongoing; check End.IsZero().
	End time.Time `json:"end"`
	// Duration is measured to the window end for ongoing outages.
	Duration time.Duration `json:"durationNanos"`
}

// Prediction is the outage predictor's output.
type Prediction struct {
	Market     string  `json:"market"`
	SpikeRatio float64 `json:"spikeRatio"`
	// Probability is P(on-demand outage within the horizon | spike of at
	// least this size), from historical co-occurrence.
	Probability float64 `json:"probability"`
	Samples     int     `json:"samples"`
	// Basis says which history level produced the estimate: "market",
	// "region", or "global".
	Basis string `json:"basis"`
}

// ReservedValue is the reserved-vs-on-demand assessment for one market.
type ReservedValue struct {
	Market                  string  `json:"market"`
	ODHourly                float64 `json:"odHourly"`
	ReservedEffectiveHourly float64 `json:"reservedEffectiveHourly"`
	BreakEvenUtilization    float64 `json:"breakEvenUtilization"`
	ODUnavailability        float64 `json:"odUnavailability"`
	PlannedUtilization      float64 `json:"plannedUtilization"`
	Reserve                 bool    `json:"reserve"`
	Reason                  string  `json:"reason"`
}

// MarketInfo is one row of the market-discovery listing.
type MarketInfo struct {
	Market        string  `json:"market"`
	OnDemandPrice float64 `json:"onDemandPrice"`
	Family        string  `json:"family"`
	Units         int     `json:"units"`
}

// RegionSummary aggregates detected availability per region.
type RegionSummary struct {
	Region            string        `json:"region"`
	ODOutages         int           `json:"odOutages"`
	SpotOutages       int           `json:"spotOutages"`
	MeanODOutage      time.Duration `json:"meanODOutageNanos"`
	RejectedODProbes  int           `json:"rejectedODProbes"`
	TotalODProbes     int           `json:"totalODProbes"`
	RejectedSpotPcnt  float64       `json:"rejectedSpotPcnt"`
	TotalSpotProbes   int           `json:"totalSpotProbes"`
	SpikesAboveOD     int           `json:"spikesAboveOD"`
	ObservedSpikesAll int           `json:"observedSpikesAll"`
}
