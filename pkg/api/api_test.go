package api

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var now = time.Date(2015, 9, 2, 0, 0, 0, 0, time.UTC)

func TestWindowResolveRelative(t *testing.T) {
	from, to, err := Last(24 * time.Hour).Resolve(now)
	if err != nil {
		t.Fatal(err)
	}
	if !to.Equal(now) || !from.Equal(now.Add(-24*time.Hour)) {
		t.Errorf("resolved [%v, %v]", from, to)
	}
	// The relative form wins when both are present.
	w := Window{From: now.Add(-time.Hour), To: now, Rel: "2h"}
	from, _, err = w.Resolve(now)
	if err != nil || !from.Equal(now.Add(-2*time.Hour)) {
		t.Errorf("mixed window resolved from=%v err=%v", from, err)
	}
}

func TestWindowResolveAbsolute(t *testing.T) {
	from, to, err := Between(now.Add(-time.Hour), now).Resolve(now)
	if err != nil {
		t.Fatal(err)
	}
	if !from.Equal(now.Add(-time.Hour)) || !to.Equal(now) {
		t.Errorf("resolved [%v, %v]", from, to)
	}
}

func TestWindowResolveErrors(t *testing.T) {
	bad := []Window{
		{},                                   // missing entirely
		{From: now},                          // half absolute
		{To: now},                            // other half
		{From: now, To: now},                 // empty
		{From: now, To: now.Add(-time.Hour)}, // inverted
		{Rel: "yesterday"},                   // unparseable
		{Rel: "-3h"},                         // non-positive
		{Rel: "0s"},                          // zero
	}
	for _, w := range bad {
		if _, _, err := w.Resolve(now); err == nil || err.Code != CodeBadWindow {
			t.Errorf("window %+v resolved without CodeBadWindow (err=%v)", w, err)
		}
	}
}

func TestWindowJSONShape(t *testing.T) {
	// The window marshals inline inside a query: from/to/window keys.
	b, err := json.Marshal(Query{Kind: KindStable, Window: Window{Rel: "24h"}, Region: "us-east-1"})
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.Contains(s, `"window":"24h"`) || strings.Contains(s, `"Rel"`) {
		t.Errorf("query JSON = %s", s)
	}
	var q Query
	if err := json.Unmarshal([]byte(`{"kind":"stable","window":"6h","from":"2015-09-01T00:00:00Z"}`), &q); err != nil {
		t.Fatal(err)
	}
	if q.Rel != "6h" || q.From.IsZero() {
		t.Errorf("decoded query = %+v", q)
	}
}

func TestErrorEnvelope(t *testing.T) {
	e := Errorf(CodeBadParam, "n must be positive, got %d", -1).WithDetail("param", "n")
	if e.Code != CodeBadParam || e.Details["param"] != "n" {
		t.Errorf("envelope = %+v", e)
	}
	if msg := e.Error(); !strings.Contains(msg, CodeBadParam) || !strings.Contains(msg, "param") {
		t.Errorf("Error() = %q", msg)
	}
	plain := Errorf(CodeBadWindow, "missing")
	if msg := plain.Error(); msg != "bad_window: missing" {
		t.Errorf("Error() = %q", msg)
	}
}
