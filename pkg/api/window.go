package api

import "time"

// Window selects the time range of a query. Either the absolute form
// (From and To, RFC3339 on the wire) or the relative form (Rel, a Go
// duration string such as "24h" serialized as "window") may be used; the
// relative form resolves to [now-Rel, now] against the service clock at
// evaluation time, so a client can ask for "the past day" without knowing
// what the service considers "now" (under simulated time the two differ).
// When both are present the relative form wins.
//
// Note the timestamps serialize even when unset (encoding/json cannot
// omit a zero time.Time): an absent bound travels as the zero timestamp
// "0001-01-01T00:00:00Z", which Resolve treats as missing.
type Window struct {
	From time.Time `json:"from"`
	To   time.Time `json:"to"`
	Rel  string    `json:"window,omitempty"`
}

// Last returns the relative window covering the trailing d.
func Last(d time.Duration) Window { return Window{Rel: d.String()} }

// Between returns the absolute window [from, to].
func Between(from, to time.Time) Window { return Window{From: from, To: to} }

// IsZero reports whether no window was supplied at all.
func (w Window) IsZero() bool { return w.Rel == "" && w.From.IsZero() && w.To.IsZero() }

// Resolve turns the window into concrete [from, to] bounds against the
// service clock now. It returns CodeBadWindow when the window is missing,
// unparseable, non-positive, empty, or inverted.
func (w Window) Resolve(now time.Time) (from, to time.Time, err *Error) {
	if w.Rel != "" {
		d, perr := time.ParseDuration(w.Rel)
		if perr != nil {
			return from, to, Errorf(CodeBadWindow, "bad relative window %q (want a duration like \"24h\")", w.Rel)
		}
		if d <= 0 {
			return from, to, Errorf(CodeBadWindow, "relative window must be positive, got %q", w.Rel)
		}
		return now.Add(-d), now, nil
	}
	if w.From.IsZero() || w.To.IsZero() {
		return from, to, Errorf(CodeBadWindow, "missing window: supply from+to (RFC3339) or window (relative duration)")
	}
	if !w.To.After(w.From) {
		return from, to, Errorf(CodeBadWindow, "window is empty or inverted: to must be after from")
	}
	return w.From, w.To, nil
}
