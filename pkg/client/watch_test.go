package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

var (
	watchT0  = time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	watchMkt = market.SpotID{Zone: "us-east-1a", Type: "c3.large", Product: market.ProductLinux}
)

// watchServer serves the real query API over a live store.
func watchServer(t *testing.T) (*httptest.Server, *store.Store, *query.API) {
	t.Helper()
	db := store.New()
	a := query.NewAPI(query.NewEngine(db, market.New()), func() time.Time { return watchT0.Add(24 * time.Hour) })
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(func() { a.Shutdown(); srv.Close() })
	return srv, db, a
}

func TestWatchDeliversTypedEvents(t *testing.T) {
	srv, db, _ := watchServer(t)
	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), WatchOptions{
		Region: "us-east-1",
		Kinds:  []api.EventKind{api.EventRevocation, api.EventOutageOpen},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	db.AppendSpike(store.SpikeEvent{At: watchT0, Market: watchMkt, Ratio: 2.0})                           // filtered out
	db.AppendRevocation(store.RevocationRecord{At: watchT0, Market: watchMkt, Bid: 0.3, Held: time.Hour}) // delivered
	db.AppendProbe(store.ProbeRecord{At: watchT0, Market: watchMkt, Kind: store.ProbeOnDemand, Rejected: true})

	want := []api.EventKind{api.EventHello, api.EventRevocation, api.EventOutageOpen}
	for i, k := range want {
		select {
		case ev := <-w.Events():
			if ev.Kind != k {
				t.Fatalf("event %d kind = %s, want %s", i, ev.Kind, k)
			}
			if k == api.EventRevocation && (ev.Revocation == nil || ev.Revocation.Held != time.Hour) {
				t.Fatalf("revocation payload = %+v", ev.Revocation)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no %s event within 5s", k)
		}
	}
	if w.LastEventID() == "" {
		t.Error("LastEventID empty after data events")
	}
	w.Close()
	if _, ok := <-w.Events(); ok {
		// Drain any buffered frames; the channel must end up closed.
		for range w.Events() {
		}
	}
	if err := w.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", err)
	}
}

func TestWatchRejectsBadScope(t *testing.T) {
	srv, _, _ := watchServer(t)
	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Watch(context.Background(), WatchOptions{Market: "garbage"})
	var aerr *api.Error
	if !errors.As(err, &aerr) || aerr.Code != api.CodeBadMarket {
		t.Fatalf("Watch(bad market) error = %v, want %s envelope", err, api.CodeBadMarket)
	}
}

// killingWriter aborts the connection after a fixed number of SSE frames,
// simulating a flaky network path.
type killingWriter struct {
	http.ResponseWriter
	frames *int
	limit  int
}

func (k *killingWriter) Write(b []byte) (int, error) {
	n, err := k.ResponseWriter.Write(b)
	*k.frames += bytes.Count(b[:n], []byte("\n\n"))
	if *k.frames >= k.limit {
		k.Flush()
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (k *killingWriter) Flush() {
	if f, ok := k.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// The acceptance test: a stream killed repeatedly mid-flight, with
// ingestion running throughout, must deliver every event exactly once
// through auto-reconnect + resume.
func TestWatchKillAndReconnectLosesNothing(t *testing.T) {
	db := store.New()
	a := query.NewAPI(query.NewEngine(db, market.New()), func() time.Time { return watchT0.Add(24 * time.Hour) })
	defer a.Shutdown()
	inner := a.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v2/watch" {
			frames := 0
			inner.ServeHTTP(&killingWriter{ResponseWriter: w, frames: &frames, limit: 4}, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), WatchOptions{
		Kinds:      []api.EventKind{api.EventSpike},
		MinBackoff: time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
		Buffer:     256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// Ingest while the stream keeps dying: every spike carries its index
	// in Ratio.
	const total = 60
	go func() {
		for i := 1; i <= total; i++ {
			db.AppendSpike(store.SpikeEvent{
				At:     watchT0.Add(time.Duration(i) * time.Minute),
				Market: watchMkt,
				Ratio:  float64(i),
			})
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var got []int
	deadline := time.After(30 * time.Second)
	for len(got) < total {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch ended early: %v (got %d/%d)", w.Err(), len(got), total)
			}
			if ev.Kind != api.EventSpike {
				continue // hello frames from each reconnect
			}
			got = append(got, int(ev.Spike.Ratio))
		case <-deadline:
			t.Fatalf("timed out with %d/%d events (reconnects=%d)", len(got), total, w.Reconnects())
		}
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("event %d = spike #%v, want #%d — lost or duplicated across reconnects (got %v)", i, v, i+1, got)
		}
	}
	if w.Reconnects() == 0 {
		t.Error("stream was never killed; the test proved nothing")
	}
}

// A server-reported lagged stream reconnects and resumes from the lagged
// position.
func TestWatchLaggedReconnectsWithResume(t *testing.T) {
	var connects atomic.Int64
	var resumedFrom atomic.Value
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := connects.Add(1)
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		if n == 1 {
			fmt.Fprintf(w, "event: hello\ndata: {\"kind\":\"hello\",\"hello\":{\"gen\":1,\"resume\":\"none\"}}\n\n")
			fmt.Fprintf(w, "id: tok-1\nevent: spike\ndata: {\"kind\":\"spike\",\"seq\":1,\"gen\":1}\n\n")
			fmt.Fprintf(w, "id: tok-1\nevent: lagged\ndata: {\"kind\":\"lagged\",\"lagged\":{\"gen\":1}}\n\n")
			fl.Flush()
			return // server closes after the terminal lagged frame
		}
		resumedFrom.Store(r.Header.Get(api.HeaderLastEventID))
		fmt.Fprintf(w, "event: hello\ndata: {\"kind\":\"hello\",\"hello\":{\"gen\":2,\"resume\":\"replay\"}}\n\n")
		fmt.Fprintf(w, "id: tok-2\nevent: spike\ndata: {\"kind\":\"spike\",\"seq\":2,\"gen\":2}\n\n")
		fl.Flush()
		// Hold the connection open until the client goes away.
		<-r.Context().Done()
	}))
	defer stub.Close()

	c, err := New(stub.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), WatchOptions{MinBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var kinds []api.EventKind
	deadline := time.After(10 * time.Second)
	for len(kinds) < 5 {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch ended: %v (saw %v)", w.Err(), kinds)
			}
			kinds = append(kinds, ev.Kind)
			if ev.Kind == api.EventSpike && ev.Seq == 2 {
				// Resumed stream delivered the post-lag event.
				if got := resumedFrom.Load(); got != "tok-1" {
					t.Fatalf("reconnect resumed from %v, want tok-1", got)
				}
				if w.Lagged() != 1 {
					t.Fatalf("Lagged() = %d, want 1", w.Lagged())
				}
				return
			}
		case <-deadline:
			t.Fatalf("timed out; saw %v", kinds)
		}
	}
}

// A capped server's 429 is retried after Retry-After.
func TestWatch429RetriesAfterHint(t *testing.T) {
	var calls atomic.Int64
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set(api.HeaderRetryAfter, "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"code":"overloaded","message":"full"}`)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "event: hello\ndata: {\"kind\":\"hello\",\"hello\":{\"gen\":1,\"resume\":\"none\"}}\n\n")
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	}))
	defer stub.Close()

	c, err := New(stub.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), WatchOptions{})
	if err != nil {
		t.Fatalf("Watch should have retried the 429: %v", err)
	}
	defer w.Close()
	select {
	case ev := <-w.Events():
		if ev.Kind != api.EventHello {
			t.Fatalf("first event = %s, want hello", ev.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no hello after 429 retry")
	}
	if calls.Load() < 2 {
		t.Fatalf("server saw %d calls, want the retry", calls.Load())
	}
}

// A connection that dies before any id-bearing frame arrived must keep
// requesting the caller's backfill on reconnect instead of silently
// dropping it.
func TestWatchSinceSurvivesEarlyDisconnect(t *testing.T) {
	var calls atomic.Int64
	var secondSince atomic.Value
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "event: hello\ndata: {\"kind\":\"hello\",\"hello\":{\"gen\":1,\"resume\":\"none\"}}\n\n")
		w.(http.Flusher).Flush()
		if n == 1 {
			return // dies before any id-bearing frame
		}
		secondSince.Store(r.URL.Query().Get("since"))
		fmt.Fprintf(w, "id: tok-1\nevent: spike\ndata: {\"kind\":\"spike\",\"seq\":1,\"gen\":1}\n\n")
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	}))
	defer stub.Close()

	c, err := New(stub.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), WatchOptions{Since: time.Hour, MinBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch ended: %v", w.Err())
			}
			if ev.Kind == api.EventSpike {
				if got := secondSince.Load(); got != "1h0m0s" {
					t.Fatalf("reconnect sent since=%v, want the original 1h backfill", got)
				}
				return
			}
		case <-deadline:
			t.Fatal("timed out waiting for the reconnected stream")
		}
	}
}

// Since-backfill flows through to the server and replays history.
func TestWatchSinceBackfill(t *testing.T) {
	srv, db, _ := watchServer(t)
	db.AppendSpike(store.SpikeEvent{At: watchT0.Add(23 * time.Hour), Market: watchMkt, Ratio: 3.0})

	c, err := New(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Watch(context.Background(), WatchOptions{Since: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	var kinds []api.EventKind
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-w.Events():
			kinds = append(kinds, ev.Kind)
			if ev.Kind == api.EventSpike {
				if len(kinds) != 3 || kinds[0] != api.EventHello || kinds[1] != api.EventResync {
					t.Fatalf("frames = %v, want hello, resync, spike", kinds)
				}
				return
			}
		case <-deadline:
			t.Fatalf("timed out; saw %v", kinds)
		}
	}
}
