package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"spotlight/pkg/api"
)

// Live streaming. Watch opens a GET /v2/watch Server-Sent Events stream
// and delivers typed api.StreamEvent values over a channel, reconnecting
// automatically with Last-Event-ID resume whenever the connection drops —
// the gap is replayed by the server (exactly from its ring when covered,
// best-effort otherwise, flagged by a "resync" frame). A 429 from the
// server's subscriber cap is retried after its Retry-After hint.
//
//	w, err := c.Watch(ctx, client.WatchOptions{
//		Region: "us-east-1",
//		Kinds:  []api.EventKind{api.EventRevocation, api.EventOutageOpen},
//	})
//	...
//	for ev := range w.Events() {
//		switch ev.Kind { ... }
//	}
//
// The channel closes when ctx is canceled or Close is called; Err
// reports why the watch ended.

// WatchOptions scope and tune one live subscription.
type WatchOptions struct {
	// Market restricts the stream to one market ("zone:type:product");
	// exclusive with Region/Product.
	Market string
	// Region / Product restrict the stream to a scope; empty means all.
	Region  string
	Product string
	// Kinds restricts the delivered event families; nil means all.
	Kinds []api.EventKind
	// Since asks a fresh subscription for an initial windowed backfill of
	// that much history before going live.
	Since time.Duration
	// LastEventID resumes from a token captured earlier (e.g. a previous
	// Watch's LastEventID); overrides Since.
	LastEventID string
	// Buffer is the delivery channel capacity (default 64). A consumer
	// that stops draining eventually stalls the reader, the server marks
	// the stream lagged, and the watch reconnects with resume.
	Buffer int
	// MinBackoff/MaxBackoff bound the reconnect backoff (defaults 100ms
	// and 5s; the backoff ceiling doubles per consecutive failure up to
	// MaxBackoff and resets after a healthy connection).
	MinBackoff, MaxBackoff time.Duration
	// NoJitter makes reconnect delays deterministic (exactly the current
	// ceiling) instead of the default full jitter, which sleeps a uniform
	// random duration in [MinBackoff, ceiling]. Jitter is the default
	// because a leader restart disconnects every follower and SDK watcher
	// at the same instant — deterministic backoff would march them all
	// back in synchronized waves, and the thundering herd re-kills the
	// node the waves hit. Tests wanting exact timings opt out.
	NoJitter bool
	// Heartbeats delivers heartbeat frames to the consumer too (by
	// default they are consumed internally as liveness only).
	Heartbeats bool
}

// Watch is one live subscription with automatic reconnect.
type Watch struct {
	c    *Client
	opts WatchOptions

	events chan api.StreamEvent
	cancel context.CancelFunc
	done   chan struct{}

	// rng drives reconnect jitter; per-watch so concurrent watches do not
	// contend on a shared source. Guarded by mu.
	rng *rand.Rand

	mu         sync.Mutex
	lastID     string
	err        error
	reconnects uint64
	lagged     uint64
}

// Events returns the delivery channel. It closes when the watch ends;
// check Err afterwards.
func (w *Watch) Events() <-chan api.StreamEvent { return w.events }

// Close stops the watch and closes Events. Safe to call more than once.
func (w *Watch) Close() {
	w.cancel()
	<-w.done
}

// Err reports why the watch ended (nil while running, context.Canceled
// after Close).
func (w *Watch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// LastEventID returns the newest resume token received — pass it to a
// future Watch to continue where this one stopped.
func (w *Watch) LastEventID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastID
}

// Reconnects counts how many times the watch re-established its stream.
func (w *Watch) Reconnects() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reconnects
}

// Lagged counts how many times the server reported this consumer too
// slow (each one cost a reconnect and possibly a resync gap).
func (w *Watch) Lagged() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lagged
}

// Watch opens the live stream. The first connection is established
// synchronously — scope errors (bad market, unknown kind) surface
// immediately as *api.Error — and the stream then runs in the background
// until ctx is canceled or Close is called.
func (c *Client) Watch(ctx context.Context, opts WatchOptions) (*Watch, error) {
	if opts.Buffer <= 0 {
		opts.Buffer = 64
	}
	if opts.MinBackoff <= 0 {
		opts.MinBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	wctx, cancel := context.WithCancel(ctx)
	w := &Watch{
		c:      c,
		opts:   opts,
		events: make(chan api.StreamEvent, opts.Buffer),
		cancel: cancel,
		done:   make(chan struct{}),
		lastID: opts.LastEventID,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	resp, err := w.connect(wctx, true)
	if err != nil {
		cancel()
		close(w.done)
		return nil, err
	}
	go w.run(wctx, resp)
	return w, nil
}

// watchURL builds the stream URL for the current resume state.
func (w *Watch) watchURL() string {
	v := url.Values{}
	if w.opts.Market != "" {
		v.Set("market", w.opts.Market)
	}
	if w.opts.Region != "" {
		v.Set("region", w.opts.Region)
	}
	if w.opts.Product != "" {
		v.Set("product", w.opts.Product)
	}
	if len(w.opts.Kinds) > 0 {
		names := make([]string, len(w.opts.Kinds))
		for i, k := range w.opts.Kinds {
			names[i] = string(k)
		}
		v.Set("kinds", strings.Join(names, ","))
	}
	// Keep asking for the backfill until a resume token exists: a
	// connection that dies before any id-bearing frame arrived must not
	// silently drop the caller's requested history.
	if w.opts.Since > 0 && w.LastEventID() == "" {
		v.Set("since", w.opts.Since.String())
	}
	u := w.c.base + "/v2/watch"
	if enc := v.Encode(); enc != "" {
		u += "?" + enc
	}
	return u
}

// connect performs one stream request. On 429 it waits out Retry-After
// (bounded by MaxBackoff when absent) and retries, except on the
// synchronous first attempt where only one retry round is taken before
// giving up so the caller gets a prompt error.
func (w *Watch) connect(ctx context.Context, firstAttempt bool) (*http.Response, error) {
	attempts := 0
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.watchURL(), nil)
		if err != nil {
			return nil, err
		}
		if id := w.LastEventID(); id != "" {
			req.Header.Set(api.HeaderLastEventID, id)
		}
		req.Header.Set("Accept", "text/event-stream")
		resp, err := w.c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			return resp, nil
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			attempts++
			if firstAttempt && attempts > 1 {
				return nil, watchErrFromBody(resp.StatusCode, body)
			}
			delay := w.opts.MaxBackoff
			if s := resp.Header.Get(api.HeaderRetryAfter); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
					delay = time.Duration(secs) * time.Second
				}
			}
			select {
			case <-time.After(delay):
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return nil, watchErrFromBody(resp.StatusCode, body)
	}
}

// watchErrFromBody surfaces the service's error envelope when present.
func watchErrFromBody(status int, body []byte) error {
	var aerr api.Error
	if err := json.Unmarshal(body, &aerr); err == nil && aerr.Code != "" {
		return &aerr
	}
	return fmt.Errorf("client: watch: HTTP %d", status)
}

// run is the stream loop: read frames until the connection breaks, then
// reconnect with resume, forever, until the context ends.
func (w *Watch) run(ctx context.Context, resp *http.Response) {
	defer close(w.done)
	defer close(w.events)
	ceiling := w.opts.MinBackoff
	for {
		// resp is nil when the previous reconnect attempt failed — there
		// is nothing to consume, only more backing off to do.
		if resp != nil {
			healthy := w.consume(ctx, resp.Body)
			resp.Body.Close()
			if healthy {
				ceiling = w.opts.MinBackoff
			}
		}
		if ctx.Err() != nil {
			w.setErr(ctx.Err())
			return
		}
		select {
		case <-time.After(w.backoffDelay(ceiling)):
		case <-ctx.Done():
			w.setErr(ctx.Err())
			return
		}
		if ceiling *= 2; ceiling > w.opts.MaxBackoff {
			ceiling = w.opts.MaxBackoff
		}
		var err error
		resp, err = w.connect(ctx, false)
		if err != nil {
			if ctx.Err() != nil {
				w.setErr(ctx.Err())
				return
			}
			// Transient failure (refused, mid-restart): keep trying.
			resp = nil
			continue
		}
		w.mu.Lock()
		w.reconnects++
		w.mu.Unlock()
	}
}

// backoffDelay turns the current ceiling into the actual sleep: the
// ceiling itself under NoJitter, otherwise full jitter over
// [MinBackoff, ceiling].
func (w *Watch) backoffDelay(ceiling time.Duration) time.Duration {
	if w.opts.NoJitter {
		return ceiling
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return jitteredBackoff(w.rng, w.opts.MinBackoff, ceiling)
}

// jitteredBackoff picks a uniform random delay in [min, ceiling]
// (degenerating to ceiling when the range is empty). Full jitter
// decorrelates the reconnect times of clients that a single server
// failure disconnected together.
func jitteredBackoff(rng *rand.Rand, min, ceiling time.Duration) time.Duration {
	if ceiling <= min {
		return ceiling
	}
	return min + time.Duration(rng.Int63n(int64(ceiling-min)+1))
}

// consume reads one connection's frames; it reports whether at least one
// frame arrived (used to reset the backoff).
func (w *Watch) consume(ctx context.Context, body io.Reader) bool {
	br := bufio.NewReader(body)
	sawFrame := false
	var (
		id      string
		kind    string
		data    []string
		sawData bool
	)
	reset := func() {
		id, kind, data, sawData = "", "", nil, false
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return sawFrame
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if !sawData {
				reset()
				continue
			}
			sawFrame = true
			if !w.dispatch(ctx, id, kind, strings.Join(data, "\n")) {
				return sawFrame
			}
			reset()
		case strings.HasPrefix(line, ":"):
			// comment / keep-alive
		case strings.HasPrefix(line, "id:"):
			id = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "event:"):
			kind = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
			sawData = true
		case strings.HasPrefix(line, "retry:"):
			// The client runs its own backoff; ignore the server hint.
		}
	}
}

// dispatch decodes and delivers one frame; false stops the connection
// (canceled, or terminal lagged frame — the reconnect resumes from the
// lagged position).
func (w *Watch) dispatch(ctx context.Context, id, kind, data string) bool {
	var ev api.StreamEvent
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		// A frame we cannot decode (future kind): skip it rather than
		// kill the stream.
		return true
	}
	ev.ID = id
	if kind != "" {
		ev.Kind = api.EventKind(kind)
	}
	if id != "" {
		w.mu.Lock()
		w.lastID = id
		w.mu.Unlock()
	}
	if ev.Kind == api.EventHeartbeat && !w.opts.Heartbeats {
		return true
	}
	if ev.Kind == api.EventLagged {
		w.mu.Lock()
		w.lagged++
		w.mu.Unlock()
	}
	select {
	case w.events <- ev:
	case <-ctx.Done():
		return false
	}
	return ev.Kind != api.EventLagged
}

func (w *Watch) setErr(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		w.err = err
	}
}
