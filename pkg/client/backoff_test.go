package client

import (
	"math/rand"
	"testing"
	"time"
)

// Full-jitter bounds: every draw lands in [min, ceiling], the range is
// actually used (a thundering herd of reconnecting watchers must spread
// out), and the degenerate ranges collapse rather than panic.
func TestJitteredBackoffBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	min, ceiling := 100*time.Millisecond, 5*time.Second
	var low, high int
	for i := 0; i < 2000; i++ {
		d := jitteredBackoff(rng, min, ceiling)
		if d < min || d > ceiling {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d, min, ceiling)
		}
		mid := min + (ceiling-min)/2
		if d < mid {
			low++
		} else {
			high++
		}
	}
	// Uniform over ~4.9s: both halves of the range must be hit often.
	if low < 500 || high < 500 {
		t.Errorf("draws not spread over the range: %d below midpoint, %d above", low, high)
	}

	if d := jitteredBackoff(rng, time.Second, time.Second); d != time.Second {
		t.Errorf("min==ceiling draw = %v, want exactly 1s", d)
	}
	if d := jitteredBackoff(rng, 2*time.Second, time.Second); d != time.Second {
		t.Errorf("inverted-range draw = %v, want the ceiling", d)
	}
}

// NoJitter turns the delay into exactly the current ceiling — the
// deterministic mode tests and simulations rely on.
func TestBackoffDelayNoJitter(t *testing.T) {
	w := &Watch{opts: WatchOptions{NoJitter: true, MinBackoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second}}
	for _, ceiling := range []time.Duration{100 * time.Millisecond, 800 * time.Millisecond, 5 * time.Second} {
		if d := w.backoffDelay(ceiling); d != ceiling {
			t.Errorf("NoJitter delay for ceiling %v = %v, want the ceiling", ceiling, d)
		}
	}
	// Jittered mode stays within [min, ceiling].
	w2 := &Watch{opts: WatchOptions{MinBackoff: 100 * time.Millisecond, MaxBackoff: 5 * time.Second},
		rng: rand.New(rand.NewSource(7))}
	for i := 0; i < 100; i++ {
		if d := w2.backoffDelay(time.Second); d < 100*time.Millisecond || d > time.Second {
			t.Fatalf("jittered delay %v outside [100ms, 1s]", d)
		}
	}
}
