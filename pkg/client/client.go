// Package client is the Go SDK for the SpotLight query service. It wraps
// both API surfaces — the GET /v1/* endpoints and the POST /v2/query
// batch envelope — behind typed methods over the pkg/api DTOs, so
// consumers never hand-roll URLs or decode anonymous JSON.
//
//	c, _ := client.New("http://localhost:8080", nil)
//	stable, err := c.Stable(ctx, "us-east-1", "Linux/UNIX", 10, api.Last(24*time.Hour))
//
// Several questions in one round trip go through the batch envelope:
//
//	resp, err := c.Batch(ctx,
//		api.Query{Kind: api.KindStable, Window: api.Last(24 * time.Hour)},
//		api.Query{Kind: api.KindSummary},
//	)
//
// Every service-side failure is returned as *api.Error, so callers can
// branch on the machine-readable code:
//
//	var aerr *api.Error
//	if errors.As(err, &aerr) && aerr.Code == api.CodeBadWindow { ... }
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"spotlight/pkg/api"
)

// Client talks to one SpotLight service instance. It is safe for
// concurrent use.
type Client struct {
	base string
	hc   *http.Client

	// Conditional-request state (see EnableConditionalRequests): per-query
	// remembered ETag + response body, and a counter of 304s served from
	// it.
	mu          sync.Mutex
	revalidate  bool
	cached      map[string]cachedResponse
	notModified uint64
}

// cachedResponse is one remembered 200 response: the service's ETag and
// the raw body to replay when the service answers 304.
type cachedResponse struct {
	etag string
	body []byte
}

// New builds a client for the service at baseURL (scheme + host[:port],
// with or without a trailing slash). hc defaults to http.DefaultClient.
func New(baseURL string, hc *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: bad base URL %q", baseURL)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}, nil
}

// EnableConditionalRequests turns on transparent HTTP revalidation: the
// client remembers each query's ETag and body, replays the tag in
// If-None-Match, and decodes the remembered body when the service answers
// 304 Not Modified. Polling an unchanged dashboard then costs the service
// a generation check instead of a recomputation, and the wire an empty
// response instead of a payload. Entries are keyed by the full request
// (URL, and body for batches); the map grows with distinct queries, so
// enable it for clients that poll a bounded query set.
func (c *Client) EnableConditionalRequests() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.revalidate = true
	if c.cached == nil {
		c.cached = make(map[string]cachedResponse)
	}
}

// NotModifiedCount reports how many responses were served from the
// conditional cache after a 304 — observability for tests and polling
// loops.
func (c *Client) NotModifiedCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.notModified
}

// lookupCached returns the remembered response for key, if revalidation
// is on and one exists.
func (c *Client) lookupCached(key string) (cachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.revalidate {
		return cachedResponse{}, false
	}
	e, ok := c.cached[key]
	return e, ok
}

// storeCached remembers a 200 response for key.
func (c *Client) storeCached(key, etag string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.revalidate {
		return
	}
	c.cached[key] = cachedResponse{etag: etag, body: body}
}

// Batch evaluates up to api.MaxBatchQueries heterogeneous queries in one
// POST /v2/query round trip. The envelope-level error (malformed batch,
// over the limit) comes back as the method's error; per-query failures
// live in the corresponding Result.Error and do not fail the batch.
func (c *Client) Batch(ctx context.Context, queries ...api.Query) (*api.BatchResponse, error) {
	body, err := json.Marshal(api.BatchRequest{Queries: queries})
	if err != nil {
		return nil, fmt.Errorf("client: encode batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp api.BatchResponse
	// Conditional key: the batch body identifies the query set. On a 304
	// the remembered response replays, including its earlier Now echo —
	// the service guarantees the results are unchanged, not the clock.
	if _, err := c.do(req, "POST /v2/query "+string(body), &resp); err != nil {
		return nil, err
	}
	if len(resp.Results) != len(queries) {
		return nil, fmt.Errorf("client: batch returned %d results for %d queries", len(resp.Results), len(queries))
	}
	return &resp, nil
}

// BatchTagged is Batch plus the response's ETag ("" when the service
// sent none). Aggregators — the gateway's scatter-gather — use the
// per-upstream tags as ingredients for a merged validator; plain
// consumers wanting transparent 304 handling should use Batch with
// EnableConditionalRequests instead.
func (c *Client) BatchTagged(ctx context.Context, queries ...api.Query) (*api.BatchResponse, string, error) {
	body, err := json.Marshal(api.BatchRequest{Queries: queries})
	if err != nil {
		return nil, "", fmt.Errorf("client: encode batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/query", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp api.BatchResponse
	etag, err := c.do(req, "POST /v2/query "+string(body), &resp)
	if err != nil {
		return nil, "", err
	}
	if len(resp.Results) != len(queries) {
		return nil, "", fmt.Errorf("client: batch returned %d results for %d queries", len(resp.Results), len(queries))
	}
	return &resp, etag, nil
}

// Promote asks a follower to take over as leader (POST
// /v2/admin/promote): its replication subscription drains and stops and
// the node starts accepting writes with the failed leader's ETag salt,
// clock timeline, and generations. force skips the split-brain guard
// that refuses promotion while the old leader still streams. Refusals
// come back as *api.Error.
func (c *Client) Promote(ctx context.Context, force bool) (*api.PromoteResponse, error) {
	u := c.base + "/v2/admin/promote"
	if force {
		u += "?force=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return nil, err
	}
	var out api.PromoteResponse
	if _, err := c.do(req, "", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Advise asks the decision layer for ranked market recommendations: up
// to req.N markets satisfying the constraints, scored over the request
// window (the trailing 24h when the window is zero). An empty candidate
// list is a valid answer; constraint violations (unknown region,
// out-of-range ceilings) come back as *api.Error with code bad_param.
// The same question can ride a Batch as a Query{Kind: api.KindAdvise,
// Advise: &req.AdviseConstraints, Window: req.Window} spec.
func (c *Client) Advise(ctx context.Context, areq api.AdviseRequest) (*api.AdviseResponse, error) {
	body, err := json.Marshal(areq)
	if err != nil {
		return nil, fmt.Errorf("client: encode advise: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/advise", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp api.AdviseResponse
	if _, err := c.do(req, "POST /v2/advise "+string(body), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Unavailability returns the fraction of the window one market's contract
// tier ("od" or "spot"; "" means od) was detected unavailable.
func (c *Client) Unavailability(ctx context.Context, market, contract string, w api.Window) (*api.Unavailability, error) {
	v := windowValues(w)
	v.Set("market", market)
	if contract != "" {
		v.Set("kind", contract)
	}
	var out api.Unavailability
	if err := c.get(ctx, "/v1/unavailability", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stable returns the n most stable spot markets of a region/product scope
// ("" leaves the dimension unfiltered; n <= 0 uses the service default).
func (c *Client) Stable(ctx context.Context, region, product string, n int, w api.Window) ([]api.StableMarket, error) {
	v := scopeValues(w, region, product, n)
	var out []api.StableMarket
	if err := c.get(ctx, "/v1/stable", v, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Volatile returns the n most volatile spot markets of a scope.
func (c *Client) Volatile(ctx context.Context, region, product string, n int, w api.Window) ([]api.VolatileMarket, error) {
	v := scopeValues(w, region, product, n)
	var out []api.VolatileMarket
	if err := c.get(ctx, "/v1/volatile", v, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Fallback returns up to n uncorrelated fail-over markets for market.
func (c *Client) Fallback(ctx context.Context, market string, n int, w api.Window) ([]api.Fallback, error) {
	v := windowValues(w)
	v.Set("market", market)
	if n > 0 {
		v.Set("n", strconv.Itoa(n))
	}
	var out []api.Fallback
	if err := c.get(ctx, "/v1/fallback", v, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Prices returns one market's recorded price series inside the window.
func (c *Client) Prices(ctx context.Context, market string, w api.Window) ([]api.PricePoint, error) {
	v := windowValues(w)
	v.Set("market", market)
	var out []api.PricePoint
	if err := c.get(ctx, "/v1/prices", v, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Outages returns one market's detected outages overlapping the window.
func (c *Client) Outages(ctx context.Context, market string, w api.Window) ([]api.Outage, error) {
	v := windowValues(w)
	v.Set("market", market)
	var out []api.Outage
	if err := c.get(ctx, "/v1/outages", v, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Predict estimates the probability of an on-demand outage within horizon
// of a spike of the given multiple (horizon 0 uses the service default).
func (c *Client) Predict(ctx context.Context, market string, ratio float64, horizon time.Duration, w api.Window) (*api.Prediction, error) {
	v := windowValues(w)
	v.Set("market", market)
	v.Set("ratio", strconv.FormatFloat(ratio, 'g', -1, 64))
	if horizon > 0 {
		v.Set("horizon", horizon.String())
	}
	var out api.Prediction
	if err := c.get(ctx, "/v1/predict", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReservedValue assesses reserving market at the planned duty cycle.
func (c *Client) ReservedValue(ctx context.Context, market string, utilization float64, w api.Window) (*api.ReservedValue, error) {
	v := windowValues(w)
	v.Set("market", market)
	v.Set("utilization", strconv.FormatFloat(utilization, 'g', -1, 64))
	var out api.ReservedValue
	if err := c.get(ctx, "/v1/reserved-value", v, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Markets lists the catalog's spot markets, optionally scoped.
func (c *Client) Markets(ctx context.Context, region, product string) ([]api.MarketInfo, error) {
	v := url.Values{}
	if region != "" {
		v.Set("region", region)
	}
	if product != "" {
		v.Set("product", product)
	}
	var out []api.MarketInfo
	if err := c.get(ctx, "/v1/markets", v, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Summary returns the per-region availability aggregates at the service
// clock.
func (c *Client) Summary(ctx context.Context) ([]api.RegionSummary, error) {
	var out []api.RegionSummary
	if err := c.get(ctx, "/v1/summary", url.Values{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Health returns the service's /v2/health payload: store mode and
// durability state, watch-stream counters, the service clock, and — on
// followers and gateways — replication or per-upstream detail.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var out api.Health
	if err := c.get(ctx, "/v2/health", url.Values{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// windowValues encodes a window spec as URL parameters.
func windowValues(w api.Window) url.Values {
	v := url.Values{}
	if w.Rel != "" {
		v.Set("window", w.Rel)
		return v
	}
	if !w.From.IsZero() {
		v.Set("from", w.From.Format(time.RFC3339))
	}
	if !w.To.IsZero() {
		v.Set("to", w.To.Format(time.RFC3339))
	}
	return v
}

// scopeValues encodes the parameters of the ranked, scope-filtered kinds.
func scopeValues(w api.Window, region, product string, n int) url.Values {
	v := windowValues(w)
	if region != "" {
		v.Set("region", region)
	}
	if product != "" {
		v.Set("product", product)
	}
	if n > 0 {
		v.Set("n", strconv.Itoa(n))
	}
	return v
}

// get issues a GET for path with params and decodes the payload into out.
func (c *Client) get(ctx context.Context, path string, params url.Values, out any) error {
	u := c.base + path
	if enc := params.Encode(); enc != "" {
		u += "?" + enc
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	_, err = c.do(req, "GET "+u, out)
	return err
}

// do executes the request, decoding either the payload or the service's
// error envelope (returned as *api.Error), and reports the response's
// ETag ("" when absent). key identifies the request in the conditional
// cache ("" skips caching); when a remembered ETag revalidates (304),
// the remembered body decodes instead and the held tag is returned.
func (c *Client) do(req *http.Request, key string, out any) (string, error) {
	var (
		prior cachedResponse
		held  bool
	)
	if key != "" {
		prior, held = c.lookupCached(key)
	}
	if held {
		req.Header.Set(api.HeaderIfNoneMatch, prior.etag)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		if !held {
			return "", fmt.Errorf("client: %s %s: unexpected 304 without a held ETag", req.Method, req.URL.Path)
		}
		c.mu.Lock()
		c.notModified++
		c.mu.Unlock()
		return prior.etag, decodeBody(prior.body, req.URL.Path, out)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: read %s response: %w", req.URL.Path, err)
	}
	if resp.StatusCode/100 != 2 {
		var aerr api.Error
		if err := json.Unmarshal(body, &aerr); err != nil || aerr.Code == "" {
			return "", fmt.Errorf("client: %s %s: HTTP %d", req.Method, req.URL.Path, resp.StatusCode)
		}
		return "", &aerr
	}
	etag := resp.Header.Get(api.HeaderETag)
	if etag != "" && key != "" {
		c.storeCached(key, etag, body)
	}
	return etag, decodeBody(body, req.URL.Path, out)
}

// decodeBody unmarshals a response body into out (nil out skips).
func decodeBody(body []byte, path string, out any) error {
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("client: decode %s response: %w", path, err)
	}
	return nil
}
