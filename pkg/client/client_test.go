package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

var (
	mktA = market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	t0   = time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
)

// testService stands up a real API server over a seeded store.
func testService(t *testing.T) (*Client, *store.Store) {
	t.Helper()
	db := store.New()
	apiSrv := query.NewAPI(query.NewEngine(db, market.New()), func() time.Time { return t0.Add(24 * time.Hour) })
	srv := httptest.NewServer(apiSrv.Handler())
	t.Cleanup(srv.Close)
	c, err := New(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	return c, db
}

func TestNewRejectsBadBaseURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/relative/only"} {
		if _, err := New(bad, nil); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}

func TestTypedV1Roundtrip(t *testing.T) {
	c, db := testService(t)
	ctx := context.Background()
	db.AppendProbe(store.ProbeRecord{At: t0, Market: mktA, Kind: store.ProbeOnDemand, Rejected: true, Code: "x"})
	db.AppendProbe(store.ProbeRecord{At: t0.Add(6 * time.Hour), Market: mktA, Kind: store.ProbeOnDemand})
	db.RecordPrice(mktA, store.PricePoint{At: t0.Add(time.Hour), Price: 0.42})

	unav, err := c.Unavailability(ctx, mktA.String(), "", api.Last(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if unav.Unavailability != 0.25 {
		t.Errorf("unavailability = %v, want 0.25", unav.Unavailability)
	}

	stable, err := c.Stable(ctx, "us-east-1", "", 3, api.Between(t0, t0.Add(24*time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	if len(stable) != 3 {
		t.Errorf("stable rows = %d, want 3", len(stable))
	}

	prices, err := c.Prices(ctx, mktA.String(), api.Last(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) != 1 || prices[0].Price != 0.42 {
		t.Errorf("prices = %+v", prices)
	}

	sums, err := c.Summary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Region != "us-east-1" {
		t.Errorf("summary = %+v", sums)
	}
}

func TestBatchRoundtrip(t *testing.T) {
	c, db := testService(t)
	db.AppendSpike(store.SpikeEvent{At: t0.Add(time.Hour), Market: mktA, Ratio: 2})

	resp, err := c.Batch(context.Background(),
		api.Query{Kind: api.KindStable, Region: "us-east-1", N: 5, Window: api.Last(24 * time.Hour)},
		api.Query{Kind: api.KindVolatile, Region: "us-east-1", N: 5, Window: api.Last(24 * time.Hour)},
		api.Query{Kind: api.KindSummary},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %d", len(resp.Results))
	}
	if got := resp.Results[1].Volatile; len(got) != 1 || got[0].Market != mktA.String() {
		t.Errorf("volatile = %+v", got)
	}
	if !resp.Now.Equal(t0.Add(24 * time.Hour)) {
		t.Errorf("now = %v", resp.Now)
	}
}

// TestConditionalRequests: with revalidation on, a repeated query is
// answered from the remembered body via a 304 — and a store append makes
// the next call fetch fresh data again.
func TestConditionalRequests(t *testing.T) {
	c, db := testService(t)
	c.EnableConditionalRequests()
	ctx := context.Background()
	db.AppendProbe(store.ProbeRecord{At: t0, Market: mktA, Kind: store.ProbeOnDemand, Rejected: true, Code: "x"})
	db.AppendProbe(store.ProbeRecord{At: t0.Add(6 * time.Hour), Market: mktA, Kind: store.ProbeOnDemand})
	w := api.Between(t0, t0.Add(24*time.Hour))

	first, err := c.Unavailability(ctx, mktA.String(), "", w)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Unavailability(ctx, mktA.String(), "", w)
	if err != nil {
		t.Fatal(err)
	}
	if c.NotModifiedCount() != 1 {
		t.Fatalf("not-modified count = %d, want 1", c.NotModifiedCount())
	}
	if *second != *first {
		t.Errorf("revalidated response %+v != original %+v", second, first)
	}

	// An in-scope append must bypass the remembered body.
	db.AppendProbe(store.ProbeRecord{At: t0.Add(12 * time.Hour), Market: mktA, Kind: store.ProbeOnDemand, Rejected: true, Code: "x"})
	third, err := c.Unavailability(ctx, mktA.String(), "", w)
	if err != nil {
		t.Fatal(err)
	}
	if c.NotModifiedCount() != 1 {
		t.Errorf("append still served from conditional cache")
	}
	if third.Unavailability <= first.Unavailability {
		t.Errorf("fresh unavailability = %v, want > %v", third.Unavailability, first.Unavailability)
	}

	// Batches revalidate the same way, keyed by the request body.
	q := api.Query{Kind: api.KindStable, Region: "us-east-1", N: 3, Window: w}
	if _, err := c.Batch(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Batch(ctx, q); err != nil {
		t.Fatal(err)
	}
	if c.NotModifiedCount() != 2 {
		t.Errorf("batch revalidation count = %d, want 2", c.NotModifiedCount())
	}
}

// TestErrorEnvelopeSurfacing: service-side failures come back as
// *api.Error with the machine-readable code, both for v1 calls and for
// batch-level rejections.
func TestErrorEnvelopeSurfacing(t *testing.T) {
	c, _ := testService(t)
	ctx := context.Background()

	_, err := c.Stable(ctx, "us-east-1", "", 5, api.Window{Rel: "nonsense"})
	var aerr *api.Error
	if !errors.As(err, &aerr) || aerr.Code != api.CodeBadWindow {
		t.Errorf("stable with bad window: err = %v, want *api.Error code %s", err, api.CodeBadWindow)
	}

	_, err = c.Unavailability(ctx, "garbage", "", api.Last(time.Hour))
	if !errors.As(err, &aerr) || aerr.Code != api.CodeBadMarket {
		t.Errorf("bad market: err = %v, want code %s", err, api.CodeBadMarket)
	}

	over := make([]api.Query, api.MaxBatchQueries+1)
	for i := range over {
		over[i] = api.Query{Kind: api.KindSummary}
	}
	_, err = c.Batch(ctx, over...)
	if !errors.As(err, &aerr) || aerr.Code != api.CodeTooManyQueries {
		t.Errorf("oversized batch: err = %v, want code %s", err, api.CodeTooManyQueries)
	}
}
