# Mirrors .github/workflows/ci.yml: `make ci` is what CI runs.

GO ?= go

.PHONY: all build test vet fmt-check bench smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

# Benchmark smoke: compile and run each perf-critical query path once
# (BenchmarkQueryStable matches the cached variant too). Capture-then-cat
# instead of tee so the exit status survives /bin/sh.
bench:
	@$(GO) test -bench=BenchmarkQueryStable -benchtime=1x -run='^$$' . >bench-smoke.txt 2>&1; \
	rc=$$?; cat bench-smoke.txt; exit $$rc

# HTTP smoke: boot spotlightd on an ephemeral port, issue one v2 batch
# query against it through the pkg/client SDK, and exit.
smoke:
	$(GO) run ./cmd/spotlightd -addr 127.0.0.1:0 -smoke

ci: build fmt-check vet test smoke bench
