# Mirrors .github/workflows/ci.yml: `make ci` is what CI runs.

GO ?= go

.PHONY: all build test vet fmt-check bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

# Benchmark smoke: compile and run each perf-critical query path once.
bench:
	$(GO) test -bench=BenchmarkQueryStable -benchtime=1x -run='^$$' .

ci: build fmt-check vet test bench
