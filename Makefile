# Mirrors .github/workflows/ci.yml: `make ci` is what CI runs.

GO ?= go

# Benchmarks covered by the smoke run: the query hot paths, the rollup/
# ingest paths whose regressions matter (summary, scope generations,
# monitor-shaped batched appends), the durability paths (WAL-enabled
# batch ingest, WAL append+flush cycle, boot-time replay), and the
# change-feed paths (publish round, 1/64/512-subscriber fan-out, and the
# blocked-watcher ingest twin that proves slow consumers cannot stall
# appends), the advisor ranking path (BenchmarkAdvise matches the
# generation-cached variant too), and the metrics overhead pair
# (BenchmarkObsOverhead runs each instrumented hot path against its
# nil-registry twin — the two must stay within noise of each other).
BENCH_SMOKE = BenchmarkQueryStable|BenchmarkQuerySummary|BenchmarkStoreAggregates|BenchmarkStoreRegionAggregates|BenchmarkGenerationOfScope|BenchmarkStoreAppendMonitorTick|BenchmarkStoreAppendProbesBatchParallel|BenchmarkWALAppend|BenchmarkReplay|BenchmarkFeedPublish|BenchmarkFeedFanout|BenchmarkAdvise|BenchmarkPriceStatsIn|BenchmarkSpikesInWindow|BenchmarkEventsSince|BenchmarkObsOverhead

# Benchmark iteration control. The CI smoke keeps the 1x default (it only
# proves the benchmarks run); any measurement that will be *compared* —
# the committed baseline above all — must use enough iterations that
# per-op numbers are averages, not a single cold pass. Override per run:
# `make bench BENCH_TIME=2s BENCH_COUNT=5`.
BENCH_TIME ?= 1x
BENCH_COUNT ?= 1

# bench-diff inputs: OLD defaults to the committed baseline, NEW to the
# latest smoke run.
OLD ?= bench-baseline.txt
NEW ?= bench-smoke.txt

.PHONY: all build test vet fmt-check bench bench-diff bench-baseline smoke loadgen-smoke chaos-smoke fuzz-smoke example-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$out" >&2; \
		exit 1; \
	fi

# Benchmark smoke: compile and run each perf-critical query path once
# (BenchmarkQueryStable matches the cached variant too). Capture-then-cat
# instead of tee so the exit status survives /bin/sh.
bench:
	@$(GO) test -bench='$(BENCH_SMOKE)' -benchtime=$(BENCH_TIME) -count=$(BENCH_COUNT) -run='^$$' . >bench-smoke.txt 2>&1; \
	rc=$$?; cat bench-smoke.txt; exit $$rc

# bench-diff compares two benchmark outputs (`make bench-diff OLD=a NEW=b`)
# so rollup hot-path regressions are visible at a glance: benchstat when
# installed, a plain unified diff otherwise.
bench-diff:
	@if [ ! -f "$(OLD)" ] || [ ! -f "$(NEW)" ]; then \
		echo "bench-diff: need $(OLD) and $(NEW) (run 'make bench'; refresh the baseline with 'make bench-baseline')" >&2; \
		exit 1; \
	fi; \
	if command -v benchstat >/dev/null 2>&1; then \
		benchstat "$(OLD)" "$(NEW)"; \
	else \
		echo "bench-diff: benchstat not installed, showing raw diff ($(OLD) -> $(NEW))"; \
		diff -u "$(OLD)" "$(NEW)" || true; \
	fi

# bench-baseline refreshes the committed comparison point for bench-diff.
# The baseline is measured, not smoked: it defaults to enough iterations
# that the recorded ns/op and B/op are stable averages (a 1x baseline
# once recorded the cached summary query as slower than the uncached one
# purely from first-iteration effects).
bench-baseline: BENCH_TIME = 100x
bench-baseline: bench
	cp bench-smoke.txt $(OLD)

# HTTP smoke: boot spotlightd on an ephemeral port, issue one v2 batch
# query against it through the pkg/client SDK, and exit.
smoke:
	$(GO) run ./cmd/spotlightd -addr 127.0.0.1:0 -smoke

# Scale-out smoke: spotload boots a leader, a read replica following it
# over /v2/watch, and a scatter-gather gateway fronting both, then loads
# the gateway and writes the latency distribution to spotload-report.txt
# (archived by CI next to bench-smoke.txt). Fails unless every request
# succeeded against the 2-node fleet AND every node's /metrics serves
# its role's core series; the raw expositions land in metrics-dump.txt.
loadgen-smoke:
	$(GO) run ./cmd/spotload -smoke -report spotload-report.txt -metrics-dump metrics-dump.txt

# Chaos smoke: the failure-domain drill, under the race detector. One
# process boots a leader, a durable follower behind a fault-injecting
# TCP proxy, a memory follower, and a gateway with injected delays and
# resets, then — while load runs — kills streams, restarts the durable
# follower from disk (byte-comparing it against the never-killed
# replica, ETags included), kills the leader, and promotes a follower.
# Fails unless gateway read availability stays >= 99% and replication
# stays exactly-once. Report archived by CI next to spotload-report.txt;
# the end-of-drill /metrics expositions land in chaos-metrics-dump.txt.
chaos-smoke:
	$(GO) run -race ./cmd/spotload -chaos -report chaos-report.txt -metrics-dump chaos-metrics-dump.txt

# Decision-layer smoke: run the fleet-manager example end to end — an
# /v2/advise call through the client SDK, then the threshold vs
# feedback-control head-to-head on a short identically-seeded run.
example-smoke:
	$(GO) run ./examples/fleet-manager -days 1 -target 2

# Fuzz smoke: a short native-fuzz burst over the WAL frame decoder and
# the snapshot loader (malformed input must error, never panic). The
# checked-in seed corpora live in internal/store/testdata/fuzz.
fuzz-smoke:
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzWALDecode$$' -fuzztime=10s
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzSnapshotReadJSON$$' -fuzztime=10s
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzSnapshotV2Decode$$' -fuzztime=10s

ci: build fmt-check vet test smoke loadgen-smoke chaos-smoke example-smoke fuzz-smoke bench
