// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of SpotLight's design choices. Reported
// metrics carry the headline numbers of each figure so that
// `go test -bench=. -benchmem` reproduces the evaluation in one run:
//
//	BenchmarkTable2_1      — contract tradeoff table
//	BenchmarkFigure2_1     — spot price vs on-demand trace
//	BenchmarkFigure5_1a/b  — family and cross-zone price traces
//	BenchmarkFigure5_2     — BidSpread intrinsic prices
//	BenchmarkFigure5_3     — least bid to hold 1/3/6/12 h
//	BenchmarkFigure5_4..12 — the Chapter 5 availability study
//	BenchmarkFigure6_1/6_2 — the SpotCheck and SpotOn case studies
//	BenchmarkAblation*     — market-based vs naive probing, threshold,
//	                         sampling ratio, family fan-out
package spotlight_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spotlight/internal/advisor"
	"spotlight/internal/analysis"
	"spotlight/internal/core"
	"spotlight/internal/experiment"
	"spotlight/internal/market"
	"spotlight/internal/obs"
	"spotlight/internal/query"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

// The shared study behind the figure benchmarks: 6 simulated days over
// the full catalog (the paper ran ~90 days; the shapes stabilize within
// a week and the benchmarks stay fast).
var (
	studyOnce sync.Once
	studySt   *experiment.Study
	studyErr  error
)

func benchStudy(b *testing.B) *experiment.Study {
	b.Helper()
	studyOnce.Do(func() {
		studySt, studyErr = experiment.Run(experiment.Config{Seed: 42, Days: 6})
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studySt
}

func BenchmarkTable2_1(b *testing.B) {
	rows := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = len(analysis.Table21Contracts())
	}
	b.ReportMetric(float64(rows), "contract_rows")
}

func BenchmarkFigure2_1(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	id := market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	b.ReportAllocs()
	b.ResetTimer()
	var tr analysis.PriceTrace
	for i := 0; i < b.N; i++ {
		var err error
		tr, err = analysis.Fig21PriceTrace(st.DB, st.Cat, id, from, to)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*tr.AboveODFraction, "pct_samples_above_od")
	b.ReportMetric(tr.Max/tr.OnDemandPrice, "max_price_x_od")
}

func BenchmarkFigure5_1a(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	ids := []market.SpotID{
		{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux},
		{Zone: "us-east-1d", Type: "c3.4xlarge", Product: market.ProductLinux},
		{Zone: "us-east-1d", Type: "c3.8xlarge", Product: market.ProductLinux},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var trs []analysis.PriceTrace
	for i := 0; i < b.N; i++ {
		var err error
		trs, err = analysis.Fig51Traces(st.DB, st.Cat, ids, from, to)
		if err != nil {
			b.Fatal(err)
		}
	}
	// The Fig 5.1a arbitrage observation: how often the 2xlarge
	// out-priced the 8xlarge in absolute dollars.
	inversions, samples := priceInversions(trs[0], trs[2])
	b.ReportMetric(100*inversions, "pct_price_inversions")
	b.ReportMetric(samples, "trace_points")
}

// priceInversions walks two traces and returns the fraction of hourly
// samples where the smaller type cost more in dollars than the larger.
func priceInversions(small, large analysis.PriceTrace) (frac, samples float64) {
	if len(small.Points) == 0 || len(large.Points) == 0 {
		return 0, 0
	}
	at := func(pts []store.PricePoint, t time.Time) float64 {
		cur := pts[0].Price
		for _, p := range pts {
			if p.At.After(t) {
				break
			}
			cur = p.Price
		}
		return cur
	}
	start := small.Points[0].At
	end := small.Points[len(small.Points)-1].At
	n, inv := 0, 0
	for t := start; !t.After(end); t = t.Add(time.Hour) {
		n++
		if at(small.Points, t) > at(large.Points, t) {
			inv++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(inv) / float64(n), float64(n)
}

func BenchmarkFigure5_1b(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	ids := []market.SpotID{
		{Zone: "us-east-1a", Type: "c3.2xlarge", Product: market.ProductLinux},
		{Zone: "us-east-1b", Type: "c3.2xlarge", Product: market.ProductLinux},
		{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var trs []analysis.PriceTrace
	for i := 0; i < b.N; i++ {
		var err error
		trs, err = analysis.Fig51Traces(st.DB, st.Cat, ids, from, to)
		if err != nil {
			b.Fatal(err)
		}
	}
	spread := 0.0
	for _, tr := range trs {
		if tr.Max > spread {
			spread = tr.Max
		}
	}
	b.ReportMetric(spread/trs[0].OnDemandPrice, "max_zone_price_x_od")
}

func BenchmarkFigure5_2(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig52
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig52IntrinsicPrice(st.DB, experiment.BidSpreadMarket())
	}
	b.ReportMetric(res.MeanAttempts, "mean_bid_attempts")
	b.ReportMetric(100*res.PremiumFraction, "pct_searches_with_premium")
}

func BenchmarkFigure5_3(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	id := market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	b.ReportAllocs()
	b.ResetTimer()
	var res analysis.Fig53
	for i := 0; i < b.N; i++ {
		var err error
		res, err = analysis.Fig53HoldPrices(st.DB, st.Cat, id, from, to, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mean least bid to hold 12 hours, in on-demand multiples — the
	// paper's point that holding needs a far higher bid than the spot
	// price suggests.
	mean12 := 0.0
	for _, v := range res.HoldPrice[len(res.Hours)-1] {
		mean12 += v
	}
	if n := len(res.HoldPrice[len(res.Hours)-1]); n > 0 {
		mean12 /= float64(n)
	}
	b.ReportMetric(mean12/res.OnDemandPrice, "mean_hold12h_bid_x_od")
}

func BenchmarkFigure5_4(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig54
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig54GlobalUnavailability(st.DB, nil)
	}
	b.ReportMetric(res.UnavailabilityPct[0][1], "pct_unavail_gt1x_w900")
	b.ReportMetric(res.UnavailabilityPct[0][5], "pct_unavail_gt5x_w900")
}

func BenchmarkFigure5_5(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig55
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig55RegionRejectShare(st.DB)
	}
	sa := 0.0
	for i, r := range res.Regions {
		if r == "sa-east-1" {
			for _, v := range res.SharePct[i] {
				sa += v
			}
		}
	}
	b.ReportMetric(sa, "sa_east_share_pct")
	b.ReportMetric(float64(res.Total), "rejected_probes")
}

func BenchmarkFigure5_6(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig56
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig56RegionUnavailability(st.DB, 0)
	}
	for i, r := range res.Regions {
		switch r {
		case "us-east-1":
			b.ReportMetric(res.UnavailabilityPct[i][1], "us_east_pct_gt1x")
		case "sa-east-1":
			b.ReportMetric(res.UnavailabilityPct[i][1], "sa_east_pct_gt1x")
		}
	}
}

func BenchmarkFigure5_7(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig57
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig57TriggerBreakdown(st.DB)
	}
	// Aggregate split across bins (paper: ~30% spikes / ~70% related).
	var spikes, related float64
	for bin, n := range res.Samples {
		spikes += res.BySpikePct[bin] * float64(n) / 100
		related += res.ByRelatedPct[bin] * float64(n) / 100
	}
	if total := spikes + related; total > 0 {
		b.ReportMetric(100*spikes/total, "pct_by_spikes")
		b.ReportMetric(100*related/total, "pct_by_related")
	}
}

func BenchmarkFigure5_8(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig58
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig58CrossAZ(st.DB, nil)
	}
	// 1-hour window at the lowest threshold (paper: ~24% falling to
	// ~12.5% as spikes grow).
	last := len(res.Windows) - 1
	b.ReportMetric(res.ProbabilityPct[last][0], "pct_crossaz_1h_gt0")
}

func BenchmarkFigure5_9(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig59
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig59OutageDurationCDF(st.DB)
	}
	b.ReportMetric(res.CDFPct[1], "pct_outages_under_1h")
	b.ReportMetric(float64(len(res.Durations)), "outage_samples")
}

func BenchmarkFigure5_10(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig510
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig510SpotUnavailability(st.DB)
	}
	b.ReportMetric(res.AllPct[0], "pct_cna_lowest_prices")
	b.ReportMetric(res.AllPct[9], "pct_cna_near_od")
}

func BenchmarkFigure5_11(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig511
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig511SpotInsufficiencyDist(st.DB)
	}
	b.ReportMetric(res.BelowODPct, "pct_rejections_below_od")
	b.ReportMetric(float64(res.Total), "spot_rejections")
}

func BenchmarkFigure5_12(b *testing.B) {
	st := benchStudy(b)
	var res analysis.Fig512
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = analysis.Fig512CrossKind(st.DB, nil)
	}
	last := len(res.Windows) - 1
	b.ReportMetric(res.ODtoOD[last], "pct_od_od_1h")
	b.ReportMetric(res.SpotToSpot[last], "pct_spot_spot_1h")
	b.ReportMetric(res.ODToSpot[last], "pct_od_spot_1h")
	b.ReportMetric(res.SpotToOD[last], "pct_spot_od_1h")
}

func BenchmarkFigure6_1(b *testing.B) {
	st := benchStudy(b)
	var rows []experiment.Fig61Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = st.RunSpotCheck()
		if err != nil {
			b.Fatal(err)
		}
	}
	worstNaive, worstInformed := 100.0, 100.0
	for _, r := range rows {
		if r.SpotCheckPct < worstNaive {
			worstNaive = r.SpotCheckPct
		}
		if r.SpotLightPct < worstInformed {
			worstInformed = r.SpotLightPct
		}
	}
	b.ReportMetric(worstNaive, "worst_naive_availability_pct")
	b.ReportMetric(worstInformed, "worst_spotlight_availability_pct")
}

func BenchmarkFigure6_2(b *testing.B) {
	st := benchStudy(b)
	var rows []experiment.Fig62Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = st.RunSpotOn(40)
		if err != nil {
			b.Fatal(err)
		}
	}
	worstInflation := 0.0
	for _, r := range rows {
		if infl := r.SpotOnHours / r.IdealHours; infl > worstInflation {
			worstInflation = infl
		}
	}
	b.ReportMetric(100*(worstInflation-1), "worst_naive_runtime_inflation_pct")
}

// Ablations ------------------------------------------------------------

// ablationConfig runs a short, region-restricted study with a fixed probe
// budget so policies are compared at equal spend.
func ablationStudy(b *testing.B, mutate func(*core.Config)) *experiment.Study {
	b.Helper()
	slCfg := core.Config{
		Budget:       2000, // dollars per day
		BudgetWindow: 24 * time.Hour,
	}
	if mutate != nil {
		mutate(&slCfg)
	}
	st, err := experiment.Run(experiment.Config{
		Seed:      42,
		Days:      2,
		Regions:   []market.Region{"sa-east-1", "ap-southeast-2"},
		Spotlight: slCfg,
	})
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// detectedOutageMinutes totals the detected on-demand outage time.
func detectedOutageMinutes(st *experiment.Study) float64 {
	total := 0.0
	for _, o := range st.DB.Outages() {
		if o.Kind != store.ProbeOnDemand {
			continue
		}
		end := o.End
		if end.IsZero() {
			end = st.End
		}
		total += end.Sub(o.Start).Minutes()
	}
	return total
}

var (
	ablOnce                 sync.Once
	ablMarket, ablNaive     *experiment.Study
	ablNoFamily, ablSampled *experiment.Study
	ablThresholdHigh        *experiment.Study
)

func ablations(b *testing.B) {
	b.Helper()
	ablOnce.Do(func() {
		ablMarket = ablationStudy(b, nil)
		ablNaive = ablationStudy(b, func(c *core.Config) {
			c.Threshold = 1000 // never triggers: no market signal
			c.PeriodicODProbesPerDay = 2000
		})
		ablNoFamily = ablationStudy(b, func(c *core.Config) {
			c.DisableFamilyProbing = true
		})
		ablSampled = ablationStudy(b, func(c *core.Config) {
			c.SampleProb = 0.25
		})
		ablThresholdHigh = ablationStudy(b, func(c *core.Config) {
			c.Threshold = 2.0
		})
	})
}

// BenchmarkAblationMarketVsNaive compares market-based probing against
// naive periodic probing at equal budget: detected outage minutes per
// thousand dollars spent (the paper's core efficiency claim).
func BenchmarkAblationMarketVsNaive(b *testing.B) {
	ablations(b)
	var mkt, naive float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mkt = detectedOutageMinutes(ablMarket) / (ablMarket.Svc.Spent()/1000 + 1e-9)
		naive = detectedOutageMinutes(ablNaive) / (ablNaive.Svc.Spent()/1000 + 1e-9)
	}
	b.ReportMetric(mkt, "market_outage_min_per_k$")
	b.ReportMetric(naive, "naive_outage_min_per_k$")
}

// BenchmarkAblationFamilyProbing measures what the §3.2 related-market
// fan-out contributes: detected outage minutes with and without it.
func BenchmarkAblationFamilyProbing(b *testing.B) {
	ablations(b)
	var with, without float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with = detectedOutageMinutes(ablMarket)
		without = detectedOutageMinutes(ablNoFamily)
	}
	b.ReportMetric(with, "with_family_outage_min")
	b.ReportMetric(without, "without_family_outage_min")
}

// BenchmarkAblationSamplingRatio measures §3.4's p knob: spend and
// detections at p=1 vs p=0.25.
func BenchmarkAblationSamplingRatio(b *testing.B) {
	ablations(b)
	var full, sampled float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = detectedOutageMinutes(ablMarket)
		sampled = detectedOutageMinutes(ablSampled)
	}
	b.ReportMetric(full, "p1.0_outage_min")
	b.ReportMetric(sampled, "p0.25_outage_min")
	b.ReportMetric(ablMarket.Svc.Spent(), "p1.0_spend_$")
	b.ReportMetric(ablSampled.Svc.Spent(), "p0.25_spend_$")
}

// BenchmarkAblationThreshold measures §3.4's T knob: T=1x vs T=2x.
func BenchmarkAblationThreshold(b *testing.B) {
	ablations(b)
	var t1, t2 float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 = float64(ablMarket.Svc.Stats().ODProbes)
		t2 = float64(ablThresholdHigh.Svc.Stats().ODProbes)
	}
	b.ReportMetric(t1, "t1x_od_probes")
	b.ReportMetric(t2, "t2x_od_probes")
	b.ReportMetric(detectedOutageMinutes(ablMarket), "t1x_outage_min")
	b.ReportMetric(detectedOutageMinutes(ablThresholdHigh), "t2x_outage_min")
}

// BenchmarkDetectionScore evaluates the paper's detection claim: how much
// of the platform's true unavailability SpotLight's probing recovered.
func BenchmarkDetectionScore(b *testing.B) {
	st := benchStudy(b)
	var score experiment.DetectionScore
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		score, err = st.DetectionScore()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*score.Precision, "precision_pct")
	b.ReportMetric(100*score.Recall, "recall_pct")
	b.ReportMetric(float64(score.DetectedOutages), "detected_outages")
}

// Microbenchmarks ------------------------------------------------------

// BenchmarkSimStep measures one full-catalog simulator tick (all 4134
// markets re-clear).
func BenchmarkSimStep(b *testing.B) {
	st, err := experiment.New(experiment.Config{Seed: 1, Days: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Sim.Step()
	}
}

// BenchmarkServiceTick measures a simulator tick plus a full SpotLight
// monitoring cycle over all nine regions.
func BenchmarkServiceTick(b *testing.B) {
	st, err := experiment.New(experiment.Config{Seed: 1, Days: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Sim.Step()
		st.Svc.OnTick()
	}
}

// BenchmarkQueryStable measures the paper's example query over a seeded
// store, with the response cache disabled: this is the raw cost of one
// ranking computation.
func BenchmarkQueryStable(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	engine := query.NewEngine(st.DB, st.Cat)
	engine.SetCaching(false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.TopStableMarkets("us-east-1", market.ProductLinux, 10, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryStableCached measures the same query with the
// generation-keyed response cache on: after the first computation every
// repeat is a scope-generation walk plus a map hit — the serving cost of
// a dashboard polling an unchanged window.
func BenchmarkQueryStableCached(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	engine := query.NewEngine(st.DB, st.Cat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.TopStableMarkets("us-east-1", market.ProductLinux, 10, from, to); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hits, misses := engine.CacheStats()
	b.ReportMetric(float64(hits), "cache_hits")
	b.ReportMetric(float64(misses), "cache_misses")
}

// BenchmarkAdvise measures one cold decision-layer ranking: a fresh
// advisor walks every priced market of the study, applies the workload
// constraints, and scores/sorts the admissible set — the cost of a
// /v2/advise that misses the memo.
func BenchmarkAdvise(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	wire := api.AdviseConstraints{
		Regions:  []string{"us-east-1"},
		Products: []string{string(market.ProductLinux)},
		MinVCPU:  4,
		N:        10,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		adv := advisor.New(st.DB, st.Cat)
		cons, err := adv.Normalize(wire)
		if err != nil {
			b.Fatal(err)
		}
		n = len(adv.Advise(cons, from, to))
	}
	b.ReportMetric(float64(n), "candidates")
}

// BenchmarkAdviseCached measures the same ranking with the
// generation-keyed memo warm: each repeat is a scope-generation sum plus
// a map probe — the serving cost of a fleet manager calling the advisor
// every tick against an unchanged store.
func BenchmarkAdviseCached(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	adv := advisor.New(st.DB, st.Cat)
	cons, err := adv.Normalize(api.AdviseConstraints{
		Regions:  []string{"us-east-1"},
		Products: []string{string(market.ProductLinux)},
		MinVCPU:  4,
		N:        10,
	})
	if err != nil {
		b.Fatal(err)
	}
	adv.Advise(cons, from, to) // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adv.Advise(cons, from, to)
	}
}

// BenchmarkQueryFallback measures the uncorrelated-fallback
// recommendation.
func BenchmarkQueryFallback(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	engine := query.NewEngine(st.DB, st.Cat)
	id := market.SpotID{Zone: "us-east-1e", Type: "d2.8xlarge", Product: market.ProductLinux}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RecommendFallback(id, 5, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

// Sharded-store benchmarks -------------------------------------------------
//
// The per-market sharding of internal/store exists for two reasons: writes
// to different markets must not contend on one lock (SpotLight ingests
// every probe/spike/price of ~4500 markets), and availability queries must
// not rescan the global log. These benchmarks measure both.

// benchMarkets builds n distinct synthetic spot markets.
func benchMarkets(n int) []market.SpotID {
	zones := []market.Zone{"us-east-1a", "us-east-1b", "us-east-1d", "eu-west-1a"}
	out := make([]market.SpotID, n)
	for i := range out {
		out[i] = market.SpotID{
			Zone:    zones[i%len(zones)],
			Type:    market.InstanceType(fmt.Sprintf("c%d.%dxlarge", i/len(zones)+1, i%8+1)),
			Product: market.ProductLinux,
		}
	}
	return out
}

// storeAppendParallel drives concurrent appenders spread across nMarkets
// shards: each goroutine owns a slice of markets and round-robins its
// writes over them.
func storeAppendParallel(b *testing.B, nMarkets int) {
	b.Helper()
	db := store.New()
	mkts := benchMarkets(nMarkets)
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(next.Add(1)) - 1
		i := 0
		for pb.Next() {
			id := mkts[(g+i)%len(mkts)]
			db.AppendProbe(store.ProbeRecord{
				At:     base.Add(time.Duration(i) * time.Second),
				Market: id, Kind: store.ProbeOnDemand,
				Trigger: store.TriggerSpike, Rejected: i%8 == 0, Cost: 0.1,
			})
			i++
		}
	})
	b.ReportMetric(float64(nMarkets), "markets")
}

// BenchmarkStoreAppendParallel measures concurrent ingestion with a small
// market set (high per-shard contention — the old flat log's worst case
// was equivalent to nMarkets=1 for every workload).
func BenchmarkStoreAppendParallel(b *testing.B) { storeAppendParallel(b, 8) }

// BenchmarkStoreAppendParallelManyMarkets spreads the same write load over
// ~4k markets, the paper's full catalog scale: appenders virtually never
// share a shard lock.
func BenchmarkStoreAppendParallelManyMarkets(b *testing.B) { storeAppendParallel(b, 4096) }

// BenchmarkStoreAppendProbesBatchParallel measures the batched ingestion
// path: concurrent appenders each flush 64-record batches to their bound
// market through Appender.AppendProbes, paying one lock round per batch
// instead of per record (the replay / ReadJSON bulk-load pattern).
func BenchmarkStoreAppendProbesBatchParallel(b *testing.B) {
	const batchSize = 64
	db := store.New()
	mkts := benchMarkets(8)
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(next.Add(1)) - 1
		app := db.Appender(mkts[g%len(mkts)])
		batch := make([]store.ProbeRecord, 0, batchSize)
		i := 0
		for pb.Next() {
			batch = append(batch, store.ProbeRecord{
				At:     base.Add(time.Duration(i) * time.Second),
				Market: app.Market(), Kind: store.ProbeOnDemand,
				Trigger: store.TriggerSpike, Rejected: i%8 == 0, Cost: 0.1,
			})
			if len(batch) == batchSize {
				app.AppendProbes(batch)
				batch = batch[:0]
			}
			i++
		}
		app.AppendProbes(batch)
	})
	b.ReportMetric(batchSize, "batch_size")
}

// BenchmarkStoreAppendProbesBatchParallelWAL is the durable twin of
// BenchmarkStoreAppendProbesBatchParallel: the same concurrent batched
// ingest against a store opened with a write-ahead log, WAL frames
// encoded and buffered in the same batch round (buffers auto-flush to
// segment files as they fill). Comparing the two gauges the ingest-path
// cost of durability; the acceptance bar is <15% regression.
func BenchmarkStoreAppendProbesBatchParallelWAL(b *testing.B) {
	const batchSize = 64
	db, err := store.Open(b.TempDir(), store.PersistOptions{})
	if err != nil {
		b.Fatal(err)
	}
	mkts := benchMarkets(8)
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(next.Add(1)) - 1
		app := db.Appender(mkts[g%len(mkts)])
		batch := make([]store.ProbeRecord, 0, batchSize)
		i := 0
		for pb.Next() {
			batch = append(batch, store.ProbeRecord{
				At:     base.Add(time.Duration(i) * time.Second),
				Market: app.Market(), Kind: store.ProbeOnDemand,
				Trigger: store.TriggerSpike, Rejected: i%8 == 0, Cost: 0.1,
			})
			if len(batch) == batchSize {
				app.AppendProbes(batch)
				batch = batch[:0]
			}
			i++
		}
		app.AppendProbes(batch)
	})
	b.StopTimer()
	if err := db.Persister().Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(batchSize, "batch_size")
}

// BenchmarkWALAppend measures the steady-state durable ingest cycle of
// one market: batched appends with a WAL flush every 16 batches (the
// shape of a monitor flushing each tick), reported per record.
func BenchmarkWALAppend(b *testing.B) {
	const batchSize = 64
	db, err := store.Open(b.TempDir(), store.PersistOptions{})
	if err != nil {
		b.Fatal(err)
	}
	p := db.Persister()
	app := db.Appender(benchMarkets(1)[0])
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	batch := make([]store.ProbeRecord, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	ticks := 0
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = store.ProbeRecord{
				At:     base.Add(time.Duration(i+j) * time.Second),
				Market: app.Market(), Kind: store.ProbeSpot,
				Trigger: store.TriggerPeriodicSpot, Rejected: (i+j)%8 == 0, Cost: 0.1,
			}
		}
		app.AppendProbes(batch)
		if ticks++; ticks%16 == 0 {
			if err := p.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := p.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReplay measures recovery: Open replaying a WAL-only data
// directory (no snapshot — the worst case) of 48k probe records across 8
// markets, rebuilding shards, aggregates, rollups, and generations.
func BenchmarkReplay(b *testing.B) {
	const perMarket = 6000
	dir := b.TempDir()
	db, err := store.Open(dir, store.PersistOptions{})
	if err != nil {
		b.Fatal(err)
	}
	mkts := benchMarkets(8)
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	for _, id := range mkts {
		app := db.Appender(id)
		batch := make([]store.ProbeRecord, 0, 64)
		for i := 0; i < perMarket; i++ {
			batch = append(batch, store.ProbeRecord{
				At:     base.Add(time.Duration(i) * time.Second),
				Market: id, Kind: store.ProbeOnDemand,
				Trigger: store.TriggerSpike, Rejected: i%8 == 0, Cost: 0.1,
			})
			if len(batch) == cap(batch) {
				app.AppendProbes(batch)
				batch = batch[:0]
			}
		}
		app.AppendProbes(batch)
	}
	// Flush without snapshotting: recovery must decode every frame.
	if err := db.Persister().Flush(); err != nil {
		b.Fatal(err)
	}
	records := len(mkts) * perMarket
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration recovers a fresh copy: the source directory
		// stays locked by the seeding store, and recovery must see the
		// untouched WAL-only layout every time.
		b.StopTimer()
		iterDir := copyBenchDir(b, dir)
		b.StartTimer()
		re, err := store.Open(iterDir, store.PersistOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if got := int(re.GlobalGeneration()); got != records {
			b.Fatalf("replayed %d records, want %d", got, records)
		}
		b.StopTimer()
		if err := re.Persister().Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(records), "records")
}

// copyBenchDir clones a data directory (excluding the live LOCK file)
// into a fresh temp dir.
func copyBenchDir(b *testing.B, src string) string {
	b.Helper()
	dst := b.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if rel == "LOCK" {
			return nil
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		b.Fatalf("copy data dir: %v", err)
	}
	return dst
}

// BenchmarkQueryStableParallel measures concurrent readers running the
// paper's example query against the shared study store — the serving
// pattern of an Engine answering many SpotCheck/SpotOn clients at once.
// Caching is off: every reader recomputes.
func BenchmarkQueryStableParallel(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	engine := query.NewEngine(st.DB, st.Cat)
	engine.SetCaching(false)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := engine.TopStableMarkets("us-east-1", market.ProductLinux, 10, from, to); err != nil {
				// Fatal is not allowed off the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkQueryUnavailabilityParallel measures the per-market
// availability lookup (the hot path of automated placement decisions):
// pure shard-local window arithmetic.
func BenchmarkQueryUnavailabilityParallel(b *testing.B) {
	st := benchStudy(b)
	from, to := st.Window()
	engine := query.NewEngine(st.DB, st.Cat)
	ids := st.Cat.SpotMarkets()
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(next.Add(1)) - 1
		i := 0
		for pb.Next() {
			id := ids[(g*7919+i)%len(ids)]
			if _, err := engine.ODUnavailability(id, from, to); err != nil {
				// Fatal is not allowed off the benchmark goroutine.
				b.Error(err)
				return
			}
			i++
		}
	})
}

// Rollup benchmarks ----------------------------------------------------
//
// The rollup hierarchy in internal/store exists so scope-wide reads —
// region summaries, cache-validity probes — cost O(regions) instead of
// walking every market shard. benchWideStore seeds a synthetic store
// large enough (1000 markets across four regions) that the difference
// dominates; BenchmarkQuerySummary is the acceptance benchmark for the
// rollup layer (pre-rollup it folded per-market aggregates: ~136µs and
// ~173KB per query at this scale).

// benchWideStore seeds nMarkets markets with a handful of probes and
// spikes each; the five zones span four regions.
func benchWideStore(nMarkets int) (*store.Store, time.Time) {
	db := store.New()
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	zones := []market.Zone{"us-east-1a", "us-east-1b", "eu-west-1a", "ap-southeast-2a", "sa-east-1a"}
	for i := 0; i < nMarkets; i++ {
		id := market.SpotID{
			Zone:    zones[i%len(zones)],
			Type:    market.InstanceType(fmt.Sprintf("c%d.%dxlarge", i/8+1, i%8+1)),
			Product: market.ProductLinux,
		}
		for j := 0; j < 16; j++ {
			db.AppendProbe(store.ProbeRecord{
				At: base.Add(time.Duration(j) * time.Minute), Market: id,
				Kind: store.ProbeOnDemand, Rejected: j%4 == 0, Cost: 0.1,
			})
			db.AppendSpike(store.SpikeEvent{At: base.Add(time.Duration(j) * time.Minute), Market: id, Ratio: 1.5})
		}
	}
	return db, base
}

// BenchmarkQuerySummary measures the per-region summary over 1000 markets
// with the response cache off: the engine reads the O(regions) rollup
// entries, never touching a market shard.
func BenchmarkQuerySummary(b *testing.B) {
	db, base := benchWideStore(1000)
	engine := query.NewEngine(db, market.New())
	engine.SetCaching(false)
	now := base.Add(24 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := engine.Summary(now); len(rows) == 0 {
			b.Fatal("empty summary")
		}
	}
}

// BenchmarkQuerySummaryCached is the same query with caching on and a
// fixed clock: after the first fold every repeat is a generation load
// plus a map hit.
func BenchmarkQuerySummaryCached(b *testing.B) {
	db, base := benchWideStore(1000)
	engine := query.NewEngine(db, market.New())
	now := base.Add(24 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := engine.Summary(now); len(rows) == 0 {
			b.Fatal("empty summary")
		}
	}
}

// BenchmarkStoreAggregates measures the per-market aggregate walk the
// summary used before the rollup layer — still the right call when the
// caller needs every market's row, and the baseline the rollup read is
// compared against.
func BenchmarkStoreAggregates(b *testing.B) {
	db, base := benchWideStore(1000)
	now := base.Add(24 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := db.Aggregates(now); len(rows) != 1000 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkStoreRegionAggregates reads the region-level rollups directly:
// the O(regions) path BenchmarkStoreAggregates is compared against.
func BenchmarkStoreRegionAggregates(b *testing.B) {
	db, base := benchWideStore(1000)
	now := base.Add(24 * time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := db.RegionAggregates(now); len(rows) != 4 {
			b.Fatalf("got %d regions", len(rows))
		}
	}
}

// BenchmarkScopeGenerationWalk vs BenchmarkGenerationOfScope: the same
// cache-validity question answered by the per-shard walk and by the
// rollup counter.
func BenchmarkScopeGenerationWalk(b *testing.B) {
	db, _ := benchWideStore(1000)
	keep := func(id market.SpotID) bool { return id.Region() == "us-east-1" }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if db.ScopeGeneration(keep) == 0 {
			b.Fatal("zero generation")
		}
	}
}

func BenchmarkGenerationOfScope(b *testing.B) {
	db, _ := benchWideStore(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if db.GenerationOfScope("us-east-1", "") == 0 {
			b.Fatal("zero generation")
		}
	}
}

// Windowed-read benchmarks --------------------------------------------
//
// The columnar shard layout exists so windowed folds are linear scans
// over per-field slices. PriceStatsIn and SpikesInWindowAppend (with a
// warm buffer) are the allocation-free contracts: 0 allocs/op each.

// BenchmarkPriceStatsIn folds min/mean/max over a 5000-price window
// in-shard: a binary search plus a linear pass over the price column,
// allocating nothing.
func BenchmarkPriceStatsIn(b *testing.B) {
	db := store.New()
	id := benchMarkets(1)[0]
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	ps := make([]store.PricePoint, 0, 5000)
	for i := 0; i < 5000; i++ {
		ps = append(ps, store.PricePoint{At: base.Add(time.Duration(i) * time.Minute), Price: 0.05 + float64(i%40)/1000})
	}
	db.RecordPrices(id, ps)
	from, to := base.Add(time.Hour), base.Add(72*time.Hour)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := db.PriceStatsIn(id, from, to); st.Samples == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkSpikesInWindow scans the spike windows of 1000 markets through
// SpikesInWindowAppend with a reused buffer: once the buffer's capacity
// is warm, the steady state allocates nothing.
func BenchmarkSpikesInWindow(b *testing.B) {
	db, base := benchWideStore(1000)
	from, to := base, base.Add(24*time.Hour)
	buf := db.SpikesInWindow(from, to, nil) // warm the reuse buffer
	if len(buf) == 0 {
		b.Fatal("empty window")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = db.SpikesInWindowAppend(buf[:0], from, to, nil)
		if len(buf) == 0 {
			b.Fatal("empty window")
		}
	}
}

// BenchmarkEventsSince is the watch-resume replay path: rebuilding the
// event stream of the last day from the shards' windowed indexes. One
// slice per (shard, family) window plus the output — not zero-alloc, but
// no longer one whole-store record materialization per call.
func BenchmarkEventsSince(b *testing.B) {
	db, base := benchWideStore(1000)
	since := base.Add(8 * time.Minute) // second half of each market's history
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if evs := db.EventsSince(since, store.EventFilter{}); len(evs) == 0 {
			b.Fatal("no events")
		}
	}
}

// BenchmarkStoreAppendMonitorTick is the monitor-shaped ingest workload:
// concurrent region scanners each buffer a tick's worth of records (~9
// probes, the spike/cross/related/recheck fan-out of one detection) per
// market and flush them through Appender.AppendProbes — the internal/core
// per-tick batching path.
func BenchmarkStoreAppendMonitorTick(b *testing.B) {
	const tickBatch = 9
	db := store.New()
	mkts := benchMarkets(256)
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(next.Add(1)) - 1
		apps := make(map[int]*store.Appender)
		batch := make([]store.ProbeRecord, 0, tickBatch)
		i := 0
		for pb.Next() {
			mi := (g*31 + i/tickBatch) % len(mkts)
			app := apps[mi]
			if app == nil {
				app = db.Appender(mkts[mi])
				apps[mi] = app
			}
			batch = append(batch, store.ProbeRecord{
				At: base.Add(time.Duration(i) * time.Second), Market: mkts[mi],
				Kind: store.ProbeOnDemand, Trigger: store.TriggerSpike,
				Rejected: i%8 == 0, Cost: 0.1,
			})
			if len(batch) == tickBatch {
				app.AppendProbes(batch)
				batch = batch[:0]
			}
			i++
		}
		if len(batch) > 0 {
			// Flush the tail to whichever market the batch was filling.
			apps[(g*31+i/tickBatch)%len(mkts)].AppendProbes(batch)
		}
	})
	b.ReportMetric(tickBatch, "tick_batch")
}

// BenchmarkStoreAppendProbesBatchParallelBlockedWatcher is the
// acceptance benchmark of the change feed's overflow contract: the same
// concurrent batched ingest as BenchmarkStoreAppendProbesBatchParallel,
// but with a deliberately blocked subscriber attached (tiny buffer,
// never drained). The feed must mark it lagged and keep appending at
// full speed — the numbers should sit within noise of the
// no-subscriber baseline.
func BenchmarkStoreAppendProbesBatchParallelBlockedWatcher(b *testing.B) {
	const batchSize = 64
	db := store.New()
	blocked := db.Feed().Subscribe(store.SubscribeOptions{Buffer: 2})
	defer blocked.Close()
	mkts := benchMarkets(8)
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := int(next.Add(1)) - 1
		app := db.Appender(mkts[g%len(mkts)])
		batch := make([]store.ProbeRecord, 0, batchSize)
		i := 0
		for pb.Next() {
			batch = append(batch, store.ProbeRecord{
				At:     base.Add(time.Duration(i) * time.Second),
				Market: app.Market(), Kind: store.ProbeOnDemand,
				Trigger: store.TriggerSpike, Rejected: i%8 == 0, Cost: 0.1,
			})
			if len(batch) == batchSize {
				app.AppendProbes(batch)
				batch = batch[:0]
			}
			i++
		}
		app.AppendProbes(batch)
	})
	b.ReportMetric(batchSize, "batch_size")
}

// BenchmarkFeedPublish measures the change feed's publish round with one
// healthy (drained) subscriber: event construction, ring insertion, and
// one buffered-channel fan-out, per 64-record batch.
func BenchmarkFeedPublish(b *testing.B) {
	const batchSize = 64
	db := store.New()
	sub := db.Feed().Subscribe(store.SubscribeOptions{Buffer: 8192})
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range sub.Events() {
		}
	}()
	app := db.Appender(benchMarkets(1)[0])
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	batch := make([]store.ProbeRecord, batchSize)
	for i := range batch {
		batch[i] = store.ProbeRecord{
			At: base, Market: app.Market(), Kind: store.ProbeOnDemand,
			Trigger: store.TriggerSpike, Cost: 0.1,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.AppendProbes(batch)
	}
	b.StopTimer()
	sub.Close()
	<-done
	b.ReportMetric(batchSize, "batch_size")
}

// Observability benchmarks ---------------------------------------------
//
// BenchmarkObsOverhead is the acceptance pair for internal/obs: each
// instrumented hot path runs against its uninstrumented twin (nil
// registry — every obs method no-ops on nil), and the two must stay
// within noise of each other. "append" is the batched store ingest path
// (counters and a WAL-shaped histogram per batch); "summary" is a full
// cached HTTP round trip through the API handler (middleware, stage
// trace, response cache hit).
func BenchmarkObsOverhead(b *testing.B) {
	registries := []struct {
		name string
		reg  func() *obs.Registry
	}{
		{"off", func() *obs.Registry { return nil }},
		{"on", obs.NewRegistry},
	}
	for _, v := range registries {
		b.Run("append/metrics="+v.name, func(b *testing.B) {
			const batchSize = 64
			db := store.New()
			db.EnableMetrics(v.reg())
			app := db.Appender(benchMarkets(1)[0])
			base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
			batch := make([]store.ProbeRecord, batchSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batchSize {
				for j := range batch {
					batch[j] = store.ProbeRecord{
						At:     base.Add(time.Duration(i+j) * time.Second),
						Market: app.Market(), Kind: store.ProbeOnDemand,
						Trigger: store.TriggerSpike, Rejected: (i+j)%8 == 0, Cost: 0.1,
					}
				}
				app.AppendProbes(batch)
			}
		})
	}
	for _, v := range registries {
		b.Run("summary/metrics="+v.name, func(b *testing.B) {
			db, base := benchWideStore(100)
			a := query.NewAPI(query.NewEngine(db, market.New()), func() time.Time { return base.Add(24 * time.Hour) })
			defer a.Shutdown()
			a.EnableMetrics(v.reg())
			h := a.Handler()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/summary", nil))
				if rec.Code != http.StatusOK {
					b.Fatalf("summary status = %d", rec.Code)
				}
			}
		})
	}
}

// BenchmarkFeedFanout measures one append batch fanning out to 1, 64,
// and 512 concurrently draining subscribers with mixed scope filters —
// the "one append, N watchers" shape the ROADMAP's push fan-out calls
// for.
func BenchmarkFeedFanout(b *testing.B) {
	for _, subs := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			const batchSize = 64
			db := store.New()
			app := db.Appender(benchMarkets(1)[0])
			var wg sync.WaitGroup
			// Registered before the per-subscription Close defers so it
			// runs after them: drainers exit once their channels close.
			defer wg.Wait()
			for i := 0; i < subs; i++ {
				filter := store.EventFilter{}
				if i%2 == 1 {
					filter.Region = "us-east-1"
				}
				sub := db.Feed().Subscribe(store.SubscribeOptions{Filter: filter, Buffer: 8192})
				defer sub.Close()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for range sub.Events() {
					}
				}()
			}
			base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
			batch := make([]store.ProbeRecord, batchSize)
			for i := range batch {
				batch[i] = store.ProbeRecord{
					At: base, Market: app.Market(), Kind: store.ProbeOnDemand,
					Trigger: store.TriggerSpike, Cost: 0.1,
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				app.AppendProbes(batch)
			}
			b.StopTimer()
			b.ReportMetric(float64(subs)*batchSize, "deliveries/op")
		})
	}
}
