module spotlight

go 1.22
