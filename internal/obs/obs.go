// Package obs is SpotLight's zero-dependency observability kit: an
// atomic metrics registry (counters, gauges, fixed-bucket latency
// histograms, labeled families) with Prometheus text and JSON
// exposition, a shared slog setup, and an optional pprof debug server.
//
// Two properties shape the design:
//
//   - Disabled must be free. Every metric type is nil-receiver safe: a
//     nil *Counter's Add is a no-op that inlines to one predictable
//     branch, so hot paths hold metric pointers unconditionally and a
//     store or API that never called EnableMetrics pays (measurably)
//     nothing. BenchmarkObsOverhead in the repo root pins this.
//   - Scrapes must not touch hot paths. Values that some subsystem
//     already counts (feed stats, replica status, cache hits, breaker
//     state) are exposed as CounterFunc/GaugeFunc collectors evaluated
//     at scrape time, never as extra work per request or per append.
//
// Registries are per node, not per process: the spotload smoke boots a
// leader, a follower, and a gateway in one process and each serves its
// own /metrics.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter is a no-op, which is how disabled
// instrumentation stays free on hot paths.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-receiver safe like
// Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement). No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Default histogram bucket bounds. Both sets are upper bounds in
// duration form; exposition converts to seconds.
var (
	// DefBuckets covers request latencies: 100µs to 10s.
	DefBuckets = []time.Duration{
		100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
	}
	// IOBuckets covers storage-layer latencies (WAL flushes land in the
	// tens of microseconds): 10µs to 1s.
	IOBuckets = []time.Duration{
		10 * time.Microsecond, 25 * time.Microsecond, 50 * time.Microsecond,
		100 * time.Microsecond, 250 * time.Microsecond, 500 * time.Microsecond,
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second,
	}
)

// Histogram is a fixed-bucket latency histogram: atomic bucket counts
// over duration upper bounds, plus a running count and sum. Quantiles
// are estimated by linear interpolation inside the winning bucket —
// exact enough for p50/p90/p99 dashboards without storing samples.
// Nil-receiver safe like Counter.
type Histogram struct {
	bounds  []int64 // upper bounds in nanoseconds, ascending
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	h := &Histogram{
		bounds:  make([]int64, len(bounds)),
		buckets: make([]atomic.Uint64, len(bounds)+1), // +1: the +Inf bucket
	}
	for i, b := range bounds {
		h.bounds[i] = int64(b)
	}
	return h
}

// Observe records one duration. No-op on a nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	i := 0
	for i < len(h.bounds) && ns > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile estimates the q-th quantile (q in [0,1]) in seconds by
// linear interpolation inside the bucket holding that rank. An
// observation beyond the last bound reports the last bound (the
// histogram cannot see past its buckets). Returns 0 with no
// observations or on a nil receiver.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			cum += n
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				// +Inf bucket: the best available answer is the last bound.
				return float64(h.bounds[len(h.bounds)-1]) / 1e9
			}
			lo := 0.0
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			hi := float64(h.bounds[i])
			frac := (rank - cum) / n
			return (lo + frac*(hi-lo)) / 1e9
		}
		cum += n
	}
	return float64(h.bounds[len(h.bounds)-1]) / 1e9
}

// Metric kinds, also the exposition "# TYPE" strings.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// child is one (label set) member of a family: exactly one of c/g/h/fn
// is set, matching the family's kind (fn backs CounterFunc and
// GaugeFunc collectors, evaluated at scrape time).
type child struct {
	key    string   // rendered label string `k1="v1",k2="v2"`, "" unlabeled
	labels []string // alternating key, value pairs
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is one metric name: its type, help text, and children keyed by
// rendered label set.
type family struct {
	name, help, typ string
	bounds          []time.Duration // histogram families only

	mu       sync.Mutex
	children []*child
	byLabel  map[string]*child
}

// renderLabels builds the canonical exposition label string from
// alternating key/value pairs.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// child returns (creating if needed) the member for the label pairs.
func (f *family) child(pairs []string) *child {
	key := renderLabels(pairs)
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := f.byLabel[key]
	if ch == nil {
		ch = &child{key: key, labels: append([]string(nil), pairs...)}
		switch f.typ {
		case typeCounter:
			ch.c = &Counter{}
		case typeGauge:
			ch.g = &Gauge{}
		case typeHistogram:
			ch.h = newHistogram(f.bounds)
		}
		f.byLabel[key] = ch
		f.children = append(f.children, ch)
	}
	return ch
}

// snapshotChildren copies the child list sorted by label key, so
// exposition is deterministic regardless of registration order.
func (f *family) snapshotChildren() []*child {
	f.mu.Lock()
	out := append([]*child(nil), f.children...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// Registry holds one node's metric families in registration order. All
// methods are safe for concurrent use, and all lookup methods are
// get-or-create: asking for the same name and label set twice returns
// the same metric, so independent subsystems can share a family. A nil
// *Registry returns nil metrics from every constructor — the no-op
// registry the overhead benchmark compares against.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor returns (creating if needed) the named family. The first
// registration fixes help, type, and buckets; later calls reuse them.
func (r *Registry) familyFor(name, help, typ string, bounds []time.Duration) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, byLabel: make(map[string]*child)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	return f
}

// Counter returns the counter for name and the alternating key/value
// label pairs, registering both on first use. Nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.familyFor(name, help, typeCounter, nil).child(labels).c
}

// Gauge returns the gauge for name and labels. Nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.familyFor(name, help, typeGauge, nil).child(labels).g
}

// Histogram returns the DefBuckets histogram for name and labels. Nil
// on a nil registry.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.HistogramBuckets(name, help, DefBuckets, labels...)
}

// HistogramBuckets is Histogram with explicit bucket bounds (the first
// registration of a name fixes them).
func (r *Registry) HistogramBuckets(name, help string, bounds []time.Duration, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.familyFor(name, help, typeHistogram, bounds).child(labels).h
}

// CounterFunc registers a collector whose monotone value is read by fn
// at scrape time — for totals some subsystem already counts, so scraping
// them costs the hot path nothing. Re-registering the same name and
// labels replaces the function. No-op on a nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.familyFor(name, help, typeCounter, nil).child(labels).fn = fn
}

// GaugeFunc is CounterFunc for instantaneous values.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.familyFor(name, help, typeGauge, nil).child(labels).fn = fn
}

// snapshotFamilies copies the family list in registration order.
func (r *Registry) snapshotFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.families...)
}
