package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, children sorted by
// label set, histograms as cumulative _bucket/_sum/_count series with
// `le` bounds in seconds. No-op on a nil registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, ch := range f.snapshotChildren() {
			switch {
			case ch.h != nil:
				writePromHistogram(bw, f.name, ch)
			case ch.fn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(ch.key), formatFloat(ch.fn()))
			case ch.c != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, braced(ch.key), ch.c.Value())
			case ch.g != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, braced(ch.key), ch.g.Value())
			}
		}
	}
	return bw.Flush()
}

func braced(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

// joinLabels appends extra to an existing rendered label string.
func joinLabels(key, extra string) string {
	if key == "" {
		return extra
	}
	return key + "," + extra
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writePromHistogram(w io.Writer, name string, ch *child) {
	h := ch.h
	cum := uint64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(float64(h.bounds[i]) / 1e9)
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, joinLabels(ch.key, `le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, braced(ch.key), formatFloat(float64(h.sum.Load())/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, braced(ch.key), h.count.Load())
}

// FamilySnapshot is one metric family in the JSON exposition
// (GET /v2/metrics): every value carries its labels, and histograms
// carry server-side p50/p90/p99 estimates so scrapers (spotload's
// report fold) don't re-implement bucket math.
type FamilySnapshot struct {
	Name   string          `json:"name"`
	Type   string          `json:"type"`
	Help   string          `json:"help,omitempty"`
	Values []ValueSnapshot `json:"values"`
}

// ValueSnapshot is one labeled value within a family.
type ValueSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Count  uint64            `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	P50    float64           `json:"p50,omitempty"`
	P90    float64           `json:"p90,omitempty"`
	P99    float64           `json:"p99,omitempty"`
}

// Snapshot captures every family for the JSON exposition. Nil registry
// yields nil.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.snapshotFamilies()
	if fams == nil {
		return nil
	}
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.typ, Help: f.help}
		for _, ch := range f.snapshotChildren() {
			v := ValueSnapshot{Labels: labelMap(ch.labels)}
			switch {
			case ch.h != nil:
				v.Count = ch.h.Count()
				v.Sum = float64(ch.h.sum.Load()) / 1e9
				v.P50 = ch.h.Quantile(0.50)
				v.P90 = ch.h.Quantile(0.90)
				v.P99 = ch.h.Quantile(0.99)
				v.Value = float64(v.Count)
			case ch.fn != nil:
				v.Value = ch.fn()
			case ch.c != nil:
				v.Value = float64(ch.c.Value())
			case ch.g != nil:
				v.Value = float64(ch.g.Value())
			}
			fs.Values = append(fs.Values, v)
		}
		out = append(out, fs)
	}
	return out
}

func labelMap(pairs []string) map[string]string {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[string]string, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		m[pairs[i]] = pairs[i+1]
	}
	return m
}

// TextHandler serves the registry as Prometheus text (GET /metrics).
func (r *Registry) TextHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves the registry snapshot as JSON (GET /v2/metrics).
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		snap := r.Snapshot()
		if snap == nil {
			snap = []FamilySnapshot{}
		}
		_ = enc.Encode(snap)
	})
}
