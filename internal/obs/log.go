package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the shared structured logger for a daemon: format is
// "text" (default) or "json", and component is attached to every line
// so multi-node logs (the spotload smoke runs three nodes in one
// process) stay attributable.
func NewLogger(w io.Writer, format, component string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
	return slog.New(h).With("component", component), nil
}
