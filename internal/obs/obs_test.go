package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil metrics")
	}
	// None of these may panic.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(time.Millisecond)
	r.CounterFunc("f", "", func() float64 { return 1 })
	r.GaugeFunc("f", "", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("nil metrics must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot must be nil")
	}
}

func TestCounterGaugeGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "requests", "route", "/v1/summary")
	b := r.Counter("reqs_total", "requests", "route", "/v1/summary")
	if a != b {
		t.Fatalf("same name+labels must return the same counter")
	}
	other := r.Counter("reqs_total", "requests", "route", "/v1/stable")
	if a == other {
		t.Fatalf("distinct label sets must be distinct children")
	}
	a.Add(2)
	a.Inc()
	if got := b.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	g := r.Gauge("inflight", "")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency")
	// 100 observations at ~2ms: p50 and p99 must land inside the
	// (1ms, 2.5ms] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	for _, q := range []float64{0.50, 0.99} {
		got := h.Quantile(q)
		if got <= 0.001 || got > 0.0025 {
			t.Fatalf("Quantile(%v) = %v, want within (0.001, 0.0025]", q, got)
		}
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	// An observation beyond every bound reports the last bound.
	h2 := r.Histogram("lat2_seconds", "")
	h2.Observe(time.Hour)
	if got := h2.Quantile(0.5); math.Abs(got-10.0) > 1e-9 {
		t.Fatalf("overflow quantile = %v, want 10s (last bound)", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("spot_requests_total", "Requests served.", "route", "/v1/summary", "status", "200").Add(4)
	r.Gauge("spot_in_flight", "In flight.").Set(2)
	r.Histogram("spot_latency_seconds", "Latency.", "route", "/v1/summary").Observe(2 * time.Millisecond)
	r.GaugeFunc("spot_generation", "Store generation.", func() float64 { return 42 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP spot_requests_total Requests served.",
		"# TYPE spot_requests_total counter",
		`spot_requests_total{route="/v1/summary",status="200"} 4`,
		"# TYPE spot_in_flight gauge",
		"spot_in_flight 2",
		"# TYPE spot_latency_seconds histogram",
		`spot_latency_seconds_bucket{route="/v1/summary",le="0.0025"} 1`,
		`spot_latency_seconds_bucket{route="/v1/summary",le="+Inf"} 1`,
		`spot_latency_seconds_count{route="/v1/summary"} 1`,
		"spot_generation 42",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Buckets are cumulative: the 100µs bucket must read 0, not be absent.
	if !strings.Contains(out, `le="0.0001"} 0`) {
		t.Fatalf("expected cumulative zero bucket in:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", "node", `a"b\c`).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `node="a\"b\\c"`) {
		t.Fatalf("label not escaped: %s", sb.String())
	}
}

func TestJSONSnapshotAndHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("spot_reqs_total", "", "route", "/x").Add(9)
	h := r.Histogram("spot_lat_seconds", "")
	for i := 0; i < 10; i++ {
		h.Observe(5 * time.Millisecond)
	}
	r.CounterFunc("spot_hits_total", "", func() float64 { return 11 })

	rr := httptest.NewRecorder()
	r.JSONHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/v2/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var fams []FamilySnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &fams); err != nil {
		t.Fatalf("decode: %v", err)
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["spot_reqs_total"]; len(f.Values) != 1 || f.Values[0].Value != 9 || f.Values[0].Labels["route"] != "/x" {
		t.Fatalf("counter snapshot wrong: %+v", f)
	}
	if f := byName["spot_lat_seconds"]; len(f.Values) != 1 || f.Values[0].Count != 10 || f.Values[0].P99 <= 0 {
		t.Fatalf("histogram snapshot wrong: %+v", f)
	}
	if f := byName["spot_hits_total"]; len(f.Values) != 1 || f.Values[0].Value != 11 {
		t.Fatalf("func snapshot wrong: %+v", f)
	}

	rr = httptest.NewRecorder()
	r.TextHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.HasPrefix(rr.Header().Get("Content-Type"), "text/plain") {
		t.Fatalf("text content type = %q", rr.Header().Get("Content-Type"))
	}
	if !strings.Contains(rr.Body.String(), "spot_reqs_total") {
		t.Fatalf("text exposition empty: %s", rr.Body.String())
	}
}

func TestInstrumentMiddleware(t *testing.T) {
	r := NewRegistry()
	h := Instrument(r, "/v1/summary", statusHandler(200))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/summary", nil))
	h304 := Instrument(r, "/v1/summary", statusHandler(304))
	h304.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/summary", nil))

	if got := r.Counter(httpRequestsName, "", "route", "/v1/summary", "status", "200").Value(); got != 1 {
		t.Fatalf("200 count = %d, want 1", got)
	}
	if got := r.Counter(httpRequestsName, "", "route", "/v1/summary", "status", "304").Value(); got != 1 {
		t.Fatalf("304 count = %d, want 1", got)
	}
	if got := r.Counter(httpNotModifiedName, "", "route", "/v1/summary").Value(); got != 1 {
		t.Fatalf("not-modified count = %d, want 1", got)
	}
	if got := r.Histogram(httpLatencyName, "", "route", "/v1/summary").Count(); got != 2 {
		t.Fatalf("latency observations = %d, want 2", got)
	}
	if got := r.Gauge(httpInFlightName, "").Value(); got != 0 {
		t.Fatalf("in-flight settled at %d, want 0", got)
	}
}

func statusHandler(status int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(status)
	})
}
