package obs

import (
	"net/http"
	"strconv"
	"time"
)

// Shared HTTP family names: the query API and the gateway register into
// the same families so dashboards see one shape everywhere.
const (
	httpRequestsName    = "spotlight_http_requests_total"
	httpRequestsHelp    = "HTTP requests served, by route and status code."
	httpLatencyName     = "spotlight_http_request_seconds"
	httpLatencyHelp     = "HTTP request latency by route."
	httpInFlightName    = "spotlight_http_in_flight"
	httpInFlightHelp    = "HTTP requests currently being served."
	httpNotModifiedName = "spotlight_http_not_modified_total"
	httpNotModifiedHelp = "Conditional requests answered 304 Not Modified, by route."
)

// statusRecorder captures the response status for the request counter.
// It passes Flush through so instrumented SSE streams (/v2/watch) keep
// flushing frames mid-response.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Instrument wraps next with per-route HTTP metrics: request totals by
// status, a latency histogram, the shared in-flight gauge, and a 304
// counter (the cache-efficiency numerator). The route label is fixed at
// registration so per-request work is two atomic adds, one histogram
// observe, and one status-child lookup. With a nil registry it returns
// next untouched.
func Instrument(reg *Registry, route string, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	inFlight := reg.Gauge(httpInFlightName, httpInFlightHelp)
	latency := reg.Histogram(httpLatencyName, httpLatencyHelp, "route", route)
	notModified := reg.Counter(httpNotModifiedName, httpNotModifiedHelp, "route", route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		inFlight.Add(-1)
		latency.Observe(time.Since(start))
		if rec.status == http.StatusNotModified {
			notModified.Inc()
		}
		reg.Counter(httpRequestsName, httpRequestsHelp,
			"route", route, "status", strconv.Itoa(rec.status)).Inc()
	})
}
