package obs

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeDebug starts the optional profiling listener behind -debug-addr:
// net/http/pprof on its own mux (never the service mux, so profiling
// endpoints can't leak onto the public port). Returns the bound address
// and a stop function. Pass a registry to also serve /metrics there.
func ServeDebug(addr string, reg *Registry) (boundAddr string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.TextHandler())
		mux.Handle("/v2/metrics", reg.JSONHandler())
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	stop = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}
	return ln.Addr().String(), stop, nil
}
