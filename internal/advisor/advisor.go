// Package advisor is the decision layer over the SpotLight store: given
// workload constraints (capacity floors, price and interruption ceilings,
// a region/product set) it ranks the spot markets the service has price
// history for by a composite score over the store's own rollup
// observations — price statistics, spike/crossing rates, revocation
// history, and live outage state.
//
// The observational queries answer "what is the market doing"; Advise
// answers "what should I run". It backs both the POST /v2/advise endpoint
// (internal/query) and the fleet manager's placement decisions
// (internal/fleet).
package advisor

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

// DefaultN is the ranking bound when the constraints do not set one.
const DefaultN = 10

// MaxN caps the ranking bound a single request may ask for.
const MaxN = 100

// BadConstraintError rejects a constraint set: Param names the offending
// field in its wire spelling, Msg says why. The query layer maps it to a
// 400 bad_param envelope.
type BadConstraintError struct {
	Param string
	Msg   string
}

func (e *BadConstraintError) Error() string {
	return fmt.Sprintf("advisor: bad constraint %s: %s", e.Param, e.Msg)
}

// Constraints is the validated, catalog-typed form of
// api.AdviseConstraints. Build one with Advisor.Normalize.
type Constraints struct {
	// Regions is the restriction set, empty for all regions, sorted and
	// deduplicated by Normalize.
	Regions []market.Region
	// Products is the restriction set, empty for all platforms, sorted and
	// deduplicated by Normalize.
	Products []market.Product
	// TypePattern is an exact instance type, a glob ("c3.*"), or empty.
	TypePattern string
	// MinVCPU and MinMemoryGB are per-instance capacity floors; zero means
	// no floor.
	MinVCPU     int
	MinMemoryGB float64
	// MaxPrice caps the window's mean spot price; zero means no cap.
	MaxPrice float64
	// MaxInterruption caps the estimated 1-hour revocation probability in
	// [0,1]; zero means no cap.
	MaxInterruption float64
	// N bounds the ranking, in [1, MaxN].
	N int
}

// Advisor ranks spot markets against workload constraints. Safe for
// concurrent use; results are memoized per (constraints, window) keyed by
// the store generation of the constraint scope, so a cached answer stays
// valid exactly until an append lands inside the regions it read.
type Advisor struct {
	db  *store.Store
	cat *market.Catalog

	mu      sync.Mutex
	entries map[string]advEntry

	// memoHits/memoMisses count Advise calls answered from the memo vs
	// ranked fresh — already-atomic, so the metrics layer exposes them as
	// scrape-time collectors with zero extra cost per Advise.
	memoHits   atomic.Uint64
	memoMisses atomic.Uint64
}

type advEntry struct {
	gen uint64
	val []api.AdviseCandidate
}

// cacheMax bounds the memo map; on overflow it resets wholesale, matching
// the query-layer resultCache policy.
const cacheMax = 256

// New builds an Advisor over the store and catalog.
func New(db *store.Store, cat *market.Catalog) *Advisor {
	return &Advisor{db: db, cat: cat, entries: make(map[string]advEntry)}
}

// MemoStats returns how many Advise calls hit the generation-keyed memo
// versus ranked fresh. Hits+misses is the total rankings served.
func (a *Advisor) MemoStats() (hits, misses uint64) {
	return a.memoHits.Load(), a.memoMisses.Load()
}

// Normalize validates wire constraints against the catalog and converts
// them to the typed form. Unknown regions, unknown products, malformed
// type patterns, and out-of-range numeric fields return a
// *BadConstraintError; an empty region list or a single "all" entry means
// every region.
func (a *Advisor) Normalize(c api.AdviseConstraints) (Constraints, error) {
	var out Constraints

	if !(len(c.Regions) == 1 && c.Regions[0] == "all") {
		seen := make(map[market.Region]bool, len(c.Regions))
		for _, r := range c.Regions {
			reg := market.Region(r)
			if !a.cat.HasRegion(reg) {
				return out, &BadConstraintError{Param: "regions", Msg: fmt.Sprintf("unknown region %q", r)}
			}
			if !seen[reg] {
				seen[reg] = true
				out.Regions = append(out.Regions, reg)
			}
		}
		sort.Slice(out.Regions, func(i, j int) bool { return out.Regions[i] < out.Regions[j] })
	}

	if len(c.Products) > 0 {
		seen := make(map[market.Product]bool, len(c.Products))
		for _, p := range c.Products {
			prod := market.Product(p)
			known := false
			for _, have := range market.Products {
				if prod == have {
					known = true
					break
				}
			}
			if !known {
				return out, &BadConstraintError{Param: "products", Msg: fmt.Sprintf("unknown product %q", p)}
			}
			if !seen[prod] {
				seen[prod] = true
				out.Products = append(out.Products, prod)
			}
		}
		sort.Slice(out.Products, func(i, j int) bool { return out.Products[i] < out.Products[j] })
	}

	out.TypePattern = c.InstanceTypes
	if strings.ContainsAny(c.InstanceTypes, "*?[") {
		if _, err := path.Match(c.InstanceTypes, "probe"); err != nil {
			return out, &BadConstraintError{Param: "instanceTypes", Msg: fmt.Sprintf("malformed pattern %q", c.InstanceTypes)}
		}
	}

	if c.MinVCPU < 0 {
		return out, &BadConstraintError{Param: "minVCPU", Msg: "must be >= 0"}
	}
	if c.MinMemoryGB < 0 {
		return out, &BadConstraintError{Param: "minMemoryGB", Msg: "must be >= 0"}
	}
	if c.MaxPricePerHour < 0 {
		return out, &BadConstraintError{Param: "maxPricePerHour", Msg: "must be >= 0"}
	}
	if c.MaxInterruptionRate < 0 || c.MaxInterruptionRate > 1 {
		return out, &BadConstraintError{Param: "maxInterruptionRate", Msg: "must be in [0, 1]"}
	}
	if c.N < 0 || c.N > MaxN {
		return out, &BadConstraintError{Param: "n", Msg: fmt.Sprintf("must be in [0, %d]", MaxN)}
	}
	out.MinVCPU = c.MinVCPU
	out.MinMemoryGB = c.MinMemoryGB
	out.MaxPrice = c.MaxPricePerHour
	out.MaxInterruption = c.MaxInterruptionRate
	out.N = c.N
	if out.N == 0 {
		out.N = DefaultN
	}
	return out, nil
}

// ScopeGen returns the store generation of the shards an Advise call with
// these constraints can read: the sum of the per-region scope generations
// when the region set is restricted (each is an append count, so the sum
// moves on any append in scope), the global generation otherwise. It is
// the cache-validity token for both the memo below and the HTTP ETag.
func (a *Advisor) ScopeGen(c Constraints) uint64 {
	if len(c.Regions) == 0 {
		return a.db.GlobalGeneration()
	}
	var sum uint64
	for _, r := range c.Regions {
		sum += a.db.GenerationOfScope(r, "")
	}
	return sum
}

// Advise ranks the markets satisfying c by composite score over [from,
// to]. Only markets with at least one recorded price sample inside the
// window are candidates — the advisor recommends from its own evidence,
// never from catalog price sheets alone. An empty result is a valid
// answer. The returned slice is shared with the memo; callers must not
// mutate it.
func (a *Advisor) Advise(c Constraints, from, to time.Time) []api.AdviseCandidate {
	gen := a.ScopeGen(c) // read before compute: an append racing the fold keys the entry stale
	key := cacheKey(c, from, to)

	a.mu.Lock()
	if e, ok := a.entries[key]; ok && e.gen == gen {
		a.mu.Unlock()
		a.memoHits.Add(1)
		return e.val
	}
	a.mu.Unlock()
	a.memoMisses.Add(1)

	val := a.rank(c, from, to)

	a.mu.Lock()
	if len(a.entries) >= cacheMax {
		a.entries = make(map[string]advEntry)
	}
	a.entries[key] = advEntry{gen: gen, val: val}
	a.mu.Unlock()
	return val
}

func cacheKey(c Constraints, from, to time.Time) string {
	var b strings.Builder
	for _, r := range c.Regions {
		b.WriteString(string(r))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, p := range c.Products {
		b.WriteString(string(p))
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "|%s|%d|%g|%g|%g|%d|%d|%d",
		c.TypePattern, c.MinVCPU, c.MinMemoryGB, c.MaxPrice, c.MaxInterruption, c.N,
		from.UnixNano(), to.UnixNano())
	return b.String()
}

// Scoring weights: savings dominate (the reason to run spot at all), then
// observed availability, then price stability. A live outage at the
// window end halves the score — the market may still be the right answer
// later, but not for a placement right now.
const (
	weightSavings   = 0.45
	weightAvail     = 0.30
	weightStability = 0.25
	outagePenalty   = 0.5
)

func (a *Advisor) rank(c Constraints, from, to time.Time) []api.AdviseCandidate {
	window := to.Sub(from)
	if window <= 0 {
		return []api.AdviseCandidate{}
	}

	out := []api.AdviseCandidate{}
	for _, id := range a.db.PricedMarkets() {
		if !a.admissible(id, c) {
			continue
		}
		ps := a.db.PriceStatsIn(id, from, to)
		if ps.Samples == 0 {
			continue
		}
		od, err := a.cat.SpotODPrice(id)
		if err != nil || od <= 0 {
			continue
		}
		if c.MaxPrice > 0 && ps.Mean > c.MaxPrice {
			continue
		}

		cs := a.db.CrossingStatsFor(id, from, to)
		interruption := float64(cs.Crossings) * float64(time.Hour) / float64(window)
		if interruption > 1 {
			interruption = 1
		}
		if c.MaxInterruption > 0 && interruption > c.MaxInterruption {
			continue
		}

		spotUnav := float64(a.db.OutageOverlap(id, store.ProbeSpot, from, to)) / float64(window)
		if spotUnav > 1 {
			spotUnav = 1
		}
		live := a.db.OutageOverlap(id, store.ProbeSpot, to.Add(-time.Second), to) > 0 ||
			a.db.OutageOverlap(id, store.ProbeOnDemand, to.Add(-time.Second), to) > 0

		vcpu, _ := a.cat.VCPU(id.Type)
		mem, _ := a.cat.MemoryGB(id.Type)

		savings := 1 - ps.Mean/od
		sav01 := clamp01(savings)
		avail := clamp01(1 - spotUnav)
		stability := 1 / (1 + float64(cs.Crossings))
		score := 100 * (weightSavings*sav01 + weightAvail*avail + weightStability*stability)
		if live {
			score *= outagePenalty
		}

		out = append(out, api.AdviseCandidate{
			Market:             id.String(),
			VCPU:               vcpu,
			MemoryGB:           mem,
			OnDemandPrice:      od,
			SpotPriceMin:       ps.Min,
			SpotPriceMean:      ps.Mean,
			SpotPriceMax:       ps.Max,
			PriceSamples:       ps.Samples,
			SavingsPcnt:        savings * 100,
			Crossings:          cs.Crossings,
			InterruptionRate:   interruption,
			SpotUnavailability: spotUnav,
			Revocations:        len(a.db.RevocationsFor(id, from, to)),
			LiveOutage:         live,
			Score:              score,
		})
	}

	// Deterministic order: score descending, then fewest expected
	// interruptions, then market ID — identical statistics always rank in
	// market-ID order, so repeated evaluations (and every node of a
	// replicated fleet) agree byte-for-byte.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].InterruptionRate != out[j].InterruptionRate {
			return out[i].InterruptionRate < out[j].InterruptionRate
		}
		return out[i].Market < out[j].Market
	})
	if len(out) > c.N {
		out = out[:c.N]
	}
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}

// admissible applies the catalog-side filters: region set, product set,
// type pattern, and capacity floors.
func (a *Advisor) admissible(id market.SpotID, c Constraints) bool {
	if len(c.Regions) > 0 && !containsRegion(c.Regions, id.Region()) {
		return false
	}
	if len(c.Products) > 0 && !containsProduct(c.Products, id.Product) {
		return false
	}
	if !typeMatches(c.TypePattern, id.Type) {
		return false
	}
	if c.MinVCPU > 0 {
		v, err := a.cat.VCPU(id.Type)
		if err != nil || v < c.MinVCPU {
			return false
		}
	}
	if c.MinMemoryGB > 0 {
		m, err := a.cat.MemoryGB(id.Type)
		if err != nil || m < c.MinMemoryGB {
			return false
		}
	}
	return true
}

// typeMatches applies the instanceTypes filter: empty matches everything,
// a glob matches via path.Match, anything else is an exact type.
func typeMatches(pattern string, t market.InstanceType) bool {
	if pattern == "" {
		return true
	}
	if strings.ContainsAny(pattern, "*?[") {
		ok, err := path.Match(pattern, string(t))
		return err == nil && ok
	}
	return pattern == string(t)
}

func containsRegion(rs []market.Region, r market.Region) bool {
	for _, have := range rs {
		if have == r {
			return true
		}
	}
	return false
}

func containsProduct(ps []market.Product, p market.Product) bool {
	for _, have := range ps {
		if have == p {
			return true
		}
	}
	return false
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
