package advisor

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

var t0 = time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)

// Catalog facts the tests lean on: m3.large is 2 vCPUs at $0.133 OD,
// m3.xlarge 4 vCPUs at $0.266, c3.2xlarge 8 vCPUs at $0.420.
var (
	mktSmall = market.SpotID{Zone: "us-east-1a", Type: "m3.large", Product: market.ProductLinux}
	mktMid   = market.SpotID{Zone: "us-east-1b", Type: "m3.xlarge", Product: market.ProductLinux}
	mktBig   = market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	mktWest  = market.SpotID{Zone: "us-west-2a", Type: "c3.2xlarge", Product: market.ProductLinux}
)

func newAdvisor(t *testing.T) (*Advisor, *store.Store) {
	t.Helper()
	db := store.New()
	return New(db, market.New()), db
}

// recordFlat writes hourly price samples at a flat price across the test
// day, making the market a candidate with mean == price.
func recordFlat(db *store.Store, id market.SpotID, price float64) {
	for i := 0; i < 24; i++ {
		db.RecordPrice(id, store.PricePoint{At: t0.Add(time.Duration(i) * time.Hour), Price: price})
	}
}

func advise(t *testing.T, a *Advisor, c api.AdviseConstraints) []api.AdviseCandidate {
	t.Helper()
	cons, err := a.Normalize(c)
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", c, err)
	}
	return a.Advise(cons, t0, t0.Add(24*time.Hour))
}

func TestNormalizeDefaultsAndAll(t *testing.T) {
	a, _ := newAdvisor(t)
	c, err := a.Normalize(api.AdviseConstraints{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regions) != 0 || len(c.Products) != 0 || c.N != DefaultN {
		t.Errorf("zero constraints normalized to %+v, want unrestricted with N=%d", c, DefaultN)
	}
	c, err = a.Normalize(api.AdviseConstraints{Regions: []string{"all"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Regions) != 0 {
		t.Errorf(`regions ["all"] normalized to %v, want unrestricted`, c.Regions)
	}
	// Duplicates collapse and the set sorts, so equivalent spellings share
	// one memo entry.
	c, err = a.Normalize(api.AdviseConstraints{Regions: []string{"us-west-2", "us-east-1", "us-west-2"}})
	if err != nil {
		t.Fatal(err)
	}
	want := []market.Region{"us-east-1", "us-west-2"}
	if !reflect.DeepEqual(c.Regions, want) {
		t.Errorf("regions = %v, want %v", c.Regions, want)
	}
}

func TestNormalizeRejections(t *testing.T) {
	a, _ := newAdvisor(t)
	cases := []struct {
		name  string
		in    api.AdviseConstraints
		param string
	}{
		{"unknown region", api.AdviseConstraints{Regions: []string{"mars-north-1"}}, "regions"},
		{"unknown product", api.AdviseConstraints{Products: []string{"Plan9"}}, "products"},
		{"malformed glob", api.AdviseConstraints{InstanceTypes: "c3.["}, "instanceTypes"},
		{"negative vcpu", api.AdviseConstraints{MinVCPU: -1}, "minVCPU"},
		{"negative memory", api.AdviseConstraints{MinMemoryGB: -0.5}, "minMemoryGB"},
		{"negative price", api.AdviseConstraints{MaxPricePerHour: -1}, "maxPricePerHour"},
		{"interruption over 1", api.AdviseConstraints{MaxInterruptionRate: 1.5}, "maxInterruptionRate"},
		{"n over cap", api.AdviseConstraints{N: MaxN + 1}, "n"},
	}
	for _, tc := range cases {
		_, err := a.Normalize(tc.in)
		var bad *BadConstraintError
		if !errors.As(err, &bad) {
			t.Errorf("%s: err = %v, want *BadConstraintError", tc.name, err)
			continue
		}
		if bad.Param != tc.param {
			t.Errorf("%s: param = %q, want %q", tc.name, bad.Param, tc.param)
		}
	}
}

func TestAdviseRanksBySavingsAndIsDeterministic(t *testing.T) {
	a, db := newAdvisor(t)
	recordFlat(db, mktSmall, 0.02) // 85% off $0.133
	recordFlat(db, mktMid, 0.20)   // 25% off $0.266
	recordFlat(db, mktBig, 0.05)   // 88% off $0.420

	got := advise(t, a, api.AdviseConstraints{})
	if len(got) != 3 {
		t.Fatalf("candidates = %d, want 3", len(got))
	}
	wantOrder := []string{mktBig.String(), mktSmall.String(), mktMid.String()}
	for i, w := range wantOrder {
		if got[i].Market != w {
			t.Fatalf("rank %d = %s, want %s (full: %+v)", i+1, got[i].Market, w, got)
		}
		if got[i].Rank != i+1 {
			t.Errorf("rank field = %d, want %d", got[i].Rank, i+1)
		}
	}
	if got[0].VCPU != 8 || math.Abs(got[0].MemoryGB-15.0) > 1e-9 {
		t.Errorf("c3.2xlarge capacity = %d vCPU / %g GB, want 8 / 15", got[0].VCPU, got[0].MemoryGB)
	}
	if math.Abs(got[1].SpotPriceMean-0.02) > 1e-9 || math.Abs(got[1].OnDemandPrice-0.133) > 1e-9 {
		t.Errorf("m3.large prices = %+v", got[1])
	}

	// Same evidence, fresh advisor: byte-identical ranking.
	again := advise(t, New(db, market.New()), api.AdviseConstraints{})
	if !reflect.DeepEqual(got, again) {
		t.Errorf("re-ranking diverged:\n  first  %+v\n  second %+v", got, again)
	}
}

func TestAdviseTieBreaksOnMarketID(t *testing.T) {
	a, db := newAdvisor(t)
	// Two zones of the same type at the same price: identical statistics.
	east := market.SpotID{Zone: "us-east-1a", Type: "c3.2xlarge", Product: market.ProductLinux}
	recordFlat(db, east, 0.05)
	recordFlat(db, mktBig, 0.05) // us-east-1d
	got := advise(t, a, api.AdviseConstraints{})
	if len(got) != 2 || got[0].Market != east.String() || got[1].Market != mktBig.String() {
		t.Errorf("tie order = %+v, want market-ID ascending", got)
	}
}

func TestAdviseConstraintFiltering(t *testing.T) {
	a, db := newAdvisor(t)
	recordFlat(db, mktSmall, 0.02)
	recordFlat(db, mktMid, 0.03)
	recordFlat(db, mktBig, 0.30)
	recordFlat(db, mktWest, 0.05)

	// Capacity floor: 2-vCPU m3.large drops out.
	got := advise(t, a, api.AdviseConstraints{MinVCPU: 4})
	for _, c := range got {
		if c.Market == mktSmall.String() {
			t.Errorf("MinVCPU=4 kept 2-vCPU %s", c.Market)
		}
	}
	if len(got) != 3 {
		t.Errorf("MinVCPU=4 candidates = %d, want 3", len(got))
	}

	// Memory floor: the 7.5 GB m3.large drops out; the 15 GB m3.xlarge
	// and c3.2xlarge markets survive.
	got = advise(t, a, api.AdviseConstraints{MinMemoryGB: 10})
	if len(got) != 3 {
		t.Errorf("MinMemoryGB=10 candidates = %v, want 3", got)
	}
	for _, c := range got {
		if c.Market == mktSmall.String() {
			t.Errorf("MinMemoryGB=10 kept 7.5 GB %s", c.Market)
		}
	}

	// Price ceiling on the window mean.
	got = advise(t, a, api.AdviseConstraints{MaxPricePerHour: 0.04})
	if len(got) != 2 {
		t.Errorf("MaxPricePerHour=0.04 candidates = %v, want 2", got)
	}

	// Region restriction.
	got = advise(t, a, api.AdviseConstraints{Regions: []string{"us-west-2"}})
	if len(got) != 1 || got[0].Market != mktWest.String() {
		t.Errorf("us-west-2 candidates = %v, want only %s", got, mktWest)
	}

	// Type glob.
	got = advise(t, a, api.AdviseConstraints{InstanceTypes: "m3.*"})
	if len(got) != 2 {
		t.Errorf("m3.* candidates = %v, want 2", got)
	}

	// Impossible floor: a valid empty answer, not an error.
	got = advise(t, a, api.AdviseConstraints{MinVCPU: 1000})
	if len(got) != 0 {
		t.Errorf("impossible floor candidates = %v, want none", got)
	}

	// N truncates after ranking.
	got = advise(t, a, api.AdviseConstraints{N: 2})
	if len(got) != 2 || got[0].Rank != 1 || got[1].Rank != 2 {
		t.Errorf("N=2 candidates = %+v, want the renumbered top 2", got)
	}
}

func TestAdviseRequiresWindowEvidence(t *testing.T) {
	a, db := newAdvisor(t)
	// Priced only before the window: not a candidate inside it.
	db.RecordPrice(mktSmall, store.PricePoint{At: t0.Add(-time.Hour), Price: 0.02})
	if got := advise(t, a, api.AdviseConstraints{}); len(got) != 0 {
		t.Errorf("candidates without in-window samples = %v, want none", got)
	}
}

func TestAdviseInterruptionAndOutageSignals(t *testing.T) {
	a, db := newAdvisor(t)
	recordFlat(db, mktSmall, 0.02)
	recordFlat(db, mktMid, 0.02)
	// mktMid crosses the OD price 6 times in 24h: interruption 0.25/h.
	for i := 0; i < 6; i++ {
		db.AppendSpike(store.SpikeEvent{At: t0.Add(time.Duration(i)*time.Hour + 30*time.Minute), Market: mktMid, Ratio: 1.4})
	}
	got := advise(t, a, api.AdviseConstraints{})
	if len(got) != 2 || got[0].Market != mktSmall.String() {
		t.Fatalf("ranking = %+v, want the uncrossed market first", got)
	}
	if math.Abs(got[1].InterruptionRate-0.25) > 1e-9 || got[1].Crossings != 6 {
		t.Errorf("crossed market signals = %+v, want 6 crossings at 0.25/h", got[1])
	}

	// The interruption ceiling drops the spiky market entirely.
	got = advise(t, a, api.AdviseConstraints{MaxInterruptionRate: 0.1})
	if len(got) != 1 || got[0].Market != mktSmall.String() {
		t.Errorf("MaxInterruptionRate=0.1 candidates = %+v, want only the calm market", got)
	}

	// An outage open at the window end halves the score and flags the row.
	clean := got[0].Score
	db.AppendProbe(store.ProbeRecord{At: t0.Add(23 * time.Hour), Market: mktSmall, Kind: store.ProbeSpot, Rejected: true, Code: "x"})
	got = advise(t, a, api.AdviseConstraints{MaxInterruptionRate: 0.1})
	if len(got) != 1 || !got[0].LiveOutage {
		t.Fatalf("live-outage candidates = %+v, want the flagged market", got)
	}
	if got[0].Score >= clean {
		t.Errorf("live-outage score = %g, want below the clean %g", got[0].Score, clean)
	}
	if got[0].SpotUnavailability <= 0 {
		t.Errorf("SpotUnavailability = %g, want > 0 with an open outage", got[0].SpotUnavailability)
	}
}

func TestAdviseMemoTracksGeneration(t *testing.T) {
	a, db := newAdvisor(t)
	recordFlat(db, mktSmall, 0.02)
	cons, err := a.Normalize(api.AdviseConstraints{Regions: []string{"us-east-1"}})
	if err != nil {
		t.Fatal(err)
	}
	from, to := t0, t0.Add(24*time.Hour)
	first := a.Advise(cons, from, to)
	if len(first) != 1 {
		t.Fatalf("candidates = %d, want 1", len(first))
	}
	// Unchanged store: the memoized slice comes back as-is.
	if again := a.Advise(cons, from, to); &again[0] != &first[0] {
		t.Error("unchanged store did not serve the memoized ranking")
	}
	// An in-scope append invalidates; the recomputation sees the new sample.
	db.RecordPrice(mktSmall, store.PricePoint{At: t0.Add(90 * time.Minute), Price: 0.10})
	after := a.Advise(cons, from, to)
	if len(after) != 1 || after[0].PriceSamples != first[0].PriceSamples+1 {
		t.Errorf("post-append samples = %+v, want one more than %d", after, first[0].PriceSamples)
	}
	// An out-of-scope append leaves the region-scoped memo valid.
	tok := a.ScopeGen(cons)
	db.RecordPrice(mktWest, store.PricePoint{At: t0, Price: 0.05})
	if got := a.ScopeGen(cons); got != tok {
		t.Errorf("us-east-1 scope generation moved on a us-west-2 append: %d -> %d", tok, got)
	}
}
