package core

import "time"

// budgetController implements §3.4's cost control: a dollar budget per
// time window. Each probe's expected cost is charged before it is issued;
// once the window's budget is gone, probing pauses until the window
// rolls over. A zero budget means unlimited probing (the paper's own
// prototype configuration).
type budgetController struct {
	budget      float64
	window      time.Duration
	windowStart time.Time
	spent       float64
	totalSpent  float64
	denied      int64
}

func newBudgetController(budget float64, window time.Duration, start time.Time) *budgetController {
	return &budgetController{budget: budget, window: window, windowStart: start}
}

// roll advances the budgeting window if needed.
func (b *budgetController) roll(now time.Time) {
	for !now.Before(b.windowStart.Add(b.window)) {
		b.windowStart = b.windowStart.Add(b.window)
		b.spent = 0
	}
}

// allow charges cost against the current window. It reports false (and
// charges nothing) when the window cannot afford the probe.
func (b *budgetController) allow(now time.Time, cost float64) bool {
	b.roll(now)
	if b.budget > 0 && b.spent+cost > b.budget {
		b.denied++
		return false
	}
	b.spent += cost
	b.totalSpent += cost
	return true
}

// refund returns cost to the current window (used when a charged probe
// turns out to be free, e.g. a rejected request).
func (b *budgetController) refund(cost float64) {
	b.spent -= cost
	b.totalSpent -= cost
	if b.spent < 0 {
		b.spent = 0
	}
	if b.totalSpent < 0 {
		b.totalSpent = 0
	}
}

// Spent returns the total dollars charged across all windows.
func (b *budgetController) Spent() float64 { return b.totalSpent }

// Denied returns how many probes the budget suppressed.
func (b *budgetController) Denied() int64 { return b.denied }
