package core

import (
	"math"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/simtime"
	"spotlight/internal/store"
)

// seedSpikes writes a synthetic week of spikes: every day, `perDay`
// crossings at ratio 1.2 and one rare crossing at ratio 6.
func seedSpikes(db *store.Store, m market.SpotID, days, perDay int) (from, to time.Time) {
	from = simtime.StudyEpoch
	for d := 0; d < days; d++ {
		day := from.Add(time.Duration(d) * 24 * time.Hour)
		for i := 0; i < perDay; i++ {
			db.AppendSpike(store.SpikeEvent{
				At: day.Add(time.Duration(i) * time.Hour), Market: m, Ratio: 1.2,
			})
		}
		db.AppendSpike(store.SpikeEvent{At: day.Add(23 * time.Hour), Market: m, Ratio: 6})
	}
	return from, from.Add(time.Duration(days) * 24 * time.Hour)
}

func TestEstimateThresholdBudgetFitsEverything(t *testing.T) {
	db := store.New()
	cat := market.New()
	m := market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	from, to := seedSpikes(db, m, 7, 10)
	od, _ := cat.SpotODPrice(m) // 0.42

	// 11 spikes/day at $0.42 each = $4.62/day; a $10 budget covers T=1.
	plan, err := EstimateThreshold(db, cat, 10, from, to, false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Threshold != 1 || plan.SampleProb != 1 {
		t.Errorf("plan = %+v, want T=1 p=1", plan)
	}
	want := 11 * od
	if math.Abs(plan.ExpectedDailyCost-want) > 1e-9 {
		t.Errorf("daily cost = %v, want %v", plan.ExpectedDailyCost, want)
	}
	if math.Abs(plan.ExpectedDailyProbes-11) > 1e-9 {
		t.Errorf("daily probes = %v, want 11", plan.ExpectedDailyProbes)
	}
}

func TestEstimateThresholdRaisesT(t *testing.T) {
	db := store.New()
	cat := market.New()
	m := market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	from, to := seedSpikes(db, m, 7, 10)
	od, _ := cat.SpotODPrice(m)

	// A budget covering only ~1 probe/day forces T above 1.2 (skipping
	// the ten daily small spikes) but keeps the daily 6x event.
	plan, err := EstimateThreshold(db, cat, od*1.05, from, to, false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Threshold <= 1.2 {
		t.Errorf("threshold = %v, want above the 1.2 crowd", plan.Threshold)
	}
	if plan.SampleProb != 1 {
		t.Errorf("p = %v, want 1 (budget fits at higher T)", plan.SampleProb)
	}
	if math.Abs(plan.ExpectedDailyProbes-1) > 1e-9 {
		t.Errorf("daily probes = %v, want 1 (the 6x event)", plan.ExpectedDailyProbes)
	}
	// The sampling alternative keeps T=1 with p < 1.
	if plan.Alternative == nil {
		t.Fatal("no sampling alternative")
	}
	alt := plan.Alternative
	if alt.Threshold != 1 || alt.SampleProb >= 1 || alt.SampleProb <= 0 {
		t.Errorf("alternative = %+v", alt)
	}
	if alt.ExpectedDailyCost > od*1.05+1e-9 {
		t.Errorf("alternative cost %v exceeds budget", alt.ExpectedDailyCost)
	}
}

func TestEstimateThresholdSamplesWhenEvenRareEventsOverflow(t *testing.T) {
	db := store.New()
	cat := market.New()
	m := market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	from, to := seedSpikes(db, m, 7, 10)
	od, _ := cat.SpotODPrice(m)

	// A budget below one probe/day: even T=10 (one 6x event... none above
	// 10) — the grid search lands at the top and samples.
	plan, err := EstimateThreshold(db, cat, od/10, from, to, false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SampleProb > 1 {
		t.Errorf("p = %v > 1", plan.SampleProb)
	}
	if plan.ExpectedDailyCost > od/10+1e-9 {
		t.Errorf("cost %v exceeds budget %v", plan.ExpectedDailyCost, od/10)
	}
}

func TestEstimateThresholdRelatedOverhead(t *testing.T) {
	db := store.New()
	cat := market.New()
	m := market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	from, to := seedSpikes(db, m, 7, 10)

	// Record trigger probes with a 50% rejection (= detection) rate.
	for i := 0; i < 4; i++ {
		db.AppendProbe(store.ProbeRecord{
			At: from.Add(time.Duration(i) * time.Hour), Market: m,
			Kind: store.ProbeOnDemand, Trigger: store.TriggerSpike,
			TriggerMarket: m, Rejected: i%2 == 0, Code: "x",
		})
	}

	plain, err := EstimateThreshold(db, cat, 1e9, from, to, false)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := EstimateThreshold(db, cat, 1e9, from, to, true)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ExpectedDailyCost <= plain.ExpectedDailyCost {
		t.Errorf("related overhead did not raise cost: %v vs %v",
			loaded.ExpectedDailyCost, plain.ExpectedDailyCost)
	}
	// 24 related markets at 50% detection rate roughly multiplies cost;
	// sanity-bound the factor.
	factor := loaded.ExpectedDailyCost / plain.ExpectedDailyCost
	if factor < 2 || factor > 60 {
		t.Errorf("overhead factor = %v, implausible", factor)
	}
}

func TestEstimateThresholdErrors(t *testing.T) {
	db := store.New()
	cat := market.New()
	from := simtime.StudyEpoch
	to := from.Add(24 * time.Hour)
	if _, err := EstimateThreshold(db, cat, 0, from, to, false); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := EstimateThreshold(db, cat, 10, to, from, false); err == nil {
		t.Error("inverted window accepted")
	}
	if _, err := EstimateThreshold(db, cat, 10, from, to, false); err != ErrNoHistory {
		t.Errorf("err = %v, want ErrNoHistory", err)
	}
}
