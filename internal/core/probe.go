package core

import (
	"time"

	"spotlight/internal/cloud"
	"spotlight/internal/market"
	"spotlight/internal/store"
)

// probeContext carries the provenance of a probe into its log record.
type probeContext struct {
	trigger       store.Trigger
	triggerMarket market.SpotID
	sourceKind    store.ProbeKind
	spikeRatio    float64
}

// odProbe is Chapter 4's RequestOnDemand/RequestInsufficiency function:
// request one on-demand server, log the outcome, terminate immediately on
// success, and on a capacity rejection start the recovery loop and fan
// out to related markets.
func (s *Service) odProbe(mon *marketMon, now time.Time, ctx probeContext) {
	cost := mon.od // one hour minimum charge if allocated
	if !s.budget.allow(now, cost) {
		s.stats.BudgetDenied++
		return
	}
	inst, err := s.prov.RunInstance(mon.id)
	rec := store.ProbeRecord{
		At:            now,
		Market:        mon.id,
		Kind:          store.ProbeOnDemand,
		Trigger:       ctx.trigger,
		TriggerMarket: ctx.triggerMarket,
		SourceKind:    ctx.sourceKind,
		SpikeRatio:    ctx.spikeRatio,
		PriceRatio:    s.priceRatio(mon),
		Cost:          cost,
	}
	s.stats.ODProbes++
	s.rstats(mon.id.Region()).ODProbes++

	switch {
	case err == nil:
		// Available: pay the hour, release the server (§3.1: "logs the
		// timestamp of the request, and then terminates the server").
		if terr := s.prov.TerminateInstance(inst.ID); terr != nil {
			s.stats.QuotaSkips++
		}
		s.logProbe(mon, rec)
		if mon.odOutage {
			s.closeODOutage(mon)
		}
	case cloud.IsCode(err, cloud.ErrInsufficientCapacity):
		s.budget.refund(cost) // rejected requests are free
		rec.Cost = 0
		rec.Rejected = true
		rec.Code = string(cloud.ErrInsufficientCapacity)
		s.logProbe(mon, rec)
		s.stats.ODRejections++
		s.rstats(mon.id.Region()).ODRejections++
		s.onODRejection(mon, now, ctx)
	default:
		// Quota or rate-limit errors are SpotLight's own backpressure,
		// not market signal; skip the record so they cannot pollute the
		// outage derivation, and retry on the normal schedules.
		s.budget.refund(cost)
		s.stats.QuotaSkips++
	}
}

// onODRejection implements the RequestInsufficiency policy: schedule
// periodic re-probes until recovery, fan out to the related markets of
// §3.2.1/§3.2.2, and issue the cross spot probe of §5.4.
func (s *Service) onODRejection(mon *marketMon, now time.Time, ctx probeContext) {
	fresh := !mon.odOutage
	if fresh {
		mon.odOutage = true
		mon.spikeRatio = ctx.spikeRatio
		mon.nextODRecheck = now.Add(s.cfg.RecheckInterval)
		s.activeOD[mon.id] = mon
	}
	// Fan out only on the initial spike-triggered detection; related and
	// recheck probes never recurse (the paper fans out from the trigger
	// market, not transitively).
	if !fresh || ctx.trigger != store.TriggerSpike {
		return
	}
	mon.relatedUntil = now.Add(s.cfg.RelatedWindow)
	mon.nextRelated = now.Add(s.cfg.RelatedRecheckInterval)
	if !s.cfg.DisableFamilyProbing {
		s.probeRelated(mon, now, store.ProbeOnDemand)
	}
	// Cross probe: is the spot side of this market also out (§5.4)?
	s.spotProbe(mon, now, probeContext{
		trigger:       store.TriggerCross,
		triggerMarket: mon.id,
		sourceKind:    store.ProbeOnDemand,
		spikeRatio:    ctx.spikeRatio,
	})
}

// probeRelated probes the trigger market's family siblings in the same
// zone and the family across the region's other zones, on both contract
// tiers. sourceKind records which tier's rejection caused the fan-out.
func (s *Service) probeRelated(trigger *marketMon, now time.Time, sourceKind store.ProbeKind) {
	for _, rel := range s.cat.RelatedSameZone(trigger.id) {
		s.probeRelatedOne(trigger, rel, now, store.TriggerRelatedSameZone, sourceKind)
	}
	for _, rel := range s.cat.RelatedOtherZones(trigger.id) {
		s.probeRelatedOne(trigger, rel, now, store.TriggerRelatedOtherZone, sourceKind)
	}
}

func (s *Service) probeRelatedOne(trigger *marketMon, rel market.SpotID, now time.Time, tr store.Trigger, sourceKind store.ProbeKind) {
	relMon, ok := s.mons[rel]
	if !ok {
		return
	}
	ctx := probeContext{
		trigger:       tr,
		triggerMarket: trigger.id,
		sourceKind:    sourceKind,
		spikeRatio:    trigger.spikeRatio,
	}
	if !relMon.odOutage {
		s.odProbe(relMon, now, ctx)
	}
	if !relMon.spotOutage {
		s.spotProbe(relMon, now, ctx)
	}
}

// spotProbe is Chapter 4's CheckCapacity function: bid the published spot
// price; capacity-not-available marks the spot tier out and (optionally)
// leaves the request held until the platform fulfills it.
func (s *Service) spotProbe(mon *marketMon, now time.Time, ctx probeContext) {
	bid := mon.price
	if bid <= 0 {
		return
	}
	cost := bid // one hour at roughly the spot price if allocated
	if !s.budget.allow(now, cost) {
		s.stats.BudgetDenied++
		return
	}
	req, err := s.prov.RequestSpotInstance(mon.id, bid)
	if err != nil {
		s.budget.refund(cost)
		s.stats.QuotaSkips++
		return
	}
	rec := store.ProbeRecord{
		At:            now,
		Market:        mon.id,
		Kind:          store.ProbeSpot,
		Trigger:       ctx.trigger,
		TriggerMarket: ctx.triggerMarket,
		SourceKind:    ctx.sourceKind,
		SpikeRatio:    ctx.spikeRatio,
		PriceRatio:    s.priceRatio(mon),
		Bid:           bid,
		Cost:          cost,
	}
	s.stats.SpotProbes++
	s.rstats(mon.id.Region()).SpotProbes++

	switch req.State {
	case cloud.SpotFulfilled:
		if terr := s.prov.TerminateInstance(req.Instance); terr != nil {
			s.stats.QuotaSkips++
		}
		s.logProbe(mon, rec)
		if mon.spotOutage {
			s.closeSpotOutage(mon)
		}
	case cloud.SpotCapacityNotAvailable:
		s.budget.refund(cost)
		rec.Cost = 0
		rec.Rejected = true
		rec.Code = req.State.String()
		s.logProbe(mon, rec)
		s.stats.SpotRejections++
		s.rstats(mon.id.Region()).SpotRejections++
		s.onSpotRejection(mon, req, now, ctx)
	default:
		// price-too-low / capacity-oversubscribed: capacity exists, the
		// bid just raced the true price. Not an availability failure.
		s.budget.refund(cost)
		rec.Cost = 0
		rec.Code = req.State.String()
		s.logProbe(mon, rec)
		_ = s.prov.CancelSpotRequest(req.ID)
		if mon.spotOutage {
			s.closeSpotOutage(mon)
		}
	}
}

// onSpotRejection starts the spot-side recovery loop: hold the request if
// the per-region hold budget allows (§3.3: "the spot request will be held
// as capacity-not-available until it is available again"), otherwise
// cancel and recheck with fresh probes; then verify the on-demand side
// (Chapter 4: "when spot request held due to market unavailability, issue
// an on-demand instance request to verify the availability of on-demand
// market").
func (s *Service) onSpotRejection(mon *marketMon, req cloud.SpotRequest, now time.Time, ctx probeContext) {
	fresh := !mon.spotOutage
	if fresh {
		mon.spotOutage = true
		mon.nextSpotRecheck = now.Add(s.cfg.RecheckInterval)
		s.activeSpot[mon.id] = mon
	}
	region := mon.id.Region()
	if s.heldCNA[region] < s.cfg.MaxHeldCNAPerRegion && mon.heldReq == "" {
		mon.heldReq = req.ID
		s.heldCNA[region]++
	} else {
		_ = s.prov.CancelSpotRequest(req.ID)
	}
	if !fresh || ctx.trigger == store.TriggerRecheck || ctx.trigger == store.TriggerCross {
		return
	}
	// Cross probe the on-demand side of the same market (§5.4).
	if !mon.odOutage {
		s.odProbe(mon, now, probeContext{
			trigger:       store.TriggerCross,
			triggerMarket: mon.id,
			sourceKind:    store.ProbeSpot,
			spikeRatio:    ctx.spikeRatio,
		})
	}
	// Fan out to related markets on both tiers (Fig 5.12's spot-spot and
	// spot-od pairs), except when this rejection is itself fan-out.
	if !s.cfg.DisableFamilyProbing &&
		ctx.trigger != store.TriggerRelatedSameZone && ctx.trigger != store.TriggerRelatedOtherZone {
		s.probeRelated(mon, now, store.ProbeSpot)
	}
}

// handleHeldView advances a held capacity-not-available request from its
// freshly described state: the platform re-evaluates held requests every
// tick, so SpotLight just reads the status and records the recovery when
// it comes.
func (s *Service) handleHeldView(mon *marketMon, req cloud.SpotRequest, now time.Time) {
	rec := store.ProbeRecord{
		At:            now,
		Market:        mon.id,
		Kind:          store.ProbeSpot,
		Trigger:       store.TriggerRecheck,
		TriggerMarket: mon.id,
		SourceKind:    store.ProbeSpot,
		PriceRatio:    s.priceRatio(mon),
		Bid:           req.Bid,
	}
	switch req.State {
	case cloud.SpotCapacityNotAvailable:
		// Still out; the hold keeps waiting. Record the observation.
		rec.Rejected = true
		rec.Code = req.State.String()
		s.logProbe(mon, rec)
	case cloud.SpotFulfilled:
		if s.budget.allow(now, req.Bid) {
			rec.Cost = req.Bid
		}
		if terr := s.prov.TerminateInstance(req.Instance); terr != nil {
			s.stats.QuotaSkips++
		}
		s.logProbe(mon, rec)
		s.releaseHold(mon)
		s.closeSpotOutage(mon)
	default:
		// price-too-low etc.: capacity came back at a different price.
		rec.Code = req.State.String()
		s.logProbe(mon, rec)
		_ = s.prov.CancelSpotRequest(req.ID)
		s.releaseHold(mon)
		s.closeSpotOutage(mon)
	}
}

func (s *Service) releaseHold(mon *marketMon) {
	if mon.heldReq == "" {
		return
	}
	region := mon.id.Region()
	if s.heldCNA[region] > 0 {
		s.heldCNA[region]--
	}
	mon.heldReq = ""
}

func (s *Service) closeODOutage(mon *marketMon) {
	mon.odOutage = false
	mon.relatedUntil = time.Time{}
	delete(s.activeOD, mon.id)
}

func (s *Service) closeSpotOutage(mon *marketMon) {
	mon.spotOutage = false
	s.releaseHold(mon)
	delete(s.activeSpot, mon.id)
}

func (s *Service) priceRatio(mon *marketMon) float64 {
	if mon.od <= 0 {
		return 0
	}
	return mon.price / mon.od
}
