package core

import (
	"errors"
	"sort"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
)

// This file implements §3.4's cost control calibration: "SpotLight may
// use historical spot price data for each market to determine a proper
// threshold for a given budget over some probing window", including the
// extension the paper sketches ("we could easily extend the scheme above
// to account for the expected cost of related server probes based on
// historical probing data").

// ThresholdPlan is a calibrated probing configuration.
type ThresholdPlan struct {
	// Threshold is the spike multiple T to probe at with SampleProb 1.
	Threshold float64
	// SampleProb is the sampling ratio p at Threshold.
	SampleProb float64
	// ExpectedDailyCost estimates dollars/day under (Threshold,
	// SampleProb), including related-probe overhead when requested.
	ExpectedDailyCost float64
	// ExpectedDailyProbes estimates trigger probes/day.
	ExpectedDailyProbes float64

	// Alternative is the paper's sampling option: keep the lowest
	// threshold and sample a fraction p of crossings instead, trading
	// complete coverage of rare big spikes for partial coverage of
	// common small ones.
	Alternative *ThresholdPlan
}

// thresholdGrid is the candidate T ladder.
var thresholdGrid = []float64{1, 1.5, 2, 2.5, 3, 4, 5, 6, 7, 8, 9, 10}

// ErrNoHistory is returned when the calibration window contains no spike
// events to learn from.
var ErrNoHistory = errors.New("core: no spike history in calibration window")

// EstimateThreshold calibrates (T, p) for a dollar budget per day from
// the spike history in [from, to]. When includeRelated is true, every
// trigger probe's cost is inflated by the expected related-market fan-out
// (detection rate x cost of probing the §3.2 related set).
func EstimateThreshold(db *store.Store, cat *market.Catalog, budgetPerDay float64, from, to time.Time, includeRelated bool) (ThresholdPlan, error) {
	if budgetPerDay <= 0 {
		return ThresholdPlan{}, errors.New("core: non-positive budget")
	}
	if !to.After(from) {
		return ThresholdPlan{}, errors.New("core: empty calibration window")
	}
	days := to.Sub(from).Hours() / 24
	if days <= 0 {
		return ThresholdPlan{}, errors.New("core: empty calibration window")
	}

	spikes := db.SpikesInWindow(from, to, nil)
	if len(spikes) == 0 {
		return ThresholdPlan{}, ErrNoHistory
	}

	// Detection rate: how often a trigger probe hits an unavailable
	// market (these probes are free, but they trigger the fan-out).
	trigger := db.ProbesInWindow(from, to, func(r store.ProbeRecord) bool {
		return r.Kind == store.ProbeOnDemand && r.Trigger == store.TriggerSpike
	})
	detectionRate := 0.0
	if len(trigger) > 0 {
		rejected := 0
		for _, p := range trigger {
			if p.Rejected {
				rejected++
			}
		}
		detectionRate = float64(rejected) / float64(len(trigger))
	}

	// Per-market costs, cached: a fulfilled trigger probe costs one hour
	// on-demand; a detection additionally costs the related fan-out.
	odPrice := make(map[market.SpotID]float64)
	relCost := make(map[market.SpotID]float64)
	costOf := func(m market.SpotID) float64 {
		od, ok := odPrice[m]
		if !ok {
			od, _ = cat.SpotODPrice(m)
			odPrice[m] = od
		}
		cost := od
		if includeRelated {
			rc, ok := relCost[m]
			if !ok {
				for _, rel := range cat.Related(m) {
					p, err := cat.SpotODPrice(rel)
					if err == nil {
						rc += p
					}
				}
				relCost[m] = rc
			}
			cost += detectionRate * rc
		}
		return cost
	}

	// Daily probing cost at each candidate threshold.
	costAt := func(t float64) (cost, probes float64) {
		for _, sp := range spikes {
			if sp.Ratio <= t {
				continue
			}
			probes++
			cost += costOf(sp.Market)
		}
		return cost / days, probes / days
	}

	base, baseProbes := costAt(thresholdGrid[0])
	if base <= budgetPerDay {
		return ThresholdPlan{
			Threshold:           thresholdGrid[0],
			SampleProb:          1,
			ExpectedDailyCost:   base,
			ExpectedDailyProbes: baseProbes,
		}, nil
	}

	// Find the smallest threshold that fits the budget at p=1.
	idx := sort.Search(len(thresholdGrid), func(i int) bool {
		c, _ := costAt(thresholdGrid[i])
		return c <= budgetPerDay
	})
	plan := ThresholdPlan{Threshold: thresholdGrid[len(thresholdGrid)-1], SampleProb: 1}
	if idx < len(thresholdGrid) {
		plan.Threshold = thresholdGrid[idx]
	}
	plan.ExpectedDailyCost, plan.ExpectedDailyProbes = costAt(plan.Threshold)
	if plan.ExpectedDailyCost > budgetPerDay {
		// Even the rarest events overflow the budget: sample them.
		plan.SampleProb = budgetPerDay / plan.ExpectedDailyCost
		plan.ExpectedDailyCost *= plan.SampleProb
		plan.ExpectedDailyProbes *= plan.SampleProb
	}

	// The sampling alternative: stay at the lowest threshold and sample.
	p := budgetPerDay / base
	plan.Alternative = &ThresholdPlan{
		Threshold:           thresholdGrid[0],
		SampleProb:          p,
		ExpectedDailyCost:   base * p,
		ExpectedDailyProbes: baseProbes * p,
	}
	return plan, nil
}
