package core

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"spotlight/internal/cloud"
	"spotlight/internal/market"
	"spotlight/internal/store"
)

// Counters are the service's operational statistics.
type Counters struct {
	SpikesSeen     int64 // threshold crossings observed
	SpikesSampled  int64 // crossings that passed the sampling coin
	ODProbes       int64 // on-demand probes issued
	ODRejections   int64 // probes answered InsufficientInstanceCapacity
	SpotProbes     int64 // spot probes issued
	SpotRejections int64 // probes answered capacity-not-available
	BidSpreadRuns  int64
	Revocations    int64
	BudgetDenied   int64 // probes suppressed by the budget controller
	QuotaSkips     int64 // probes skipped due to platform API quotas
}

// marketMon is the per-market monitor: SpotLight's Chapter 4 "market
// class" with its probe manager state.
type marketMon struct {
	id      market.SpotID
	od      float64
	price   float64
	above   bool // currently above the spike threshold
	watched bool

	// app writes straight to this market's store shard, skipping the
	// store-level shard lookup on every ingested record.
	app *store.Appender
	// pending buffers the tick's probe records; OnTick flushes them in one
	// batched append per market (see Service.flushProbes). The slice's
	// capacity is reused across ticks.
	pending []store.ProbeRecord

	lastSample        time.Time
	lastRecordedPrice float64

	// On-demand outage handling (RequestInsufficiency).
	odOutage      bool
	nextODRecheck time.Time
	relatedUntil  time.Time
	nextRelated   time.Time
	spikeRatio    float64 // ratio of the spike that opened the outage

	// Spot outage handling (CheckCapacity holds).
	spotOutage      bool
	nextSpotRecheck time.Time
	heldReq         cloud.RequestID

	// BidSpread scheduling.
	bidSpread     bool
	nextBidSpread time.Time

	// Revocation watch.
	revocation  bool
	revInstance cloud.InstanceID
	revBid      float64
	revSince    time.Time
	revCharged  time.Duration
}

// Service is the SpotLight information service.
type Service struct {
	cfg    Config
	prov   Provider
	cat    *market.Catalog
	db     *store.Store
	budget *budgetController
	rng    *rand.Rand

	regions   []market.Region
	mons      map[market.SpotID]*marketMon
	monsByReg map[market.Region][]*marketMon

	activeOD   map[market.SpotID]*marketMon
	activeSpot map[market.SpotID]*marketMon
	heldCNA    map[market.Region]int

	spotRR          []*marketMon
	rrPos           int
	spotProbeCredit float64
	odRRPos         int
	odProbeCredit   float64

	lastTick time.Time
	stats    Counters
	regional map[market.Region]*Counters

	// lastSnapshot is when the durable store was last snapshot (zero
	// until the first tick seeds it); only meaningful when the store has
	// a persister and SnapshotInterval > 0.
	lastSnapshot time.Time

	// dirtyMons lists the monitors holding buffered probe records this
	// tick, in first-write order; reused across ticks.
	dirtyMons []*marketMon
}

// New builds a SpotLight service over the provider, logging into db.
func New(prov Provider, db *store.Store, cfg Config) (*Service, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	cat := prov.Catalog()
	regions := cfg.Regions
	if len(regions) == 0 {
		regions = cat.Regions()
	}

	s := &Service{
		cfg:        cfg,
		prov:       prov,
		cat:        cat,
		db:         db,
		budget:     newBudgetController(cfg.Budget, cfg.BudgetWindow, prov.Now()),
		rng:        rand.New(rand.NewPCG(cfg.Seed, 0x5b07_11fe)),
		regions:    regions,
		mons:       make(map[market.SpotID]*marketMon),
		monsByReg:  make(map[market.Region][]*marketMon, len(regions)),
		activeOD:   make(map[market.SpotID]*marketMon),
		activeSpot: make(map[market.SpotID]*marketMon),
		heldCNA:    make(map[market.Region]int),
		regional:   make(map[market.Region]*Counters, len(regions)),
	}
	for _, r := range regions {
		s.regional[r] = &Counters{}
	}

	watched := make(map[market.SpotID]bool, len(cfg.WatchedMarkets))
	for _, id := range cfg.WatchedMarkets {
		watched[id] = true
	}
	bidSpread := make(map[market.SpotID]bool, len(cfg.BidSpreadMarkets))
	for _, id := range cfg.BidSpreadMarkets {
		bidSpread[id] = true
	}
	revocation := make(map[market.SpotID]bool, len(cfg.RevocationMarkets))
	for _, id := range cfg.RevocationMarkets {
		revocation[id] = true
	}

	inRegions := make(map[market.Region]bool, len(regions))
	for _, r := range regions {
		inRegions[r] = false
		if _, ok := s.monsByReg[r]; !ok {
			s.monsByReg[r] = nil
		}
	}
	for _, id := range cat.SpotMarkets() {
		r := id.Region()
		if _, ok := s.monsByReg[r]; !ok {
			continue
		}
		inRegions[r] = true
		od, err := cat.SpotODPrice(id)
		if err != nil {
			return nil, fmt.Errorf("core: price for %v: %w", id, err)
		}
		mon := &marketMon{
			id:         id,
			od:         od,
			watched:    watched[id],
			bidSpread:  bidSpread[id],
			revocation: revocation[id],
			app:        s.db.Appender(id),
		}
		s.mons[id] = mon
		s.monsByReg[r] = append(s.monsByReg[r], mon)
		s.spotRR = append(s.spotRR, mon)
	}
	for r, seen := range inRegions {
		if !seen {
			return nil, fmt.Errorf("core: region %q has no markets in the catalog", r)
		}
	}
	return s, nil
}

// Store returns the service's database.
func (s *Service) Store() *store.Store { return s.db }

// Stats returns a copy of the operational counters.
func (s *Service) Stats() Counters { return s.stats }

// RegionStats returns per-region operational counters — the observable
// face of Chapter 4's per-region manager hierarchy.
func (s *Service) RegionStats() map[market.Region]Counters {
	out := make(map[market.Region]Counters, len(s.regional))
	for r, c := range s.regional {
		out[r] = *c
	}
	return out
}

// rstats returns the mutable per-region counter block.
func (s *Service) rstats(r market.Region) *Counters {
	c, ok := s.regional[r]
	if !ok {
		c = &Counters{}
		s.regional[r] = c
	}
	return c
}

// Spent returns the dollars the budget controller has charged.
func (s *Service) Spent() float64 { return s.budget.Spent() }

// OnTick runs one monitoring cycle: it reads the current prices of every
// monitored region, fires the market-based probing policy on threshold
// crossings, advances re-probe schedules, issues the periodic spot
// capacity probes, and runs BidSpread and revocation experiments that are
// due. Call it once per platform tick.
func (s *Service) OnTick() {
	now := s.prov.Now()
	dt := time.Duration(0)
	if !s.lastTick.IsZero() {
		dt = now.Sub(s.lastTick)
	}
	s.lastTick = now

	for _, r := range s.regions {
		s.scanRegion(r, now)
	}
	s.runODRechecks(now)
	s.runSpotRechecks(now)
	s.runPeriodicSpotProbes(now, dt)
	s.runPeriodicODProbes(now, dt)
	s.runBidSpreads(now)
	s.runRevocationWatch(now)
	s.flushProbes()
	s.persistTick(now)
}

// persistTick drives the durable store's lifecycle once per tick: the
// WAL flushes (making this tick's records crash-durable), the clock note
// advances, and — when a snapshot interval is configured — the store
// periodically snapshots and compacts. In-memory stores skip all of it.
// Flush/snapshot errors are sticky inside the persister and surface from
// Close, so a transient disk problem never takes down monitoring.
func (s *Service) persistTick(now time.Time) {
	p := s.db.Persister()
	if p == nil {
		return
	}
	p.NoteClock(now)
	_ = p.Flush()
	if iv := s.cfg.SnapshotInterval; iv > 0 {
		if s.lastSnapshot.IsZero() {
			s.lastSnapshot = now
		} else if now.Sub(s.lastSnapshot) >= iv {
			s.lastSnapshot = now
			_ = p.Snapshot()
		}
	}
}

// Close shuts down the service's durability layer: outstanding WAL bytes
// flush, a final snapshot compacts the log, and the service clock is
// persisted so a restart resumes where this process stopped. It returns
// the first durability error of the whole run (per-tick flush errors are
// sticky and resurface here). In-memory services return nil. Callers must
// not run OnTick concurrently with or after Close.
func (s *Service) Close() error {
	p := s.db.Persister()
	if p == nil {
		return nil
	}
	return p.Close()
}

// logProbe buffers one probe record on its market's monitor instead of
// appending it immediately: a tick that touches a market several times
// (spike probe, cross probe, related fan-out, recheck) then pays one shard
// lock round and one rollup publish for the market, not one per record.
// The policy code never reads probe state back from the store mid-tick —
// its decisions run on the monitors' own flags — so deferring the append
// to the end of the tick is invisible to the probing logic.
func (s *Service) logProbe(mon *marketMon, rec store.ProbeRecord) {
	if len(mon.pending) == 0 {
		s.dirtyMons = append(s.dirtyMons, mon)
	}
	mon.pending = append(mon.pending, rec)
}

// flushProbes appends every monitor's buffered probe records through its
// bound Appender in one batch per market, preserving within-market order
// (the store's outage derivation depends on it). Buffers keep their
// capacity for the next tick. Each batch is also one change-feed publish
// round: live watchers (store.Feed subscribers, /v2/watch streams)
// receive a tick's probes and derived outage transitions as one burst
// per market per tick, not one wakeup per record.
func (s *Service) flushProbes() {
	for _, mon := range s.dirtyMons {
		mon.app.AppendProbes(mon.pending)
		mon.pending = mon.pending[:0]
	}
	s.dirtyMons = s.dirtyMons[:0]
}

// scanRegion pulls the region's price snapshot, records prices, and
// triggers spike probes (§3.1: "trigger a probe whenever the spot price
// spikes above a certain threshold").
func (s *Service) scanRegion(r market.Region, now time.Time) {
	s.prov.EachRegionPrice(r, func(mp cloud.MarketPrice) {
		mon, ok := s.mons[mp.ID]
		if !ok {
			return
		}
		mon.price = mp.Spot
		s.recordPrice(mon, now)

		ratio := 0.0
		if mon.od > 0 {
			ratio = mon.price / mon.od
		}
		switch {
		case ratio > s.cfg.Threshold && !mon.above:
			mon.above = true
			s.stats.SpikesSeen++
			s.rstats(r).SpikesSeen++
			probed := false
			// Sample the crossing (§3.4's sampling ratio p). A market
			// already known to be unavailable is on the recheck
			// schedule; a fresh spike probe would be redundant.
			if !mon.odOutage && s.rng.Float64() < s.cfg.SampleProb {
				s.stats.SpikesSampled++
				s.rstats(r).SpikesSampled++
				probed = true
				s.odProbe(mon, now, probeContext{
					trigger:       store.TriggerSpike,
					triggerMarket: mon.id,
					sourceKind:    store.ProbeSpot,
					spikeRatio:    ratio,
				})
			}
			mon.app.AppendSpike(store.SpikeEvent{
				At: now, Market: mon.id, Price: mon.price, Ratio: ratio, Probed: probed,
			})
		case ratio <= s.cfg.Threshold && mon.above:
			mon.above = false
		}
	})
}

// recordPrice logs the price series: densely for watched markets, sparsely
// for the rest.
func (s *Service) recordPrice(mon *marketMon, now time.Time) {
	switch {
	case mon.watched:
		if mon.price != mon.lastRecordedPrice || mon.lastSample.IsZero() {
			mon.app.RecordPrice(store.PricePoint{At: now, Price: mon.price})
			mon.lastRecordedPrice = mon.price
			mon.lastSample = now
		}
	case mon.lastSample.IsZero() || now.Sub(mon.lastSample) >= s.cfg.PriceSampleEvery:
		mon.app.RecordPrice(store.PricePoint{At: now, Price: mon.price})
		mon.lastRecordedPrice = mon.price
		mon.lastSample = now
	}
}

// sortedMons returns the monitors of an active set in stable ID order, so
// probe order (and hence budget consumption) is reproducible across runs.
func sortedMons(set map[market.SpotID]*marketMon) []*marketMon {
	out := make([]*marketMon, 0, len(set))
	for _, mon := range set {
		out = append(out, mon)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].id, out[j].id
		if a.Zone != b.Zone {
			return a.Zone < b.Zone
		}
		if a.Type != b.Type {
			return a.Type < b.Type
		}
		return a.Product < b.Product
	})
	return out
}

// runODRechecks re-probes unavailable on-demand markets every δ until they
// recover, and re-probes their related markets inside the related window.
func (s *Service) runODRechecks(now time.Time) {
	for _, mon := range sortedMons(s.activeOD) {
		if !now.Before(mon.nextODRecheck) {
			mon.nextODRecheck = now.Add(s.cfg.RecheckInterval)
			s.odProbe(mon, now, probeContext{
				trigger:       store.TriggerRecheck,
				triggerMarket: mon.id,
				sourceKind:    store.ProbeOnDemand,
				spikeRatio:    mon.spikeRatio,
			})
		}
		if mon.odOutage && !s.cfg.DisableFamilyProbing &&
			now.Before(mon.relatedUntil) && !now.Before(mon.nextRelated) {
			mon.nextRelated = now.Add(s.cfg.RelatedRecheckInterval)
			s.probeRelated(mon, now, store.ProbeOnDemand)
		}
	}
}

// runSpotRechecks advances held capacity-not-available requests and
// re-probes spot-unavailable markets. Held requests are polled through
// one batched describe call per region, the way Chapter 4's region
// managers conserve API budget.
func (s *Service) runSpotRechecks(now time.Time) {
	heldByRegion := make(map[market.Region][]*marketMon)
	for _, mon := range sortedMons(s.activeSpot) {
		if now.Before(mon.nextSpotRecheck) {
			continue
		}
		mon.nextSpotRecheck = now.Add(s.cfg.RecheckInterval)
		if mon.heldReq != "" {
			r := mon.id.Region()
			heldByRegion[r] = append(heldByRegion[r], mon)
			continue
		}
		s.spotProbe(mon, now, probeContext{
			trigger:       store.TriggerRecheck,
			triggerMarket: mon.id,
			sourceKind:    store.ProbeSpot,
		})
	}

	regions := make([]market.Region, 0, len(heldByRegion))
	for r := range heldByRegion {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, r := range regions {
		mons := heldByRegion[r]
		ids := make([]cloud.RequestID, len(mons))
		for i, mon := range mons {
			ids[i] = mon.heldReq
		}
		views, err := s.prov.DescribeSpotRequests(r, ids)
		if err != nil {
			s.stats.QuotaSkips++
			continue // the holds stay; retried at the next due time
		}
		for _, mon := range mons {
			view, ok := views[mon.heldReq]
			if !ok {
				s.releaseHold(mon)
				continue
			}
			s.handleHeldView(mon, view, now)
		}
	}
}

// runPeriodicSpotProbes spreads the daily CheckCapacity budget round-robin
// across all monitored markets (§3.3).
func (s *Service) runPeriodicSpotProbes(now time.Time, dt time.Duration) {
	if len(s.spotRR) == 0 || dt <= 0 {
		return
	}
	s.spotProbeCredit += float64(s.cfg.SpotProbesPerDay) * dt.Hours() / 24
	for s.spotProbeCredit >= 1 {
		// Advance to the next probeable market: one with a known price
		// that is not already on the spot recheck schedule. Give up
		// after one full rotation so a quiet feed cannot spin forever.
		var mon *marketMon
		for scanned := 0; scanned < len(s.spotRR); scanned++ {
			cand := s.spotRR[s.rrPos]
			s.rrPos = (s.rrPos + 1) % len(s.spotRR)
			if cand.price > 0 && !cand.spotOutage {
				mon = cand
				break
			}
		}
		if mon == nil {
			s.spotProbeCredit = 0
			return
		}
		s.spotProbeCredit--
		s.spotProbe(mon, now, probeContext{
			trigger:       store.TriggerPeriodicSpot,
			triggerMarket: mon.id,
			sourceKind:    store.ProbeSpot,
		})
	}
}

// runPeriodicODProbes is the naive ablation baseline: on-demand probes in
// round robin with no market signal at all. It shares the budget
// controller with the market-based policy, so the two can be compared at
// equal spend.
func (s *Service) runPeriodicODProbes(now time.Time, dt time.Duration) {
	if s.cfg.PeriodicODProbesPerDay <= 0 || len(s.spotRR) == 0 || dt <= 0 {
		return
	}
	s.odProbeCredit += float64(s.cfg.PeriodicODProbesPerDay) * dt.Hours() / 24
	for s.odProbeCredit >= 1 {
		var mon *marketMon
		for scanned := 0; scanned < len(s.spotRR); scanned++ {
			cand := s.spotRR[s.odRRPos]
			s.odRRPos = (s.odRRPos + 1) % len(s.spotRR)
			if !cand.odOutage {
				mon = cand
				break
			}
		}
		if mon == nil {
			s.odProbeCredit = 0
			return
		}
		s.odProbeCredit--
		s.odProbe(mon, now, probeContext{
			trigger:       store.TriggerPeriodicOD,
			triggerMarket: mon.id,
			sourceKind:    store.ProbeOnDemand,
		})
	}
}

// runBidSpreads launches due intrinsic-price searches.
func (s *Service) runBidSpreads(now time.Time) {
	for _, id := range s.cfg.BidSpreadMarkets {
		mon, ok := s.mons[id]
		if !ok || !mon.bidSpread {
			continue
		}
		if now.Before(mon.nextBidSpread) {
			continue
		}
		mon.nextBidSpread = now.Add(s.cfg.BidSpreadInterval)
		s.bidSpreadSearch(mon, now)
	}
}
