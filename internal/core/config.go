package core

import (
	"errors"
	"time"

	"spotlight/internal/market"
)

// Config parameterizes the SpotLight service. The defaults mirror the
// prototype deployment in the paper: threshold equal to the on-demand
// price, sampling every event, and periodic re-probing of unavailable
// markets until they recover (§3.4: "to maximize data collection, we set
// T equal to the on-demand price and sample every event").
type Config struct {
	// Threshold is T: a probe triggers when a market's spot price
	// crosses Threshold times its on-demand price. Default 1.0.
	Threshold float64

	// SampleProb is p: the probability a threshold crossing is actually
	// probed (§3.4's sampling ratio). Default 1.0.
	SampleProb float64

	// RecheckInterval is δ: how often an unavailable market is re-probed
	// until it becomes available again. Default 5 minutes.
	RecheckInterval time.Duration

	// RelatedWindow bounds how long related markets keep being re-probed
	// after a detected rejection. Default 1 hour.
	RelatedWindow time.Duration

	// RelatedRecheckInterval is the period of related-market re-probes
	// inside RelatedWindow. Default 15 minutes.
	RelatedRecheckInterval time.Duration

	// SpotProbesPerDay is the total budget of periodic CheckCapacity
	// spot probes per simulated day, spread round-robin over all
	// monitored markets (§3.3 rate-limits spot probes by budget).
	// Default 2000.
	SpotProbesPerDay int

	// Budget is the probing budget in dollars per BudgetWindow; zero
	// means unlimited. When the window's budget is exhausted SpotLight
	// stops probing until the next window (§3.4).
	Budget float64

	// BudgetWindow is the budgeting period. Default 24 hours.
	BudgetWindow time.Duration

	// Regions restricts monitoring; empty means every region.
	Regions []market.Region

	// WatchedMarkets get their full published price history recorded in
	// the store (for trace figures and the case studies). All other
	// markets are sampled every PriceSampleEvery.
	WatchedMarkets []market.SpotID

	// PriceSampleEvery is the sparse price-recording period for
	// non-watched markets. Default 1 hour.
	PriceSampleEvery time.Duration

	// BidSpreadMarkets are periodically subjected to the BidSpread
	// intrinsic-price search (Chapter 4).
	BidSpreadMarkets []market.SpotID

	// BidSpreadInterval is the period between BidSpread searches per
	// market. Default 6 hours.
	BidSpreadInterval time.Duration

	// RevocationMarkets are the user-selected volatile markets on which
	// SpotLight holds a spot instance to measure time-to-revocation
	// (Chapter 4's Revocation probing function).
	RevocationMarkets []market.SpotID

	// RevocationBid is the bid (in multiples of the on-demand price)
	// used for revocation-watch instances. Default 1.0.
	RevocationBid float64

	// MaxHeldCNAPerRegion bounds how many capacity-not-available spot
	// requests SpotLight leaves held per region before falling back to
	// fresh rechecks, so holds cannot exhaust the 20-request quota.
	// Default 8.
	MaxHeldCNAPerRegion int

	// Seed drives the sampling coin flips.
	Seed uint64

	// DisableFamilyProbing turns off the §3.2.1/§3.2.2 related-market
	// fan-out; used by the ablation benchmarks.
	DisableFamilyProbing bool

	// PeriodicODProbesPerDay enables the naive baseline: round-robin
	// on-demand probes with no market signal, at this daily rate. Zero
	// disables it (the normal SpotLight configuration). The ablation
	// benchmarks compare this against market-based probing at equal
	// budget.
	PeriodicODProbesPerDay int

	// SnapshotInterval is how often (in service-clock time) the service
	// snapshots and compacts a durable store. Zero disables periodic
	// snapshots: the WAL still flushes every tick, and Close takes a
	// final snapshot. Ignored for in-memory stores.
	SnapshotInterval time.Duration
}

// fillDefaults applies the paper-prototype defaults and validates ranges.
func (c *Config) fillDefaults() error {
	if c.Threshold == 0 {
		c.Threshold = 1.0
	}
	if c.Threshold < 0 {
		return errors.New("core: negative threshold")
	}
	if c.SampleProb == 0 {
		c.SampleProb = 1.0
	}
	if c.SampleProb < 0 || c.SampleProb > 1 {
		return errors.New("core: sampling probability outside [0,1]")
	}
	if c.RecheckInterval <= 0 {
		c.RecheckInterval = 5 * time.Minute
	}
	if c.RelatedWindow <= 0 {
		c.RelatedWindow = time.Hour
	}
	if c.RelatedRecheckInterval <= 0 {
		c.RelatedRecheckInterval = 15 * time.Minute
	}
	if c.SpotProbesPerDay == 0 {
		c.SpotProbesPerDay = 2000
	}
	if c.SpotProbesPerDay < 0 {
		return errors.New("core: negative spot probe budget")
	}
	if c.Budget < 0 {
		return errors.New("core: negative budget")
	}
	if c.BudgetWindow <= 0 {
		c.BudgetWindow = 24 * time.Hour
	}
	if c.PriceSampleEvery <= 0 {
		c.PriceSampleEvery = time.Hour
	}
	if c.BidSpreadInterval <= 0 {
		c.BidSpreadInterval = 6 * time.Hour
	}
	if c.RevocationBid == 0 {
		c.RevocationBid = 1.0
	}
	if c.RevocationBid < 0 {
		return errors.New("core: negative revocation bid")
	}
	if c.MaxHeldCNAPerRegion <= 0 {
		c.MaxHeldCNAPerRegion = 8
	}
	if c.PeriodicODProbesPerDay < 0 {
		return errors.New("core: negative periodic on-demand probe rate")
	}
	if c.SnapshotInterval < 0 {
		return errors.New("core: negative snapshot interval")
	}
	return nil
}
