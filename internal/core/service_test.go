package core

import (
	"testing"
	"time"

	"spotlight/internal/cloud"
	"spotlight/internal/market"
	"spotlight/internal/simtime"
	"spotlight/internal/store"
)

var (
	trigMkt = market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	sibMkt  = market.SpotID{Zone: "us-east-1d", Type: "c3.8xlarge", Product: market.ProductLinux}
	xzMkt   = market.SpotID{Zone: "us-east-1a", Type: "c3.2xlarge", Product: market.ProductLinux}
)

// newService builds a service over the fake with test-friendly defaults.
func newService(t *testing.T, f *fakeProvider, cfg Config) (*Service, *store.Store) {
	t.Helper()
	db := store.New()
	// Default the periodic spot probing to a negligible rate so unit
	// tests only see the probes they script; tests that exercise the
	// round robin set their own rate.
	if cfg.SpotProbesPerDay == 0 {
		cfg.SpotProbesPerDay = 1
	}
	svc, err := New(f, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, db
}

func odPrice(t *testing.T, f *fakeProvider, m market.SpotID) float64 {
	t.Helper()
	p, err := f.cat.SpotODPrice(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	f := newFakeProvider()
	db := store.New()
	bad := []Config{
		{Threshold: -1},
		{SampleProb: 2},
		{SampleProb: -0.5},
		{Budget: -10},
		{SpotProbesPerDay: -5},
		{RevocationBid: -1},
	}
	for i, cfg := range bad {
		if _, err := New(f, db, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(f, db, Config{Regions: []market.Region{"atlantis-1"}}); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestSpikeTriggersProbe(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 1.5 // above the default 1x threshold
	svc, db := newService(t, f, Config{Regions: []market.Region{"us-east-1"}})

	svc.OnTick()

	if got := f.countRuns(trigMkt); got != 1 {
		t.Fatalf("RunInstance calls = %d, want 1", got)
	}
	probes := db.Probes()
	if len(probes) != 1 {
		t.Fatalf("probe records = %d, want 1", len(probes))
	}
	p := probes[0]
	if p.Trigger != store.TriggerSpike || p.Kind != store.ProbeOnDemand || p.Rejected {
		t.Errorf("probe = %+v", p)
	}
	if p.SpikeRatio < 1.4 || p.SpikeRatio > 1.6 {
		t.Errorf("SpikeRatio = %v, want ~1.5", p.SpikeRatio)
	}
	spikes := db.Spikes()
	if len(spikes) != 1 || !spikes[0].Probed {
		t.Errorf("spikes = %+v", spikes)
	}
	if svc.Stats().SpikesSeen != 1 || svc.Stats().ODProbes != 1 {
		t.Errorf("stats = %+v", svc.Stats())
	}
}

func TestNoRetriggerWhileAboveThreshold(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 2
	svc, db := newService(t, f, Config{Regions: []market.Region{"us-east-1"}})

	svc.OnTick()
	f.advance(5 * time.Minute)
	svc.OnTick() // still above: crossing already consumed
	if got := len(db.Spikes()); got != 1 {
		t.Fatalf("spikes = %d, want 1 (no re-trigger while above)", got)
	}

	// Dip below, then rise again: a second crossing.
	f.prices[trigMkt] = od * 0.5
	f.advance(5 * time.Minute)
	svc.OnTick()
	f.prices[trigMkt] = od * 3
	f.advance(5 * time.Minute)
	svc.OnTick()
	if got := len(db.Spikes()); got != 2 {
		t.Errorf("spikes = %d, want 2 after dip and re-spike", got)
	}
}

func TestSamplingProbabilityZero(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 2
	svc, db := newService(t, f, Config{
		Regions:    []market.Region{"us-east-1"},
		SampleProb: 0.000001, // ~never (0 means "default" in config)
	})
	svc.OnTick()
	if got := f.countRuns(trigMkt); got != 0 {
		t.Errorf("probes = %d, want 0 under p~0", got)
	}
	spikes := db.Spikes()
	if len(spikes) != 1 || spikes[0].Probed {
		t.Errorf("spike should be recorded unprobed: %+v", spikes)
	}
	if svc.Stats().SpikesSeen != 1 {
		t.Errorf("SpikesSeen = %d, want 1", svc.Stats().SpikesSeen)
	}
}

func TestCustomThreshold(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 1.5
	svc, db := newService(t, f, Config{
		Regions:   []market.Region{"us-east-1"},
		Threshold: 2.0,
	})
	svc.OnTick()
	if got := len(db.Spikes()); got != 0 {
		t.Fatalf("1.5x crossing fired under T=2: %d spikes", got)
	}
	f.prices[trigMkt] = od * 2.5
	f.advance(5 * time.Minute)
	svc.OnTick()
	if got := len(db.Spikes()); got != 1 {
		t.Errorf("2.5x crossing did not fire under T=2")
	}
}

func TestRejectionFansOutToRelatedMarkets(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 3
	f.odDown[trigMkt] = true
	f.odDown[sibMkt] = true // one sibling also out
	svc, db := newService(t, f, Config{Regions: []market.Region{"us-east-1"}})

	svc.OnTick()

	// Trigger probe + 4 same-zone siblings + 20 cross-zone family markets
	// + 1 cross od probe from the spot-side CNA? (no spot CNA scripted) = 25.
	if got := len(f.runCalls); got != 25 {
		t.Fatalf("RunInstance calls = %d, want 25 (trigger + 24 related)", got)
	}
	var sameZone, otherZone, spikes, crosses int
	for _, p := range db.Probes() {
		if p.Kind != store.ProbeOnDemand {
			continue
		}
		switch p.Trigger {
		case store.TriggerSpike:
			spikes++
		case store.TriggerRelatedSameZone:
			sameZone++
			if p.TriggerMarket != trigMkt {
				t.Errorf("related probe carries wrong trigger market %v", p.TriggerMarket)
			}
			if p.SpikeRatio < 2.9 || p.SpikeRatio > 3.1 {
				t.Errorf("related probe lost the trigger spike ratio: %v", p.SpikeRatio)
			}
		case store.TriggerRelatedOtherZone:
			otherZone++
		case store.TriggerCross:
			crosses++
		}
	}
	if spikes != 1 || sameZone != 4 || otherZone != 20 {
		t.Errorf("probe breakdown: spike=%d sameZone=%d otherZone=%d", spikes, sameZone, otherZone)
	}
	// Both the trigger market and the scripted sibling must be in outage.
	rejected := db.ProbesWhere(func(r store.ProbeRecord) bool {
		return r.Rejected && r.Kind == store.ProbeOnDemand
	})
	if len(rejected) != 2 {
		t.Errorf("rejected od probes = %d, want 2 (trigger + sibling)", len(rejected))
	}
	// The cross spot probe on the trigger market must exist (§5.4).
	spotCross := db.ProbesWhere(func(r store.ProbeRecord) bool {
		return r.Kind == store.ProbeSpot && r.Trigger == store.TriggerCross && r.Market == trigMkt
	})
	if len(spotCross) != 1 {
		t.Errorf("cross spot probes on trigger market = %d, want 1", len(spotCross))
	}
}

func TestFamilyProbingDisabled(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 3
	f.odDown[trigMkt] = true
	svc, _ := newService(t, f, Config{
		Regions:              []market.Region{"us-east-1"},
		DisableFamilyProbing: true,
	})
	svc.OnTick()
	if got := len(f.runCalls); got != 1 {
		t.Errorf("RunInstance calls = %d, want 1 with family probing off", got)
	}
}

func TestRecheckUntilRecovery(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 3
	f.odDown[trigMkt] = true
	svc, db := newService(t, f, Config{
		Regions:              []market.Region{"us-east-1"},
		RecheckInterval:      5 * time.Minute,
		DisableFamilyProbing: true,
	})
	svc.OnTick() // detection
	if got := f.countRuns(trigMkt); got != 1 {
		t.Fatalf("initial probes = %d, want 1", got)
	}

	f.advance(5 * time.Minute)
	svc.OnTick() // recheck while still down
	if got := f.countRuns(trigMkt); got != 2 {
		t.Fatalf("probes after recheck = %d, want 2", got)
	}

	f.odDown[trigMkt] = false
	f.advance(5 * time.Minute)
	svc.OnTick() // recovery recheck
	if got := f.countRuns(trigMkt); got != 3 {
		t.Fatalf("probes after recovery = %d, want 3", got)
	}
	outs := db.OutagesFor(trigMkt, store.ProbeOnDemand)
	if len(outs) != 1 {
		t.Fatalf("outages = %d, want 1", len(outs))
	}
	if outs[0].End.IsZero() {
		t.Error("outage not closed after recovery probe")
	}
	if got := outs[0].End.Sub(outs[0].Start); got != 10*time.Minute {
		t.Errorf("detected outage duration = %v, want 10m", got)
	}

	// After recovery the market leaves the recheck schedule.
	f.advance(5 * time.Minute)
	svc.OnTick()
	if got := f.countRuns(trigMkt); got != 3 {
		t.Errorf("probe after recovery issued: %d calls", got)
	}
}

func TestBudgetSuppressesProbes(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 2
	svc, db := newService(t, f, Config{
		Regions: []market.Region{"us-east-1"},
		Budget:  od / 2, // cannot afford a single on-demand probe
	})
	svc.OnTick()
	if got := len(db.Probes()); got != 0 {
		t.Fatalf("probes = %d, want 0 under starvation budget", got)
	}
	if svc.Stats().BudgetDenied == 0 {
		t.Error("BudgetDenied not incremented")
	}
}

func TestBudgetWindowRolls(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 2
	svc, db := newService(t, f, Config{
		Regions:      []market.Region{"us-east-1"},
		Budget:       od * 1.1, // exactly one od probe per window
		BudgetWindow: time.Hour,
	})
	svc.OnTick() // first spike probed
	if got := len(db.Probes()); got != 1 {
		t.Fatalf("probes = %d, want 1", got)
	}
	// Second crossing inside the same window: suppressed.
	f.prices[trigMkt] = od * 0.5
	f.advance(time.Minute)
	svc.OnTick()
	f.prices[trigMkt] = od * 2
	f.advance(time.Minute)
	svc.OnTick()
	if got := len(db.Probes()); got != 1 {
		t.Fatalf("probes = %d, want 1 (budget exhausted)", got)
	}
	// After the window rolls, probing resumes.
	f.prices[trigMkt] = od * 0.5
	f.advance(time.Hour)
	svc.OnTick()
	f.prices[trigMkt] = od * 2
	f.advance(time.Minute)
	svc.OnTick()
	if got := len(db.Probes()); got != 2 {
		t.Errorf("probes = %d, want 2 after window roll", got)
	}
}

func TestSpotCNAHoldAndRecovery(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 0.05 // deep discount: CNA territory
	f.spotCNA[trigMkt] = true
	svc, db := newService(t, f, Config{
		Regions:              []market.Region{"us-east-1"},
		RecheckInterval:      5 * time.Minute,
		DisableFamilyProbing: true,
		SpotProbesPerDay:     100000, // make the round robin reach the market fast
	})
	svc.OnTick() // dt=0: no periodic probes yet
	f.advance(5 * time.Minute)
	for i := 0; i < 400 && svc.Stats().SpotRejections == 0; i++ {
		f.advance(time.Minute)
		svc.OnTick()
	}
	if svc.Stats().SpotRejections == 0 {
		t.Fatal("periodic spot probing never reached the CNA market")
	}
	// The CNA rejection must have triggered a cross od probe (§5.4 /
	// Chapter 4's CheckCapacity verification).
	crossOD := db.ProbesWhere(func(r store.ProbeRecord) bool {
		return r.Kind == store.ProbeOnDemand && r.Trigger == store.TriggerCross &&
			r.SourceKind == store.ProbeSpot && r.Market == trigMkt
	})
	if len(crossOD) != 1 {
		t.Errorf("cross od probes = %d, want 1", len(crossOD))
	}

	// Recovery: capacity returns; the held request fulfills on poll.
	f.spotCNA[trigMkt] = false
	f.advance(5 * time.Minute)
	svc.OnTick()
	outs := db.OutagesFor(trigMkt, store.ProbeSpot)
	if len(outs) != 1 || outs[0].End.IsZero() {
		t.Errorf("spot outage not closed: %+v", outs)
	}
}

func TestPeriodicSpotProbeRate(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 0.2
	svc, _ := newService(t, f, Config{
		Regions:          []market.Region{"us-east-1"},
		SpotProbesPerDay: 24, // exactly one per hour
	})
	svc.OnTick() // dt = 0
	for i := 0; i < 4; i++ {
		f.advance(time.Hour)
		svc.OnTick()
	}
	if got := svc.Stats().SpotProbes; got != 4 {
		t.Errorf("spot probes after 4 hours at 24/day = %d, want 4", got)
	}
}

func TestWatchedMarketDenseRecording(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 0.2
	f.prices[xzMkt] = od * 0.2
	svc, db := newService(t, f, Config{
		Regions:          []market.Region{"us-east-1"},
		WatchedMarkets:   []market.SpotID{trigMkt},
		PriceSampleEvery: time.Hour,
	})
	for i := 0; i < 12; i++ {
		svc.OnTick()
		f.prices[trigMkt] *= 1.01 // changes every tick
		f.prices[xzMkt] *= 1.01
		f.advance(5 * time.Minute)
	}
	dense := db.Prices(trigMkt)
	sparse := db.Prices(xzMkt)
	if len(dense) != 12 {
		t.Errorf("watched market samples = %d, want 12 (every change)", len(dense))
	}
	if len(sparse) != 1 {
		t.Errorf("unwatched market samples = %d, want 1 (hourly)", len(sparse))
	}
}

func TestBidSpreadStableMarket(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 0.3
	f.truePrc[trigMkt] = od * 0.3 // published == true: stable market
	svc, db := newService(t, f, Config{
		Regions:          []market.Region{"us-east-1"},
		BidSpreadMarkets: []market.SpotID{trigMkt},
	})
	svc.OnTick()
	recs := db.BidSpreads()
	if len(recs) != 1 {
		t.Fatalf("bid spread records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Attempts != 1 {
		t.Errorf("stable market took %d attempts, want 1", r.Attempts)
	}
	if r.Intrinsic != r.Published {
		t.Errorf("intrinsic %v != published %v on stable market", r.Intrinsic, r.Published)
	}
}

func TestBidSpreadVolatileMarket(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 0.3
	f.truePrc[trigMkt] = od * 0.55 // true price ran ahead of published
	svc, db := newService(t, f, Config{
		Regions:          []market.Region{"us-east-1"},
		BidSpreadMarkets: []market.SpotID{trigMkt},
	})
	svc.OnTick()
	recs := db.BidSpreads()
	if len(recs) != 1 {
		t.Fatalf("bid spread records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Intrinsic < f.truePrc[trigMkt] {
		t.Errorf("intrinsic %v below the true price %v", r.Intrinsic, f.truePrc[trigMkt])
	}
	if r.Intrinsic <= r.Published {
		t.Errorf("volatile market intrinsic %v should exceed published %v", r.Intrinsic, r.Published)
	}
	if r.Attempts < 2 || r.Attempts > maxBidSpreadAttempts {
		t.Errorf("attempts = %d, want 2..%d (paper: avg 2-3, max 6)", r.Attempts, maxBidSpreadAttempts)
	}
	// The search must not over-pay wildly: the intrinsic estimate stays
	// within the exponential bracket above the true price.
	if r.Intrinsic > f.truePrc[trigMkt]*1.5 {
		t.Errorf("intrinsic %v overshoots true price %v", r.Intrinsic, f.truePrc[trigMkt])
	}
}

func TestRevocationWatch(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 0.3
	svc, db := newService(t, f, Config{
		Regions:           []market.Region{"us-east-1"},
		RevocationMarkets: []market.SpotID{trigMkt},
		RevocationBid:     1.0,
	})
	svc.OnTick() // acquires the watch instance
	if len(f.instances) != 1 {
		t.Fatalf("instances = %d, want the revocation watch instance", len(f.instances))
	}
	var instID cloud.InstanceID
	for id := range f.instances {
		instID = id
	}

	// Hold for 3 hours, then the platform revokes.
	f.advance(3 * time.Hour)
	svc.OnTick() // accrues holding cost
	f.revoke(instID)
	f.advance(5 * time.Minute)
	svc.OnTick()

	recs := db.Revocations()
	if len(recs) != 1 {
		t.Fatalf("revocation records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Market != trigMkt {
		t.Errorf("market = %v", r.Market)
	}
	if r.Held < 3*time.Hour || r.Held > 4*time.Hour {
		t.Errorf("held = %v, want ~3h", r.Held)
	}
	if r.Bid != od {
		t.Errorf("bid = %v, want %v", r.Bid, od)
	}
	// After revocation the watcher re-acquires on a later tick.
	f.advance(5 * time.Minute)
	svc.OnTick()
	if svc.Stats().Revocations != 1 {
		t.Errorf("Revocations = %d, want 1", svc.Stats().Revocations)
	}
}

func TestPeriodicODBaseline(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 0.2 // never spikes
	f.odDown[trigMkt] = true
	svc, db := newService(t, f, Config{
		Regions:                []market.Region{"us-east-1"},
		PeriodicODProbesPerDay: 24, // one per hour
		Threshold:              1000,
		DisableFamilyProbing:   true,
	})
	svc.OnTick() // dt = 0: no probes yet
	found := false
	for i := 0; i < 800 && !found; i++ {
		f.advance(time.Hour)
		svc.OnTick()
		found = svc.Stats().ODRejections > 0
	}
	if !found {
		t.Fatal("naive baseline never reached the down market")
	}
	probes := db.ProbesWhere(func(r store.ProbeRecord) bool {
		return r.Trigger == store.TriggerPeriodicOD
	})
	if len(probes) == 0 {
		t.Fatal("no periodic-od probe records")
	}
	// The baseline runs with no market signal: spike counters stay zero.
	if svc.Stats().SpikesSeen != 0 {
		t.Errorf("SpikesSeen = %d under T=1000", svc.Stats().SpikesSeen)
	}
	// The detected market moves onto the recheck schedule and off the
	// round robin.
	if got := len(db.OutagesFor(trigMkt, store.ProbeOnDemand)); got != 1 {
		t.Errorf("outages = %d, want 1", got)
	}
}

func TestAccessors(t *testing.T) {
	f := newFakeProvider()
	svc, db := newService(t, f, Config{Regions: []market.Region{"us-east-1"}})
	if svc.Store() != db {
		t.Error("Store() did not return the service database")
	}
	if svc.Spent() != 0 {
		t.Errorf("Spent() = %v before any probe", svc.Spent())
	}
}

func TestBudgetControllerAccessors(t *testing.T) {
	b := newBudgetController(10, time.Hour, simtime.StudyEpoch)
	if !b.allow(simtime.StudyEpoch, 6) {
		t.Fatal("first charge denied")
	}
	if b.allow(simtime.StudyEpoch, 6) {
		t.Fatal("over-budget charge allowed")
	}
	if b.Denied() != 1 {
		t.Errorf("Denied = %d, want 1", b.Denied())
	}
	if b.Spent() != 6 {
		t.Errorf("Spent = %v, want 6", b.Spent())
	}
	b.refund(2)
	if b.Spent() != 4 {
		t.Errorf("Spent after refund = %v, want 4", b.Spent())
	}
	// Refunding more than spent clamps to zero rather than going
	// negative.
	b.refund(100)
	if b.Spent() != 0 {
		t.Errorf("Spent after over-refund = %v, want 0", b.Spent())
	}
}

func TestRegionStats(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 2
	saMkt := market.SpotID{Zone: "sa-east-1a", Type: "m3.large", Product: market.ProductLinux}
	f.prices[saMkt] = 0.05 // quiet market in another region
	svc, _ := newService(t, f, Config{})
	svc.OnTick()

	rs := svc.RegionStats()
	if len(rs) != 9 {
		t.Fatalf("regions = %d, want 9", len(rs))
	}
	use := rs["us-east-1"]
	if use.SpikesSeen != 1 || use.ODProbes != 1 {
		t.Errorf("us-east-1 stats = %+v, want 1 spike + 1 probe", use)
	}
	sa := rs["sa-east-1"]
	if sa.SpikesSeen != 0 || sa.ODProbes != 0 {
		t.Errorf("sa-east-1 stats = %+v, want quiet", sa)
	}
	// Regional counters sum to the global ones.
	var sumSpikes, sumProbes int64
	for _, c := range rs {
		sumSpikes += c.SpikesSeen
		sumProbes += c.ODProbes
	}
	if sumSpikes != svc.Stats().SpikesSeen || sumProbes != svc.Stats().ODProbes {
		t.Errorf("regional sums %d/%d != global %d/%d",
			sumSpikes, sumProbes, svc.Stats().SpikesSeen, svc.Stats().ODProbes)
	}
}

func TestQuotaErrorsAreNotMarketSignal(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 2
	f.runErr = &apiErrorForTest{}
	svc, db := newService(t, f, Config{Regions: []market.Region{"us-east-1"}})
	svc.OnTick()
	if got := len(db.Probes()); got != 0 {
		t.Errorf("probes recorded = %d, want 0 for quota errors", got)
	}
	if svc.Stats().QuotaSkips == 0 {
		t.Error("QuotaSkips not incremented")
	}
	if got := len(db.OutagesFor(trigMkt, store.ProbeOnDemand)); got != 0 {
		t.Errorf("quota error opened an outage: %d", got)
	}
}

// apiErrorForTest mimics a RequestLimitExceeded error.
type apiErrorForTest struct{}

func (e *apiErrorForTest) Error() string { return "RequestLimitExceeded: scripted" }

// One monitoring tick drives the store's change feed: a live subscriber
// sees the tick's records as typed events — the spike immediately, and
// the tick's probes (plus derived outage transitions) flushed as one
// batched publish round at tick end.
func TestTickFlushDrivesChangeFeed(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 1.5 // spike over the threshold
	f.odDown[trigMkt] = true     // the probe is rejected -> outage opens
	svc, db := newService(t, f, Config{Regions: []market.Region{"us-east-1"}})

	sub := db.Feed().Subscribe(store.SubscribeOptions{
		Filter: store.EventFilter{Market: trigMkt},
	})
	defer sub.Close()

	svc.OnTick()

	byKind := map[store.EventKind]int{}
	for done := false; !done; {
		select {
		case ev := <-sub.Events():
			byKind[ev.Kind]++
		default:
			done = true
		}
	}
	if byKind[store.EventPrice] == 0 {
		t.Error("no price event from the tick's scan")
	}
	if byKind[store.EventSpike] != 1 {
		t.Errorf("spike events = %d, want 1", byKind[store.EventSpike])
	}
	if byKind[store.EventProbe] == 0 {
		t.Error("no probe event from the tick's flush")
	}
	if byKind[store.EventOutageOpen] != 1 {
		t.Errorf("outage-open events = %d, want 1", byKind[store.EventOutageOpen])
	}

	// The flush batches per market: the tick's probe records share one
	// publish round, i.e. the probe events carry one generation.
	evs := db.EventsSince(f.now.Add(-time.Hour), store.EventFilter{Market: trigMkt})
	if len(evs) == 0 {
		t.Fatal("EventsSince found nothing for the tick")
	}
}
