package core

import (
	"time"

	"spotlight/internal/cloud"
	"spotlight/internal/store"
)

// runRevocationWatch maintains the Revocation probing function of
// Chapter 4: on each user-selected volatile market, SpotLight keeps one
// spot instance alive at a configured bid and records how long it
// survives before the platform revokes it. The observations feed the
// mean-time-to-revocation ranking the query interface exposes.
func (s *Service) runRevocationWatch(now time.Time) {
	for _, id := range s.cfg.RevocationMarkets {
		mon, ok := s.mons[id]
		if !ok || !mon.revocation {
			continue
		}
		if mon.revInstance == "" {
			s.acquireRevocationInstance(mon, now)
			continue
		}
		s.watchRevocationInstance(mon, now)
	}
}

func (s *Service) acquireRevocationInstance(mon *marketMon, now time.Time) {
	bid := s.cfg.RevocationBid * mon.od
	if !s.budget.allow(now, bid) {
		s.stats.BudgetDenied++
		return
	}
	req, err := s.prov.RequestSpotInstance(mon.id, bid)
	if err != nil {
		s.budget.refund(bid)
		s.stats.QuotaSkips++
		return
	}
	s.stats.SpotProbes++
	if req.State != cloud.SpotFulfilled {
		s.budget.refund(bid)
		if req.State.Held() {
			_ = s.prov.CancelSpotRequest(req.ID)
		}
		return
	}
	mon.revInstance = req.Instance
	mon.revBid = bid
	mon.revSince = now
	mon.revCharged = time.Hour // the first hour is paid up front
}

func (s *Service) watchRevocationInstance(mon *marketMon, now time.Time) {
	inst, err := s.prov.DescribeInstance(mon.revInstance)
	if err != nil {
		mon.revInstance = ""
		return
	}
	switch inst.State {
	case cloud.InstanceRunning:
		// Accrue the holding cost hour by hour; if the budget runs dry,
		// the experiment pauses.
		held := now.Sub(mon.revSince)
		for mon.revCharged < held {
			if !s.budget.allow(now, mon.price) {
				s.stats.BudgetDenied++
				_ = s.prov.TerminateInstance(mon.revInstance)
				return
			}
			mon.revCharged += time.Hour
		}
	case cloud.InstanceShuttingDown:
		// Two-minute warning in progress; wait for the termination.
	case cloud.InstanceTerminated:
		if inst.Revoked {
			s.stats.Revocations++
			mon.app.AppendRevocation(store.RevocationRecord{
				At:     inst.End,
				Market: mon.id,
				Bid:    mon.revBid,
				Held:   inst.End.Sub(mon.revSince),
			})
		}
		mon.revInstance = ""
	}
}
