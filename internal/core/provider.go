// Package core implements the SpotLight service itself — the paper's
// contribution. SpotLight passively monitors the spot price of every
// market, actively probes the platform when prices spike past a threshold
// (market-based probing, §3.1-3.2), fans out to related markets in the
// same family and across availability zones, periodically verifies spot
// capacity, discovers intrinsic bid prices, and logs everything into its
// database for the query interface.
//
// The service is written against a narrow Provider interface so the same
// code drives the discrete-time simulator in studies and could drive a
// real cloud API in deployment.
package core

import (
	"time"

	"spotlight/internal/cloud"
	"spotlight/internal/market"
)

// Provider is the slice of the platform API SpotLight consumes. It is
// implemented by *cloud.Sim.
type Provider interface {
	// Now returns the platform's current time.
	Now() time.Time
	// Catalog returns the market topology.
	Catalog() *market.Catalog

	// RunInstance requests one on-demand server (§2.2: "a probe is
	// simply a request for an on-demand or spot server").
	RunInstance(m market.SpotID) (cloud.Instance, error)
	// TerminateInstance stops a server SpotLight holds.
	TerminateInstance(id cloud.InstanceID) error
	// DescribeInstance reads back an instance's state.
	DescribeInstance(id cloud.InstanceID) (cloud.Instance, error)

	// RequestSpotInstance submits a one-instance spot bid.
	RequestSpotInstance(m market.SpotID, bid float64) (cloud.SpotRequest, error)
	// CancelSpotRequest cancels an open spot request.
	CancelSpotRequest(id cloud.RequestID) error
	// DescribeSpotRequest reads back a spot request's state.
	DescribeSpotRequest(id cloud.RequestID) (cloud.SpotRequest, error)
	// DescribeSpotRequests reads back many requests of one region in a
	// single API call (Chapter 4: region managers batch state reads to
	// stay inside API limits).
	DescribeSpotRequests(r market.Region, ids []cloud.RequestID) (map[cloud.RequestID]cloud.SpotRequest, error)

	// EachRegionPrice streams the current published spot price of every
	// market in a region — the batched per-region read Chapter 4's
	// region managers use to stay inside API limits.
	EachRegionPrice(r market.Region, fn func(cloud.MarketPrice))
	// OnDemandPrice returns the market's fixed on-demand price.
	OnDemandPrice(m market.SpotID) (float64, error)
}

var _ Provider = (*cloud.Sim)(nil)
