package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"spotlight/internal/market"
)

func TestRunPollsUntilCancelled(t *testing.T) {
	f := newFakeProvider()
	od := odPrice(t, f, trigMkt)
	f.prices[trigMkt] = od * 2
	svc, db := newService(t, f, Config{Regions: []market.Region{"us-east-1"}})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- svc.Run(ctx, time.Millisecond) }()

	// Wait until at least one cycle has run (the spike gets probed).
	deadline := time.After(2 * time.Second)
	for db.ProbeCount() == 0 {
		select {
		case <-deadline:
			t.Fatal("no monitoring cycle ran within 2s")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
}

func TestRunDefaultsInterval(t *testing.T) {
	f := newFakeProvider()
	svc, _ := newService(t, f, Config{Regions: []market.Region{"us-east-1"}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Run must return immediately
	if err := svc.Run(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("Run returned %v, want context.Canceled", err)
	}
}
