package core

import (
	"time"

	"spotlight/internal/cloud"
	"spotlight/internal/store"
)

// maxBidSpreadAttempts caps the spot requests one intrinsic-price search
// may consume. Chapter 4: "with average 2-3 maximum 6 spot bid requests,
// we can find the intrinsic bid prices".
const maxBidSpreadAttempts = 6

// bidSpreadSearch is Chapter 4's BidSpread function: find the lowest bid
// that actually wins a spot instance right now. Because the published
// price lags the true clearing price by the propagation delay (§5.1.2),
// the winning bid can sit above the published price during volatility
// (Fig 5.2). The search climbs exponentially from the published price
// until a bid wins, then binary-searches the bracket.
func (s *Service) bidSpreadSearch(mon *marketMon, now time.Time) {
	published := mon.price
	if published <= 0 {
		return
	}
	maxBid := mon.od * 10 // the platform's bid cap

	attempts := 0
	lastFail := 0.0
	intrinsic := -1.0
	bid := published

	for attempts < maxBidSpreadAttempts {
		outcome, ok := s.tryBid(mon, now, bid)
		if !ok {
			return // quota pressure or budget exhausted; try again next period
		}
		attempts++
		switch outcome {
		case cloud.SpotFulfilled:
			intrinsic = bid
		case cloud.SpotPriceTooLow, cloud.SpotCapacityOversubscribed:
			lastFail = bid
			bid *= 1.4
			if bid > maxBid {
				bid = maxBid
			}
			if bid == lastFail {
				attempts = maxBidSpreadAttempts // cap reached and still losing
			}
			continue
		default:
			// capacity-not-available or bad-parameters: the intrinsic
			// price is undefined while the market has no capacity.
			return
		}
		break
	}
	if intrinsic < 0 {
		return
	}

	// Binary refinement inside (lastFail, intrinsic] while the attempt
	// budget lasts and the bracket is wider than a few price ticks.
	for attempts < maxBidSpreadAttempts && lastFail > 0 && intrinsic-lastFail > 4*cloud.PriceTick {
		mid := (lastFail + intrinsic) / 2
		outcome, ok := s.tryBid(mon, now, mid)
		if !ok {
			break
		}
		attempts++
		switch outcome {
		case cloud.SpotFulfilled:
			intrinsic = mid
		case cloud.SpotPriceTooLow, cloud.SpotCapacityOversubscribed:
			lastFail = mid
		default:
			attempts = maxBidSpreadAttempts
		}
	}

	s.stats.BidSpreadRuns++
	mon.app.AppendBidSpread(store.BidSpreadRecord{
		At:        now,
		Market:    mon.id,
		Published: published,
		Intrinsic: intrinsic,
		Attempts:  attempts,
	})
}

// tryBid issues one spot request at bid and cleans up after itself. It
// returns the request outcome and whether the attempt actually ran.
func (s *Service) tryBid(mon *marketMon, now time.Time, bid float64) (cloud.SpotRequestState, bool) {
	if !s.budget.allow(now, bid) {
		s.stats.BudgetDenied++
		return 0, false
	}
	req, err := s.prov.RequestSpotInstance(mon.id, bid)
	if err != nil {
		s.budget.refund(bid)
		s.stats.QuotaSkips++
		return 0, false
	}
	s.stats.SpotProbes++
	if req.State == cloud.SpotFulfilled {
		// A winning attempt pays for its hour; losing attempts are free.
		if terr := s.prov.TerminateInstance(req.Instance); terr != nil {
			s.stats.QuotaSkips++
		}
		return req.State, true
	}
	s.budget.refund(bid)
	if req.State.Held() {
		_ = s.prov.CancelSpotRequest(req.ID)
	}
	return req.State, true
}
