package core

import (
	"fmt"
	"time"

	"spotlight/internal/cloud"
	"spotlight/internal/market"
	"spotlight/internal/simtime"
)

// fakeProvider is a scripted Provider for unit-testing the probing policy
// without the full simulator. Only markets present in prices are reported
// by EachRegionPrice, which keeps each test focused on a handful of
// markets.
type fakeProvider struct {
	now time.Time
	cat *market.Catalog

	prices  map[market.SpotID]float64 // published price feed
	odDown  map[market.SpotID]bool    // true => RunInstance returns ICC
	spotCNA map[market.SpotID]bool    // true => spot requests go capacity-not-available
	truePrc map[market.SpotID]float64 // bids below this lose (price-too-low)

	instances map[cloud.InstanceID]*cloud.Instance
	requests  map[cloud.RequestID]*cloud.SpotRequest

	nextInst int
	nextReq  int

	runCalls  []market.SpotID
	spotCalls []market.SpotID
	spotBids  []float64

	runErr error // forced error for every RunInstance when set
}

func newFakeProvider() *fakeProvider {
	return &fakeProvider{
		now:       simtime.StudyEpoch,
		cat:       market.New(),
		prices:    make(map[market.SpotID]float64),
		odDown:    make(map[market.SpotID]bool),
		spotCNA:   make(map[market.SpotID]bool),
		truePrc:   make(map[market.SpotID]float64),
		instances: make(map[cloud.InstanceID]*cloud.Instance),
		requests:  make(map[cloud.RequestID]*cloud.SpotRequest),
	}
}

func (f *fakeProvider) advance(d time.Duration) { f.now = f.now.Add(d) }

func (f *fakeProvider) Now() time.Time           { return f.now }
func (f *fakeProvider) Catalog() *market.Catalog { return f.cat }

func (f *fakeProvider) RunInstance(m market.SpotID) (cloud.Instance, error) {
	f.runCalls = append(f.runCalls, m)
	if f.runErr != nil {
		return cloud.Instance{}, f.runErr
	}
	if f.odDown[m] {
		return cloud.Instance{}, &cloud.APIError{
			Code:    cloud.ErrInsufficientCapacity,
			Message: "scripted outage",
		}
	}
	f.nextInst++
	inst := &cloud.Instance{
		ID:     cloud.InstanceID(fmt.Sprintf("i-fake%04d", f.nextInst)),
		Market: m,
		State:  cloud.InstanceRunning,
		Launch: f.now,
	}
	f.instances[inst.ID] = inst
	return *inst, nil
}

func (f *fakeProvider) TerminateInstance(id cloud.InstanceID) error {
	inst, ok := f.instances[id]
	if !ok {
		return &cloud.APIError{Code: cloud.ErrNotFound, Message: string(id)}
	}
	inst.State = cloud.InstanceTerminated
	inst.End = f.now
	return nil
}

// revoke scripts a platform revocation of a held spot instance.
func (f *fakeProvider) revoke(id cloud.InstanceID) {
	inst := f.instances[id]
	inst.State = cloud.InstanceTerminated
	inst.End = f.now
	inst.Revoked = true
}

func (f *fakeProvider) DescribeInstance(id cloud.InstanceID) (cloud.Instance, error) {
	inst, ok := f.instances[id]
	if !ok {
		return cloud.Instance{}, &cloud.APIError{Code: cloud.ErrNotFound, Message: string(id)}
	}
	return *inst, nil
}

func (f *fakeProvider) RequestSpotInstance(m market.SpotID, bid float64) (cloud.SpotRequest, error) {
	f.spotCalls = append(f.spotCalls, m)
	f.spotBids = append(f.spotBids, bid)
	f.nextReq++
	req := &cloud.SpotRequest{
		ID:      cloud.RequestID(fmt.Sprintf("sir-fake%04d", f.nextReq)),
		Market:  m,
		Bid:     bid,
		Created: f.now,
		Updated: f.now,
	}
	f.requests[req.ID] = req
	f.evaluate(req)
	return *req, nil
}

// evaluate applies the scripted market conditions to a request.
func (f *fakeProvider) evaluate(req *cloud.SpotRequest) {
	switch {
	case f.spotCNA[req.Market]:
		req.State = cloud.SpotCapacityNotAvailable
	case req.Bid < f.truePrc[req.Market]:
		req.State = cloud.SpotPriceTooLow
	default:
		f.nextInst++
		inst := &cloud.Instance{
			ID:     cloud.InstanceID(fmt.Sprintf("i-fake%04d", f.nextInst)),
			Market: req.Market,
			Spot:   true,
			Bid:    req.Bid,
			State:  cloud.InstanceRunning,
			Launch: f.now,
		}
		f.instances[inst.ID] = inst
		req.Instance = inst.ID
		req.State = cloud.SpotFulfilled
	}
	req.Updated = f.now
}

func (f *fakeProvider) CancelSpotRequest(id cloud.RequestID) error {
	req, ok := f.requests[id]
	if !ok {
		return &cloud.APIError{Code: cloud.ErrNotFound, Message: string(id)}
	}
	if req.State.Held() {
		req.State = cloud.SpotCancelled
	}
	return nil
}

func (f *fakeProvider) DescribeSpotRequest(id cloud.RequestID) (cloud.SpotRequest, error) {
	req, ok := f.requests[id]
	if !ok {
		return cloud.SpotRequest{}, &cloud.APIError{Code: cloud.ErrNotFound, Message: string(id)}
	}
	// Held requests are re-evaluated against current conditions, like the
	// real platform does every tick.
	if req.State.Held() {
		req.State = cloud.SpotPendingEvaluation
		f.evaluate(req)
	}
	return *req, nil
}

func (f *fakeProvider) DescribeSpotRequests(r market.Region, ids []cloud.RequestID) (map[cloud.RequestID]cloud.SpotRequest, error) {
	out := make(map[cloud.RequestID]cloud.SpotRequest, len(ids))
	for _, id := range ids {
		req, err := f.DescribeSpotRequest(id)
		if err != nil {
			continue
		}
		if req.Market.Region() != r {
			continue
		}
		out[id] = req
	}
	return out, nil
}

func (f *fakeProvider) EachRegionPrice(r market.Region, fn func(cloud.MarketPrice)) {
	for _, id := range f.cat.SpotMarkets() {
		if id.Region() != r {
			continue
		}
		price, ok := f.prices[id]
		if !ok {
			continue
		}
		od, err := f.cat.SpotODPrice(id)
		if err != nil {
			continue
		}
		fn(cloud.MarketPrice{ID: id, Spot: price, OnDemand: od})
	}
}

func (f *fakeProvider) OnDemandPrice(m market.SpotID) (float64, error) {
	return f.cat.SpotODPrice(m)
}

var _ Provider = (*fakeProvider)(nil)

// countRuns counts RunInstance calls per market.
func (f *fakeProvider) countRuns(m market.SpotID) int {
	n := 0
	for _, c := range f.runCalls {
		if c == m {
			n++
		}
	}
	return n
}
