package core

import (
	"context"
	"time"
)

// Run drives the service in real time: one monitoring cycle every
// pollInterval until ctx is cancelled. This is the deployment loop for a
// live provider (the discrete-time studies call OnTick directly instead,
// coupled to the simulator's ticks).
//
// The paper's prototype polled EC2 continuously for three months; Run is
// that loop. It returns ctx.Err() on cancellation.
func (s *Service) Run(ctx context.Context, pollInterval time.Duration) error {
	if pollInterval <= 0 {
		pollInterval = time.Minute
	}
	ticker := time.NewTicker(pollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			s.OnTick()
		}
	}
}
