package fleet

import (
	"math"
	"sync"
	"testing"
	"time"

	"spotlight/internal/cloud"
	"spotlight/internal/market"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

var (
	mktX = market.SpotID{Zone: "us-east-1a", Type: "c3.2xlarge", Product: market.ProductLinux}
	mktY = market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
)

// rig is one self-contained manager test bed: a stepped simulator for
// instances, a hand-fed store for the advisor and the change feed.
type rig struct {
	sim *cloud.Sim
	db  *store.Store
	cat *market.Catalog
}

func newRig(t *testing.T) *rig {
	t.Helper()
	cat := market.New()
	sim, err := cloud.New(cat, cloud.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// A few ticks so every market has a published price to clear against.
	for i := 0; i < 3; i++ {
		sim.Step()
	}
	return &rig{sim: sim, db: store.New(), cat: cat}
}

// price feeds the store a flat price history for id over the trailing
// window, making it an advisor candidate.
func (r *rig) price(id market.SpotID, p float64) {
	now := r.sim.Now()
	for i := 0; i < 6; i++ {
		r.db.RecordPrice(id, store.PricePoint{At: now.Add(-time.Duration(i) * time.Hour), Price: p})
	}
}

func (r *rig) manager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	cfg.Sim, cfg.DB, cfg.Cat = r.sim, r.db, r.cat
	if cfg.Target == 0 {
		cfg.Target = 2
	}
	if cfg.Constraints.Regions == nil {
		cfg.Constraints = api.AdviseConstraints{Regions: []string{"us-east-1"}}
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestThresholdBid(t *testing.T) {
	p := &Threshold{}
	if got := p.Bid(0.5, 0.05); got != 0.5 {
		t.Errorf("default threshold bid = %g, want the on-demand price", got)
	}
	p = &Threshold{Multiple: 1.5}
	if got := p.Bid(0.5, 0.05); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("1.5x threshold bid = %g, want 0.75", got)
	}
}

func TestFeedbackControlAdapts(t *testing.T) {
	p := &FeedbackControl{}
	neutral := p.Bid(1, 0)
	if neutral != 1.0 {
		t.Errorf("fresh controller bid = %g, want 1.0 (no error signal yet)", neutral)
	}
	// Fleet fully down: the bid must rise.
	p.Observe(Observation{Running: 0, Target: 4})
	if up := p.Bid(1, 0); up <= neutral {
		t.Errorf("bid after starvation = %g, want above %g", up, neutral)
	}
	// Sustained health: the bid relaxes below the threshold policy's and
	// respects the output floor.
	for i := 0; i < 100; i++ {
		p.Observe(Observation{Running: 4, Target: 4})
	}
	low := p.Bid(1, 0)
	if low >= 1.0 {
		t.Errorf("bid after sustained health = %g, want below 1.0", low)
	}
	if low < fcMinMultiple {
		t.Errorf("bid %g broke the %g floor", low, fcMinMultiple)
	}
	// Anti-windup: a long healthy stretch must not leave the controller
	// saturated — starvation pulls it back above 1 within a bounded number
	// of observations.
	for i := 0; i < 30; i++ {
		p.Observe(Observation{Running: 0, Target: 4})
	}
	if rec := p.Bid(1, 0); rec <= 1.0 {
		t.Errorf("bid after renewed starvation = %g, want above 1.0", rec)
	}
	// A zero-target observation is ignored, not a division by zero.
	p.Observe(Observation{Running: 0, Target: 0})
}

func TestBilledHours(t *testing.T) {
	cases := []struct {
		dur     time.Duration
		revoked bool
		want    float64
	}{
		{30 * time.Minute, false, 1}, // one-hour minimum
		{61 * time.Minute, false, 2}, // rounds up to whole hours
		{2 * time.Hour, false, 2},
		{-5 * time.Minute, false, 1},
		{30 * time.Minute, true, 0}, // revoked: interrupted hour free
		{90 * time.Minute, true, 1},
		{2 * time.Hour, true, 2},
	}
	for _, tc := range cases {
		if got := billedHours(tc.dur, tc.revoked); got != tc.want {
			t.Errorf("billedHours(%v, revoked=%v) = %g, want %g", tc.dur, tc.revoked, got, tc.want)
		}
	}
}

func TestClampBid(t *testing.T) {
	if got := clampBid(100, 0.5); got != 5 {
		t.Errorf("over-cap bid = %g, want 10x on-demand", got)
	}
	if got := clampBid(-1, 0.5); got != 0.005 {
		t.Errorf("non-positive bid = %g, want 0.01x on-demand", got)
	}
	if got := clampBid(0.4, 0.5); got != 0.4 {
		t.Errorf("in-range bid = %g, want unchanged", got)
	}
}

func TestManagerFillsToTarget(t *testing.T) {
	r := newRig(t)
	r.price(mktX, 0.05)
	m := r.manager(t, Config{Target: 2})
	defer m.Close(r.sim.Now())

	m.Step(r.sim.Now())
	met := m.Metrics()
	if met.SpotLaunches != 2 || met.Fallbacks != 0 {
		t.Errorf("after one step: %+v, want 2 spot launches and no fallbacks", met)
	}
	if got := met.AvailabilityPcnt(); got != 100 {
		t.Errorf("availability = %g, want 100", got)
	}
	final := m.Close(r.sim.Now())
	if final.Cost <= 0 {
		t.Errorf("closed fleet cost = %g, want the one-hour minimums billed", final.Cost)
	}
}

// lowballPolicy bids below any plausible clearing price, forcing every
// spot attempt into a held request.
type lowballPolicy struct{}

func (lowballPolicy) Name() string              { return "lowball" }
func (lowballPolicy) Bid(od, _ float64) float64 { return od * 1e-9 }
func (lowballPolicy) Observe(Observation)       {}

func TestManagerFallsBackToOnDemand(t *testing.T) {
	r := newRig(t)
	r.price(mktX, 0.05)
	m := r.manager(t, Config{Target: 2, Policy: lowballPolicy{}})
	defer m.Close(r.sim.Now())

	m.Step(r.sim.Now())
	met := m.Metrics()
	if met.SpotLaunches != 0 {
		t.Errorf("lowball policy landed %d spot instances", met.SpotLaunches)
	}
	if met.Fallbacks != 2 {
		t.Errorf("fallbacks = %d, want 2 on-demand placements", met.Fallbacks)
	}
	if got := met.AvailabilityPcnt(); got != 100 {
		t.Errorf("availability = %g, want 100 (fallback keeps the fleet whole)", got)
	}
}

func TestManagerAvoidsSpikedMarketAndMigrates(t *testing.T) {
	r := newRig(t)
	// X is cheaper, so absent events it wins the ranking.
	r.price(mktX, 0.03)
	r.price(mktY, 0.05)
	m := r.manager(t, Config{Target: 1})
	defer m.Close(r.sim.Now())

	m.Step(r.sim.Now())
	if m.slots[0].mkt != mktX {
		t.Fatalf("initial placement on %v, want the cheaper %v", m.slots[0].mkt, mktX)
	}

	// A crossing spike on X must steer the held instance to Y.
	r.db.AppendSpike(store.SpikeEvent{At: r.sim.Now(), Market: mktX, Ratio: 1.8})
	m.Step(r.sim.Now())
	met := m.Metrics()
	if met.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1 (metrics %+v)", met.Migrations, met)
	}
	if m.slots[0].mkt != mktY {
		t.Errorf("post-spike placement on %v, want %v", m.slots[0].mkt, mktY)
	}
	if met.Events == 0 {
		t.Error("no feed events consumed")
	}

	// The flag expires; nothing migrates back on its own (placement is
	// sticky until an event or repatriation says otherwise).
	m.Step(r.sim.Now().Add(2 * time.Hour))
	if got := m.Metrics().Migrations; got != 1 {
		t.Errorf("migrations after expiry = %d, want still 1", got)
	}
}

func TestManagerCountsRevocations(t *testing.T) {
	r := newRig(t)
	r.price(mktX, 0.03)
	m := r.manager(t, Config{Target: 1})
	defer m.Close(r.sim.Now())

	m.Step(r.sim.Now())
	if m.slots[0].id == "" {
		t.Fatal("no instance placed")
	}
	held := m.slots[0]

	// Step the simulator until the platform takes the instance (the
	// threshold bid loses once the price crosses on-demand) or give up.
	revoked := false
	for i := 0; i < 24*12*7; i++ {
		r.sim.Step()
		inst, err := r.sim.DescribeInstance(held.id)
		if err != nil || inst.State != cloud.InstanceRunning {
			revoked = true
			break
		}
	}
	if !revoked {
		t.Skip("seeded run never revoked the instance; nothing to assert")
	}
	m.Step(r.sim.Now())
	met := m.Metrics()
	if met.Revocations != 1 {
		t.Errorf("revocations = %d, want 1 (metrics %+v)", met.Revocations, met)
	}
	if _, bad := m.avoid[held.mkt]; !bad {
		t.Error("revoked market not in the avoid set")
	}
}

// TestManagerConcurrentFeed exercises the feed path under the race
// detector: a writer goroutine appends spikes and prices while the
// manager steps, mirroring a live monitoring service feeding the store
// as the fleet loop runs.
func TestManagerConcurrentFeed(t *testing.T) {
	r := newRig(t)
	r.price(mktX, 0.03)
	r.price(mktY, 0.05)
	m := r.manager(t, Config{Target: 2})

	const ticks = 50
	var wg sync.WaitGroup
	// The appender signals after each publish, so every Step has at least
	// one fresh event buffered — while the next append races the drain,
	// which is the interleaving the race detector is here to check.
	appended := make(chan struct{}, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		at := r.sim.Now()
		for i := 0; i < ticks; i++ {
			r.db.AppendSpike(store.SpikeEvent{At: at, Market: mktX, Ratio: 1.5})
			r.db.RecordPrice(mktY, store.PricePoint{At: at, Price: 0.05})
			appended <- struct{}{}
		}
	}()
	now := r.sim.Now()
	for i := 0; i < ticks; i++ {
		<-appended
		m.Step(now.Add(time.Duration(i) * 5 * time.Minute))
	}
	wg.Wait()
	met := m.Close(r.sim.Now())
	if met.Events == 0 {
		t.Error("no events consumed from the concurrent feed")
	}
	if met.Ticks != ticks {
		t.Errorf("ticks = %d, want %d", met.Ticks, ticks)
	}
}
