package fleet

import "spotlight/internal/obs"

// Scrape-time fleet metrics. Manager is single-goroutine (Step owns all
// state), so the registry's collectors cannot read m.m directly — a
// scrape racing a Step would tear the struct. Instead Step publishes an
// immutable snapshot through an atomic pointer after each cycle and the
// collectors read that; the steady-state cost is one pointer store per
// tick.

// publishSnap is called at the end of every Step (and by EnableMetrics
// for a pre-tick scrape baseline).
func (m *Manager) publishSnap() {
	snap := m.m
	m.obsSnap.Store(&snap)
}

// EnableMetrics registers the fleet's lifetime accounting as scrape-time
// collectors over the per-tick snapshot. A nil registry is a no-op.
func (m *Manager) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.publishSnap()
	load := func() Metrics {
		if p := m.obsSnap.Load(); p != nil {
			return *p
		}
		return Metrics{}
	}
	counter := func(name, help string, val func(Metrics) float64) {
		reg.CounterFunc(name, help, func() float64 { return val(load()) })
	}
	counter("spotlight_fleet_ticks_total", "Management cycles run.",
		func(s Metrics) float64 { return float64(s.Ticks) })
	counter("spotlight_fleet_spot_launches_total", "Successful spot placements.",
		func(s Metrics) float64 { return float64(s.SpotLaunches) })
	counter("spotlight_fleet_fallbacks_total", "On-demand fallback placements.",
		func(s Metrics) float64 { return float64(s.Fallbacks) })
	counter("spotlight_fleet_migrations_total", "Event-steered spot-to-spot migrations.",
		func(s Metrics) float64 { return float64(s.Migrations) })
	counter("spotlight_fleet_repatriations_total", "On-demand capacity moved back to spot.",
		func(s Metrics) float64 { return float64(s.Repatriations) })
	counter("spotlight_fleet_revocations_total", "Fleet instances revoked by price.",
		func(s Metrics) float64 { return float64(s.Revocations) })
	counter("spotlight_fleet_events_total", "Change-feed events consumed.",
		func(s Metrics) float64 { return float64(s.Events) })
	counter("spotlight_fleet_lagged_total", "Feed overflows (forced resubscribes).",
		func(s Metrics) float64 { return float64(s.Lagged) })
	reg.GaugeFunc("spotlight_fleet_cost_dollars",
		"Total dollars billed to the fleet's instances so far.",
		func() float64 { return load().Cost })
	reg.GaugeFunc("spotlight_fleet_availability_pcnt",
		"Mean fraction of the target held, in percent.",
		func() float64 { return load().AvailabilityPcnt() })
	reg.GaugeFunc("spotlight_fleet_target",
		"Desired instance count.",
		func() float64 { return float64(load().Target) })
}
