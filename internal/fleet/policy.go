package fleet

// BidPolicy decides what to bid for spot capacity. The manager calls Bid
// when it places an instance and Observe once per tick with the fleet's
// measured state, so a policy can be a fixed rule (Threshold) or a
// closed feedback loop (FeedbackControl).
type BidPolicy interface {
	// Name labels the policy in metrics and comparison tables.
	Name() string
	// Bid returns the maximum price to offer for one instance, given the
	// market's on-demand price and current published spot price. The
	// manager clamps the result to the platform's (0, 10x on-demand]
	// acceptance range.
	Bid(onDemand, spot float64) float64
	// Observe feeds the tick's fleet state back to the policy.
	Observe(o Observation)
}

// Observation is one tick's fleet state, the feedback signal policies
// adapt to.
type Observation struct {
	// Running and Target are the held vs desired instance counts.
	Running, Target int
	// Revocations counts platform revocations detected this tick.
	Revocations int
}

// Threshold is the paper's bidding policy (§2.1.2): bid the on-demand
// price (times an optional multiple). The insight behind SpotLight's
// stability ranking is that at this bid, mean time to revocation is the
// window between on-demand price crossings — the policy itself never
// adapts.
type Threshold struct {
	// Multiple scales the on-demand price; 0 means 1.0 (bid exactly the
	// on-demand price).
	Multiple float64
}

// Name implements BidPolicy.
func (t *Threshold) Name() string { return "threshold" }

// Bid implements BidPolicy: a fixed multiple of the on-demand price.
func (t *Threshold) Bid(onDemand, _ float64) float64 {
	m := t.Multiple
	if m <= 0 {
		m = 1.0
	}
	return m * onDemand
}

// Observe implements BidPolicy; the threshold policy ignores feedback.
func (t *Threshold) Observe(Observation) {}

// FeedbackControl adapts the bid with a PI controller on availability
// error, after Li/Kihl/Robertsson's feedback-control bidding mechanism
// (arXiv 1708.01391): the controller tracks an availability setpoint,
// raising the bid multiple when the fleet runs below target (lost
// auctions, revocations) and relaxing it toward the floor when the
// target is met — paying the smallest premium that sustains the
// requested availability, instead of the threshold policy's fixed price.
type FeedbackControl struct {
	// Target is the availability setpoint in (0, 1]; 0 means 0.97.
	Target float64
	// Kp and Ki are the proportional and integral gains; 0 means the
	// defaults (2.0 and 0.5 per tick).
	Kp, Ki float64

	lastErr  float64
	integral float64
}

// Controller defaults and output clamps. The bid multiple rides over the
// on-demand price: the floor keeps the policy cheap when the fleet is
// healthy, the ceiling stays under the platform's 10x bid cap.
const (
	fcDefaultTarget = 0.97
	fcDefaultKp     = 2.0
	fcDefaultKi     = 0.5
	fcMinMultiple   = 0.2
	fcMaxMultiple   = 9.5
	fcIntegralClamp = 20.0
)

// Name implements BidPolicy.
func (f *FeedbackControl) Name() string { return "feedback-control" }

// Bid implements BidPolicy: the controller's current multiple of the
// on-demand price.
func (f *FeedbackControl) Bid(onDemand, _ float64) float64 {
	return f.multiple() * onDemand
}

// Observe implements BidPolicy: accumulate the availability error. The
// integral term is clamped (anti-windup) so a long outage does not leave
// the controller saturated for hours after recovery.
func (f *FeedbackControl) Observe(o Observation) {
	if o.Target <= 0 {
		return
	}
	e := f.target() - float64(o.Running)/float64(o.Target)
	f.lastErr = e
	f.integral += e
	if f.integral > fcIntegralClamp {
		f.integral = fcIntegralClamp
	}
	if f.integral < -fcIntegralClamp {
		f.integral = -fcIntegralClamp
	}
}

func (f *FeedbackControl) target() float64 {
	if f.Target > 0 && f.Target <= 1 {
		return f.Target
	}
	return fcDefaultTarget
}

// multiple is the positional PI output: 1.0 (the threshold policy's bid)
// plus the proportional-integral correction on the availability error,
// clamped to the output range. Between Observes the output is constant.
func (f *FeedbackControl) multiple() float64 {
	kp, ki := f.Kp, f.Ki
	if kp == 0 {
		kp = fcDefaultKp
	}
	if ki == 0 {
		ki = fcDefaultKi
	}
	m := 1.0 + kp*f.lastErr + ki*f.integral
	if m < fcMinMultiple {
		return fcMinMultiple
	}
	if m > fcMaxMultiple {
		return fcMaxMultiple
	}
	return m
}
