// Package fleet closes SpotLight's observe→decide→act loop: a simulated
// fleet manager that holds a portfolio of instances over internal/cloud,
// steers placement with the advisor's rankings, and reacts to the
// store's live change feed — the same events /v2/watch streams — with
// replacement policies: spot→spot migration away from spiking or failing
// markets, on-demand fallback when no spot placement lands, and periodic
// repatriation of fallback capacity back onto spot.
//
// Bidding is pluggable (policy.go): the paper's threshold policy bids
// the on-demand price; the feedback-control policy adapts the bid to an
// availability setpoint. internal/experiment runs the two head-to-head.
package fleet

import (
	"fmt"
	"sync/atomic"
	"time"

	"spotlight/internal/advisor"
	"spotlight/internal/cloud"
	"spotlight/internal/market"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

// Config parameterizes a Manager.
type Config struct {
	// Sim is the cloud the fleet runs on.
	Sim *cloud.Sim
	// DB is the SpotLight store the advisor ranks from and whose change
	// feed steers replacement.
	DB *store.Store
	// Cat is the market catalog.
	Cat *market.Catalog
	// Advisor, when set, is shared (e.g. the query engine's); nil builds
	// a private one over DB/Cat.
	Advisor *advisor.Advisor
	// Constraints is the workload description placements must satisfy.
	Constraints api.AdviseConstraints
	// Target is the desired instance count.
	Target int
	// Policy decides bids; nil means the threshold policy.
	Policy BidPolicy
	// Window is the advisor's history window; 0 means 6h.
	Window time.Duration
	// AvoidFor is how long an event-flagged market is excluded from
	// placement; 0 means 1h.
	AvoidFor time.Duration
	// SpikeRatio is the spot/on-demand multiple at or above which a spike
	// event triggers avoidance and migration; 0 means 1.0 (any crossing
	// of the on-demand price).
	SpikeRatio float64
	// RepatriateEvery is the tick interval between attempts to move
	// on-demand fallback capacity back to spot; 0 means 12 (one hour at
	// 5-minute ticks).
	RepatriateEvery int
}

// Metrics is the manager's lifetime accounting.
type Metrics struct {
	// Policy is the bid policy's name.
	Policy string
	// Ticks and Target describe the measurement.
	Ticks  int
	Target int
	// Cost is the total dollars billed to the fleet's instances, under
	// the platform's charging model (one-hour minimum and increments; a
	// revoked instance's interrupted hour is free).
	Cost float64
	// availSum accumulates running/target per tick; AvailabilityPcnt
	// reports it.
	availSum float64
	// SpotLaunches and Fallbacks count successful spot and on-demand
	// placements; Migrations counts event-steered spot→spot moves;
	// Repatriations counts on-demand→spot moves back.
	SpotLaunches  int
	Fallbacks     int
	Migrations    int
	Repatriations int
	// Revocations counts the fleet's own instances terminated by price.
	Revocations int
	// Events counts feed events consumed; Lagged counts feed overflows
	// (each forces a resubscribe).
	Events int
	Lagged int
}

// AvailabilityPcnt is the mean fraction of the target held, in percent.
func (m Metrics) AvailabilityPcnt() float64 {
	if m.Ticks == 0 {
		return 0
	}
	return 100 * m.availSum / float64(m.Ticks)
}

// slot is one unit of the portfolio: empty (id "") or holding one
// instance.
type slot struct {
	id       cloud.InstanceID
	mkt      market.SpotID
	spot     bool
	rate     float64 // $/hour the instance bills at
	launched time.Time
}

// Manager holds the portfolio. It is single-goroutine: call Step once
// per simulation tick and Close when done. The change feed it subscribes
// to is written by the monitoring service on the same tick cadence, so
// draining it inside Step observes every event exactly once.
type Manager struct {
	cfg   Config
	adv   *advisor.Advisor
	cons  advisor.Constraints
	sub   *store.Subscription
	slots []slot

	// avoid maps event-flagged markets to the instant the flag expires;
	// outage tracks feed-reported open spot outages.
	avoid  map[market.SpotID]time.Time
	outage map[market.SpotID]bool

	tick int
	m    Metrics

	// obsSnap is the scrape-safe copy of m, republished after every Step
	// (see metrics.go); collectors read it instead of racing m.
	obsSnap atomic.Pointer[Metrics]
}

// New validates the config and builds a manager with an armed feed
// subscription. The constraints are normalized once, with the candidate
// bound raised to the advisor's maximum so placement has alternatives to
// walk when the top market is avoided.
func New(cfg Config) (*Manager, error) {
	if cfg.Sim == nil || cfg.DB == nil || cfg.Cat == nil {
		return nil, fmt.Errorf("fleet: Sim, DB, and Cat are required")
	}
	if cfg.Target <= 0 {
		return nil, fmt.Errorf("fleet: Target must be positive, got %d", cfg.Target)
	}
	if cfg.Policy == nil {
		cfg.Policy = &Threshold{}
	}
	if cfg.Window <= 0 {
		cfg.Window = 6 * time.Hour
	}
	if cfg.AvoidFor <= 0 {
		cfg.AvoidFor = time.Hour
	}
	if cfg.SpikeRatio <= 0 {
		cfg.SpikeRatio = 1.0
	}
	if cfg.RepatriateEvery <= 0 {
		cfg.RepatriateEvery = 12
	}
	adv := cfg.Advisor
	if adv == nil {
		adv = advisor.New(cfg.DB, cfg.Cat)
	}
	wire := cfg.Constraints
	wire.N = advisor.MaxN
	cons, err := adv.Normalize(wire)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	m := &Manager{
		cfg:    cfg,
		adv:    adv,
		cons:   cons,
		slots:  make([]slot, cfg.Target),
		avoid:  make(map[market.SpotID]time.Time),
		outage: make(map[market.SpotID]bool),
	}
	m.m.Policy = cfg.Policy.Name()
	m.m.Target = cfg.Target
	m.subscribe()
	return m, nil
}

// subscribe (re)opens the event subscription. A single-region constraint
// narrows the filter at the feed, not in the drain loop.
func (m *Manager) subscribe() {
	var filter store.EventFilter
	if len(m.cons.Regions) == 1 {
		filter.Region = m.cons.Regions[0]
	}
	filter.Kinds = []store.EventKind{
		store.EventSpike, store.EventRevocation,
		store.EventOutageOpen, store.EventOutageClose,
	}
	m.sub = m.cfg.DB.Feed().Subscribe(store.SubscribeOptions{Filter: filter, Buffer: 4096})
}

// Step runs one management cycle at the simulation clock's now: drain
// the change feed into the avoid/outage sets, account for instances the
// platform took, migrate off flagged markets, fill empty slots, and
// (periodically) repatriate on-demand fallback capacity to spot. Call it
// after the monitoring service's OnTick so the tick's events are visible.
func (m *Manager) Step(now time.Time) {
	m.tick++
	revokedBefore := m.m.Revocations
	m.drainEvents(now)
	m.expireAvoids(now)
	m.reap(now)
	m.migrate(now)
	m.fill(now)
	if m.tick%m.cfg.RepatriateEvery == 0 {
		m.repatriate(now)
	}

	running := 0
	for _, s := range m.slots {
		if s.id != "" {
			running++
		}
	}
	m.m.Ticks++
	m.m.availSum += float64(running) / float64(m.cfg.Target)
	m.cfg.Policy.Observe(Observation{
		Running:     running,
		Target:      m.cfg.Target,
		Revocations: m.m.Revocations - revokedBefore,
	})
	m.publishSnap()
}

// drainEvents consumes everything the feed has buffered without
// blocking. A lagged marker ends the subscription; the manager
// resubscribes and carries on — the avoid set degrades gracefully
// because flags expire anyway.
func (m *Manager) drainEvents(now time.Time) {
	for {
		select {
		case ev, ok := <-m.sub.Events():
			if !ok {
				m.subscribe()
				return
			}
			if ev.Kind == store.EventLagged {
				m.m.Lagged++
				m.sub.Close()
				m.subscribe()
				return
			}
			m.m.Events++
			m.handleEvent(ev, now)
		default:
			return
		}
	}
}

// handleEvent folds one feed event into the placement state.
func (m *Manager) handleEvent(ev store.Event, now time.Time) {
	switch ev.Kind {
	case store.EventSpike:
		if ev.Spike != nil && ev.Spike.Ratio >= m.cfg.SpikeRatio {
			m.avoid[ev.Market] = now.Add(m.cfg.AvoidFor)
		}
	case store.EventRevocation:
		// Someone's on-demand-priced bid just lost here; ours would too.
		m.avoid[ev.Market] = now.Add(m.cfg.AvoidFor)
	case store.EventOutageOpen:
		if ev.Outage != nil && ev.Outage.Kind == store.ProbeSpot {
			m.outage[ev.Market] = true
		}
	case store.EventOutageClose:
		if ev.Outage != nil && ev.Outage.Kind == store.ProbeSpot {
			delete(m.outage, ev.Market)
		}
	}
}

func (m *Manager) expireAvoids(now time.Time) {
	for id, until := range m.avoid {
		if !until.After(now) {
			delete(m.avoid, id)
		}
	}
}

// flagged reports whether placement should stay away from id right now.
func (m *Manager) flagged(id market.SpotID) bool {
	if m.outage[id] {
		return true
	}
	_, bad := m.avoid[id]
	return bad
}

// reap closes slots whose instances the platform terminated, billing
// them: a revocation's interrupted hour is free, everything else pays
// the one-hour minimum rounded up to whole hours — the simulator's own
// charging model, mirrored per instance.
func (m *Manager) reap(now time.Time) {
	for i := range m.slots {
		s := &m.slots[i]
		if s.id == "" {
			continue
		}
		inst, err := m.cfg.Sim.DescribeInstance(s.id)
		if err != nil {
			// Pruned past the simulator's retention: long terminated.
			m.m.Cost += billedHours(now.Sub(s.launched), false) * s.rate
			*s = slot{}
			continue
		}
		if inst.State == cloud.InstanceRunning {
			continue
		}
		// A live revocation warning means the platform is taking the
		// instance (user terminations clear WarningAt); Revoked is only
		// set once the two-minute grace elapses, which can straddle a
		// tick boundary.
		revoked := inst.Revoked || (inst.Spot && !inst.WarningAt.IsZero())
		end := inst.End
		if end.IsZero() {
			end = now
		}
		if revoked {
			m.m.Revocations++
			// The revoked market just proved hostile to our bid level.
			m.avoid[s.mkt] = now.Add(m.cfg.AvoidFor)
		}
		m.m.Cost += billedHours(end.Sub(s.launched), revoked) * s.rate
		*s = slot{}
	}
}

// migrate moves running spot instances off flagged markets: acquire the
// replacement first, and only then terminate the old instance, so a
// failed placement degrades to "stay put" instead of "go dark".
func (m *Manager) migrate(now time.Time) {
	for i := range m.slots {
		s := &m.slots[i]
		if s.id == "" || !s.spot || !m.flagged(s.mkt) {
			continue
		}
		old := *s
		repl, ok := m.acquire(now, old.mkt)
		if !ok {
			continue
		}
		m.release(old, now)
		m.slots[i] = repl
		m.m.Migrations++
	}
}

// fill places instances into empty slots: spot via the advisor's ranking
// and the bid policy, falling back to on-demand when no spot placement
// lands.
func (m *Manager) fill(now time.Time) {
	for i := range m.slots {
		if m.slots[i].id != "" {
			continue
		}
		if s, ok := m.acquire(now, market.SpotID{}); ok {
			m.slots[i] = s
			continue
		}
		if s, ok := m.acquireOnDemand(now); ok {
			m.slots[i] = s
			m.m.Fallbacks++
		}
	}
}

// repatriate retries spot for slots running on-demand fallback capacity,
// terminating the fallback only once the spot replacement is running.
func (m *Manager) repatriate(now time.Time) {
	for i := range m.slots {
		s := &m.slots[i]
		if s.id == "" || s.spot {
			continue
		}
		old := *s
		repl, ok := m.acquire(now, market.SpotID{})
		if !ok {
			return // no spot capacity anywhere; don't burn API budget per slot
		}
		m.release(old, now)
		m.slots[i] = repl
		m.m.Repatriations++
	}
}

// spotAttempts bounds how many ranked candidates one placement walks.
const spotAttempts = 3

// acquire tries to land one spot instance on the advisor's best
// non-flagged candidates. exclude additionally skips one market (the one
// being migrated away from).
func (m *Manager) acquire(now time.Time, exclude market.SpotID) (slot, bool) {
	tried := 0
	for _, cand := range m.candidates(now) {
		id, err := market.ParseSpotID(cand.Market)
		if err != nil || id == exclude || m.flagged(id) || cand.LiveOutage {
			continue
		}
		if tried++; tried > spotAttempts {
			break
		}
		spotPx, _ := m.cfg.Sim.SpotPrice(id)
		bid := clampBid(m.cfg.Policy.Bid(cand.OnDemandPrice, spotPx), cand.OnDemandPrice)
		req, err := m.cfg.Sim.RequestSpotInstance(id, bid)
		if err != nil {
			return slot{}, false // API budget or quota: stop placing this tick
		}
		if req.State != cloud.SpotFulfilled {
			_ = m.cfg.Sim.CancelSpotRequest(req.ID)
			continue
		}
		inst, err := m.cfg.Sim.DescribeInstance(req.Instance)
		if err != nil {
			continue
		}
		m.m.SpotLaunches++
		return slot{
			id:       inst.ID,
			mkt:      id,
			spot:     true,
			rate:     inst.LaunchPrice(),
			launched: inst.Launch,
		}, true
	}
	return slot{}, false
}

// acquireOnDemand lands the on-demand fallback on the best-ranked
// market's tier (capacity failures walk down the ranking, like spot).
func (m *Manager) acquireOnDemand(now time.Time) (slot, bool) {
	tried := 0
	for _, cand := range m.candidates(now) {
		id, err := market.ParseSpotID(cand.Market)
		if err != nil {
			continue
		}
		if tried++; tried > spotAttempts {
			break
		}
		inst, err := m.cfg.Sim.RunInstance(id)
		if err != nil {
			continue // od capacity can be out too; try the next market
		}
		return slot{
			id:       inst.ID,
			mkt:      id,
			spot:     false,
			rate:     cand.OnDemandPrice,
			launched: inst.Launch,
		}, true
	}
	return slot{}, false
}

// candidates asks the advisor for the ranked markets over the trailing
// window. The advisor memoizes per generation, so repeated calls within
// one tick cost one map probe.
func (m *Manager) candidates(now time.Time) []api.AdviseCandidate {
	return m.adv.Advise(m.cons, now.Add(-m.cfg.Window), now)
}

// release terminates a live instance and bills its runtime (user
// termination: one-hour minimum, whole-hour rounding).
func (m *Manager) release(s slot, now time.Time) {
	_ = m.cfg.Sim.TerminateInstance(s.id)
	m.m.Cost += billedHours(now.Sub(s.launched), false) * s.rate
}

// Close finalizes the manager: terminate and bill the remaining
// portfolio at now, close the feed subscription, and return the final
// metrics.
func (m *Manager) Close(now time.Time) Metrics {
	for i := range m.slots {
		if m.slots[i].id != "" {
			m.release(m.slots[i], now)
			m.slots[i] = slot{}
		}
	}
	m.sub.Close()
	return m.m
}

// Metrics returns a snapshot of the accounting so far.
func (m *Manager) Metrics() Metrics { return m.m }

// clampBid keeps a policy's bid inside the platform's acceptance range
// (0, 10x on-demand]; the simulator parks anything outside it in
// bad-parameters.
func clampBid(bid, od float64) float64 {
	if hi := 10 * od; bid > hi {
		return hi
	}
	if bid <= 0 {
		return 0.01 * od
	}
	return bid
}

// billedHours mirrors the simulator's default charging model (§2.2): a
// one-hour minimum rounded up to whole hours, with a platform
// revocation's interrupted hour free.
func billedHours(dur time.Duration, revoked bool) float64 {
	const inc = time.Hour
	if dur < 0 {
		dur = 0
	}
	if revoked {
		return (dur / inc * inc).Hours()
	}
	if dur < inc {
		dur = inc
	}
	return (((dur + inc - 1) / inc) * inc).Hours()
}
