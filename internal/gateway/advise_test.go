package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

func TestMergeAdvise(t *testing.T) {
	winTo := t0.Add(24 * time.Hour)
	lists := []*api.AdviseResult{
		{From: t0, To: winTo, Candidates: []api.AdviseCandidate{
			{Rank: 1, Market: "mkt-a", Score: 90, PriceSamples: 10},
			{Rank: 2, Market: "mkt-shared", Score: 70, PriceSamples: 3},
		}},
		nil, // a partition with no answer contributes nothing
		{From: t0, To: winTo, Candidates: []api.AdviseCandidate{
			{Rank: 1, Market: "mkt-b", Score: 95, PriceSamples: 8},
			{Rank: 2, Market: "mkt-shared", Score: 72, PriceSamples: 12},
		}},
	}
	got := mergeAdvise(lists, 2)
	if len(got.Candidates) != 2 {
		t.Fatalf("merged candidates = %+v, want the top 2", got.Candidates)
	}
	if got.Candidates[0].Market != "mkt-b" || got.Candidates[1].Market != "mkt-a" {
		t.Errorf("merged order = [%s %s], want [mkt-b mkt-a]", got.Candidates[0].Market, got.Candidates[1].Market)
	}
	for i, c := range got.Candidates {
		if c.Rank != i+1 {
			t.Errorf("rank %d renumbered to %d", i+1, c.Rank)
		}
	}
	if !got.From.Equal(t0) || !got.To.Equal(winTo) {
		t.Errorf("merged window = %s..%s", got.From, got.To)
	}
	// The duplicated market keeps the row with more evidence.
	full := mergeAdvise(lists, 10)
	for _, c := range full.Candidates {
		if c.Market == "mkt-shared" && c.PriceSamples != 12 {
			t.Errorf("shared market kept %d samples, want the 12-sample row", c.PriceSamples)
		}
	}
}

// postAdviseRaw posts an advise request and returns status, headers, body.
func postAdviseRaw(t *testing.T, url string, areq api.AdviseRequest, etag string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(areq)
	req, err := http.NewRequest(http.MethodPost, url+"/v2/advise", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if etag != "" {
		req.Header.Set(api.HeaderIfNoneMatch, etag)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

// seedPrices records a day of hourly samples for id at a flat price.
func seedPrices(db *store.Store, id market.SpotID, price float64) {
	for i := 0; i < 24; i++ {
		db.RecordPrice(id, store.PricePoint{At: t0.Add(time.Duration(i) * time.Hour), Price: price})
	}
}

func TestPartitionedAdviseFanOut(t *testing.T) {
	dbs := []*store.Store{store.New(), store.New()}
	srv0, srv1 := newNode(t, dbs[0]), newNode(t, dbs[1])
	g, err := New(Config{Nodes: []string{srv0.URL, srv1.URL}, Partitioned: true, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	gsrv := gwServer(t, g)

	// Price a handful of markets, each recorded only on its ring owner, so
	// no single node can produce the full ranking.
	perNode := make([]int, len(dbs))
	ids := partitionedMarkets(t, g, len(dbs), 6)
	for i, id := range ids {
		n := g.ring.pick(id.String())
		seedPrices(dbs[n], id, 0.01+0.01*float64(i))
		perNode[n]++
	}
	if perNode[0] == 0 || perNode[1] == 0 {
		t.Fatalf("ring put all markets on one node: %v", perNode)
	}

	areq := api.AdviseRequest{
		AdviseConstraints: api.AdviseConstraints{Regions: []string{"us-east-1"}, N: 10},
		Window:            api.Between(t0, t0.Add(24*time.Hour)),
	}
	resp, body := postAdviseRaw(t, gsrv.URL, areq, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body=%s", resp.StatusCode, body)
	}
	var out api.AdviseResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) != len(ids) {
		t.Fatalf("merged candidates = %d, want all %d priced markets across both partitions", len(out.Candidates), len(ids))
	}
	seen := make(map[int]bool)
	for i, c := range out.Candidates {
		if c.Rank != i+1 {
			t.Errorf("rank %d carries Rank=%d", i+1, c.Rank)
		}
		if i > 0 && out.Candidates[i-1].Score < c.Score {
			t.Errorf("merged ranking not score-descending at %d", i)
		}
		seen[g.ring.pick(c.Market)] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("merged ranking drew from one partition only")
	}

	// A complete fan-out carries a merged gateway ETag, and revalidating
	// with it answers an empty 304 — the merge is skipped entirely when
	// no partition's scope generation moved.
	etag := resp.Header.Get(api.HeaderETag)
	if etag == "" {
		t.Fatal("complete fan-out advise carries no ETag")
	}
	rnm, rnmBody := postAdviseRaw(t, gsrv.URL, areq, etag)
	if rnm.StatusCode != http.StatusNotModified || len(rnmBody) != 0 {
		t.Fatalf("fan-out validator answered %d (%q), want empty 304", rnm.StatusCode, rnmBody)
	}
	if rnmEtag := rnm.Header.Get(api.HeaderETag); rnmEtag != etag {
		t.Errorf("304 ETag = %q, want the merged tag %q", rnmEtag, etag)
	}

	// New data on either partition invalidates the merged tag.
	dbs[g.ring.pick(ids[0].String())].RecordPrice(ids[0], store.PricePoint{At: t0.Add(25 * time.Hour), Price: 0.5})
	fresh, body2 := postAdviseRaw(t, gsrv.URL, areq, etag)
	if fresh.StatusCode != http.StatusOK {
		t.Fatalf("post-append validator answered %d (%q), want a fresh 200", fresh.StatusCode, body2)
	}
	if newTag := fresh.Header.Get(api.HeaderETag); newTag == "" || newTag == etag {
		t.Errorf("post-append ETag = %q, want a new tag (old %q)", newTag, etag)
	}

	// Constraint errors surface as the node's own envelope.
	bad, body := postAdviseRaw(t, gsrv.URL, api.AdviseRequest{
		AdviseConstraints: api.AdviseConstraints{Regions: []string{"mars-north-1"}},
	}, "")
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad-region status = %d body=%s", bad.StatusCode, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Code != api.CodeBadParam {
		t.Errorf("bad-region envelope = %s", body)
	}

	// A dead partition degrades the advise instead of failing it: the
	// live partitions' markets are still ranked, and Partial names the
	// missing node so callers know the ranking is narrower than the fleet.
	srv1.Close()
	degraded, body := postAdviseRaw(t, gsrv.URL, areq, "")
	if degraded.StatusCode != http.StatusOK {
		t.Fatalf("degraded status = %d body=%s", degraded.StatusCode, body)
	}
	var part api.AdviseResponse
	if err := json.Unmarshal(body, &part); err != nil {
		t.Fatal(err)
	}
	if len(part.Partial) != 1 || part.Partial[0] != srv1.URL {
		t.Errorf("degraded partial = %v, want [%s]", part.Partial, srv1.URL)
	}
	if len(part.Candidates) != perNode[0] {
		t.Errorf("degraded candidates = %d, want partition 0's %d markets", len(part.Candidates), perNode[0])
	}
	for _, c := range part.Candidates {
		if g.ring.pick(c.Market) != 0 {
			t.Errorf("degraded ranking includes dead partition's market %s", c.Market)
		}
	}
	if degraded.Header.Get(api.HeaderETag) != "" {
		t.Errorf("degraded advise carries ETag %q; partial responses must not be cacheable", degraded.Header.Get(api.HeaderETag))
	}
}

func TestReplicaAdvisePassthrough(t *testing.T) {
	db := store.New()
	for i, id := range usEastMarkets(t, 4) {
		seedPrices(db, id, 0.02+0.01*float64(i))
	}
	a := query.NewAPI(query.NewEngine(db, market.New()), func() time.Time { return t0.Add(24 * time.Hour) })
	t.Cleanup(a.Shutdown)
	srvA := httptest.NewServer(a.Handler())
	srvB := httptest.NewServer(a.Handler())
	t.Cleanup(srvA.Close)
	t.Cleanup(srvB.Close)
	g, err := New(Config{Nodes: []string{srvA.URL, srvB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	gsrv := gwServer(t, g)

	areq := api.AdviseRequest{
		AdviseConstraints: api.AdviseConstraints{Regions: []string{"us-east-1"}, N: 4},
		Window:            api.Between(t0, t0.Add(24*time.Hour)),
	}
	viaGW, gwBody := postAdviseRaw(t, gsrv.URL, areq, "")
	if viaGW.StatusCode != http.StatusOK {
		t.Fatalf("gateway advise status = %d body=%s", viaGW.StatusCode, gwBody)
	}
	direct, directBody := postAdviseRaw(t, srvA.URL, areq, "")
	if direct.StatusCode != http.StatusOK {
		t.Fatalf("direct advise status = %d", direct.StatusCode)
	}
	if !bytes.Equal(gwBody, directBody) {
		t.Errorf("gateway advise diverged from direct node\n via: %.300s\nnode: %.300s", gwBody, directBody)
	}

	// The upstream ETag passes through, and validators revalidate.
	etag := viaGW.Header.Get(api.HeaderETag)
	if etag == "" || etag != direct.Header.Get(api.HeaderETag) {
		t.Fatalf("proxied advise ETag = %q, direct %q", etag, direct.Header.Get(api.HeaderETag))
	}
	rnm, body := postAdviseRaw(t, gsrv.URL, areq, etag)
	if rnm.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("validator through gateway answered %d (%q), want empty 304", rnm.StatusCode, body)
	}
}
