// Package gateway is SpotLight's scatter-gather front door: one HTTP
// endpoint fanning queries out over N store nodes (spotlightd leaders or
// followers) and reassembling the answers.
//
// Two deployment shapes share the code:
//
//   - Replica fleet (Partitioned=false): every node holds the full
//     store (a leader plus its followers). Each query routes whole to
//     one node — market-scoped queries by consistent hash of the market
//     (per-market cache affinity), scope-less ones by hash of their spec
//     — and the gateway is purely a load spreader.
//   - Partitioned fleet (Partitioned=true): markets are sharded across
//     nodes by the same consistent hash the ingest tier uses.
//     Market-scoped queries route to the owner; the scope-less
//     aggregations (summary, stable, volatile, advise) fan out to every
//     node and the gateway merges the partial results (counters sum
//     exactly, rankings re-rank; see docs/replication.md for the
//     caveats on fallback and predict, whose cross-market context stays
//     partition-local).
//
// A batch envelope is split per node, the node sub-batches run
// concurrently, and per-query error isolation survives the hop: an
// unreachable node fails its own queries with code "upstream" while the
// rest of the batch answers normally.
package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/obs"
	"spotlight/pkg/api"
	"spotlight/pkg/client"
)

// Defaults.
const (
	// defaultTimeout bounds one upstream round trip.
	defaultTimeout = 10 * time.Second
	// defaultVirtualNodes is the ring points per node; 64 keeps the
	// keyspace split within a few percent of even for small fleets.
	defaultVirtualNodes = 64
	// maxBatchBody mirrors the store nodes' envelope bound.
	maxBatchBody = 1 << 20
	// defaultRankN mirrors the store nodes' default ranking size, so a
	// merged fan-out truncates where a single node would have.
	defaultRankN = 10
)

// Config wires one Gateway.
type Config struct {
	// Nodes are the upstream base URLs (at least one).
	Nodes []string
	// Partitioned declares that markets are sharded across Nodes rather
	// than replicated to all of them; it changes routing and turns on
	// fan-out merges for the scope-less aggregations.
	Partitioned bool
	// Timeout bounds each upstream round trip (default 10s).
	Timeout time.Duration
	// VirtualNodes tunes ring granularity (default 64 points per node).
	VirtualNodes int
	// HTTPClient overrides the upstream transport (nil: default).
	HTTPClient *http.Client

	// Retries is how many extra candidates an idempotent call may try
	// after its first choice fails (default 1; negative disables). On a
	// replica fleet retries go to distinct peers; on a partitioned fleet
	// only the owning node has the data, so they re-try it.
	Retries int
	// HedgeAfter, when positive, launches a duplicate attempt at the
	// next candidate if the current one has not answered within this
	// long — tail-latency insurance for replica fleets. 0 disables.
	HedgeAfter time.Duration
	// FailThreshold is how many consecutive failures eject a node from
	// rotation (breaker opens; default 3).
	FailThreshold int
	// EjectFor is how long an ejected node sits out before a trial call
	// may probe it (default 5s).
	EjectFor time.Duration
	// ProbeInterval, when positive, starts a background goroutine that
	// health-polls ejected nodes every interval so they rejoin without
	// waiting for live traffic; stop it with Close. 0 disables.
	ProbeInterval time.Duration
}

// Gateway routes queries across the configured nodes. Build with New;
// serve Handler.
type Gateway struct {
	cfg     Config
	ring    ring
	clients []*client.Client
	proxies []*httputil.ReverseProxy
	rr      atomic.Uint64

	health    *tracker
	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once

	// reg/metrics are armed by EnableMetrics (see metrics.go); the
	// zero-value gwMetrics no-ops on every hot path.
	reg     *obs.Registry
	metrics *gwMetrics
}

// New validates the config and builds the gateway.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("gateway: at least one upstream node is required")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = defaultVirtualNodes
	}
	g := &Gateway{
		cfg:     cfg,
		ring:    newRing(cfg.Nodes, cfg.VirtualNodes),
		clients: make([]*client.Client, len(cfg.Nodes)),
		proxies: make([]*httputil.ReverseProxy, len(cfg.Nodes)),
		metrics: newGwMetrics(len(cfg.Nodes)),
	}
	for i, node := range cfg.Nodes {
		c, err := client.New(node, cfg.HTTPClient)
		if err != nil {
			return nil, fmt.Errorf("gateway: node %d: %w", i, err)
		}
		g.clients[i] = c
		u, err := url.Parse(node)
		if err != nil {
			return nil, fmt.Errorf("gateway: node %d: %w", i, err)
		}
		p := httputil.NewSingleHostReverseProxy(u)
		p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			writeErr(w, http.StatusBadGateway,
				api.Errorf(api.CodeUpstream, "upstream unreachable: %v", err).WithDetail("node", u.Host))
		}
		g.proxies[i] = p
	}
	g.health = newTracker(len(cfg.Nodes), cfg.FailThreshold, cfg.EjectFor)
	if cfg.ProbeInterval > 0 {
		g.probeStop = make(chan struct{})
		g.probeDone = make(chan struct{})
		go g.probeLoop(cfg.ProbeInterval)
	}
	return g, nil
}

// Handler returns the routed HTTP handler: the batch endpoint and the
// aggregated health are gateway-native; everything else (/v1/*,
// /v2/watch) proxies to one routed node, upstream ETags passing through
// untouched.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.Handle(pattern, obs.Instrument(g.reg, route, h))
	}
	handle("POST /v2/query", "/v2/query", g.handleBatch)
	handle("POST /v2/advise", "/v2/advise", g.handleAdvise)
	handle("GET /v2/health", "/v2/health", g.handleHealth)
	handle("GET /v2/watch", "/v2/watch", g.handleWatch)
	if g.reg != nil {
		mux.Handle("GET /metrics", g.reg.TextHandler())
		mux.Handle("GET /v2/metrics", g.reg.JSONHandler())
	}
	handle("/", "/v1/*", g.handleProxy)
	return mux
}

// mergeable reports whether a scope-less query of this kind can be
// fanned out and reassembled from partial stores. Advise qualifies: on a
// partitioned fleet each node ranks only the markets it holds prices
// for, the candidate sets are disjoint, and the union's top N is inside
// the merged per-partition top Ns.
func mergeable(k api.Kind) bool {
	switch k {
	case api.KindSummary, api.KindStable, api.KindVolatile, api.KindAdvise:
		return true
	}
	return false
}

// route picks the owning node for one query; fan is true when the query
// must instead go to every node and merge (partitioned scope-less
// aggregations).
func (g *Gateway) route(q api.Query) (node int, fan bool) {
	if q.Market != "" {
		return g.ring.pick(q.Market), false
	}
	if g.cfg.Partitioned && mergeable(q.Kind) {
		return 0, true
	}
	// Scope-less on a replica fleet (or catalog-backed kinds anywhere):
	// any node can answer; hash the spec so the same question keeps
	// hitting the same node's memoization cache.
	return g.ring.pick(string(q.Kind) + "|" + q.Region + "|" + q.Product + "|" + strconv.Itoa(q.N)), false
}

// handleBatch is the scatter-gather POST /v2/query: split the envelope
// per node, run the node sub-batches concurrently, reassemble in request
// order, merge the fanned-out aggregations.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "bad batch body: %v", err))
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "empty batch: supply at least one query"))
		return
	}
	if len(req.Queries) > api.MaxBatchQueries {
		writeErr(w, http.StatusBadRequest, api.Errorf(api.CodeTooManyQueries, "batch of %d exceeds the limit", len(req.Queries)).
			WithDetail("limit", strconv.Itoa(api.MaxBatchQueries)).
			WithDetail("got", strconv.Itoa(len(req.Queries))))
		return
	}

	results, now, etag := g.scatter(r.Context(), req.Queries)
	if etag != "" {
		if etagMatches(r.Header.Get(api.HeaderIfNoneMatch), etag) {
			w.Header().Set(api.HeaderETag, etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set(api.HeaderETag, etag)
	}
	writeJSON(w, api.BatchResponse{Now: now, Results: results})
}

// etagMatches implements the If-None-Match comparison the store nodes
// use: "*" matches anything, otherwise any listed tag must equal ours.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		if strings.TrimSpace(part) == etag {
			return true
		}
	}
	return false
}

// nodeCall is one upstream sub-batch: which original indexes it answers
// and what came back.
type nodeCall struct {
	idxs    []int
	queries []api.Query
	resp    *api.BatchResponse
	etag    string
	node    int // the node that actually answered (failover may move it)
	err     error
}

// scatter runs the queries across the fleet and reassembles results in
// request order. The returned clock is the newest upstream clock seen.
// The returned ETag is the merged gateway validator — an FNV-64a fold
// of every answering node's own ETag — minted only when every sub-batch
// succeeded and carried a tag; any failure, partial answer, or untagged
// upstream yields "" (no validator is safer than a wrong one).
func (g *Gateway) scatter(ctx context.Context, queries []api.Query) ([]api.Result, time.Time, string) {
	calls := make([]*nodeCall, len(g.clients))
	forNode := func(n int) *nodeCall {
		if calls[n] == nil {
			calls[n] = &nodeCall{}
		}
		return calls[n]
	}
	fanned := make([]bool, len(queries))
	for i, q := range queries {
		node, fan := g.route(q)
		if fan {
			fanned[i] = true
			for n := range g.clients {
				c := forNode(n)
				c.idxs = append(c.idxs, i)
				c.queries = append(c.queries, q)
			}
			continue
		}
		c := forNode(node)
		c.idxs = append(c.idxs, i)
		c.queries = append(c.queries, q)
	}

	cctx, cancel := context.WithTimeout(ctx, g.cfg.Timeout)
	defer cancel()
	var wg sync.WaitGroup
	for n, call := range calls {
		if call == nil {
			continue
		}
		wg.Add(1)
		go func(n int, call *nodeCall) {
			defer wg.Done()
			a := g.batchNode(cctx, n, call.queries)
			call.resp, call.etag, call.node, call.err = a.resp, a.etag, a.node, a.err
		}(n, call)
	}
	wg.Wait()

	var now time.Time
	results := make([]api.Result, len(queries))
	// fanParts[i] collects the per-node results of fanned-out query i;
	// fanMissing[i] the nodes whose share is absent from the merge.
	fanParts := make(map[int][]api.Result)
	fanMissing := make(map[int][]string)
	tagged := true
	var tagParts []string
	for _, call := range calls {
		if call == nil {
			continue
		}
		if call.err != nil {
			tagged = false
			for k, i := range call.idxs {
				if fanned[i] {
					// Degrade, don't die: the merge proceeds over the
					// partitions that answered, and the missing ones are
					// named in the result's partial list.
					fanMissing[i] = append(fanMissing[i], g.cfg.Nodes[call.node])
					continue
				}
				results[i] = api.Result{Kind: call.queries[k].Kind, Error: upstreamErr(g.cfg.Nodes[call.node], call.err)}
			}
			continue
		}
		if call.etag == "" {
			tagged = false
		} else {
			tagParts = append(tagParts, g.cfg.Nodes[call.node]+"\x00"+call.etag)
		}
		if call.resp.Now.After(now) {
			now = call.resp.Now
		}
		for k, i := range call.idxs {
			res := call.resp.Results[k]
			if !fanned[i] {
				results[i] = res
				continue
			}
			if res.Error != nil {
				// Spec-level errors (bad window, bad param) are the same
				// on every node; surface the first.
				results[i] = res
				fanParts[i] = nil
				continue
			}
			fanParts[i] = append(fanParts[i], res)
		}
	}
	for i := range queries {
		if !fanned[i] || results[i].Error != nil {
			continue
		}
		parts, missing := fanParts[i], fanMissing[i]
		if len(parts) == 0 {
			results[i] = api.Result{Kind: queries[i].Kind,
				Error: api.Errorf(api.CodeUpstream, "all %d partitions unreachable", len(g.clients))}
			continue
		}
		merged := mergeResults(queries[i], parts)
		if len(missing) > 0 {
			sort.Strings(missing)
			merged.Partial = missing
			g.metrics.partialMerges.Inc()
		}
		results[i] = merged
	}
	return results, now, g.mergedETag(tagged, tagParts)
}

// mergedETag folds the per-node upstream ETags into one strong gateway
// validator. Sorting makes the fold independent of node iteration
// order; the node URL rides along so two nodes coincidentally minting
// equal tags still produce a distinct merged value per fleet shape.
func (g *Gateway) mergedETag(tagged bool, parts []string) string {
	if !tagged || len(parts) == 0 {
		return ""
	}
	sort.Strings(parts)
	h := uint64(1469598103934665603) // FNV-64a offset basis
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= '\n'
		h *= 1099511628211
	}
	return fmt.Sprintf("\"gw-%016x\"", h)
}

// upstreamErr wraps a node failure in the wire envelope.
func upstreamErr(node string, err error) *api.Error {
	return api.Errorf(api.CodeUpstream, "store node unreachable: %v", err).WithDetail("node", node)
}

// mergeResults reassembles one fanned-out query from its per-partition
// answers.
func mergeResults(q api.Query, parts []api.Result) api.Result {
	out := api.Result{Kind: q.Kind}
	n := q.N
	if n <= 0 {
		n = defaultRankN
	}
	switch q.Kind {
	case api.KindSummary:
		var lists [][]api.RegionSummary
		for _, p := range parts {
			lists = append(lists, p.Summary)
		}
		out.Summary = mergeSummaries(lists)
	case api.KindStable:
		var lists [][]api.StableMarket
		for _, p := range parts {
			lists = append(lists, p.Stable)
		}
		out.Stable = mergeStable(lists, n)
	case api.KindVolatile:
		var lists [][]api.VolatileMarket
		for _, p := range parts {
			lists = append(lists, p.Volatile)
		}
		out.Volatile = mergeVolatile(lists, n)
	case api.KindAdvise:
		if q.Advise != nil && q.Advise.N > 0 {
			n = q.Advise.N
		}
		var lists []*api.AdviseResult
		for _, p := range parts {
			lists = append(lists, p.Advise)
		}
		out.Advise = mergeAdvise(lists, n)
	default:
		out.Error = api.Errorf(api.CodeInternal, "unmergeable fanned-out kind %q", q.Kind)
	}
	return out
}

// mergeSummaries merges per-partition region summaries: counters sum
// exactly; the two derived statistics (mean outage duration, rejected
// spot fraction) recombine weighted by their denominators, which
// reconstructs the whole-fleet value up to float rounding.
func mergeSummaries(lists [][]api.RegionSummary) []api.RegionSummary {
	type acc struct {
		api.RegionSummary
		outageWeighted time.Duration
		rejSpot        float64
	}
	byRegion := make(map[string]*acc)
	for _, rows := range lists {
		for _, row := range rows {
			a := byRegion[row.Region]
			if a == nil {
				a = &acc{RegionSummary: api.RegionSummary{Region: row.Region}}
				byRegion[row.Region] = a
			}
			a.ODOutages += row.ODOutages
			a.SpotOutages += row.SpotOutages
			a.RejectedODProbes += row.RejectedODProbes
			a.TotalODProbes += row.TotalODProbes
			a.TotalSpotProbes += row.TotalSpotProbes
			a.SpikesAboveOD += row.SpikesAboveOD
			a.ObservedSpikesAll += row.ObservedSpikesAll
			a.outageWeighted += row.MeanODOutage * time.Duration(row.ODOutages)
			a.rejSpot += row.RejectedSpotPcnt * float64(row.TotalSpotProbes)
		}
	}
	out := make([]api.RegionSummary, 0, len(byRegion))
	for _, a := range byRegion {
		s := a.RegionSummary
		if a.ODOutages > 0 {
			s.MeanODOutage = a.outageWeighted / time.Duration(a.ODOutages)
		}
		if a.TotalSpotProbes > 0 {
			s.RejectedSpotPcnt = a.rejSpot / float64(a.TotalSpotProbes)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// mergeStable re-ranks per-partition stability rows. Every node
// enumerates the full catalog (markets it does not own score zero), so
// rows dedupe per market by keeping the one with signal, then the
// fleet-wide ranking re-sorts with the nodes' own comparator.
func mergeStable(lists [][]api.StableMarket, n int) []api.StableMarket {
	best := make(map[string]api.StableMarket)
	for _, rows := range lists {
		for _, row := range rows {
			cur, ok := best[row.Market]
			if !ok || row.Crossings > cur.Crossings ||
				(row.Crossings == cur.Crossings && row.ODUnavailability > cur.ODUnavailability) {
				best[row.Market] = row
			}
		}
	}
	out := make([]api.StableMarket, 0, len(best))
	for _, row := range best {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Crossings != out[j].Crossings {
			return out[i].Crossings < out[j].Crossings
		}
		if out[i].ODUnavailability != out[j].ODUnavailability {
			return out[i].ODUnavailability < out[j].ODUnavailability
		}
		return out[i].Market < out[j].Market
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// mergeVolatile re-ranks per-partition volatility rows (only owning
// partitions produce a market's row, so the dedupe rarely fires).
func mergeVolatile(lists [][]api.VolatileMarket, n int) []api.VolatileMarket {
	best := make(map[string]api.VolatileMarket)
	for _, rows := range lists {
		for _, row := range rows {
			cur, ok := best[row.Market]
			if !ok || row.Crossings > cur.Crossings ||
				(row.Crossings == cur.Crossings && row.MaxRatio > cur.MaxRatio) {
				best[row.Market] = row
			}
		}
	}
	out := make([]api.VolatileMarket, 0, len(best))
	for _, row := range best {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Crossings != out[j].Crossings {
			return out[i].Crossings > out[j].Crossings
		}
		if out[i].MaxRatio != out[j].MaxRatio {
			return out[i].MaxRatio > out[j].MaxRatio
		}
		return out[i].Market < out[j].Market
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// mergeAdvise reassembles one fanned-out advise from its per-partition
// rankings: dedupe per market (a market priced on two nodes keeps the
// row built from more samples), re-rank with the advisor's own
// comparator, truncate, and renumber.
func mergeAdvise(lists []*api.AdviseResult, n int) *api.AdviseResult {
	out := &api.AdviseResult{}
	best := make(map[string]api.AdviseCandidate)
	for _, res := range lists {
		if res == nil {
			continue
		}
		if res.To.After(out.To) {
			out.From, out.To = res.From, res.To
		}
		for _, c := range res.Candidates {
			cur, ok := best[c.Market]
			if !ok || c.PriceSamples > cur.PriceSamples {
				best[c.Market] = c
			}
		}
	}
	cands := make([]api.AdviseCandidate, 0, len(best))
	for _, c := range best {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		if cands[i].InterruptionRate != cands[j].InterruptionRate {
			return cands[i].InterruptionRate < cands[j].InterruptionRate
		}
		return cands[i].Market < cands[j].Market
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	for i := range cands {
		cands[i].Rank = i + 1
	}
	out.Candidates = cands
	return out
}

// handleAdvise routes POST /v2/advise. On a replica fleet the request
// forwards whole to one node picked by hashing the constraint body —
// repeated asks hit the same node's advise memo, the node's ETag passes
// through untouched, and a dead node fails over to a healthy peer (the
// advise read is idempotent, so re-sending the buffered body is safe).
// On a partitioned fleet no single node has every market's price
// history, so the constraints fan out to every node through scatter and
// the rankings merge; missing partitions degrade the answer to partial
// (named in "partial") instead of failing it, and a full fan-out mints
// a merged gateway ETag honored against If-None-Match.
func (g *Gateway) handleAdvise(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "read advise body: %v", err))
		return
	}
	if !g.cfg.Partitioned {
		g.forward(w, r, g.ring.pick("advise|"+string(body)), body)
		return
	}
	var req api.AdviseRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, api.Errorf(api.CodeBadRequest, "bad advise body: %v", err))
			return
		}
	}
	q := api.Query{Kind: api.KindAdvise, Window: req.Window, Advise: &req.AdviseConstraints}
	results, now, etag := g.scatter(r.Context(), []api.Query{q})
	res := results[0]
	if res.Error != nil {
		status := http.StatusBadRequest
		if res.Error.Code == api.CodeUpstream {
			status = http.StatusBadGateway
		}
		writeErr(w, status, res.Error)
		return
	}
	if res.Advise == nil {
		writeErr(w, http.StatusBadGateway, api.Errorf(api.CodeInternal, "advise fan-out returned no result"))
		return
	}
	if etag != "" && len(res.Partial) == 0 {
		if etagMatches(r.Header.Get(api.HeaderIfNoneMatch), etag) {
			w.Header().Set(api.HeaderETag, etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set(api.HeaderETag, etag)
	}
	writeJSON(w, api.AdviseResponse{Now: now, AdviseResult: *res.Advise, Partial: res.Partial})
}

// handleWatch proxies one live stream to a node: market-scoped streams
// go to the market's owner; scope-less ones round-robin across the
// fleet — except on a partitioned fleet, where no single node sees every
// market's events, so the gateway refuses rather than silently serving a
// partial stream.
func (g *Gateway) handleWatch(w http.ResponseWriter, r *http.Request) {
	if m := r.URL.Query().Get("market"); m != "" {
		n := g.ring.pick(m)
		if !g.cfg.Partitioned {
			// Any replica holds the full stream; skip ejected nodes so a
			// dead leader repoints watches to a live peer.
			n = g.firstHealthy(n)
		}
		g.proxies[n].ServeHTTP(w, r)
		return
	}
	if g.cfg.Partitioned {
		writeErr(w, http.StatusBadRequest, api.Errorf(api.CodeBadParam,
			"a partitioned gateway serves only market-scoped watches (no node sees every market); subscribe per market or watch the nodes directly").
			WithDetail("param", "market"))
		return
	}
	g.proxies[g.firstHealthy(int(g.rr.Add(1))%len(g.proxies))].ServeHTTP(w, r)
}

// handleProxy routes the /v1/* surface. Market-scoped URLs go to the
// market's owner (with failover to a replica peer on a replica fleet).
// Scope-less URLs hash their full spec for cache affinity on a replica
// fleet; on a partitioned fleet the three mergeable aggregations are
// answered by scatter-gather here, and the rest (catalog-backed
// /v1/markets) go to any node. Every route uses the retrying forwarder,
// so a single slow or dead node costs a retry, not a 502.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if m := q.Get("market"); m != "" {
		g.forward(w, r, g.ring.pick(m), nil)
		return
	}
	if g.cfg.Partitioned {
		var kind api.Kind
		switch r.URL.Path {
		case "/v1/summary":
			kind = api.KindSummary
		case "/v1/stable":
			kind = api.KindStable
		case "/v1/volatile":
			kind = api.KindVolatile
		}
		if kind != "" {
			g.v1Fanout(w, r, kind)
			return
		}
	}
	g.forward(w, r, g.ring.pick(r.URL.RequestURI()), nil)
}

// v1Fanout answers one mergeable /v1 GET on a partitioned fleet by
// running the equivalent batch query through scatter and writing the
// kind's bare payload, mirroring the nodes' own v1 adapter.
func (g *Gateway) v1Fanout(w http.ResponseWriter, r *http.Request, kind api.Kind) {
	qs := r.URL.Query()
	q := api.Query{
		Kind:    kind,
		Window:  api.Window{Rel: qs.Get("window")},
		Region:  qs.Get("region"),
		Product: qs.Get("product"),
	}
	if s := qs.Get("from"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			writeErr(w, http.StatusBadRequest, api.Errorf(api.CodeBadWindow, "bad 'from' %q (want RFC3339)", s))
			return
		}
		q.From = t
	}
	if s := qs.Get("to"); s != "" {
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			writeErr(w, http.StatusBadRequest, api.Errorf(api.CodeBadWindow, "bad 'to' %q (want RFC3339)", s))
			return
		}
		q.To = t
	}
	if s := qs.Get("n"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			writeErr(w, http.StatusBadRequest, api.Errorf(api.CodeBadParam, "n must be a positive integer, got %q", s).WithDetail("param", "n"))
			return
		}
		q.N = n
	}
	results, _, etag := g.scatter(r.Context(), []api.Query{q})
	res := results[0]
	if res.Error != nil {
		status := http.StatusBadRequest
		if res.Error.Code == api.CodeUpstream {
			status = http.StatusBadGateway
		}
		writeErr(w, status, res.Error)
		return
	}
	if len(res.Partial) > 0 {
		// v1 payloads are bare (no envelope to carry the partial list),
		// so the degradation detail rides a response header.
		w.Header().Set(api.HeaderPartial, strings.Join(res.Partial, ","))
	} else if etag != "" {
		if etagMatches(r.Header.Get(api.HeaderIfNoneMatch), etag) {
			w.Header().Set(api.HeaderETag, etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		w.Header().Set(api.HeaderETag, etag)
	}
	switch kind {
	case api.KindSummary:
		writeJSON(w, res.Summary)
	case api.KindStable:
		writeJSON(w, res.Stable)
	case api.KindVolatile:
		writeJSON(w, res.Volatile)
	}
}

// handleHealth aggregates the fleet's health: every node is polled
// concurrently, the worst node status wins, and the per-node breakdown
// rides in the gateway arm.
func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	cctx, cancel := context.WithTimeout(r.Context(), g.cfg.Timeout)
	defer cancel()
	nodes := make([]api.NodeHealth, len(g.clients))
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		now time.Time
	)
	for i := range g.clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nh := api.NodeHealth{URL: g.cfg.Nodes[i]}
			h, err := g.clients[i].Health(cctx)
			if err != nil {
				nh.Status = "unreachable"
				nh.Error = err.Error()
				g.health.fail(i)
			} else {
				nh.Status = h.Status
				nh.Generation = h.Store.Generation
				g.health.succeed(i)
				mu.Lock()
				if h.Now.After(now) {
					now = h.Now
				}
				mu.Unlock()
			}
			nh.Breaker, nh.ConsecutiveFails = g.health.snapshot(i)
			nodes[i] = nh
		}(i)
	}
	wg.Wait()

	h := api.Health{
		Status: "ok",
		Now:    now,
		Store:  api.HealthStore{Mode: "gateway", Healthy: true},
		Gateway: &api.HealthGateway{
			Partitioned: g.cfg.Partitioned,
			Nodes:       nodes,
		},
	}
	for _, nh := range nodes {
		if nh.Status != "ok" {
			h.Status = "degraded"
			if nh.Status == "unreachable" {
				h.Store.Healthy = false
			}
		}
	}
	writeJSON(w, h)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, e *api.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}
