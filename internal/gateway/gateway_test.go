package gateway

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/obs"
	"spotlight/internal/query"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

var t0 = time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)

func TestRingStableAndBalanced(t *testing.T) {
	nodes := []string{"http://a:8080", "http://b:8080"}
	r := newRing(nodes, defaultVirtualNodes)
	hits := make([]int, len(nodes))
	for _, id := range market.New().SpotMarkets() {
		n := r.pick(id.String())
		if again := r.pick(id.String()); again != n {
			t.Fatalf("pick(%s) unstable: %d then %d", id, n, again)
		}
		hits[n]++
	}
	for i, h := range hits {
		if h == 0 {
			t.Errorf("node %d owns no markets: distribution %v", i, hits)
		}
	}
}

func TestMergeSummaries(t *testing.T) {
	lists := [][]api.RegionSummary{
		{{Region: "us-east-1", ODOutages: 2, MeanODOutage: 10 * time.Minute, TotalODProbes: 100, TotalSpotProbes: 50, RejectedSpotPcnt: 0.10}},
		{{Region: "us-east-1", ODOutages: 1, MeanODOutage: 40 * time.Minute, TotalODProbes: 20, TotalSpotProbes: 150, RejectedSpotPcnt: 0.30},
			{Region: "eu-west-1", ODOutages: 0, TotalODProbes: 5}},
	}
	got := mergeSummaries(lists)
	if len(got) != 2 || got[0].Region != "eu-west-1" || got[1].Region != "us-east-1" {
		t.Fatalf("merged regions = %+v", got)
	}
	ue := got[1]
	if ue.ODOutages != 3 || ue.TotalODProbes != 120 || ue.TotalSpotProbes != 200 {
		t.Errorf("counters did not sum: %+v", ue)
	}
	// (2*10m + 1*40m) / 3 = 20m, weighted by outage count.
	if ue.MeanODOutage != 20*time.Minute {
		t.Errorf("MeanODOutage = %v, want 20m", ue.MeanODOutage)
	}
	// (0.10*50 + 0.30*150) / 200 = 0.25, weighted by spot probes.
	if ue.RejectedSpotPcnt != 0.25 {
		t.Errorf("RejectedSpotPcnt = %v, want 0.25", ue.RejectedSpotPcnt)
	}
}

func TestMergeStableRanksFleetWide(t *testing.T) {
	// Node 0 owns mkt-a (2 crossings); node 1 reports the catalog zero
	// for it. Node 1 owns mkt-b (0 crossings, some unavailability).
	lists := [][]api.StableMarket{
		{{Market: "mkt-a", Crossings: 2, ODUnavailability: 0.1}, {Market: "mkt-b"}},
		{{Market: "mkt-a"}, {Market: "mkt-b", ODUnavailability: 0.05}},
	}
	got := mergeStable(lists, 1)
	if len(got) != 1 || got[0].Market != "mkt-b" {
		t.Fatalf("merged ranking = %+v, want mkt-b first (fewest crossings wins)", got)
	}
	if got[0].ODUnavailability != 0.05 {
		t.Errorf("mkt-b row = %+v, want the owning node's signal kept", got[0])
	}
}

func TestMergeVolatileRanksFleetWide(t *testing.T) {
	lists := [][]api.VolatileMarket{
		{{Market: "mkt-a", Crossings: 5, MaxRatio: 2.0}},
		{{Market: "mkt-b", Crossings: 5, MaxRatio: 3.0}, {Market: "mkt-c", Crossings: 1, MaxRatio: 9.0}},
	}
	got := mergeVolatile(lists, 2)
	if len(got) != 2 || got[0].Market != "mkt-b" || got[1].Market != "mkt-a" {
		t.Fatalf("merged ranking = %+v, want [mkt-b mkt-a] (crossings desc, ratio desc)", got)
	}
}

// newNode builds one real store node: a fresh store served by the query
// API under the shared test clock.
func newNode(t *testing.T, db *store.Store) *httptest.Server {
	t.Helper()
	a := query.NewAPI(query.NewEngine(db, market.New()), func() time.Time { return t0.Add(24 * time.Hour) })
	t.Cleanup(a.Shutdown)
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// gwServer fronts the gateway handler with a test server.
func gwServer(t *testing.T, g *Gateway) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func postBatch(t *testing.T, url string, req api.BatchRequest) (int, api.BatchResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out api.BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode batch response: %v: %s", err, raw)
		}
	}
	return resp.StatusCode, out
}

// usEastMarkets returns catalog spot markets in us-east-1.
// partitionedMarkets returns n us-east-1 spot markets chosen so every
// ring partition owns at least one. The ring hashes the node URLs, and
// httptest ports are ephemeral, so a fixed prefix of the catalog can
// land entirely on one node for an unlucky port draw — scan the whole
// region and seed each partition first instead.
func partitionedMarkets(t *testing.T, g *Gateway, parts, n int) []market.SpotID {
	t.Helper()
	byNode := make([][]market.SpotID, parts)
	for _, id := range market.New().SpotMarkets() {
		if strings.HasPrefix(string(id.Zone), "us-east-1") {
			p := g.ring.pick(id.String())
			byNode[p] = append(byNode[p], id)
		}
	}
	var ids []market.SpotID
	for p, owned := range byNode {
		if len(owned) == 0 {
			t.Fatalf("ring assigned no us-east-1 market to partition %d", p)
		}
		ids = append(ids, owned[0])
		byNode[p] = owned[1:]
	}
	for p, idle := 0, 0; len(ids) < n && idle < parts; p = (p + 1) % parts {
		if len(byNode[p]) == 0 {
			idle++
			continue
		}
		idle = 0
		ids = append(ids, byNode[p][0])
		byNode[p] = byNode[p][1:]
	}
	if len(ids) < n {
		t.Fatalf("catalog has only %d us-east-1 spot markets, want %d", len(ids), n)
	}
	return ids
}

func usEastMarkets(t *testing.T, n int) []market.SpotID {
	t.Helper()
	var ids []market.SpotID
	for _, id := range market.New().SpotMarkets() {
		if strings.HasPrefix(string(id.Zone), "us-east-1") {
			ids = append(ids, id)
			if len(ids) == n {
				return ids
			}
		}
	}
	t.Fatalf("catalog has only %d us-east-1 spot markets, want %d", len(ids), n)
	return nil
}

// seedProbes appends count on-demand probes (rejected of them rejected)
// for one market.
func seedProbes(db *store.Store, id market.SpotID, count, rejected int) {
	var rs []store.ProbeRecord
	for i := 0; i < count; i++ {
		rs = append(rs, store.ProbeRecord{
			At: t0.Add(time.Duration(i) * time.Minute), Market: id,
			Kind: store.ProbeOnDemand, Rejected: i < rejected, Code: "ICE",
		})
	}
	// Close any outage the rejected run opened, so summaries are settled.
	rs = append(rs, store.ProbeRecord{At: t0.Add(time.Duration(count) * time.Minute), Market: id, Kind: store.ProbeOnDemand})
	db.AppendProbes(rs)
}

// A partitioned fleet: each market's records live only on its ring
// owner. The gateway must answer market queries from the owner, merge
// the scope-less summary across partitions, and isolate a dead
// partition's failures per query.
func TestPartitionedScatterGather(t *testing.T) {
	dbs := []*store.Store{store.New(), store.New()}
	srv0, srv1 := newNode(t, dbs[0]), newNode(t, dbs[1])
	nodes := []string{srv0.URL, srv1.URL}
	g, err := New(Config{Nodes: nodes, Partitioned: true, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	gsrv := gwServer(t, g)

	// Shard by the gateway's own ring, and find one market per node so
	// the routing assertions are deterministic.
	perNode := make([]market.SpotID, len(nodes))
	total := 0
	for i, id := range partitionedMarkets(t, g, len(nodes), 8) {
		n := g.ring.pick(id.String())
		count := 10 + i
		seedProbes(dbs[n], id, count, 2)
		total += count + 1 // +1 settling probe
		perNode[n] = id
	}
	for n, id := range perNode {
		if id == (market.SpotID{}) {
			t.Fatalf("ring assigned no test market to node %d", n)
		}
	}

	window := api.Window{From: t0, To: t0.Add(24 * time.Hour)}
	status, resp := postBatch(t, gsrv.URL, api.BatchRequest{Queries: []api.Query{
		{Kind: api.KindSummary},
		{Kind: api.KindUnavailability, Market: perNode[0].String(), Window: window},
		{Kind: api.KindUnavailability, Market: perNode[1].String(), Window: window},
		{Kind: api.KindStable, Region: "us-east-1", N: 3, Window: window},
	}})
	if status != http.StatusOK {
		t.Fatalf("batch status = %d", status)
	}
	for i, res := range resp.Results {
		if res.Error != nil {
			t.Fatalf("query %d failed: %+v", i, res.Error)
		}
	}
	var usEast *api.RegionSummary
	for i := range resp.Results[0].Summary {
		if resp.Results[0].Summary[i].Region == "us-east-1" {
			usEast = &resp.Results[0].Summary[i]
		}
	}
	if usEast == nil || usEast.TotalODProbes != total {
		t.Fatalf("merged summary = %+v, want %d total OD probes across both partitions", resp.Results[0].Summary, total)
	}
	if len(resp.Results[3].Stable) != 3 {
		t.Fatalf("merged stable ranking has %d rows, want 3", len(resp.Results[3].Stable))
	}

	// The /v1 surface merges the same way.
	r1, err := http.Get(gsrv.URL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	var rows []api.RegionSummary
	if err := json.NewDecoder(r1.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if len(rows) == 0 || rows[0].TotalODProbes != total {
		t.Fatalf("/v1/summary via gateway = %+v, want %d probes", rows, total)
	}

	// Scope-less watches cannot be served from a partitioned fleet.
	rw, err := http.Get(gsrv.URL + "/v2/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Body.Close()
	if rw.StatusCode != http.StatusBadRequest {
		t.Fatalf("partitioned scope-less watch status = %d, want 400", rw.StatusCode)
	}

	// Kill partition 1: its market-scoped queries fail with code
	// "upstream" naming the node, fanned queries degrade to a partial
	// merge over the answering partitions, and partition 0's queries
	// still answer.
	srv1.Close()
	status, resp = postBatch(t, gsrv.URL, api.BatchRequest{Queries: []api.Query{
		{Kind: api.KindUnavailability, Market: perNode[0].String(), Window: window},
		{Kind: api.KindUnavailability, Market: perNode[1].String(), Window: window},
		{Kind: api.KindSummary},
	}})
	if status != http.StatusOK {
		t.Fatalf("degraded batch status = %d, want 200 with per-query errors", status)
	}
	if err := resp.Results[0].Error; err != nil {
		t.Errorf("live partition's query failed: %+v", err)
	}
	if err := resp.Results[1].Error; err == nil || err.Code != api.CodeUpstream {
		t.Errorf("dead partition's market query error = %+v, want code %q", err, api.CodeUpstream)
	} else if err.Details["node"] != nodes[1] {
		t.Errorf("dead partition's market query names node %q, want %q", err.Details["node"], nodes[1])
	}
	if err := resp.Results[2].Error; err != nil {
		t.Errorf("fanned summary on degraded fleet failed: %+v, want partial merge", err)
	} else if p := resp.Results[2].Partial; len(p) != 1 || p[0] != nodes[1] {
		t.Errorf("fanned summary partial = %v, want [%s]", p, nodes[1])
	}

	// Aggregated health: degraded, with the dead node called out.
	rh, err := http.Get(gsrv.URL + "/v2/health")
	if err != nil {
		t.Fatal(err)
	}
	defer rh.Body.Close()
	var h api.Health
	if err := json.NewDecoder(rh.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Store.Mode != "gateway" || h.Gateway == nil {
		t.Fatalf("degraded fleet health = %+v", h)
	}
	if len(h.Gateway.Nodes) != 2 || h.Gateway.Nodes[1].Status != "unreachable" {
		t.Fatalf("per-node health = %+v, want node 1 unreachable", h.Gateway.Nodes)
	}
}

// A node that keeps failing must show up in aggregated health with its
// breaker open — the signal an operator (and the breaker_opens metric)
// pages on — while the surviving node stays closed.
func TestHealthEjectedNodeBreakerOpen(t *testing.T) {
	live := newNode(t, store.New())
	deadSrv := httptest.NewServer(http.NotFoundHandler())
	deadURL := deadSrv.URL
	deadSrv.Close() // dead node: connection refused from here on

	g, err := New(Config{
		Nodes:         []string{live.URL, deadURL},
		FailThreshold: 2,
		EjectFor:      time.Minute,
		Timeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g.EnableMetrics(reg)
	gsrv := gwServer(t, g)

	// Each health poll fails the dead node once; the second crosses the
	// threshold, and the poll snapshots breaker state after recording the
	// failure, so the second response already shows it open.
	var h api.Health
	for i := 0; i < 2; i++ {
		h = getHealth(t, gsrv.URL)
	}
	if h.Status != "degraded" || h.Gateway == nil || len(h.Gateway.Nodes) != 2 {
		t.Fatalf("health = %+v, want degraded with 2 nodes", h)
	}
	dead := h.Gateway.Nodes[1]
	if dead.Status != "unreachable" || dead.Breaker != "open" || dead.ConsecutiveFails < 2 {
		t.Fatalf("dead node = %+v, want unreachable with an open breaker", dead)
	}
	if h.Gateway.Nodes[0].Breaker != "closed" || h.Gateway.Nodes[0].Status != "ok" {
		t.Fatalf("live node = %+v, want ok with a closed breaker", h.Gateway.Nodes[0])
	}
	if n := reg.Counter("spotlight_gateway_breaker_opens_total", "", "node", deadURL).Value(); n != 1 {
		t.Errorf("breaker_opens_total{node=%s} = %v, want 1", deadURL, n)
	}
}

// getHealth fetches and decodes the gateway's aggregated GET /v2/health.
func getHealth(t *testing.T, baseURL string) api.Health {
	t.Helper()
	resp, err := http.Get(baseURL + "/v2/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// A replica fleet: both nodes serve the same store, so any routing is
// correct — the gateway's answers must match a direct node's exactly,
// and proxied /v1 reads keep the node's ETag (cross-checkable because
// replicas share the leader's salt; here both nodes are one API).
func TestReplicaFleetMatchesDirect(t *testing.T) {
	db := store.New()
	ids := usEastMarkets(t, 4)
	for i, id := range ids {
		seedProbes(db, id, 8+i, 1)
	}
	// One shared API instance behind two node URLs: the strongest form of
	// "identical replicas", so any divergence is the gateway's fault.
	a := query.NewAPI(query.NewEngine(db, market.New()), func() time.Time { return t0.Add(24 * time.Hour) })
	t.Cleanup(a.Shutdown)
	srvA, srvB := httptest.NewServer(a.Handler()), httptest.NewServer(a.Handler())
	t.Cleanup(srvA.Close)
	t.Cleanup(srvB.Close)

	g, err := New(Config{Nodes: []string{srvA.URL, srvB.URL}})
	if err != nil {
		t.Fatal(err)
	}
	gsrv := gwServer(t, g)

	window := api.Window{From: t0, To: t0.Add(24 * time.Hour)}
	queries := []api.Query{
		{Kind: api.KindSummary},
		{Kind: api.KindStable, Region: "us-east-1", N: 4, Window: window},
		{Kind: api.KindUnavailability, Market: ids[0].String(), Window: window},
		{Kind: api.KindUnavailability, Market: ids[3].String(), Window: window},
	}
	status, viaGW := postBatch(t, gsrv.URL, api.BatchRequest{Queries: queries})
	if status != http.StatusOK {
		t.Fatalf("gateway batch status = %d", status)
	}
	statusD, direct := postBatch(t, srvA.URL, api.BatchRequest{Queries: queries})
	if statusD != http.StatusOK {
		t.Fatalf("direct batch status = %d", statusD)
	}
	got, _ := json.Marshal(viaGW.Results)
	want, _ := json.Marshal(direct.Results)
	if string(got) != string(want) {
		t.Errorf("gateway batch diverged from direct node\n via: %.300s\nnode: %.300s", got, want)
	}
	if !viaGW.Now.Equal(direct.Now) {
		t.Errorf("gateway Now = %v, direct %v", viaGW.Now, direct.Now)
	}

	// Proxied /v1 keeps the upstream ETag and honors validators through
	// the gateway.
	path := "/v1/summary"
	rd, err := http.Get(srvA.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rd.Body)
	rd.Body.Close()
	etag := rd.Header.Get("ETag")
	rg, err := http.Get(gsrv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rg.Body)
	rg.Body.Close()
	if etag == "" || rg.Header.Get("ETag") != etag {
		t.Fatalf("proxied ETag = %q, direct %q", rg.Header.Get("ETag"), etag)
	}
	req, _ := http.NewRequest(http.MethodGet, gsrv.URL+path, nil)
	req.Header.Set("If-None-Match", etag)
	rnm, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rnm.Body.Close()
	if rnm.StatusCode != http.StatusNotModified {
		t.Fatalf("validator through gateway answered %d, want 304", rnm.StatusCode)
	}
}
