// Per-upstream health: circuit breakers, retry/failover candidate
// ordering, hedged batch calls, and the optional re-admission prober.
//
// The failure model is the PR 8 one: a store node that is slow, dead, or
// resetting connections must cost the fleet one degraded answer, not a
// hard 502 for everything routed its way. Every idempotent call runs
// through pickCandidates/batchNode or forward below, which record
// per-node outcomes in the tracker; a node that fails FailThreshold
// calls in a row is ejected (breaker opens) and traffic flows to its
// peers until a trial call — lazy, or driven by the background prober —
// succeeds and re-admits it.
package gateway

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"sync"
	"time"

	"spotlight/pkg/api"
)

// Breaker defaults.
const (
	// defaultFailThreshold is how many consecutive call failures eject a
	// node.
	defaultFailThreshold = 3
	// defaultEjectFor is how long an ejected node sits out before a
	// trial call may probe it again.
	defaultEjectFor = 5 * time.Second
	// defaultRetries is how many extra candidates an idempotent call may
	// try after its primary fails.
	defaultRetries = 1
)

// Breaker states, reported in NodeHealth.Breaker.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// nodeState is one upstream's breaker.
type nodeState struct {
	mu       sync.Mutex
	fails    int       // consecutive failures
	open     bool      // ejected
	openedAt time.Time // when the breaker last opened
}

// tracker holds the per-node breakers.
type tracker struct {
	nodes     []nodeState
	threshold int
	ejectFor  time.Duration
	// onOpen, when set (EnableMetrics), observes each closed-to-open
	// transition; called with the node's lock held, so it must not call
	// back into the tracker.
	onOpen func(node int)
}

func newTracker(n, threshold int, ejectFor time.Duration) *tracker {
	if threshold <= 0 {
		threshold = defaultFailThreshold
	}
	if ejectFor <= 0 {
		ejectFor = defaultEjectFor
	}
	return &tracker{nodes: make([]nodeState, n), threshold: threshold, ejectFor: ejectFor}
}

// allow reports whether node i should receive traffic: breaker closed,
// or open long enough that a half-open trial is due.
func (t *tracker) allow(i int) bool {
	s := &t.nodes[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.open {
		return true
	}
	return time.Since(s.openedAt) >= t.ejectFor
}

// succeed records a successful call: the breaker closes and the failure
// run resets.
func (t *tracker) succeed(i int) {
	s := &t.nodes[i]
	s.mu.Lock()
	s.fails = 0
	s.open = false
	s.mu.Unlock()
}

// fail records a failed call: at threshold the breaker opens (or
// re-opens, restarting the cooldown after a failed half-open trial).
func (t *tracker) fail(i int) {
	s := &t.nodes[i]
	s.mu.Lock()
	s.fails++
	if s.fails >= t.threshold || s.open {
		if !s.open && t.onOpen != nil {
			t.onOpen(i)
		}
		s.open = true
		s.openedAt = time.Now()
	}
	s.mu.Unlock()
}

// snapshot reports node i's breaker for /v2/health.
func (t *tracker) snapshot(i int) (state string, fails int) {
	s := &t.nodes[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case !s.open:
		state = breakerClosed
	case time.Since(s.openedAt) >= t.ejectFor:
		state = breakerHalfOpen
	default:
		state = breakerOpen
	}
	return state, s.fails
}

// nodeAlive classifies a batch-call error: an *api.Error other than
// "internal" means the node answered — it is healthy, the query was bad
// — while transport failures and node-internal errors count against the
// breaker and are worth retrying elsewhere.
func nodeAlive(err error) bool {
	var aerr *api.Error
	return errors.As(err, &aerr) && aerr.Code != api.CodeInternal
}

// pickCandidates builds the attempt order for one idempotent call whose
// affinity choice is primary. On a replica fleet any node can answer, so
// the list rotates through distinct peers, healthy ones first (ejected
// nodes stay at the tail as a last resort — a fully ejected fleet still
// gets tried rather than failing without a single wire attempt). On a
// partitioned fleet only the owner has the data, so retries re-try it.
// The list is capped at 1+Retries attempts.
func (g *Gateway) pickCandidates(primary int) []int {
	max := 1 + g.retries()
	if g.cfg.Partitioned || len(g.clients) == 1 {
		out := make([]int, 0, max)
		for len(out) < max {
			out = append(out, primary)
		}
		return out
	}
	healthy := make([]int, 0, len(g.clients))
	ejected := make([]int, 0)
	for k := 0; k < len(g.clients); k++ {
		n := (primary + k) % len(g.clients)
		if g.health.allow(n) {
			healthy = append(healthy, n)
		} else {
			ejected = append(ejected, n)
		}
	}
	out := append(healthy, ejected...)
	if len(out) > max {
		out = out[:max]
	}
	return out
}

func (g *Gateway) retries() int {
	if g.cfg.Retries < 0 {
		return 0
	}
	if g.cfg.Retries == 0 {
		return defaultRetries
	}
	return g.cfg.Retries
}

// firstHealthy returns primary unless its breaker is open, in which case
// the next non-ejected node in rotation (or primary again when the whole
// fleet is ejected).
func (g *Gateway) firstHealthy(primary int) int {
	for k := 0; k < len(g.clients); k++ {
		n := (primary + k) % len(g.clients)
		if g.health.allow(n) {
			return n
		}
	}
	return primary
}

// batchAttempt is one upstream try of a sub-batch.
type batchAttempt struct {
	resp *api.BatchResponse
	etag string
	node int
	err  error
}

// batchNode runs one node sub-batch with failover and hedging: attempts
// start at the candidates in order — the next one launched when the
// previous fails, or early when HedgeAfter elapses without an answer
// (the hedge duplicates an idempotent read, so the only cost is load) —
// and the first success wins. Outcomes feed the breakers.
func (g *Gateway) batchNode(ctx context.Context, primary int, queries []api.Query) batchAttempt {
	cands := g.pickCandidates(primary)
	results := make(chan batchAttempt, len(cands))
	launched := 0
	launch := func() {
		n := cands[launched]
		launched++
		go func() {
			start := time.Now()
			resp, etag, err := g.clients[n].BatchTagged(ctx, queries...)
			alive := err == nil || nodeAlive(err)
			g.metrics.observeUpstream(n, time.Since(start), alive)
			if alive {
				g.health.succeed(n)
			} else {
				g.health.fail(n)
			}
			results <- batchAttempt{resp: resp, etag: etag, node: n, err: err}
		}()
	}
	launch()

	hedge := g.cfg.HedgeAfter
	var hedgeC <-chan time.Time
	if hedge > 0 && launched < len(cands) {
		t := time.NewTimer(hedge)
		defer t.Stop()
		hedgeC = t.C
	}

	var first batchAttempt
	got := 0
	for {
		select {
		case a := <-results:
			got++
			if a.err == nil || nodeAlive(a.err) {
				return a
			}
			if first.err == nil {
				first = a
			}
			if launched < len(cands) {
				g.metrics.retries.Inc()
				launch()
			} else if got == launched {
				return first
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(cands) {
				g.metrics.hedges.Inc()
				launch()
			}
		case <-ctx.Done():
			if first.err == nil {
				first = batchAttempt{node: primary, err: ctx.Err()}
			}
			return first
		}
	}
}

// forward relays one idempotent HTTP request (a /v1 GET, or the
// replica-fleet advise POST whose body the caller buffered) to the
// candidate nodes in order, copying the first usable answer — status,
// headers (ETags included), body — back to the client. A transport
// error or 5xx moves on to the next candidate and feeds the breaker; a
// 2xx/3xx/4xx is the node's real answer and relays as-is. This replaces
// the single-shot ReverseProxy for everything except streaming.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, primary int, body []byte) {
	cands := g.pickCandidates(primary)
	var lastErr error
	var lastNode string
	for k, n := range cands {
		if k > 0 {
			g.metrics.retries.Inc()
		}
		ctx, cancel := context.WithTimeout(r.Context(), g.cfg.Timeout)
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, r.Method, g.cfg.Nodes[n]+r.URL.RequestURI(), rd)
		if err != nil {
			cancel()
			writeErr(w, http.StatusInternalServerError, api.Errorf(api.CodeInternal, "build upstream request: %v", err))
			return
		}
		copyHeader(req.Header, r.Header)
		start := time.Now()
		resp, err := g.httpClient().Do(req)
		if err != nil {
			g.metrics.observeUpstream(n, time.Since(start), false)
			cancel()
			g.health.fail(n)
			lastErr, lastNode = err, g.cfg.Nodes[n]
			continue
		}
		if resp.StatusCode >= 500 {
			g.metrics.observeUpstream(n, time.Since(start), false)
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			cancel()
			g.health.fail(n)
			lastErr, lastNode = errors.New(resp.Status), g.cfg.Nodes[n]
			continue
		}
		g.metrics.observeUpstream(n, time.Since(start), true)
		g.health.succeed(n)
		copyHeader(w.Header(), resp.Header)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		cancel()
		return
	}
	writeErr(w, http.StatusBadGateway,
		api.Errorf(api.CodeUpstream, "upstream unreachable: %v", lastErr).WithDetail("node", lastNode))
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

func (g *Gateway) httpClient() *http.Client {
	if g.cfg.HTTPClient != nil {
		return g.cfg.HTTPClient
	}
	return http.DefaultClient
}

// probeLoop is the background re-admission prober: every interval it
// polls /v2/health on nodes whose breaker is not closed, so an ejected
// node that recovered rejoins the rotation within one interval instead
// of waiting for live traffic to take the half-open gamble.
func (g *Gateway) probeLoop(interval time.Duration) {
	defer close(g.probeDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.probeStop:
			return
		case <-ticker.C:
			for i := range g.clients {
				if state, _ := g.health.snapshot(i); state == breakerClosed {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), g.cfg.Timeout)
				_, err := g.clients[i].Health(ctx)
				cancel()
				if err != nil {
					g.health.fail(i)
				} else {
					g.health.succeed(i)
				}
			}
		}
	}
}

// Close stops the background prober (if one was started). The gateway
// itself holds no other resources; idempotent.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		if g.probeStop != nil {
			close(g.probeStop)
			<-g.probeDone
		}
	})
}
