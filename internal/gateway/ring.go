package gateway

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over the upstream nodes: each node owns
// vnodes points on a 64-bit circle, and a key routes to the node owning
// the first point at or after the key's hash. Adding or removing one
// node then remaps only ~1/N of the keyspace — a resized store fleet
// keeps most markets (and so most node-side caches) where they were.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int
}

// newRing places vnodes points per node, identified by the node's URL so
// the placement is stable across gateway restarts and fleet reorderings.
func newRing(nodes []string, vnodes int) ring {
	r := ring{points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for i, u := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", u, v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// pick routes a key to its owning node index.
func (r ring) pick(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.points[i].node
}

// hash64 is fnv64a — the same family the store's ETags use; cheap and
// well-spread for short market IDs.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
