// Gateway observability: per-upstream latency and outcome series,
// retry/hedge counters, breaker state, and partial-merge counts.
//
// The per-node children are resolved once at EnableMetrics into plain
// slices indexed by node — the hot paths (batchNode's launch closure,
// forward's candidate loop) then touch an atomic, never the registry's
// lock. A gateway whose metrics were never enabled carries nil pointers
// in those slices, and every obs method no-ops on nil, so the
// uninstrumented cost is one nil check per call.
package gateway

import (
	"time"

	"spotlight/internal/obs"
)

// gwMetrics holds the gateway's hot-path instruments, indexed by node
// where labeled. Allocated (with sized slices) in New; armed by
// EnableMetrics.
type gwMetrics struct {
	retries       *obs.Counter
	hedges        *obs.Counter
	partialMerges *obs.Counter

	upstreamSeconds []*obs.Histogram
	upstreamOK      []*obs.Counter
	upstreamErr     []*obs.Counter
	breakerOpens    []*obs.Counter
}

func newGwMetrics(n int) *gwMetrics {
	return &gwMetrics{
		upstreamSeconds: make([]*obs.Histogram, n),
		upstreamOK:      make([]*obs.Counter, n),
		upstreamErr:     make([]*obs.Counter, n),
		breakerOpens:    make([]*obs.Counter, n),
	}
}

// observeUpstream records one upstream attempt against node n.
func (m *gwMetrics) observeUpstream(n int, d time.Duration, ok bool) {
	m.upstreamSeconds[n].Observe(d)
	if ok {
		m.upstreamOK[n].Inc()
	} else {
		m.upstreamErr[n].Inc()
	}
}

// EnableMetrics registers the gateway's series in reg and arms the
// hot-path instruments. Call before Handler(): the registry also serves
// GET /metrics and GET /v2/metrics there, and every route picks up the
// shared HTTP middleware. A nil registry leaves the gateway
// uninstrumented.
func (g *Gateway) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	g.reg = reg
	m := g.metrics
	m.retries = reg.Counter("spotlight_gateway_retries_total",
		"Upstream attempts launched because a previous candidate failed.")
	m.hedges = reg.Counter("spotlight_gateway_hedges_total",
		"Duplicate upstream attempts launched by the hedge timer.")
	m.partialMerges = reg.Counter("spotlight_gateway_partial_merges_total",
		"Fanned-out queries merged with at least one partition missing.")
	for i, node := range g.cfg.Nodes {
		m.upstreamSeconds[i] = reg.Histogram("spotlight_gateway_upstream_seconds",
			"Latency of one upstream call, per node.", "node", node)
		m.upstreamOK[i] = reg.Counter("spotlight_gateway_upstream_requests_total",
			"Upstream calls by node and outcome (ok: the node answered, even with a query-level error).",
			"node", node, "outcome", "ok")
		m.upstreamErr[i] = reg.Counter("spotlight_gateway_upstream_requests_total",
			"Upstream calls by node and outcome (ok: the node answered, even with a query-level error).",
			"node", node, "outcome", "error")
		m.breakerOpens[i] = reg.Counter("spotlight_gateway_breaker_opens_total",
			"Closed-to-open breaker transitions, per node.", "node", node)
		i := i
		reg.GaugeFunc("spotlight_gateway_breaker_state",
			"Breaker state per node: 0 closed, 1 half-open, 2 open.",
			func() float64 {
				switch state, _ := g.health.snapshot(i); state {
				case breakerHalfOpen:
					return 1
				case breakerOpen:
					return 2
				}
				return 0
			}, "node", node)
	}
	// Count closed-to-open transitions at the tracker, where the
	// transition is decided under the node's lock (fail() may race with
	// itself across goroutines).
	g.health.onOpen = func(i int) { m.breakerOpens[i].Inc() }
}
