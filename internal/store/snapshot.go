package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"spotlight/internal/market"
)

// Snapshot format v2: a directory per snapshot instead of one
// whole-store JSON file.
//
//	snapshot-<SEQ>/
//	  manifest.json            {"version":2,"seq":N,"shards":[...]}
//	  <escaped-market>.snap    per-shard binary record stream
//
// A shard file is the 8-byte magic "SPOTSNP2" followed by the WAL's
// CRC-framed record encoding (wal.go) — one frame per record, families
// in append order within each family (probes, spikes, bid spreads,
// revocations, prices; derived outages are not stored, exactly as in
// v1). Reusing the WAL codec means one binary format, one fuzz surface,
// and one streaming decoder for both halves of recovery.
//
// Encode and decode both stream record-at-a-time: the encoder walks a
// shard capture's columns and frames one stack-allocated record per
// iteration, the decoder hands each decoded frame straight to the shard
// replay — neither side ever materializes a []Record.
//
// The manifest pins each shard file's record count (the shard's
// generation at the cut, since every record bumps it by one), which
// gives recovery an end-to-end integrity check and makes snapshots
// incremental: a shard whose generation is unchanged since the previous
// snapshot must have byte-identical contents, so its file is hard-linked
// from the previous snapshot directory instead of re-encoded — a
// periodic snapshot of a mostly-idle fleet costs I/O proportional to
// what changed.
//
// Publication is atomic like v1: the directory is assembled as
// snapshot-<SEQ>.tmp (files fsynced, then the directory), renamed to its
// final name, and the parent fsynced — a crash mid-snapshot leaves only
// a .tmp directory, which recovery ignores and compaction removes. The
// v1 single-file format stays readable (see persist.go): recovery
// accepts whichever complete snapshot — either format — is newest.

// snapMagic opens every v2 shard snapshot file.
const snapMagic = "SPOTSNP2"

const (
	snapManifestName = "manifest.json"
	snapFileSuffix   = ".snap"
	snapTmpSuffix    = ".tmp"
)

// snapManifest is the manifest.json schema.
type snapManifest struct {
	Version int                 `json:"version"`
	Seq     uint64              `json:"seq"`
	Shards  []snapManifestShard `json:"shards"`
}

// snapManifestShard describes one shard file of a snapshot.
type snapManifestShard struct {
	// Market is the canonical market ID the file belongs to.
	Market string `json:"market"`
	// File is the shard file's name within the snapshot directory.
	File string `json:"file"`
	// Records is the exact number of record frames in the file — the
	// shard's generation at the cut.
	Records uint64 `json:"records"`
}

// snapshotDirName renders a v2 snapshot directory name;
// snapshotDirSeq inverts it (with the same canonical round-trip check as
// segment and v1 snapshot names).
func snapshotDirName(seq uint64) string {
	return fmt.Sprintf("%s%08d", snapshotPrefix, seq)
}

func snapshotDirSeq(name string) (uint64, bool) {
	var seq uint64
	n, err := fmt.Sscanf(name, snapshotPrefix+"%d", &seq)
	if err != nil || n != 1 {
		return 0, false
	}
	if name != snapshotDirName(seq) {
		return 0, false
	}
	return seq, true
}

// snapFileName returns the shard file name for a market: the escaped ID
// (the WAL directory convention) plus the .snap suffix.
func snapFileName(id market.SpotID) string {
	return marketDirName(id) + snapFileSuffix
}

// encodeShardSnapshot streams one shard capture's records into w as
// magic + WAL frames. The per-record state is a single stack record and
// a reused frame buffer; nothing is materialized.
func encodeShardSnapshot(w io.Writer, c *shardCapture) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	var buf []byte
	emit := func(enc func([]byte) []byte) error {
		buf = enc(buf[:0])
		_, err := bw.Write(buf)
		return err
	}
	for i := 0; i < c.probes.n(); i++ {
		r := c.probes.get(i, c.id)
		if err := emit(func(b []byte) []byte { return appendProbeFrame(b, r) }); err != nil {
			return err
		}
	}
	for i := 0; i < c.spikes.n(); i++ {
		e := c.spikes.get(i, c.id)
		if err := emit(func(b []byte) []byte { return appendSpikeFrame(b, e) }); err != nil {
			return err
		}
	}
	for i := 0; i < c.bidSpreads.n(); i++ {
		r := c.bidSpreads.get(i, c.id)
		if err := emit(func(b []byte) []byte { return appendBidSpreadFrame(b, r) }); err != nil {
			return err
		}
	}
	for i := 0; i < c.revocations.n(); i++ {
		r := c.revocations.get(i, c.id)
		if err := emit(func(b []byte) []byte { return appendRevocationFrame(b, r) }); err != nil {
			return err
		}
	}
	for i := 0; i < c.prices.n(); i++ {
		p := c.prices.get(i)
		if err := emit(func(b []byte) []byte { return appendPriceFrame(b, p) }); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// decodeShardSnapshot streams a shard snapshot image through fn, one
// decoded record at a time. Unlike WAL segments there are no valid-prefix
// semantics: snapshots are rename-published, so any damage — bad magic, a
// corrupt frame, a record of the wrong market — is an error, never a
// truncation point. Returns the number of records decoded.
func decodeShardSnapshot(data []byte, id market.SpotID, intern map[string]string, fn func(*walEntry)) (uint64, error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != snapMagic {
		return 0, fmt.Errorf("%w: bad shard snapshot magic", ErrWALCorrupt)
	}
	var e walEntry
	var count uint64
	off := len(snapMagic)
	for off < len(data) {
		typ, body, n, ferr := decodeWALFrame(data[off:])
		if ferr != nil {
			return count, ferr
		}
		if derr := decodeWALEntry(&e, typ, body, id, intern); derr != nil {
			return count, derr
		}
		fn(&e)
		count++
		off += n
	}
	return count, nil
}

// snapDirState remembers the published snapshot directory incremental
// encoding links unchanged shard files from. Guarded by Persister.snapMu
// (all snapshot writes serialize there).
type snapDirState struct {
	seq uint64
	dir string
	// records maps shard file name -> record count in that snapshot.
	records map[string]uint64
	// linked/encoded count how this snapshot's shard files were produced
	// (hard-linked unchanged vs freshly encoded) — the incremental-
	// snapshot efficiency signal the metrics layer reports.
	linked, encoded int
}

// writeSnapshotV2 assembles and atomically publishes snapshot seq from
// the captures, hard-linking any shard file whose record count is
// unchanged since prev (nil when there is no previous v2 snapshot, or
// its directory is gone). Returns the state of the published snapshot
// for the next round's linking.
func writeSnapshotV2(dir string, seq uint64, captures []shardCapture, prev *snapDirState) (*snapDirState, error) {
	tmp := filepath.Join(dir, snapshotDirName(seq)+snapTmpSuffix)
	if err := os.RemoveAll(tmp); err != nil {
		return nil, fmt.Errorf("store: clear %s: %w", tmp, err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", tmp, err)
	}
	man := snapManifest{Version: 2, Seq: seq}
	state := &snapDirState{seq: seq, records: make(map[string]uint64, len(captures))}
	for i := range captures {
		c := &captures[i]
		if c.gen == 0 {
			continue // a shard exists iff it holds records; nothing to store
		}
		name := snapFileName(c.id)
		path := filepath.Join(tmp, name)
		if prev != nil && prev.records[name] == c.gen {
			// Unchanged since the previous snapshot: same generation means
			// the same record prefix, so the previous file is this file.
			// Hard-link it (content already durable); fall through to a
			// fresh encode if the filesystem refuses.
			if err := os.Link(filepath.Join(prev.dir, name), path); err == nil {
				man.Shards = append(man.Shards, snapManifestShard{Market: c.id.String(), File: name, Records: c.gen})
				state.records[name] = c.gen
				state.linked++
				continue
			}
		}
		if err := encodeShardFile(path, c); err != nil {
			return nil, err
		}
		man.Shards = append(man.Shards, snapManifestShard{Market: c.id.String(), File: name, Records: c.gen})
		state.records[name] = c.gen
		state.encoded++
	}
	if err := writeSyncedFile(filepath.Join(tmp, snapManifestName), mustJSON(man)); err != nil {
		return nil, err
	}
	if err := syncPath(tmp); err != nil {
		return nil, err
	}
	final := filepath.Join(dir, snapshotDirName(seq))
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("store: publish %s: %w", final, err)
	}
	if err := syncPath(dir); err != nil {
		return nil, err
	}
	state.dir = final
	return state, nil
}

// encodeShardFile streams one capture into path and fsyncs it.
func encodeShardFile(path string, c *shardCapture) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", path, err)
	}
	werr := encodeShardSnapshot(f, c)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("store: write %s: %w", path, werr)
	}
	return nil
}

// writeSyncedFile writes data to path and fsyncs it. No rename dance:
// callers write inside a not-yet-published .tmp snapshot directory,
// whose rename is the atomic publication point.
func writeSyncedFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", path, err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("store: write %s: %w", path, werr)
	}
	return nil
}

// syncPath fsyncs a file or directory by path.
func syncPath(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: open for sync %s: %w", path, err)
	}
	serr := d.Sync()
	d.Close()
	if serr != nil {
		return fmt.Errorf("store: sync %s: %w", path, serr)
	}
	return nil
}

// loadSnapManifest reads and validates a snapshot directory's manifest.
func loadSnapManifest(dirPath string) (snapManifest, error) {
	data, err := os.ReadFile(filepath.Join(dirPath, snapManifestName))
	if err != nil {
		return snapManifest{}, fmt.Errorf("store: read snapshot manifest: %w", err)
	}
	var man snapManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return snapManifest{}, fmt.Errorf("store: decode snapshot manifest: %w", err)
	}
	if man.Version != 2 {
		return snapManifest{}, fmt.Errorf("store: unsupported snapshot version %d", man.Version)
	}
	for _, sh := range man.Shards {
		if sh.File != filepath.Base(sh.File) || !strings.HasSuffix(sh.File, snapFileSuffix) {
			return snapManifest{}, fmt.Errorf("store: snapshot manifest names invalid file %q", sh.File)
		}
	}
	return man, nil
}

// snapInfo locates the newest complete snapshot in a data directory.
type snapInfo struct {
	seq uint64 // 0 when no snapshot exists
	v2  bool
	// manifest is loaded for v2 snapshots.
	manifest snapManifest
	dirPath  string // v2 snapshot directory path
}

// findLatestSnapshot scans dir for the newest complete snapshot of
// either format: v2 directories (rename-published, so presence implies
// completeness) and v1 single JSON files. In-progress .tmp directories
// are ignored.
func findLatestSnapshot(dir string) (snapInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return snapInfo{}, fmt.Errorf("store: list %s: %w", dir, err)
	}
	var info snapInfo
	for _, ent := range ents {
		if ent.IsDir() {
			if seq, ok := snapshotDirSeq(ent.Name()); ok && seq > info.seq {
				info = snapInfo{seq: seq, v2: true, dirPath: filepath.Join(dir, ent.Name())}
			}
			continue
		}
		if seq, ok := snapshotSeq(ent.Name()); ok && seq > info.seq {
			info = snapInfo{seq: seq}
		}
	}
	if info.v2 {
		man, err := loadSnapManifest(info.dirPath)
		if err != nil {
			// Same contract as a damaged v1 snapshot: fail loudly rather
			// than silently recovering from an older snapshot whose WAL
			// epochs compaction already deleted.
			return snapInfo{}, fmt.Errorf("store: snapshot %s is damaged (remove the directory to recover from an older snapshot + WAL, accepting the loss of the records only it covered): %w", filepath.Base(info.dirPath), err)
		}
		if man.Seq != info.seq {
			return snapInfo{}, fmt.Errorf("store: snapshot %s manifest claims seq %d", filepath.Base(info.dirPath), man.Seq)
		}
		info.manifest = man
	}
	return info, nil
}
