package store

import (
	"bytes"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"spotlight/internal/market"
)

var persistBase = time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)

// crash abandons the persister without flushing or closing, releasing
// the directory flock exactly the way a process death would — the tests'
// stand-in for kill -9.
func (p *Persister) crash() {
	p.lock.Close()
}

func persistMarket(i int) market.SpotID {
	zones := []market.Zone{"us-east-1a", "us-east-1b", "eu-west-1a", "ap-southeast-2a"}
	types := []market.InstanceType{"m3.large", "c3.xlarge"}
	return market.SpotID{
		Zone:    zones[i%len(zones)],
		Type:    types[(i/len(zones))%len(types)],
		Product: market.ProductLinux,
	}
}

// assertStoresEqual compares two stores down to every layer the ISSUE
// cares about: record streams (via the consistent JSON dump), per-market
// aggregates, rollup aggregates at both scopes, and every generation
// counter.
func assertStoresEqual(t *testing.T, got, want *Store) {
	t.Helper()
	var gotJSON, wantJSON bytes.Buffer
	if err := got.WriteJSON(&gotJSON); err != nil {
		t.Fatalf("WriteJSON(got): %v", err)
	}
	if err := want.WriteJSON(&wantJSON); err != nil {
		t.Fatalf("WriteJSON(want): %v", err)
	}
	if !bytes.Equal(gotJSON.Bytes(), wantJSON.Bytes()) {
		t.Errorf("record streams differ:\n got: %.400s\nwant: %.400s", gotJSON.String(), wantJSON.String())
	}
	now := persistBase.Add(30 * 24 * time.Hour)
	if g, w := got.Aggregates(now), want.Aggregates(now); !reflect.DeepEqual(g, w) {
		t.Errorf("Aggregates differ:\n got: %+v\nwant: %+v", g, w)
	}
	assertScopeAggsEqual(t, "RegionAggregates", got.RegionAggregates(now), want.RegionAggregates(now))
	assertScopeAggsEqual(t, "RegionProductAggregates", got.RegionProductAggregates(now), want.RegionProductAggregates(now))
	if g, w := got.GlobalGeneration(), want.GlobalGeneration(); g != w {
		t.Errorf("GlobalGeneration = %d, want %d", g, w)
	}
	for _, id := range want.Markets() {
		if g, w := got.Generation(id), want.Generation(id); g != w {
			t.Errorf("Generation(%v) = %d, want %d", id, g, w)
		}
		r := id.Region()
		if g, w := got.GenerationOfScope(r, id.Product), want.GenerationOfScope(r, id.Product); g != w {
			t.Errorf("GenerationOfScope(%v, %v) = %d, want %d", r, id.Product, g, w)
		}
	}
}

// assertScopeAggsEqual compares rollup aggregates. Every count, duration,
// and min/max must match exactly; the floating-point sums (ProbeCost and
// the PriceMean numerator) may differ in the last ulps because replay
// folds markets in deterministic ID order while the live process folded
// them in arrival order, and float addition is not associative.
func assertScopeAggsEqual(t *testing.T, what string, got, want []ScopeAggregates) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d scopes, want %d", what, len(got), len(want))
		return
	}
	for i := range want {
		g, w := got[i], want[i]
		if !floatClose(g.ProbeCost, w.ProbeCost) || !floatClose(g.PriceMean, w.PriceMean) {
			t.Errorf("%s[%d] float sums differ:\n got: %+v\nwant: %+v", what, i, g, w)
		}
		g.ProbeCost, g.PriceMean = w.ProbeCost, w.PriceMean
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s[%d] differ:\n got: %+v\nwant: %+v", what, i, got[i], w)
		}
	}
}

func floatClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := max(abs(a), abs(b))
	return diff <= 1e-9*scale
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// appendWorkload drives every append path once per market: probes with a
// rejection/recovery pair (deriving an outage), spikes above and below
// the crossing threshold, prices, bid spreads, and revocations.
func appendWorkload(s *Store, markets int, perMarket int) {
	for m := 0; m < markets; m++ {
		id := persistMarket(m)
		app := s.Appender(id)
		var batch []ProbeRecord
		for i := 0; i < perMarket; i++ {
			at := persistBase.Add(time.Duration(m*perMarket+i) * time.Minute)
			batch = append(batch, ProbeRecord{
				At: at, Market: id, Kind: ProbeOnDemand, Trigger: TriggerSpike,
				TriggerMarket: id, SourceKind: ProbeSpot,
				SpikeRatio: 1.5, PriceRatio: 1.1,
				Rejected: i%3 == 1, Code: "ICE", Cost: 0.01,
			})
			if i%2 == 0 {
				app.AppendSpike(SpikeEvent{At: at, Market: id, Price: 0.5 + float64(i), Ratio: 0.8 + float64(i%3), Probed: i%4 == 0})
			}
			app.RecordPrice(PricePoint{At: at, Price: 0.1 * float64(i+1)})
		}
		app.AppendProbes(batch)
		app.AppendBidSpread(BidSpreadRecord{At: persistBase.Add(time.Duration(m) * time.Hour), Market: id, Published: 0.5, Intrinsic: 0.3, Attempts: 4})
		app.AppendRevocation(RevocationRecord{At: persistBase.Add(time.Duration(m) * time.Hour), Market: id, Bid: 1.0, Held: 90 * time.Minute})
	}
}

func TestDurableRoundTripAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendWorkload(s, 5, 12)

	oracle := New()
	appendWorkload(oracle, 5, 12)

	if err := s.Persister().Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	assertStoresEqual(t, re, oracle)
	if re.Persister() == nil {
		t.Fatal("reopened store has no persister")
	}
	if err := re.Persister().Close(); err != nil {
		t.Fatalf("close reopened: %v", err)
	}
}

func TestDurableRoundTripWALOnly(t *testing.T) {
	// Flush but never Close: recovery must come entirely from WAL
	// segments, with no snapshot written.
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendWorkload(s, 4, 9)
	if err := s.Persister().Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*")); len(snaps) != 0 {
		t.Fatalf("unexpected snapshots before any Snapshot call: %v", snaps)
	}

	oracle := New()
	appendWorkload(oracle, 4, 9)

	s.Persister().crash()
	re, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	assertStoresEqual(t, re, oracle)
}

func TestUnflushedAppendsAreLostCleanly(t *testing.T) {
	// Records appended after the last Flush are not acknowledged; a
	// crash (simulated: reopen without Flush/Close) drops exactly them.
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	id := persistMarket(0)
	app := s.Appender(id)
	app.AppendProbe(ProbeRecord{At: persistBase, Market: id, Kind: ProbeSpot})
	if err := s.Persister().Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	app.AppendProbe(ProbeRecord{At: persistBase.Add(time.Minute), Market: id, Kind: ProbeSpot})

	s.Persister().crash()
	re, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := re.Generation(id); got != 1 {
		t.Fatalf("recovered generation = %d, want 1 (the flushed record)", got)
	}
}

func TestSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so compaction has files to delete.
	s, err := Open(dir, PersistOptions{SegmentSize: 512})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p := s.Persister()
	appendWorkload(s, 3, 20)
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	preSegs := countSegments(t, dir)
	if preSegs < 3 {
		t.Fatalf("expected rotated segments before snapshot, got %d", preSegs)
	}
	if err := p.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if postSegs := countSegments(t, dir); postSegs != 0 {
		t.Errorf("snapshot left %d uncovered segments, want 0", postSegs)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk = %v, want exactly one", snaps)
	}
	if fi, err := os.Stat(snaps[0]); err != nil || !fi.IsDir() {
		t.Fatalf("snapshot %s is not a v2 directory (err=%v)", snaps[0], err)
	}

	// Post-snapshot appends land in fresh segments and replay on top.
	id := persistMarket(0)
	s.Appender(id).AppendProbe(ProbeRecord{At: persistBase.Add(100 * time.Hour), Market: id, Kind: ProbeSpot, Cost: 0.5})
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush after snapshot: %v", err)
	}

	oracle := New()
	appendWorkload(oracle, 3, 20)
	oracle.AppendProbe(ProbeRecord{At: persistBase.Add(100 * time.Hour), Market: id, Kind: ProbeSpot, Cost: 0.5})

	p.crash()
	re, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	assertStoresEqual(t, re, oracle)
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "*", "seg-*.wal"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	return len(segs)
}

// persistOp is one appended record of the crash-recovery oracle log.
type persistOp struct {
	market market.SpotID
	apply  func(*Store)
}

// TestCrashRecoveryTruncatedWAL is the randomized crash-recovery
// property test: a random append workload runs against a durable store
// (small segments, snapshots and flushes sprinkled in), the active WAL
// segment of a random victim market is hard-truncated at an arbitrary
// byte offset, and the reopened store must exactly match an in-memory
// store replaying the surviving per-shard prefix — aggregates, rollups,
// and generations included.
func TestCrashRecoveryTruncatedWAL(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewPCG(seed, 0xc4a5))
			dir := t.TempDir()
			s, err := Open(dir, PersistOptions{SegmentSize: 1 << 11})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			p := s.Persister()

			const markets = 6
			var log []persistOp
			appendOne := func() {
				id := persistMarket(rng.IntN(markets))
				at := persistBase.Add(time.Duration(len(log)) * time.Minute)
				var op persistOp
				op.market = id
				switch rng.IntN(5) {
				case 0:
					rec := ProbeRecord{At: at, Market: id, Kind: ProbeKind(1 + rng.IntN(2)),
						Trigger: TriggerRecheck, TriggerMarket: id,
						Rejected: rng.IntN(3) == 0, Code: "cap", Cost: 0.02}
					op.apply = func(st *Store) { st.AppendProbe(rec) }
				case 1:
					e := SpikeEvent{At: at, Market: id, Price: rng.Float64() * 2, Ratio: rng.Float64() * 3, Probed: rng.IntN(2) == 0}
					op.apply = func(st *Store) { st.AppendSpike(e) }
				case 2:
					pt := PricePoint{At: at, Price: rng.Float64()}
					op.apply = func(st *Store) { st.RecordPrice(id, pt) }
				case 3:
					b := BidSpreadRecord{At: at, Market: id, Published: 1, Intrinsic: rng.Float64(), Attempts: rng.IntN(9)}
					op.apply = func(st *Store) { st.AppendBidSpread(b) }
				default:
					rv := RevocationRecord{At: at, Market: id, Bid: 1.2, Held: time.Duration(rng.IntN(3600)) * time.Second}
					op.apply = func(st *Store) { st.AppendRevocation(rv) }
				}
				op.apply(s)
				log = append(log, op)
			}

			steps := 200 + rng.IntN(300)
			for i := 0; i < steps; i++ {
				appendOne()
				if rng.IntN(25) == 0 {
					if err := p.Flush(); err != nil {
						t.Fatalf("Flush: %v", err)
					}
				}
				if rng.IntN(120) == 0 {
					if err := p.Snapshot(); err != nil {
						t.Fatalf("Snapshot: %v", err)
					}
				}
			}
			if err := p.Flush(); err != nil {
				t.Fatalf("final Flush: %v", err)
			}

			// Crash: truncate the victim's newest segment at a random
			// offset, chopping off a suffix of its log (possibly
			// mid-frame).
			p.crash()
			victim := persistMarket(rng.IntN(markets))
			segs, _ := filepath.Glob(filepath.Join(dir, "wal", marketDirName(victim), "seg-*.wal"))
			if len(segs) > 0 {
				sort.Strings(segs)
				target := segs[len(segs)-1]
				info, err := os.Stat(target)
				if err != nil {
					t.Fatalf("stat: %v", err)
				}
				cut := rng.Int64N(info.Size() + 1)
				if err := os.Truncate(target, cut); err != nil {
					t.Fatalf("truncate: %v", err)
				}
			}

			re, err := Open(dir, PersistOptions{})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}

			// The recovered victim state must be an exact prefix of its
			// append history; every other market must be complete. Use
			// the recovered per-market generations (== records
			// recovered) to find each prefix length, then replay those
			// prefixes into a pristine in-memory store as the oracle.
			oracle := New()
			applied := make(map[market.SpotID]uint64)
			for _, op := range log {
				if applied[op.market] >= re.Generation(op.market) {
					continue
				}
				op.apply(oracle)
				applied[op.market]++
			}
			for m := 0; m < markets; m++ {
				id := persistMarket(m)
				want := uint64(0)
				for _, op := range log {
					if op.market == id {
						want++
					}
				}
				got := re.Generation(id)
				if got > want {
					t.Fatalf("market %v recovered %d records, more than the %d appended", id, got, want)
				}
				if id != victim && got != want {
					t.Fatalf("untruncated market %v recovered %d of %d records", id, got, want)
				}
			}
			assertStoresEqual(t, re, oracle)
		})
	}
}

// TestWriteJSONConsistentCut is the regression test for the documented
// torn-read race: WriteJSON used to read each record stream in a separate
// pass, so an append racing the dump could land its spike in the spike
// stream while its probe missed the probe stream. Writers here append a
// probe strictly before its paired spike; under a consistent per-shard
// cut no dump can ever hold more spikes than probes for a market.
func TestWriteJSONConsistentCut(t *testing.T) {
	s := New()
	const writers = 4
	const pairs = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		id := persistMarket(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			app := s.Appender(id)
			for i := 0; i < pairs; i++ {
				at := persistBase.Add(time.Duration(i) * time.Second)
				app.AppendProbe(ProbeRecord{At: at, Market: id, Kind: ProbeOnDemand})
				app.AppendSpike(SpikeEvent{At: at, Market: id, Price: 1, Ratio: 2})
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := s.WriteJSON(&buf); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
			snap, err := ReadJSON(strings.NewReader(buf.String()))
			if err != nil {
				t.Errorf("ReadJSON: %v", err)
				return
			}
			for _, a := range snap.Aggregates(persistBase) {
				if a.Spikes > a.TotalProbes {
					t.Errorf("torn dump: market %v has %d spikes but only %d probes", a.Market, a.Spikes, a.TotalProbes)
					return
				}
			}
		}
	}()
	// Writers finish, then the checker is released.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	<-done
}

func TestPersisterClockAndSalt(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p := s.Persister()
	salt := p.Salt()
	if !p.Clock().IsZero() {
		t.Errorf("fresh directory clock = %v, want zero", p.Clock())
	}
	noted := persistBase.Add(42 * time.Hour)
	p.NoteClock(noted)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rp := re.Persister()
	if rp.Salt() != salt {
		t.Errorf("salt changed across restart: %d -> %d", salt, rp.Salt())
	}
	if !rp.Clock().Equal(noted) {
		t.Errorf("clock = %v, want %v", rp.Clock(), noted)
	}
}

func TestClockResumesFromRecoveredRecordsAfterCrash(t *testing.T) {
	// A crash loses the meta clock noted since the last snapshot, but
	// not the flushed records of those ticks. The resume clock must be
	// the newest recovered record, not the stale meta value — otherwise
	// the owner re-simulates (and double-records) a window the store
	// already covers.
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	p := s.Persister()
	id := persistMarket(0)
	p.NoteClock(persistBase)
	if err := p.Snapshot(); err != nil { // persists clock = persistBase
		t.Fatalf("Snapshot: %v", err)
	}
	newest := persistBase.Add(3 * time.Hour)
	s.Appender(id).AppendProbe(ProbeRecord{At: newest, Market: id, Kind: ProbeSpot})
	p.NoteClock(newest) // noted in memory only; never persisted
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	p.crash()

	re, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := re.Persister().Clock(); !got.Equal(newest) {
		t.Errorf("resume clock = %v, want newest recovered record %v", got, newest)
	}
}

func TestSaltRotatesAfterCrashOnly(t *testing.T) {
	// A crash rewinds generations to the last flush; if a different
	// record history later reaches the same count, a pre-crash ETag
	// would falsely revalidate. So the effective salt must rotate after
	// a crash — and only after a crash: clean restarts keep validators
	// alive, which the e2e restart test depends on.
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	salt := s.Persister().Salt()
	if err := s.Persister().Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := s2.Persister().Salt(); got != salt {
		t.Errorf("salt rotated across a clean restart: %d -> %d", salt, got)
	}
	s2.Persister().crash()

	s3, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if got := s3.Persister().Salt(); got == salt {
		t.Error("salt unchanged after a crash; stale pre-crash ETags could answer 304")
	}
	s3.Persister().Close()
}

func TestOpenLocksDataDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := Open(dir, PersistOptions{}); err == nil {
		t.Fatal("second Open of a live data dir succeeded; two writers would corrupt the WAL")
	}
	if err := s.Persister().Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	re.Persister().Close()
}

func TestOpenDropsHeaderOnlySegment(t *testing.T) {
	// A crash between a segment's magic write and its first frame write
	// leaves a header-only file for a market that may hold no records at
	// all. Recovery must remove it, so a later append cannot reuse the
	// name and stack a second magic into the same file (which the next
	// recovery would read as corruption, discarding acknowledged frames).
	dir := t.TempDir()
	id := persistMarket(0)
	shardDir := filepath.Join(dir, "wal", marketDirName(id))
	if err := os.MkdirAll(shardDir, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(shardDir, segmentName(1, 1))
	if err := os.WriteFile(orphan, []byte(walMagic), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("header-only segment survived recovery: stat err = %v", err)
	}
	s.Appender(id).AppendProbe(ProbeRecord{At: persistBase, Market: id, Kind: ProbeSpot})
	if err := s.Persister().Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	s.Persister().crash()

	re, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := re.Generation(id); got != 1 {
		t.Fatalf("recovered generation = %d, want 1", got)
	}
}

func TestOpenFailsOnDamagedNewestSnapshot(t *testing.T) {
	// Compaction deletes the WAL epochs a snapshot covers, so silently
	// falling back past a damaged newest snapshot would present data
	// loss as a successful recovery. Open must refuse instead.
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendWorkload(s, 2, 5)
	if err := s.Persister().Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %v, want one", snaps)
	}
	shardFiles, _ := filepath.Glob(filepath.Join(snaps[0], "*.snap"))
	if len(shardFiles) == 0 {
		t.Fatalf("snapshot %s holds no shard files", snaps[0])
	}
	if err := os.WriteFile(shardFiles[0], []byte("SPOTSNP2garbage-frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, PersistOptions{}); err == nil {
		t.Fatal("Open recovered past a damaged newest snapshot instead of failing")
	}
	// Removing the damaged snapshot is the explicit opt-in to recover
	// from whatever remains.
	if err := os.RemoveAll(snaps[0]); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open after removing damaged snapshot: %v", err)
	}
	re.Persister().Close()
}

func TestOpenRejectsBadWALDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "wal", "not-a-market"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, PersistOptions{}); err == nil {
		t.Fatal("Open accepted a WAL directory that is not a market ID")
	}
}
