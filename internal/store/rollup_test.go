package store

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
	"time"

	"spotlight/internal/market"
)

// rollupMarkets spans three regions, two products, and several zones so
// every rollup granularity has more than one shard feeding it.
var rollupMarkets = []market.SpotID{
	{Zone: "us-east-1a", Type: "c3.large", Product: market.ProductLinux},
	{Zone: "us-east-1a", Type: "m3.large", Product: market.ProductWindows},
	{Zone: "us-east-1d", Type: "c3.xlarge", Product: market.ProductLinux},
	{Zone: "us-east-1d", Type: "r3.large", Product: market.ProductLinux},
	{Zone: "eu-west-1a", Type: "c3.large", Product: market.ProductLinux},
	{Zone: "eu-west-1b", Type: "c3.large", Product: market.ProductWindows},
	{Zone: "sa-east-1a", Type: "m3.medium", Product: market.ProductLinux},
}

// recomputeScope rebuilds a scope's aggregates from scratch out of the
// store's exported record iteration — fully independent of the rollup
// fold, so any drift between the incremental and recomputed state is a
// bug in one of them.
func recomputeScope(s *Store, region market.Region, product market.Product, now time.Time) ScopeAggregates {
	in := func(id market.SpotID) bool {
		if region != "" && id.Region() != region {
			return false
		}
		return product == "" || id.Product == product
	}
	out := ScopeAggregates{Region: region, Product: product}
	for _, id := range s.Markets() {
		if in(id) {
			out.Markets++
		}
	}
	for _, r := range s.Probes() {
		if !in(r.Market) {
			continue
		}
		out.TotalProbes++
		out.ProbeCost += r.Cost
		switch r.Kind {
		case ProbeOnDemand:
			out.ODProbes++
			if r.Rejected {
				out.ODRejected++
			}
		case ProbeSpot:
			out.SpotProbes++
			if r.Rejected {
				out.SpotRejected++
			}
		}
	}
	for _, e := range s.Spikes() {
		if !in(e.Market) {
			continue
		}
		out.Spikes++
		if e.Ratio >= 1 {
			out.SpikesAboveOD++
			if e.Ratio > out.MaxCrossRatio {
				out.MaxCrossRatio = e.Ratio
			}
		}
	}
	for _, o := range s.Outages() {
		if !in(o.Market) {
			continue
		}
		switch o.Kind {
		case ProbeOnDemand:
			out.ODOutages++
			out.ODOutageDur += o.Duration(now)
		case ProbeSpot:
			out.SpotOutages++
			out.SpotOutageDur += o.Duration(now)
		}
	}
	sum := 0.0
	for _, id := range s.PricedMarkets() {
		if !in(id) {
			continue
		}
		for _, p := range s.Prices(id) {
			if out.PriceSamples == 0 || p.Price < out.PriceMin {
				out.PriceMin = p.Price
			}
			if out.PriceSamples == 0 || p.Price > out.PriceMax {
				out.PriceMax = p.Price
			}
			out.PriceSamples++
			sum += p.Price
		}
	}
	if out.PriceSamples > 0 {
		out.PriceMean = sum / float64(out.PriceSamples)
	}
	return out
}

// scopeRecords counts every record of any kind inside a scope — what the
// scope's generation must equal.
func scopeRecords(s *Store, region market.Region, product market.Product) uint64 {
	in := func(id market.SpotID) bool {
		if region != "" && id.Region() != region {
			return false
		}
		return product == "" || id.Product == product
	}
	var n uint64
	for _, r := range s.Probes() {
		if in(r.Market) {
			n++
		}
	}
	for _, e := range s.Spikes() {
		if in(e.Market) {
			n++
		}
	}
	for _, r := range s.BidSpreads() {
		if in(r.Market) {
			n++
		}
	}
	for _, r := range s.Revocations() {
		if in(r.Market) {
			n++
		}
	}
	for _, id := range s.PricedMarkets() {
		if in(id) {
			n += uint64(len(s.Prices(id)))
		}
	}
	return n
}

func floatsClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// assertScopeMatches compares a scope's rollup snapshot against the
// from-scratch recomputation. Float fields accumulate in different orders
// on the two sides, so they compare with a relative tolerance; everything
// else must match exactly.
func assertScopeMatches(t *testing.T, s *Store, region market.Region, product market.Product, now time.Time) {
	t.Helper()
	want := recomputeScope(s, region, product, now)
	got, ok := s.ScopeAggregatesFor(region, product, now)
	if !ok && want.Markets > 0 {
		t.Fatalf("scope (%q,%q): rollup missing but %d markets have records", region, product, want.Markets)
	}
	if got.Markets != want.Markets ||
		got.TotalProbes != want.TotalProbes ||
		got.ODProbes != want.ODProbes || got.ODRejected != want.ODRejected ||
		got.SpotProbes != want.SpotProbes || got.SpotRejected != want.SpotRejected ||
		got.ODOutages != want.ODOutages || got.SpotOutages != want.SpotOutages ||
		got.ODOutageDur != want.ODOutageDur || got.SpotOutageDur != want.SpotOutageDur ||
		got.Spikes != want.Spikes || got.SpikesAboveOD != want.SpikesAboveOD ||
		got.MaxCrossRatio != want.MaxCrossRatio ||
		got.PriceSamples != want.PriceSamples ||
		got.PriceMin != want.PriceMin || got.PriceMax != want.PriceMax {
		t.Errorf("scope (%q,%q):\n rollup    %+v\n recompute %+v", region, product, got, want)
	}
	if !floatsClose(got.ProbeCost, want.ProbeCost) {
		t.Errorf("scope (%q,%q): probe cost %v != %v", region, product, got.ProbeCost, want.ProbeCost)
	}
	if !floatsClose(got.PriceMean, want.PriceMean) {
		t.Errorf("scope (%q,%q): price mean %v != %v", region, product, got.PriceMean, want.PriceMean)
	}
	if gen, wantGen := s.GenerationOfScope(region, product), scopeRecords(s, region, product); gen != wantGen {
		t.Errorf("scope (%q,%q): generation %d != %d records", region, product, gen, wantGen)
	}
}

// scopesOf enumerates every rollup granularity touched by the test
// markets: global, each region, each (region, product), each product.
func scopesOf(ids []market.SpotID) [][2]string {
	seen := map[[2]string]bool{{"", ""}: true}
	for _, id := range ids {
		seen[[2]string{string(id.Region()), ""}] = true
		seen[[2]string{string(id.Region()), string(id.Product)}] = true
		seen[[2]string{"", string(id.Product)}] = true
	}
	out := make([][2]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	return out
}

// TestRollupConsistencyRandomized interleaves concurrent appends of every
// record kind across markets in several regions and products, then asserts
// that each rollup scope's aggregates and generation equal a from-scratch
// recomputation over the shard contents. Run under -race in CI, this is
// the consistency contract of the rollup layer: no append may drift the
// hierarchy from its shards.
func TestRollupConsistencyRandomized(t *testing.T) {
	s := New()
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	const goroutines = 8
	const opsPer = 400

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 0xda7a))
			for i := 0; i < opsPer; i++ {
				id := rollupMarkets[rng.IntN(len(rollupMarkets))]
				at := base.Add(time.Duration(rng.IntN(86400)) * time.Second)
				switch rng.IntN(10) {
				case 0, 1, 2, 3: // probes dominate real ingest
					kind := ProbeOnDemand
					if rng.IntN(2) == 0 {
						kind = ProbeSpot
					}
					s.AppendProbe(ProbeRecord{
						At: at, Market: id, Kind: kind,
						Trigger:  TriggerSpike,
						Rejected: rng.IntN(3) == 0,
						Cost:     rng.Float64(),
					})
				case 4, 5: // batched probes, the monitor flush shape
					n := 1 + rng.IntN(6)
					batch := make([]ProbeRecord, n)
					for j := range batch {
						batch[j] = ProbeRecord{
							At: at.Add(time.Duration(j) * time.Second), Market: id,
							Kind: ProbeOnDemand, Rejected: rng.IntN(4) == 0, Cost: 0.1,
						}
					}
					s.AppendProbes(batch)
				case 6:
					s.AppendSpike(SpikeEvent{At: at, Market: id, Price: rng.Float64() * 3, Ratio: rng.Float64() * 3})
				case 7:
					s.RecordPrice(id, PricePoint{At: at, Price: rng.Float64()})
				case 8:
					s.AppendRevocation(RevocationRecord{At: at, Market: id, Bid: 1, Held: time.Hour})
				default:
					s.AppendBidSpread(BidSpreadRecord{At: at, Market: id, Published: 1, Intrinsic: 2, Attempts: 3})
				}
			}
		}(g)
	}
	wg.Wait()

	now := base.Add(48 * time.Hour)
	for _, scope := range scopesOf(rollupMarkets) {
		assertScopeMatches(t, s, market.Region(scope[0]), market.Product(scope[1]), now)
	}
	// The rollup generations must also agree with the shard-walk variant
	// they shortcut, and with the global counter.
	if got, want := s.GenerationOfScope("", ""), s.ScopeGeneration(nil); got != want {
		t.Errorf("global generation %d != shard-walk sum %d", got, want)
	}
	if got, want := s.GlobalGeneration(), s.ScopeGeneration(nil); got != want {
		t.Errorf("GlobalGeneration %d != shard-walk sum %d", got, want)
	}
}

// TestRollupOpenOutageDuration pins the open-outage arithmetic: an outage
// with no closing probe is measured to the asked-about instant, exactly.
func TestRollupOpenOutageDuration(t *testing.T) {
	s := New()
	base := time.Date(2015, 9, 1, 0, 0, 0, 123456789, time.UTC)
	id := rollupMarkets[0]
	s.AppendProbe(ProbeRecord{At: base, Market: id, Kind: ProbeOnDemand, Rejected: true, Code: "x"})

	now := base.Add(90*time.Minute + 111*time.Nanosecond)
	agg, ok := s.ScopeAggregatesFor(id.Region(), "", now)
	if !ok {
		t.Fatal("region rollup missing")
	}
	if want := now.Sub(base); agg.ODOutageDur != want {
		t.Errorf("open outage duration = %v, want %v", agg.ODOutageDur, want)
	}
	// Closing the outage freezes the duration.
	end := base.Add(30 * time.Minute)
	s.AppendProbe(ProbeRecord{At: end, Market: id, Kind: ProbeOnDemand})
	agg, _ = s.ScopeAggregatesFor(id.Region(), "", now.Add(time.Hour))
	if want := end.Sub(base); agg.ODOutageDur != want {
		t.Errorf("closed outage duration = %v, want %v", agg.ODOutageDur, want)
	}
}

// TestRegionAggregatesOrdering: region-level entries come back in region
// order and region/product entries in (region, product) order.
func TestRegionAggregatesOrdering(t *testing.T) {
	s := New()
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	for _, id := range rollupMarkets {
		s.AppendProbe(ProbeRecord{At: base, Market: id, Kind: ProbeOnDemand})
	}
	regions := s.RegionAggregates(base)
	for i := 1; i < len(regions); i++ {
		if regions[i-1].Region >= regions[i].Region {
			t.Fatalf("region aggregates out of order: %v >= %v", regions[i-1].Region, regions[i].Region)
		}
	}
	if len(regions) != 3 {
		t.Fatalf("got %d region entries, want 3", len(regions))
	}
	rps := s.RegionProductAggregates(base)
	for i := 1; i < len(rps); i++ {
		a, b := rps[i-1], rps[i]
		if a.Region > b.Region || (a.Region == b.Region && a.Product >= b.Product) {
			t.Fatalf("region/product aggregates out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

// TestPriceStatsInMatchesPricesIn: the in-shard fold must agree with the
// copy-then-scan path it replaces, on both ordered and unordered series.
func TestPriceStatsInMatchesPricesIn(t *testing.T) {
	s := New()
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	id := rollupMarkets[0]
	// Out-of-order appends flip the shard to scan mode.
	offsets := []int{5, 2, 9, 1, 7, 3, 8, 0, 6, 4}
	for i, off := range offsets {
		s.RecordPrice(id, PricePoint{At: base.Add(time.Duration(off) * time.Hour), Price: float64(i%4) + 0.5})
	}
	from, to := base.Add(2*time.Hour), base.Add(8*time.Hour)
	st := s.PriceStatsIn(id, from, to)
	pts := s.PricesIn(id, from, to)
	if st.Samples != len(pts) {
		t.Fatalf("samples = %d, want %d", st.Samples, len(pts))
	}
	min, max, sum := pts[0].Price, pts[0].Price, 0.0
	for _, p := range pts {
		if p.Price < min {
			min = p.Price
		}
		if p.Price > max {
			max = p.Price
		}
		sum += p.Price
	}
	if st.Min != min || st.Max != max || !floatsClose(st.Mean, sum/float64(len(pts))) {
		t.Errorf("stats %+v, want min=%v mean=%v max=%v", st, min, sum/float64(len(pts)), max)
	}
	if empty := s.PriceStatsIn(rollupMarkets[1], from, to); empty.Samples != 0 {
		t.Errorf("missing market stats = %+v, want zero", empty)
	}
}
