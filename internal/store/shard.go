package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/market"
)

// probeKinds is the number of contract kinds a shard indexes separately
// (ProbeOnDemand and ProbeSpot).
const probeKinds = 2

// kindIndex maps a ProbeKind to its aggregate slot; records with an
// unknown kind are logged but excluded from per-kind indexes.
func kindIndex(k ProbeKind) (int, bool) {
	if k == ProbeOnDemand || k == ProbeSpot {
		return int(k) - 1, true
	}
	return 0, false
}

// kindAgg is the incrementally-maintained per-kind summary of one shard.
type kindAgg struct {
	probes   int
	rejected int
	// outages counts every derived outage interval, including an open one.
	outages int
	// closedOutageDur sums End-Start over closed outages.
	closedOutageDur time.Duration
	// openOutageStart is the start of the ongoing outage; zero when the
	// kind is currently available.
	openOutageStart time.Time
}

// outageDur returns the total detected outage time measured to now,
// ongoing outage included.
func (a *kindAgg) outageDur(now time.Time) time.Duration {
	d := a.closedOutageDur
	if !a.openOutageStart.IsZero() {
		d += now.Sub(a.openOutageStart)
	}
	return d
}

// shardAgg holds one shard's running summaries, updated on every append so
// aggregate queries never rescan the log.
type shardAgg struct {
	byKind     [probeKinds]kindAgg
	probeCount int // all kinds, unknown included
	probeCost  float64

	spikes        int
	spikesAboveOD int

	priceCount         int
	priceSum           float64
	priceMin, priceMax float64
}

// shard holds every record of one spot market behind its own lock, so
// writes to different markets never contend and per-market queries never
// scan other markets' history.
type shard struct {
	mu  sync.RWMutex
	id  market.SpotID
	key string // id.String(), cached for deterministic shard ordering

	// gen counts every record ever appended to this shard (probes, spikes,
	// bid spreads, revocations, prices). It is the per-shard invalidation
	// signal for response caches: any append that could change a query
	// result bumps the generation of exactly one shard, so a cache entry is
	// valid iff the generations of the shards in its scope are unchanged.
	// Atomic so readers never take the shard lock.
	gen atomic.Uint64

	probes      []ProbeRecord
	spikes      []SpikeEvent
	bidSpreads  []BidSpreadRecord
	revocations []RevocationRecord
	prices      []PricePoint
	outages     []OutageRecord

	// crossings is the incremental index of spikes with Ratio >= 1 (the
	// on-demand price crossings behind every stability/volatility query),
	// stored compactly — queries only need when and how big.
	crossings []crossing

	// Ordered flags track whether the corresponding slice is appended in
	// non-decreasing time order; while true, window queries binary-search
	// instead of scanning.
	probesOrdered      bool
	spikesOrdered      bool
	crossingsOrdered   bool
	pricesOrdered      bool
	revocationsOrdered bool
	bidSpreadsOrdered  bool
	outagesOrdered     bool // by Start; follows probesOrdered in practice

	// openOutage[k] is 1+index into outages of kind k's ongoing outage;
	// 0 means the kind is currently available.
	openOutage [probeKinds]int

	agg shardAgg

	// rp and rg are the shard's (region, product) and region-level rollup
	// entries, and storeGen the store's global generation counter; every
	// append publishes its rollupDelta to all three. Wired once at shard
	// creation, immutable afterwards.
	rp, rg   *rollup
	storeGen *atomic.Uint64
}

// publish folds an append batch's delta into the shard's rollup hierarchy.
// Ordering carries the cache-consistency invariant: the generation
// counters must only become visible once the state they count is
// readable, otherwise a response cache could store a result computed
// without this append under a generation that claims to include it. So
// publish runs after the shard lock is released (shard records land
// first), each rollup bumps its own counter after folding its aggregates
// (rollup.apply), and the global counter — which vouches for every level
// — bumps last.
func (sh *shard) publish(d *rollupDelta) {
	sh.rp.apply(d)
	sh.rg.apply(d)
	sh.storeGen.Add(d.records)
}

func newShard(id market.SpotID) *shard {
	return &shard{
		id:                 id,
		key:                id.String(),
		probesOrdered:      true,
		spikesOrdered:      true,
		crossingsOrdered:   true,
		pricesOrdered:      true,
		revocationsOrdered: true,
		bidSpreadsOrdered:  true,
		outagesOrdered:     true,
	}
}

func (sh *shard) appendProbe(r ProbeRecord) {
	var d rollupDelta
	sh.mu.Lock()
	sh.appendProbeLocked(r, &d)
	sh.mu.Unlock()
	sh.publish(&d)
}

// appendProbes logs a batch of probes under one lock acquisition,
// amortizing the lock, the cache-line traffic of the aggregate updates,
// and the rollup fold (one publish per batch) across the batch (bulk
// loads, simulator replay, the monitor tick flush).
func (sh *shard) appendProbes(rs []ProbeRecord) {
	if len(rs) == 0 {
		return
	}
	var d rollupDelta
	sh.mu.Lock()
	for _, r := range rs {
		sh.appendProbeLocked(r, &d)
	}
	sh.mu.Unlock()
	sh.publish(&d)
}

func (sh *shard) appendProbeLocked(r ProbeRecord, d *rollupDelta) {
	sh.gen.Add(1)
	d.records++
	if n := len(sh.probes); n > 0 && r.At.Before(sh.probes[n-1].At) {
		sh.probesOrdered = false
	}
	sh.probes = append(sh.probes, r)
	sh.agg.probeCount++
	sh.agg.probeCost += r.Cost
	d.probeCount++
	d.probeCost += r.Cost

	ki, ok := kindIndex(r.Kind)
	if !ok {
		return
	}
	ka, kd := &sh.agg.byKind[ki], &d.byKind[ki]
	ka.probes++
	kd.probes++
	if r.Rejected {
		ka.rejected++
		kd.rejected++
	}
	switch {
	case r.Rejected && sh.openOutage[ki] == 0:
		if n := len(sh.outages); n > 0 && r.At.Before(sh.outages[n-1].Start) {
			sh.outagesOrdered = false
		}
		sh.outages = append(sh.outages, OutageRecord{
			Market: r.Market, Kind: r.Kind, Start: r.At,
		})
		sh.openOutage[ki] = len(sh.outages)
		ka.outages++
		ka.openOutageStart = r.At
		kd.outages++
		kd.openOutage(r.At)
	case !r.Rejected && sh.openOutage[ki] != 0:
		o := &sh.outages[sh.openOutage[ki]-1]
		o.End = r.At
		ka.closedOutageDur += o.End.Sub(o.Start)
		ka.openOutageStart = time.Time{}
		sh.openOutage[ki] = 0
		kd.closeOutage(o.Start, o.End.Sub(o.Start))
	}
}

func (sh *shard) appendSpike(e SpikeEvent) {
	d := rollupDelta{records: 1, spikes: 1}
	sh.mu.Lock()
	sh.gen.Add(1)
	if n := len(sh.spikes); n > 0 && e.At.Before(sh.spikes[n-1].At) {
		sh.spikesOrdered = false
	}
	sh.spikes = append(sh.spikes, e)
	sh.agg.spikes++
	if e.Ratio >= 1 {
		if n := len(sh.crossings); n > 0 && e.At.Before(sh.crossings[n-1].at) {
			sh.crossingsOrdered = false
		}
		sh.crossings = append(sh.crossings, crossing{at: e.At, ratio: e.Ratio})
		sh.agg.spikesAboveOD++
		d.spikesAboveOD = 1
		d.maxCrossRatio = e.Ratio
	}
	sh.mu.Unlock()
	sh.publish(&d)
}

// crossing is one compact entry of the price-crossing index.
type crossing struct {
	at    time.Time
	ratio float64
}

func (sh *shard) appendBidSpread(r BidSpreadRecord) {
	d := rollupDelta{records: 1}
	sh.mu.Lock()
	sh.gen.Add(1)
	if n := len(sh.bidSpreads); n > 0 && r.At.Before(sh.bidSpreads[n-1].At) {
		sh.bidSpreadsOrdered = false
	}
	sh.bidSpreads = append(sh.bidSpreads, r)
	sh.mu.Unlock()
	sh.publish(&d)
}

func (sh *shard) appendRevocation(r RevocationRecord) {
	d := rollupDelta{records: 1}
	sh.mu.Lock()
	sh.gen.Add(1)
	if n := len(sh.revocations); n > 0 && r.At.Before(sh.revocations[n-1].At) {
		sh.revocationsOrdered = false
	}
	sh.revocations = append(sh.revocations, r)
	sh.mu.Unlock()
	sh.publish(&d)
}

func (sh *shard) appendPrice(p PricePoint) {
	var d rollupDelta
	d.records = 1
	d.price(p.Price)
	sh.mu.Lock()
	sh.gen.Add(1)
	if n := len(sh.prices); n > 0 && p.At.Before(sh.prices[n-1].At) {
		sh.pricesOrdered = false
	}
	sh.prices = append(sh.prices, p)
	sh.agg.priceCount++
	sh.agg.priceSum += p.Price
	if sh.agg.priceCount == 1 || p.Price < sh.agg.priceMin {
		sh.agg.priceMin = p.Price
	}
	if sh.agg.priceCount == 1 || p.Price > sh.agg.priceMax {
		sh.agg.priceMax = p.Price
	}
	sh.mu.Unlock()
	sh.publish(&d)
}

// windowBounds returns the half-open index range [lo, hi) of the elements
// whose timestamp falls inside [from, to], assuming at(i) is
// non-decreasing in i.
func windowBounds(n int, at func(int) time.Time, from, to time.Time) (int, int) {
	lo := sort.Search(n, func(i int) bool { return !at(i).Before(from) })
	hi := sort.Search(n, func(i int) bool { return at(i).After(to) })
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// windowSlice copies the elements of src with timestamps in [from, to]
// into dst. When ordered, the range is located by binary search; otherwise
// the slice is scanned.
func windowSlice[T any](dst []T, src []T, ordered bool, at func(T) time.Time, from, to time.Time) []T {
	if ordered {
		lo, hi := windowBounds(len(src), func(i int) time.Time { return at(src[i]) }, from, to)
		return append(dst, src[lo:hi]...)
	}
	for _, v := range src {
		t := at(v)
		if t.Before(from) || t.After(to) {
			continue
		}
		dst = append(dst, v)
	}
	return dst
}

func (sh *shard) spikesIn(dst []SpikeEvent, from, to time.Time) []SpikeEvent {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return windowSlice(dst, sh.spikes, sh.spikesOrdered, spikeAt, from, to)
}

func (sh *shard) pricesIn(dst []PricePoint, from, to time.Time) []PricePoint {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return windowSlice(dst, sh.prices, sh.pricesOrdered, priceAt, from, to)
}

func (sh *shard) probesIn(dst []ProbeRecord, from, to time.Time) []ProbeRecord {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return windowSlice(dst, sh.probes, sh.probesOrdered, probeAt, from, to)
}

func (sh *shard) revocationsIn(dst []RevocationRecord, from, to time.Time) []RevocationRecord {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return windowSlice(dst, sh.revocations, sh.revocationsOrdered, revocationAt, from, to)
}

// priceStats folds min/sum/max over the price points inside [from, to]
// without copying the series: the windowed range is located by binary
// search when ordered, and the fold runs under the shard's read lock.
func (sh *shard) priceStats(from, to time.Time) (samples int, min, sum, max float64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fold := func(p PricePoint) {
		if samples == 0 || p.Price < min {
			min = p.Price
		}
		if samples == 0 || p.Price > max {
			max = p.Price
		}
		samples++
		sum += p.Price
	}
	if sh.pricesOrdered {
		lo, hi := windowBounds(len(sh.prices), func(i int) time.Time { return sh.prices[i].At }, from, to)
		for _, p := range sh.prices[lo:hi] {
			fold(p)
		}
		return samples, min, sum, max
	}
	for _, p := range sh.prices {
		if p.At.Before(from) || p.At.After(to) {
			continue
		}
		fold(p)
	}
	return samples, min, sum, max
}

// crossingStats counts the on-demand price crossings inside [from, to] and
// their largest spike ratio, using the incremental crossings index.
func (sh *shard) crossingStats(from, to time.Time) (count int, maxRatio float64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.crossingsOrdered {
		lo, hi := windowBounds(len(sh.crossings), func(i int) time.Time { return sh.crossings[i].at }, from, to)
		for _, e := range sh.crossings[lo:hi] {
			count++
			if e.ratio > maxRatio {
				maxRatio = e.ratio
			}
		}
		return count, maxRatio
	}
	for _, e := range sh.crossings {
		if e.at.Before(from) || e.at.After(to) {
			continue
		}
		count++
		if e.ratio > maxRatio {
			maxRatio = e.ratio
		}
	}
	return count, maxRatio
}

// outageOverlap sums how much of [from, to] the shard's detected outages of
// one kind cover, without copying the interval list.
func (sh *shard) outageOverlap(kind ProbeKind, from, to time.Time) time.Duration {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	total := time.Duration(0)
	for _, o := range sh.outages {
		if o.Kind == kind {
			total += overlapWindow(o.Start, o.End, from, to)
		}
	}
	return total
}

// overlapWindow returns how much of [from, to] the interval [start, end]
// covers; a zero end means the interval is still open.
func overlapWindow(start, end, from, to time.Time) time.Duration {
	if end.IsZero() {
		end = to
	}
	if start.Before(from) {
		start = from
	}
	if end.After(to) {
		end = to
	}
	if !end.After(start) {
		return 0
	}
	return end.Sub(start)
}

// Timestamp accessors shared by the window helpers.
func probeAt(r ProbeRecord) time.Time           { return r.At }
func spikeAt(e SpikeEvent) time.Time            { return e.At }
func priceAt(p PricePoint) time.Time            { return p.At }
func revocationAt(r RevocationRecord) time.Time { return r.At }
func bidSpreadAt(r BidSpreadRecord) time.Time   { return r.At }
func outageAt(o OutageRecord) time.Time         { return o.Start }
