package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/market"
)

// probeKinds is the number of contract kinds a shard indexes separately
// (ProbeOnDemand and ProbeSpot).
const probeKinds = 2

// kindIndex maps a ProbeKind to its aggregate slot; records with an
// unknown kind are logged but excluded from per-kind indexes.
func kindIndex(k ProbeKind) (int, bool) {
	if k == ProbeOnDemand || k == ProbeSpot {
		return int(k) - 1, true
	}
	return 0, false
}

// kindAgg is the incrementally-maintained per-kind summary of one shard.
type kindAgg struct {
	probes   int
	rejected int
	// outages counts every derived outage interval, including an open one.
	outages int
	// closedOutageDur sums End-Start over closed outages.
	closedOutageDur time.Duration
	// openOutageStart is the start of the ongoing outage; zero when the
	// kind is currently available.
	openOutageStart time.Time
}

// outageDur returns the total detected outage time measured to now,
// ongoing outage included.
func (a *kindAgg) outageDur(now time.Time) time.Duration {
	d := a.closedOutageDur
	if !a.openOutageStart.IsZero() {
		d += now.Sub(a.openOutageStart)
	}
	return d
}

// shardAgg holds one shard's running summaries, updated on every append so
// aggregate queries never rescan the log.
type shardAgg struct {
	byKind     [probeKinds]kindAgg
	probeCount int // all kinds, unknown included
	probeCost  float64

	spikes        int
	spikesAboveOD int

	priceCount         int
	priceSum           float64
	priceMin, priceMax float64
}

// shard holds every record of one spot market behind its own lock, so
// writes to different markets never contend and per-market queries never
// scan other markets' history.
type shard struct {
	mu  sync.RWMutex
	id  market.SpotID
	key string // id.String(), cached for deterministic shard ordering

	// gen counts every record ever appended to this shard (probes, spikes,
	// bid spreads, revocations, prices). It is the per-shard invalidation
	// signal for response caches: any append that could change a query
	// result bumps the generation of exactly one shard, so a cache entry is
	// valid iff the generations of the shards in its scope are unchanged.
	// Atomic so readers never take the shard lock.
	gen atomic.Uint64

	// Record families are stored column-oriented (see columns.go): the
	// windowed folds scan only the columns they read, and captures alias
	// the append-only columns instead of copying them.
	probes      probeCols
	spikes      spikeCols
	bidSpreads  bidSpreadCols
	revocations revocationCols
	prices      priceCols
	outages     outageCols

	// crossings is the incremental index of spikes with Ratio >= 1 (the
	// on-demand price crossings behind every stability/volatility query),
	// stored compactly — queries only need when and how big.
	crossings []crossing

	// Ordered flags track whether the corresponding slice is appended in
	// non-decreasing time order; while true, window queries binary-search
	// instead of scanning.
	probesOrdered      bool
	spikesOrdered      bool
	crossingsOrdered   bool
	pricesOrdered      bool
	revocationsOrdered bool
	bidSpreadsOrdered  bool
	outagesOrdered     bool // by Start; follows probesOrdered in practice

	// openOutage[k] is 1+index into outages of kind k's ongoing outage;
	// 0 means the kind is currently available.
	openOutage [probeKinds]int

	agg shardAgg

	// rp and rg are the shard's (region, product) and region-level rollup
	// entries, and storeGen the store's global generation counter; every
	// append publishes its rollupDelta to all three. Wired once at shard
	// creation, immutable afterwards.
	rp, rg   *rollup
	storeGen *atomic.Uint64

	// feed is the store's change-feed hub; append paths publish the
	// round's typed events to it alongside the rollup fold. Wired at
	// creation like rp/rg, immutable afterwards.
	feed *Feed

	// wal is the shard's write-ahead log handle, nil for in-memory
	// stores. Like rp/rg it is wired before the shard is published (at
	// creation, or during single-threaded recovery) and immutable after.
	wal *shardWAL

	// metrics is the owning store's instrument block, wired at creation
	// like rp/rg and immutable after; its instruments are nil no-ops
	// until Store.EnableMetrics.
	metrics *storeMetrics
}

// walBufPool recycles the scratch buffers append paths encode WAL frames
// into before taking the shard lock.
var walBufPool = sync.Pool{New: func() any { return new([]byte) }}

// encodeForWAL pre-encodes one or more frames outside the shard lock so
// the lock-held portion of a durable append is a single buffer copy. It
// returns nil when the store is in-memory.
func (sh *shard) encodeForWAL(enc func([]byte) []byte) *[]byte {
	if sh.wal == nil {
		return nil
	}
	bp := walBufPool.Get().(*[]byte)
	*bp = enc((*bp)[:0])
	return bp
}

// walAppendLocked hands pre-encoded frames to the shard's log. Must run
// under sh.mu so the WAL byte order agrees exactly with the in-memory
// append order. The returned flag asks the caller to drain the buffer
// once the shard lock is released (see walFinish).
func (sh *shard) walAppendLocked(bp *[]byte) bool {
	if bp == nil {
		return false
	}
	return sh.wal.append(*bp)
}

// walFinish runs after the shard lock is released: it recycles the
// encode buffer and, when the append left the log's pending buffer over
// its threshold, flushes it to disk without blocking the shard.
func (sh *shard) walFinish(bp *[]byte, oversized bool) {
	if bp == nil {
		return
	}
	walBufPool.Put(bp)
	if oversized {
		sh.wal.flushOversized()
	}
}

// publish folds an append batch's delta into the shard's rollup hierarchy
// and fans the round's events out to the change feed. Ordering carries
// the cache-consistency invariant: the generation counters must only
// become visible once the state they count is readable, otherwise a
// response cache could store a result computed without this append under
// a generation that claims to include it. So publish runs after the shard
// lock is released (shard records land first), each rollup bumps its own
// counter after folding its aggregates (rollup.apply), and the global
// counter — which vouches for every level — bumps last. The feed publish
// runs after that, stamped with the post-append generation, so every
// event a subscriber receives describes state the query surface already
// serves.
func (sh *shard) publish(d *rollupDelta) {
	sh.rp.apply(d)
	sh.rg.apply(d)
	gen := sh.storeGen.Add(d.records)
	sh.metrics.appendBatches.Inc()
	sh.metrics.appendRecords.Add(d.records)
	if len(d.events) > 0 {
		sh.feed.publish(d.events, gen)
	}
}

// armEvents decides once per append round whether the round should
// construct feed events: one atomic load when nobody subscribes.
func (sh *shard) armEvents(d *rollupDelta) {
	d.emit = sh.feed.enabled()
}

func newShard(id market.SpotID) *shard {
	return &shard{
		id:                 id,
		key:                id.String(),
		probesOrdered:      true,
		spikesOrdered:      true,
		crossingsOrdered:   true,
		pricesOrdered:      true,
		revocationsOrdered: true,
		bidSpreadsOrdered:  true,
		outagesOrdered:     true,
	}
}

func (sh *shard) appendProbe(r ProbeRecord) {
	var d rollupDelta
	sh.armEvents(&d)
	if d.emit {
		cp := r
		d.events = append(d.events, Event{Kind: EventProbe, Market: sh.id, At: cp.At, Probe: &cp})
	}
	enc := sh.encodeForWAL(func(b []byte) []byte { return appendProbeFrame(b, r) })
	sh.mu.Lock()
	sh.appendProbeLocked(&r, &d)
	oversized := sh.walAppendLocked(enc)
	sh.mu.Unlock()
	sh.walFinish(enc, oversized)
	sh.publish(&d)
}

// appendProbes logs a batch of probes under one lock acquisition,
// amortizing the lock, the cache-line traffic of the aggregate updates,
// and the rollup fold (one publish per batch) across the batch (bulk
// loads, simulator replay, the monitor tick flush). The WAL frames of the
// whole batch are encoded before the lock and land in the same round.
func (sh *shard) appendProbes(rs []ProbeRecord) {
	if len(rs) == 0 {
		return
	}
	var d rollupDelta
	sh.armEvents(&d)
	if d.emit {
		// Copy the batch before eventing it: callers (the monitor tick
		// flush) reuse their record buffers across rounds.
		cp := append([]ProbeRecord(nil), rs...)
		d.events = make([]Event, 0, len(cp))
		for i := range cp {
			d.events = append(d.events, Event{Kind: EventProbe, Market: sh.id, At: cp[i].At, Probe: &cp[i]})
		}
	}
	enc := sh.encodeForWAL(func(b []byte) []byte {
		for _, r := range rs {
			b = appendProbeFrame(b, r)
		}
		return b
	})
	sh.mu.Lock()
	for i := range rs {
		sh.appendProbeLocked(&rs[i], &d)
	}
	oversized := sh.walAppendLocked(enc)
	sh.mu.Unlock()
	sh.walFinish(enc, oversized)
	sh.publish(&d)
}

func (sh *shard) appendProbeLocked(r *ProbeRecord, d *rollupDelta) {
	sh.gen.Add(1)
	d.records++
	if n := sh.probes.n(); n > 0 && r.At.Before(sh.probes.at[n-1]) {
		sh.probesOrdered = false
	}
	sh.probes.push(r)
	sh.agg.probeCount++
	sh.agg.probeCost += r.Cost
	d.probeCount++
	d.probeCost += r.Cost

	ki, ok := kindIndex(r.Kind)
	if !ok {
		return
	}
	ka, kd := &sh.agg.byKind[ki], &d.byKind[ki]
	ka.probes++
	kd.probes++
	if r.Rejected {
		ka.rejected++
		kd.rejected++
	}
	switch {
	case r.Rejected && sh.openOutage[ki] == 0:
		if n := sh.outages.n(); n > 0 && r.At.Before(sh.outages.start[n-1]) {
			sh.outagesOrdered = false
		}
		sh.outages.push(OutageRecord{
			Market: r.Market, Kind: r.Kind, Start: r.At,
		})
		sh.openOutage[ki] = sh.outages.n()
		ka.outages++
		ka.openOutageStart = r.At
		kd.outages++
		kd.openOutage(r.At)
		if d.emit {
			cp := sh.outages.get(sh.outages.n()-1, sh.id)
			d.events = append(d.events, Event{Kind: EventOutageOpen, Market: r.Market, At: r.At, Outage: &cp})
		}
	case !r.Rejected && sh.openOutage[ki] != 0:
		oi := sh.openOutage[ki] - 1
		sh.outages.end[oi] = r.At
		start := sh.outages.start[oi]
		ka.closedOutageDur += r.At.Sub(start)
		ka.openOutageStart = time.Time{}
		sh.openOutage[ki] = 0
		kd.closeOutage(start, r.At.Sub(start))
		if d.emit {
			cp := sh.outages.get(oi, sh.id)
			d.events = append(d.events, Event{Kind: EventOutageClose, Market: r.Market, At: r.At, Outage: &cp})
		}
	}
}

func (sh *shard) appendSpike(e SpikeEvent) {
	var d rollupDelta
	sh.armEvents(&d)
	if d.emit {
		cp := e
		d.events = append(d.events, Event{Kind: EventSpike, Market: sh.id, At: cp.At, Spike: &cp})
	}
	enc := sh.encodeForWAL(func(b []byte) []byte { return appendSpikeFrame(b, e) })
	sh.mu.Lock()
	sh.appendSpikeLocked(&e, &d)
	oversized := sh.walAppendLocked(enc)
	sh.mu.Unlock()
	sh.walFinish(enc, oversized)
	sh.publish(&d)
}

// appendSpikes logs a batch of spike events under one lock round and one
// rollup publish (the replay bulk-load path).
func (sh *shard) appendSpikes(es []SpikeEvent) {
	if len(es) == 0 {
		return
	}
	var d rollupDelta
	sh.armEvents(&d)
	if d.emit {
		cp := append([]SpikeEvent(nil), es...)
		d.events = make([]Event, 0, len(cp))
		for i := range cp {
			d.events = append(d.events, Event{Kind: EventSpike, Market: sh.id, At: cp[i].At, Spike: &cp[i]})
		}
	}
	enc := sh.encodeForWAL(func(b []byte) []byte {
		for _, e := range es {
			b = appendSpikeFrame(b, e)
		}
		return b
	})
	sh.mu.Lock()
	for i := range es {
		sh.appendSpikeLocked(&es[i], &d)
	}
	oversized := sh.walAppendLocked(enc)
	sh.mu.Unlock()
	sh.walFinish(enc, oversized)
	sh.publish(&d)
}

func (sh *shard) appendSpikeLocked(e *SpikeEvent, d *rollupDelta) {
	sh.gen.Add(1)
	d.records++
	d.spikes++
	if n := sh.spikes.n(); n > 0 && e.At.Before(sh.spikes.at[n-1]) {
		sh.spikesOrdered = false
	}
	sh.spikes.push(e)
	sh.agg.spikes++
	if e.Ratio >= 1 {
		if n := len(sh.crossings); n > 0 && e.At.Before(sh.crossings[n-1].at) {
			sh.crossingsOrdered = false
		}
		sh.crossings = append(sh.crossings, crossing{at: e.At, ratio: e.Ratio})
		sh.agg.spikesAboveOD++
		d.spikesAboveOD++
		if e.Ratio > d.maxCrossRatio {
			d.maxCrossRatio = e.Ratio
		}
	}
}

// crossing is one compact entry of the price-crossing index.
type crossing struct {
	at    time.Time
	ratio float64
}

func (sh *shard) appendBidSpread(r BidSpreadRecord) {
	sh.appendBidSpreads([]BidSpreadRecord{r})
}

// appendBidSpreads logs a batch of intrinsic-price search results under
// one lock round and one rollup publish.
func (sh *shard) appendBidSpreads(rs []BidSpreadRecord) {
	if len(rs) == 0 {
		return
	}
	var d rollupDelta
	sh.armEvents(&d)
	if d.emit {
		cp := append([]BidSpreadRecord(nil), rs...)
		d.events = make([]Event, 0, len(cp))
		for i := range cp {
			d.events = append(d.events, Event{Kind: EventBidSpread, Market: sh.id, At: cp[i].At, BidSpread: &cp[i]})
		}
	}
	enc := sh.encodeForWAL(func(b []byte) []byte {
		for _, r := range rs {
			b = appendBidSpreadFrame(b, r)
		}
		return b
	})
	sh.mu.Lock()
	for i := range rs {
		sh.appendBidSpreadLocked(&rs[i], &d)
	}
	oversized := sh.walAppendLocked(enc)
	sh.mu.Unlock()
	sh.walFinish(enc, oversized)
	sh.publish(&d)
}

func (sh *shard) appendBidSpreadLocked(r *BidSpreadRecord, d *rollupDelta) {
	sh.gen.Add(1)
	d.records++
	if n := sh.bidSpreads.n(); n > 0 && r.At.Before(sh.bidSpreads.at[n-1]) {
		sh.bidSpreadsOrdered = false
	}
	sh.bidSpreads.push(r)
}

func (sh *shard) appendRevocation(r RevocationRecord) {
	sh.appendRevocations([]RevocationRecord{r})
}

// appendRevocations logs a batch of revocation watches under one lock
// round and one rollup publish.
func (sh *shard) appendRevocations(rs []RevocationRecord) {
	if len(rs) == 0 {
		return
	}
	var d rollupDelta
	sh.armEvents(&d)
	if d.emit {
		cp := append([]RevocationRecord(nil), rs...)
		d.events = make([]Event, 0, len(cp))
		for i := range cp {
			d.events = append(d.events, Event{Kind: EventRevocation, Market: sh.id, At: cp[i].At, Revocation: &cp[i]})
		}
	}
	enc := sh.encodeForWAL(func(b []byte) []byte {
		for _, r := range rs {
			b = appendRevocationFrame(b, r)
		}
		return b
	})
	sh.mu.Lock()
	for i := range rs {
		sh.appendRevocationLocked(&rs[i], &d)
	}
	oversized := sh.walAppendLocked(enc)
	sh.mu.Unlock()
	sh.walFinish(enc, oversized)
	sh.publish(&d)
}

func (sh *shard) appendRevocationLocked(r *RevocationRecord, d *rollupDelta) {
	sh.gen.Add(1)
	d.records++
	if n := sh.revocations.n(); n > 0 && r.At.Before(sh.revocations.at[n-1]) {
		sh.revocationsOrdered = false
	}
	sh.revocations.push(r)
}

func (sh *shard) appendPrice(p PricePoint) {
	var d rollupDelta
	sh.armEvents(&d)
	if d.emit {
		cp := p
		d.events = append(d.events, Event{Kind: EventPrice, Market: sh.id, At: cp.At, Price: &cp})
	}
	enc := sh.encodeForWAL(func(b []byte) []byte { return appendPriceFrame(b, p) })
	sh.mu.Lock()
	sh.appendPriceLocked(&p, &d)
	oversized := sh.walAppendLocked(enc)
	sh.mu.Unlock()
	sh.walFinish(enc, oversized)
	sh.publish(&d)
}

// appendPrices logs a whole price series under one lock round and one
// rollup publish (the replay bulk-load path: watched markets carry the
// densest series in a study).
func (sh *shard) appendPrices(ps []PricePoint) {
	if len(ps) == 0 {
		return
	}
	var d rollupDelta
	sh.armEvents(&d)
	if d.emit {
		cp := append([]PricePoint(nil), ps...)
		d.events = make([]Event, 0, len(cp))
		for i := range cp {
			d.events = append(d.events, Event{Kind: EventPrice, Market: sh.id, At: cp[i].At, Price: &cp[i]})
		}
	}
	enc := sh.encodeForWAL(func(b []byte) []byte {
		for _, p := range ps {
			b = appendPriceFrame(b, p)
		}
		return b
	})
	sh.mu.Lock()
	for i := range ps {
		sh.appendPriceLocked(&ps[i], &d)
	}
	oversized := sh.walAppendLocked(enc)
	sh.mu.Unlock()
	sh.walFinish(enc, oversized)
	sh.publish(&d)
}

func (sh *shard) appendPriceLocked(p *PricePoint, d *rollupDelta) {
	sh.gen.Add(1)
	d.records++
	d.price(p.Price)
	if n := sh.prices.n(); n > 0 && p.At.Before(sh.prices.at[n-1]) {
		sh.pricesOrdered = false
	}
	sh.prices.push(p)
	sh.agg.priceCount++
	sh.agg.priceSum += p.Price
	if sh.agg.priceCount == 1 || p.Price < sh.agg.priceMin {
		sh.agg.priceMin = p.Price
	}
	if sh.agg.priceCount == 1 || p.Price > sh.agg.priceMax {
		sh.agg.priceMax = p.Price
	}
}

// shardCapture is one shard's full record state cut under a single lock
// hold — the per-shard consistent cut behind snapshots and WriteJSON: no
// append can land in some of a market's record streams and not others.
// The append-only column families are captured zero-copy: the capture
// holds the column slice headers as of the cut, and later appends only
// write past the captured lengths (or into fresh backing arrays). Only
// the outage columns — whose end timestamps are rewritten when an outage
// closes — are deep-copied.
type shardCapture struct {
	id market.SpotID

	// gen is the shard's record count at the cut; per-shard snapshot
	// files use it to detect that a shard is unchanged since the last
	// snapshot (record count never decreases).
	gen uint64

	probes      probeCols
	spikes      spikeCols
	bidSpreads  bidSpreadCols
	revocations revocationCols
	prices      priceCols
	outages     outageCols

	probesOrdered      bool
	spikesOrdered      bool
	bidSpreadsOrdered  bool
	revocationsOrdered bool
	pricesOrdered      bool
	outagesOrdered     bool

	// walErr reports a failed WAL cut when capture also advanced the
	// shard's log epoch (snapshot path only).
	walErr error
}

// capture cuts every record stream of the shard atomically. When
// cutEpoch is nonzero the shard's WAL flushes its pre-cut bytes and
// advances to that epoch inside the same lock hold, which is what makes
// "in the snapshot" and "in a segment the snapshot does not cover"
// mutually exclusive and exhaustive (see Persister.Snapshot).
func (sh *shard) capture(cutEpoch uint64) shardCapture {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c := shardCapture{
		id:                 sh.id,
		gen:                sh.gen.Load(),
		probes:             sh.probes,
		spikes:             sh.spikes,
		bidSpreads:         sh.bidSpreads,
		revocations:        sh.revocations,
		prices:             sh.prices,
		outages:            sh.outages.clone(),
		probesOrdered:      sh.probesOrdered,
		spikesOrdered:      sh.spikesOrdered,
		bidSpreadsOrdered:  sh.bidSpreadsOrdered,
		revocationsOrdered: sh.revocationsOrdered,
		pricesOrdered:      sh.pricesOrdered,
		outagesOrdered:     sh.outagesOrdered,
	}
	if cutEpoch != 0 && sh.wal != nil {
		c.walErr = sh.wal.cutTo(cutEpoch)
	}
	return c
}

// windowBounds returns the half-open index range [lo, hi) of the elements
// whose timestamp falls inside [from, to], assuming at(i) is
// non-decreasing in i.
func windowBounds(n int, at func(int) time.Time, from, to time.Time) (int, int) {
	lo := sort.Search(n, func(i int) bool { return !at(i).Before(from) })
	hi := sort.Search(n, func(i int) bool { return at(i).After(to) })
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func (sh *shard) spikesIn(dst []SpikeEvent, from, to time.Time) []SpikeEvent {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.spikes.window(dst, sh.id, sh.spikesOrdered, from, to)
}

func (sh *shard) pricesIn(dst []PricePoint, from, to time.Time) []PricePoint {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.prices.window(dst, sh.pricesOrdered, from, to)
}

func (sh *shard) probesIn(dst []ProbeRecord, from, to time.Time) []ProbeRecord {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.probes.window(dst, sh.id, sh.probesOrdered, from, to)
}

func (sh *shard) revocationsIn(dst []RevocationRecord, from, to time.Time) []RevocationRecord {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.revocations.window(dst, sh.id, sh.revocationsOrdered, from, to)
}

// priceStats folds min/sum/max over the price points inside [from, to]
// without materializing anything: with the columnar layout the fold is a
// linear scan of the bare price column over the binary-searched range.
func (sh *shard) priceStats(from, to time.Time) (samples int, min, sum, max float64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	fold := func(price float64) {
		if samples == 0 || price < min {
			min = price
		}
		if samples == 0 || price > max {
			max = price
		}
		samples++
		sum += price
	}
	if sh.pricesOrdered {
		lo, hi := timeWindow(sh.prices.at, from, to)
		for _, price := range sh.prices.price[lo:hi] {
			fold(price)
		}
		return samples, min, sum, max
	}
	for i, t := range sh.prices.at {
		if t.Before(from) || t.After(to) {
			continue
		}
		fold(sh.prices.price[i])
	}
	return samples, min, sum, max
}

// crossingStats counts the on-demand price crossings inside [from, to] and
// their largest spike ratio, using the incremental crossings index.
func (sh *shard) crossingStats(from, to time.Time) (count int, maxRatio float64) {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if sh.crossingsOrdered {
		lo, hi := windowBounds(len(sh.crossings), func(i int) time.Time { return sh.crossings[i].at }, from, to)
		for _, e := range sh.crossings[lo:hi] {
			count++
			if e.ratio > maxRatio {
				maxRatio = e.ratio
			}
		}
		return count, maxRatio
	}
	for _, e := range sh.crossings {
		if e.at.Before(from) || e.at.After(to) {
			continue
		}
		count++
		if e.ratio > maxRatio {
			maxRatio = e.ratio
		}
	}
	return count, maxRatio
}

// outageOverlap sums how much of [from, to] the shard's detected outages of
// one kind cover, without copying the interval list.
func (sh *shard) outageOverlap(kind ProbeKind, from, to time.Time) time.Duration {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	total := time.Duration(0)
	for i, k := range sh.outages.kind {
		if k == kind {
			total += overlapWindow(sh.outages.start[i], sh.outages.end[i], from, to)
		}
	}
	return total
}

// overlapWindow returns how much of [from, to] the interval [start, end]
// covers; a zero end means the interval is still open.
func overlapWindow(start, end, from, to time.Time) time.Duration {
	if end.IsZero() {
		end = to
	}
	if start.Before(from) {
		start = from
	}
	if end.After(to) {
		end = to
	}
	if !end.After(start) {
		return 0
	}
	return end.Sub(start)
}

// Timestamp accessors shared by the window helpers.
func probeAt(r ProbeRecord) time.Time           { return r.At }
func spikeAt(e SpikeEvent) time.Time            { return e.At }
func priceAt(p PricePoint) time.Time            { return p.At }
func revocationAt(r RevocationRecord) time.Time { return r.At }
func bidSpreadAt(r BidSpreadRecord) time.Time   { return r.At }
func outageAt(o OutageRecord) time.Time         { return o.Start }
