package store

import (
	"time"

	"spotlight/internal/obs"
)

// storeMetrics holds the store's hot-path instruments. Every Store owns
// one (allocated in New, shared into each shard at wiring time) whose
// fields stay nil until EnableMetrics arms them — a nil *obs.Counter is
// a no-op, so the disabled cost on the append path is one predictable
// branch per instrument. The fields are written exactly once, before
// concurrent appends begin (daemons enable metrics before the study
// starts ticking), and read-only afterwards.
type storeMetrics struct {
	appendBatches   *obs.Counter
	appendRecords   *obs.Counter
	walFlushes      *obs.Counter
	walFlushSeconds *obs.Histogram
	walFlushedBytes *obs.Counter
	snapshots       *obs.Counter
	snapshotSeconds *obs.Histogram
	snapshotLinked  *obs.Counter
	snapshotEncoded *obs.Counter
	cursorSaves     *obs.Counter
}

// EnableMetrics registers the store's series in r and arms the append,
// WAL, and snapshot instruments. Call once, before the store is shared
// with concurrent appenders (the daemons enable metrics right after
// building the store); calling with a nil registry leaves the store
// uninstrumented. Values another layer already counts — feed stats, the
// global generation, replay cost — register as scrape-time collectors
// and never touch an append.
func (s *Store) EnableMetrics(r *obs.Registry) {
	if r == nil {
		return
	}
	m := s.metrics
	m.appendBatches = r.Counter("spotlight_store_append_batches_total",
		"Append batches folded into shards (one shard lock round each).")
	m.appendRecords = r.Counter("spotlight_store_append_records_total",
		"Records of any kind appended to the store.")
	m.walFlushes = r.Counter("spotlight_store_wal_flushes_total",
		"WAL pending-buffer flushes that reached segment files.")
	m.walFlushSeconds = r.HistogramBuckets("spotlight_store_wal_flush_seconds",
		"WAL flush latency (pending buffer to segment file).", obs.IOBuckets)
	m.walFlushedBytes = r.Counter("spotlight_store_wal_flushed_bytes_total",
		"Bytes moved from WAL pending buffers to segment files.")
	m.snapshots = r.Counter("spotlight_store_snapshots_total",
		"Whole-store snapshots published.")
	m.snapshotSeconds = r.Histogram("spotlight_store_snapshot_seconds",
		"Snapshot duration: consistent cut, shard encode/link, publish, compaction.")
	m.snapshotLinked = r.Counter("spotlight_store_snapshot_shards_linked_total",
		"Snapshot shard files hard-linked unchanged from the previous snapshot.")
	m.snapshotEncoded = r.Counter("spotlight_store_snapshot_shards_encoded_total",
		"Snapshot shard files freshly encoded.")
	m.cursorSaves = r.Counter("spotlight_store_cursor_saves_total",
		"Replication cursor blobs persisted via SaveCursor.")

	r.GaugeFunc("spotlight_store_generation",
		"Global append generation (records ever appended, any market).",
		func() float64 { return float64(s.gen.Load()) })
	r.GaugeFunc("spotlight_store_markets",
		"Markets with at least one record (shard count).",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.shards))
		})
	r.CounterFunc("spotlight_feed_published_total",
		"Change-feed events ever assigned a sequence number.",
		func() float64 { return float64(s.feed.Stats().Published) })
	r.CounterFunc("spotlight_feed_dropped_total",
		"Change-feed events dropped at subscriber-overflow points.",
		func() float64 { return float64(s.feed.Stats().Dropped) })
	r.CounterFunc("spotlight_feed_lagged_total",
		"Subscriptions ever marked lagged (buffer overflow).",
		func() float64 { return float64(s.feed.Stats().Lagged) })
	r.GaugeFunc("spotlight_feed_subscribers",
		"Currently registered change-feed subscriptions.",
		func() float64 { return float64(s.feed.Stats().Subscribers) })
	r.GaugeFunc("spotlight_store_replay_seconds",
		"Duration of the recovery replay that built this store (0 for in-memory).",
		func() float64 {
			if p := s.Persister(); p != nil {
				return p.replayDur.Seconds()
			}
			return 0
		})
	r.GaugeFunc("spotlight_store_recovered_records",
		"Records recovered from snapshot+WAL at open (0 for in-memory).",
		func() float64 {
			if p := s.Persister(); p != nil {
				return float64(p.recoveredRecords)
			}
			return 0
		})
}

// observeFlush records one WAL flush of n bytes taking d. Split out so
// writeOutLocked stays readable; m is never nil (stores allocate it at
// construction), its fields are nil until EnableMetrics.
func (m *storeMetrics) observeFlush(n int, d time.Duration) {
	m.walFlushes.Inc()
	m.walFlushSeconds.Observe(d)
	m.walFlushedBytes.Add(uint64(n))
}
