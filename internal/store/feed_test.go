package store

import (
	"sync"
	"testing"
	"time"

	"spotlight/internal/market"
)

var (
	feedM1 = market.SpotID{Zone: "us-east-1a", Type: "c3.large", Product: market.ProductLinux}
	feedM2 = market.SpotID{Zone: "us-east-1b", Type: "m3.large", Product: market.ProductWindows}
	feedM3 = market.SpotID{Zone: "eu-west-1a", Type: "c3.large", Product: market.ProductLinux}
)

func feedT(min int) time.Time {
	return time.Date(2015, 9, 1, 0, min, 0, 0, time.UTC)
}

// drain collects every event currently buffered on the subscription.
func drain(s *Subscription) []Event {
	var out []Event
	for {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func kinds(evs []Event) []EventKind {
	out := make([]EventKind, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}

func TestFeedPublishesTypedEvents(t *testing.T) {
	s := New()
	sub := s.Feed().Subscribe(SubscribeOptions{})
	defer sub.Close()

	s.AppendProbe(ProbeRecord{At: feedT(1), Market: feedM1, Kind: ProbeOnDemand, Rejected: true})
	s.AppendSpike(SpikeEvent{At: feedT(2), Market: feedM1, Price: 0.5, Ratio: 1.4})
	s.RecordPrice(feedM1, PricePoint{At: feedT(3), Price: 0.25})
	s.AppendRevocation(RevocationRecord{At: feedT(4), Market: feedM1, Bid: 0.3, Held: time.Hour})
	s.AppendBidSpread(BidSpreadRecord{At: feedT(5), Market: feedM1, Published: 0.2, Intrinsic: 0.1, Attempts: 3})
	s.AppendProbe(ProbeRecord{At: feedT(6), Market: feedM1, Kind: ProbeOnDemand}) // closes the outage

	evs := drain(sub)
	want := []EventKind{
		EventProbe, EventOutageOpen, EventSpike, EventPrice,
		EventRevocation, EventBidSpread, EventProbe, EventOutageClose,
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(evs), kinds(evs), len(want))
	}
	var lastSeq uint64
	for i, ev := range evs {
		if ev.Kind != want[i] {
			t.Fatalf("event %d kind = %v, want %v (all: %v)", i, ev.Kind, want[i], kinds(evs))
		}
		if ev.Market != feedM1 {
			t.Errorf("event %d market = %v, want %v", i, ev.Market, feedM1)
		}
		if ev.Seq <= lastSeq {
			t.Errorf("event %d seq %d not strictly increasing after %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	// Payload arms match the kind.
	if evs[0].Probe == nil || !evs[0].Probe.Rejected {
		t.Error("probe event missing its record payload")
	}
	if evs[1].Outage == nil || !evs[1].Outage.Start.Equal(feedT(1)) {
		t.Error("outage-open event missing its interval payload")
	}
	if evs[7].Outage == nil || !evs[7].Outage.End.Equal(feedT(6)) {
		t.Error("outage-close event missing the closed interval")
	}
	// The final event's generation matches the store's: nothing unseen.
	if g := evs[len(evs)-1].Gen; g != s.GlobalGeneration() {
		t.Errorf("last event gen = %d, want global generation %d", g, s.GlobalGeneration())
	}
}

func TestFeedScopeAndKindFilters(t *testing.T) {
	s := New()
	f := s.Feed()
	global := f.Subscribe(SubscribeOptions{})
	region := f.Subscribe(SubscribeOptions{Filter: EventFilter{Region: "us-east-1"}})
	regionProduct := f.Subscribe(SubscribeOptions{Filter: EventFilter{Region: "us-east-1", Product: market.ProductWindows}})
	oneMarket := f.Subscribe(SubscribeOptions{Filter: EventFilter{Market: feedM3}})
	spikesOnly := f.Subscribe(SubscribeOptions{Filter: EventFilter{Kinds: []EventKind{EventSpike}}})
	defer func() {
		for _, sub := range []*Subscription{global, region, regionProduct, oneMarket, spikesOnly} {
			sub.Close()
		}
	}()

	s.AppendSpike(SpikeEvent{At: feedT(1), Market: feedM1, Ratio: 1.2})
	s.AppendSpike(SpikeEvent{At: feedT(2), Market: feedM2, Ratio: 1.5})
	s.AppendSpike(SpikeEvent{At: feedT(3), Market: feedM3, Ratio: 2.0})
	s.AppendProbe(ProbeRecord{At: feedT(4), Market: feedM3, Kind: ProbeSpot})

	if got := len(drain(global)); got != 4 {
		t.Errorf("global subscriber saw %d events, want 4", got)
	}
	if got := len(drain(region)); got != 2 {
		t.Errorf("region subscriber saw %d events, want 2 (us-east-1 spikes)", got)
	}
	rp := drain(regionProduct)
	if len(rp) != 1 || rp[0].Market != feedM2 {
		t.Errorf("region+product subscriber saw %v, want just %v's spike", rp, feedM2)
	}
	om := drain(oneMarket)
	if len(om) != 2 || om[0].Market != feedM3 || om[1].Market != feedM3 {
		t.Errorf("market subscriber saw %v, want %v's spike+probe", kinds(om), feedM3)
	}
	so := drain(spikesOnly)
	if len(so) != 3 || so[0].Kind != EventSpike {
		t.Errorf("kind-filtered subscriber saw %v, want 3 spikes", kinds(so))
	}
}

func TestFeedZeroSubscribersBuildsNoEvents(t *testing.T) {
	s := New()
	s.AppendSpike(SpikeEvent{At: feedT(1), Market: feedM1, Ratio: 1.2})
	if st := s.Feed().Stats(); st.Published != 0 || st.LastSeq != 0 {
		t.Fatalf("events were published with no subscribers: %+v", st)
	}
}

// Once an unarmed store's only subscriber lags, the feed goes cold again:
// lagged subscriptions are terminal, so they must not keep append paths
// paying for event construction.
func TestFeedLaggedSubscriberStopsEventConstruction(t *testing.T) {
	s := New()
	sub := s.Feed().Subscribe(SubscribeOptions{Buffer: 2})
	defer sub.Close()
	for i := 0; i < 10; i++ {
		s.AppendSpike(SpikeEvent{At: feedT(i), Market: feedM1, Ratio: 1.1})
	}
	afterLag := s.Feed().Stats().Published
	if afterLag == 0 || afterLag >= 10 {
		t.Fatalf("published = %d, want the pre-lag events only", afterLag)
	}
	for i := 10; i < 20; i++ {
		s.AppendSpike(SpikeEvent{At: feedT(i), Market: feedM1, Ratio: 1.1})
	}
	if got := s.Feed().Stats().Published; got != afterLag {
		t.Fatalf("published grew %d -> %d after the only subscriber lagged", afterLag, got)
	}
}

// A blocked subscriber must never stall appends: the publisher marks it
// lagged, delivers one terminal marker carrying the resume position, and
// every subsequent append completes untouched. The feed is armed (the
// serving layer's configuration), so the ring keeps filling past the lag
// and the resume replays the dropped events exactly.
func TestFeedSlowSubscriberLagsWithoutBlocking(t *testing.T) {
	s := New()
	s.Feed().Arm()
	defer s.Feed().Disarm()
	sub := s.Feed().Subscribe(SubscribeOptions{Buffer: 4})
	defer sub.Close()

	// Never read: 4 buffered + the reserved marker slot, then lag.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s.AppendSpike(SpikeEvent{At: feedT(i), Market: feedM1, Ratio: 1.1})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("appends blocked behind a stalled subscriber")
	}

	evs := drain(sub)
	if len(evs) != 5 {
		t.Fatalf("stalled subscriber drained %d events, want 4 + lagged marker", len(evs))
	}
	last := evs[4]
	if last.Kind != EventLagged {
		t.Fatalf("final event = %v, want lagged marker", last.Kind)
	}
	if want := evs[3].Seq; last.Seq != want {
		t.Errorf("lagged marker seq = %d, want last delivered %d", last.Seq, want)
	}
	if want := evs[3].Gen; last.Gen != want {
		t.Errorf("lagged marker gen = %d, want last delivered %d", last.Gen, want)
	}
	if sub.Dropped() == 0 {
		t.Error("Dropped() = 0 for an overflowed subscription")
	}
	st := s.Feed().Stats()
	if st.Lagged != 1 || st.Dropped == 0 {
		t.Errorf("feed stats = %+v, want lagged=1 and dropped>0", st)
	}

	// The lagged position resumes exactly: ring replay hands back
	// everything after the marker with no loss or duplication.
	resumed, backlog, mode := s.Feed().SubscribeFrom(SubscribeOptions{}, last.Seq, last.Gen)
	defer resumed.Close()
	if mode != ResumeRing {
		t.Fatalf("resume mode = %v, want ResumeRing", mode)
	}
	if want := 100 - 4; len(backlog) != want {
		t.Fatalf("ring backlog = %d events, want %d", len(backlog), want)
	}
	for i, ev := range backlog {
		if want := last.Seq + 1 + uint64(i); ev.Seq != want {
			t.Fatalf("backlog[%d].Seq = %d, want %d (gap or duplicate)", i, ev.Seq, want)
		}
	}
}

// Race-exercised: concurrent multi-market appends with one permanently
// blocked subscriber and one draining subscriber. Run under -race.
func TestFeedOverflowUnderConcurrentAppends(t *testing.T) {
	s := New()
	blocked := s.Feed().Subscribe(SubscribeOptions{Buffer: 2})
	defer blocked.Close()
	healthy := s.Feed().Subscribe(SubscribeOptions{Buffer: 8192})
	defer healthy.Close()

	var got sync.WaitGroup
	var healthyCount int
	got.Add(1)
	go func() {
		defer got.Done()
		for range healthy.Events() {
			healthyCount++
		}
	}()

	const (
		writers   = 8
		perWriter = 200
	)
	markets := []market.SpotID{feedM1, feedM2, feedM3}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := markets[w%len(markets)]
			app := s.Appender(id)
			for i := 0; i < perWriter; i++ {
				app.AppendProbes([]ProbeRecord{
					{At: feedT(i), Market: id, Kind: ProbeSpot},
					{At: feedT(i), Market: id, Kind: ProbeOnDemand},
				})
			}
		}(w)
	}
	wg.Wait()
	healthy.Close()
	got.Wait()

	if want := writers * perWriter * 2; healthyCount != want {
		t.Errorf("draining subscriber saw %d events, want %d", healthyCount, want)
	}
	evs := drain(blocked)
	if len(evs) == 0 || evs[len(evs)-1].Kind != EventLagged {
		t.Fatalf("blocked subscriber's final event = %v, want lagged marker", kinds(evs))
	}
	if n := s.ProbeCount(); n != writers*perWriter*2 {
		t.Fatalf("store holds %d probes, want %d — appends were lost or stalled", n, writers*perWriter*2)
	}
}

func TestFeedResumeLiveWhenNothingMissed(t *testing.T) {
	s := New()
	sub := s.Feed().Subscribe(SubscribeOptions{})
	s.AppendSpike(SpikeEvent{At: feedT(1), Market: feedM1, Ratio: 1.2})
	evs := drain(sub)
	if len(evs) != 1 {
		t.Fatal("setup: expected one event")
	}
	sub.Close()

	// Nothing appended since: the resume attaches live with no backlog,
	// even though the subscriber count dropped to zero in between.
	resumed, backlog, mode := s.Feed().SubscribeFrom(SubscribeOptions{}, evs[0].Seq, evs[0].Gen)
	defer resumed.Close()
	if mode != ResumeLive || backlog != nil {
		t.Fatalf("resume = (%v, %d backlog), want ResumeLive with none", mode, len(backlog))
	}
}

func TestFeedResumeFallsBackAfterQuietGap(t *testing.T) {
	s := New()
	sub := s.Feed().Subscribe(SubscribeOptions{})
	s.AppendSpike(SpikeEvent{At: feedT(1), Market: feedM1, Ratio: 1.2})
	evs := drain(sub)
	sub.Close()

	// Records land while nobody subscribes: no events exist for them, so
	// no ring replay can be exact and the resume must fall back.
	s.AppendSpike(SpikeEvent{At: feedT(2), Market: feedM1, Ratio: 1.5})

	resumed, backlog, mode := s.Feed().SubscribeFrom(SubscribeOptions{}, evs[0].Seq, evs[0].Gen)
	defer resumed.Close()
	if mode != ResumeWindow || backlog != nil {
		t.Fatalf("resume = (%v, %d backlog), want ResumeWindow", mode, len(backlog))
	}

	// The windowed rebuild covers the gap.
	replay := s.EventsSince(feedT(2), EventFilter{})
	if len(replay) != 1 || replay[0].Kind != EventSpike || !replay[0].At.Equal(feedT(2)) {
		t.Fatalf("EventsSince replayed %v, want the quiet-gap spike", kinds(replay))
	}
}

func TestFeedResumeForeignSequenceFallsBack(t *testing.T) {
	s := New()
	sub := s.Feed().Subscribe(SubscribeOptions{})
	defer sub.Close()
	s.AppendSpike(SpikeEvent{At: feedT(1), Market: feedM1, Ratio: 1.2})
	drain(sub)

	// A sequence from another process life (larger than anything this
	// feed assigned) with a stale generation cannot be in the ring.
	resumed, backlog, mode := s.Feed().SubscribeFrom(SubscribeOptions{}, 999999, 999)
	defer resumed.Close()
	if mode != ResumeWindow || backlog != nil {
		t.Fatalf("resume = (%v, %d backlog), want ResumeWindow", mode, len(backlog))
	}

	// But a foreign sequence whose generation equals the store's current
	// one proves nothing was missed (the durable-restart shape: record
	// counts survive, the sequence space does not) and attaches live.
	live, backlog, mode := s.Feed().SubscribeFrom(SubscribeOptions{}, 999999, s.GlobalGeneration())
	defer live.Close()
	if mode != ResumeLive || backlog != nil {
		t.Fatalf("resume = (%v, %d backlog), want ResumeLive on matching generation", mode, len(backlog))
	}
}

// A resume position whose sequence collides with this process life's
// sequence space but whose generation disagrees (a pre-restart token
// meeting a fresh feed that already republished that many events) must
// not claim exact ring replay.
func TestFeedResumeCrossLifeSeqCollisionFallsBack(t *testing.T) {
	s := New()
	sub := s.Feed().Subscribe(SubscribeOptions{})
	defer sub.Close()
	for i := 0; i < 5; i++ {
		s.AppendSpike(SpikeEvent{At: feedT(i), Market: feedM1, Ratio: 1.1})
	}
	evs := drain(sub)
	if len(evs) != 5 {
		t.Fatal("setup: want 5 events")
	}

	// seq 3 exists in the ring, but the claimed generation belongs to
	// another life.
	resumed, backlog, mode := s.Feed().SubscribeFrom(SubscribeOptions{}, evs[2].Seq, 999)
	defer resumed.Close()
	if mode != ResumeWindow || backlog != nil {
		t.Fatalf("resume = (%v, %d backlog), want ResumeWindow on generation mismatch", mode, len(backlog))
	}
	// The genuine position still replays exactly.
	ok, backlog, mode := s.Feed().SubscribeFrom(SubscribeOptions{}, evs[2].Seq, evs[2].Gen)
	defer ok.Close()
	if mode != ResumeRing || len(backlog) != 2 {
		t.Fatalf("resume = (%v, %d backlog), want ResumeRing with 2", mode, len(backlog))
	}
}

// While a terminal lagged subscription is the only one registered, the
// feed is cold and appends are not evented; a new subscriber must drop
// the stale ring so a later resume cannot replay "exactly" across that
// invisible gap.
func TestFeedColdGapWithLaggedSubscriberResetsRing(t *testing.T) {
	s := New()
	lagged := s.Feed().Subscribe(SubscribeOptions{Buffer: 2})
	defer lagged.Close()
	for i := 0; i < 10; i++ {
		s.AppendSpike(SpikeEvent{At: feedT(i), Market: feedM1, Ratio: 1.1})
	}
	evs := drain(lagged)
	if evs[len(evs)-1].Kind != EventLagged {
		t.Fatal("setup: subscriber should have lagged")
	}

	// New subscriber while the lagged one is still registered: the
	// un-evented appends (after the lag) broke ring continuity.
	fresh := s.Feed().Subscribe(SubscribeOptions{})
	defer fresh.Close()
	s.AppendSpike(SpikeEvent{At: feedT(11), Market: feedM1, Ratio: 1.2})
	if got := len(drain(fresh)); got != 1 {
		t.Fatalf("fresh subscriber saw %d events, want 1", got)
	}

	resumed, backlog, mode := s.Feed().SubscribeFrom(SubscribeOptions{}, evs[0].Seq, evs[0].Gen)
	defer resumed.Close()
	if mode != ResumeWindow || backlog != nil {
		t.Fatalf("resume = (%v, %d backlog), want ResumeWindow across the cold gap", mode, len(backlog))
	}
}

func TestFeedRingEvictionForcesWindowFallback(t *testing.T) {
	s := New()
	f := newFeed(s.gen.Load, 8) // tiny ring
	s.feed = f
	sub := f.Subscribe(SubscribeOptions{Buffer: 1024})
	defer sub.Close()

	for i := 0; i < 32; i++ {
		s.AppendSpike(SpikeEvent{At: feedT(i), Market: feedM1, Ratio: 1.1})
	}
	evs := drain(sub)
	if len(evs) != 32 {
		t.Fatal("setup: want 32 live events")
	}
	// Resuming from the first event: the ring only holds the last 8.
	_, backlog, mode := f.SubscribeFrom(SubscribeOptions{}, evs[0].Seq, evs[0].Gen)
	if mode != ResumeWindow {
		t.Fatalf("resume mode = %v, want ResumeWindow after eviction", mode)
	}
	if backlog != nil {
		t.Fatalf("backlog = %d events, want none", len(backlog))
	}
	// Resuming from inside the retained window is exact.
	_, backlog, mode = f.SubscribeFrom(SubscribeOptions{}, evs[25].Seq, evs[25].Gen)
	if mode != ResumeRing || len(backlog) != 6 {
		t.Fatalf("resume = (%v, %d backlog), want ResumeRing with 6", mode, len(backlog))
	}
}

func TestEventsSinceFiltersAndOrders(t *testing.T) {
	s := New()
	s.AppendProbe(ProbeRecord{At: feedT(1), Market: feedM1, Kind: ProbeOnDemand, Rejected: true})
	s.RecordPrice(feedM2, PricePoint{At: feedT(2), Price: 0.4})
	s.AppendSpike(SpikeEvent{At: feedT(3), Market: feedM3, Ratio: 1.8})
	s.AppendProbe(ProbeRecord{At: feedT(4), Market: feedM1, Kind: ProbeOnDemand}) // close

	all := s.EventsSince(feedT(0), EventFilter{})
	want := []EventKind{EventProbe, EventOutageOpen, EventPrice, EventSpike, EventProbe, EventOutageClose}
	if len(all) != len(want) {
		t.Fatalf("EventsSince = %v, want %v", kinds(all), want)
	}
	for i := 1; i < len(all); i++ {
		if all[i].At.Before(all[i-1].At) {
			t.Fatalf("EventsSince out of time order at %d: %v", i, kinds(all))
		}
	}
	for i, ev := range all {
		if ev.Kind != want[i] {
			t.Fatalf("EventsSince[%d] = %v, want %v", i, ev.Kind, want[i])
		}
	}

	// Window bound: only records at/after the cut.
	tail := s.EventsSince(feedT(3), EventFilter{})
	if len(tail) != 3 {
		t.Fatalf("EventsSince(tail) = %v, want spike + closing probe + outage-close", kinds(tail))
	}
	// Scope + kind filters apply.
	scoped := s.EventsSince(feedT(0), EventFilter{Region: "us-east-1", Kinds: []EventKind{EventPrice}})
	if len(scoped) != 1 || scoped[0].Market != feedM2 {
		t.Fatalf("scoped EventsSince = %v, want only %v's price", kinds(scoped), feedM2)
	}
}

// An armed feed keeps the ring hot across zero-subscriber gaps, so a
// reconnect after a disconnection still resumes exactly.
func TestFeedArmKeepsRingHotAcrossSubscriberGaps(t *testing.T) {
	s := New()
	f := s.Feed()
	f.Arm()
	defer f.Disarm()

	sub := f.Subscribe(SubscribeOptions{})
	s.AppendSpike(SpikeEvent{At: feedT(1), Market: feedM1, Ratio: 1.2})
	evs := drain(sub)
	if len(evs) != 1 {
		t.Fatal("setup: want one live event")
	}
	sub.Close()

	// Records landing with no subscribers are still evented (armed), so
	// the resume replays them from the ring — exactly.
	s.AppendSpike(SpikeEvent{At: feedT(2), Market: feedM1, Ratio: 1.5})
	s.AppendSpike(SpikeEvent{At: feedT(3), Market: feedM1, Ratio: 1.7})

	resumed, backlog, mode := f.SubscribeFrom(SubscribeOptions{}, evs[0].Seq, evs[0].Gen)
	defer resumed.Close()
	if mode != ResumeRing || len(backlog) != 2 {
		t.Fatalf("resume = (%v, %d backlog), want ResumeRing with the 2 gap events", mode, len(backlog))
	}
	if backlog[0].Seq != evs[0].Seq+1 || backlog[1].Seq != evs[0].Seq+2 {
		t.Fatalf("backlog seqs = %d,%d, want contiguous after %d", backlog[0].Seq, backlog[1].Seq, evs[0].Seq)
	}
}

func TestSubscriptionCloseIsIdempotentUnderPublish(t *testing.T) {
	s := New()
	sub := s.Feed().Subscribe(SubscribeOptions{Buffer: 1})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s.AppendSpike(SpikeEvent{At: feedT(i), Market: feedM1, Ratio: 1.1})
		}
	}()
	go func() {
		defer wg.Done()
		sub.Close()
		sub.Close()
	}()
	wg.Wait()
	if n := s.Feed().Stats().Subscribers; n != 0 {
		t.Fatalf("subscribers = %d after close, want 0", n)
	}
}
