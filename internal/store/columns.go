package store

import (
	"sort"
	"time"

	"spotlight/internal/market"
)

// Column-oriented record storage. Each record family keeps its fields in
// parallel slices ("struct of arrays") instead of a slice of record
// structs, so the windowed folds behind the query surface — price stats,
// spike windows, crossing counts, outage overlap — scan only the columns
// they read, contiguously, instead of striding over whole records. The
// layout also lets snapshot encode/decode stream record-at-a-time without
// ever materializing a []Record: encoders iterate indices and build one
// stack-allocated record per frame.
//
// Columns are append-only: a committed index is never rewritten (the one
// exception, outage closing, lives in outageCols and is documented
// there). That invariant is what makes zero-copy captures safe: a capture
// copies the column struct (slice headers) under the shard lock, and
// concurrent appends only ever touch indexes at or past the captured
// length — or a freshly reallocated backing array.
//
// The market of every record in a shard's columns is the shard's own ID
// (append paths route records by Market, and the WAL decoder rejects
// mismatches), so the Market field is not stored per record: accessors
// take the owning ID and stamp it back in.

// timeWindow returns the half-open index range [lo, hi) of the timestamps
// in at that fall inside [from, to], assuming at is non-decreasing.
func timeWindow(at []time.Time, from, to time.Time) (int, int) {
	lo := sort.Search(len(at), func(i int) bool { return !at[i].Before(from) })
	hi := sort.Search(len(at), func(i int) bool { return at[i].After(to) })
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// inWindow reports whether t falls inside the inclusive window [from, to].
func inWindow(t, from, to time.Time) bool {
	return !t.Before(from) && !t.After(to)
}

// grown returns dst with room for n more elements, allocating exactly
// once when dst is short (windowed reads know their result size from the
// binary-searched bounds, so growth never doubles blindly).
func grown[T any](dst []T, n int) []T {
	if cap(dst)-len(dst) >= n {
		return dst
	}
	out := make([]T, len(dst), len(dst)+n)
	copy(out, dst)
	return out
}

// probeCols is the probe log in columnar form.
type probeCols struct {
	at            []time.Time
	kind          []ProbeKind
	trigger       []Trigger
	triggerMarket []market.SpotID
	sourceKind    []ProbeKind
	spikeRatio    []float64
	priceRatio    []float64
	rejected      []bool
	code          []string
	bid           []float64
	cost          []float64
}

func (c *probeCols) n() int { return len(c.at) }

func (c *probeCols) push(r *ProbeRecord) {
	c.at = append(c.at, r.At)
	c.kind = append(c.kind, r.Kind)
	c.trigger = append(c.trigger, r.Trigger)
	c.triggerMarket = append(c.triggerMarket, r.TriggerMarket)
	c.sourceKind = append(c.sourceKind, r.SourceKind)
	c.spikeRatio = append(c.spikeRatio, r.SpikeRatio)
	c.priceRatio = append(c.priceRatio, r.PriceRatio)
	c.rejected = append(c.rejected, r.Rejected)
	c.code = append(c.code, r.Code)
	c.bid = append(c.bid, r.Bid)
	c.cost = append(c.cost, r.Cost)
}

// reserve grows every column for n more records in one exact allocation
// each — recovery counts a shard's frames before decoding them, so the
// hot decode loop never pays append's doubling growth (or its zeroing).
func (c *probeCols) reserve(n int) {
	c.at = grown(c.at, n)
	c.kind = grown(c.kind, n)
	c.trigger = grown(c.trigger, n)
	c.triggerMarket = grown(c.triggerMarket, n)
	c.sourceKind = grown(c.sourceKind, n)
	c.spikeRatio = grown(c.spikeRatio, n)
	c.priceRatio = grown(c.priceRatio, n)
	c.rejected = grown(c.rejected, n)
	c.code = grown(c.code, n)
	c.bid = grown(c.bid, n)
	c.cost = grown(c.cost, n)
}

func (c *probeCols) get(i int, id market.SpotID) ProbeRecord {
	return ProbeRecord{
		At:            c.at[i],
		Market:        id,
		Kind:          c.kind[i],
		Trigger:       c.trigger[i],
		TriggerMarket: c.triggerMarket[i],
		SourceKind:    c.sourceKind[i],
		SpikeRatio:    c.spikeRatio[i],
		PriceRatio:    c.priceRatio[i],
		Rejected:      c.rejected[i],
		Code:          c.code[i],
		Bid:           c.bid[i],
		Cost:          c.cost[i],
	}
}

// appendTo materializes rows [lo, hi) into dst.
func (c *probeCols) appendTo(dst []ProbeRecord, id market.SpotID, lo, hi int) []ProbeRecord {
	dst = grown(dst, hi-lo)
	for i := lo; i < hi; i++ {
		dst = append(dst, c.get(i, id))
	}
	return dst
}

// window materializes the rows inside [from, to] into dst; ordered
// columns locate the range by binary search, unordered ones scan the
// timestamp column.
func (c *probeCols) window(dst []ProbeRecord, id market.SpotID, ordered bool, from, to time.Time) []ProbeRecord {
	if ordered {
		lo, hi := timeWindow(c.at, from, to)
		return c.appendTo(dst, id, lo, hi)
	}
	for i, t := range c.at {
		if inWindow(t, from, to) {
			dst = append(dst, c.get(i, id))
		}
	}
	return dst
}

// spikeCols is the spike-event log in columnar form.
type spikeCols struct {
	at     []time.Time
	price  []float64
	ratio  []float64
	probed []bool
}

func (c *spikeCols) n() int { return len(c.at) }

func (c *spikeCols) push(e *SpikeEvent) {
	c.at = append(c.at, e.At)
	c.price = append(c.price, e.Price)
	c.ratio = append(c.ratio, e.Ratio)
	c.probed = append(c.probed, e.Probed)
}

func (c *spikeCols) reserve(n int) {
	c.at = grown(c.at, n)
	c.price = grown(c.price, n)
	c.ratio = grown(c.ratio, n)
	c.probed = grown(c.probed, n)
}

func (c *spikeCols) get(i int, id market.SpotID) SpikeEvent {
	return SpikeEvent{At: c.at[i], Market: id, Price: c.price[i], Ratio: c.ratio[i], Probed: c.probed[i]}
}

func (c *spikeCols) appendTo(dst []SpikeEvent, id market.SpotID, lo, hi int) []SpikeEvent {
	dst = grown(dst, hi-lo)
	for i := lo; i < hi; i++ {
		dst = append(dst, c.get(i, id))
	}
	return dst
}

func (c *spikeCols) window(dst []SpikeEvent, id market.SpotID, ordered bool, from, to time.Time) []SpikeEvent {
	if ordered {
		lo, hi := timeWindow(c.at, from, to)
		return c.appendTo(dst, id, lo, hi)
	}
	for i, t := range c.at {
		if inWindow(t, from, to) {
			dst = append(dst, c.get(i, id))
		}
	}
	return dst
}

// bidSpreadCols is the intrinsic-price search log in columnar form.
type bidSpreadCols struct {
	at        []time.Time
	published []float64
	intrinsic []float64
	attempts  []int
}

func (c *bidSpreadCols) n() int { return len(c.at) }

func (c *bidSpreadCols) push(r *BidSpreadRecord) {
	c.at = append(c.at, r.At)
	c.published = append(c.published, r.Published)
	c.intrinsic = append(c.intrinsic, r.Intrinsic)
	c.attempts = append(c.attempts, r.Attempts)
}

func (c *bidSpreadCols) reserve(n int) {
	c.at = grown(c.at, n)
	c.published = grown(c.published, n)
	c.intrinsic = grown(c.intrinsic, n)
	c.attempts = grown(c.attempts, n)
}

func (c *bidSpreadCols) get(i int, id market.SpotID) BidSpreadRecord {
	return BidSpreadRecord{At: c.at[i], Market: id, Published: c.published[i], Intrinsic: c.intrinsic[i], Attempts: c.attempts[i]}
}

func (c *bidSpreadCols) appendTo(dst []BidSpreadRecord, id market.SpotID, lo, hi int) []BidSpreadRecord {
	dst = grown(dst, hi-lo)
	for i := lo; i < hi; i++ {
		dst = append(dst, c.get(i, id))
	}
	return dst
}

func (c *bidSpreadCols) window(dst []BidSpreadRecord, id market.SpotID, ordered bool, from, to time.Time) []BidSpreadRecord {
	if ordered {
		lo, hi := timeWindow(c.at, from, to)
		return c.appendTo(dst, id, lo, hi)
	}
	for i, t := range c.at {
		if inWindow(t, from, to) {
			dst = append(dst, c.get(i, id))
		}
	}
	return dst
}

// revocationCols is the revocation-watch log in columnar form.
type revocationCols struct {
	at   []time.Time
	bid  []float64
	held []time.Duration
}

func (c *revocationCols) n() int { return len(c.at) }

func (c *revocationCols) push(r *RevocationRecord) {
	c.at = append(c.at, r.At)
	c.bid = append(c.bid, r.Bid)
	c.held = append(c.held, r.Held)
}

func (c *revocationCols) reserve(n int) {
	c.at = grown(c.at, n)
	c.bid = grown(c.bid, n)
	c.held = grown(c.held, n)
}

func (c *revocationCols) get(i int, id market.SpotID) RevocationRecord {
	return RevocationRecord{At: c.at[i], Market: id, Bid: c.bid[i], Held: c.held[i]}
}

func (c *revocationCols) appendTo(dst []RevocationRecord, id market.SpotID, lo, hi int) []RevocationRecord {
	dst = grown(dst, hi-lo)
	for i := lo; i < hi; i++ {
		dst = append(dst, c.get(i, id))
	}
	return dst
}

func (c *revocationCols) window(dst []RevocationRecord, id market.SpotID, ordered bool, from, to time.Time) []RevocationRecord {
	if ordered {
		lo, hi := timeWindow(c.at, from, to)
		return c.appendTo(dst, id, lo, hi)
	}
	for i, t := range c.at {
		if inWindow(t, from, to) {
			dst = append(dst, c.get(i, id))
		}
	}
	return dst
}

// priceCols is the published-price series in columnar form: the densest
// series in a study, and the one whose windowed folds gain the most from
// scanning a bare float column.
type priceCols struct {
	at    []time.Time
	price []float64
}

func (c *priceCols) n() int { return len(c.at) }

func (c *priceCols) push(p *PricePoint) {
	c.at = append(c.at, p.At)
	c.price = append(c.price, p.Price)
}

func (c *priceCols) reserve(n int) {
	c.at = grown(c.at, n)
	c.price = grown(c.price, n)
}

func (c *priceCols) get(i int) PricePoint {
	return PricePoint{At: c.at[i], Price: c.price[i]}
}

func (c *priceCols) appendTo(dst []PricePoint, lo, hi int) []PricePoint {
	dst = grown(dst, hi-lo)
	for i := lo; i < hi; i++ {
		dst = append(dst, c.get(i))
	}
	return dst
}

func (c *priceCols) window(dst []PricePoint, ordered bool, from, to time.Time) []PricePoint {
	if ordered {
		lo, hi := timeWindow(c.at, from, to)
		return c.appendTo(dst, lo, hi)
	}
	for i, t := range c.at {
		if inWindow(t, from, to) {
			dst = append(dst, c.get(i))
		}
	}
	return dst
}

// outageCols holds the derived outage intervals. Unlike every other
// family this one is not strictly append-only: closing an outage rewrites
// end[i] in place, so captures deep-copy these columns instead of
// aliasing them (outages are few — one per rejection streak).
type outageCols struct {
	kind  []ProbeKind
	start []time.Time
	end   []time.Time
}

func (c *outageCols) n() int { return len(c.start) }

func (c *outageCols) push(o OutageRecord) {
	c.kind = append(c.kind, o.Kind)
	c.start = append(c.start, o.Start)
	c.end = append(c.end, o.End)
}

func (c *outageCols) get(i int, id market.SpotID) OutageRecord {
	return OutageRecord{Market: id, Kind: c.kind[i], Start: c.start[i], End: c.end[i]}
}

func (c *outageCols) appendTo(dst []OutageRecord, id market.SpotID, lo, hi int) []OutageRecord {
	dst = grown(dst, hi-lo)
	for i := lo; i < hi; i++ {
		dst = append(dst, c.get(i, id))
	}
	return dst
}

// clone deep-copies the columns (the capture path; see the type comment).
func (c *outageCols) clone() outageCols {
	return outageCols{
		kind:  append([]ProbeKind(nil), c.kind...),
		start: append([]time.Time(nil), c.start...),
		end:   append([]time.Time(nil), c.end...),
	}
}
