package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/market"
)

// The rollup layer is the store's second index level: above the per-market
// shards sit incrementally-maintained aggregates per (region, product) and
// per region, updated in the same lock round as every shard append. Scope
// queries that only need totals — Engine.Summary, the response cache's
// scope-generation probes, fleet dashboards — read O(regions) rollup
// entries instead of walking and merging every market shard.
//
// Each rollup carries two things:
//
//   - an append-generation counter (atomic, lock-free to read): the number
//     of records of any kind ever appended inside the scope. It equals the
//     sum of the scope's shard generations by construction, so it is the
//     same per-shard invalidation signal Store.ScopeGeneration computes by
//     walking shards — at O(1) instead of O(markets);
//   - the additive aggregates of the scope's shards (probe/rejection
//     counters by kind, outage counts and durations, spike and crossing
//     stats, price count/sum/min/max), folded in as rollupDeltas by the
//     shard append paths.
//
// Open outages are the one non-trivially-additive piece: their duration
// depends on the instant the query asks about. openOutageSum keeps the
// count of open intervals and the exact sum of their start times (split
// into seconds and nanoseconds so the sum cannot overflow), from which
// "total open duration measured to now" is one subtraction.

// rollupScope identifies one rollup entry: a region, optionally narrowed
// to one product platform. The region-level entry uses the empty product.
type rollupScope struct {
	region  market.Region
	product market.Product
}

// rollup is one scope's incrementally-maintained aggregate.
type rollup struct {
	scope rollupScope

	// gen counts every record ever appended to the scope's shards. Atomic
	// so cache-validity probes never take a lock.
	gen atomic.Uint64

	mu  sync.Mutex
	agg rollupAgg
}

// rollupKindAgg aggregates one contract kind across a scope's shards.
type rollupKindAgg struct {
	probes   int
	rejected int
	// outages counts every derived outage interval, open ones included.
	outages int
	// closedOutageDur sums End-Start over closed outages.
	closedOutageDur time.Duration
	// open tracks the scope's ongoing outages.
	open openOutageSum
}

// outageDur returns the scope's total detected outage time measured to
// now, ongoing outages included.
func (a *rollupKindAgg) outageDur(now time.Time) time.Duration {
	return a.closedOutageDur + a.open.durTo(now)
}

// rollupAgg is the additive aggregate state of one rollup.
type rollupAgg struct {
	// markets counts the scope's shards (every shard holds at least one
	// record: shards are created on first append).
	markets int

	byKind     [probeKinds]rollupKindAgg
	probeCount int // all kinds, unknown included
	probeCost  float64

	spikes        int
	spikesAboveOD int
	// maxCrossRatio is the largest on-demand crossing ratio ever observed
	// in the scope (all-time; window-scoped crossing queries stay on the
	// shard indexes).
	maxCrossRatio float64

	priceCount         int
	priceSum           float64
	priceMin, priceMax float64
}

// openOutageSum tracks a set of ongoing outages as a count plus the exact
// sum of their start instants. Summing raw UnixNano values would overflow
// int64 after a handful of entries, so seconds and in-second nanoseconds
// accumulate separately; both stay far below overflow for any realistic
// number of markets.
type openOutageSum struct {
	count int64
	sec   int64 // sum of Unix() over open starts
	nsec  int64 // sum of Nanosecond() over open starts
}

// add registers an outage opening at start; negative dir (-1) removes it
// again when the outage closes.
func (o *openOutageSum) add(start time.Time, dir int64) {
	o.count += dir
	o.sec += dir * start.Unix()
	o.nsec += dir * int64(start.Nanosecond())
}

// durTo returns the exact total of now.Sub(start) over the open set:
// count*now − Σstart, computed in the split representation.
func (o openOutageSum) durTo(now time.Time) time.Duration {
	if o.count == 0 {
		return 0
	}
	sec := o.count*now.Unix() - o.sec
	nsec := o.count*int64(now.Nanosecond()) - o.nsec
	return time.Duration(sec)*time.Second + time.Duration(nsec)
}

// rollupKindDelta is the per-kind part of one append batch's effect on a
// rollup. Every field is additive, so a delta can fold any number of
// records and still apply with one lock acquisition.
type rollupKindDelta struct {
	probes          int
	rejected        int
	outages         int
	closedOutageDur time.Duration
	// openCount/openSec/openNsec mirror openOutageSum: +start when an
	// outage opens, −start when it closes.
	openCount int64
	openSec   int64
	openNsec  int64
}

// rollupDelta accumulates the rollup-visible effect of one append (or one
// batched append) so the shard pays one rollup lock round per level per
// batch, not per record.
type rollupDelta struct {
	records uint64 // generation bumps

	byKind     [probeKinds]rollupKindDelta
	probeCount int
	probeCost  float64

	spikes        int
	spikesAboveOD int
	maxCrossRatio float64

	priceCount         int
	priceSum           float64
	priceMin, priceMax float64 // meaningful when priceCount > 0

	// emit arms change-feed event construction for the round (set by
	// shard.armEvents when the feed has subscribers); events accumulates
	// the round's typed events, published once after the shard lock is
	// released (shard.publish).
	emit   bool
	events []Event
}

// openOutage records an outage opening at start into the delta.
func (d *rollupKindDelta) openOutage(start time.Time) {
	d.openCount++
	d.openSec += start.Unix()
	d.openNsec += int64(start.Nanosecond())
}

// closeOutage records the outage that opened at start closing after dur.
func (d *rollupKindDelta) closeOutage(start time.Time, dur time.Duration) {
	d.openCount--
	d.openSec -= start.Unix()
	d.openNsec -= int64(start.Nanosecond())
	d.closedOutageDur += dur
}

// price folds one price observation into the delta.
func (d *rollupDelta) price(p float64) {
	if d.priceCount == 0 || p < d.priceMin {
		d.priceMin = p
	}
	if d.priceCount == 0 || p > d.priceMax {
		d.priceMax = p
	}
	d.priceCount++
	d.priceSum += p
}

// apply folds the delta into one rollup. The aggregate fold runs first
// under the rollup's mutex and the generation bump last (atomic, so
// readers probing cache validity never block): a reader that observes
// the new generation is then guaranteed to observe the folded
// aggregates, which is what lets Summary cache rollup-backed results
// keyed by generation.
func (r *rollup) apply(d *rollupDelta) {
	r.mu.Lock()
	a := &r.agg
	for k := range d.byKind {
		kd, ka := &d.byKind[k], &a.byKind[k]
		ka.probes += kd.probes
		ka.rejected += kd.rejected
		ka.outages += kd.outages
		ka.closedOutageDur += kd.closedOutageDur
		ka.open.count += kd.openCount
		ka.open.sec += kd.openSec
		ka.open.nsec += kd.openNsec
	}
	a.probeCount += d.probeCount
	a.probeCost += d.probeCost
	a.spikes += d.spikes
	a.spikesAboveOD += d.spikesAboveOD
	if d.maxCrossRatio > a.maxCrossRatio {
		a.maxCrossRatio = d.maxCrossRatio
	}
	if d.priceCount > 0 {
		if a.priceCount == 0 || d.priceMin < a.priceMin {
			a.priceMin = d.priceMin
		}
		if a.priceCount == 0 || d.priceMax > a.priceMax {
			a.priceMax = d.priceMax
		}
		a.priceCount += d.priceCount
		a.priceSum += d.priceSum
	}
	r.mu.Unlock()
	if d.records != 0 {
		r.gen.Add(d.records)
	}
}

// ScopeAggregates is the rollup-backed summary of one scope: every field
// is maintained incrementally on the append path, so reading it never
// touches a market shard.
type ScopeAggregates struct {
	Region market.Region
	// Product is empty for region-level entries.
	Product market.Product
	// Markets counts the scope's markets with at least one record.
	Markets int

	TotalProbes  int
	ODProbes     int
	ODRejected   int
	SpotProbes   int
	SpotRejected int
	ProbeCost    float64

	// ODOutages / SpotOutages count detected outage intervals, ongoing
	// included; the durations measure total outage time to `now`.
	ODOutages     int
	SpotOutages   int
	ODOutageDur   time.Duration
	SpotOutageDur time.Duration

	Spikes        int
	SpikesAboveOD int
	MaxCrossRatio float64

	PriceSamples int
	PriceMin     float64
	PriceMean    float64
	PriceMax     float64
}

// snapshot renders the rollup's aggregate state at instant now.
func (r *rollup) snapshot(now time.Time) ScopeAggregates {
	r.mu.Lock()
	a := r.agg
	r.mu.Unlock()
	od := a.byKind[ProbeOnDemand-1]
	spot := a.byKind[ProbeSpot-1]
	out := ScopeAggregates{
		Region:        r.scope.region,
		Product:       r.scope.product,
		Markets:       a.markets,
		TotalProbes:   a.probeCount,
		ODProbes:      od.probes,
		ODRejected:    od.rejected,
		SpotProbes:    spot.probes,
		SpotRejected:  spot.rejected,
		ProbeCost:     a.probeCost,
		ODOutages:     od.outages,
		SpotOutages:   spot.outages,
		ODOutageDur:   od.outageDur(now),
		SpotOutageDur: spot.outageDur(now),
		Spikes:        a.spikes,
		SpikesAboveOD: a.spikesAboveOD,
		MaxCrossRatio: a.maxCrossRatio,
		PriceSamples:  a.priceCount,
		PriceMin:      a.priceMin,
		PriceMax:      a.priceMax,
	}
	if a.priceCount > 0 {
		out.PriceMean = a.priceSum / float64(a.priceCount)
	}
	return out
}

// merge folds another scope's aggregates into s (used when a read spans
// several rollup entries, e.g. a product filter across all regions).
func (s *ScopeAggregates) merge(o ScopeAggregates) {
	s.Markets += o.Markets
	s.TotalProbes += o.TotalProbes
	s.ODProbes += o.ODProbes
	s.ODRejected += o.ODRejected
	s.SpotProbes += o.SpotProbes
	s.SpotRejected += o.SpotRejected
	s.ProbeCost += o.ProbeCost
	s.ODOutages += o.ODOutages
	s.SpotOutages += o.SpotOutages
	s.ODOutageDur += o.ODOutageDur
	s.SpotOutageDur += o.SpotOutageDur
	s.Spikes += o.Spikes
	s.SpikesAboveOD += o.SpikesAboveOD
	if o.MaxCrossRatio > s.MaxCrossRatio {
		s.MaxCrossRatio = o.MaxCrossRatio
	}
	if o.PriceSamples > 0 {
		if s.PriceSamples == 0 || o.PriceMin < s.PriceMin {
			s.PriceMin = o.PriceMin
		}
		if s.PriceSamples == 0 || o.PriceMax > s.PriceMax {
			s.PriceMax = o.PriceMax
		}
		// Recombine the means exactly via the implied sums.
		sum := s.PriceMean*float64(s.PriceSamples) + o.PriceMean*float64(o.PriceSamples)
		s.PriceSamples += o.PriceSamples
		s.PriceMean = sum / float64(s.PriceSamples)
	}
}

// rollupFor returns the rollup of scope, creating it on first use. Only
// write paths (shard creation) call it; readers use rollupLookup.
func (s *Store) rollupFor(scope rollupScope) *rollup {
	s.mu.RLock()
	r := s.rollups[scope]
	s.mu.RUnlock()
	if r != nil {
		return r
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r = s.rollups[scope]; r == nil {
		r = &rollup{scope: scope}
		s.rollups[scope] = r
		s.rollupList = nil
	}
	return r
}

// rollupLookup returns the rollup of scope without creating it.
func (s *Store) rollupLookup(scope rollupScope) *rollup {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rollups[scope]
}

// sortedRollups returns every rollup entry ordered by (region, product),
// region-level entries (empty product) first within their region. The
// slice is rebuilt only when a new scope appeared.
func (s *Store) sortedRollups() []*rollup {
	s.mu.RLock()
	list := s.rollupList
	s.mu.RUnlock()
	if list != nil {
		return list
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rollupList == nil {
		list = make([]*rollup, 0, len(s.rollups))
		for _, r := range s.rollups {
			list = append(list, r)
		}
		sort.Slice(list, func(i, j int) bool {
			a, b := list[i].scope, list[j].scope
			if a.region != b.region {
				return a.region < b.region
			}
			return a.product < b.product
		})
		s.rollupList = list
	}
	return s.rollupList
}

// RegionAggregates returns the region-level rollups at instant now (used
// to measure ongoing outages), in region order. This is the O(regions)
// read behind fleet-wide summaries: no market shard is touched.
func (s *Store) RegionAggregates(now time.Time) []ScopeAggregates {
	var out []ScopeAggregates
	for _, r := range s.sortedRollups() {
		if r.scope.product != "" {
			continue
		}
		out = append(out, r.snapshot(now))
	}
	return out
}

// RegionProductAggregates returns the (region, product) rollups at instant
// now, ordered by region then product.
func (s *Store) RegionProductAggregates(now time.Time) []ScopeAggregates {
	var out []ScopeAggregates
	for _, r := range s.sortedRollups() {
		if r.scope.product == "" {
			continue
		}
		out = append(out, r.snapshot(now))
	}
	return out
}

// ScopeAggregatesFor returns the rollup aggregates of one scope at instant
// now. Region and product may each be empty for "all": a (region, product)
// or (region) scope reads exactly one rollup entry; a product-only or
// fully-open scope folds the O(regions) matching entries. The second
// return is false when the scope has no records at all.
func (s *Store) ScopeAggregatesFor(region market.Region, product market.Product, now time.Time) (ScopeAggregates, bool) {
	if region != "" {
		r := s.rollupLookup(rollupScope{region: region, product: product})
		if r == nil {
			return ScopeAggregates{Region: region, Product: product}, false
		}
		return r.snapshot(now), true
	}
	out := ScopeAggregates{Product: product}
	found := false
	for _, r := range s.sortedRollups() {
		if r.scope.product != product {
			continue
		}
		found = true
		out.merge(r.snapshot(now))
	}
	return out, found
}

// GlobalGeneration returns the number of records ever appended to the
// store, any market, any kind — the whole-store cache-invalidation signal,
// one atomic load.
func (s *Store) GlobalGeneration() uint64 {
	return s.gen.Load()
}

// GenerationOfScope returns the append generation of a (region, product)
// scope, where either dimension may be empty for "all". It is equivalent
// to ScopeGeneration over the same filter — the sum of the scope's shard
// generations — but reads the rollup counters instead of walking shards:
// O(1) for global, region, and (region, product) scopes, O(regions) for a
// product-only scope.
func (s *Store) GenerationOfScope(region market.Region, product market.Product) uint64 {
	switch {
	case region == "" && product == "":
		return s.gen.Load()
	case region != "":
		if r := s.rollupLookup(rollupScope{region: region, product: product}); r != nil {
			return r.gen.Load()
		}
		return 0
	default: // product-only: fold the matching (region, product) entries.
		var total uint64
		for _, r := range s.sortedRollups() {
			if r.scope.product == product {
				total += r.gen.Load()
			}
		}
		return total
	}
}
