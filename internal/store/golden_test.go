package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"spotlight/internal/market"
)

// The golden fixture pins the on-disk format — snapshot JSON schema, WAL
// segment framing, and the binary record encoding — against accidental
// change: testdata/golden/store holds a committed data directory
// (snapshot + live WAL segments + meta) and expected-state.json the exact
// WriteJSON dump recovery must reproduce from it. If either file stops
// matching, the format changed and needs a new magic/version plus a
// migration story, not a silent break.
//
// Regenerate (after an INTENTIONAL format change) with:
//
//	STORE_GOLDEN_REGEN=1 go test ./internal/store -run TestGolden
//
// and commit the refreshed testdata.

var (
	goldenA = market.SpotID{Zone: "us-east-1a", Type: "m3.large", Product: market.ProductLinux}
	goldenB = market.SpotID{Zone: "eu-west-1b", Type: "c3.xlarge", Product: market.ProductWindows}
)

func goldenDir(t testing.TB) string {
	return filepath.Join("testdata", "golden")
}

// goldenWorkload builds the fixture's store contents: a pre-snapshot part
// (covered by snapshot-*.json after compaction) and a post-snapshot part
// that lives only in WAL segments.
func goldenWorkload(s *Store, p *Persister) error {
	base := time.Date(2015, 9, 1, 12, 0, 0, 0, time.UTC)
	appA := s.Appender(goldenA)
	appB := s.Appender(goldenB)

	appA.AppendProbes([]ProbeRecord{
		{At: base, Market: goldenA, Kind: ProbeOnDemand, Trigger: TriggerSpike, TriggerMarket: goldenA,
			SourceKind: ProbeSpot, SpikeRatio: 1.7, PriceRatio: 1.1, Cost: 0.02},
		{At: base.Add(5 * time.Minute), Market: goldenA, Kind: ProbeOnDemand, Trigger: TriggerRecheck,
			TriggerMarket: goldenA, SourceKind: ProbeOnDemand, Rejected: true, Code: "InsufficientInstanceCapacity", Cost: 0.02},
		{At: base.Add(10 * time.Minute), Market: goldenA, Kind: ProbeOnDemand, Trigger: TriggerRecheck,
			TriggerMarket: goldenA, SourceKind: ProbeOnDemand, Cost: 0.02},
	})
	appA.AppendSpike(SpikeEvent{At: base, Market: goldenA, Price: 0.31, Ratio: 1.7, Probed: true})
	appA.RecordPrice(PricePoint{At: base, Price: 0.31})
	appB.AppendProbes([]ProbeRecord{
		{At: base.Add(time.Minute), Market: goldenB, Kind: ProbeSpot, Trigger: TriggerPeriodicSpot,
			TriggerMarket: goldenB, SourceKind: ProbeSpot, Bid: 0.52, Cost: 0.01},
	})
	appB.AppendBidSpread(BidSpreadRecord{At: base.Add(2 * time.Minute), Market: goldenB, Published: 0.5, Intrinsic: 0.33, Attempts: 5})
	p.NoteClock(base.Add(30 * time.Minute))
	if err := p.Snapshot(); err != nil {
		return err
	}

	// Post-snapshot records: recovered from WAL segments only.
	appA.AppendProbe(ProbeRecord{At: base.Add(20 * time.Minute), Market: goldenA, Kind: ProbeSpot,
		Trigger: TriggerCross, TriggerMarket: goldenA, SourceKind: ProbeOnDemand, Bid: 0.4, Cost: 0.01})
	appA.RecordPrice(PricePoint{At: base.Add(20 * time.Minute), Price: 0.29})
	appB.AppendSpike(SpikeEvent{At: base.Add(21 * time.Minute), Market: goldenB, Price: 0.9, Ratio: 0.8})
	appB.AppendRevocation(RevocationRecord{At: base.Add(25 * time.Minute), Market: goldenB, Bid: 1.0, Held: 95 * time.Minute})
	return p.Flush()
}

func TestGoldenFixture(t *testing.T) {
	root := goldenDir(t)
	if os.Getenv("STORE_GOLDEN_REGEN") != "" {
		regenGolden(t, filepath.Join(root, "store"), filepath.Join(root, "expected-state.json"))
	}
	assertGoldenState(t, root)
}

// TestGoldenV1Fixture opens the frozen pre-v2 fixture — a data directory
// whose snapshot is the legacy whole-store snapshot-<SEQ>.json — and
// holds it to the exact same recovered state as the live-format fixture.
// This is the migration contract: v1 directories keep opening, byte for
// byte, with no regeneration path (the fixture is a historical artifact;
// it must never be rewritten).
func TestGoldenV1Fixture(t *testing.T) {
	assertGoldenState(t, filepath.Join("testdata", "golden-v1"))
}

func assertGoldenState(t *testing.T, root string) {
	t.Helper()
	storeFixture := filepath.Join(root, "store")
	expectedPath := filepath.Join(root, "expected-state.json")

	// Recover from a copy: Open repairs torn tails in place and the
	// committed fixture must stay pristine.
	dir := t.TempDir()
	copyTree(t, storeFixture, dir)
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatalf("Open(golden fixture): %v", err)
	}

	var got bytes.Buffer
	if err := s.WriteJSON(&got); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want, err := os.ReadFile(expectedPath)
	if err != nil {
		t.Fatalf("read expected state: %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("recovered state diverged from the golden dump — the on-disk format changed\n got: %.600s\nwant: %.600s", got.String(), want)
	}

	// Spot checks on derived state, so a format break that still decodes
	// is caught even if the dump happens to match.
	// A: 3 probes + 1 spike + 1 price pre-snapshot, 1 probe + 1 price in
	// the WAL = 7. B: 1 probe + 1 bid spread pre-snapshot, 1 spike +
	// 1 revocation in the WAL = 4.
	if g := s.Generation(goldenA); g != 7 {
		t.Errorf("Generation(%v) = %d, want 7", goldenA, g)
	}
	if g := s.Generation(goldenB); g != 4 {
		t.Errorf("Generation(%v) = %d, want 4", goldenB, g)
	}
	if n := s.ProbeCount(); n != 5 {
		t.Errorf("ProbeCount = %d, want 5", n)
	}
	outages := s.OutagesFor(goldenA, ProbeOnDemand)
	if len(outages) != 1 || outages[0].End.IsZero() {
		t.Errorf("derived outages of %v = %+v, want one closed interval", goldenA, outages)
	}
	if c := s.CrossingStatsFor(goldenA, time.Time{}, time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)); c.Crossings != 1 || c.MaxRatio != 1.7 {
		t.Errorf("crossing stats of %v = %+v, want 1 crossing at ratio 1.7", goldenA, c)
	}
	clock := s.Persister().Clock()
	if want := time.Date(2015, 9, 1, 12, 30, 0, 0, time.UTC); !clock.Equal(want) {
		t.Errorf("recovered clock = %v, want %v", clock, want)
	}
}

// regenGolden rebuilds the committed fixture and the fuzz seed corpus.
func regenGolden(t *testing.T, storeFixture, expectedPath string) {
	t.Helper()
	if err := os.RemoveAll(storeFixture); err != nil {
		t.Fatal(err)
	}
	s, err := Open(storeFixture, PersistOptions{})
	if err != nil {
		t.Fatalf("regen Open: %v", err)
	}
	p := s.Persister()
	if err := goldenWorkload(s, p); err != nil {
		t.Fatalf("regen workload: %v", err)
	}
	var dump bytes.Buffer
	if err := s.WriteJSON(&dump); err != nil {
		t.Fatalf("regen dump: %v", err)
	}
	if err := os.WriteFile(expectedPath, dump.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Leave the fixture as a crashed process would: lock released, live
	// WAL segments on disk, no lock file committed.
	p.crash()
	if err := os.Remove(filepath.Join(storeFixture, "LOCK")); err != nil {
		t.Fatal(err)
	}
	// Seed corpora for the fuzz targets, in the go-fuzz corpus encoding.
	writeFuzzSeed(t, "FuzzWALDecode", "seed-valid-segment", fuzzSegment())
	writeFuzzSeed(t, "FuzzWALDecode", "seed-torn-tail", fuzzSegment()[:60])
	writeFuzzSeed(t, "FuzzSnapshotReadJSON", "seed-valid-snapshot", dump.Bytes())
	writeFuzzSeed(t, "FuzzSnapshotReadJSON", "seed-truncated", dump.Bytes()[:dump.Len()/3])
	// A real v2 snapshot shard from the fixture seeds the binary decoder.
	snapDirs, err := filepath.Glob(filepath.Join(storeFixture, snapshotPrefix+"*"))
	if err != nil || len(snapDirs) != 1 {
		t.Fatalf("fixture snapshot dirs: %v %v", snapDirs, err)
	}
	shardData, err := os.ReadFile(filepath.Join(snapDirs[0], snapFileName(goldenA)))
	if err != nil {
		t.Fatal(err)
	}
	writeFuzzSeed(t, "FuzzSnapshotV2Decode", "seed-valid-shard", shardData)
	writeFuzzSeed(t, "FuzzSnapshotV2Decode", "seed-truncated", shardData[:len(shardData)*2/3])
	t.Log("golden fixture regenerated; commit testdata/")
}

func writeFuzzSeed(t *testing.T, fuzzName, seedName string, data []byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
	if err := os.WriteFile(filepath.Join(dir, seedName), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy fixture: %v", err)
	}
}
