package store

import (
	"strings"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/obs"
)

func metricsTestMarket(t *testing.T) market.SpotID {
	t.Helper()
	return market.SpotID{Zone: "us-east-1a", Type: "m4.large", Product: "Linux/UNIX"}
}

func TestStoreMetricsCountAppends(t *testing.T) {
	s := New()
	reg := obs.NewRegistry()
	s.EnableMetrics(reg)
	id := metricsTestMarket(t)
	now := time.Now().UTC()
	s.AppendProbes([]ProbeRecord{
		{At: now, Market: id, Kind: ProbeOnDemand},
		{At: now.Add(time.Second), Market: id, Kind: ProbeSpot},
	})
	s.AppendSpike(SpikeEvent{At: now, Market: id, Price: 1, Ratio: 1.2})

	if got := reg.Counter("spotlight_store_append_records_total", "").Value(); got != 3 {
		t.Fatalf("append_records_total = %d, want 3", got)
	}
	if got := reg.Counter("spotlight_store_append_batches_total", "").Value(); got != 2 {
		t.Fatalf("append_batches_total = %d, want 2", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"spotlight_store_generation 3",
		"spotlight_store_markets 1",
		"spotlight_feed_dropped_total 0",
		"spotlight_store_wal_flush_seconds_count 0",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func TestStoreMetricsDurablePath(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.EnableMetrics(reg)
	p := s.Persister()
	defer p.Close()

	id := metricsTestMarket(t)
	now := time.Now().UTC()
	s.AppendProbe(ProbeRecord{At: now, Market: id, Kind: ProbeOnDemand})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("spotlight_store_wal_flushes_total", "").Value(); got != 1 {
		t.Fatalf("wal_flushes_total = %d, want 1", got)
	}
	if got := reg.Counter("spotlight_store_wal_flushed_bytes_total", "").Value(); got == 0 {
		t.Fatalf("wal_flushed_bytes_total = 0, want > 0")
	}
	if got := reg.Histogram("spotlight_store_wal_flush_seconds", "").Count(); got != 1 {
		t.Fatalf("wal_flush_seconds count = %d, want 1", got)
	}

	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("spotlight_store_snapshots_total", "").Value(); got != 1 {
		t.Fatalf("snapshots_total = %d, want 1", got)
	}
	if got := reg.Counter("spotlight_store_snapshot_shards_encoded_total", "").Value(); got != 1 {
		t.Fatalf("snapshot_shards_encoded_total = %d, want 1", got)
	}
	// An unchanged shard hard-links on the next snapshot.
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("spotlight_store_snapshot_shards_linked_total", "").Value(); got != 1 {
		t.Fatalf("snapshot_shards_linked_total = %d, want 1", got)
	}
	if got := reg.Histogram("spotlight_store_snapshot_seconds", "").Count(); got != 2 {
		t.Fatalf("snapshot_seconds count = %d, want 2", got)
	}

	if err := p.SaveCursor([]byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("spotlight_store_cursor_saves_total", "").Value(); got != 1 {
		t.Fatalf("cursor_saves_total = %d, want 1", got)
	}
}
