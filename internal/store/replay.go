package store

import (
	"encoding/binary"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"spotlight/internal/market"
)

// Parallel recovery. The data directory is naturally partitioned by
// market — one snapshot shard file and one WAL segment directory per
// market — and the store's in-memory state is partitioned the same way,
// so recovery decodes and rebuilds every market concurrently: one
// replay task per market, a worker pool of up to GOMAXPROCS goroutines,
// and no locks on the hot path (the store is not published until Open
// returns, and exactly one worker ever touches a given shard).
//
// The only cross-shard state — the rollup hierarchy's scope aggregates,
// float sums included, and the global generation counter — is NOT
// touched by the workers. Each task accumulates one rollupDelta (the
// same additive delta the live append path folds per batch) plus its
// shard's torn-tail surgery results, and a sequential finalize pass
// walks the tasks in market-ID order, adopting each recovered shard
// into the store and publishing its delta. Every float therefore folds
// in the same order on every recovery of the same directory, keeping
// recovered stores bit-identical run to run — the workers only decide
// *when* a shard's records are decoded, never the order anything is
// summed.

// replayTask is one market's unit of recovery work: its snapshot shard
// file (v2 only) plus its WAL segments.
type replayTask struct {
	id  market.SpotID
	key string // id.String(), the finalize sort key

	// sh is the shard the task rebuilds. fresh marks a worker-built
	// shard that finalize must adopt into the store; !fresh means the
	// shard already exists (the legacy v1 snapshot was replayed into
	// the store before the parallel phase).
	sh    *shard
	fresh bool

	// snapPath/snapRecords name the market's v2 snapshot shard file and
	// the record count its manifest pins; empty when the snapshot does
	// not cover this market.
	snapPath    string
	snapRecords uint64

	dirPath string // the market's WAL segment directory
	segs    []segPos

	// Worker results.
	delta rollupDelta
	last  segPos
	maxAt time.Time
	err   error
}

// buildReplayTasks enumerates the markets recovery must rebuild: the
// union of the snapshot manifest's shards (v2) and the WAL's segment
// directories. Segment names are parsed here (serially — it is cheap
// directory metadata) so maxEpoch accounts for every segment, including
// ones the snapshot covers and ones a worker later removes.
func buildReplayTasks(walRoot string, info snapInfo, s *Store) (tasks []*replayTask, maxEpoch uint64, err error) {
	byID := make(map[market.SpotID]*replayTask)
	task := func(id market.SpotID) *replayTask {
		t := byID[id]
		if t == nil {
			t = &replayTask{id: id, key: id.String(), sh: s.lookup(id)}
			if t.sh == nil {
				t.sh, t.fresh = newShard(id), true
			}
			byID[id] = t
		}
		return t
	}

	if info.v2 {
		for _, msh := range info.manifest.Shards {
			id, perr := market.ParseSpotID(msh.Market)
			if perr != nil {
				return nil, 0, fmt.Errorf("store: snapshot manifest market %q: %w", msh.Market, perr)
			}
			t := task(id)
			t.snapPath = filepath.Join(info.dirPath, msh.File)
			t.snapRecords = msh.Records
		}
	}

	ents, err := os.ReadDir(walRoot)
	if err != nil {
		return nil, 0, fmt.Errorf("store: list %s: %w", walRoot, err)
	}
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		idStr, uerr := url.PathUnescape(ent.Name())
		if uerr != nil {
			return nil, 0, fmt.Errorf("store: WAL dir %q: %w", ent.Name(), uerr)
		}
		id, perr := market.ParseSpotID(idStr)
		if perr != nil {
			return nil, 0, fmt.Errorf("store: WAL dir %q: %w", ent.Name(), perr)
		}
		t := task(id)
		t.dirPath = filepath.Join(walRoot, ent.Name())
		segEnts, serr := os.ReadDir(t.dirPath)
		if serr != nil {
			return nil, 0, fmt.Errorf("store: list %s: %w", t.dirPath, serr)
		}
		for _, se := range segEnts {
			epoch, idx, ok := parseSegmentName(se.Name())
			if !ok {
				continue
			}
			if epoch > maxEpoch {
				maxEpoch = epoch
			}
			if epoch < info.seq {
				continue // covered by the snapshot; compaction will remove it
			}
			t.segs = append(t.segs, segPos{epoch: epoch, idx: idx})
		}
		sort.Slice(t.segs, func(i, j int) bool {
			if t.segs[i].epoch != t.segs[j].epoch {
				return t.segs[i].epoch < t.segs[j].epoch
			}
			return t.segs[i].idx < t.segs[j].idx
		})
	}

	tasks = make([]*replayTask, 0, len(byID))
	for _, t := range byID {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].key < tasks[j].key })
	return tasks, maxEpoch, nil
}

// replayParallel rebuilds the store from the snapshot (v2) and the WAL:
// fan out one task per market, then finalize sequentially in market-ID
// order. Returns each shard's last segment position (for attachPersister)
// and the newest recovered record timestamp.
func replayParallel(walRoot string, info snapInfo, s *Store) (map[market.SpotID]segPos, uint64, time.Time, error) {
	tasks, maxEpoch, err := buildReplayTasks(walRoot, info, s)
	if err != nil {
		return nil, 0, time.Time{}, err
	}

	// Replay is a bounded bulk load: the heap grows monotonically toward
	// the store's steady-state size, and every column is reserved to its
	// exact final length up front. Letting the collector run concurrent
	// mark cycles (and keep write barriers armed) while that growth is in
	// flight only re-scans data that is about to grow again, so park it
	// for the duration and let the deferred restore trigger one cycle
	// over the settled heap.
	gcWas := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(gcWas)

	workers := runtime.GOMAXPROCS(0)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers > 1 {
		var wg sync.WaitGroup
		next := make(chan *replayTask)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// One intern table per worker: shared decoded strings
				// without shared writes.
				intern := make(map[string]string)
				for t := range next {
					t.run(intern)
				}
			}()
		}
		for _, t := range tasks {
			next <- t
		}
		close(next)
		wg.Wait()
	} else {
		intern := make(map[string]string)
		for _, t := range tasks {
			t.run(intern)
		}
	}

	// Finalize in market-ID order (tasks are already sorted): adopt the
	// worker-built shards and fold each task's delta into the rollup
	// hierarchy — the deterministic sum order every recovery repeats.
	positions := make(map[market.SpotID]segPos)
	var maxAt time.Time
	for _, t := range tasks {
		if t.err != nil {
			return nil, 0, time.Time{}, t.err
		}
		if t.sh.gen.Load() == 0 {
			// No records recovered for this market (e.g. only header-only
			// segments, since removed): shards exist iff they hold records,
			// so nothing to adopt and no position to remember.
			continue
		}
		if t.fresh {
			s.adoptShard(t.sh)
		}
		t.sh.publish(&t.delta)
		if t.last != (segPos{}) {
			positions[t.id] = t.last
		}
		if t.maxAt.After(maxAt) {
			maxAt = t.maxAt
		}
	}
	return positions, maxEpoch, maxAt, nil
}

// frameCounts counts a byte stream's frames per record type — a cheap
// pre-pass (length-prefix hops, no CRC, no field decode) so replay can
// size every column exactly before the real decode. Torn tails stop the
// count early and corrupt prefixes may overcount; both only affect
// reserved capacity, never contents.
type frameCounts [walPrice + 1]int

func countFrames(c *frameCounts, data []byte, magicLen int) {
	off := magicLen
	for off+walFrameHeader < len(data) {
		length := binary.LittleEndian.Uint32(data[off:])
		if length == 0 || length > maxWALPayload {
			return
		}
		end := off + walFrameHeader + int(length)
		if end > len(data) {
			return
		}
		if typ := data[off+walFrameHeader]; int(typ) < len(c) {
			c[typ]++
		}
		off = end
	}
}

// reserveFor grows the shard's columns for the counted records in one
// exact allocation per column.
func (sh *shard) reserveFor(c frameCounts) {
	if n := c[walProbe]; n > 0 {
		sh.probes.reserve(n)
	}
	if n := c[walSpike]; n > 0 {
		sh.spikes.reserve(n)
	}
	if n := c[walBidSpread]; n > 0 {
		sh.bidSpreads.reserve(n)
	}
	if n := c[walRevocation]; n > 0 {
		sh.revocations.reserve(n)
	}
	if n := c[walPrice]; n > 0 {
		sh.prices.reserve(n)
	}
}

// run decodes one market's snapshot shard file and WAL segments into its
// shard. No locks: the shard is exclusively this worker's until finalize.
func (t *replayTask) run(intern map[string]string) {
	// Read everything first and pre-count frames, so the columns get
	// exactly one allocation each before the decode loop starts.
	var snapData []byte
	segData := make([][]byte, len(t.segs))
	var counts frameCounts
	if t.snapPath != "" {
		data, err := os.ReadFile(t.snapPath)
		if err != nil {
			t.err = fmt.Errorf("store: read %s: %w", t.snapPath, err)
			return
		}
		snapData = data
		countFrames(&counts, data, len(snapMagic))
	}
	for i, seg := range t.segs {
		path := filepath.Join(t.dirPath, segmentName(seg.epoch, seg.idx))
		data, err := os.ReadFile(path)
		if err != nil {
			t.err = fmt.Errorf("store: read %s: %w", path, err)
			return
		}
		segData[i] = data
		countFrames(&counts, data, len(walMagic))
	}
	t.sh.reserveFor(counts)

	if snapData != nil {
		n, derr := decodeShardSnapshot(snapData, t.id, intern, t.applyEntry)
		if derr == nil && n != t.snapRecords {
			derr = fmt.Errorf("store: %d records, manifest claims %d", n, t.snapRecords)
		}
		if derr != nil {
			// Same contract as a damaged v1 snapshot file: snapshots are
			// rename-published, so damage is external — fail Open loudly
			// instead of silently serving a partial recovery.
			t.err = fmt.Errorf("store: snapshot shard %s is damaged (remove the snapshot directory to recover from an older snapshot + WAL, accepting the loss of the records only it covered): %w", t.snapPath, derr)
			return
		}
	}

	for i, seg := range t.segs {
		path := filepath.Join(t.dirPath, segmentName(seg.epoch, seg.idx))
		segRecords := 0
		validLen, derr := decodeSegmentStream(segData[i], t.id, intern, func(e *walEntry) {
			segRecords++
			t.applyEntry(e)
		})
		if derr == nil && segRecords == 0 {
			// A header-only segment (a crash between the magic write and
			// the first frame write) holds no records. Remove it rather
			// than track it: if the market ends up with no records at
			// all, no shard exists to remember the position, and a later
			// append would otherwise reuse the name and append a second
			// magic into the existing file — which the next recovery
			// would read as corruption and discard along with every
			// frame after it.
			if err := os.Remove(path); err != nil {
				t.err = fmt.Errorf("store: drop empty %s: %w", path, err)
				return
			}
			continue
		}
		t.last = seg
		if derr == nil {
			continue
		}
		// Torn or damaged tail: cut the segment back to its valid prefix
		// (or drop it entirely when even the header is gone) and discard
		// any later segments, preserving the exact-prefix invariant. The
		// valid-prefix records are already applied.
		if validLen <= len(walMagic) {
			if err := os.Remove(path); err != nil {
				t.err = fmt.Errorf("store: drop damaged %s: %w", path, err)
				return
			}
		} else if err := os.Truncate(path, int64(validLen)); err != nil {
			t.err = fmt.Errorf("store: trim damaged %s: %w", path, err)
			return
		}
		for _, later := range t.segs[i+1:] {
			lp := filepath.Join(t.dirPath, segmentName(later.epoch, later.idx))
			if err := os.Remove(lp); err != nil {
				t.err = fmt.Errorf("store: drop unreachable %s: %w", lp, err)
				return
			}
		}
		break
	}
}

// applyEntry replays one decoded record through the shard's ordinary
// locked append helpers — the exact code path a live append takes, so
// every aggregate, ordered flag, derived outage, and crossing index
// rebuilds identically — accumulating the rollup fold into the task's
// delta for finalize.
func (t *replayTask) applyEntry(e *walEntry) {
	switch e.typ {
	case walProbe:
		t.sh.appendProbeLocked(&e.probe, &t.delta)
	case walSpike:
		t.sh.appendSpikeLocked(&e.spike, &t.delta)
	case walBidSpread:
		t.sh.appendBidSpreadLocked(&e.bidSpread, &t.delta)
	case walRevocation:
		t.sh.appendRevocationLocked(&e.revocation, &t.delta)
	case walPrice:
		t.sh.appendPriceLocked(&e.price, &t.delta)
	}
	if at := e.at(); at.After(t.maxAt) {
		t.maxAt = at
	}
}
