package store

import (
	"sync/atomic"

	"spotlight/internal/market"
)

// Appender is a write handle bound to one market. Hot ingestion paths
// (the per-market probe managers in internal/core) hold one per monitored
// market, so appends go straight to the shard without a store-level map
// lookup. The shard itself is created lazily on the first write: binding
// an Appender to a never-probed market leaves no trace in the store, so
// Markets()/Aggregates() keep their "at least one record" contract. All
// methods are safe for concurrent use.
//
// Records written through an Appender must target the bound market; the
// Market field of each record is routed by the handle, not re-checked.
type Appender struct {
	store *Store
	id    market.SpotID
	sh    atomic.Pointer[shard]
}

// Appender returns a write handle bound to id. No shard is created until
// the first write through the handle.
func (s *Store) Appender(id market.SpotID) *Appender {
	return &Appender{store: s, id: id}
}

// Market returns the market the handle is bound to.
func (a *Appender) Market() market.SpotID { return a.id }

// shard resolves (and memoizes) the bound market's shard, creating it on
// the first write.
func (a *Appender) shard() *shard {
	if sh := a.sh.Load(); sh != nil {
		return sh
	}
	sh := a.store.shardFor(a.id)
	a.sh.Store(sh)
	return sh
}

// AppendProbe logs one probe of the bound market.
func (a *Appender) AppendProbe(r ProbeRecord) { a.shard().appendProbe(r) }

// AppendProbes logs a batch of probes of the bound market under a single
// shard-lock acquisition, preserving input order. Use it on replay and
// bulk-load paths where many records for one market arrive together.
func (a *Appender) AppendProbes(rs []ProbeRecord) {
	if len(rs) == 0 {
		return
	}
	a.shard().appendProbes(rs)
}

// AppendSpike logs one threshold crossing of the bound market.
func (a *Appender) AppendSpike(e SpikeEvent) { a.shard().appendSpike(e) }

// AppendBidSpread logs one intrinsic-price search of the bound market.
func (a *Appender) AppendBidSpread(r BidSpreadRecord) { a.shard().appendBidSpread(r) }

// AppendRevocation logs one revocation watch of the bound market.
func (a *Appender) AppendRevocation(r RevocationRecord) { a.shard().appendRevocation(r) }

// RecordPrice appends one price observation of the bound market.
func (a *Appender) RecordPrice(p PricePoint) { a.shard().appendPrice(p) }
