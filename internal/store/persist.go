package store

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"spotlight/internal/market"
)

// The durability layer. A durable store owns a data directory laid out as
//
//	dir/
//	  meta.json                  salt + last noted service clock
//	  snapshot-<SEQ>/            whole-store snapshot (snapshot.go)
//	    manifest.json            shard file list + record counts
//	    <market>.snap            per-shard binary record stream
//	  wal/<market>/seg-<EPOCH>-<IDX>.wal
//
// where <market> is the URL-path-escaped market ID. (Directories written
// by older versions hold a single snapshot-<SEQ>.json instead — still
// read, superseded by the first new snapshot.) Every append frames
// its records into the owning shard's pending WAL buffer inside the same
// shard lock round as the in-memory append; Flush moves pending bytes to
// the active segment files (the durability boundary — a record is
// "acknowledged" once Flush returns). Segments rotate at SegmentSize.
//
// Snapshots and the WAL share one monotonic counter: the segment epoch.
// Snapshot N captures, per shard under its lock, everything appended so
// far and simultaneously advances the shard's WAL to epoch N — so a
// record lives either in snapshot N (appended before the shard's cut) or
// in a segment with epoch >= N (appended after), never both and never
// neither. Recovery loads the newest complete snapshot S and replays the
// segments with epoch >= S in (epoch, idx) order per shard; compaction
// deletes segments with epoch < S once snapshot S is durable. Snapshot
// files become visible only via rename, so a crash mid-snapshot leaves
// the previous snapshot plus an uncompacted WAL — exactly the state the
// recovery rule handles.
//
// A damaged segment tail (the torn frames of a crash mid-flush) is
// truncated to its valid prefix on open; per-shard recovery is therefore
// always an exact prefix of that shard's append history.

// PersistOptions tunes a durable store opened with Open.
type PersistOptions struct {
	// SegmentSize rotates a shard's active WAL segment once it reaches
	// this many bytes. Default 1 MiB.
	SegmentSize int64
}

const (
	defaultSegmentSize = 1 << 20
	metaFileName       = "meta.json"
	cursorFileName     = "cursor.json"
	walDirName         = "wal"
	snapshotPrefix     = "snapshot-"
	snapshotSuffix     = ".json"

	// walAutoFlushBytes bounds a shard's pending buffer: if the owner
	// never calls Flush (no service tick), the shard flushes itself
	// inline once this much is buffered, so memory stays bounded.
	walAutoFlushBytes = 256 << 10
)

// persistMeta is the meta.json schema: the ETag salt minted when the data
// directory is created, the clean-shutdown marker with its crash-recovery
// counter, and the last service clock the owner noted (used to resume a
// study's clock after restart). Rewritten atomically at Open, on every
// snapshot, and on Close.
type persistMeta struct {
	Version int    `json:"version"`
	Salt    uint64 `json:"salt"`
	// Clean is true only between a Close and the next Open. An Open that
	// finds it false recovered from a crash and bumps Recoveries, which
	// rotates the effective ETag salt: a crash rewinds generations to
	// the last flush, so validators minted against the lost tail must
	// not stay matchable (a clean shutdown loses nothing and keeps the
	// salt stable).
	Clean      bool      `json:"clean"`
	Recoveries uint64    `json:"recoveries"`
	Clock      time.Time `json:"clock"`
}

// Persister is the durability engine of a Store opened with Open. The
// owner (internal/core's Service, or a test) drives its lifecycle:
// Flush once per ingest round, Snapshot periodically, Close on shutdown.
// All methods are safe for concurrent use with appends.
type Persister struct {
	dir        string
	store      *Store
	opts       PersistOptions
	salt       uint64
	recoveries uint64
	// lock holds the data directory's advisory flock for the life of the
	// persister; the kernel releases it if the process dies.
	lock *os.File

	// clock is the last instant noted via NoteClock (UnixNano), persisted
	// with every snapshot so a restarted owner can resume its clock.
	clock atomic.Int64

	// mu guards epoch and the error slot. Lock ordering: the store lock
	// (Store.mu) is always taken before mu (shard creation reads the
	// epoch while holding Store.mu; snapshotCut bumps it likewise).
	mu    sync.Mutex
	epoch uint64
	err   error

	// dirtyMu guards the to-flush list. It nests inside everything and is
	// never held across file I/O.
	dirtyMu sync.Mutex
	dirty   []*shardWAL

	// snapMu serializes Snapshot, Flush, and Close against each other.
	// It also guards lastSnap, the incremental-encoding state of the
	// newest published v2 snapshot (nil before the first one).
	snapMu   sync.Mutex
	closed   bool
	lastSnap *snapDirState

	// Recovery cost, set once in Open before the store is shared and
	// read-only afterwards (scrape-time gauges in Store.EnableMetrics).
	replayDur        time.Duration
	recoveredRecords uint64
}

// shardWAL is one shard's log state. Appends run while holding the
// owning shard's lock and only touch pending (memory); Flush moves
// pending to the active segment file.
//
// Two locks split the hot path from the I/O: mu guards the pending
// buffer and nests inside the shard lock (appends hold both, briefly);
// flushMu serializes flushes and guards the file position, and is held
// across file I/O. A flush swaps the pending buffer out under mu and
// writes it under flushMu alone, so a slow disk never blocks an append —
// or, transitively, the shard's readers. flushMu is always taken before
// mu; neither is ever held while taking a shard lock.
type shardWAL struct {
	p       *Persister
	id      market.SpotID
	dirPath string

	flushMu sync.Mutex
	epoch   uint64 // epoch of the active (or next) segment
	idx     uint64 // index of the active segment within epoch
	size    int64  // bytes already on disk in the active segment
	spare   []byte // recycled swap buffer, owned by flushMu

	mu      sync.Mutex
	pending []byte
	dirty   bool // queued on p.dirty
}

// marketDirName returns the per-shard WAL directory name for id: the
// URL-path-escaped canonical ID ("Linux/UNIX" contains a slash).
func marketDirName(id market.SpotID) string {
	return url.PathEscape(id.String())
}

// segmentName renders a segment file name; parseSegmentName inverts it.
func segmentName(epoch, idx uint64) string {
	return fmt.Sprintf("seg-%08d-%08d.wal", epoch, idx)
}

func parseSegmentName(name string) (epoch, idx uint64, ok bool) {
	var e, i uint64
	n, err := fmt.Sscanf(name, "seg-%d-%d.wal", &e, &i)
	if err != nil || n != 2 {
		return 0, 0, false
	}
	// Only the canonical rendering counts: Sscanf ignores zero-padding
	// and trailing bytes, so without the round-trip check a stray
	// "seg-1-1.wal.bak" would alias the real segment and replay its
	// records twice.
	if name != segmentName(e, i) {
		return 0, 0, false
	}
	return e, i, true
}

// Open opens (creating if needed) a durable store rooted at dir: it
// replays the newest complete snapshot and every WAL segment it does not
// cover into a fresh store, rebuilding all derived state — aggregates,
// rollups, and generation counters — from the records themselves, then
// arms the write-ahead path so subsequent appends are logged.
func Open(dir string, opts PersistOptions) (*Store, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	walRoot := filepath.Join(dir, walDirName)
	if err := os.MkdirAll(walRoot, 0o755); err != nil {
		return nil, fmt.Errorf("store: open data dir: %w", err)
	}
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, err
	}

	meta, err := loadOrInitMeta(dir)
	if err != nil {
		lock.Close()
		return nil, err
	}

	s := New()
	replayStart := time.Now()
	info, err := findLatestSnapshot(dir)
	if err != nil {
		lock.Close()
		return nil, err
	}
	var snapAt time.Time
	if info.seq > 0 && !info.v2 {
		// Legacy single-file JSON snapshot: replay it serially through the
		// export.go reader before the parallel WAL phase. The first
		// snapshot this process takes writes the v2 layout and compaction
		// removes the v1 file — migration is one snapshot cycle.
		snapAt, err = loadSnapshotV1(dir, info.seq, s)
		if err != nil {
			lock.Close()
			return nil, err
		}
	}

	positions, maxEpoch, walAt, err := replayParallel(walRoot, info, s)
	if err != nil {
		lock.Close()
		return nil, err
	}
	if maxEpoch < info.seq {
		maxEpoch = info.seq
	}
	if maxEpoch == 0 {
		maxEpoch = 1
	}

	p := &Persister{
		dir:              dir,
		store:            s,
		opts:             opts,
		salt:             meta.Salt,
		recoveries:       meta.Recoveries,
		lock:             lock,
		epoch:            maxEpoch,
		replayDur:        time.Since(replayStart),
		recoveredRecords: s.gen.Load(),
	}
	if info.v2 {
		// Prime incremental snapshots: shards unchanged since this
		// snapshot hard-link its files instead of re-encoding.
		p.lastSnap = &snapDirState{seq: info.seq, dir: info.dirPath, records: make(map[string]uint64, len(info.manifest.Shards))}
		for _, msh := range info.manifest.Shards {
			p.lastSnap.records[msh.File] = msh.Records
		}
	}
	// Resume the clock from whichever is newest: the clock noted at the
	// last snapshot or clean shutdown, or the newest recovered record.
	// A crash loses the meta clock written since the last snapshot, but
	// the WAL still holds the acknowledged records of those ticks — and
	// resuming behind them would make the owner re-live (and re-record)
	// a window the store already covers.
	clock := meta.Clock
	for _, t := range [...]time.Time{snapAt, walAt} {
		if t.After(clock) {
			clock = t
		}
	}
	if !clock.IsZero() {
		p.clock.Store(clock.UnixNano())
	}
	s.attachPersister(p, positions)
	return s, nil
}

// lockDataDir takes an exclusive advisory flock on dir/LOCK so two
// processes cannot write the same WAL: the second Open fails cleanly
// instead of interleaving frames and racing compaction. The lock dies
// with the process, so a crash never leaves a stale lock behind.
func lockDataDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock file: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: data dir %s is in use by another process: %w", dir, err)
	}
	return f, nil
}

// loadOrInitMeta reads meta.json, minting it (with a fresh random salt)
// on first open of the directory. An existing meta without the clean
// marker means the previous owner crashed: the recovery counter bumps,
// rotating the effective ETag salt. Either way the marker is rewritten
// false — this process is now the running owner.
func loadOrInitMeta(dir string) (persistMeta, error) {
	path := filepath.Join(dir, metaFileName)
	data, err := os.ReadFile(path)
	var m persistMeta
	switch {
	case err == nil:
		if jerr := json.Unmarshal(data, &m); jerr != nil {
			return persistMeta{}, fmt.Errorf("store: decode %s: %w", metaFileName, jerr)
		}
		if !m.Clean {
			m.Recoveries++
		}
	case errors.Is(err, os.ErrNotExist):
		var b [8]byte
		if _, rerr := rand.Read(b[:]); rerr != nil {
			return persistMeta{}, fmt.Errorf("store: mint salt: %w", rerr)
		}
		m = persistMeta{Version: 1, Salt: binary.LittleEndian.Uint64(b[:])}
	default:
		return persistMeta{}, fmt.Errorf("store: read %s: %w", metaFileName, err)
	}
	m.Clean = false
	if werr := writeFileAtomic(path, mustJSON(m)); werr != nil {
		return persistMeta{}, werr
	}
	return m, nil
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err) // persistMeta marshaling cannot fail
	}
	return append(data, '\n')
}

// writeFileAtomic writes data via a temp file, fsync, rename, and a
// directory fsync, so the target is always either the old or the new
// complete contents — even across a power failure (the directory sync
// persists the rename itself).
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", tmp, werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish %s: %w", path, err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil {
			return fmt.Errorf("store: sync dir of %s: %w", path, serr)
		}
	}
	return nil
}

// snapshotSeq extracts N from "snapshot-N.json"; ok is false for other
// names (including temp files).
func snapshotSeq(name string) (uint64, bool) {
	var seq uint64
	n, err := fmt.Sscanf(name, snapshotPrefix+"%d"+snapshotSuffix, &seq)
	if err != nil || n != 1 {
		return 0, false
	}
	if name != snapshotName(seq) {
		return 0, false
	}
	return seq, true
}

func snapshotName(seq uint64) string {
	return fmt.Sprintf("%s%08d%s", snapshotPrefix, seq, snapshotSuffix)
}

// loadSnapshotV1 loads a legacy single-file JSON snapshot into s. The
// newest snapshot is the only acceptable one: compaction deleted the WAL
// epochs it covers, so silently falling back to an older snapshot would
// present large data loss as a successful recovery. A damaged newest
// snapshot (snapshots are rename-published, so only external corruption
// gets here) therefore fails Open loudly; the operator can remove the
// file to explicitly accept recovering from an older snapshot plus
// whatever WAL survives.
func loadSnapshotV1(dir string, seq uint64, s *Store) (time.Time, error) {
	name := snapshotName(seq)
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		return time.Time{}, fmt.Errorf("store: open %s: %w", name, err)
	}
	var snap Snapshot
	derr := json.NewDecoder(f).Decode(&snap)
	f.Close()
	if derr != nil {
		return time.Time{}, fmt.Errorf("store: snapshot %s is damaged (remove it to recover from an older snapshot + WAL, accepting the loss of the records only it covered): %w", name, derr)
	}
	if err := s.loadSnapshot(snap); err != nil {
		return time.Time{}, fmt.Errorf("store: replay %s: %w", name, err)
	}
	return snapshotMaxTime(snap), nil
}

// snapshotMaxTime returns the newest record timestamp in the snapshot.
func snapshotMaxTime(snap Snapshot) time.Time {
	var maxAt time.Time
	bump := func(t time.Time) {
		if t.After(maxAt) {
			maxAt = t
		}
	}
	for _, r := range snap.Probes {
		bump(r.At)
	}
	for _, e := range snap.Spikes {
		bump(e.At)
	}
	for _, b := range snap.BidSpreads {
		bump(b.At)
	}
	for _, rv := range snap.Revocations {
		bump(rv.At)
	}
	for _, series := range snap.Prices {
		for _, pt := range series {
			bump(pt.At)
		}
	}
	return maxAt
}

// segPos records where a shard's recovered log ended, so fresh appends
// start a new segment after it.
type segPos struct {
	epoch uint64
	idx   uint64
}

// Persister returns the store's durability engine, or nil for an
// in-memory store built with New.
func (s *Store) Persister() *Persister { return s.persist }

// attachPersister arms the write-ahead path: existing shards (rebuilt by
// replay) get their WAL handles, and shardFor wires new shards at
// creation. positions tells each recovered shard where its on-disk log
// ended so fresh appends open the following segment.
func (s *Store) attachPersister(p *Persister, positions map[market.SpotID]segPos) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist = p
	for id, sh := range s.shards {
		w := p.newShardWAL(id)
		if pos, ok := positions[id]; ok && pos.epoch == w.epoch {
			w.idx = pos.idx + 1
		}
		sh.mu.Lock()
		sh.wal = w
		sh.mu.Unlock()
	}
}

// newShardWAL builds the log handle of one shard at the current epoch.
// Callers hold Store.mu, which orders handle creation against epoch bumps
// (snapshotCut also runs under Store.mu).
func (p *Persister) newShardWAL(id market.SpotID) *shardWAL {
	p.mu.Lock()
	epoch := p.epoch
	p.mu.Unlock()
	return &shardWAL{
		p:       p,
		id:      id,
		dirPath: filepath.Join(p.dir, walDirName, marketDirName(id)),
		epoch:   epoch,
		idx:     1,
	}
}

// Salt returns the directory's effective ETag salt: the stable value
// minted when the data directory was created, folded with the
// crash-recovery counter. Serving layers salt their ETags with it
// instead of a per-process value, so validators survive clean restarts —
// where generations survive too — but are all retired after a crash,
// whose rewound generations could otherwise re-reach a pre-crash count
// with different records and falsely answer 304.
func (p *Persister) Salt() uint64 {
	return p.salt ^ (p.recoveries * 0x9e3779b97f4a7c15)
}

// Clock returns the last service clock noted before the previous
// shutdown or snapshot (zero when never noted), letting the owner resume
// a study's clock after restart.
func (p *Persister) Clock() time.Time {
	ns := p.clock.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns).UTC()
}

// NoteClock records the owner's current clock; it is persisted with the
// next snapshot and on Close.
func (p *Persister) NoteClock(t time.Time) {
	p.clock.Store(t.UnixNano())
}

// SaveCursor atomically persists an opaque replication cursor blob next
// to the WAL (dir/cursor.json). The blob's schema belongs to the caller
// (internal/replica stores its stream position there); the store only
// guarantees the same durability as a snapshot — the file is always
// either the old or the new complete contents. Call it after Flush: a
// cursor that claims records the WAL has not acknowledged yet would, on
// recovery, skip the stream events that were supposed to re-deliver
// them. Fail-stop like every other write: once the durability layer has
// a sticky error the cursor stops advancing too.
func (p *Persister) SaveCursor(data []byte) error {
	if err := p.Err(); err != nil {
		return err
	}
	if err := p.fail(writeFileAtomic(filepath.Join(p.dir, cursorFileName), data)); err != nil {
		return err
	}
	p.store.metrics.cursorSaves.Inc()
	return nil
}

// LoadCursor returns the last blob SaveCursor persisted; ok is false
// when no cursor has ever been saved in this data directory.
func (p *Persister) LoadCursor() (data []byte, ok bool, err error) {
	data, err = os.ReadFile(filepath.Join(p.dir, cursorFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", cursorFileName, err)
	}
	return data, true, nil
}

// Abandon drops the persister without flushing, snapshotting, or writing
// the clean marker, releasing the directory flock exactly the way a
// process death would. It exists for failure-domain tests that need to
// simulate kill -9 and then re-Open the same directory in-process; real
// owners always Close. After Abandon every write is a no-op and the next
// Open recovers: WAL replay truncates any torn tail and the recovery
// counter bumps (rotating Salt) because the clean marker was never
// written.
func (p *Persister) Abandon() {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.fail(errors.New("store: persister abandoned (simulated crash)"))
	p.lock.Close()
}

// fail records the first durability error; later writes become no-ops
// and the error surfaces from Flush, Snapshot, and Close. The in-memory
// store keeps serving — durability is fail-stop, queries are not.
func (p *Persister) fail(err error) error {
	if err == nil {
		return nil
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	return err
}

// Err returns the sticky durability error, nil while the log is healthy.
func (p *Persister) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// markDirty queues w for the next Flush. Called with w.mu held; dirtyMu
// nests innermost and is never held across I/O.
func (p *Persister) markDirty(w *shardWAL) {
	p.dirtyMu.Lock()
	p.dirty = append(p.dirty, w)
	p.dirtyMu.Unlock()
}

// takeDirty claims the current to-flush list.
func (p *Persister) takeDirty() []*shardWAL {
	p.dirtyMu.Lock()
	dirty := p.dirty
	p.dirty = nil
	p.dirtyMu.Unlock()
	return dirty
}

// Flush moves every shard's pending WAL bytes to its active segment
// file. Records are durable against process crashes once Flush returns;
// this is the "acknowledged" boundary the recovery guarantees speak of.
func (p *Persister) Flush() error {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	return p.flushLocked()
}

func (p *Persister) flushLocked() error {
	if err := p.Err(); err != nil {
		return err
	}
	var first error
	for _, w := range p.takeDirty() {
		if err := w.flushPending(); err != nil && first == nil {
			first = err
		}
	}
	return p.fail(first)
}

// append frames pre-encoded bytes onto the shard's pending buffer. The
// caller holds the owning shard's lock, making the buffered bytes agree
// exactly with the in-memory append order. It reports whether the buffer
// has outgrown walAutoFlushBytes; the caller then runs flushOversized
// after releasing the shard lock, so file I/O never stalls the shard's
// readers.
func (w *shardWAL) append(encoded []byte) (oversized bool) {
	if len(encoded) == 0 {
		return false
	}
	w.mu.Lock()
	w.pending = append(w.pending, encoded...)
	if !w.dirty {
		w.dirty = true
		w.p.markDirty(w)
	}
	oversized = len(w.pending) >= walAutoFlushBytes
	w.mu.Unlock()
	return oversized
}

// flushOversized drains an over-threshold pending buffer outside the
// shard lock, bounding memory when the owner never calls Flush.
func (w *shardWAL) flushOversized() {
	if err := w.flushPending(); err != nil {
		w.p.fail(err)
	}
}

// cutTo flushes the shard's pending bytes into its current epoch and
// advances the log to newEpoch: the snapshot taken in the same shard-lock
// round covers everything before the cut, and everything after lands in
// segments the snapshot does not cover. Called with the shard lock held,
// which excludes concurrent appends; taking flushMu waits out any
// in-flight flush of pre-cut bytes.
func (w *shardWAL) cutTo(newEpoch uint64) error {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	if err := w.writeOutLocked(); err != nil {
		return err
	}
	if newEpoch > w.epoch {
		w.epoch = newEpoch
		w.idx = 1
		w.size = 0
	}
	return nil
}

// flushPending moves the pending buffer to the active segment file. The
// buffer is swapped out under mu and written under flushMu alone, so
// appends (and the shard lock they hold) never wait on disk. The sticky-
// error check keeps failure fail-stop: a failed flush may have written
// part of a buffer to disk, so retrying it would append those frames a
// second time and the next recovery would replay duplicates. Once the
// persister is failed, nothing writes again.
func (w *shardWAL) flushPending() error {
	if err := w.p.Err(); err != nil {
		return err
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	return w.writeOutLocked()
}

// writeOutLocked swaps out and writes the pending buffer. Requires
// flushMu.
func (w *shardWAL) writeOutLocked() error {
	w.mu.Lock()
	buf := w.pending
	w.pending = w.spare[:0]
	// Clearing dirty at swap time (not after the write) lets an append
	// racing the disk I/O re-queue the shard for the next Flush.
	w.dirty = false
	w.mu.Unlock()
	m := w.p.store.metrics
	var start time.Time
	if m.walFlushSeconds != nil && len(buf) > 0 {
		start = time.Now()
	}
	err := w.writeSegmentLocked(buf)
	if !start.IsZero() && err == nil {
		m.observeFlush(len(buf), time.Since(start))
	}
	w.spare = buf[:0]
	return err
}

// writeSegmentLocked appends buf to the active segment, opening (and
// rotating) segment files as needed. Requires flushMu.
func (w *shardWAL) writeSegmentLocked(buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if w.size == 0 {
		// Starting a new segment; compaction may have removed the whole
		// shard directory when the last snapshot covered every segment.
		if err := os.MkdirAll(w.dirPath, 0o755); err != nil {
			return fmt.Errorf("store: create WAL dir: %w", err)
		}
	}
	path := filepath.Join(w.dirPath, segmentName(w.epoch, w.idx))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		// A concurrent compaction can remove the shard directory between
		// our MkdirAll and the open (it prunes directories left empty by
		// the snapshot cut). Recreate and retry once rather than letting
		// a transient ENOENT become the sticky durability error.
		if merr := os.MkdirAll(w.dirPath, 0o755); merr == nil {
			f, err = os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		}
	}
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	if w.size == 0 {
		if _, err := f.WriteString(walMagic); err != nil {
			f.Close()
			return fmt.Errorf("store: write segment header: %w", err)
		}
		w.size = int64(len(walMagic))
	}
	// No fsync here: the WAL's contract is process-crash durability
	// (bytes handed to the kernel survive the process dying), and an
	// fsync per flush would pay machine-crash prices without delivering
	// machine-crash guarantees anyway — that would also need directory
	// fsyncs on every segment create. Machine-crash checkpoints are the
	// snapshots, which writeFileAtomic fsyncs file and directory both.
	n, werr := f.Write(buf)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	w.size += int64(n)
	if werr != nil {
		return fmt.Errorf("store: write segment: %w", werr)
	}
	if w.size >= w.p.opts.SegmentSize {
		w.idx++
		w.size = 0
	}
	return nil
}

// Snapshot writes a whole-store snapshot and compacts the WAL segments
// it covers. The capture is a per-shard consistent cut: each shard's
// records, generation, and WAL epoch advance are taken under one shard
// lock hold, so no shard's records can straddle the snapshot boundary.
func (p *Persister) Snapshot() error {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	if p.closed {
		return errors.New("store: snapshot of closed persister")
	}
	if err := p.Err(); err != nil {
		return err
	}
	_, err := p.snapshotLocked()
	return err
}

func (p *Persister) snapshotLocked() (uint64, error) {
	start := time.Now()
	seq, captures := p.store.snapshotCut(p)
	var cutErr error
	for _, c := range captures {
		if c.walErr != nil && cutErr == nil {
			cutErr = c.walErr
		}
	}
	if cutErr != nil {
		// Some shard could not flush its pre-cut records; writing this
		// snapshot could then orphan them, so abort. The previous
		// snapshot + WAL remain the recovery source.
		return 0, p.fail(cutErr)
	}

	state, err := writeSnapshotV2(p.dir, seq, captures, p.lastSnap)
	if err != nil {
		return 0, p.fail(err)
	}
	p.lastSnap = state
	if err := p.writeMeta(p.closed); err != nil {
		return 0, p.fail(err)
	}
	p.compact(seq)
	m := p.store.metrics
	m.snapshots.Inc()
	m.snapshotLinked.Add(uint64(state.linked))
	m.snapshotEncoded.Add(uint64(state.encoded))
	m.snapshotSeconds.Observe(time.Since(start))
	return seq, nil
}

// writeMeta rewrites meta.json; clean is true only for the final write
// of a Close, marking the shutdown as loss-free.
func (p *Persister) writeMeta(clean bool) error {
	m := persistMeta{Version: 1, Salt: p.salt, Clean: clean, Recoveries: p.recoveries}
	if ns := p.clock.Load(); ns != 0 {
		m.Clock = time.Unix(0, ns).UTC()
	}
	return writeFileAtomic(filepath.Join(p.dir, metaFileName), mustJSON(m))
}

// compact removes snapshots older than seq — v2 directories, legacy v1
// files, and in-progress .tmp directories a crashed snapshot left — and
// WAL segments with epochs seq covers. Best-effort: leftovers are
// ignored by recovery and retried by the next compaction.
func (p *Persister) compact(seq uint64) {
	if ents, err := os.ReadDir(p.dir); err == nil {
		for _, ent := range ents {
			name := ent.Name()
			if ent.IsDir() {
				if s, ok := snapshotDirSeq(name); ok && s < seq {
					os.RemoveAll(filepath.Join(p.dir, name))
				} else if strings.HasPrefix(name, snapshotPrefix) && strings.HasSuffix(name, snapTmpSuffix) {
					// snapMu serializes snapshots, so any .tmp directory
					// is the debris of a crashed snapshot attempt.
					os.RemoveAll(filepath.Join(p.dir, name))
				}
				continue
			}
			if s, ok := snapshotSeq(name); ok && s < seq {
				os.Remove(filepath.Join(p.dir, name))
			}
		}
	}
	walRoot := filepath.Join(p.dir, walDirName)
	dirs, err := os.ReadDir(walRoot)
	if err != nil {
		return
	}
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		shardDir := filepath.Join(walRoot, d.Name())
		segs, err := os.ReadDir(shardDir)
		if err != nil {
			continue
		}
		remaining := 0
		for _, seg := range segs {
			epoch, idx, ok := parseSegmentName(seg.Name())
			if !ok {
				remaining++
				continue
			}
			if epoch < seq {
				if os.Remove(filepath.Join(shardDir, segmentName(epoch, idx))) != nil {
					remaining++
				}
			} else {
				remaining++
			}
		}
		if remaining == 0 {
			os.Remove(shardDir) // now empty; recreated on next append
		}
	}
}

// Close flushes outstanding WAL bytes, takes a final snapshot (making the
// next Open a single-file load), persists the clock, and stops the
// durability layer. It returns the first durability error of the whole
// session, so owners that ignore per-tick Flush errors still surface
// them at shutdown.
func (p *Persister) Close() error {
	p.snapMu.Lock()
	defer p.snapMu.Unlock()
	if p.closed {
		return p.Err()
	}
	p.closed = true
	defer p.lock.Close() // releases the directory flock
	if err := p.flushLocked(); err != nil {
		return err
	}
	if err := p.Err(); err != nil {
		return err
	}
	_, err := p.snapshotLocked()
	return err
}

// snapshotCut atomically advances the segment epoch and captures every
// shard. Running under the store lock closes the race with shard
// creation: a shard either exists here (captured, WAL advanced) or is
// created afterwards and mints its WAL handle at the new epoch — either
// way no record can hide in a segment the snapshot claims to cover.
func (s *Store) snapshotCut(p *Persister) (uint64, []shardCapture) {
	s.mu.Lock()
	p.mu.Lock()
	p.epoch++
	seq := p.epoch
	p.mu.Unlock()
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.Unlock()

	sort.Slice(shards, func(i, j int) bool { return shards[i].key < shards[j].key })
	captures := make([]shardCapture, len(shards))
	for i, sh := range shards {
		captures[i] = sh.capture(seq)
	}
	return seq, captures
}
