package store

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"spotlight/internal/market"
)

// Snapshot is the JSON-serializable view of the whole store, used to dump
// a study's raw data to disk.
type Snapshot struct {
	Probes      []ProbeRecord           `json:"probes"`
	Spikes      []SpikeEvent            `json:"spikes"`
	BidSpreads  []BidSpreadRecord       `json:"bidSpreads"`
	Revocations []RevocationRecord      `json:"revocations"`
	Outages     []OutageRecord          `json:"outages"`
	Prices      map[string][]PricePoint `json:"prices"`
}

// WriteJSON serializes the full store contents to w. Each shard is
// captured under a single lock hold, so every record stream reflects the
// same per-market cut: a concurrent append lands either in all of its
// market's streams or in none of them, never partially. Streams are the
// usual timestamp-ordered merge across shards.
func (s *Store) WriteJSON(w io.Writer) error {
	snap := assembleSnapshot(s.captureAll())
	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	return nil
}

// captureAll captures every shard (each under its own lock, without
// touching the WAL) in market-ID order.
func (s *Store) captureAll() []shardCapture {
	shards := s.shardList()
	captures := make([]shardCapture, len(shards))
	for i, sh := range shards {
		captures[i] = sh.capture(0)
	}
	return captures
}

// assembleSnapshot merges per-shard captures into the snapshot schema:
// global streams ordered by timestamp (ties in market-ID order, which is
// the captures' order) and the per-market price map.
func assembleSnapshot(captures []shardCapture) Snapshot {
	snap := Snapshot{Prices: make(map[string][]PricePoint)}
	snap.Probes = mergeCaptured(captures,
		func(c *shardCapture) ([]ProbeRecord, bool) {
			return c.probes.appendTo(nil, c.id, 0, c.probes.n()), c.probesOrdered
		}, probeAt)
	snap.Spikes = mergeCaptured(captures,
		func(c *shardCapture) ([]SpikeEvent, bool) {
			return c.spikes.appendTo(nil, c.id, 0, c.spikes.n()), c.spikesOrdered
		}, spikeAt)
	snap.BidSpreads = mergeCaptured(captures,
		func(c *shardCapture) ([]BidSpreadRecord, bool) {
			return c.bidSpreads.appendTo(nil, c.id, 0, c.bidSpreads.n()), c.bidSpreadsOrdered
		}, bidSpreadAt)
	snap.Revocations = mergeCaptured(captures,
		func(c *shardCapture) ([]RevocationRecord, bool) {
			return c.revocations.appendTo(nil, c.id, 0, c.revocations.n()), c.revocationsOrdered
		}, revocationAt)
	snap.Outages = mergeCaptured(captures,
		func(c *shardCapture) ([]OutageRecord, bool) {
			return c.outages.appendTo(nil, c.id, 0, c.outages.n()), c.outagesOrdered
		}, outageAt)
	for _, c := range captures {
		if c.prices.n() > 0 {
			snap.Prices[c.id.String()] = c.prices.appendTo(nil, 0, c.prices.n())
		}
	}
	return snap
}

// mergeCaptured is mergeByTime over captured runs instead of live shards.
func mergeCaptured[T any](captures []shardCapture, collect func(*shardCapture) ([]T, bool), at func(T) time.Time) []T {
	runs := make([][]T, 0, len(captures))
	total, allOrdered := 0, true
	for i := range captures {
		run, ordered := collect(&captures[i])
		if len(run) == 0 {
			continue
		}
		runs = append(runs, run)
		total += len(run)
		allOrdered = allOrdered && ordered
	}
	return mergeTimedRuns(runs, allOrdered, total, at)
}

// ReadJSON loads a snapshot previously produced by WriteJSON into a fresh
// Store, rebuilding the derived outage intervals from the probe log. This
// is the offline-analysis path: collect a study once, regenerate figures
// from the dump as often as needed.
func ReadJSON(r io.Reader) (*Store, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	s := New()
	if err := s.loadSnapshot(snap); err != nil {
		return nil, err
	}
	return s, nil
}

// loadSnapshot replays a decoded snapshot's records into the store
// through the ordinary append paths, so aggregates, rollups, and
// generation counters rebuild to the values the captured store had. The
// outage stream is ignored: outages are derived state, rebuilt from the
// probe log.
//
// Replay order is deterministic — markets in ID order within each record
// family — so two recoveries of the same snapshot produce bit-identical
// stores, floating-point rollup sums included. (The fold order differs
// from the live process's interleaved appends, so scope-level float sums
// may differ from the pre-dump values in the last ulps; every count,
// generation, and per-shard aggregate is exact.)
func (s *Store) loadSnapshot(snap Snapshot) error {
	// Each record family is grouped per market and batch-appended, so a
	// shard's lock (and rollup publish) is paid once per market per
	// family instead of once per record — per-family order, the only
	// order derived state depends on, is preserved by the grouping.
	applyGrouped(s, snap.Probes, func(r ProbeRecord) market.SpotID { return r.Market },
		func(sh *shard, rs []ProbeRecord) { sh.appendProbes(rs) })
	applyGrouped(s, snap.Spikes, func(e SpikeEvent) market.SpotID { return e.Market },
		func(sh *shard, es []SpikeEvent) { sh.appendSpikes(es) })
	applyGrouped(s, snap.BidSpreads, func(b BidSpreadRecord) market.SpotID { return b.Market },
		func(sh *shard, bs []BidSpreadRecord) { sh.appendBidSpreads(bs) })
	applyGrouped(s, snap.Revocations, func(r RevocationRecord) market.SpotID { return r.Market },
		func(sh *shard, rs []RevocationRecord) { sh.appendRevocations(rs) })
	priceKeys := make([]string, 0, len(snap.Prices))
	for idStr := range snap.Prices {
		priceKeys = append(priceKeys, idStr)
	}
	sort.Strings(priceKeys)
	for _, idStr := range priceKeys {
		id, err := market.ParseSpotID(idStr)
		if err != nil {
			return fmt.Errorf("store: snapshot price key: %w", err)
		}
		if series := snap.Prices[idStr]; len(series) > 0 {
			s.shardFor(id).appendPrices(series)
		}
	}
	return nil
}

// applyGrouped groups one record family per market and batch-applies it
// in market-ID order, keeping replay deterministic.
func applyGrouped[T any](s *Store, recs []T, marketOf func(T) market.SpotID, apply func(*shard, []T)) {
	if len(recs) == 0 {
		return
	}
	groups := make(map[market.SpotID][]T)
	for _, r := range recs {
		id := marketOf(r)
		groups[id] = append(groups[id], r)
	}
	for _, id := range sortedMarketKeys(groups) {
		apply(s.shardFor(id), groups[id])
	}
}

// sortedMarketKeys returns the map's market keys in ID order.
func sortedMarketKeys[V any](m map[market.SpotID]V) []market.SpotID {
	keys := make([]market.SpotID, 0, len(m))
	for id := range m {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	return keys
}

// WriteSpikesCSV writes the spike-event log as CSV with a header row.
func (s *Store) WriteSpikesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at", "market", "price", "ratio", "probed"}); err != nil {
		return fmt.Errorf("store: write csv header: %w", err)
	}
	for _, e := range s.Spikes() {
		row := []string{
			e.At.Format(time.RFC3339),
			e.Market.String(),
			formatFloat(e.Price),
			formatFloat(e.Ratio),
			strconv.FormatBool(e.Probed),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("store: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteOutagesCSV writes the detected outage intervals as CSV.
func (s *Store) WriteOutagesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"market", "kind", "start", "end"}); err != nil {
		return fmt.Errorf("store: write csv header: %w", err)
	}
	for _, o := range s.Outages() {
		end := ""
		if !o.End.IsZero() {
			end = o.End.Format(time.RFC3339)
		}
		row := []string{o.Market.String(), o.Kind.String(), o.Start.Format(time.RFC3339), end}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("store: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteProbesCSV writes the probe log as CSV with a header row.
func (s *Store) WriteProbesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"at", "market", "kind", "trigger", "trigger_market",
		"spike_ratio", "price_ratio", "rejected", "code", "bid", "cost",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("store: write csv header: %w", err)
	}
	for _, r := range s.Probes() {
		row := []string{
			r.At.Format(time.RFC3339),
			r.Market.String(),
			r.Kind.String(),
			r.Trigger.String(),
			r.TriggerMarket.String(),
			formatFloat(r.SpikeRatio),
			formatFloat(r.PriceRatio),
			strconv.FormatBool(r.Rejected),
			r.Code,
			formatFloat(r.Bid),
			formatFloat(r.Cost),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("store: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePricesCSV writes every recorded price sample as CSV.
func (s *Store) WritePricesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"market", "at", "price"}); err != nil {
		return fmt.Errorf("store: write csv header: %w", err)
	}
	for _, id := range s.PricedMarkets() {
		for _, p := range s.Prices(id) {
			row := []string{id.String(), p.At.Format(time.RFC3339), formatFloat(p.Price)}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("store: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
