package store

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"spotlight/internal/market"
)

// Snapshot is the JSON-serializable view of the whole store, used to dump
// a study's raw data to disk.
type Snapshot struct {
	Probes      []ProbeRecord           `json:"probes"`
	Spikes      []SpikeEvent            `json:"spikes"`
	BidSpreads  []BidSpreadRecord       `json:"bidSpreads"`
	Revocations []RevocationRecord      `json:"revocations"`
	Outages     []OutageRecord          `json:"outages"`
	Prices      map[string][]PricePoint `json:"prices"`
}

// WriteJSON serializes the full store contents to w. Each record stream is
// a consistent timestamp-ordered merge across shards; concurrent appends
// that race the dump may land in some streams and not others.
func (s *Store) WriteJSON(w io.Writer) error {
	snap := Snapshot{
		Probes:      s.Probes(),
		Spikes:      s.Spikes(),
		BidSpreads:  s.BidSpreads(),
		Revocations: s.Revocations(),
		Outages:     s.Outages(),
		Prices:      make(map[string][]PricePoint),
	}
	for _, id := range s.PricedMarkets() {
		snap.Prices[id.String()] = s.Prices(id)
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("store: encode snapshot: %w", err)
	}
	return nil
}

// ReadJSON loads a snapshot previously produced by WriteJSON into a fresh
// Store, rebuilding the derived outage intervals from the probe log. This
// is the offline-analysis path: collect a study once, regenerate figures
// from the dump as often as needed.
func ReadJSON(r io.Reader) (*Store, error) {
	var snap Snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	s := New()
	// The probe log dominates a snapshot; batch-append it so each shard's
	// lock is taken once per market instead of once per record.
	s.AppendProbes(snap.Probes)
	for _, sp := range snap.Spikes {
		s.AppendSpike(sp)
	}
	for _, b := range snap.BidSpreads {
		s.AppendBidSpread(b)
	}
	for _, rv := range snap.Revocations {
		s.AppendRevocation(rv)
	}
	for idStr, series := range snap.Prices {
		id, err := market.ParseSpotID(idStr)
		if err != nil {
			return nil, fmt.Errorf("store: snapshot price key: %w", err)
		}
		for _, p := range series {
			s.RecordPrice(id, p)
		}
	}
	return s, nil
}

// WriteSpikesCSV writes the spike-event log as CSV with a header row.
func (s *Store) WriteSpikesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at", "market", "price", "ratio", "probed"}); err != nil {
		return fmt.Errorf("store: write csv header: %w", err)
	}
	for _, e := range s.Spikes() {
		row := []string{
			e.At.Format(time.RFC3339),
			e.Market.String(),
			formatFloat(e.Price),
			formatFloat(e.Ratio),
			strconv.FormatBool(e.Probed),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("store: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteOutagesCSV writes the detected outage intervals as CSV.
func (s *Store) WriteOutagesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"market", "kind", "start", "end"}); err != nil {
		return fmt.Errorf("store: write csv header: %w", err)
	}
	for _, o := range s.Outages() {
		end := ""
		if !o.End.IsZero() {
			end = o.End.Format(time.RFC3339)
		}
		row := []string{o.Market.String(), o.Kind.String(), o.Start.Format(time.RFC3339), end}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("store: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteProbesCSV writes the probe log as CSV with a header row.
func (s *Store) WriteProbesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"at", "market", "kind", "trigger", "trigger_market",
		"spike_ratio", "price_ratio", "rejected", "code", "bid", "cost",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("store: write csv header: %w", err)
	}
	for _, r := range s.Probes() {
		row := []string{
			r.At.Format(time.RFC3339),
			r.Market.String(),
			r.Kind.String(),
			r.Trigger.String(),
			r.TriggerMarket.String(),
			formatFloat(r.SpikeRatio),
			formatFloat(r.PriceRatio),
			strconv.FormatBool(r.Rejected),
			r.Code,
			formatFloat(r.Bid),
			formatFloat(r.Cost),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("store: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePricesCSV writes every recorded price sample as CSV.
func (s *Store) WritePricesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"market", "at", "price"}); err != nil {
		return fmt.Errorf("store: write csv header: %w", err)
	}
	for _, id := range s.PricedMarkets() {
		for _, p := range s.Prices(id) {
			row := []string{id.String(), p.At.Format(time.RFC3339), formatFloat(p.Price)}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("store: write csv row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
