package store

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"spotlight/internal/market"
)

var (
	mktA = market.SpotID{Zone: "us-east-1d", Type: "c3.2xlarge", Product: market.ProductLinux}
	mktB = market.SpotID{Zone: "sa-east-1a", Type: "m3.large", Product: market.ProductWindows}
	t0   = time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
)

func probe(at time.Time, m market.SpotID, kind ProbeKind, rejected bool) ProbeRecord {
	code := ""
	if rejected {
		code = "InsufficientInstanceCapacity"
	}
	return ProbeRecord{
		At: at, Market: m, Kind: kind, Trigger: TriggerSpike,
		TriggerMarket: m, Rejected: rejected, Code: code, Cost: 0.42,
	}
}

func TestAppendAndQueryProbes(t *testing.T) {
	s := New()
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, false))
	s.AppendProbe(probe(t0.Add(time.Minute), mktB, ProbeOnDemand, true))
	if got := s.ProbeCount(); got != 2 {
		t.Fatalf("ProbeCount = %d, want 2", got)
	}
	all := s.Probes()
	if len(all) != 2 || all[0].Market != mktA {
		t.Errorf("Probes() = %+v", all)
	}
	rejected := s.ProbesWhere(func(r ProbeRecord) bool { return r.Rejected })
	if len(rejected) != 1 || rejected[0].Market != mktB {
		t.Errorf("ProbesWhere(rejected) = %+v", rejected)
	}
	if got := s.TotalProbeCost(); got != 0.84 {
		t.Errorf("TotalProbeCost = %v, want 0.84", got)
	}
}

func TestProbesReturnsCopy(t *testing.T) {
	s := New()
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, false))
	got := s.Probes()
	got[0].Market = mktB
	if s.Probes()[0].Market != mktA {
		t.Error("mutating the returned slice leaked into the store")
	}
}

func TestOutageDerivation(t *testing.T) {
	s := New()
	// available -> rejected (outage opens) -> rejected (stays open) ->
	// fulfilled (outage closes) -> rejected (second outage opens).
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, false))
	s.AppendProbe(probe(t0.Add(10*time.Minute), mktA, ProbeOnDemand, true))
	s.AppendProbe(probe(t0.Add(15*time.Minute), mktA, ProbeOnDemand, true))
	s.AppendProbe(probe(t0.Add(30*time.Minute), mktA, ProbeOnDemand, false))
	s.AppendProbe(probe(t0.Add(60*time.Minute), mktA, ProbeOnDemand, true))

	outs := s.OutagesFor(mktA, ProbeOnDemand)
	if len(outs) != 2 {
		t.Fatalf("outages = %d, want 2: %+v", len(outs), outs)
	}
	first := outs[0]
	if !first.Start.Equal(t0.Add(10*time.Minute)) || !first.End.Equal(t0.Add(30*time.Minute)) {
		t.Errorf("first outage = %+v", first)
	}
	second := outs[1]
	if !second.End.IsZero() {
		t.Errorf("second outage should be ongoing, got end %v", second.End)
	}
}

func TestOutageSeparatesKinds(t *testing.T) {
	s := New()
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, true))
	s.AppendProbe(probe(t0, mktA, ProbeSpot, true))
	if got := len(s.OutagesFor(mktA, ProbeOnDemand)); got != 1 {
		t.Errorf("od outages = %d, want 1", got)
	}
	if got := len(s.OutagesFor(mktA, ProbeSpot)); got != 1 {
		t.Errorf("spot outages = %d, want 1", got)
	}
	if got := len(s.OutagesFor(mktB, ProbeOnDemand)); got != 0 {
		t.Errorf("unrelated market outages = %d, want 0", got)
	}
}

func TestSpikes(t *testing.T) {
	s := New()
	s.AppendSpike(SpikeEvent{At: t0, Market: mktA, Ratio: 1.5, Probed: true})
	s.AppendSpike(SpikeEvent{At: t0.Add(time.Hour), Market: mktA, Ratio: 3})
	s.AppendSpike(SpikeEvent{At: t0, Market: mktB, Ratio: 2})
	if got := len(s.Spikes()); got != 3 {
		t.Fatalf("Spikes = %d, want 3", got)
	}
	got := s.SpikesFor(mktA, t0, t0.Add(30*time.Minute))
	if len(got) != 1 || got[0].Ratio != 1.5 {
		t.Errorf("SpikesFor window = %+v", got)
	}
}

func TestBidSpreads(t *testing.T) {
	s := New()
	s.AppendBidSpread(BidSpreadRecord{At: t0, Market: mktA, Published: 0.1, Intrinsic: 0.15, Attempts: 3})
	got := s.BidSpreads()
	if len(got) != 1 || got[0].Intrinsic != 0.15 {
		t.Errorf("BidSpreads = %+v", got)
	}
}

func TestPriceSeries(t *testing.T) {
	s := New()
	s.RecordPrice(mktA, PricePoint{At: t0, Price: 0.1})
	s.RecordPrice(mktA, PricePoint{At: t0.Add(time.Minute), Price: 0.2})
	s.RecordPrice(mktB, PricePoint{At: t0, Price: 0.3})
	if got := s.Prices(mktA); len(got) != 2 || got[1].Price != 0.2 {
		t.Errorf("Prices(mktA) = %+v", got)
	}
	if got := s.Prices(market.SpotID{Zone: "none", Type: "none", Product: "none"}); len(got) != 0 {
		t.Errorf("Prices(unknown) = %+v, want empty", got)
	}
	ids := s.PricedMarkets()
	if len(ids) != 2 {
		t.Errorf("PricedMarkets = %v, want 2 markets", ids)
	}
}

func TestAppenderLazyShard(t *testing.T) {
	s := New()
	app := s.Appender(mktA)
	if app.Market() != mktA {
		t.Fatalf("Appender bound to %v, want %v", app.Market(), mktA)
	}
	// Binding alone must leave no trace: Markets()/Aggregates() promise
	// "at least one record".
	if got := len(s.Markets()); got != 0 {
		t.Fatalf("Markets after bare bind = %d, want 0", got)
	}
	if got := len(s.Aggregates(t0)); got != 0 {
		t.Fatalf("Aggregates after bare bind = %d, want 0", got)
	}
	app.AppendSpike(SpikeEvent{At: t0, Market: mktA, Ratio: 2})
	if got := s.Markets(); len(got) != 1 || got[0] != mktA {
		t.Fatalf("Markets after first write = %v, want [%v]", got, mktA)
	}
	aggs := s.Aggregates(t0)
	if len(aggs) != 1 || aggs[0].Spikes != 1 || aggs[0].SpikesAboveOD != 1 {
		t.Fatalf("Aggregates after first write = %+v", aggs)
	}
	// Writes through the handle and through the store land in one shard.
	s.AppendSpike(SpikeEvent{At: t0.Add(time.Hour), Market: mktA, Ratio: 0.5})
	if got := len(s.SpikesFor(mktA, t0, t0.Add(time.Hour))); got != 2 {
		t.Fatalf("SpikesFor = %d, want 2", got)
	}
}

func TestConcurrentAppends(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.AppendProbe(probe(t0.Add(time.Duration(i)*time.Second), mktA, ProbeOnDemand, i%2 == 0))
				s.RecordPrice(mktB, PricePoint{At: t0, Price: float64(i)})
				s.AppendSpike(SpikeEvent{At: t0, Market: mktA, Ratio: 1})
			}
		}(g)
	}
	wg.Wait()
	if got := s.ProbeCount(); got != 1600 {
		t.Errorf("ProbeCount = %d, want 1600", got)
	}
	if got := len(s.Prices(mktB)); got != 1600 {
		t.Errorf("prices = %d, want 1600", got)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	s := New()
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, true))
	s.AppendSpike(SpikeEvent{At: t0, Market: mktA, Ratio: 2})
	s.RecordPrice(mktA, PricePoint{At: t0, Price: 0.5})
	s.AppendBidSpread(BidSpreadRecord{At: t0, Market: mktA, Published: 0.1, Intrinsic: 0.12, Attempts: 2})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Probes) != 1 || len(snap.Spikes) != 1 || len(snap.Outages) != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if len(snap.Prices[mktA.String()]) != 1 {
		t.Errorf("snapshot prices missing for %s", mktA)
	}
}

func TestWriteProbesCSV(t *testing.T) {
	s := New()
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, true))
	var buf bytes.Buffer
	if err := s.WriteProbesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want header+1", len(lines))
	}
	if !strings.HasPrefix(lines[0], "at,market,kind") {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "InsufficientInstanceCapacity") {
		t.Errorf("csv row missing code: %q", lines[1])
	}
}

func TestWritePricesCSV(t *testing.T) {
	s := New()
	s.RecordPrice(mktA, PricePoint{At: t0, Price: 0.42})
	var buf bytes.Buffer
	if err := s.WritePricesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.42") {
		t.Errorf("prices csv missing sample: %q", buf.String())
	}
}

func TestReadJSONRoundTrip(t *testing.T) {
	s := New()
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, true))
	s.AppendProbe(probe(t0.Add(10*time.Minute), mktA, ProbeOnDemand, false))
	s.AppendSpike(SpikeEvent{At: t0, Market: mktA, Ratio: 2})
	s.RecordPrice(mktB, PricePoint{At: t0, Price: 0.5})
	s.AppendBidSpread(BidSpreadRecord{At: t0, Market: mktA, Published: 0.1, Intrinsic: 0.12, Attempts: 2})
	s.AppendRevocation(RevocationRecord{At: t0, Market: mktA, Bid: 0.42, Held: time.Hour})

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ProbeCount() != 2 || len(loaded.Spikes()) != 1 ||
		len(loaded.BidSpreads()) != 1 || len(loaded.Revocations()) != 1 {
		t.Errorf("loaded counts wrong: %d probes %d spikes", loaded.ProbeCount(), len(loaded.Spikes()))
	}
	if got := loaded.Prices(mktB); len(got) != 1 || got[0].Price != 0.5 {
		t.Errorf("loaded prices = %+v", got)
	}
	// The derived outage intervals are rebuilt from the probe log.
	outs := loaded.OutagesFor(mktA, ProbeOnDemand)
	if len(outs) != 1 || outs[0].End.IsZero() {
		t.Errorf("rebuilt outages = %+v", outs)
	}
	if got := outs[0].End.Sub(outs[0].Start); got != 10*time.Minute {
		t.Errorf("rebuilt outage duration = %v, want 10m", got)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"prices":{"badkey":[]}}`)); err == nil {
		t.Error("malformed market key accepted")
	}
}

func TestWriteSpikesAndOutagesCSV(t *testing.T) {
	s := New()
	s.AppendSpike(SpikeEvent{At: t0, Market: mktA, Ratio: 2.5, Price: 1.05, Probed: true})
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, true))
	var spikes, outages bytes.Buffer
	if err := s.WriteSpikesCSV(&spikes); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spikes.String(), "2.5") || !strings.Contains(spikes.String(), "true") {
		t.Errorf("spikes csv = %q", spikes.String())
	}
	if err := s.WriteOutagesCSV(&outages); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outages.String(), "on-demand") {
		t.Errorf("outages csv = %q", outages.String())
	}
}

func TestKindAndTriggerStrings(t *testing.T) {
	if ProbeOnDemand.String() != "on-demand" || ProbeSpot.String() != "spot" {
		t.Error("ProbeKind strings wrong")
	}
	if ProbeKind(0).String() != "unknown" {
		t.Error("zero ProbeKind should be unknown")
	}
	triggers := map[Trigger]string{
		TriggerSpike:            "spike",
		TriggerRelatedSameZone:  "related-same-zone",
		TriggerRelatedOtherZone: "related-other-zone",
		TriggerRecheck:          "recheck",
		TriggerPeriodicSpot:     "periodic-spot",
		TriggerCross:            "cross",
		TriggerBidSpread:        "bid-spread",
		TriggerRevocation:       "revocation",
		Trigger(0):              "unknown",
	}
	for tr, want := range triggers {
		if got := tr.String(); got != want {
			t.Errorf("Trigger(%d).String() = %q, want %q", tr, got, want)
		}
	}
}
