package store

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"spotlight/internal/market"
)

// TestGenerationCountsEveryRecordKind: every append kind bumps exactly
// its market's generation by one.
func TestGenerationCountsEveryRecordKind(t *testing.T) {
	s := New()
	if g := s.Generation(mktA); g != 0 {
		t.Fatalf("generation of absent market = %d, want 0", g)
	}

	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, false))
	s.AppendSpike(SpikeEvent{At: t0, Market: mktA, Ratio: 2})
	s.AppendBidSpread(BidSpreadRecord{At: t0, Market: mktA, Published: 0.1, Intrinsic: 0.2})
	s.AppendRevocation(RevocationRecord{At: t0, Market: mktA, Bid: 0.3, Held: time.Hour})
	s.RecordPrice(mktA, PricePoint{At: t0, Price: 0.1})
	if g := s.Generation(mktA); g != 5 {
		t.Errorf("generation after 5 mixed appends = %d, want 5", g)
	}
	if g := s.Generation(mktB); g != 0 {
		t.Errorf("untouched market generation = %d, want 0", g)
	}
}

// TestScopeGeneration: the scoped sum counts only in-scope appends, so it
// is the invalidation signal for filtered query caches.
func TestScopeGeneration(t *testing.T) {
	s := New()
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, false))
	s.AppendProbe(probe(t0, mktA, ProbeOnDemand, false))
	s.AppendProbe(probe(t0, mktB, ProbeOnDemand, false))

	all := s.ScopeGeneration(nil)
	if all != 3 {
		t.Errorf("global scope generation = %d, want 3", all)
	}
	usEast := func(id market.SpotID) bool { return id.Region() == "us-east-1" }
	if g := s.ScopeGeneration(usEast); g != 2 {
		t.Errorf("us-east-1 scope generation = %d, want 2", g)
	}

	// An out-of-scope append moves the global sum but not the scoped one.
	s.AppendSpike(SpikeEvent{At: t0, Market: mktB, Ratio: 2})
	if g := s.ScopeGeneration(usEast); g != 2 {
		t.Errorf("scoped generation moved on out-of-scope append: %d", g)
	}
	if g := s.ScopeGeneration(nil); g != 4 {
		t.Errorf("global generation = %d, want 4", g)
	}
}

// TestAppendProbesMatchesSingles: the batched append must be
// observationally identical to record-at-a-time appends — same probes,
// same derived outages, same aggregates — for an interleaved multi-market
// input.
func TestAppendProbesMatchesSingles(t *testing.T) {
	var input []ProbeRecord
	for i := 0; i < 40; i++ {
		m := mktA
		if i%3 == 0 {
			m = mktB
		}
		// Rejection runs open and close outages as they would live.
		rejected := i%8 < 3
		input = append(input, probe(t0.Add(time.Duration(i)*time.Minute), m, ProbeOnDemand, rejected))
	}

	single, batched := New(), New()
	for _, r := range input {
		single.AppendProbe(r)
	}
	batched.AppendProbes(input)

	if !reflect.DeepEqual(single.Probes(), batched.Probes()) {
		t.Errorf("probe logs differ between single and batched appends")
	}
	if !reflect.DeepEqual(single.Outages(), batched.Outages()) {
		t.Errorf("derived outages differ between single and batched appends")
	}
	now := t0.Add(time.Hour)
	if !reflect.DeepEqual(single.Aggregates(now), batched.Aggregates(now)) {
		t.Errorf("aggregates differ between single and batched appends")
	}
	if single.ProbeCount() != batched.ProbeCount() {
		t.Errorf("probe counts differ: %d vs %d", single.ProbeCount(), batched.ProbeCount())
	}
	for _, m := range []market.SpotID{mktA, mktB} {
		if g1, g2 := single.Generation(m), batched.Generation(m); g1 != g2 {
			t.Errorf("generation of %v differs: %d vs %d", m, g1, g2)
		}
	}
	// Windowed reads (binary-search path) agree too.
	from, to := t0.Add(5*time.Minute), t0.Add(25*time.Minute)
	if !reflect.DeepEqual(single.ProbesInWindow(from, to, nil), batched.ProbesInWindow(from, to, nil)) {
		t.Errorf("windowed probes differ between single and batched appends")
	}
}

// TestAppendProbesEdgeCases: empty and single-record batches.
func TestAppendProbesEdgeCases(t *testing.T) {
	s := New()
	s.AppendProbes(nil)
	if got := s.ProbeCount(); got != 0 {
		t.Errorf("empty batch appended %d probes", got)
	}
	s.AppendProbes([]ProbeRecord{probe(t0, mktA, ProbeSpot, false)})
	if got := s.ProbeCount(); got != 1 {
		t.Errorf("singleton batch appended %d probes, want 1", got)
	}
}

// TestAppenderAppendProbes: the bound-market batch path, concurrently
// with other markets (exercised under -race).
func TestAppenderAppendProbes(t *testing.T) {
	s := New()
	appA, appB := s.Appender(mktA), s.Appender(mktB)
	var wg sync.WaitGroup
	for g, app := range map[int]*Appender{0: appA, 1: appB} {
		wg.Add(1)
		go func(g int, app *Appender) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				batch := []ProbeRecord{
					probe(t0.Add(time.Duration(i)*time.Minute), app.Market(), ProbeOnDemand, false),
					probe(t0.Add(time.Duration(i)*time.Minute+30*time.Second), app.Market(), ProbeSpot, false),
				}
				app.AppendProbes(batch)
			}
		}(g, app)
	}
	wg.Wait()
	if got := s.ProbeCount(); got != 40 {
		t.Errorf("probe count = %d, want 40", got)
	}
	if g := s.Generation(mktA); g != 20 {
		t.Errorf("generation of mktA = %d, want 20", g)
	}
}
