package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"spotlight/internal/market"
)

// The write-ahead log is the store's durability primitive: every record
// appended to a shard is also framed into that shard's active WAL segment
// in the same batch round, so a crash loses at most the records that were
// never flushed to disk. Segments are append-only files, one directory per
// market shard, rotated by size and superseded by whole-store snapshots
// (see persist.go for the file layout and the recovery procedure).
//
// # Frame format
//
// A segment is the 8-byte magic "SPOTWAL1" followed by frames:
//
//	uint32 LE  payload length (including the type byte)
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	payload    1 type byte + the record's binary encoding
//
// The length prefix bounds the read, the checksum rejects torn or
// bit-flipped frames, and because frames are self-delimiting a reader
// recovers every record up to the first damaged byte — the prefix
// semantics crash recovery depends on.
//
// # Record encoding
//
// Records encode field-by-field in little-endian binary: uvarint-prefixed
// strings, float64 bits, and instants as (Unix seconds int64, nanoseconds
// uint32) pairs, decoded back in UTC. Binary instead of JSON keeps the
// per-record encode cost a small fraction of the in-memory append itself,
// which is what lets the WAL ride inside the shard's batch round without
// blowing the ingestion budget. The format is pinned by the golden-file
// tests in golden_test.go; changing it requires a new magic version.

// walMagic opens every segment file.
const walMagic = "SPOTWAL1"

// walFrameHeader is the fixed part of a frame: length + CRC.
const walFrameHeader = 8

// maxWALPayload caps a frame's declared payload length. Real records are
// tens to hundreds of bytes; anything larger is a corrupt length prefix
// and must not turn into a giant allocation.
const maxWALPayload = 1 << 20

// walRecordType tags a frame's payload.
type walRecordType byte

const (
	walProbe walRecordType = iota + 1
	walSpike
	walBidSpread
	walRevocation
	walPrice
)

// walCastagnoli is the CRC-32C table shared by encode and decode.
var walCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWALCorrupt reports a damaged WAL frame: a bad length prefix, a
// checksum mismatch, or a payload that does not decode. Replay treats the
// first corrupt frame as the end of the log.
var ErrWALCorrupt = errors.New("store: corrupt WAL frame")

// errWALShort reports a frame cut off by a crash mid-write; like
// ErrWALCorrupt it ends replay, but it is the expected shape of a torn
// tail rather than damage inside the file.
var errWALShort = fmt.Errorf("%w: truncated frame", ErrWALCorrupt)

// appendWALFrame frames one payload (type byte + body) into buf.
func appendWALFrame(buf []byte, typ walRecordType, body func([]byte) []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + CRC placeholders
	buf = append(buf, byte(typ))
	buf = body(buf)
	payload := buf[start+walFrameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, walCastagnoli))
	return buf
}

// decodeWALFrame reads one frame from data, returning the payload type,
// the body (without the type byte, aliasing data), and the total frame
// size consumed.
func decodeWALFrame(data []byte) (typ walRecordType, body []byte, n int, err error) {
	if len(data) < walFrameHeader {
		return 0, nil, 0, errWALShort
	}
	length := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if length == 0 || length > maxWALPayload {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d", ErrWALCorrupt, length)
	}
	if uint32(len(data)-walFrameHeader) < length {
		return 0, nil, 0, errWALShort
	}
	payload := data[walFrameHeader : walFrameHeader+int(length)]
	if crc32.Checksum(payload, walCastagnoli) != sum {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrWALCorrupt)
	}
	return walRecordType(payload[0]), payload[1:], walFrameHeader + int(length), nil
}

// Field-level encoders. All append to buf and return it.

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// appendTime encodes an instant as (Unix seconds, in-second nanoseconds).
// Decoding reconstructs the same instant in UTC, so a store recovered
// from the WAL renders timestamps identically to the original process (the
// simulation clock, and any sane deployment, runs in UTC).
func appendTime(buf []byte, t time.Time) []byte {
	buf = appendVarint(buf, t.Unix())
	return appendUvarint(buf, uint64(t.Nanosecond()))
}

// appendMarket encodes the three components of a SpotID separately, so
// IDs round-trip exactly regardless of their contents.
func appendMarket(buf []byte, id market.SpotID) []byte {
	buf = appendString(buf, string(id.Zone))
	buf = appendString(buf, string(id.Type))
	return appendString(buf, string(id.Product))
}

// walReader decodes fields sequentially from one frame body. A read past
// the end or a malformed varint sets sticky failure; callers check err()
// once after reading every field.
type walReader struct {
	data []byte
	bad  bool
}

func (r *walReader) err() error {
	if r.bad {
		return fmt.Errorf("%w: short payload", ErrWALCorrupt)
	}
	return nil
}

func (r *walReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *walReader) varint() int64 {
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *walReader) str() string {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.data)) {
		r.bad = true
		return ""
	}
	s := string(r.data[:n])
	r.data = r.data[n:]
	return s
}

func (r *walReader) float() float64 {
	if len(r.data) < 8 {
		r.bad = true
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.data))
	r.data = r.data[8:]
	return f
}

func (r *walReader) boolean() bool {
	if len(r.data) < 1 {
		r.bad = true
		return false
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b != 0
}

func (r *walReader) instant() time.Time {
	sec := r.varint()
	nsec := r.uvarint()
	if r.bad || nsec >= uint64(time.Second) {
		r.bad = true
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

func (r *walReader) market() market.SpotID {
	zone := r.str()
	typ := r.str()
	product := r.str()
	return market.SpotID{
		Zone:    market.Zone(zone),
		Type:    market.InstanceType(typ),
		Product: market.Product(product),
	}
}

// Record encoders: one frame per record.

func appendProbeFrame(buf []byte, rec ProbeRecord) []byte {
	return appendWALFrame(buf, walProbe, func(b []byte) []byte {
		b = appendTime(b, rec.At)
		b = appendMarket(b, rec.Market)
		b = appendVarint(b, int64(rec.Kind))
		b = appendVarint(b, int64(rec.Trigger))
		b = appendMarket(b, rec.TriggerMarket)
		b = appendVarint(b, int64(rec.SourceKind))
		b = appendFloat(b, rec.SpikeRatio)
		b = appendFloat(b, rec.PriceRatio)
		b = appendBool(b, rec.Rejected)
		b = appendString(b, rec.Code)
		b = appendFloat(b, rec.Bid)
		return appendFloat(b, rec.Cost)
	})
}

func appendSpikeFrame(buf []byte, e SpikeEvent) []byte {
	return appendWALFrame(buf, walSpike, func(b []byte) []byte {
		b = appendTime(b, e.At)
		b = appendMarket(b, e.Market)
		b = appendFloat(b, e.Price)
		b = appendFloat(b, e.Ratio)
		return appendBool(b, e.Probed)
	})
}

func appendBidSpreadFrame(buf []byte, r BidSpreadRecord) []byte {
	return appendWALFrame(buf, walBidSpread, func(b []byte) []byte {
		b = appendTime(b, r.At)
		b = appendMarket(b, r.Market)
		b = appendFloat(b, r.Published)
		b = appendFloat(b, r.Intrinsic)
		return appendVarint(b, int64(r.Attempts))
	})
}

func appendRevocationFrame(buf []byte, r RevocationRecord) []byte {
	return appendWALFrame(buf, walRevocation, func(b []byte) []byte {
		b = appendTime(b, r.At)
		b = appendMarket(b, r.Market)
		b = appendFloat(b, r.Bid)
		return appendVarint(b, int64(r.Held))
	})
}

func appendPriceFrame(buf []byte, p PricePoint) []byte {
	return appendWALFrame(buf, walPrice, func(b []byte) []byte {
		b = appendTime(b, p.At)
		return appendFloat(b, p.Price)
	})
}

// walEntry is one decoded WAL record; exactly one of the record fields is
// meaningful, selected by typ.
type walEntry struct {
	typ        walRecordType
	probe      ProbeRecord
	spike      SpikeEvent
	bidSpread  BidSpreadRecord
	revocation RevocationRecord
	price      PricePoint
}

// at returns the record's timestamp.
func (e walEntry) at() time.Time {
	switch e.typ {
	case walProbe:
		return e.probe.At
	case walSpike:
		return e.spike.At
	case walBidSpread:
		return e.bidSpread.At
	case walRevocation:
		return e.revocation.At
	case walPrice:
		return e.price.At
	default:
		return time.Time{}
	}
}

// decodeWALEntry decodes one frame body into a typed record. The price
// record carries no market of its own: segments are per-shard, so the
// owning market is supplied by the caller from the segment's directory.
func decodeWALEntry(typ walRecordType, body []byte, id market.SpotID) (walEntry, error) {
	r := walReader{data: body}
	e := walEntry{typ: typ}
	switch typ {
	case walProbe:
		e.probe = ProbeRecord{
			At:            r.instant(),
			Market:        r.market(),
			Kind:          ProbeKind(r.varint()),
			Trigger:       Trigger(r.varint()),
			TriggerMarket: r.market(),
			SourceKind:    ProbeKind(r.varint()),
			SpikeRatio:    r.float(),
			PriceRatio:    r.float(),
			Rejected:      r.boolean(),
			Code:          r.str(),
			Bid:           r.float(),
			Cost:          r.float(),
		}
	case walSpike:
		e.spike = SpikeEvent{
			At:     r.instant(),
			Market: r.market(),
			Price:  r.float(),
			Ratio:  r.float(),
			Probed: r.boolean(),
		}
	case walBidSpread:
		e.bidSpread = BidSpreadRecord{
			At:        r.instant(),
			Market:    r.market(),
			Published: r.float(),
			Intrinsic: r.float(),
			Attempts:  int(r.varint()),
		}
	case walRevocation:
		e.revocation = RevocationRecord{
			At:     r.instant(),
			Market: r.market(),
			Bid:    r.float(),
			Held:   time.Duration(r.varint()),
		}
	case walPrice:
		e.price = PricePoint{At: r.instant(), Price: r.float()}
	default:
		return e, fmt.Errorf("%w: unknown record type %d", ErrWALCorrupt, typ)
	}
	if err := r.err(); err != nil {
		return e, err
	}
	if len(r.data) != 0 {
		return e, fmt.Errorf("%w: %d trailing payload bytes", ErrWALCorrupt, len(r.data))
	}
	// Per-shard logs must only hold their own market's records; a framed
	// record claiming another market is corruption, not data.
	switch typ {
	case walProbe:
		if e.probe.Market != id {
			return e, fmt.Errorf("%w: record market %v in log of %v", ErrWALCorrupt, e.probe.Market, id)
		}
	case walSpike:
		if e.spike.Market != id {
			return e, fmt.Errorf("%w: record market %v in log of %v", ErrWALCorrupt, e.spike.Market, id)
		}
	case walBidSpread:
		if e.bidSpread.Market != id {
			return e, fmt.Errorf("%w: record market %v in log of %v", ErrWALCorrupt, e.bidSpread.Market, id)
		}
	case walRevocation:
		if e.revocation.Market != id {
			return e, fmt.Errorf("%w: record market %v in log of %v", ErrWALCorrupt, e.revocation.Market, id)
		}
	}
	return e, nil
}

// decodeSegment decodes a whole segment image (magic header included).
// It returns every record up to the first damaged frame together with the
// byte length of the valid prefix; err is nil only when the segment
// decoded completely.
func decodeSegment(data []byte, id market.SpotID) (entries []walEntry, validLen int, err error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("%w: bad segment magic", ErrWALCorrupt)
	}
	off := len(walMagic)
	for off < len(data) {
		typ, body, n, ferr := decodeWALFrame(data[off:])
		if ferr != nil {
			return entries, off, ferr
		}
		e, derr := decodeWALEntry(typ, body, id)
		if derr != nil {
			return entries, off, derr
		}
		entries = append(entries, e)
		off += n
	}
	return entries, off, nil
}
