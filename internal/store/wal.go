package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"

	"spotlight/internal/market"
)

// The write-ahead log is the store's durability primitive: every record
// appended to a shard is also framed into that shard's active WAL segment
// in the same batch round, so a crash loses at most the records that were
// never flushed to disk. Segments are append-only files, one directory per
// market shard, rotated by size and superseded by whole-store snapshots
// (see persist.go for the file layout and the recovery procedure).
//
// # Frame format
//
// A segment is the 8-byte magic "SPOTWAL1" followed by frames:
//
//	uint32 LE  payload length (including the type byte)
//	uint32 LE  CRC-32C (Castagnoli) of the payload
//	payload    1 type byte + the record's binary encoding
//
// The length prefix bounds the read, the checksum rejects torn or
// bit-flipped frames, and because frames are self-delimiting a reader
// recovers every record up to the first damaged byte — the prefix
// semantics crash recovery depends on.
//
// # Record encoding
//
// Records encode field-by-field in little-endian binary: uvarint-prefixed
// strings, float64 bits, and instants as (Unix seconds int64, nanoseconds
// uint32) pairs, decoded back in UTC. Binary instead of JSON keeps the
// per-record encode cost a small fraction of the in-memory append itself,
// which is what lets the WAL ride inside the shard's batch round without
// blowing the ingestion budget. The format is pinned by the golden-file
// tests in golden_test.go; changing it requires a new magic version.

// walMagic opens every segment file.
const walMagic = "SPOTWAL1"

// walFrameHeader is the fixed part of a frame: length + CRC.
const walFrameHeader = 8

// maxWALPayload caps a frame's declared payload length. Real records are
// tens to hundreds of bytes; anything larger is a corrupt length prefix
// and must not turn into a giant allocation.
const maxWALPayload = 1 << 20

// walRecordType tags a frame's payload.
type walRecordType byte

const (
	walProbe walRecordType = iota + 1
	walSpike
	walBidSpread
	walRevocation
	walPrice
)

// walCastagnoli is the CRC-32C table shared by encode and decode.
var walCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrWALCorrupt reports a damaged WAL frame: a bad length prefix, a
// checksum mismatch, or a payload that does not decode. Replay treats the
// first corrupt frame as the end of the log.
var ErrWALCorrupt = errors.New("store: corrupt WAL frame")

// errWALShort reports a frame cut off by a crash mid-write; like
// ErrWALCorrupt it ends replay, but it is the expected shape of a torn
// tail rather than damage inside the file.
var errWALShort = fmt.Errorf("%w: truncated frame", ErrWALCorrupt)

// appendWALFrame frames one payload (type byte + body) into buf.
func appendWALFrame(buf []byte, typ walRecordType, body func([]byte) []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + CRC placeholders
	buf = append(buf, byte(typ))
	buf = body(buf)
	payload := buf[start+walFrameHeader:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, walCastagnoli))
	return buf
}

// decodeWALFrame reads one frame from data, returning the payload type,
// the body (without the type byte, aliasing data), and the total frame
// size consumed.
func decodeWALFrame(data []byte) (typ walRecordType, body []byte, n int, err error) {
	if len(data) < walFrameHeader {
		return 0, nil, 0, errWALShort
	}
	length := binary.LittleEndian.Uint32(data)
	sum := binary.LittleEndian.Uint32(data[4:])
	if length == 0 || length > maxWALPayload {
		return 0, nil, 0, fmt.Errorf("%w: payload length %d", ErrWALCorrupt, length)
	}
	if uint32(len(data)-walFrameHeader) < length {
		return 0, nil, 0, errWALShort
	}
	payload := data[walFrameHeader : walFrameHeader+int(length)]
	if crc32.Checksum(payload, walCastagnoli) != sum {
		return 0, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrWALCorrupt)
	}
	return walRecordType(payload[0]), payload[1:], walFrameHeader + int(length), nil
}

// Field-level encoders. All append to buf and return it.

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func appendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// appendTime encodes an instant as (Unix seconds, in-second nanoseconds).
// Decoding reconstructs the same instant in UTC, so a store recovered
// from the WAL renders timestamps identically to the original process (the
// simulation clock, and any sane deployment, runs in UTC).
func appendTime(buf []byte, t time.Time) []byte {
	buf = appendVarint(buf, t.Unix())
	return appendUvarint(buf, uint64(t.Nanosecond()))
}

// appendMarket encodes the three components of a SpotID separately, so
// IDs round-trip exactly regardless of their contents.
func appendMarket(buf []byte, id market.SpotID) []byte {
	buf = appendString(buf, string(id.Zone))
	buf = appendString(buf, string(id.Type))
	return appendString(buf, string(id.Product))
}

// walReader decodes fields sequentially from one frame body. A read past
// the end or a malformed varint sets sticky failure; callers check err()
// once after reading every field.
type walReader struct {
	data []byte
	bad  bool
	// intern, when non-nil, deduplicates decoded strings: replay decodes
	// the same market components and status codes millions of times, and
	// the map hit (keyed by string(bytes), which Go evaluates without
	// allocating) returns the one shared copy instead of a fresh
	// allocation per record.
	intern map[string]string
}

func (r *walReader) err() error {
	if r.bad {
		return fmt.Errorf("%w: short payload", ErrWALCorrupt)
	}
	return nil
}

// uvarint and varint keep a single-byte fast path in the inlinable
// wrapper: almost every varint a record carries (field lengths, enum
// codes, sub-second nanos) fits in one byte, and inlining the common
// case removes a call per field on the replay hot path.
func (r *walReader) uvarint() uint64 {
	if len(r.data) > 0 && r.data[0] < 0x80 {
		v := uint64(r.data[0])
		r.data = r.data[1:]
		return v
	}
	return r.uvarintSlow()
}

func (r *walReader) uvarintSlow() uint64 {
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *walReader) varint() int64 {
	if len(r.data) > 0 && r.data[0] < 0x80 {
		b := r.data[0]
		r.data = r.data[1:]
		v := int64(b >> 1)
		if b&1 != 0 {
			v = ^v
		}
		return v
	}
	return r.varintSlow()
}

func (r *walReader) varintSlow() int64 {
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.data = r.data[n:]
	return v
}

// bytes reads one uvarint-prefixed string field as raw bytes aliasing
// the frame; valid until the next read.
func (r *walReader) bytes() []byte {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.data)) {
		r.bad = true
		return nil
	}
	raw := r.data[:n]
	r.data = r.data[n:]
	return raw
}

func (r *walReader) str() string {
	raw := r.bytes()
	if len(raw) == 0 {
		return ""
	}
	if r.intern != nil {
		if s, ok := r.intern[string(raw)]; ok {
			return s
		}
		s := string(raw)
		r.intern[s] = s
		return s
	}
	return string(raw)
}

func (r *walReader) float() float64 {
	if len(r.data) < 8 {
		r.bad = true
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(r.data))
	r.data = r.data[8:]
	return f
}

func (r *walReader) boolean() bool {
	if len(r.data) < 1 {
		r.bad = true
		return false
	}
	b := r.data[0]
	r.data = r.data[1:]
	return b != 0
}

func (r *walReader) instant() time.Time {
	sec := r.varint()
	nsec := r.uvarint()
	if r.bad || nsec >= uint64(time.Second) {
		r.bad = true
		return time.Time{}
	}
	return time.Unix(sec, int64(nsec)).UTC()
}

func (r *walReader) market() market.SpotID {
	zone := r.str()
	typ := r.str()
	product := r.str()
	return market.SpotID{
		Zone:    market.Zone(zone),
		Type:    market.InstanceType(typ),
		Product: market.Product(product),
	}
}

// marketExpect decodes a market field that is nearly always the given ID
// (a shard's own log only holds its own market's records): when the raw
// bytes match, it returns the expected ID without any map lookups or
// allocation. Mismatches fall back to the general decoder — the caller's
// market check then rejects them where it matters.
func (r *walReader) marketExpect(expect market.SpotID) market.SpotID {
	zone := r.bytes()
	typ := r.bytes()
	product := r.bytes()
	if string(zone) == string(expect.Zone) && string(typ) == string(expect.Type) && string(product) == string(expect.Product) {
		return expect
	}
	return market.SpotID{
		Zone:    market.Zone(r.internBytes(zone)),
		Type:    market.InstanceType(r.internBytes(typ)),
		Product: market.Product(r.internBytes(product)),
	}
}

// internBytes is str()'s dedup step for bytes already read.
func (r *walReader) internBytes(raw []byte) string {
	if len(raw) == 0 {
		return ""
	}
	if r.intern != nil {
		if s, ok := r.intern[string(raw)]; ok {
			return s
		}
		s := string(raw)
		r.intern[s] = s
		return s
	}
	return string(raw)
}

// Record encoders: one frame per record.

func appendProbeFrame(buf []byte, rec ProbeRecord) []byte {
	return appendWALFrame(buf, walProbe, func(b []byte) []byte {
		b = appendTime(b, rec.At)
		b = appendMarket(b, rec.Market)
		b = appendVarint(b, int64(rec.Kind))
		b = appendVarint(b, int64(rec.Trigger))
		b = appendMarket(b, rec.TriggerMarket)
		b = appendVarint(b, int64(rec.SourceKind))
		b = appendFloat(b, rec.SpikeRatio)
		b = appendFloat(b, rec.PriceRatio)
		b = appendBool(b, rec.Rejected)
		b = appendString(b, rec.Code)
		b = appendFloat(b, rec.Bid)
		return appendFloat(b, rec.Cost)
	})
}

func appendSpikeFrame(buf []byte, e SpikeEvent) []byte {
	return appendWALFrame(buf, walSpike, func(b []byte) []byte {
		b = appendTime(b, e.At)
		b = appendMarket(b, e.Market)
		b = appendFloat(b, e.Price)
		b = appendFloat(b, e.Ratio)
		return appendBool(b, e.Probed)
	})
}

func appendBidSpreadFrame(buf []byte, r BidSpreadRecord) []byte {
	return appendWALFrame(buf, walBidSpread, func(b []byte) []byte {
		b = appendTime(b, r.At)
		b = appendMarket(b, r.Market)
		b = appendFloat(b, r.Published)
		b = appendFloat(b, r.Intrinsic)
		return appendVarint(b, int64(r.Attempts))
	})
}

func appendRevocationFrame(buf []byte, r RevocationRecord) []byte {
	return appendWALFrame(buf, walRevocation, func(b []byte) []byte {
		b = appendTime(b, r.At)
		b = appendMarket(b, r.Market)
		b = appendFloat(b, r.Bid)
		return appendVarint(b, int64(r.Held))
	})
}

func appendPriceFrame(buf []byte, p PricePoint) []byte {
	return appendWALFrame(buf, walPrice, func(b []byte) []byte {
		b = appendTime(b, p.At)
		return appendFloat(b, p.Price)
	})
}

// walEntry is one decoded WAL record; exactly one of the record fields is
// meaningful, selected by typ.
type walEntry struct {
	typ        walRecordType
	probe      ProbeRecord
	spike      SpikeEvent
	bidSpread  BidSpreadRecord
	revocation RevocationRecord
	price      PricePoint
}

// at returns the record's timestamp.
func (e walEntry) at() time.Time {
	switch e.typ {
	case walProbe:
		return e.probe.At
	case walSpike:
		return e.spike.At
	case walBidSpread:
		return e.bidSpread.At
	case walRevocation:
		return e.revocation.At
	case walPrice:
		return e.price.At
	default:
		return time.Time{}
	}
}

// matchMarketBytes advances past one encoded market (three uvarint-
// prefixed strings) when it is byte-for-byte the given ID or entirely
// empty. Returns the new offset, the decoded ID, and whether it matched
// one of those two shapes; any other market (or any component length
// needing a multi-byte prefix) reports false so the caller can fall back
// to the general decoder.
func matchMarketBytes(body []byte, i int, id market.SpotID) (int, market.SpotID, bool) {
	// An unset market encodes as three zero lengths; sniff that shape
	// first so a zero TriggerMarket doesn't have to match the shard ID.
	if i+3 <= len(body) && body[i] == 0 && body[i+1] == 0 && body[i+2] == 0 {
		return i + 3, market.SpotID{}, true
	}
	comps := [3]string{string(id.Zone), string(id.Type), string(id.Product)}
	for _, want := range comps {
		if i >= len(body) {
			return i, market.SpotID{}, false
		}
		n := int(body[i])
		if n >= 0x80 || n != len(want) {
			return i, market.SpotID{}, false
		}
		i++
		if i+n > len(body) || string(body[i:i+n]) != want {
			return i, market.SpotID{}, false
		}
		i += n
	}
	return i, id, true
}

// decodeProbeFast is the replay hot path: one cursor pass over a probe
// frame body with every varint read inline and both market fields
// compared in place against the shard's own ID (which they virtually
// always are — per-shard logs only hold their own market's records, and
// a probe's trigger market is either its own market or unset). It only
// commits when the whole body parses as that common shape AND is fully
// consumed; anything else — multi-byte component lengths, a foreign
// trigger market, trailing bytes, corruption — reports false and the
// caller re-decodes through the general walReader path, which also owns
// producing the precise error.
func decodeProbeFast(e *ProbeRecord, body []byte, id market.SpotID, intern map[string]string) bool {
	sec, n := binary.Varint(body)
	if n <= 0 {
		return false
	}
	i := n
	nsec, n := binary.Uvarint(body[i:])
	if n <= 0 || nsec >= uint64(time.Second) {
		return false
	}
	i += n
	var ok bool
	var mkt, trig market.SpotID
	if i, mkt, ok = matchMarketBytes(body, i, id); !ok || mkt != id {
		return false
	}
	// Kind and Trigger are tiny enums: single-byte varints or bust.
	if i+2 > len(body) || body[i] >= 0x80 || body[i+1] >= 0x80 {
		return false
	}
	kind := int64(body[i] >> 1)
	if body[i]&1 != 0 {
		kind = ^kind
	}
	trigger := int64(body[i+1] >> 1)
	if body[i+1]&1 != 0 {
		trigger = ^trigger
	}
	i += 2
	if i, trig, ok = matchMarketBytes(body, i, id); !ok {
		return false
	}
	if i >= len(body) || body[i] >= 0x80 {
		return false
	}
	srcKind := int64(body[i] >> 1)
	if body[i]&1 != 0 {
		srcKind = ^srcKind
	}
	i++
	if i+8+8+1 > len(body) {
		return false
	}
	spikeRatio := math.Float64frombits(binary.LittleEndian.Uint64(body[i:]))
	priceRatio := math.Float64frombits(binary.LittleEndian.Uint64(body[i+8:]))
	rejected := body[i+16] != 0
	i += 17
	if i >= len(body) || body[i] >= 0x80 {
		return false
	}
	cn := int(body[i])
	i++
	if i+cn+8+8 != len(body) {
		return false
	}
	var code string
	if cn != 0 {
		raw := body[i : i+cn]
		if intern != nil {
			if s, hit := intern[string(raw)]; hit {
				code = s
			} else {
				code = string(raw)
				intern[code] = code
			}
		} else {
			code = string(raw)
		}
	}
	i += cn
	bid := math.Float64frombits(binary.LittleEndian.Uint64(body[i:]))
	cost := math.Float64frombits(binary.LittleEndian.Uint64(body[i+8:]))
	*e = ProbeRecord{
		At:            time.Unix(sec, int64(nsec)).UTC(),
		Market:        mkt,
		Kind:          ProbeKind(kind),
		Trigger:       Trigger(trigger),
		TriggerMarket: trig,
		SourceKind:    ProbeKind(srcKind),
		SpikeRatio:    spikeRatio,
		PriceRatio:    priceRatio,
		Rejected:      rejected,
		Code:          code,
		Bid:           bid,
		Cost:          cost,
	}
	return true
}

// decodeWALEntry decodes one frame body into e, in place — the decode
// loops reuse one entry across millions of frames rather than copying
// the ~400-byte union through every call (only the record of e.typ is
// meaningful; stale bytes of the other arms are never read). The price
// record carries no market of its own: segments are per-shard, so the
// owning market is supplied by the caller from the segment's directory.
// intern, when non-nil, deduplicates decoded strings across records (see
// walReader.intern).
func decodeWALEntry(e *walEntry, typ walRecordType, body []byte, id market.SpotID, intern map[string]string) error {
	r := walReader{data: body, intern: intern}
	e.typ = typ
	switch typ {
	case walProbe:
		if decodeProbeFast(&e.probe, body, id, intern) {
			// Fully parsed, fully consumed, market == id by
			// construction — the post-switch checks are already met.
			return nil
		}
		e.probe = ProbeRecord{
			At:            r.instant(),
			Market:        r.marketExpect(id),
			Kind:          ProbeKind(r.varint()),
			Trigger:       Trigger(r.varint()),
			TriggerMarket: r.marketExpect(id),
			SourceKind:    ProbeKind(r.varint()),
			SpikeRatio:    r.float(),
			PriceRatio:    r.float(),
			Rejected:      r.boolean(),
			Code:          r.str(),
			Bid:           r.float(),
			Cost:          r.float(),
		}
	case walSpike:
		e.spike = SpikeEvent{
			At:     r.instant(),
			Market: r.marketExpect(id),
			Price:  r.float(),
			Ratio:  r.float(),
			Probed: r.boolean(),
		}
	case walBidSpread:
		e.bidSpread = BidSpreadRecord{
			At:        r.instant(),
			Market:    r.marketExpect(id),
			Published: r.float(),
			Intrinsic: r.float(),
			Attempts:  int(r.varint()),
		}
	case walRevocation:
		e.revocation = RevocationRecord{
			At:     r.instant(),
			Market: r.marketExpect(id),
			Bid:    r.float(),
			Held:   time.Duration(r.varint()),
		}
	case walPrice:
		e.price = PricePoint{At: r.instant(), Price: r.float()}
	default:
		return fmt.Errorf("%w: unknown record type %d", ErrWALCorrupt, typ)
	}
	if err := r.err(); err != nil {
		return err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrWALCorrupt, len(r.data))
	}
	// Per-shard logs must only hold their own market's records; a framed
	// record claiming another market is corruption, not data.
	switch typ {
	case walProbe:
		if e.probe.Market != id {
			return fmt.Errorf("%w: record market %v in log of %v", ErrWALCorrupt, e.probe.Market, id)
		}
	case walSpike:
		if e.spike.Market != id {
			return fmt.Errorf("%w: record market %v in log of %v", ErrWALCorrupt, e.spike.Market, id)
		}
	case walBidSpread:
		if e.bidSpread.Market != id {
			return fmt.Errorf("%w: record market %v in log of %v", ErrWALCorrupt, e.bidSpread.Market, id)
		}
	case walRevocation:
		if e.revocation.Market != id {
			return fmt.Errorf("%w: record market %v in log of %v", ErrWALCorrupt, e.revocation.Market, id)
		}
	}
	return nil
}

// decodeSegmentStream decodes a whole segment image (magic header
// included) record-at-a-time, handing each entry to fn without ever
// collecting a slice — the streaming half of replay: the only per-record
// state is the stack-allocated walEntry. It returns the byte length of
// the valid prefix; err is nil only when the segment decoded completely.
// intern, when non-nil, deduplicates decoded strings across records.
func decodeSegmentStream(data []byte, id market.SpotID, intern map[string]string, fn func(*walEntry)) (validLen int, err error) {
	if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrWALCorrupt)
	}
	var e walEntry
	off := len(walMagic)
	for off < len(data) {
		typ, body, n, ferr := decodeWALFrame(data[off:])
		if ferr != nil {
			return off, ferr
		}
		if derr := decodeWALEntry(&e, typ, body, id, intern); derr != nil {
			return off, derr
		}
		fn(&e)
		off += n
	}
	return off, nil
}

// decodeSegment is decodeSegmentStream collecting the decoded entries —
// the convenience form the property and fuzz tests exercise.
func decodeSegment(data []byte, id market.SpotID) (entries []walEntry, validLen int, err error) {
	validLen, err = decodeSegmentStream(data, id, nil, func(e *walEntry) {
		entries = append(entries, *e)
	})
	return entries, validLen, err
}
