package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/market"
)

// The change feed is the store's push surface: every append — single or
// batched — publishes one round of typed events (probes, price samples,
// spike crossings, revocations, bid spreads, and the outage transitions
// the probe stream derives) to the subscribers whose scope filter matches,
// in the same post-lock publish step that folds the rollup delta. One
// append batch costs one feed lock round no matter how many subscribers
// listen, and with no subscribers at all the append paths skip event
// construction entirely behind a single atomic load.
//
// Slow consumers never block an append: each subscription owns a buffered
// channel, the publisher only ever performs non-blocking sends, and a
// subscriber whose buffer fills is marked lagged — it receives one final
// EventLagged marker (a slot is reserved for it) carrying the sequence and
// generation of its last delivered event, and is then skipped until it
// resubscribes. Dropped events are counted per subscription and feed-wide.
//
// Resume is keyed by (sequence, generation): the feed keeps a bounded ring
// of recent events, so a subscriber that reconnects with its last sequence
// replays the gap exactly when the ring still covers it and the feed was
// never quiescent in between (generation continuity is checked against the
// store's global append generation). When exact replay is impossible the
// caller falls back to EventsSince, which rebuilds best-effort events from
// the shards' windowed indexes.

// EventKind names one change-feed event family.
type EventKind uint8

// Change-feed event kinds. EventLagged is the overflow marker a slow
// subscriber receives instead of the events it missed.
const (
	// EventProbe: one probe was logged.
	EventProbe EventKind = iota + 1
	// EventPrice: one price observation was recorded.
	EventPrice
	// EventSpike: one spot-price threshold crossing was logged.
	EventSpike
	// EventRevocation: one completed revocation watch was logged.
	EventRevocation
	// EventBidSpread: one intrinsic-price search result was logged.
	EventBidSpread
	// EventOutageOpen: the probe stream opened a detected outage interval.
	EventOutageOpen
	// EventOutageClose: a detected outage interval closed.
	EventOutageClose
	// EventLagged: the subscriber's buffer overflowed; Seq/Gen carry the
	// last delivered position to resume from. Terminal for the
	// subscription — no further events are delivered.
	EventLagged
)

// String names the event kind (the wire names of the SSE layer).
func (k EventKind) String() string {
	switch k {
	case EventProbe:
		return "probe"
	case EventPrice:
		return "price"
	case EventSpike:
		return "spike"
	case EventRevocation:
		return "revocation"
	case EventBidSpread:
		return "bid-spread"
	case EventOutageOpen:
		return "outage-open"
	case EventOutageClose:
		return "outage-close"
	case EventLagged:
		return "lagged"
	default:
		return "unknown"
	}
}

// Event is one typed store change. Exactly one payload arm matching Kind
// is set (EventLagged carries none). Payloads are copies — the feed never
// aliases caller or shard memory.
type Event struct {
	// Seq is the feed-assigned strictly increasing sequence number, the
	// primary resume key. Replayed events built by EventsSince carry 0.
	Seq uint64
	// Gen is the store's global append generation after the publish round
	// that produced this event. Rounds on different shards may publish out
	// of generation order, so Gen is not strictly monotone in Seq; equality
	// with the store's current generation still proves "nothing missed".
	Gen uint64

	Kind   EventKind
	Market market.SpotID
	At     time.Time

	Probe      *ProbeRecord
	Price      *PricePoint
	Spike      *SpikeEvent
	Revocation *RevocationRecord
	BidSpread  *BidSpreadRecord
	Outage     *OutageRecord
}

// EventFilter scopes a subscription: global (zero value), one region, one
// (region, product), or one market. Kinds narrows the event families
// delivered; nil means all. EventLagged always passes.
type EventFilter struct {
	// Market restricts to one market when non-zero (Region/Product are
	// then ignored — a market implies both).
	Market market.SpotID
	// Region restricts to one region when non-empty.
	Region market.Region
	// Product restricts to one product platform when non-empty.
	Product market.Product
	// Kinds restricts the delivered event families; nil delivers all.
	Kinds []EventKind
}

// kindMask folds Kinds into a bitmask; 0 means "all kinds".
func (f EventFilter) kindMask() uint16 {
	var m uint16
	for _, k := range f.Kinds {
		m |= 1 << k
	}
	return m
}

// matchMarket reports whether the filter's scope covers id.
func (f EventFilter) matchMarket(id market.SpotID) bool {
	if f.Market != (market.SpotID{}) {
		return id == f.Market
	}
	if f.Region != "" && id.Region() != f.Region {
		return false
	}
	if f.Product != "" && id.Product != f.Product {
		return false
	}
	return true
}

// match reports whether the subscription wants ev.
func match(mask uint16, f EventFilter, ev *Event) bool {
	if ev.Kind == EventLagged {
		return true
	}
	if mask != 0 && mask&(1<<ev.Kind) == 0 {
		return false
	}
	return f.matchMarket(ev.Market)
}

// SubscribeOptions parameterize one subscription.
type SubscribeOptions struct {
	Filter EventFilter
	// Buffer is the event channel capacity before the subscriber is
	// marked lagged; 0 uses DefaultSubscribeBuffer.
	Buffer int
}

// Subscription buffer and replay-ring defaults.
const (
	// DefaultSubscribeBuffer is the event-channel capacity of a
	// subscription that doesn't choose one.
	DefaultSubscribeBuffer = 256
	// defaultRingCapacity bounds the feed's resume replay ring. Sized so
	// a reconnect gap of tens of seconds at realistic event rates still
	// resumes exactly from the ring: a durable follower that restarts
	// (WAL replay takes seconds) or briefly lags must come back through
	// the exactly-once token path, not the at-least-once windowed
	// resync — duplicates there skew a replica's generations and break
	// its ETag compatibility until it is rebuilt. ~32k events of
	// retained ring costs a few MB on a serving node.
	defaultRingCapacity = 32768
)

// Subscription is one registered consumer of the change feed. Receive
// from Events; Close unregisters and closes the channel.
type Subscription struct {
	feed *Feed
	// filter/mask are immutable after Subscribe.
	filter EventFilter
	mask   uint16
	ch     chan Event

	// Publisher-side state, guarded by feed.mu: the last delivered
	// position (what the lagged marker advertises) and the lag flag.
	lastSeq, lastGen uint64
	lagged           bool

	dropped atomic.Uint64
	once    sync.Once
}

// Events returns the subscription's receive channel. It is closed by
// Close; after an EventLagged delivery no further events arrive and the
// consumer should Close and resubscribe with the marker's Seq/Gen.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped reports how many matching events were dropped before the lagged
// marker was delivered (0 for healthy subscriptions).
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close unregisters the subscription and closes its channel. Safe to call
// more than once and concurrently with publishes.
func (s *Subscription) Close() {
	s.once.Do(func() {
		f := s.feed
		f.mu.Lock()
		delete(f.subs, s)
		if s.lagged {
			f.laggedSubs--
		}
		f.refreshActive()
		// The publisher only sends under f.mu, so closing here can never
		// race a send.
		close(s.ch)
		f.mu.Unlock()
	})
}

// ResumeMode says how SubscribeFrom bridged the gap between a resume
// point and the live stream.
type ResumeMode int

// Resume outcomes.
const (
	// ResumeLive: nothing was missed; the stream continues exactly.
	ResumeLive ResumeMode = iota + 1
	// ResumeRing: the gap was replayed exactly from the feed's ring.
	ResumeRing
	// ResumeWindow: the gap exceeds the ring (or spans a restart); the
	// caller must rebuild it best-effort from the store's windowed
	// indexes (EventsSince).
	ResumeWindow
)

// FeedStats is the feed's observability snapshot (the /v2/health payload).
type FeedStats struct {
	// Subscribers counts currently registered subscriptions.
	Subscribers int
	// Published counts events ever assigned a sequence number.
	Published uint64
	// Dropped counts events dropped at subscriber-overflow points.
	Dropped uint64
	// Lagged counts subscriptions ever marked lagged.
	Lagged uint64
	// LastSeq is the newest assigned sequence number.
	LastSeq uint64
	// LastGen is the global generation of the newest evented round.
	LastGen uint64
}

// Feed is the store's change-feed hub. One feed serves the whole store;
// obtain it with Store.Feed.
type Feed struct {
	// active mirrors len(subs)+armed so append paths can skip event
	// construction with one atomic load when nobody listens.
	active atomic.Int32

	// curGen reads the owning store's global append generation, used to
	// prove generation continuity for exact resume.
	curGen func() uint64

	mu   sync.Mutex
	subs map[*Subscription]struct{}
	// armed holds the feed hot without subscribers (see Arm): events keep
	// being built and the ring keeps filling, so a subscriber that
	// reconnects after a brief gap still resumes exactly from the ring.
	armed int
	// laggedSubs counts the registered-but-lagged subscriptions. They are
	// terminal — no further events will be delivered to them — so they
	// do not keep event construction alive: a store whose only
	// subscriber overflowed returns to the zero-cost append path until
	// someone (re)subscribes.
	laggedSubs int

	// seq numbers every published event; lastGen is the highest global
	// generation an evented publish round reported. While subscribers
	// exist every append publishes events, so lastGen == curGen() proves
	// the ring connects to the present.
	seq     uint64
	lastGen uint64

	// ring is the bounded replay buffer: a circular window of the most
	// recent events, contiguous in Seq. Allocated on first publish —
	// stores that never stream (offline analysis, recovery benchmarks)
	// never pay for a multi-megabyte buffer of empty Event slots.
	ring      []Event
	ringCap   int
	ringStart int // index of the oldest entry
	ringLen   int

	published   uint64
	dropped     uint64
	laggedCount uint64
}

func newFeed(curGen func() uint64, ringCap int) *Feed {
	if ringCap <= 0 {
		ringCap = defaultRingCapacity
	}
	return &Feed{
		curGen:  curGen,
		subs:    make(map[*Subscription]struct{}),
		ringCap: ringCap,
	}
}

// Feed returns the store's change feed.
func (s *Store) Feed() *Feed { return s.feed }

// enabled reports whether append paths should construct events.
func (f *Feed) enabled() bool { return f != nil && f.active.Load() > 0 }

// Arm keeps the feed hot while no subscriber is registered: append paths
// keep building events and the replay ring keeps filling, which is what
// lets a subscriber that disconnected for a moment resume exactly instead
// of falling back to a best-effort windowed resync. Serving layers arm
// the feed once when streaming starts and disarm on shutdown; arming is
// reference-counted. Deployments that never stream never pay for event
// construction.
func (f *Feed) Arm() {
	f.mu.Lock()
	f.armed++
	f.refreshActive()
	f.mu.Unlock()
}

// Disarm undoes one Arm.
func (f *Feed) Disarm() {
	f.mu.Lock()
	if f.armed > 0 {
		f.armed--
	}
	f.refreshActive()
	f.mu.Unlock()
}

// refreshActive recomputes the append paths' fast-path gate; callers hold
// f.mu. Lagged subscriptions no longer receive events and so do not keep
// construction alive.
func (f *Feed) refreshActive() {
	f.active.Store(int32(len(f.subs) - f.laggedSubs + f.armed))
}

// Stats returns the feed's counters.
func (f *Feed) Stats() FeedStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FeedStats{
		Subscribers: len(f.subs),
		Published:   f.published,
		Dropped:     f.dropped,
		Lagged:      f.laggedCount,
		LastSeq:     f.seq,
		LastGen:     f.lastGen,
	}
}

// Subscribe registers a live subscriber: it receives events published
// after registration (events racing the registration itself may or may
// not be seen).
func (f *Feed) Subscribe(opts SubscribeOptions) *Subscription {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.subscribeLocked(opts)
}

// SubscribeFrom registers a subscriber resuming from a previous position:
// seq is the last delivered sequence and gen the last delivered
// generation. It returns the registered subscription, the exactly
// replayed backlog (ring events after seq, filtered), and how the gap was
// bridged; on ResumeWindow the backlog is nil and the caller replays from
// the store's windowed indexes before going live.
func (f *Feed) SubscribeFrom(opts SubscribeOptions, seq, gen uint64) (*Subscription, []Event, ResumeMode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sub := f.subscribeLocked(opts)

	// Generation continuity: if records were appended without events
	// (zero-subscriber quiet period, or a restart), the ring does not
	// connect to the present and exact replay is impossible. curGen may
	// race in-flight publishes; the error direction is conservative (a
	// spurious window fallback, never a false exactness claim).
	if f.lastGen != f.curGen() {
		return sub, nil, ResumeWindow
	}
	switch {
	case gen != 0 && gen == f.lastGen && seq >= f.seq:
		// Up to date: the position's generation matches the store's
		// current one and no newer event exists (seq > f.seq happens
		// across a restart of a durable store, where generations survive
		// but the in-memory sequence space does not — gen equality still
		// proves nothing was appended in between).
		return sub, nil, ResumeLive
	case seq > f.seq:
		// A position from another process life with appends in between.
		return sub, nil, ResumeWindow
	case f.ringLen > 0 && seq >= f.ring[f.ringStart].Seq:
		// The client's own last event must still be in the ring and carry
		// the client's generation: sequence numbers restart with the
		// process, so a pre-restart position can collide with this life's
		// sequence space — the generation check unmasks it (generations
		// either survive restarts exactly, on a durable store, or differ).
		oldest := f.ring[f.ringStart].Seq
		own := f.ring[(f.ringStart+int(seq-oldest))%len(f.ring)]
		if own.Seq != seq || own.Gen != gen {
			return sub, nil, ResumeWindow
		}
		backlog := make([]Event, 0, f.ringLen)
		for i := 0; i < f.ringLen; i++ {
			ev := f.ring[(f.ringStart+i)%len(f.ring)]
			if ev.Seq > seq && match(sub.mask, sub.filter, &ev) {
				backlog = append(backlog, ev)
			}
		}
		return sub, backlog, ResumeRing
	default:
		return sub, nil, ResumeWindow
	}
}

func (f *Feed) subscribeLocked(opts SubscribeOptions) *Subscription {
	buf := opts.Buffer
	if buf <= 0 {
		buf = DefaultSubscribeBuffer
	}
	// One extra slot stays reserved for the guaranteed lagged marker.
	sub := &Subscription{
		feed:   f,
		filter: opts.Filter,
		mask:   opts.Filter.kindMask(),
		ch:     make(chan Event, buf+1),
	}
	// "Cold" means no event-constructing consumers: lagged subscriptions
	// are terminal and stopped keeping construction alive, so they don't
	// count.
	cold := len(f.subs)-f.laggedSubs == 0 && f.armed == 0
	if cold && f.lastGen != f.curGen() {
		// Records landed while the feed was cold: the ring's tail no
		// longer connects to the present, so drop it rather than let a
		// later resume replay across the gap and claim exactness (the
		// next publish would otherwise heal the generation continuity
		// check over a ring with an invisible hole).
		f.ringStart, f.ringLen = 0, 0
		f.lastGen = f.curGen()
	}
	f.subs[sub] = struct{}{}
	f.refreshActive()
	return sub
}

// publish assigns sequence numbers to one append round's events, records
// them in the replay ring, and fans them out to matching subscribers with
// non-blocking sends. gen is the store's global generation after the
// round's records landed. Called by shard.publish after the shard lock is
// released; rounds from different shards serialize here.
func (f *Feed) publish(evs []Event, gen uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if gen > f.lastGen {
		f.lastGen = gen
	}
	for i := range evs {
		f.seq++
		evs[i].Seq = f.seq
		evs[i].Gen = gen
		f.ringPush(evs[i])
	}
	f.published += uint64(len(evs))
	for sub := range f.subs {
		if sub.lagged {
			continue
		}
		for i := range evs {
			if !match(sub.mask, sub.filter, &evs[i]) {
				continue
			}
			if len(sub.ch) >= cap(sub.ch)-1 {
				// Overflow: mark the subscriber lagged and deliver the
				// terminal marker into the reserved slot. The marker's
				// Seq/Gen are the last successfully delivered position —
				// exactly where a resume should restart.
				sub.lagged = true
				sub.dropped.Add(1)
				f.dropped++
				f.laggedCount++
				f.laggedSubs++
				f.refreshActive()
				sub.ch <- Event{
					Kind: EventLagged,
					Seq:  sub.lastSeq,
					Gen:  sub.lastGen,
					At:   evs[i].At,
				}
				break
			}
			sub.ch <- evs[i]
			sub.lastSeq, sub.lastGen = evs[i].Seq, evs[i].Gen
		}
	}
}

func (f *Feed) ringPush(ev Event) {
	if f.ring == nil {
		f.ring = make([]Event, f.ringCap)
	}
	if f.ringLen < len(f.ring) {
		f.ring[(f.ringStart+f.ringLen)%len(f.ring)] = ev
		f.ringLen++
		return
	}
	f.ring[f.ringStart] = ev
	f.ringStart = (f.ringStart + 1) % len(f.ring)
}

// EventsSince rebuilds the events of every store change with At in
// [since, ∞) that matches the filter, from the shards' windowed indexes —
// the fallback replay path when a resume gap exceeds the feed's ring.
// Events are ordered by timestamp (ties by market, then family) and carry
// Seq 0 and the store's current global generation; outage transitions are
// synthesized from the derived intervals. Callers should treat the result
// as at-least-once relative to a live stream that broke mid-round.
func (s *Store) EventsSince(since time.Time, f EventFilter) []Event {
	gen := s.GlobalGeneration()
	mask := f.kindMask()
	want := func(k EventKind) bool { return mask == 0 || mask&(1<<k) != 0 }
	// Window bounds are inclusive; cap the far end inside time.Time's
	// int64-nanosecond range.
	to := time.Unix(0, 1<<62)

	var out []Event
	for _, sh := range s.shardList() {
		if !f.matchMarket(sh.id) {
			continue
		}
		id := sh.id
		// Each family materializes its window once, exactly sized by the
		// shard's time index, and events point into that slice — one
		// allocation per (shard, family) instead of one more per record.
		if want(EventProbe) {
			recs := sh.probesIn(nil, since, to)
			for i := range recs {
				out = append(out, Event{Kind: EventProbe, Gen: gen, Market: id, At: recs[i].At, Probe: &recs[i]})
			}
		}
		if want(EventPrice) {
			recs := sh.pricesIn(nil, since, to)
			for i := range recs {
				out = append(out, Event{Kind: EventPrice, Gen: gen, Market: id, At: recs[i].At, Price: &recs[i]})
			}
		}
		if want(EventSpike) {
			recs := sh.spikesIn(nil, since, to)
			for i := range recs {
				out = append(out, Event{Kind: EventSpike, Gen: gen, Market: id, At: recs[i].At, Spike: &recs[i]})
			}
		}
		if want(EventRevocation) {
			recs := sh.revocationsIn(nil, since, to)
			for i := range recs {
				out = append(out, Event{Kind: EventRevocation, Gen: gen, Market: id, At: recs[i].At, Revocation: &recs[i]})
			}
		}
		if want(EventBidSpread) {
			recs := sh.bidSpreadsIn(nil, since, to)
			for i := range recs {
				out = append(out, Event{Kind: EventBidSpread, Gen: gen, Market: id, At: recs[i].At, BidSpread: &recs[i]})
			}
		}
		if want(EventOutageOpen) || want(EventOutageClose) {
			sh.mu.RLock()
			outages := sh.outages.appendTo(nil, id, 0, sh.outages.n())
			sh.mu.RUnlock()
			for i := range outages {
				o := &outages[i]
				if want(EventOutageOpen) && !o.Start.Before(since) {
					out = append(out, Event{Kind: EventOutageOpen, Gen: gen, Market: id, At: o.Start, Outage: o})
				}
				if want(EventOutageClose) && !o.End.IsZero() && !o.End.Before(since) {
					out = append(out, Event{Kind: EventOutageClose, Gen: gen, Market: id, At: o.End, Outage: o})
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		if out[i].Market != out[j].Market {
			return out[i].Market.String() < out[j].Market.String()
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// bidSpreadsIn returns the shard's intrinsic-price results inside
// [from, to] (the one windowed read feed replay needed that the query
// paths never had).
func (sh *shard) bidSpreadsIn(dst []BidSpreadRecord, from, to time.Time) []BidSpreadRecord {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.bidSpreads.window(dst, sh.id, sh.bidSpreadsOrdered, from, to)
}
