// Package store is SpotLight's database. Chapter 3 and Chapter 4 describe
// SpotLight logging every probe, every spot-price trigger event, and every
// request state change "into database"; this package is that database,
// with the query surface the analysis layer (Chapter 5) and the query API
// need.
//
// # Sharded design
//
// The store is sharded per spot market (market.SpotID). Each shard owns
// its market's probe, spike, outage, price, bid-spread, and revocation
// history behind its own RWMutex, so ingestion of different markets never
// contends on a global lock, and every per-market query (OutagesFor,
// SpikesFor, Prices, OutageOverlap, ...) touches exactly one shard.
//
// Shards additionally maintain incremental indexes and aggregates on the
// write path:
//
//   - per-kind probe counters, rejection counters, and probe cost;
//   - derived outage intervals with running totals of closed-outage
//     duration and the open outage's start;
//   - an index of on-demand price crossings (spikes with Ratio >= 1),
//     the events behind every stability/volatility ranking;
//   - running price min/mean/max;
//   - time-ordered flags per slice, so window queries binary-search the
//     affected range instead of scanning whole histories.
//
// Aggregate queries (Aggregates, SpikeCrossings, ProbeCount,
// TotalProbeCost) read those summaries in O(markets) instead of
// O(records). Global iteration methods (Probes, Spikes, Outages, ...)
// remain available for export and offline analysis: they merge across
// shards in timestamp order, resolving ties by market-ID order.
//
// # Rollup hierarchy
//
// Above the shards sits a rollup layer (rollup.go): per-(region, product)
// and per-region aggregates plus append-generation counters, folded in on
// the same append that updates the shard. Scope-wide reads — region
// summaries (RegionAggregates, ScopeAggregatesFor) and cache-validity
// probes (GenerationOfScope, GlobalGeneration) — cost O(regions) or O(1)
// instead of walking every market shard.
package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/market"
)

// ProbeKind distinguishes the two probe families of §2.2.
type ProbeKind int

// Probe kinds.
const (
	// ProbeOnDemand is a request for an on-demand server.
	ProbeOnDemand ProbeKind = iota + 1
	// ProbeSpot is a bid for a spot server.
	ProbeSpot
)

// String names the probe kind.
func (k ProbeKind) String() string {
	switch k {
	case ProbeOnDemand:
		return "on-demand"
	case ProbeSpot:
		return "spot"
	default:
		return "unknown"
	}
}

// ParseProbeKind reverses ProbeKind.String; 0 for unknown names (which
// includes the empty string, so an absent wire field round-trips to the
// zero kind).
func ParseProbeKind(s string) ProbeKind {
	switch s {
	case "on-demand":
		return ProbeOnDemand
	case "spot":
		return ProbeSpot
	default:
		return 0
	}
}

// Trigger records why SpotLight issued a probe (Chapter 3's policy tree
// and Chapter 4's five probing functions).
type Trigger int

// Probe triggers.
const (
	// TriggerSpike: the market's spot price spiked past the threshold
	// (the RequestOnDemand probing function).
	TriggerSpike Trigger = iota + 1
	// TriggerRelatedSameZone: fan-out to the same family in the same
	// zone after a detected rejection (§3.2.1).
	TriggerRelatedSameZone
	// TriggerRelatedOtherZone: fan-out across availability zones
	// (§3.2.2).
	TriggerRelatedOtherZone
	// TriggerRecheck: the periodic re-probe of an unavailable market
	// until it recovers (the RequestInsufficiency loop).
	TriggerRecheck
	// TriggerPeriodicSpot: the periodic CheckCapacity spot probe (§3.3).
	TriggerPeriodicSpot
	// TriggerCross: a probe of the *other* contract type in the same
	// market after a rejection (od→spot or spot→od, §5.4).
	TriggerCross
	// TriggerBidSpread: part of a BidSpread intrinsic-price search.
	TriggerBidSpread
	// TriggerRevocation: a volatile-market revocation experiment probe.
	TriggerRevocation
	// TriggerPeriodicOD: the naive round-robin on-demand probe used by
	// the ablation baseline (probing without the market signal).
	TriggerPeriodicOD
)

// String names the trigger.
func (tr Trigger) String() string {
	switch tr {
	case TriggerSpike:
		return "spike"
	case TriggerRelatedSameZone:
		return "related-same-zone"
	case TriggerRelatedOtherZone:
		return "related-other-zone"
	case TriggerRecheck:
		return "recheck"
	case TriggerPeriodicSpot:
		return "periodic-spot"
	case TriggerCross:
		return "cross"
	case TriggerBidSpread:
		return "bid-spread"
	case TriggerRevocation:
		return "revocation"
	case TriggerPeriodicOD:
		return "periodic-od"
	default:
		return "unknown"
	}
}

// ParseTrigger reverses Trigger.String; 0 for unknown names. Together
// with ParseProbeKind it lets a stream consumer (a read replica) rebuild
// ProbeRecords from their wire form exactly.
func ParseTrigger(s string) Trigger {
	switch s {
	case "spike":
		return TriggerSpike
	case "related-same-zone":
		return TriggerRelatedSameZone
	case "related-other-zone":
		return TriggerRelatedOtherZone
	case "recheck":
		return TriggerRecheck
	case "periodic-spot":
		return TriggerPeriodicSpot
	case "cross":
		return TriggerCross
	case "bid-spread":
		return TriggerBidSpread
	case "revocation":
		return TriggerRevocation
	case "periodic-od":
		return TriggerPeriodicOD
	default:
		return 0
	}
}

// ProbeRecord is one logged probe: the request, why it was sent, and how
// the platform answered.
type ProbeRecord struct {
	At      time.Time     `json:"at"`
	Market  market.SpotID `json:"market"`
	Kind    ProbeKind     `json:"kind"`
	Trigger Trigger       `json:"trigger"`

	// TriggerMarket is the market whose event caused this probe (equal
	// to Market for direct spike probes).
	TriggerMarket market.SpotID `json:"triggerMarket"`
	// SourceKind is the contract kind whose event triggered this probe:
	// for related and cross probes it distinguishes the four pairs of
	// Fig 5.12 (od-od, od-spot, spot-od, spot-spot).
	SourceKind ProbeKind `json:"sourceKind"`
	// SpikeRatio is spot price / on-demand price at the originating
	// trigger, the x-axis of Figs 5.4-5.8.
	SpikeRatio float64 `json:"spikeRatio"`
	// PriceRatio is the probed market's own spot/on-demand ratio at
	// probe time, the x-axis of Figs 5.10-5.11.
	PriceRatio float64 `json:"priceRatio"`

	Rejected bool    `json:"rejected"`
	Code     string  `json:"code"` // platform error/status code when rejected
	Bid      float64 `json:"bid"`  // spot probes only
	Cost     float64 `json:"cost"` // dollars charged for this probe
}

// SpikeEvent is one threshold crossing of a market's spot price, recorded
// whether or not it was sampled for probing.
type SpikeEvent struct {
	At     time.Time     `json:"at"`
	Market market.SpotID `json:"market"`
	Price  float64       `json:"price"`
	Ratio  float64       `json:"ratio"` // price / on-demand price
	Probed bool          `json:"probed"`
}

// OutageRecord is a detected unavailability period for one market and
// contract kind, derived from the probe stream: it opens at the first
// rejected probe and closes at the first subsequent fulfilled probe.
type OutageRecord struct {
	Market market.SpotID `json:"market"`
	Kind   ProbeKind     `json:"kind"`
	Start  time.Time     `json:"start"`
	End    time.Time     `json:"end"` // zero while ongoing
}

// Duration returns the outage length; ongoing outages are measured up to
// now.
func (o OutageRecord) Duration(now time.Time) time.Duration {
	end := o.End
	if end.IsZero() {
		end = now
	}
	return end.Sub(o.Start)
}

// Overlaps reports whether the outage intersects [from, to].
func (o OutageRecord) Overlaps(from, to time.Time) bool {
	if o.Start.After(to) {
		return false
	}
	return o.End.IsZero() || o.End.After(from)
}

// BidSpreadRecord is the outcome of one intrinsic-price search (§5.1.2,
// Chapter 4's BidSpread probing function).
type BidSpreadRecord struct {
	At        time.Time     `json:"at"`
	Market    market.SpotID `json:"market"`
	Published float64       `json:"published"`
	Intrinsic float64       `json:"intrinsic"` // lowest bid that actually wins
	Attempts  int           `json:"attempts"`  // spot requests consumed
}

// PricePoint is one observed published price sample.
type PricePoint struct {
	At    time.Time `json:"at"`
	Price float64   `json:"price"`
}

// RevocationRecord is one completed revocation-watch observation
// (Chapter 4's Revocation probing function): SpotLight held a spot
// instance at the given bid until the platform revoked it.
type RevocationRecord struct {
	At     time.Time     `json:"at"` // when the revocation landed
	Market market.SpotID `json:"market"`
	Bid    float64       `json:"bid"`
	Held   time.Duration `json:"held"` // how long the instance survived
}

// Store is the sharded database: every market's records live in their own
// shard behind their own lock, with incrementally-maintained aggregates.
// Writes to different markets never contend, per-market queries touch only
// their shard, and the global iteration methods merge across shards in
// timestamp order. All methods are safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	shards map[market.SpotID]*shard
	// sorted caches the shards in market-ID order for deterministic
	// global iteration; nil when a new shard invalidated it.
	sorted []*shard

	// gen counts every record ever appended, any market — the global
	// scope-generation counter of the rollup hierarchy.
	gen atomic.Uint64
	// rollups holds the hierarchical scope aggregates: one entry per
	// (region, product) seen on the write path plus one region-level entry
	// per region (empty product). rollupList caches them sorted.
	rollups    map[rollupScope]*rollup
	rollupList []*rollup

	// persist is the durability engine of a store opened with Open; nil
	// for in-memory stores built with New. Set once before the store is
	// shared (Open wires it after recovery), immutable afterwards.
	persist *Persister

	// feed is the store's change-feed hub (feed.go): every append round
	// publishes its typed events here after the shard lock is released.
	feed *Feed

	// metrics is the store's instrument block (metrics.go), allocated at
	// construction and shared into every shard; its fields stay nil (all
	// instruments no-ops) until EnableMetrics arms them.
	metrics *storeMetrics
}

// New returns an empty store.
func New() *Store {
	s := &Store{
		shards:  make(map[market.SpotID]*shard),
		rollups: make(map[rollupScope]*rollup),
		metrics: &storeMetrics{},
	}
	s.feed = newFeed(s.gen.Load, defaultRingCapacity)
	return s
}

// shardFor returns the shard of id, creating it on first write. A new
// shard is bound to its region-level and (region, product) rollups, which
// every subsequent append updates in the same lock round.
func (s *Store) shardFor(id market.SpotID) *shard {
	s.mu.RLock()
	sh := s.shards[id]
	s.mu.RUnlock()
	if sh != nil {
		return sh
	}
	// Resolve the rollups outside the store lock (rollupFor takes it).
	region := id.Region()
	rp := s.rollupFor(rollupScope{region: region, product: id.Product})
	rg := s.rollupFor(rollupScope{region: region})
	s.mu.Lock()
	defer s.mu.Unlock()
	if sh = s.shards[id]; sh == nil {
		sh = newShard(id)
		sh.rp, sh.rg, sh.storeGen = rp, rg, &s.gen
		sh.feed = s.feed
		sh.metrics = s.metrics
		if s.persist != nil {
			// Minting the WAL handle under the store lock orders it
			// against snapshot epoch bumps (Store.snapshotCut), so a new
			// shard can never log into an epoch a concurrent snapshot
			// claims to cover.
			sh.wal = s.persist.newShardWAL(id)
		}
		s.shards[id] = sh
		s.sorted = nil
		// Shards exist iff they hold at least one record, so creation is
		// the scope's market count ticking up.
		for _, r := range [...]*rollup{rp, rg} {
			r.mu.Lock()
			r.agg.markets++
			r.mu.Unlock()
		}
	}
	return sh
}

// adoptShard publishes a shard that parallel recovery built outside the
// store (replay.go): the shardFor wiring, minus creation — the recovered
// records are already in the shard's columns. The caller publishes the
// accumulated rollup delta afterwards; WAL handles are attached later by
// attachPersister, exactly as for shards the v1 snapshot path creates.
func (s *Store) adoptShard(sh *shard) {
	region := sh.id.Region()
	rp := s.rollupFor(rollupScope{region: region, product: sh.id.Product})
	rg := s.rollupFor(rollupScope{region: region})
	s.mu.Lock()
	defer s.mu.Unlock()
	sh.rp, sh.rg, sh.storeGen = rp, rg, &s.gen
	sh.feed = s.feed
	sh.metrics = s.metrics
	s.shards[sh.id] = sh
	s.sorted = nil
	for _, r := range [...]*rollup{rp, rg} {
		r.mu.Lock()
		r.agg.markets++
		r.mu.Unlock()
	}
}

// lookup returns the shard of id without creating it.
func (s *Store) lookup(id market.SpotID) *shard {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shards[id]
}

// shardList returns every shard in market-ID order. The returned slice is
// rebuilt (never mutated) when shards are added, so it is safe to iterate
// without holding the store lock.
func (s *Store) shardList() []*shard {
	s.mu.RLock()
	sorted := s.sorted
	s.mu.RUnlock()
	if sorted != nil {
		return sorted
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sorted == nil {
		list := make([]*shard, 0, len(s.shards))
		for _, sh := range s.shards {
			list = append(list, sh)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].key < list[j].key })
		s.sorted = list
	}
	return s.sorted
}

// mergeByTime collects per-shard record slices and merges them into one
// timestamp-ordered slice: records of one shard keep their append order
// and ties across shards resolve by market-ID order. In the common case —
// every shard appended in time order — this is an O(N log k) k-way merge
// over k shards; only when some shard saw out-of-order appends does it
// fall back to concatenating and stable-sorting.
func mergeByTime[T any](shards []*shard, collect func(*shard) ([]T, bool), at func(T) time.Time) []T {
	runs := make([][]T, 0, len(shards))
	total, allOrdered := 0, true
	for _, sh := range shards {
		run, ordered := collect(sh)
		if len(run) == 0 {
			continue
		}
		runs = append(runs, run)
		total += len(run)
		allOrdered = allOrdered && ordered
	}
	return mergeTimedRuns(runs, allOrdered, total, at)
}

// mergeTimedRuns merges per-shard runs into one timestamp-ordered slice;
// see mergeByTime for the ordering contract. Factored out so snapshot
// assembly can merge already-captured runs without re-locking shards.
func mergeTimedRuns[T any](runs [][]T, allOrdered bool, total int, at func(T) time.Time) []T {
	switch {
	case len(runs) == 0:
		return nil
	case len(runs) == 1 && allOrdered:
		return runs[0]
	case allOrdered:
		return mergeOrderedRuns(runs, at, total)
	}
	out := make([]T, 0, total)
	for _, run := range runs {
		out = append(out, run...)
	}
	sort.SliceStable(out, func(i, j int) bool { return at(out[i]).Before(at(out[j])) })
	return out
}

// mergeOrderedRuns merges k time-ordered runs with a binary min-heap of
// run cursors. Ties order by run index, which mergeByTime's callers build
// in market-ID order.
func mergeOrderedRuns[T any](runs [][]T, at func(T) time.Time, total int) []T {
	pos := make([]int, len(runs))
	less := func(a, b int) bool {
		ta, tb := at(runs[a][pos[a]]), at(runs[b][pos[b]])
		if !ta.Equal(tb) {
			return ta.Before(tb)
		}
		return a < b
	}
	// heap holds run indices, min at heap[0].
	heap := make([]int, len(runs))
	for i := range runs {
		heap[i] = i
	}
	siftDown := func(i, n int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < n && less(heap[l], heap[m]) {
				m = l
			}
			if r < n && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				return
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	n := len(heap)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(i, n)
	}
	out := make([]T, 0, total)
	for n > 0 {
		r := heap[0]
		out = append(out, runs[r][pos[r]])
		pos[r]++
		if pos[r] == len(runs[r]) {
			heap[0] = heap[n-1]
			n--
		}
		siftDown(0, n)
	}
	return out
}

// AppendProbe logs one probe and folds it into the market's derived outage
// intervals and running aggregates.
func (s *Store) AppendProbe(r ProbeRecord) {
	s.shardFor(r.Market).appendProbe(r)
}

// AppendProbes logs a batch of probes, grouping records by market so each
// affected shard's lock is acquired once per group instead of once per
// record. Within one market the input order is preserved (the outage
// derivation depends on it); ordering across markets is irrelevant because
// every derived structure is shard-local.
func (s *Store) AppendProbes(rs []ProbeRecord) {
	switch len(rs) {
	case 0:
		return
	case 1:
		s.AppendProbe(rs[0])
		return
	}
	// Bulk loads are usually a timestamp-ordered interleaving of many
	// markets; group index runs per market first so the per-shard batch
	// append pays one lock round per market, not per record.
	groups := make(map[market.SpotID][]ProbeRecord)
	for _, r := range rs {
		groups[r.Market] = append(groups[r.Market], r)
	}
	for id, group := range groups {
		s.shardFor(id).appendProbes(group)
	}
}

// AppendSpike logs one threshold-crossing event and indexes on-demand
// price crossings (Ratio >= 1) incrementally.
func (s *Store) AppendSpike(e SpikeEvent) {
	s.shardFor(e.Market).appendSpike(e)
}

// AppendSpikes logs a batch of spike events grouped per market, one shard
// lock round per affected market. Within one market the input order is
// preserved.
func (s *Store) AppendSpikes(es []SpikeEvent) {
	switch len(es) {
	case 0:
		return
	case 1:
		s.AppendSpike(es[0])
		return
	}
	groups := make(map[market.SpotID][]SpikeEvent)
	for _, e := range es {
		groups[e.Market] = append(groups[e.Market], e)
	}
	for id, group := range groups {
		s.shardFor(id).appendSpikes(group)
	}
}

// AppendBidSpread logs one intrinsic-price search result.
func (s *Store) AppendBidSpread(r BidSpreadRecord) {
	s.shardFor(r.Market).appendBidSpread(r)
}

// AppendBidSpreads logs a batch of intrinsic-price search results grouped
// per market; within one market the input order is preserved.
func (s *Store) AppendBidSpreads(rs []BidSpreadRecord) {
	switch len(rs) {
	case 0:
		return
	case 1:
		s.AppendBidSpread(rs[0])
		return
	}
	groups := make(map[market.SpotID][]BidSpreadRecord)
	for _, r := range rs {
		groups[r.Market] = append(groups[r.Market], r)
	}
	for id, group := range groups {
		s.shardFor(id).appendBidSpreads(group)
	}
}

// AppendRevocation logs one completed revocation watch.
func (s *Store) AppendRevocation(r RevocationRecord) {
	s.shardFor(r.Market).appendRevocation(r)
}

// AppendRevocations logs a batch of completed revocation watches grouped
// per market; within one market the input order is preserved.
func (s *Store) AppendRevocations(rs []RevocationRecord) {
	switch len(rs) {
	case 0:
		return
	case 1:
		s.AppendRevocation(rs[0])
		return
	}
	groups := make(map[market.SpotID][]RevocationRecord)
	for _, r := range rs {
		groups[r.Market] = append(groups[r.Market], r)
	}
	for id, group := range groups {
		s.shardFor(id).appendRevocations(group)
	}
}

// RecordPrice appends one price observation for a market. Callers decide
// which markets to track densely (watched markets) versus sample.
func (s *Store) RecordPrice(id market.SpotID, p PricePoint) {
	s.shardFor(id).appendPrice(p)
}

// RecordPrices appends a batch of price observations for one market in
// one shard lock round, preserving input order.
func (s *Store) RecordPrices(id market.SpotID, ps []PricePoint) {
	if len(ps) == 0 {
		return
	}
	s.shardFor(id).appendPrices(ps)
}

// Markets returns every market with at least one record of any kind, in
// market-ID order.
func (s *Store) Markets() []market.SpotID {
	shards := s.shardList()
	out := make([]market.SpotID, len(shards))
	for i, sh := range shards {
		out[i] = sh.id
	}
	return out
}

// Revocations returns all revocation-watch observations merged across
// shards, oldest first.
func (s *Store) Revocations() []RevocationRecord {
	return mergeByTime(s.shardList(), func(sh *shard) ([]RevocationRecord, bool) {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.revocations.appendTo(nil, sh.id, 0, sh.revocations.n()), sh.revocationsOrdered
	}, revocationAt)
}

// RevocationsFor returns one market's revocation observations within
// [from, to], oldest first when appends were time-ordered.
func (s *Store) RevocationsFor(id market.SpotID, from, to time.Time) []RevocationRecord {
	sh := s.lookup(id)
	if sh == nil {
		return nil
	}
	return sh.revocationsIn(nil, from, to)
}

// Probes returns all probes merged across shards, oldest first.
func (s *Store) Probes() []ProbeRecord {
	return mergeByTime(s.shardList(), func(sh *shard) ([]ProbeRecord, bool) {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.probes.appendTo(nil, sh.id, 0, sh.probes.n()), sh.probesOrdered
	}, probeAt)
}

// ProbesWhere returns copies of probes matching keep, oldest first.
func (s *Store) ProbesWhere(keep func(ProbeRecord) bool) []ProbeRecord {
	return mergeByTime(s.shardList(), func(sh *shard) ([]ProbeRecord, bool) {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		var run []ProbeRecord
		for i := 0; i < sh.probes.n(); i++ {
			if r := sh.probes.get(i, sh.id); keep(r) {
				run = append(run, r)
			}
		}
		return run, sh.probesOrdered // filtering preserves order
	}, probeAt)
}

// ProbesInWindow returns the probes with At inside [from, to], optionally
// filtered by keep, using each shard's time index. Results are grouped by
// market in market-ID order.
func (s *Store) ProbesInWindow(from, to time.Time, keep func(ProbeRecord) bool) []ProbeRecord {
	return s.ProbesInWindowAppend(nil, from, to, keep)
}

// ProbesInWindowAppend is ProbesInWindow appending into dst, so steady
// callers (pollers re-reading the same window shape) can reuse one buffer
// and read allocation-free once its capacity is warm.
func (s *Store) ProbesInWindowAppend(dst []ProbeRecord, from, to time.Time, keep func(ProbeRecord) bool) []ProbeRecord {
	out := dst
	for _, sh := range s.shardList() {
		start := len(out)
		out = sh.probesIn(out, from, to)
		if keep == nil {
			continue
		}
		kept := out[:start]
		for _, r := range out[start:] {
			if keep(r) {
				kept = append(kept, r)
			}
		}
		out = kept
	}
	return out
}

// ProbeCount returns the number of logged probes.
func (s *Store) ProbeCount() int {
	total := 0
	for _, sh := range s.shardList() {
		sh.mu.RLock()
		total += sh.agg.probeCount
		sh.mu.RUnlock()
	}
	return total
}

// Spikes returns all spike events merged across shards, oldest first.
func (s *Store) Spikes() []SpikeEvent {
	return mergeByTime(s.shardList(), func(sh *shard) ([]SpikeEvent, bool) {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.spikes.appendTo(nil, sh.id, 0, sh.spikes.n()), sh.spikesOrdered
	}, spikeAt)
}

// SpikesFor returns the spike events of one market within [from, to].
func (s *Store) SpikesFor(id market.SpotID, from, to time.Time) []SpikeEvent {
	sh := s.lookup(id)
	if sh == nil {
		return nil
	}
	return sh.spikesIn(nil, from, to)
}

// SpikesInWindow returns the spike events with At inside [from, to] of
// every market accepted by keep (all markets when keep is nil), using each
// shard's time index. Results are grouped by market in market-ID order.
func (s *Store) SpikesInWindow(from, to time.Time, keep func(market.SpotID) bool) []SpikeEvent {
	return s.SpikesInWindowAppend(nil, from, to, keep)
}

// SpikesInWindowAppend is SpikesInWindow appending into dst, so steady
// callers can reuse one buffer and read allocation-free once its capacity
// is warm.
func (s *Store) SpikesInWindowAppend(dst []SpikeEvent, from, to time.Time, keep func(market.SpotID) bool) []SpikeEvent {
	out := dst
	for _, sh := range s.shardList() {
		if keep != nil && !keep(sh.id) {
			continue
		}
		out = sh.spikesIn(out, from, to)
	}
	return out
}

// CrossingStats summarizes one market's on-demand price crossings
// (spikes with Ratio >= 1) inside a window.
type CrossingStats struct {
	// Crossings is how many times the spot price crossed the on-demand
	// price in the window.
	Crossings int
	// MaxRatio is the largest crossing ratio observed in the window.
	MaxRatio float64
}

// SpikeCrossings returns per-market crossing statistics for [from, to],
// computed from each shard's incremental crossings index. Markets with no
// crossings in the window are absent.
func (s *Store) SpikeCrossings(from, to time.Time) map[market.SpotID]CrossingStats {
	return s.SpikeCrossingsWhere(from, to, nil)
}

// SpikeCrossingsWhere is SpikeCrossings restricted to the markets accepted
// by keep (all markets when nil): shards outside the scope are skipped
// entirely, so a region- or product-filtered ranking touches only the
// matching shards' crossing indexes.
func (s *Store) SpikeCrossingsWhere(from, to time.Time, keep func(market.SpotID) bool) map[market.SpotID]CrossingStats {
	out := make(map[market.SpotID]CrossingStats)
	for _, sh := range s.shardList() {
		if keep != nil && !keep(sh.id) {
			continue
		}
		count, maxRatio := sh.crossingStats(from, to)
		if count > 0 {
			out[sh.id] = CrossingStats{Crossings: count, MaxRatio: maxRatio}
		}
	}
	return out
}

// CrossingStatsFor returns one market's crossing statistics for [from, to]
// from its shard's incremental index; the zero stats when the market has
// no shard.
func (s *Store) CrossingStatsFor(id market.SpotID, from, to time.Time) CrossingStats {
	sh := s.lookup(id)
	if sh == nil {
		return CrossingStats{}
	}
	count, maxRatio := sh.crossingStats(from, to)
	return CrossingStats{Crossings: count, MaxRatio: maxRatio}
}

// BidSpreads returns all intrinsic-price search results merged across
// shards, oldest first.
func (s *Store) BidSpreads() []BidSpreadRecord {
	return mergeByTime(s.shardList(), func(sh *shard) ([]BidSpreadRecord, bool) {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.bidSpreads.appendTo(nil, sh.id, 0, sh.bidSpreads.n()), sh.bidSpreadsOrdered
	}, bidSpreadAt)
}

// BidSpreadsFor returns one market's intrinsic-price search results.
func (s *Store) BidSpreadsFor(id market.SpotID) []BidSpreadRecord {
	sh := s.lookup(id)
	if sh == nil {
		return nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.bidSpreads.appendTo(nil, sh.id, 0, sh.bidSpreads.n())
}

// Outages returns all detected outage intervals merged across shards,
// ordered by start time; ongoing ones keep a zero End.
func (s *Store) Outages() []OutageRecord {
	return mergeByTime(s.shardList(), func(sh *shard) ([]OutageRecord, bool) {
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.outages.appendTo(nil, sh.id, 0, sh.outages.n()), sh.outagesOrdered
	}, outageAt)
}

// OutagesFor returns detected outages for one market and contract kind.
func (s *Store) OutagesFor(id market.SpotID, kind ProbeKind) []OutageRecord {
	sh := s.lookup(id)
	if sh == nil {
		return nil
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []OutageRecord
	for i, k := range sh.outages.kind {
		if k == kind {
			out = append(out, sh.outages.get(i, sh.id))
		}
	}
	return out
}

// OutageOverlap returns how much of [from, to] is covered by the market's
// detected outages of the given kind — the window arithmetic behind every
// unavailability query, computed inside the shard without copying.
func (s *Store) OutageOverlap(id market.SpotID, kind ProbeKind, from, to time.Time) time.Duration {
	sh := s.lookup(id)
	if sh == nil {
		return 0
	}
	return sh.outageOverlap(kind, from, to)
}

// Prices returns a copy of the recorded price series of a market.
func (s *Store) Prices(id market.SpotID) []PricePoint {
	sh := s.lookup(id)
	if sh == nil {
		return []PricePoint{}
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	out := make([]PricePoint, 0, sh.prices.n())
	return sh.prices.appendTo(out, 0, sh.prices.n())
}

// PricesIn returns the recorded price points of a market inside [from, to],
// located by binary search when the series is time-ordered.
func (s *Store) PricesIn(id market.SpotID, from, to time.Time) []PricePoint {
	sh := s.lookup(id)
	if sh == nil {
		return nil
	}
	return sh.pricesIn(nil, from, to)
}

// PriceWindowStats is the windowed price summary of one market, folded
// inside its shard without copying the series.
type PriceWindowStats struct {
	Samples int
	Min     float64
	Mean    float64
	Max     float64
}

// PriceStatsIn computes min/mean/max over the recorded prices of a market
// inside [from, to]. Unlike PricesIn it allocates nothing: the fold runs
// in-shard over the binary-searched window.
func (s *Store) PriceStatsIn(id market.SpotID, from, to time.Time) PriceWindowStats {
	sh := s.lookup(id)
	if sh == nil {
		return PriceWindowStats{}
	}
	samples, min, sum, max := sh.priceStats(from, to)
	st := PriceWindowStats{Samples: samples, Min: min, Max: max}
	if samples > 0 {
		st.Mean = sum / float64(samples)
	}
	return st
}

// PricedMarkets returns the markets with at least one recorded price, in
// market-ID order.
func (s *Store) PricedMarkets() []market.SpotID {
	var out []market.SpotID
	for _, sh := range s.shardList() {
		sh.mu.RLock()
		n := sh.agg.priceCount
		sh.mu.RUnlock()
		if n > 0 {
			out = append(out, sh.id)
		}
	}
	return out
}

// TotalProbeCost sums the dollars charged across all probes, from the
// shard aggregates.
func (s *Store) TotalProbeCost() float64 {
	total := 0.0
	for _, sh := range s.shardList() {
		sh.mu.RLock()
		total += sh.agg.probeCost
		sh.mu.RUnlock()
	}
	return total
}

// MarketAggregates is the incrementally-maintained summary of one market's
// shard: counters the old flat log could only produce by rescanning every
// record.
type MarketAggregates struct {
	Market market.SpotID

	// TotalProbes counts every logged probe, including unknown kinds;
	// ODProbes and SpotProbes break down the known ones.
	TotalProbes  int
	ODProbes     int
	ODRejected   int
	SpotProbes   int
	SpotRejected int
	ProbeCost    float64

	// ODOutages / SpotOutages count detected outage intervals, ongoing
	// included; ODOutageDur measures total on-demand outage time to `now`.
	ODOutages   int
	SpotOutages int
	ODOutageDur time.Duration

	Spikes        int
	SpikesAboveOD int

	PriceSamples int
	PriceMin     float64
	PriceMean    float64
	PriceMax     float64
}

// Aggregates returns every shard's running summary at instant now (used to
// measure ongoing outages), in market-ID order. This is an O(markets)
// walk; no record is copied or rescanned.
func (s *Store) Aggregates(now time.Time) []MarketAggregates {
	shards := s.shardList()
	out := make([]MarketAggregates, 0, len(shards))
	for _, sh := range shards {
		sh.mu.RLock()
		a := sh.agg
		sh.mu.RUnlock()
		od := a.byKind[ProbeOnDemand-1]
		spot := a.byKind[ProbeSpot-1]
		m := MarketAggregates{
			Market:        sh.id,
			TotalProbes:   a.probeCount,
			ODProbes:      od.probes,
			ODRejected:    od.rejected,
			SpotProbes:    spot.probes,
			SpotRejected:  spot.rejected,
			ProbeCost:     a.probeCost,
			ODOutages:     od.outages,
			SpotOutages:   spot.outages,
			ODOutageDur:   od.outageDur(now),
			Spikes:        a.spikes,
			SpikesAboveOD: a.spikesAboveOD,
			PriceSamples:  a.priceCount,
			PriceMin:      a.priceMin,
			PriceMax:      a.priceMax,
		}
		if a.priceCount > 0 {
			m.PriceMean = a.priceSum / float64(a.priceCount)
		}
		out = append(out, m)
	}
	return out
}

// Generation returns the market's append generation: the number of records
// of any kind ever appended to its shard (0 when the market has no shard).
// Every append bumps exactly one market's generation, so a cached query
// result derived from this market is valid iff the generation is unchanged.
func (s *Store) Generation(id market.SpotID) uint64 {
	sh := s.lookup(id)
	if sh == nil {
		return 0
	}
	return sh.gen.Load()
}

// ScopeGeneration sums the append generations of the shards accepted by
// keep (all shards when nil). Because each append increments exactly one
// in-scope shard's counter by one, the sum equals the total number of
// records ever appended inside the scope and is strictly monotone in those
// appends: equal sums imply an unchanged scope. Appends outside the scope
// leave the sum untouched — that is the per-shard invalidation a response
// cache keys on. The walk is O(markets) atomic loads, no shard lock taken.
// For region/product-shaped scopes prefer GenerationOfScope, which reads
// the equivalent rollup counter in O(1).
func (s *Store) ScopeGeneration(keep func(market.SpotID) bool) uint64 {
	var total uint64
	for _, sh := range s.shardList() {
		if keep != nil && !keep(sh.id) {
			continue
		}
		total += sh.gen.Load()
	}
	return total
}
