// Package store is SpotLight's database. Chapter 3 and Chapter 4 describe
// SpotLight logging every probe, every spot-price trigger event, and every
// request state change "into database"; this package is that database:
// an in-memory, append-ordered, concurrency-safe log with the query
// surface the analysis layer (Chapter 5) and the query API need.
package store

import (
	"sync"
	"time"

	"spotlight/internal/market"
)

// ProbeKind distinguishes the two probe families of §2.2.
type ProbeKind int

// Probe kinds.
const (
	// ProbeOnDemand is a request for an on-demand server.
	ProbeOnDemand ProbeKind = iota + 1
	// ProbeSpot is a bid for a spot server.
	ProbeSpot
)

// String names the probe kind.
func (k ProbeKind) String() string {
	switch k {
	case ProbeOnDemand:
		return "on-demand"
	case ProbeSpot:
		return "spot"
	default:
		return "unknown"
	}
}

// Trigger records why SpotLight issued a probe (Chapter 3's policy tree
// and Chapter 4's five probing functions).
type Trigger int

// Probe triggers.
const (
	// TriggerSpike: the market's spot price spiked past the threshold
	// (the RequestOnDemand probing function).
	TriggerSpike Trigger = iota + 1
	// TriggerRelatedSameZone: fan-out to the same family in the same
	// zone after a detected rejection (§3.2.1).
	TriggerRelatedSameZone
	// TriggerRelatedOtherZone: fan-out across availability zones
	// (§3.2.2).
	TriggerRelatedOtherZone
	// TriggerRecheck: the periodic re-probe of an unavailable market
	// until it recovers (the RequestInsufficiency loop).
	TriggerRecheck
	// TriggerPeriodicSpot: the periodic CheckCapacity spot probe (§3.3).
	TriggerPeriodicSpot
	// TriggerCross: a probe of the *other* contract type in the same
	// market after a rejection (od→spot or spot→od, §5.4).
	TriggerCross
	// TriggerBidSpread: part of a BidSpread intrinsic-price search.
	TriggerBidSpread
	// TriggerRevocation: a volatile-market revocation experiment probe.
	TriggerRevocation
	// TriggerPeriodicOD: the naive round-robin on-demand probe used by
	// the ablation baseline (probing without the market signal).
	TriggerPeriodicOD
)

// String names the trigger.
func (tr Trigger) String() string {
	switch tr {
	case TriggerSpike:
		return "spike"
	case TriggerRelatedSameZone:
		return "related-same-zone"
	case TriggerRelatedOtherZone:
		return "related-other-zone"
	case TriggerRecheck:
		return "recheck"
	case TriggerPeriodicSpot:
		return "periodic-spot"
	case TriggerCross:
		return "cross"
	case TriggerBidSpread:
		return "bid-spread"
	case TriggerRevocation:
		return "revocation"
	case TriggerPeriodicOD:
		return "periodic-od"
	default:
		return "unknown"
	}
}

// ProbeRecord is one logged probe: the request, why it was sent, and how
// the platform answered.
type ProbeRecord struct {
	At      time.Time     `json:"at"`
	Market  market.SpotID `json:"market"`
	Kind    ProbeKind     `json:"kind"`
	Trigger Trigger       `json:"trigger"`

	// TriggerMarket is the market whose event caused this probe (equal
	// to Market for direct spike probes).
	TriggerMarket market.SpotID `json:"triggerMarket"`
	// SourceKind is the contract kind whose event triggered this probe:
	// for related and cross probes it distinguishes the four pairs of
	// Fig 5.12 (od-od, od-spot, spot-od, spot-spot).
	SourceKind ProbeKind `json:"sourceKind"`
	// SpikeRatio is spot price / on-demand price at the originating
	// trigger, the x-axis of Figs 5.4-5.8.
	SpikeRatio float64 `json:"spikeRatio"`
	// PriceRatio is the probed market's own spot/on-demand ratio at
	// probe time, the x-axis of Figs 5.10-5.11.
	PriceRatio float64 `json:"priceRatio"`

	Rejected bool    `json:"rejected"`
	Code     string  `json:"code"` // platform error/status code when rejected
	Bid      float64 `json:"bid"`  // spot probes only
	Cost     float64 `json:"cost"` // dollars charged for this probe
}

// SpikeEvent is one threshold crossing of a market's spot price, recorded
// whether or not it was sampled for probing.
type SpikeEvent struct {
	At     time.Time     `json:"at"`
	Market market.SpotID `json:"market"`
	Price  float64       `json:"price"`
	Ratio  float64       `json:"ratio"` // price / on-demand price
	Probed bool          `json:"probed"`
}

// OutageRecord is a detected unavailability period for one market and
// contract kind, derived from the probe stream: it opens at the first
// rejected probe and closes at the first subsequent fulfilled probe.
type OutageRecord struct {
	Market market.SpotID `json:"market"`
	Kind   ProbeKind     `json:"kind"`
	Start  time.Time     `json:"start"`
	End    time.Time     `json:"end"` // zero while ongoing
}

// Duration returns the outage length; ongoing outages are measured up to
// now.
func (o OutageRecord) Duration(now time.Time) time.Duration {
	end := o.End
	if end.IsZero() {
		end = now
	}
	return end.Sub(o.Start)
}

// Overlaps reports whether the outage intersects [from, to].
func (o OutageRecord) Overlaps(from, to time.Time) bool {
	if o.Start.After(to) {
		return false
	}
	return o.End.IsZero() || o.End.After(from)
}

// BidSpreadRecord is the outcome of one intrinsic-price search (§5.1.2,
// Chapter 4's BidSpread probing function).
type BidSpreadRecord struct {
	At        time.Time     `json:"at"`
	Market    market.SpotID `json:"market"`
	Published float64       `json:"published"`
	Intrinsic float64       `json:"intrinsic"` // lowest bid that actually wins
	Attempts  int           `json:"attempts"`  // spot requests consumed
}

// PricePoint is one observed published price sample.
type PricePoint struct {
	At    time.Time `json:"at"`
	Price float64   `json:"price"`
}

// RevocationRecord is one completed revocation-watch observation
// (Chapter 4's Revocation probing function): SpotLight held a spot
// instance at the given bid until the platform revoked it.
type RevocationRecord struct {
	At     time.Time     `json:"at"` // when the revocation landed
	Market market.SpotID `json:"market"`
	Bid    float64       `json:"bid"`
	Held   time.Duration `json:"held"` // how long the instance survived
}

type outageKey struct {
	m market.SpotID
	k ProbeKind
}

// Store is the append-ordered database. All methods are safe for
// concurrent use.
type Store struct {
	mu sync.RWMutex

	probes      []ProbeRecord
	spikes      []SpikeEvent
	bidSpreads  []BidSpreadRecord
	revocations []RevocationRecord

	prices map[market.SpotID][]PricePoint

	openOutages map[outageKey]int // index into outages
	outages     []OutageRecord
}

// New returns an empty store.
func New() *Store {
	return &Store{
		prices:      make(map[market.SpotID][]PricePoint),
		openOutages: make(map[outageKey]int),
	}
}

// AppendProbe logs one probe and folds it into the derived outage
// intervals.
func (s *Store) AppendProbe(r ProbeRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probes = append(s.probes, r)

	key := outageKey{m: r.Market, k: r.Kind}
	idx, open := s.openOutages[key]
	switch {
	case r.Rejected && !open:
		s.outages = append(s.outages, OutageRecord{
			Market: r.Market, Kind: r.Kind, Start: r.At,
		})
		s.openOutages[key] = len(s.outages) - 1
	case !r.Rejected && open:
		s.outages[idx].End = r.At
		delete(s.openOutages, key)
	}
}

// AppendSpike logs one threshold-crossing event.
func (s *Store) AppendSpike(e SpikeEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spikes = append(s.spikes, e)
}

// AppendBidSpread logs one intrinsic-price search result.
func (s *Store) AppendBidSpread(r BidSpreadRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bidSpreads = append(s.bidSpreads, r)
}

// AppendRevocation logs one completed revocation watch.
func (s *Store) AppendRevocation(r RevocationRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revocations = append(s.revocations, r)
}

// Revocations returns a copy of all revocation-watch observations.
func (s *Store) Revocations() []RevocationRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RevocationRecord, len(s.revocations))
	copy(out, s.revocations)
	return out
}

// RecordPrice appends one price observation for a market. Callers decide
// which markets to track densely (watched markets) versus sample.
func (s *Store) RecordPrice(id market.SpotID, p PricePoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prices[id] = append(s.prices[id], p)
}

// Probes returns a copy of all probes, oldest first.
func (s *Store) Probes() []ProbeRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ProbeRecord, len(s.probes))
	copy(out, s.probes)
	return out
}

// ProbesWhere returns copies of probes matching keep.
func (s *Store) ProbesWhere(keep func(ProbeRecord) bool) []ProbeRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ProbeRecord
	for _, r := range s.probes {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// ProbeCount returns the number of logged probes.
func (s *Store) ProbeCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.probes)
}

// Spikes returns a copy of all spike events.
func (s *Store) Spikes() []SpikeEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SpikeEvent, len(s.spikes))
	copy(out, s.spikes)
	return out
}

// SpikesFor returns the spike events of one market within [from, to].
func (s *Store) SpikesFor(id market.SpotID, from, to time.Time) []SpikeEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []SpikeEvent
	for _, e := range s.spikes {
		if e.Market == id && !e.At.Before(from) && !e.At.After(to) {
			out = append(out, e)
		}
	}
	return out
}

// BidSpreads returns a copy of all intrinsic-price search results.
func (s *Store) BidSpreads() []BidSpreadRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]BidSpreadRecord, len(s.bidSpreads))
	copy(out, s.bidSpreads)
	return out
}

// Outages returns all detected outage intervals; ongoing ones keep a zero
// End.
func (s *Store) Outages() []OutageRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]OutageRecord, len(s.outages))
	copy(out, s.outages)
	return out
}

// OutagesFor returns detected outages for one market and contract kind.
func (s *Store) OutagesFor(id market.SpotID, kind ProbeKind) []OutageRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []OutageRecord
	for _, o := range s.outages {
		if o.Market == id && o.Kind == kind {
			out = append(out, o)
		}
	}
	return out
}

// Prices returns a copy of the recorded price series of a market.
func (s *Store) Prices(id market.SpotID) []PricePoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	series := s.prices[id]
	out := make([]PricePoint, len(series))
	copy(out, series)
	return out
}

// PricedMarkets returns the markets with at least one recorded price.
func (s *Store) PricedMarkets() []market.SpotID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]market.SpotID, 0, len(s.prices))
	for id := range s.prices {
		out = append(out, id)
	}
	return out
}

// TotalProbeCost sums the dollars charged across all probes.
func (s *Store) TotalProbeCost() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0.0
	for _, r := range s.probes {
		total += r.Cost
	}
	return total
}
