package store

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spotlight/internal/market"
)

var fuzzMarket = market.SpotID{Zone: "us-east-1a", Type: "m3.large", Product: market.ProductLinux}

// fuzzSegment builds a small valid segment image for the seed corpus.
func fuzzSegment() []byte {
	at := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	buf := []byte(walMagic)
	buf = appendProbeFrame(buf, ProbeRecord{
		At: at, Market: fuzzMarket, Kind: ProbeOnDemand, Trigger: TriggerSpike,
		TriggerMarket: fuzzMarket, SourceKind: ProbeSpot,
		SpikeRatio: 1.5, PriceRatio: 1.2, Rejected: true, Code: "ICE", Bid: 0.3, Cost: 0.02,
	})
	buf = appendSpikeFrame(buf, SpikeEvent{At: at.Add(time.Minute), Market: fuzzMarket, Price: 0.9, Ratio: 1.8, Probed: true})
	buf = appendBidSpreadFrame(buf, BidSpreadRecord{At: at.Add(2 * time.Minute), Market: fuzzMarket, Published: 0.5, Intrinsic: 0.31, Attempts: 6})
	buf = appendRevocationFrame(buf, RevocationRecord{At: at.Add(3 * time.Minute), Market: fuzzMarket, Bid: 1.1, Held: time.Hour})
	buf = appendPriceFrame(buf, PricePoint{At: at.Add(4 * time.Minute), Price: 0.27})
	return buf
}

// FuzzWALDecode feeds arbitrary bytes to the WAL segment decoder: it must
// return records plus an error position, never panic, and its reported
// valid prefix must actually be a prefix of the input.
func FuzzWALDecode(f *testing.F) {
	valid := fuzzSegment()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                                            // torn tail
	f.Add([]byte(walMagic))                                                // empty segment
	f.Add([]byte{})                                                        // no header
	f.Add([]byte("SPOTWAL1\x00\x00"))                                      // short frame header
	f.Add(append([]byte(nil), valid[:len(walMagic)+walFrameHeader+40]...)) // mid-frame cut
	corrupt := append([]byte(nil), valid...)
	corrupt[len(walMagic)+10] ^= 0xff // checksum mismatch
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, validLen, err := decodeSegment(data, fuzzMarket)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("valid prefix %d outside input of %d bytes", validLen, len(data))
		}
		if err == nil {
			// A cleanly decoded segment must re-decode identically from
			// its own valid prefix.
			again, againLen, err2 := decodeSegment(data[:validLen], fuzzMarket)
			if err2 != nil || againLen != validLen || len(again) != len(entries) {
				t.Fatalf("re-decode of valid prefix diverged: %v, %d vs %d entries", err2, len(again), len(entries))
			}
		}
	})
}

// FuzzSnapshotReadJSON feeds arbitrary bytes to the snapshot loader:
// malformed input must produce an error, never a panic, and a successful
// load must round-trip through WriteJSON.
func FuzzSnapshotReadJSON(f *testing.F) {
	var snap bytes.Buffer
	s := New()
	s.AppendProbe(ProbeRecord{
		At: time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC), Market: fuzzMarket,
		Kind: ProbeSpot, Trigger: TriggerPeriodicSpot, Rejected: true, Code: "cap",
	})
	s.RecordPrice(fuzzMarket, PricePoint{At: time.Date(2015, 9, 1, 1, 0, 0, 0, time.UTC), Price: 0.12})
	if err := s.WriteJSON(&snap); err != nil {
		f.Fatal(err)
	}
	f.Add(snap.Bytes())
	f.Add(snap.Bytes()[:snap.Len()/2])                // truncated JSON
	f.Add([]byte(`{}`))                               // empty snapshot
	f.Add([]byte(`{"prices":{"not a market":[]}}`))   // bad price key
	f.Add([]byte(`{"probes":[{"at":"not-a-time"}]}`)) // bad timestamp
	f.Add([]byte(`{"probes":null,"prices":null}`))    // null streams
	f.Add([]byte(`[1,2,3]`))                          // wrong shape

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadJSON(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if werr := st.WriteJSON(&out); werr != nil {
			t.Fatalf("WriteJSON after successful ReadJSON: %v", werr)
		}
	})
}

// fuzzSnapshotShard builds a small valid v2 snapshot shard image (magic
// header plus one CRC-framed record per family) for the seed corpus.
func fuzzSnapshotShard(f *testing.F) []byte {
	f.Helper()
	at := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	s := New()
	s.AppendProbe(ProbeRecord{
		At: at, Market: fuzzMarket, Kind: ProbeOnDemand, Trigger: TriggerSpike,
		TriggerMarket: fuzzMarket, SourceKind: ProbeSpot,
		SpikeRatio: 1.5, PriceRatio: 1.2, Rejected: true, Code: "ICE", Bid: 0.3, Cost: 0.02,
	})
	s.AppendSpike(SpikeEvent{At: at.Add(time.Minute), Market: fuzzMarket, Price: 0.9, Ratio: 1.8, Probed: true})
	s.AppendBidSpread(BidSpreadRecord{At: at.Add(2 * time.Minute), Market: fuzzMarket, Published: 0.5, Intrinsic: 0.31, Attempts: 6})
	s.AppendRevocation(RevocationRecord{At: at.Add(3 * time.Minute), Market: fuzzMarket, Bid: 1.1, Held: time.Hour})
	s.RecordPrice(fuzzMarket, PricePoint{At: at.Add(4 * time.Minute), Price: 0.27})
	c := s.lookup(fuzzMarket).capture(0)
	var buf bytes.Buffer
	if err := encodeShardSnapshot(&buf, &c); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotV2Decode feeds arbitrary bytes to the binary snapshot shard
// decoder: malformed input must produce an error, never a panic — a
// snapshot is complete or damaged, there is no torn-tail salvage — and a
// cleanly decoded image must re-decode identically, with the returned
// record count matching what the callback saw.
func FuzzSnapshotV2Decode(f *testing.F) {
	valid := fuzzSnapshotShard(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated tail
	f.Add([]byte(snapMagic))    // header only
	f.Add([]byte{})             // no header
	f.Add(fuzzSegment())        // WAL magic where snapshot magic belongs
	corrupt := append([]byte(nil), valid...)
	corrupt[len(snapMagic)+6] ^= 0xff // checksum mismatch
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		seen := 0
		n, err := decodeShardSnapshot(data, fuzzMarket, nil, func(e *walEntry) { seen++ })
		if err != nil {
			return
		}
		if n != uint64(seen) {
			t.Fatalf("decode reported %d records, callback saw %d", n, seen)
		}
		again := 0
		n2, err2 := decodeShardSnapshot(data, fuzzMarket, make(map[string]string), func(e *walEntry) { again++ })
		if err2 != nil || n2 != n || again != seen {
			t.Fatalf("re-decode diverged: %v, %d/%d vs %d/%d records", err2, n2, again, n, seen)
		}
	})
}
