package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spotlight/internal/market"
)

// concMarket builds the i-th synthetic market of the concurrency tests.
func concMarket(i int) market.SpotID {
	return market.SpotID{
		Zone:    market.Zone(fmt.Sprintf("us-east-1%c", 'a'+i%4)),
		Type:    market.InstanceType(fmt.Sprintf("c%d.%dxlarge", i/8+1, i%8+1)),
		Product: market.ProductLinux,
	}
}

// TestConcurrentShardedWrites drives concurrent appenders across many
// markets while readers hammer the merged global views, then asserts the
// merged views stay timestamp-ordered and every count is exact. Run under
// -race this is the store's concurrency contract.
func TestConcurrentShardedWrites(t *testing.T) {
	const (
		writers          = 16
		marketsPerWriter = 4
		perMarket        = 200
	)
	s := New()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: exercise merged views, per-market lookups, and aggregates
	// while writes are in flight. Their results are unasserted (the data
	// is racing); the race detector and ordering invariants below are the
	// point.
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				probes := s.Probes()
				for i := 1; i < len(probes); i++ {
					if probes[i].At.Before(probes[i-1].At) {
						t.Error("Probes() not timestamp-ordered during concurrent writes")
						return
					}
				}
				s.SpikeCrossings(time.Time{}, time.Now().Add(time.Hour))
				s.Aggregates(time.Now())
				s.ProbeCount()
			}
		}()
	}

	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	var totalRejected atomic.Int64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for m := 0; m < marketsPerWriter; m++ {
				id := concMarket(w*marketsPerWriter + m)
				app := s.Appender(id)
				for i := 0; i < perMarket; i++ {
					at := base.Add(time.Duration(i) * time.Minute)
					rejected := i%10 == 3 || i%10 == 4 // two-probe outages
					if rejected {
						totalRejected.Add(1)
					}
					app.AppendProbe(ProbeRecord{
						At: at, Market: id, Kind: ProbeOnDemand,
						Trigger: TriggerSpike, Rejected: rejected, Cost: 0.25,
					})
					app.AppendSpike(SpikeEvent{At: at, Market: id, Ratio: 0.5 + float64(i%4)})
					app.RecordPrice(PricePoint{At: at, Price: float64(i)})
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	const markets = writers * marketsPerWriter
	const total = markets * perMarket

	if got := s.ProbeCount(); got != total {
		t.Errorf("ProbeCount = %d, want %d", got, total)
	}
	if got := len(s.Probes()); got != total {
		t.Errorf("len(Probes()) = %d, want %d", got, total)
	}
	if got := len(s.Spikes()); got != total {
		t.Errorf("len(Spikes()) = %d, want %d", got, total)
	}
	if got := s.TotalProbeCost(); got != 0.25*total {
		t.Errorf("TotalProbeCost = %v, want %v", got, 0.25*total)
	}
	if got := len(s.Markets()); got != markets {
		t.Errorf("Markets = %d, want %d", got, markets)
	}

	// Merged global views must be timestamp-ordered.
	probes := s.Probes()
	for i := 1; i < len(probes); i++ {
		if probes[i].At.Before(probes[i-1].At) {
			t.Fatalf("Probes()[%d] at %v precedes [%d] at %v", i, probes[i].At, i-1, probes[i-1].At)
		}
	}
	outages := s.Outages()
	for i := 1; i < len(outages); i++ {
		if outages[i].Start.Before(outages[i-1].Start) {
			t.Fatalf("Outages() not ordered by start at %d", i)
		}
	}

	// Per-market invariants: every market got exactly its writer's
	// records, outage derivation matched the rejected pattern (indexes
	// 3,4 rejected per block of 10 -> one outage per block), and the
	// aggregates agree with the logs.
	window := base.Add(time.Duration(perMarket) * time.Minute)
	for i := 0; i < markets; i++ {
		id := concMarket(i)
		if got := len(s.Prices(id)); got != perMarket {
			t.Fatalf("Prices(%v) = %d, want %d", id, got, perMarket)
		}
		if got := len(s.SpikesFor(id, base, window)); got != perMarket {
			t.Fatalf("SpikesFor(%v) = %d, want %d", id, got, perMarket)
		}
		if got := len(s.OutagesFor(id, ProbeOnDemand)); got != perMarket/10 {
			t.Fatalf("OutagesFor(%v) = %d, want %d", id, got, perMarket/10)
		}
		// Each outage spans minutes 3..5 of its block: 2 minutes.
		if got, want := s.OutageOverlap(id, ProbeOnDemand, base, window), time.Duration(perMarket/10)*2*time.Minute; got != want {
			t.Fatalf("OutageOverlap(%v) = %v, want %v", id, got, want)
		}
	}

	rejected := s.ProbesWhere(func(r ProbeRecord) bool { return r.Rejected })
	if int64(len(rejected)) != totalRejected.Load() {
		t.Errorf("rejected probes = %d, want %d", len(rejected), totalRejected.Load())
	}

	var aggProbes, aggSpikes, aggCrossings int
	for _, a := range s.Aggregates(window) {
		aggProbes += a.TotalProbes
		aggSpikes += a.Spikes
		aggCrossings += a.SpikesAboveOD
	}
	if aggProbes != total || aggSpikes != total {
		t.Errorf("aggregate totals = %d probes %d spikes, want %d each", aggProbes, aggSpikes, total)
	}
	// Ratios cycle 0.5, 1.5, 2.5, 3.5: three of four cross the OD price.
	if want := total * 3 / 4; aggCrossings != want {
		t.Errorf("aggregate crossings = %d, want %d", aggCrossings, want)
	}
}

// TestConcurrentReadersDuringWrites pins the weaker liveness property: a
// reader that starts mid-write always sees a prefix-consistent shard (no
// torn slices), including per-market window queries.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	s := New()
	id := concMarket(0)
	base := time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	done := make(chan struct{})
	go func() {
		defer close(done)
		app := s.Appender(id)
		for i := 0; i < 5000; i++ {
			app.AppendProbe(ProbeRecord{At: base.Add(time.Duration(i) * time.Second), Market: id, Kind: ProbeSpot, Cost: 0.01})
		}
	}()
	for {
		probes := s.SpikesFor(id, base, base.Add(time.Hour))
		_ = probes
		outs := s.OutagesFor(id, ProbeSpot)
		_ = outs
		n := s.ProbeCount()
		if n > 5000 {
			t.Fatalf("ProbeCount overshot: %d", n)
		}
		select {
		case <-done:
			if got := s.ProbeCount(); got != 5000 {
				t.Fatalf("final ProbeCount = %d, want 5000", got)
			}
			return
		default:
		}
	}
}
