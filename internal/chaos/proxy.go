package chaos

import (
	"net"
	"sync"
	"time"
)

// Proxy is a misbehaving TCP relay: it listens on its own address,
// forwards every accepted connection to a target address, and injects
// wire-level faults on command — per-direction byte delay, a total
// blackhole, and mid-flight kills of every open connection. Splice it
// into a replication path (follower -> proxy -> leader) to exercise
// stream death and reconnect without touching either endpoint.
type Proxy struct {
	ln     net.Listener
	target string

	mu        sync.Mutex
	delay     time.Duration
	blackhole bool
	conns     map[net.Conn]struct{}
	closed    bool

	wg sync.WaitGroup
}

// NewProxy starts a proxy on addr ("127.0.0.1:0" for ephemeral)
// relaying to target ("host:port").
func NewProxy(addr, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — point clients here.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetDelay sleeps d before relaying each read chunk, in both
// directions. 0 restores transparent relaying.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// SetBlackhole makes the proxy refuse new connections and drop
// existing ones as soon as they next carry bytes — the shape of a
// network partition that a peer only notices when it tries to talk.
func (p *Proxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
}

// KillConnections resets every open relayed connection — both sides see
// the peer vanish mid-flight. New connections are still accepted
// (unless blackholed), which is exactly a flaky-network stream kill.
func (p *Proxy) KillConnections() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close shuts the proxy down: the listener closes, every open
// connection resets, and the relay goroutines drain.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.KillConnections()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.blackhole || p.closed {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.mu.Unlock()
		p.wg.Add(1)
		go p.relay(conn)
	}
}

// relay connects to the target and pumps bytes both ways until either
// side (or a KillConnections) closes.
func (p *Proxy) relay(client net.Conn) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		server.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	p.mu.Unlock()

	var pumps sync.WaitGroup
	pumps.Add(2)
	pump := func(dst, src net.Conn) {
		defer pumps.Done()
		buf := make([]byte, 32<<10)
		for {
			n, err := src.Read(buf)
			if n > 0 {
				p.mu.Lock()
				d, hole := p.delay, p.blackhole
				p.mu.Unlock()
				if hole {
					break // partition: the bytes never arrive
				}
				if d > 0 {
					time.Sleep(d)
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if err != nil {
				break
			}
		}
		// Half-close so the peer's reader sees EOF promptly.
		if tc, ok := dst.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}
	go pump(server, client)
	go pump(client, server)
	pumps.Wait()

	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, server)
	p.mu.Unlock()
	client.Close()
	server.Close()
}
