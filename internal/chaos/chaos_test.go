package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// chaosClient wires a test server behind a fresh Transport.
func chaosClient(t *testing.T, seed int64) (*httptest.Server, *Transport, *http.Client) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 4096))
	}))
	t.Cleanup(srv.Close)
	tr := NewTransport(nil, seed)
	return srv, tr, &http.Client{Transport: tr}
}

func TestTransportPassThrough(t *testing.T) {
	srv, _, hc := chaosClient(t, 1)
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("clean transport failed: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != 4096 {
		t.Fatalf("clean transport body: %d bytes, err %v", len(body), err)
	}
}

func TestTransportResetRate(t *testing.T) {
	srv, tr, hc := chaosClient(t, 2)
	tr.SetResetRate(1)
	if _, err := hc.Get(srv.URL); err == nil {
		t.Fatal("reset rate 1.0 let a request through")
	}
	tr.SetResetRate(0)
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("after clearing reset rate: %v", err)
	}
	resp.Body.Close()
}

func TestTransportServerErrors(t *testing.T) {
	srv, tr, hc := chaosClient(t, 3)
	tr.SetServerErrorRate(1)
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("synthetic 500 should be an HTTP answer, got transport error %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("got status %d, want 500", resp.StatusCode)
	}
}

func TestTransportTruncation(t *testing.T) {
	srv, tr, hc := chaosClient(t, 4)
	tr.SetTruncateRate(1)
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("truncated request should connect: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatalf("truncated body read %d bytes without error", len(body))
	}
	if len(body) >= 4096 {
		t.Fatalf("truncation served the whole %d-byte body", len(body))
	}
}

func TestTransportKillStreams(t *testing.T) {
	srv, tr, hc := chaosClient(t, 5)
	tr.KillStreams(1)
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("killed stream should connect: %v", err)
	}
	// First read succeeds, then the stream dies.
	buf := make([]byte, 10)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first read of killed stream: %v", err)
	}
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("killed stream read to EOF without error")
	}
	resp.Body.Close()

	// The kill budget is consumed: the next request is clean.
	resp, err = hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("post-kill request: %v", err)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatalf("post-kill body: %v", err)
	}
	resp.Body.Close()
}

func TestTransportDelay(t *testing.T) {
	srv, tr, hc := chaosClient(t, 6)
	tr.SetDelay(50*time.Millisecond, 0)
	start := time.Now()
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("delayed request: %v", err)
	}
	resp.Body.Close()
	if took := time.Since(start); took < 50*time.Millisecond {
		t.Fatalf("delayed request returned in %v, want >= 50ms", took)
	}
}

func TestProxyRelaysAndKills(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello")
	}))
	defer srv.Close()

	target := strings.TrimPrefix(srv.URL, "http://")
	p, err := NewProxy("127.0.0.1:0", target)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	defer p.Close()

	// Through the proxy, the server answers normally.
	resp, err := http.Get("http://" + p.Addr())
	if err != nil {
		t.Fatalf("through proxy: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello" {
		t.Fatalf("through proxy got %q", body)
	}

	// Blackholed, new connections die.
	p.SetBlackhole(true)
	hc := &http.Client{Timeout: time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	if _, err := hc.Get("http://" + p.Addr()); err == nil {
		t.Fatal("blackholed proxy served a request")
	}
	p.SetBlackhole(false)

	// Healed, it relays again.
	resp, err = hc.Get("http://" + p.Addr())
	if err != nil {
		t.Fatalf("healed proxy: %v", err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
}
