// Package chaos is SpotLight's fault-injection toolkit: an
// http.RoundTripper that corrupts the request path (latency, connection
// resets, 5xx answers, truncated bodies, killed streams) and a TCP
// proxy that sits between two real listeners and misbehaves on the wire
// (added delay, blackholes, mid-flight connection kills).
//
// Both are deterministic-by-configuration and concurrency-safe, built
// for the failure-domain tests and the `spotload -chaos` smoke: boot a
// real leader/follower/gateway fleet in-process, wrap the gateway's
// upstream transport in a Transport, splice a Proxy into the follower's
// replication path, and turn the dials mid-load. Nothing in this
// package is imported by production code paths — commands wire it only
// behind explicit chaos flags.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Transport wraps an inner http.RoundTripper with configurable faults.
// The zero value (no faults) is a transparent pass-through. All knobs
// may be changed concurrently with in-flight requests.
type Transport struct {
	// Inner handles the real round trip (nil: http.DefaultTransport).
	Inner http.RoundTripper

	mu    sync.Mutex
	rng   *rand.Rand
	delay time.Duration // fixed extra latency per request
	jit   time.Duration // plus uniform random extra in [0, jit)
	reset float64       // probability of failing the request outright
	err5  float64       // probability of answering 500 without forwarding
	trunc float64       // probability of truncating the response body
	kills int64         // pending stream kills (consumed one per request)
}

// NewTransport wraps inner (nil: http.DefaultTransport) with the given
// seed driving every probabilistic choice.
func NewTransport(inner http.RoundTripper, seed int64) *Transport {
	return &Transport{Inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetDelay adds fixed latency plus a uniform random extra in [0, jitter)
// to every request.
func (t *Transport) SetDelay(d, jitter time.Duration) {
	t.mu.Lock()
	t.delay, t.jit = d, jitter
	t.mu.Unlock()
}

// SetResetRate makes each request fail outright ("connection reset")
// with probability p — the transport-level error a killed TCP
// connection produces.
func (t *Transport) SetResetRate(p float64) {
	t.mu.Lock()
	t.reset = p
	t.mu.Unlock()
}

// SetServerErrorRate makes each request answer a synthetic 500 with
// probability p, without reaching the real server.
func (t *Transport) SetServerErrorRate(p float64) {
	t.mu.Lock()
	t.err5 = p
	t.mu.Unlock()
}

// SetTruncateRate makes each response body end early (half its bytes,
// then an unexpected EOF) with probability p.
func (t *Transport) SetTruncateRate(p float64) {
	t.mu.Lock()
	t.trunc = p
	t.mu.Unlock()
}

// KillStreams arms n one-shot stream kills: the next n responses get
// bodies that die with a connection-reset error after the first read —
// how an SSE stream breaks when its peer vanishes.
func (t *Transport) KillStreams(n int) {
	t.mu.Lock()
	t.kills += int64(n)
	t.mu.Unlock()
}

// errReset is the synthetic transport failure.
type errReset struct{ op string }

func (e errReset) Error() string { return "chaos: " + e.op + ": connection reset by peer" }

// Timeout and Temporary mark the fault retryable the way real resets
// are.
func (e errReset) Timeout() bool   { return false }
func (e errReset) Temporary() bool { return true }

// roll consumes randomness and fault budgets under the lock, returning
// this request's fate.
func (t *Transport) roll() (sleep time.Duration, reset, err5, trunc, kill bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		t.rng = rand.New(rand.NewSource(1))
	}
	sleep = t.delay
	if t.jit > 0 {
		sleep += time.Duration(t.rng.Int63n(int64(t.jit)))
	}
	p := t.rng.Float64()
	switch {
	case p < t.reset:
		reset = true
	case p < t.reset+t.err5:
		err5 = true
	case p < t.reset+t.err5+t.trunc:
		trunc = true
	}
	if t.kills > 0 {
		t.kills--
		kill = true
	}
	return
}

// RoundTrip applies the armed faults around the inner round trip.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	sleep, reset, err5, trunc, kill := t.roll()
	if sleep > 0 {
		select {
		case <-time.After(sleep):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if reset {
		return nil, errReset{op: req.Method + " " + req.URL.Path}
	}
	if err5 {
		return &http.Response{
			StatusCode: http.StatusInternalServerError,
			Status:     "500 Internal Server Error (chaos)",
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    http.NoBody,
			Request: req,
		}, nil
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch {
	case kill:
		resp.Body = &killedBody{inner: resp.Body}
	case trunc:
		resp.Body = &truncatedBody{inner: resp.Body, budget: resp.ContentLength / 2}
	}
	return resp, nil
}

// killedBody lets one read through (so streaming consumers get going)
// and then dies with a reset.
type killedBody struct {
	inner io.ReadCloser
	reads int
}

func (b *killedBody) Read(p []byte) (int, error) {
	if b.reads > 0 {
		b.inner.Close()
		return 0, errReset{op: "read"}
	}
	b.reads++
	n, err := b.inner.Read(p)
	if err != nil {
		return n, err
	}
	return n, nil
}

func (b *killedBody) Close() error { return b.inner.Close() }

// truncatedBody serves only the first budget bytes, then reports an
// unexpected EOF (a cut-off download). A non-positive budget (unknown
// Content-Length) truncates after the first read.
type truncatedBody struct {
	inner  io.ReadCloser
	budget int64
	served int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.budget > 0 && b.served >= b.budget {
		b.inner.Close()
		return 0, io.ErrUnexpectedEOF
	}
	if b.budget > 0 && int64(len(p)) > b.budget-b.served {
		p = p[:b.budget-b.served]
	}
	n, err := b.inner.Read(p)
	b.served += int64(n)
	if err == nil && b.budget <= 0 && b.served > 0 {
		b.inner.Close()
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// String renders the live fault configuration (for chaos reports).
func (t *Transport) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return fmt.Sprintf("delay=%v+%v reset=%.3f err5=%.3f trunc=%.3f kills=%d",
		t.delay, t.jit, t.reset, t.err5, t.trunc, t.kills)
}
