// Package stats provides the small statistics toolkit used across the
// SpotLight reproduction: streaming moments, empirical CDFs, histograms,
// correlation, and the normal/lognormal quantile functions that power the
// simulator's parametric spot-market bid curve.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that need at least one sample.
var ErrEmpty = errors.New("stats: no samples")

// Online accumulates streaming mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// N returns the number of samples added.
func (o *Online) N() int64 { return o.n }

// Mean returns the sample mean, or 0 with no samples.
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest sample, or 0 with no samples.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample, or 0 with no samples.
func (o *Online) Max() float64 { return o.max }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// samples.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs and ys. It returns 0 when either series has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	var mx, my Online
	for i := range xs {
		mx.Add(xs[i])
		my.Add(ys[i])
	}
	sx, sy := mx.StdDev(), my.StdDev()
	if sx == 0 || sy == 0 {
		return 0, nil
	}
	cov := 0.0
	for i := range xs {
		cov += (xs[i] - mx.Mean()) * (ys[i] - my.Mean())
	}
	cov /= float64(len(xs) - 1)
	return cov / (sx * sy), nil
}

// ECDF is an empirical cumulative distribution function built from a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (copied, then sorted).
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the number of samples underlying the ECDF.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Quantile returns the smallest sample x with P(X <= x) >= q, clamping q to
// [0, 1].
func (e *ECDF) Quantile(q float64) (float64, error) {
	if len(e.sorted) == 0 {
		return 0, ErrEmpty
	}
	q = Clamp(q, 0, 1)
	idx := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return e.sorted[idx], nil
}

// Histogram counts samples into fixed-width bins over [Lo, Hi); samples
// outside the range land in the under/overflow counters.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int64
	Underflow int64
	Overflow  int64
	width     float64
}

// NewHistogram creates a histogram with bins equal-width bins spanning
// [lo, hi). It panics if bins <= 0 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{
		Lo:     lo,
		Hi:     hi,
		Counts: make([]int64, bins),
		width:  (hi - lo) / float64(bins),
	}
}

// Add counts one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		idx := int((x - h.Lo) / h.width)
		if idx >= len(h.Counts) { // guard against float rounding at the edge
			idx = len(h.Counts) - 1
		}
		h.Counts[idx]++
	}
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
