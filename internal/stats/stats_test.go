package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOnlineMeanVariance(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if got := o.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean() = %v, want 5", got)
	}
	// Unbiased variance of the classic sample {2,4,4,4,5,5,7,9} is 32/7.
	if got, want := o.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance() = %v, want %v", got, want)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", o.Min(), o.Max())
	}
	if o.N() != 8 {
		t.Errorf("N() = %d, want 8", o.N())
	}
}

func TestOnlineSingleSample(t *testing.T) {
	var o Online
	o.Add(3.5)
	if o.Variance() != 0 {
		t.Errorf("Variance with one sample = %v, want 0", o.Variance())
	}
	if o.Min() != 3.5 || o.Max() != 3.5 {
		t.Errorf("Min/Max = %v/%v, want 3.5/3.5", o.Min(), o.Max())
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v) error: %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile(nil) succeeded, want error")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("Percentile(p=-1) succeeded, want error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("Percentile(p=101) succeeded, want error")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", r)
	}
	for i := range ys {
		ys[i] = -ys[i]
	}
	r, _ = Pearson(xs, ys)
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson (negated) = %v, want -1", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("Pearson(constant, x) = %v, want 0", r)
	}
}

func TestPearsonLengthMismatch(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("Pearson with mismatched lengths succeeded, want error")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	q, err := e.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 2 {
		t.Errorf("Quantile(0.5) = %v, want 2", q)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(1) != 0 {
		t.Errorf("empty ECDF At = %v, want 0", e.At(1))
	}
	if _, err := e.Quantile(0.5); err != ErrEmpty {
		t.Errorf("empty ECDF Quantile err = %v, want ErrEmpty", err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow)
	}
	wantCounts := []int64{2, 1, 1, 0, 1}
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], want)
		}
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if got := h.BinCenter(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
	}
	for _, tt := range tests {
		if got := NormCDF(tt.x); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("NormCDF(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestNormInvKnownValues(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.841344746068543, 1},
	}
	for _, tt := range tests {
		if got := NormInv(tt.p); math.Abs(got-tt.want) > 1e-8 {
			t.Errorf("NormInv(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsInf(NormInv(0), -1) || !math.IsInf(NormInv(1), 1) {
		t.Error("NormInv endpoints should be infinite")
	}
	if !math.IsNaN(NormInv(math.NaN())) {
		t.Error("NormInv(NaN) should be NaN")
	}
}

// Property: NormCDF(NormInv(p)) == p across the open unit interval.
func TestNormInvRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p < 1e-9 || p > 1-1e-9 {
			return true // skip the extremes where CDF saturates
		}
		return math.Abs(NormCDF(NormInv(p))-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NormInv is monotone nondecreasing.
func TestNormInvMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		p1 := math.Abs(math.Mod(a, 1))
		p2 := math.Abs(math.Mod(b, 1))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return NormInv(p1) <= NormInv(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ECDF.At is monotone and bounded in [0, 1].
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		e := NewECDF(xs)
		if a > b {
			a, b = b, a
		}
		fa, fb := e.At(a), e.At(b)
		return fa >= 0 && fb <= 1 && fa <= fb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Online mean stays within [min, max] of the samples.
func TestOnlineMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var o Online
		ok := true
		for _, x := range xs {
			// Skip values whose pairwise differences overflow float64;
			// Welford's recurrence is only defined when x-mean is finite.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
			o.Add(x)
		}
		if o.N() > 0 {
			ok = o.Mean() >= o.Min()-1e-9 && o.Mean() <= o.Max()+1e-9
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LogNormal quantile and CDF invert each other.
func TestLogNormalRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		q := math.Abs(math.Mod(raw, 1))
		if q < 1e-6 || q > 1-1e-6 {
			return true
		}
		const mu, sigma = -1.2, 0.6
		x := LogNormalQuantile(mu, sigma, q)
		return math.Abs(LogNormalCDF(mu, sigma, x)-q) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogNormalCDFNonPositive(t *testing.T) {
	if got := LogNormalCDF(0, 1, 0); got != 0 {
		t.Errorf("LogNormalCDF(x=0) = %v, want 0", got)
	}
	if got := LogNormalCDF(0, 1, -3); got != 0 {
		t.Errorf("LogNormalCDF(x<0) = %v, want 0", got)
	}
}
