package spotcheck

import (
	"math"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
)

var (
	mkt     = market.SpotID{Zone: "us-east-1e", Type: "d2.2xlarge", Product: market.ProductLinux}
	fallMkt = market.SpotID{Zone: "us-east-1e", Type: "m4.large", Product: market.ProductLinux}
	t0      = time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
	odPrice = 1.0
)

// scriptedPlatform answers availability from scripted outage windows.
type scriptedPlatform struct {
	outages map[market.SpotID][][2]time.Time
}

func (p *scriptedPlatform) ODAvailable(m market.SpotID, t time.Time) bool {
	for _, o := range p.outages[m] {
		if !t.Before(o[0]) && t.Before(o[1]) {
			return false
		}
	}
	return true
}

// trace builds a step-function price history from (offsetHours, price)
// pairs.
func trace(pairs ...float64) []store.PricePoint {
	var out []store.PricePoint
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, store.PricePoint{
			At:    t0.Add(time.Duration(pairs[i] * float64(time.Hour))),
			Price: pairs[i+1],
		})
	}
	return out
}

func TestValidation(t *testing.T) {
	plat := &scriptedPlatform{}
	bad := []Config{
		{},                                     // empty trace
		{Trace: trace(0, 0.5)},                 // nil platform
		{Trace: trace(0, 0.5), Platform: plat}, // zero od price
		{Trace: trace(0, 0.5), Platform: plat, ODPrice: 1, From: t0, To: t0}, // empty window
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestNoRevocationsFullAvailability(t *testing.T) {
	res, err := Run(Config{
		Market:   mkt,
		ODPrice:  odPrice,
		Trace:    trace(0, 0.3, 24, 0.3),
		Platform: &scriptedPlatform{},
		To:       t0.Add(24 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Revocations != 0 {
		t.Errorf("revocations = %d, want 0", res.Revocations)
	}
	if math.Abs(res.AvailabilityPct-100) > 1e-9 {
		t.Errorf("availability = %v, want 100", res.AvailabilityPct)
	}
	if math.Abs(res.OnSpotFraction-1) > 1e-9 {
		t.Errorf("on-spot fraction = %v, want 1", res.OnSpotFraction)
	}
}

func TestRevocationWithAvailableFallback(t *testing.T) {
	// Price above od during hours [6, 8): one revocation, fallback works,
	// downtime is only the two migration pauses.
	res, err := Run(Config{
		Market:   mkt,
		ODPrice:  odPrice,
		Trace:    trace(0, 0.3, 6, 1.5, 8, 0.3),
		Platform: &scriptedPlatform{},
		To:       t0.Add(24 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Revocations != 1 {
		t.Errorf("revocations = %d, want 1", res.Revocations)
	}
	if res.FailedFailovers != 0 {
		t.Errorf("failed failovers = %d, want 0", res.FailedFailovers)
	}
	if res.Downtime != 2*time.Second {
		t.Errorf("downtime = %v, want 2s (two migrations)", res.Downtime)
	}
	if res.AvailabilityPct < 99.99 {
		t.Errorf("availability = %v, want ~100", res.AvailabilityPct)
	}
	// ~2h of 24h on-demand: on-spot fraction ~22/24.
	if math.Abs(res.OnSpotFraction-22.0/24) > 0.01 {
		t.Errorf("on-spot fraction = %v, want ~%v", res.OnSpotFraction, 22.0/24)
	}
}

func TestRevocationDuringODOutage(t *testing.T) {
	// The paper's core finding: the spot spike [6, 8) coincides with an
	// on-demand outage [6, 7): the VM is down until the outage ends.
	plat := &scriptedPlatform{outages: map[market.SpotID][][2]time.Time{
		mkt: {{t0.Add(6 * time.Hour), t0.Add(7 * time.Hour)}},
	}}
	res, err := Run(Config{
		Market:   mkt,
		ODPrice:  odPrice,
		Trace:    trace(0, 0.3, 6, 1.5, 8, 0.3),
		Platform: plat,
		To:       t0.Add(24 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedFailovers != 1 {
		t.Errorf("failed failovers = %d, want 1", res.FailedFailovers)
	}
	// Down for the ~1h od outage out of 24h: availability ~95.8%.
	wantAvail := 100 * (1 - 1.0/24)
	if math.Abs(res.AvailabilityPct-wantAvail) > 0.5 {
		t.Errorf("availability = %.2f, want ~%.2f", res.AvailabilityPct, wantAvail)
	}
}

func TestSpotLightFallbackRestoresAvailability(t *testing.T) {
	// Same coincident outage, but the fallback policy picks an
	// uncorrelated market that stays available.
	plat := &scriptedPlatform{outages: map[market.SpotID][][2]time.Time{
		mkt: {{t0.Add(6 * time.Hour), t0.Add(7 * time.Hour)}},
	}}
	res, err := Run(Config{
		Market:   mkt,
		ODPrice:  odPrice,
		Trace:    trace(0, 0.3, 6, 1.5, 8, 0.3),
		Platform: plat,
		Fallback: func(time.Time) market.SpotID { return fallMkt },
		To:       t0.Add(24 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedFailovers != 0 {
		t.Errorf("failed failovers = %d, want 0 with uncorrelated fallback", res.FailedFailovers)
	}
	if res.AvailabilityPct < 99.99 {
		t.Errorf("availability = %v, want ~100", res.AvailabilityPct)
	}
}

func TestDownVMRecoversViaSpot(t *testing.T) {
	// OD stays out for the whole spike; the VM must come back when the
	// spot price drops below the bid.
	plat := &scriptedPlatform{outages: map[market.SpotID][][2]time.Time{
		mkt: {{t0, t0.Add(24 * time.Hour)}},
	}}
	res, err := Run(Config{
		Market:   mkt,
		ODPrice:  odPrice,
		Trace:    trace(0, 0.3, 6, 1.5, 8, 0.3),
		Platform: plat,
		To:       t0.Add(24 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Down exactly during the 2-hour spike.
	wantAvail := 100 * (1 - 2.0/24)
	if math.Abs(res.AvailabilityPct-wantAvail) > 0.5 {
		t.Errorf("availability = %.2f, want ~%.2f", res.AvailabilityPct, wantAvail)
	}
	if res.OnSpotFraction < 0.9 {
		t.Errorf("on-spot fraction = %v, want >0.9", res.OnSpotFraction)
	}
}

func TestMeanHourlyCostNearSpot(t *testing.T) {
	// The paper's cost claim: mostly-spot operation keeps the mean
	// hourly cost near the spot price, far below on-demand.
	res, err := Run(Config{
		Market:   mkt,
		ODPrice:  odPrice,
		Trace:    trace(0, 0.3, 6, 1.5, 8, 0.3), // 2h above od out of 24h
		Platform: &scriptedPlatform{},
		To:       t0.Add(24 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	// 22h at $0.3 + 2h at $1.0 over 24h = $0.358/h.
	want := (22*0.3 + 2*1.0) / 24
	if math.Abs(res.MeanHourlyCost-want) > 0.02 {
		t.Errorf("mean hourly cost = %v, want ~%v", res.MeanHourlyCost, want)
	}
	if res.MeanHourlyCost >= odPrice {
		t.Errorf("mean hourly cost %v not below on-demand %v", res.MeanHourlyCost, odPrice)
	}
}

func TestMultipleRevocations(t *testing.T) {
	res, err := Run(Config{
		Market:  mkt,
		ODPrice: odPrice,
		Trace: trace(
			0, 0.3, 2, 1.5, 3, 0.3, // spike 1
			10, 2.0, 11, 0.3, // spike 2
			20, 5.0, 21, 0.3, // spike 3
		),
		Platform: &scriptedPlatform{},
		To:       t0.Add(24 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Revocations != 3 {
		t.Errorf("revocations = %d, want 3", res.Revocations)
	}
}
