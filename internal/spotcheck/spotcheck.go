// Package spotcheck reproduces the paper's first case study (§6.1):
// SpotCheck, a derivative IaaS platform that hosts nested VMs on spot
// servers and live-migrates them to on-demand servers when the spot price
// rises above the on-demand price. SpotCheck assumes the on-demand
// fallback is always obtainable; the paper shows that assumption fails
// exactly when it matters (revocations coincide with on-demand outages),
// dropping availability from four nines to ~72-92% (Fig 6.1) — and that
// choosing an uncorrelated fallback market with SpotLight's data restores
// it to near 100%.
package spotcheck

import (
	"errors"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
)

// Platform answers on-demand obtainability questions; in studies it is
// backed by the simulator's ground truth.
type Platform interface {
	// ODAvailable reports whether an on-demand instance of m's type was
	// obtainable at instant t.
	ODAvailable(m market.SpotID, t time.Time) bool
}

// FallbackPolicy selects the on-demand market to migrate to when the spot
// server is revoked at instant t. Returning the VM's own market is the
// paper's baseline SpotCheck behaviour.
type FallbackPolicy func(t time.Time) market.SpotID

// EventSteeredFallback builds a FallbackPolicy that reacts to pushed
// SpotLight events instead of polling: signaled(t) reports whether any
// relevant event (a revocation or outage in the fallback's scope —
// typically drained from a store feed subscription or a
// pkg/client.Watch stream) arrived since the last decision at instant t,
// and recompute asks SpotLight for the current best uncorrelated target.
// The policy recomputes on first use and again only when signaled — the
// SpotCheck control loop then refreshes its steering the moment the
// information service learns something, not on a timer.
func EventSteeredFallback(signaled func(t time.Time) bool, recompute func(t time.Time) market.SpotID) FallbackPolicy {
	var cached market.SpotID
	have := false
	return func(t time.Time) market.SpotID {
		if signaled(t) || !have {
			cached = recompute(t)
			have = true
		}
		return cached
	}
}

// Config parameterizes one SpotCheck availability simulation.
type Config struct {
	// Market hosts the nested VM's spot server.
	Market market.SpotID
	// ODPrice is the market's on-demand price; the VM bids exactly this
	// (SpotCheck migrates whenever spot > on-demand).
	ODPrice float64
	// Trace is the market's published spot price history (step function).
	Trace []store.PricePoint
	// Platform answers fallback obtainability.
	Platform Platform
	// Fallback picks the migration target; nil means the same market
	// (the paper's baseline).
	Fallback FallbackPolicy
	// MigrationPause is the nested VM pause per migration (the bounded
	// final memory copy; §6.1). Default 1 second.
	MigrationPause time.Duration
	// Tick is the evaluation granularity. Default 1 minute.
	Tick time.Duration
	// From/To bound the simulation; zero values use the trace extent.
	From, To time.Time
}

// Result is the outcome of one SpotCheck simulation.
type Result struct {
	Market market.SpotID
	// AvailabilityPct is uptime as a percentage of the window.
	AvailabilityPct float64
	// Revocations is how many times the spot server was revoked.
	Revocations int
	// FailedFailovers is how many revocations found the fallback
	// on-demand market unavailable — the paper's key observation.
	FailedFailovers int
	Downtime        time.Duration
	Window          time.Duration
	// OnSpotFraction is the share of time served from spot servers
	// (the cost story: high means near-spot prices).
	OnSpotFraction float64
	// MeanHourlyCost is the time-weighted price paid per hour: spot
	// price while on spot, on-demand price while failed over. The
	// paper's cost claim ("the availability of on-demand servers for a
	// cost near that of spot servers") holds when this sits well below
	// the on-demand price.
	MeanHourlyCost float64
}

// vmState is where the nested VM currently runs.
type vmState int

const (
	onSpot vmState = iota + 1
	onDemand
	down
)

// Run simulates the nested VM over the trace window.
func Run(cfg Config) (Result, error) {
	if len(cfg.Trace) == 0 {
		return Result{}, errors.New("spotcheck: empty price trace")
	}
	if cfg.Platform == nil {
		return Result{}, errors.New("spotcheck: nil platform")
	}
	if cfg.ODPrice <= 0 {
		return Result{}, errors.New("spotcheck: non-positive on-demand price")
	}
	if cfg.MigrationPause <= 0 {
		cfg.MigrationPause = time.Second
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Minute
	}
	if cfg.From.IsZero() {
		cfg.From = cfg.Trace[0].At
	}
	if cfg.To.IsZero() {
		cfg.To = cfg.Trace[len(cfg.Trace)-1].At
	}
	if !cfg.To.After(cfg.From) {
		return Result{}, errors.New("spotcheck: empty window")
	}
	fallback := cfg.Fallback
	if fallback == nil {
		fallback = func(time.Time) market.SpotID { return cfg.Market }
	}

	res := Result{Market: cfg.Market, Window: cfg.To.Sub(cfg.From)}
	var (
		state     = onSpot
		spotTime  time.Duration
		traceIdx  int
		spotPrice = cfg.Trace[0].Price
		totalCost float64
		tickHours = cfg.Tick.Hours()
	)
	priceAt := func(t time.Time) float64 {
		for traceIdx+1 < len(cfg.Trace) && !cfg.Trace[traceIdx+1].At.After(t) {
			traceIdx++
		}
		return cfg.Trace[traceIdx].Price
	}

	migrate := func(t time.Time) {
		// A bounded-time live migration pauses the VM briefly.
		res.Downtime += cfg.MigrationPause
	}

	for t := cfg.From; t.Before(cfg.To); t = t.Add(cfg.Tick) {
		spotPrice = priceAt(t)
		switch state {
		case onSpot:
			spotTime += cfg.Tick
			totalCost += spotPrice * tickHours
			if spotPrice > cfg.ODPrice {
				// Revocation: the spot price crossed the bid.
				res.Revocations++
				target := fallback(t)
				if cfg.Platform.ODAvailable(target, t) {
					migrate(t)
					state = onDemand
				} else {
					res.FailedFailovers++
					state = down
					res.Downtime += cfg.Tick
				}
			}
		case onDemand:
			totalCost += cfg.ODPrice * tickHours
			if spotPrice <= cfg.ODPrice {
				// Spot is affordable again; migrate back.
				migrate(t)
				state = onSpot
				spotTime += cfg.Tick
			}
		case down:
			switch {
			case spotPrice <= cfg.ODPrice:
				// The spot tier recovered first: resume there.
				migrate(t)
				state = onSpot
				spotTime += cfg.Tick
			case cfg.Platform.ODAvailable(fallback(t), t):
				migrate(t)
				state = onDemand
			default:
				res.Downtime += cfg.Tick
			}
		}
	}

	if res.Downtime > res.Window {
		res.Downtime = res.Window
	}
	res.AvailabilityPct = 100 * (1 - float64(res.Downtime)/float64(res.Window))
	res.OnSpotFraction = float64(spotTime) / float64(res.Window)
	if h := res.Window.Hours(); h > 0 {
		res.MeanHourlyCost = totalCost / h
	}
	return res, nil
}
