package daemon

import (
	"context"
	"strings"
	"testing"
	"time"

	"spotlight/pkg/client"
)

// Leader failover through the public surface: promotion is refused
// while the leader still streams (the split-brain guard), succeeds once
// the leader is dead, resumes the simulation so the store generation
// keeps climbing, and refuses to run twice.
func TestPromoteFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon failover test skipped in -short mode")
	}
	leader, err := Start(Options{
		Addr: "127.0.0.1:0", Seed: 7, Tick: 5 * time.Minute, Speed: 3000,
		MaxWatchers: 8,
	})
	if err != nil {
		t.Fatalf("start leader: %v", err)
	}
	leaderClosed := false
	defer func() {
		if !leaderClosed {
			leader.Close()
		}
	}()
	waitForProbes(t, leader.Addr())

	follower, err := Start(Options{
		Addr: "127.0.0.1:0", Follow: "http://" + leader.Addr(),
		FollowBackfill: 24 * time.Hour, FollowTimeout: 15 * time.Second,
		FollowStaleAfter: 500 * time.Millisecond, MaxWatchers: 8,
		Tick: 5 * time.Minute, Speed: 3000, Seed: 7,
	})
	if err != nil {
		t.Fatalf("start follower: %v", err)
	}
	defer follower.Close()
	fc, err := client.New("http://"+follower.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A leader is not promotable at all.
	if err := leader.Promote(false); err == nil || !strings.Contains(err.Error(), "leader") {
		t.Errorf("promoting the leader itself = %v, want a refusal naming it a leader", err)
	}

	// While the leader still streams, promotion without force trips the
	// split-brain guard.
	if _, err := fc.Promote(ctx, false); err == nil {
		t.Fatal("promote with live leader succeeded, want split-brain refusal")
	} else if !strings.Contains(err.Error(), "split-brain") {
		t.Errorf("split-brain refusal reads %q, want it to name the guard", err)
	}

	// Kill the leader and wait for the follower to notice the silence.
	if err := leader.Close(); err != nil {
		t.Fatalf("close leader: %v", err)
	}
	leaderClosed = true
	deadline := time.Now().Add(15 * time.Second)
	for {
		h, err := fc.Health(ctx)
		if err == nil && h.Replication != nil && !h.Replication.Connected {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reported the leader dead (health %+v, err %v)", h, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	h, err := fc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	genBefore := h.Store.Generation

	// Now promotion goes through.
	pr, err := fc.Promote(ctx, false)
	if err != nil {
		t.Fatalf("promote after leader death: %v", err)
	}
	if !pr.Promoted || pr.Now.IsZero() {
		t.Fatalf("promote response = %+v, want promoted with a resumed clock", pr)
	}

	// The promoted node runs its own study: the generation must climb
	// past everything replicated from the old leader.
	deadline = time.Now().Add(20 * time.Second)
	for {
		h, err := fc.Health(ctx)
		if err == nil && h.Store.Generation > genBefore {
			if h.Status != "ok" {
				t.Errorf("promoted node health = %q, want ok", h.Status)
			}
			if h.Replication == nil || h.Replication.Role != "promoted" {
				t.Errorf("promoted node replication = %+v, want role promoted", h.Replication)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("promoted node never advanced past generation %d (health %+v, err %v)", genBefore, h, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Promotion is one-way; a second attempt errors.
	if _, err := fc.Promote(ctx, true); err == nil || !strings.Contains(err.Error(), "already") {
		t.Errorf("second promote = %v, want already-promoted refusal", err)
	}
}
