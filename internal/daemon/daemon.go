// Package daemon assembles one running SpotLight node: store, query API,
// HTTP server, and either the simulated study that feeds the store
// (leader mode) or a replication subscription to another node (follower
// mode). Command spotlightd is a thin flag wrapper over Start; tests and
// the spotload harness embed nodes directly.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/market"
	"spotlight/internal/obs"
	"spotlight/internal/query"
	"spotlight/internal/replica"
	"spotlight/internal/store"
	"spotlight/pkg/api"
)

// Options configure one node. The zero value is not runnable; commands
// fill it from flags, tests directly.
type Options struct {
	// Addr is the HTTP listen address (":0" for an ephemeral port).
	Addr string
	// Seed / Tick / Speed shape the leader's simulated study: Tick of
	// simulated time passes every Tick/Speed of wall time.
	Seed  uint64
	Tick  time.Duration
	Speed float64
	// DataDir makes the node's store durable (WAL + snapshots); empty
	// keeps it in memory. On a leader the study resumes from the
	// recovered record; on a follower the replica replays locally and
	// resumes the leader's stream from its durable cursor instead of
	// re-tailing the backfill window.
	DataDir string
	// SnapInterval is the simulated time between snapshots (DataDir only).
	SnapInterval time.Duration
	// MaxWatchers caps concurrent /v2/watch subscribers (0: default).
	MaxWatchers int

	// Follow switches the node into follower mode: no simulation runs,
	// and the store is built by tailing the leader at this base URL over
	// /v2/watch (see internal/replica). The node serves the same
	// read-only query surface with the leader's ETag salt and clock.
	Follow string
	// FollowBackfill asks the leader for that much trailing history on
	// first attach (bounded server-side to 24h). Zero means live-only.
	FollowBackfill time.Duration
	// FollowTimeout bounds the wait for the leader's first hello and
	// clock before Start fails (default 30s).
	FollowTimeout time.Duration
	// FollowStaleAfter is how long without stream progress before the
	// follower reports Connected: false (default 45s; see
	// replica.Config.StaleAfter). Failover tests shorten it so a dead
	// leader is detected quickly.
	FollowStaleAfter time.Duration

	// Metrics, when set, is the node's observability registry: the
	// store, the query API, and (on a follower) the replicator register
	// their series into it, and the HTTP surface serves GET /metrics
	// (Prometheus text) and GET /v2/metrics (JSON). One registry per
	// node — its series describe this process only. Nil leaves the node
	// uninstrumented at zero cost.
	Metrics *obs.Registry
	// SlowQuery, when positive, stage-traces every query request and
	// logs the ones slower than this threshold (see query.SetSlowQuery).
	SlowQuery time.Duration
	// Logger receives the node's structured log lines (slow queries);
	// nil falls back to slog.Default.
	Logger *slog.Logger
}

// Daemon is one running node. Close is idempotent.
type Daemon struct {
	// StoreDesc is a human-readable suffix describing the store ("",
	// ", durable store DIR (...)", or ", following URL").
	StoreDesc string

	opts Options
	db   *store.Store     // follower mode only (leaders keep theirs in st.DB)
	pers *store.Persister // durable stores only; nil for in-memory nodes

	st     *experiment.Study   // leader mode, or a follower after Promote
	rep    *replica.Replicator // follower mode (kept after Promote for status)
	mu     sync.Mutex          // owns st.Sim and st.Svc; HTTP touches only the clock under it
	ln     net.Listener
	srv    *http.Server
	apiSrv *query.API

	// now is the API clock indirection: followers read the replicated
	// leader clock, and Promote atomically swaps in the local simulation
	// clock without racing in-flight request handlers.
	now atomic.Pointer[func() time.Time]

	promoteMu sync.Mutex // serializes Promote vs Close teardown
	promoted  atomic.Bool

	serveErr chan error
	stopTick context.CancelFunc
	tickDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// Addr returns the listener's concrete address.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// BaseURL returns the node's HTTP base URL.
func (d *Daemon) BaseURL() string { return "http://" + d.Addr() }

// ServeErr delivers the http.Server's terminal error (at most one).
func (d *Daemon) ServeErr() <-chan error { return d.serveErr }

// Start builds the node and returns once the listener is live: in leader
// mode the study ticks in the background (recovering a durable store
// first when configured); in follower mode the replication subscription
// is attached and the leader's salt and clock are known, so every ETag
// minted from the first request on is leader-compatible.
func Start(opts Options) (*Daemon, error) {
	if opts.Follow != "" {
		return startFollower(opts)
	}
	return startLeader(opts)
}

// startLeader runs the simulated study and serves its store.
func startLeader(opts Options) (*Daemon, error) {
	expCfg := experiment.Config{Seed: opts.Seed, Days: 1, Tick: opts.Tick}
	d := &Daemon{opts: opts, serveErr: make(chan error, 1)}

	var pers *store.Persister
	var db *store.Store
	if opts.DataDir != "" {
		var err error
		db, err = store.Open(opts.DataDir, store.PersistOptions{})
		if err != nil {
			return nil, err
		}
		pers = db.Persister()
		expCfg.Spotlight.SnapshotInterval = opts.SnapInterval
		// Resume the study clock where the previous process stopped, so
		// the recovered record and the new one share a single timeline.
		expCfg.ResumeAt = pers.Clock()
		d.StoreDesc = fmt.Sprintf(", durable store %s (%d markets recovered)",
			opts.DataDir, len(db.Markets()))
	} else {
		// Pre-create the in-memory store too (instead of letting the
		// study build its own) so metrics are armed before the first
		// tick appends — EnableMetrics writes plain pointers that must
		// not race concurrent appends.
		db = store.New()
	}
	db.EnableMetrics(opts.Metrics)
	expCfg.DB = db
	d.pers = pers

	st, err := experiment.New(expCfg)
	if err != nil {
		if pers != nil {
			pers.Close() // release the data-dir lock; nothing was appended
		}
		return nil, err
	}
	d.st = st

	interval := d.startTicking(st)

	engine := query.NewEngine(st.DB, st.Cat)
	simNow := func() time.Time {
		d.mu.Lock()
		defer d.mu.Unlock()
		return st.Sim.Now()
	}
	d.now.Store(&simNow)
	apiSrv := query.NewAPI(engine, d.clock)
	d.apiSrv = apiSrv
	apiSrv.EnableMetrics(opts.Metrics)
	apiSrv.SetSlowQuery(opts.SlowQuery, opts.Logger)
	// Results cannot change faster than the study ticks, so intermediaries
	// may cache exactly one wall-clock tick without revalidating.
	apiSrv.SetCacheTTL(interval)
	apiSrv.SetWatchLimit(opts.MaxWatchers)
	if pers != nil {
		// A durable store's generations survive restarts, so its ETags
		// should too: salt them with the data directory's stable salt
		// instead of this process's boot instant.
		apiSrv.SetETagSalt(pers.Salt())
	}

	if err := d.listen(opts.Addr); err != nil {
		d.stopTick()
		<-d.tickDone
		// Close the durability layer too (flush + data-dir lock release),
		// so a failed start leaves the directory reusable in-process.
		if cerr := st.Svc.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	return d, nil
}

// startTicking launches the tick goroutine driving st and returns the
// wall-clock tick interval. The simulator and service are
// single-threaded by design; the tick goroutine owns them and the HTTP
// layer only touches the (concurrency-safe) store plus the clock under
// the mutex. Used at leader start and again at follower promotion.
func (d *Daemon) startTicking(st *experiment.Study) time.Duration {
	interval := time.Duration(float64(d.opts.Tick) / d.opts.Speed)
	if interval <= 0 {
		interval = time.Millisecond
	}
	tickCtx, stopTick := context.WithCancel(context.Background())
	d.stopTick = stopTick
	d.tickDone = make(chan struct{})
	go func() {
		defer close(d.tickDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-tickCtx.Done():
				return
			case <-ticker.C:
				d.mu.Lock()
				st.Sim.Step()
				st.Svc.OnTick()
				d.mu.Unlock()
			}
		}
	}()
	return interval
}

// clock is the API's Now function: one pointer load, then whichever
// clock the node currently lives on (replicated or simulated).
func (d *Daemon) clock() time.Time { return (*d.now.Load())() }

// startFollower attaches the replication subscription over a fresh or
// recovered store and blocks until the leader's salt and clock are
// known — serving before that point would mint ETags under the wrong
// salt. (A durable follower with a recovered cursor knows both from
// disk and is ready immediately, leader reachable or not.)
func startFollower(opts Options) (*Daemon, error) {
	d := &Daemon{opts: opts, serveErr: make(chan error, 1)}
	var db *store.Store
	if opts.DataDir != "" {
		var err error
		db, err = store.Open(opts.DataDir, store.PersistOptions{})
		if err != nil {
			return nil, err
		}
		d.pers = db.Persister()
		d.StoreDesc = fmt.Sprintf(", following %s (durable store %s, %d markets recovered)",
			opts.Follow, opts.DataDir, len(db.Markets()))
	} else {
		db = store.New()
		d.StoreDesc = ", following " + opts.Follow
	}
	d.db = db
	// Arm store metrics before the replicator's first apply, for the same
	// no-race-with-appends reason as the leader path.
	db.EnableMetrics(opts.Metrics)
	rep, err := replica.New(replica.Config{
		Leader:     opts.Follow,
		DB:         db,
		Backfill:   opts.FollowBackfill,
		StaleAfter: opts.FollowStaleAfter,
		Persist:    d.pers,
	})
	if err != nil {
		d.closePersister()
		return nil, err
	}
	if err := rep.Start(); err != nil {
		d.closePersister()
		return nil, err
	}
	timeout := opts.FollowTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	select {
	case <-rep.Ready():
	case <-time.After(timeout):
		rep.Close()
		d.closePersister()
		return nil, fmt.Errorf("follower: no hello from leader %s within %v", opts.Follow, timeout)
	}
	d.rep = rep

	repNow := rep.Clock
	d.now.Store(&repNow)
	// The catalog is deterministic (market.New is seedless), so the
	// follower's market metadata matches the leader's without shipping it.
	engine := query.NewEngine(db, market.New())
	apiSrv := query.NewAPI(engine, d.clock)
	d.apiSrv = apiSrv
	apiSrv.EnableMetrics(opts.Metrics)
	apiSrv.SetSlowQuery(opts.SlowQuery, opts.Logger)
	rep.EnableMetrics(opts.Metrics)
	apiSrv.SetWatchLimit(opts.MaxWatchers)
	apiSrv.SetReplication(d.replicationStatus)
	apiSrv.SetPromote(d.Promote)
	if salt, ok := rep.Salt(); ok {
		apiSrv.SetETagSalt(salt)
	}

	if err := d.listen(opts.Addr); err != nil {
		rep.Close()
		d.closePersister()
		return nil, err
	}
	return d, nil
}

// closePersister releases the data-dir durability layer (flush, final
// snapshot, flock). Safe on nil and after an earlier close.
func (d *Daemon) closePersister() {
	if d.pers != nil {
		d.pers.Close()
	}
}

// replicationStatus decorates the replicator's status with the node's
// post-promotion role. The health handler degrades a disconnected
// *follower* but not a promoted node: after promotion the stream is
// closed by design and the node is the authority.
func (d *Daemon) replicationStatus() *api.HealthReplication {
	st := d.rep.Status()
	if d.promoted.Load() {
		st.Role = "promoted"
	}
	return st
}

// Promote converts a running follower into a leader: the replication
// subscription drains and stops, and the replicated store opens for
// writes by resuming a simulated study over it — same ETag salt, same
// clock timeline, continuous generations, so every validator a client
// cached against the follower survives the failover. The node serves
// reads throughout.
//
// Unless force is set, promotion is refused while the old leader still
// answers the stream (split-brain guard): two writers appending under
// one salt would mint colliding ETags for different data.
func (d *Daemon) Promote(force bool) error {
	d.promoteMu.Lock()
	defer d.promoteMu.Unlock()
	if d.rep == nil {
		return errors.New("promote: this node is a leader, not a follower")
	}
	if d.promoted.Load() {
		return errors.New("promote: already promoted")
	}
	if !force {
		if st := d.rep.Status(); st.Connected {
			return fmt.Errorf("promote: leader %s still streaming (split-brain guard; retry with force once it is confirmed dead)", d.opts.Follow)
		}
	}
	// Drain: Close applies every event already received before returning,
	// and a durable follower persists its final cursor in the same pass.
	d.rep.Close()

	opts := d.opts
	if opts.Tick <= 0 {
		opts.Tick = 5 * time.Minute
	}
	if opts.Speed <= 0 {
		opts.Speed = 300
	}
	d.opts = opts
	expCfg := experiment.Config{
		Seed: opts.Seed, Days: 1, Tick: opts.Tick,
		DB:       d.db,
		ResumeAt: d.rep.Clock(),
	}
	expCfg.Spotlight.SnapshotInterval = opts.SnapInterval
	st, err := experiment.New(expCfg)
	if err != nil {
		return fmt.Errorf("promote: resume study over replicated store: %w", err)
	}
	d.mu.Lock()
	d.st = st
	d.mu.Unlock()
	// From here Svc owns the persister: its OnTick flushes and its Close
	// (via Daemon.Close) snapshots and releases the flock.
	d.promoted.Store(true)
	interval := d.startTicking(st)
	simNow := func() time.Time {
		d.mu.Lock()
		defer d.mu.Unlock()
		return st.Sim.Now()
	}
	d.now.Store(&simNow)
	d.apiSrv.SetCacheTTL(interval)
	return nil
}

// Halt freezes the node's own simulation: the tick loop stops, the
// store stops appending, and the HTTP surface — queries, health, live
// streams — keeps serving the frozen state. Operationally this is the
// first half of a graceful handoff: stop producing, let followers drain
// to the final generation, then retire the node. A follower has no
// simulation to halt; Halt is a no-op there. Idempotent.
func (d *Daemon) Halt() {
	d.promoteMu.Lock()
	defer d.promoteMu.Unlock()
	if d.stopTick != nil {
		d.stopTick()
		<-d.tickDone
	}
}

// listen binds the address explicitly (so ":0" resolves to a concrete
// port before callers need the base URL) and starts serving.
func (d *Daemon) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	d.ln = ln
	d.srv = &http.Server{
		Handler:           d.apiSrv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { d.serveErr <- d.srv.Serve(ln) }()
	return nil
}

// Close shuts the node down cleanly: HTTP drains, the tick loop or
// replication subscription stops, and a durable store's layer closes
// (flushing the WAL, taking a final snapshot, persisting the clock —
// via the service on a leader or promoted node, directly on a
// follower). Idempotent.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		// Tear down live /v2/watch streams first: SSE handlers never
		// return on their own, so without this Shutdown would hang until
		// its timeout and leak the stream goroutines.
		d.apiSrv.Shutdown()
		err := d.srv.Shutdown(shutCtx)
		// Hold promoteMu so a concurrent Promote cannot hand the store to
		// a new study while we are tearing the node down.
		d.promoteMu.Lock()
		defer d.promoteMu.Unlock()
		if d.stopTick != nil {
			d.stopTick()
			<-d.tickDone
		}
		if d.rep != nil {
			d.rep.Close()
		}
		if d.st != nil {
			d.mu.Lock()
			cerr := d.st.Svc.Close()
			d.mu.Unlock()
			if err == nil {
				err = cerr
			}
		} else if d.pers != nil {
			// Un-promoted durable follower: no service owns the persister,
			// so the daemon flushes and releases the data dir itself.
			if cerr := d.pers.Close(); err == nil {
				err = cerr
			}
		}
		d.closeErr = err
	})
	return d.closeErr
}
