// Package daemon assembles one running SpotLight node: store, query API,
// HTTP server, and either the simulated study that feeds the store
// (leader mode) or a replication subscription to another node (follower
// mode). Command spotlightd is a thin flag wrapper over Start; tests and
// the spotload harness embed nodes directly.
package daemon

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"spotlight/internal/experiment"
	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/internal/replica"
	"spotlight/internal/store"
)

// Options configure one node. The zero value is not runnable; commands
// fill it from flags, tests directly.
type Options struct {
	// Addr is the HTTP listen address (":0" for an ephemeral port).
	Addr string
	// Seed / Tick / Speed shape the leader's simulated study: Tick of
	// simulated time passes every Tick/Speed of wall time.
	Seed  uint64
	Tick  time.Duration
	Speed float64
	// DataDir makes the leader's store durable (WAL + snapshots); empty
	// keeps it in memory. Incompatible with Follow.
	DataDir string
	// SnapInterval is the simulated time between snapshots (DataDir only).
	SnapInterval time.Duration
	// MaxWatchers caps concurrent /v2/watch subscribers (0: default).
	MaxWatchers int

	// Follow switches the node into follower mode: no simulation runs,
	// and the store is built by tailing the leader at this base URL over
	// /v2/watch (see internal/replica). The node serves the same
	// read-only query surface with the leader's ETag salt and clock.
	Follow string
	// FollowBackfill asks the leader for that much trailing history on
	// first attach (bounded server-side to 24h). Zero means live-only.
	FollowBackfill time.Duration
	// FollowTimeout bounds the wait for the leader's first hello and
	// clock before Start fails (default 30s).
	FollowTimeout time.Duration
}

// Daemon is one running node. Close is idempotent.
type Daemon struct {
	// StoreDesc is a human-readable suffix describing the store ("",
	// ", durable store DIR (...)", or ", following URL").
	StoreDesc string

	st     *experiment.Study   // leader mode only
	rep    *replica.Replicator // follower mode only
	mu     sync.Mutex          // owns st.Sim and st.Svc; HTTP touches only the clock under it
	ln     net.Listener
	srv    *http.Server
	apiSrv *query.API

	serveErr chan error
	stopTick context.CancelFunc
	tickDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// Addr returns the listener's concrete address.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// BaseURL returns the node's HTTP base URL.
func (d *Daemon) BaseURL() string { return "http://" + d.Addr() }

// ServeErr delivers the http.Server's terminal error (at most one).
func (d *Daemon) ServeErr() <-chan error { return d.serveErr }

// Start builds the node and returns once the listener is live: in leader
// mode the study ticks in the background (recovering a durable store
// first when configured); in follower mode the replication subscription
// is attached and the leader's salt and clock are known, so every ETag
// minted from the first request on is leader-compatible.
func Start(opts Options) (*Daemon, error) {
	if opts.Follow != "" {
		if opts.DataDir != "" {
			return nil, errors.New("follower mode is memory-only: -data-dir is incompatible with -follow (rebuild by re-tailing the leader)")
		}
		return startFollower(opts)
	}
	return startLeader(opts)
}

// startLeader runs the simulated study and serves its store.
func startLeader(opts Options) (*Daemon, error) {
	expCfg := experiment.Config{Seed: opts.Seed, Days: 1, Tick: opts.Tick}
	d := &Daemon{serveErr: make(chan error, 1)}

	var pers *store.Persister
	if opts.DataDir != "" {
		db, err := store.Open(opts.DataDir, store.PersistOptions{})
		if err != nil {
			return nil, err
		}
		pers = db.Persister()
		expCfg.DB = db
		expCfg.Spotlight.SnapshotInterval = opts.SnapInterval
		// Resume the study clock where the previous process stopped, so
		// the recovered record and the new one share a single timeline.
		expCfg.ResumeAt = pers.Clock()
		d.StoreDesc = fmt.Sprintf(", durable store %s (%d markets recovered)",
			opts.DataDir, len(db.Markets()))
	}

	st, err := experiment.New(expCfg)
	if err != nil {
		if pers != nil {
			pers.Close() // release the data-dir lock; nothing was appended
		}
		return nil, err
	}
	d.st = st

	// The simulator and service are single-threaded by design; the tick
	// goroutine owns them and the HTTP layer only touches the
	// (concurrency-safe) store plus the clock under the mutex.
	interval := time.Duration(float64(opts.Tick) / opts.Speed)
	if interval <= 0 {
		interval = time.Millisecond
	}
	tickCtx, stopTick := context.WithCancel(context.Background())
	d.stopTick = stopTick
	d.tickDone = make(chan struct{})
	go func() {
		defer close(d.tickDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-tickCtx.Done():
				return
			case <-ticker.C:
				d.mu.Lock()
				st.Sim.Step()
				st.Svc.OnTick()
				d.mu.Unlock()
			}
		}
	}()

	engine := query.NewEngine(st.DB, st.Cat)
	apiSrv := query.NewAPI(engine, func() time.Time {
		d.mu.Lock()
		defer d.mu.Unlock()
		return st.Sim.Now()
	})
	d.apiSrv = apiSrv
	// Results cannot change faster than the study ticks, so intermediaries
	// may cache exactly one wall-clock tick without revalidating.
	apiSrv.SetCacheTTL(interval)
	apiSrv.SetWatchLimit(opts.MaxWatchers)
	if pers != nil {
		// A durable store's generations survive restarts, so its ETags
		// should too: salt them with the data directory's stable salt
		// instead of this process's boot instant.
		apiSrv.SetETagSalt(pers.Salt())
	}

	if err := d.listen(opts.Addr); err != nil {
		stopTick()
		<-d.tickDone
		// Close the durability layer too (flush + data-dir lock release),
		// so a failed start leaves the directory reusable in-process.
		if cerr := st.Svc.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	return d, nil
}

// startFollower builds an empty store, attaches the replication
// subscription, and blocks until the leader's salt and clock are known —
// serving before that point would mint ETags under the wrong salt.
func startFollower(opts Options) (*Daemon, error) {
	d := &Daemon{serveErr: make(chan error, 1)}
	db := store.New()
	rep, err := replica.New(replica.Config{
		Leader:   opts.Follow,
		DB:       db,
		Backfill: opts.FollowBackfill,
	})
	if err != nil {
		return nil, err
	}
	if err := rep.Start(); err != nil {
		return nil, err
	}
	timeout := opts.FollowTimeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	select {
	case <-rep.Ready():
	case <-time.After(timeout):
		rep.Close()
		return nil, fmt.Errorf("follower: no hello from leader %s within %v", opts.Follow, timeout)
	}
	d.rep = rep
	d.StoreDesc = ", following " + opts.Follow

	// The catalog is deterministic (market.New is seedless), so the
	// follower's market metadata matches the leader's without shipping it.
	engine := query.NewEngine(db, market.New())
	apiSrv := query.NewAPI(engine, rep.Clock)
	d.apiSrv = apiSrv
	apiSrv.SetWatchLimit(opts.MaxWatchers)
	apiSrv.SetReplication(rep.Status)
	if salt, ok := rep.Salt(); ok {
		apiSrv.SetETagSalt(salt)
	}

	if err := d.listen(opts.Addr); err != nil {
		rep.Close()
		return nil, err
	}
	return d, nil
}

// listen binds the address explicitly (so ":0" resolves to a concrete
// port before callers need the base URL) and starts serving.
func (d *Daemon) listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	d.ln = ln
	d.srv = &http.Server{
		Handler:           d.apiSrv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { d.serveErr <- d.srv.Serve(ln) }()
	return nil
}

// Close shuts the node down cleanly: HTTP drains, the tick loop or
// replication subscription stops, and a leader's service closes its
// durability layer (flushing the WAL, taking a final snapshot, and
// persisting the study clock). Idempotent.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		// Tear down live /v2/watch streams first: SSE handlers never
		// return on their own, so without this Shutdown would hang until
		// its timeout and leak the stream goroutines.
		d.apiSrv.Shutdown()
		err := d.srv.Shutdown(shutCtx)
		if d.stopTick != nil {
			d.stopTick()
			<-d.tickDone
		}
		if d.rep != nil {
			d.rep.Close()
		}
		if d.st != nil {
			d.mu.Lock()
			cerr := d.st.Svc.Close()
			d.mu.Unlock()
			if err == nil {
				err = cerr
			}
		}
		d.closeErr = err
	})
	return d.closeErr
}
