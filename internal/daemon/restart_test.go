package daemon

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"spotlight/pkg/client"
)

// checkGoroutineLeak asserts the process returns to (about) its baseline
// goroutine count — the watch-stream handlers, tick loop, and HTTP server
// of every closed daemon must all have exited.
func checkGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Idle keep-alive connections hold transport goroutines; they are
		// pool reuse, not leaks.
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after daemon close: %d -> %d\n%s",
				base, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// The end-to-end restart contract of -data-dir: stop a daemon, start it
// again over the same directory, and every recovered query answer —
// status, body bytes, and ETag — is identical, so clients (and their
// conditional-request caches) cannot tell a restart happened.
//
// Run 1 ingests with fast ticks and shuts down cleanly. Runs 2 and 3 use
// a quiescent tick rate (first tick far in the future), so both serve
// exactly the recovered study: run 2's responses are captured, run 3 must
// reproduce them byte for byte and honor run 2's validators with 304s.
func TestRestartServesIdenticalResponsesAndETags(t *testing.T) {
	if testing.Short() {
		t.Skip("daemon restart test skipped in -short mode")
	}
	dir := t.TempDir()
	baseGoroutines := runtime.NumGoroutine()

	ingest := Options{
		Addr: "127.0.0.1:0", Seed: 7, Tick: 5 * time.Minute, Speed: 30000,
		DataDir: dir, SnapInterval: time.Hour, MaxWatchers: 8,
	}
	quiet := ingest
	quiet.Tick, quiet.Speed = 24*time.Hour, 1 // first tick a day of wall clock away

	// Run 1: ingest until the store holds probes, then shut down cleanly —
	// with a live watch stream open, which Close must tear down instead of
	// hanging on (SSE handlers never return by themselves).
	d1, err := Start(ingest)
	if err != nil {
		t.Fatalf("start ingest daemon: %v", err)
	}
	wc, err := client.New("http://"+d1.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wc.Watch(context.Background(), client.WatchOptions{MaxBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("open watch on ingest daemon: %v", err)
	}
	sawEvent := false
	eventWait := time.After(15 * time.Second)
	for !sawEvent {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch ended before an event: %v", w.Err())
			}
			sawEvent = ev.Kind != "hello"
		case <-eventWait:
			t.Fatal("no live event from the ingest daemon")
		}
	}
	waitForProbes(t, d1.Addr())
	if err := d1.Close(); err != nil {
		t.Fatalf("close ingest daemon: %v", err)
	}
	w.Close() // stop the client-side reconnect loop

	// The query set: absolute windows spanning the study, the clock-bound
	// summary (the resumed study clock makes even that reproducible), and
	// a v2 batch.
	const from, to = "2015-09-01T00:00:00Z", "2015-09-03T00:00:00Z"
	gets := []string{
		"/v1/summary",
		"/v1/stable?region=us-east-1&n=5&from=" + from + "&to=" + to,
		"/v1/volatile?region=us-east-1&n=5&from=" + from + "&to=" + to,
		"/v1/markets?region=us-east-1&product=Linux%2FUNIX",
	}
	batchBody := fmt.Sprintf(`{"queries":[{"kind":"stable","region":"us-east-1","n":5,"from":%q,"to":%q},{"kind":"summary"}]}`, from, to)

	// Run 2: capture the recovered responses.
	d2, err := Start(quiet)
	if err != nil {
		t.Fatalf("start run 2: %v", err)
	}
	if n := probeTotal(t, d2.Addr()); n == 0 {
		t.Fatal("run 2 recovered no probes; nothing meaningful to compare")
	}
	captured := make(map[string]httpCapture)
	for _, path := range gets {
		captured[path] = doGET(t, d2.Addr(), path, "")
	}
	capturedBatch := doPOST(t, d2.Addr(), "/v2/query", batchBody, "")
	if err := d2.Close(); err != nil {
		t.Fatalf("close run 2: %v", err)
	}

	// Run 3: every answer must match run 2 exactly, and run 2's
	// validators must still be fresh.
	d3, err := Start(quiet)
	if err != nil {
		t.Fatalf("start run 3: %v", err)
	}
	defer d3.Close()
	for _, path := range gets {
		want := captured[path]
		got := doGET(t, d3.Addr(), path, "")
		if got.status != want.status || got.body != want.body {
			t.Errorf("%s: response changed across restart\n got: %d %.200s\nwant: %d %.200s",
				path, got.status, got.body, want.status, want.body)
		}
		if got.etag == "" || got.etag != want.etag {
			t.Errorf("%s: ETag changed across restart: %q -> %q", path, want.etag, got.etag)
		}
		if notMod := doGET(t, d3.Addr(), path, want.etag); notMod.status != http.StatusNotModified {
			t.Errorf("%s: If-None-Match with the pre-restart ETag answered %d, want 304", path, notMod.status)
		}
	}
	gotBatch := doPOST(t, d3.Addr(), "/v2/query", batchBody, "")
	if gotBatch.status != capturedBatch.status || gotBatch.body != capturedBatch.body {
		t.Errorf("/v2/query: response changed across restart\n got: %d %.200s\nwant: %d %.200s",
			gotBatch.status, gotBatch.body, capturedBatch.status, capturedBatch.body)
	}
	if gotBatch.etag == "" || gotBatch.etag != capturedBatch.etag {
		t.Errorf("/v2/query: ETag changed across restart: %q -> %q", capturedBatch.etag, gotBatch.etag)
	}
	if notMod := doPOST(t, d3.Addr(), "/v2/query", batchBody, capturedBatch.etag); notMod.status != http.StatusNotModified {
		t.Errorf("/v2/query: If-None-Match with the pre-restart ETag answered %d, want 304", notMod.status)
	}

	// Every daemon closed must leave no stream handlers, tick loops, or
	// servers behind.
	if err := d3.Close(); err != nil {
		t.Fatalf("close run 3: %v", err)
	}
	checkGoroutineLeak(t, baseGoroutines)
}

// waitForProbes polls the summary endpoint until the study has ingested
// probe records (a couple of fast ticks).
func waitForProbes(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if probeTotal(t, addr) > 0 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon ingested no probes within the deadline")
}

func probeTotal(t *testing.T, addr string) int {
	t.Helper()
	c, err := client.New("http://"+addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Generous: under -race with the full suite's packages running in
	// parallel, a single summary round trip can stall well past a few
	// seconds without anything being wrong.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rows, err := c.Summary(ctx)
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	total := 0
	for _, r := range rows {
		total += r.TotalODProbes + r.TotalSpotProbes
	}
	return total
}

type httpCapture struct {
	status int
	etag   string
	body   string
}

func doGET(t *testing.T, addr, path, ifNoneMatch string) httpCapture {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return doReq(t, req, ifNoneMatch)
}

func doPOST(t *testing.T, addr, path, body, ifNoneMatch string) httpCapture {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	return doReq(t, req, ifNoneMatch)
}

func doReq(t *testing.T, req *http.Request, ifNoneMatch string) httpCapture {
	t.Helper()
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", req.Method, req.URL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", req.URL, err)
	}
	return httpCapture{status: resp.StatusCode, etag: resp.Header.Get("ETag"), body: string(body)}
}
