package spoton

import (
	"errors"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
)

// Replication is SpotOn's second fault-tolerance mechanism (§6.2): "to
// ensure progress despite revocations, SpotOn either replicates a batch
// job across multiple spot servers or periodically checkpoints". A
// replicated job runs simultaneously on several spot markets and
// completes when the first replica finishes; only if *all* replicas are
// revoked does the job restart on an on-demand server — which is exactly
// where the always-available assumption bites again.

// Replica describes one replica placement.
type Replica struct {
	// Market hosts this replica's spot server.
	Market market.SpotID
	// ODPrice is the market's on-demand price (the replica's bid).
	ODPrice float64
	// Trace is the market's published price history.
	Trace []store.PricePoint
}

// ReplicatedJobConfig describes one replicated batch job run.
type ReplicatedJobConfig struct {
	Replicas []Replica
	// Platform answers on-demand obtainability for the restart path.
	Platform Platform
	// Fallback picks the restart market when every replica is gone;
	// nil restarts on the first replica's market.
	Fallback FallbackPolicy
	// RunningTime is the job's useful work.
	RunningTime time.Duration
	// Start is when the job begins.
	Start time.Time
	// Tick is the simulation granularity. Default 1 minute.
	Tick time.Duration
	// Deadline bounds the simulation. Default 10x running time + a day.
	Deadline time.Duration
}

// ReplicatedJobResult is the outcome of one replicated run.
type ReplicatedJobResult struct {
	// Completion is wall-clock from start to the first finishing
	// replica (or the on-demand restart's completion).
	Completion time.Duration
	// Restarts counts full losses (all replicas revoked at once).
	Restarts int
	// WaitedForOD is time spent blocked on an unavailable restart
	// market.
	WaitedForOD time.Duration
	// Finished is false if the deadline elapsed first.
	Finished bool
	// SpotCost is the total dollars paid for replica spot time; a
	// replicated job trades money for resilience.
	SpotCost float64
}

// ReplicatedTrialStats aggregates repeated replicated runs.
type ReplicatedTrialStats struct {
	Trials         int
	MeanCompletion time.Duration
	MaxCompletion  time.Duration
	MeanWaited     time.Duration
	MeanSpotCost   float64
	Restarts       int
	Unfinished     int
}

// RunReplicatedTrials runs the replicated job at each start time and
// aggregates, mirroring RunTrials for the checkpointing mechanism.
func RunReplicatedTrials(cfg ReplicatedJobConfig, starts []time.Time) (ReplicatedTrialStats, error) {
	if len(starts) == 0 {
		return ReplicatedTrialStats{}, errors.New("spoton: no trial start times")
	}
	var st ReplicatedTrialStats
	var totalCompletion, totalWaited time.Duration
	var totalCost float64
	for _, s := range starts {
		run := cfg
		run.Start = s
		res, err := RunReplicatedJob(run)
		if err != nil {
			return ReplicatedTrialStats{}, err
		}
		st.Trials++
		totalCompletion += res.Completion
		totalWaited += res.WaitedForOD
		totalCost += res.SpotCost
		st.Restarts += res.Restarts
		if res.Completion > st.MaxCompletion {
			st.MaxCompletion = res.Completion
		}
		if !res.Finished {
			st.Unfinished++
		}
	}
	st.MeanCompletion = totalCompletion / time.Duration(st.Trials)
	st.MeanWaited = totalWaited / time.Duration(st.Trials)
	st.MeanSpotCost = totalCost / float64(st.Trials)
	return st, nil
}

// replicaRt is one replica's runtime state.
type replicaRt struct {
	cfg      Replica
	done     time.Duration
	alive    bool
	traceIdx int
}

func (r *replicaRt) priceAt(t time.Time) float64 {
	for r.traceIdx+1 < len(r.cfg.Trace) && !r.cfg.Trace[r.traceIdx+1].At.After(t) {
		r.traceIdx++
	}
	return r.cfg.Trace[r.traceIdx].Price
}

// RunReplicatedJob simulates one replicated batch job.
func RunReplicatedJob(cfg ReplicatedJobConfig) (ReplicatedJobResult, error) {
	if len(cfg.Replicas) == 0 {
		return ReplicatedJobResult{}, errors.New("spoton: no replicas")
	}
	for i, rep := range cfg.Replicas {
		if len(rep.Trace) == 0 {
			return ReplicatedJobResult{}, errors.New("spoton: replica with empty price trace")
		}
		if rep.ODPrice <= 0 {
			return ReplicatedJobResult{}, errors.New("spoton: replica with non-positive od price")
		}
		_ = i
	}
	if cfg.Platform == nil {
		return ReplicatedJobResult{}, errors.New("spoton: nil platform")
	}
	if cfg.RunningTime <= 0 {
		return ReplicatedJobResult{}, errors.New("spoton: non-positive running time")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Minute
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 10*cfg.RunningTime + 24*time.Hour
	}
	if cfg.Start.IsZero() {
		cfg.Start = cfg.Replicas[0].Trace[0].At
	}
	fallback := cfg.Fallback
	if fallback == nil {
		home := cfg.Replicas[0].Market
		fallback = func(time.Time) market.SpotID { return home }
	}

	reps := make([]*replicaRt, len(cfg.Replicas))
	for i := range cfg.Replicas {
		reps[i] = &replicaRt{cfg: cfg.Replicas[i], alive: true}
	}

	var (
		res      ReplicatedJobResult
		onOD     bool
		odDone   time.Duration
		waiting  bool
		deadline = cfg.Start.Add(cfg.Deadline)
		tickH    = cfg.Tick.Hours()
	)
	for t := cfg.Start; ; t = t.Add(cfg.Tick) {
		if !t.Before(deadline) {
			res.Completion = t.Sub(cfg.Start)
			return res, nil
		}
		switch {
		case waiting:
			res.WaitedForOD += cfg.Tick
			if cfg.Platform.ODAvailable(fallback(t), t) {
				waiting = false
				onOD = true
			}
		case onOD:
			odDone += cfg.Tick
			if odDone >= cfg.RunningTime {
				res.Finished = true
				res.Completion = t.Add(cfg.Tick).Sub(cfg.Start)
				return res, nil
			}
		default:
			anyAlive := false
			for _, r := range reps {
				if !r.alive {
					continue
				}
				price := r.priceAt(t)
				if price > r.cfg.ODPrice {
					r.alive = false // revoked
					continue
				}
				anyAlive = true
				r.done += cfg.Tick
				res.SpotCost += price * tickH
				if r.done >= cfg.RunningTime {
					res.Finished = true
					res.Completion = t.Add(cfg.Tick).Sub(cfg.Start)
					return res, nil
				}
			}
			if !anyAlive {
				// Total loss: restart from scratch on on-demand (the
				// replication mechanism keeps no checkpoints).
				res.Restarts++
				odDone = 0
				if cfg.Platform.ODAvailable(fallback(t), t) {
					onOD = true
				} else {
					waiting = true
					res.WaitedForOD += cfg.Tick
				}
			}
		}
	}
}
