// Package spoton reproduces the paper's second case study (§6.2): SpotOn,
// a batch computing service that runs jobs on spot servers with
// checkpointing, restarting from the last checkpoint on an on-demand
// server after a revocation. SpotOn picks the spot market minimizing the
// expected cost of Eq 6.1 — and, like SpotCheck, implicitly assumes the
// on-demand fallback is always obtainable. Fig 6.2 shows job running
// times inflating 15-72% once real on-demand availability is accounted
// for, and recovering when SpotLight steers the fallback to an
// uncorrelated market.
package spoton

import (
	"errors"
	"math"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
)

// ExpectedCostParams are the inputs of the paper's Eq 6.1.
type ExpectedCostParams struct {
	// SpotPrice is the market's spot price per hour.
	SpotPrice float64
	// RevocationProb is Pk: the probability the job is revoked before it
	// completes on this market.
	RevocationProb float64
	// ExpectedRevocationTime is E[Zk]: the expected time to revocation.
	ExpectedRevocationTime time.Duration
	// RemainingTime is T: the job's remaining running time.
	RemainingTime time.Duration
	// CheckpointTime is Tc: the time one checkpoint takes (a function of
	// the job's memory footprint).
	CheckpointTime time.Duration
	// CheckpointInterval is τ: how often checkpoints are taken.
	CheckpointInterval time.Duration
	// LostWork is TL: the expected work lost at a revocation (at most
	// one checkpoint interval).
	LostWork time.Duration
}

// ExpectedCostPerUnitTime evaluates Eq 6.1: the expected cost per unit of
// useful work on spot market k when checkpointing,
//
//	[(1-Pk)*T + Pk*E(Zk)] * spot-price
//	-----------------------------------------------------
//	(1-Pk)*T + Pk*(E(Zk)-TL) - (E(Zk)/τ)*Tc
//
// It returns an error when the parameters make the useful-work denominator
// non-positive (checkpointing overhead swallows all progress).
func ExpectedCostPerUnitTime(p ExpectedCostParams) (float64, error) {
	if p.CheckpointInterval <= 0 {
		return 0, errors.New("spoton: non-positive checkpoint interval")
	}
	if p.RevocationProb < 0 || p.RevocationProb > 1 {
		return 0, errors.New("spoton: revocation probability outside [0,1]")
	}
	tHours := p.RemainingTime.Hours()
	zHours := p.ExpectedRevocationTime.Hours()
	numer := ((1-p.RevocationProb)*tHours + p.RevocationProb*zHours) * p.SpotPrice
	denom := (1-p.RevocationProb)*tHours +
		p.RevocationProb*(zHours-p.LostWork.Hours()) -
		(zHours/p.CheckpointInterval.Hours())*p.CheckpointTime.Hours()
	if denom <= 0 {
		return 0, errors.New("spoton: checkpoint overhead exceeds useful work")
	}
	return numer / denom, nil
}

// Platform answers on-demand obtainability, as in package spotcheck.
type Platform interface {
	ODAvailable(m market.SpotID, t time.Time) bool
}

// FallbackPolicy picks the on-demand market a revoked job restarts on.
type FallbackPolicy func(t time.Time) market.SpotID

// EventSteeredFallback builds a FallbackPolicy that reacts to pushed
// SpotLight events instead of polling (the SpotOn twin of
// spotcheck.EventSteeredFallback): signaled(t) reports whether a
// relevant revocation/outage event arrived since the last decision at
// instant t, recompute asks SpotLight for the current best restart
// market, and the policy caches the target in between — a checkpointed
// job re-plans its restart market when the information service pushes
// news, not every tick.
func EventSteeredFallback(signaled func(t time.Time) bool, recompute func(t time.Time) market.SpotID) FallbackPolicy {
	var cached market.SpotID
	have := false
	return func(t time.Time) market.SpotID {
		if signaled(t) || !have {
			cached = recompute(t)
			have = true
		}
		return cached
	}
}

// JobConfig describes one batch job run.
type JobConfig struct {
	// Market hosts the job's spot server.
	Market market.SpotID
	// ODPrice is the market's on-demand price; revocation happens when
	// the spot price exceeds it (the job bids the on-demand price).
	ODPrice float64
	// Trace is the market's published price history.
	Trace []store.PricePoint
	// Platform answers fallback availability.
	Platform Platform
	// Fallback picks the restart market; nil restarts on the same
	// market's on-demand tier (the paper's baseline SpotOn).
	Fallback FallbackPolicy

	// RunningTime is the job's useful work (paper: 1 hour).
	RunningTime time.Duration
	// CheckpointTime is the cost of writing one checkpoint (paper: a
	// job with an 8 GB footprint takes ~6 minutes).
	CheckpointTime time.Duration
	// CheckpointInterval is τ. Default 15 minutes.
	CheckpointInterval time.Duration
	// Start is when the job begins.
	Start time.Time
	// Tick is the simulation granularity. Default 1 minute.
	Tick time.Duration
	// Deadline bounds the simulation to keep pathological configurations
	// finite. Default 10x the running time plus a day.
	Deadline time.Duration
}

// JobResult is the outcome of one job run.
type JobResult struct {
	// Completion is total wall-clock from start to finish, the Fig 6.2
	// metric.
	Completion time.Duration
	// Revocations counts spot revocations the job survived.
	Revocations int
	// WaitedForOD is time spent waiting for an unavailable on-demand
	// fallback — zero under the paper's (false) assumption.
	WaitedForOD time.Duration
	// LostWork is the total work rolled back at revocations.
	LostWork time.Duration
	// Finished is false if the deadline elapsed first.
	Finished bool
}

// RunJob simulates one checkpointed batch job over the price trace.
func RunJob(cfg JobConfig) (JobResult, error) {
	if len(cfg.Trace) == 0 {
		return JobResult{}, errors.New("spoton: empty price trace")
	}
	if cfg.Platform == nil {
		return JobResult{}, errors.New("spoton: nil platform")
	}
	if cfg.ODPrice <= 0 {
		return JobResult{}, errors.New("spoton: non-positive on-demand price")
	}
	if cfg.RunningTime <= 0 {
		return JobResult{}, errors.New("spoton: non-positive running time")
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 15 * time.Minute
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Minute
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 10*cfg.RunningTime + 24*time.Hour
	}
	if cfg.Start.IsZero() {
		cfg.Start = cfg.Trace[0].At
	}
	fallback := cfg.Fallback
	if fallback == nil {
		fallback = func(time.Time) market.SpotID { return cfg.Market }
	}

	var (
		res          JobResult
		done         time.Duration // completed useful work
		checkpointed time.Duration // work safely persisted
		sinceCkpt    time.Duration // work since the last checkpoint
		ckptLeft     time.Duration // remaining current checkpoint write
		onSpot       = true
		waiting      = false
		traceIdx     int
	)
	priceAt := func(t time.Time) float64 {
		for traceIdx+1 < len(cfg.Trace) && !cfg.Trace[traceIdx+1].At.After(t) {
			traceIdx++
		}
		return cfg.Trace[traceIdx].Price
	}

	deadline := cfg.Start.Add(cfg.Deadline)
	for t := cfg.Start; done < cfg.RunningTime; t = t.Add(cfg.Tick) {
		if !t.Before(deadline) {
			res.Completion = t.Sub(cfg.Start)
			return res, nil // Finished stays false
		}
		price := priceAt(t)
		switch {
		case waiting:
			// Blocked on an unavailable on-demand fallback.
			res.WaitedForOD += cfg.Tick
			if cfg.Platform.ODAvailable(fallback(t), t) {
				waiting = false
				onSpot = false
			} else if price <= cfg.ODPrice {
				// The spot market recovered first: resume there.
				waiting = false
				onSpot = true
			}
		case onSpot && price > cfg.ODPrice:
			// Revocation: roll back to the last checkpoint, restart on
			// the on-demand fallback (§6.2).
			res.Revocations++
			res.LostWork += sinceCkpt
			done = checkpointed
			sinceCkpt = 0
			ckptLeft = 0
			if cfg.Platform.ODAvailable(fallback(t), t) {
				onSpot = false
			} else {
				waiting = true
				res.WaitedForOD += cfg.Tick
			}
		default:
			// Making progress (on spot or on-demand). Checkpoint writes
			// block progress for their duration; only spot execution
			// checkpoints (on-demand is not revocable).
			if ckptLeft > 0 {
				ckptLeft -= cfg.Tick
				if ckptLeft <= 0 {
					checkpointed = done
					sinceCkpt = 0
				}
			} else {
				done += cfg.Tick
				sinceCkpt += cfg.Tick
				if onSpot && sinceCkpt >= cfg.CheckpointInterval && cfg.CheckpointTime > 0 && done < cfg.RunningTime {
					ckptLeft = cfg.CheckpointTime
				}
			}
		}
		res.Completion = t.Add(cfg.Tick).Sub(cfg.Start)
	}
	res.Finished = true
	return res, nil
}

// TrialStats summarizes repeated job runs at varied start times (the
// paper's "expected completion time for 100 trials where the job is
// started at a random time").
type TrialStats struct {
	Trials         int
	MeanCompletion time.Duration
	MaxCompletion  time.Duration
	MeanWaited     time.Duration
	Revocations    int
	Unfinished     int
}

// RunTrials runs the job at each start time and aggregates.
func RunTrials(cfg JobConfig, starts []time.Time) (TrialStats, error) {
	if len(starts) == 0 {
		return TrialStats{}, errors.New("spoton: no trial start times")
	}
	var st TrialStats
	var totalCompletion, totalWaited time.Duration
	for _, s := range starts {
		run := cfg
		run.Start = s
		res, err := RunJob(run)
		if err != nil {
			return TrialStats{}, err
		}
		st.Trials++
		totalCompletion += res.Completion
		totalWaited += res.WaitedForOD
		st.Revocations += res.Revocations
		if res.Completion > st.MaxCompletion {
			st.MaxCompletion = res.Completion
		}
		if !res.Finished {
			st.Unfinished++
		}
	}
	st.MeanCompletion = totalCompletion / time.Duration(st.Trials)
	st.MeanWaited = totalWaited / time.Duration(st.Trials)
	return st, nil
}

// OptimalCheckpointInterval returns the Young/Daly first-order optimum
// sqrt(2 * Tc * MTTR), clamped to [1 minute, the job length]. SpotOn uses
// it to pick τ for Eq 6.1.
func OptimalCheckpointInterval(checkpointTime, mttr, jobLength time.Duration) time.Duration {
	if checkpointTime <= 0 || mttr <= 0 {
		return jobLength
	}
	opt := time.Duration(math.Sqrt(2 * float64(checkpointTime) * float64(mttr)))
	if opt < time.Minute {
		opt = time.Minute
	}
	if jobLength > 0 && opt > jobLength {
		opt = jobLength
	}
	return opt
}
