package spoton

import (
	"testing"
	"time"

	"spotlight/internal/market"
)

var repMkt2 = market.SpotID{Zone: "us-east-1a", Type: "m4.large", Product: market.ProductLinux}

func twoReplicas(traceA, traceB []float64) []Replica {
	return []Replica{
		{Market: mkt, ODPrice: 1.0, Trace: trace(traceA...)},
		{Market: repMkt2, ODPrice: 1.0, Trace: trace(traceB...)},
	}
}

func baseReplicated() ReplicatedJobConfig {
	return ReplicatedJobConfig{
		Replicas:    twoReplicas([]float64{0, 0.3, 48, 0.3}, []float64{0, 0.2, 48, 0.2}),
		Platform:    &scriptedPlatform{},
		RunningTime: time.Hour,
		Start:       t0,
	}
}

func TestReplicatedJobCompletesOnFirstReplica(t *testing.T) {
	res, err := RunReplicatedJob(baseReplicated())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("job did not finish")
	}
	// No checkpointing overhead: exactly the running time.
	if res.Completion != time.Hour {
		t.Errorf("completion = %v, want 1h", res.Completion)
	}
	if res.Restarts != 0 || res.WaitedForOD != 0 {
		t.Errorf("restarts/waits = %d/%v, want 0/0", res.Restarts, res.WaitedForOD)
	}
	// Both replicas paid for their hour: ~0.3 + 0.2 dollars.
	if res.SpotCost < 0.45 || res.SpotCost > 0.55 {
		t.Errorf("spot cost = %v, want ~0.5 (both replicas billed)", res.SpotCost)
	}
}

func TestReplicatedJobSurvivesOneRevocation(t *testing.T) {
	cfg := baseReplicated()
	// Replica A revoked at +30m; replica B survives and finishes.
	cfg.Replicas = twoReplicas(
		[]float64{0, 0.3, 0.5, 1.5, 48, 1.5},
		[]float64{0, 0.2, 48, 0.2},
	)
	res, err := RunReplicatedJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || res.Restarts != 0 {
		t.Errorf("finished=%v restarts=%d, want survive via replica B", res.Finished, res.Restarts)
	}
	if res.Completion != time.Hour {
		t.Errorf("completion = %v, want 1h", res.Completion)
	}
}

func TestReplicatedJobTotalLossRestartsOnOD(t *testing.T) {
	cfg := baseReplicated()
	// Both replicas revoked at +30m; od available: restart from scratch.
	cfg.Replicas = twoReplicas(
		[]float64{0, 0.3, 0.5, 1.5, 48, 1.5},
		[]float64{0, 0.2, 0.5, 1.4, 48, 1.4},
	)
	res, err := RunReplicatedJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("job did not finish")
	}
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	// 30 minutes of lost spot work + a full hour on-demand.
	if res.Completion < 90*time.Minute {
		t.Errorf("completion = %v, want >= 1.5h (work lost at total loss)", res.Completion)
	}
}

func TestReplicatedJobWaitsDuringODOutage(t *testing.T) {
	cfg := baseReplicated()
	cfg.Replicas = twoReplicas(
		[]float64{0, 0.3, 0.5, 1.5, 48, 1.5},
		[]float64{0, 0.2, 0.5, 1.4, 48, 1.4},
	)
	cfg.Platform = &scriptedPlatform{outages: map[market.SpotID][][2]time.Time{
		mkt: {{t0, t0.Add(3 * time.Hour)}},
	}}
	res, err := RunReplicatedJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("job did not finish")
	}
	if res.WaitedForOD < 2*time.Hour {
		t.Errorf("waited = %v, want >= 2h (od outage until +3h)", res.WaitedForOD)
	}
	// With an uncorrelated fallback the wait disappears.
	cfg.Fallback = func(time.Time) market.SpotID { return repMkt2 }
	res, err = RunReplicatedJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WaitedForOD != 0 {
		t.Errorf("waited = %v with uncorrelated fallback, want 0", res.WaitedForOD)
	}
}

func TestReplicatedJobDeadline(t *testing.T) {
	cfg := baseReplicated()
	cfg.Replicas = twoReplicas([]float64{0, 5}, []float64{0, 5}) // both dead at start
	cfg.Platform = &scriptedPlatform{outages: map[market.SpotID][][2]time.Time{
		mkt:     {{t0, t0.Add(1000 * time.Hour)}},
		repMkt2: {{t0, t0.Add(1000 * time.Hour)}},
	}}
	cfg.Deadline = 2 * time.Hour
	res, err := RunReplicatedJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished {
		t.Error("unfinishable job reported finished")
	}
}

func TestRunReplicatedTrials(t *testing.T) {
	cfg := baseReplicated()
	starts := []time.Time{t0, t0.Add(2 * time.Hour), t0.Add(5 * time.Hour)}
	st, err := RunReplicatedTrials(cfg, starts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trials != 3 || st.Unfinished != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanCompletion != time.Hour {
		t.Errorf("mean completion = %v, want 1h", st.MeanCompletion)
	}
	if st.MeanSpotCost <= 0 {
		t.Errorf("mean spot cost = %v, want positive", st.MeanSpotCost)
	}
	if _, err := RunReplicatedTrials(cfg, nil); err == nil {
		t.Error("empty starts accepted")
	}
}

func TestReplicatedJobValidation(t *testing.T) {
	bad := []ReplicatedJobConfig{
		{},
		{Replicas: []Replica{{Market: mkt, ODPrice: 1}}},                                                      // empty trace
		{Replicas: []Replica{{Market: mkt, Trace: trace(0, 0.3)}}},                                            // zero od price
		{Replicas: []Replica{{Market: mkt, ODPrice: 1, Trace: trace(0, 0.3)}}},                                // nil platform
		{Replicas: []Replica{{Market: mkt, ODPrice: 1, Trace: trace(0, 0.3)}}, Platform: &scriptedPlatform{}}, // no running time
	}
	for i, cfg := range bad {
		if _, err := RunReplicatedJob(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
