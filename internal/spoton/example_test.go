package spoton_test

import (
	"fmt"
	"time"

	"spotlight/internal/spoton"
)

func ExampleExpectedCostPerUnitTime() {
	// Eq 6.1 for a 1-hour job on a market with a 50% revocation chance,
	// 2-hour expected time to revocation, 6-minute checkpoints every
	// hour, and a $0.20/hour spot price.
	cost, err := spoton.ExpectedCostPerUnitTime(spoton.ExpectedCostParams{
		SpotPrice:              0.20,
		RevocationProb:         0.5,
		ExpectedRevocationTime: 2 * time.Hour,
		RemainingTime:          time.Hour,
		CheckpointTime:         6 * time.Minute,
		CheckpointInterval:     time.Hour,
		LostWork:               15 * time.Minute,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("$%.4f per useful hour\n", cost)
	// Output:
	// $0.2553 per useful hour
}

func ExampleOptimalCheckpointInterval() {
	tau := spoton.OptimalCheckpointInterval(6*time.Minute, 12*time.Hour, 24*time.Hour)
	fmt.Println(tau.Round(time.Minute))
	// Output:
	// 1h33m0s
}
