package spoton

import (
	"math"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
)

var (
	mkt     = market.SpotID{Zone: "us-east-1e", Type: "d2.2xlarge", Product: market.ProductLinux}
	fallMkt = market.SpotID{Zone: "us-east-1e", Type: "m4.large", Product: market.ProductLinux}
	t0      = time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)
)

type scriptedPlatform struct {
	outages map[market.SpotID][][2]time.Time
}

func (p *scriptedPlatform) ODAvailable(m market.SpotID, t time.Time) bool {
	for _, o := range p.outages[m] {
		if !t.Before(o[0]) && t.Before(o[1]) {
			return false
		}
	}
	return true
}

func trace(pairs ...float64) []store.PricePoint {
	var out []store.PricePoint
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, store.PricePoint{
			At:    t0.Add(time.Duration(pairs[i] * float64(time.Hour))),
			Price: pairs[i+1],
		})
	}
	return out
}

func baseJob() JobConfig {
	return JobConfig{
		Market:             mkt,
		ODPrice:            1.0,
		Trace:              trace(0, 0.3, 48, 0.3),
		Platform:           &scriptedPlatform{},
		RunningTime:        time.Hour,
		CheckpointTime:     6 * time.Minute,
		CheckpointInterval: 15 * time.Minute,
		Start:              t0,
	}
}

func TestExpectedCostEq61(t *testing.T) {
	// Hand-computed example: Pk=0.5, T=1h, E[Zk]=2h, TL=0.25h, tau=1h,
	// Tc=0.1h, price=$0.2/h.
	// numerator   = (0.5*1 + 0.5*2) * 0.2         = 0.3
	// denominator = 0.5*1 + 0.5*(2-0.25) - 2*0.1  = 1.175
	got, err := ExpectedCostPerUnitTime(ExpectedCostParams{
		SpotPrice:              0.2,
		RevocationProb:         0.5,
		ExpectedRevocationTime: 2 * time.Hour,
		RemainingTime:          time.Hour,
		CheckpointTime:         6 * time.Minute,
		CheckpointInterval:     time.Hour,
		LostWork:               15 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.3 / 1.175
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Eq 6.1 = %v, want %v", got, want)
	}
}

func TestExpectedCostNoRevocationReducesToSpotPrice(t *testing.T) {
	// With Pk=0 and no checkpointing overhead the cost per unit time is
	// exactly the spot price.
	got, err := ExpectedCostPerUnitTime(ExpectedCostParams{
		SpotPrice:          0.25,
		RemainingTime:      2 * time.Hour,
		CheckpointInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("cost = %v, want 0.25", got)
	}
}

func TestExpectedCostErrors(t *testing.T) {
	if _, err := ExpectedCostPerUnitTime(ExpectedCostParams{CheckpointInterval: 0}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := ExpectedCostPerUnitTime(ExpectedCostParams{CheckpointInterval: time.Hour, RevocationProb: 1.5}); err == nil {
		t.Error("probability > 1 accepted")
	}
	// Overheads swallowing the work must error, not return garbage.
	_, err := ExpectedCostPerUnitTime(ExpectedCostParams{
		SpotPrice:              1,
		RevocationProb:         0.99,
		ExpectedRevocationTime: time.Minute,
		RemainingTime:          time.Minute,
		CheckpointTime:         time.Hour,
		CheckpointInterval:     time.Minute,
		LostWork:               time.Hour,
	})
	if err == nil {
		t.Error("non-positive denominator accepted")
	}
}

func TestJobWithoutRevocations(t *testing.T) {
	res, err := RunJob(baseJob())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("job did not finish")
	}
	if res.Revocations != 0 {
		t.Errorf("revocations = %d, want 0", res.Revocations)
	}
	// 1 hour of work + 3 checkpoints (at 15, 30, 45 min of work; the
	// final one at 60 is skipped) x 6 min = 78 minutes.
	want := 78 * time.Minute
	if res.Completion != want {
		t.Errorf("completion = %v, want %v", res.Completion, want)
	}
}

func TestJobRevocationLosesUncheckpointedWork(t *testing.T) {
	cfg := baseJob()
	// Spike at +20 min: the job has checkpointed at 15 min of work, so it
	// loses the work since then and restarts on-demand.
	cfg.Trace = trace(0, 0.3, 20.0/60, 1.5, 1, 0.3)
	res, err := RunJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("job did not finish")
	}
	if res.Revocations != 1 {
		t.Errorf("revocations = %d, want 1", res.Revocations)
	}
	if res.LostWork == 0 {
		t.Error("no lost work recorded at revocation")
	}
	if res.WaitedForOD != 0 {
		t.Errorf("waited = %v, want 0 (od available)", res.WaitedForOD)
	}
	// Completion exceeds the no-revocation runtime.
	if res.Completion <= 78*time.Minute {
		t.Errorf("completion = %v, want > 78m", res.Completion)
	}
}

func TestJobWaitsWhenFallbackUnavailable(t *testing.T) {
	cfg := baseJob()
	cfg.Trace = trace(0, 0.3, 0.5, 1.5, 3, 0.3) // spike from +30m to +3h
	cfg.Platform = &scriptedPlatform{outages: map[market.SpotID][][2]time.Time{
		mkt: {{t0, t0.Add(2 * time.Hour)}}, // od out for 2 hours
	}}
	res, err := RunJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("job did not finish")
	}
	if res.WaitedForOD == 0 {
		t.Error("job never waited despite od outage")
	}
	// It must wait ~90 minutes (od recovers at +2h, spike ends at +3h).
	if res.WaitedForOD < 60*time.Minute {
		t.Errorf("waited = %v, want >= 1h", res.WaitedForOD)
	}
}

func TestSpotLightFallbackAvoidsWait(t *testing.T) {
	cfg := baseJob()
	cfg.Trace = trace(0, 0.3, 0.5, 1.5, 3, 0.3)
	cfg.Platform = &scriptedPlatform{outages: map[market.SpotID][][2]time.Time{
		mkt: {{t0, t0.Add(2 * time.Hour)}},
	}}
	cfg.Fallback = func(time.Time) market.SpotID { return fallMkt }
	res, err := RunJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.WaitedForOD != 0 {
		t.Errorf("waited = %v with uncorrelated fallback, want 0", res.WaitedForOD)
	}
}

func TestJobDeadline(t *testing.T) {
	cfg := baseJob()
	// Price permanently above od and od permanently out: cannot finish.
	cfg.Trace = trace(0, 5)
	cfg.Platform = &scriptedPlatform{outages: map[market.SpotID][][2]time.Time{
		mkt: {{t0, t0.Add(1000 * time.Hour)}},
	}}
	cfg.Deadline = 2 * time.Hour
	res, err := RunJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finished {
		t.Error("unfinishable job reported finished")
	}
	if res.Completion < 2*time.Hour {
		t.Errorf("completion = %v, want >= deadline", res.Completion)
	}
}

func TestJobValidation(t *testing.T) {
	bad := []JobConfig{
		{},
		{Trace: trace(0, 0.3)},
		{Trace: trace(0, 0.3), Platform: &scriptedPlatform{}},
		{Trace: trace(0, 0.3), Platform: &scriptedPlatform{}, ODPrice: 1},
	}
	for i, cfg := range bad {
		if _, err := RunJob(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestRunTrials(t *testing.T) {
	cfg := baseJob()
	cfg.Trace = trace(0, 0.3, 6, 1.5, 7, 0.3, 48, 0.3)
	starts := []time.Time{t0, t0.Add(5 * time.Hour), t0.Add(10 * time.Hour)}
	st, err := RunTrials(cfg, starts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trials != 3 {
		t.Errorf("trials = %d, want 3", st.Trials)
	}
	if st.MeanCompletion < 78*time.Minute {
		t.Errorf("mean completion = %v, want >= 78m", st.MeanCompletion)
	}
	if st.MaxCompletion < st.MeanCompletion {
		t.Errorf("max %v < mean %v", st.MaxCompletion, st.MeanCompletion)
	}
	if _, err := RunTrials(cfg, nil); err == nil {
		t.Error("empty starts accepted")
	}
}

func TestOptimalCheckpointInterval(t *testing.T) {
	// sqrt(2 * 6m * 12h) = sqrt(2*360*43200) s = ~93.3 min.
	got := OptimalCheckpointInterval(6*time.Minute, 12*time.Hour, 24*time.Hour)
	want := time.Duration(math.Sqrt(2 * float64(6*time.Minute) * float64(12*time.Hour)))
	if got != want {
		t.Errorf("interval = %v, want %v", got, want)
	}
	// Clamps.
	if got := OptimalCheckpointInterval(6*time.Minute, 1000*time.Hour, time.Hour); got != time.Hour {
		t.Errorf("upper clamp = %v, want 1h", got)
	}
	if got := OptimalCheckpointInterval(time.Nanosecond, time.Microsecond, time.Hour); got != time.Minute {
		t.Errorf("lower clamp = %v, want 1m", got)
	}
	if got := OptimalCheckpointInterval(0, time.Hour, time.Hour); got != time.Hour {
		t.Errorf("zero checkpoint time = %v, want job length", got)
	}
}
