package demand

import (
	"strings"
	"testing"
)

func TestDefaultProfilesValid(t *testing.T) {
	for region, prof := range DefaultProfiles() {
		if err := prof.validate(); err != nil {
			t.Errorf("default profile for %s invalid: %v", region, err)
		}
	}
	if len(DefaultProfiles()) != 9 {
		t.Errorf("default profiles = %d regions, want 9", len(DefaultProfiles()))
	}
}

func TestDefaultProvisioningOrdering(t *testing.T) {
	// §5.2.2: us-east-1 best provisioned, sa-east-1 worst.
	p := DefaultProfiles()
	if p["us-east-1"].Provision <= p["sa-east-1"].Provision {
		t.Errorf("us-east-1 provision %v not above sa-east-1 %v",
			p["us-east-1"].Provision, p["sa-east-1"].Provision)
	}
	if p["sa-east-1"].SpikeRatePerDay <= p["us-east-1"].SpikeRatePerDay {
		t.Errorf("sa-east-1 spike rate %v not above us-east-1 %v",
			p["sa-east-1"].SpikeRatePerDay, p["us-east-1"].SpikeRatePerDay)
	}
}

func TestLoadProfilesMergesOverDefaults(t *testing.T) {
	in := `{"sa-east-1": {"provision": 0.9, "volatility": 0.12,
		"spikeRatePerDay": 1.0, "marketSpikeRatePerDay": 3.0,
		"regionalShare": 0.4, "poolScale": 1.0, "spotCNABase": 0.05}}`
	profs, err := LoadProfiles(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := profs["sa-east-1"].Provision; got != 0.9 {
		t.Errorf("sa-east-1 provision = %v, want 0.9 (overridden)", got)
	}
	// Unmentioned regions keep their defaults.
	if got := profs["us-east-1"]; got != DefaultProfiles()["us-east-1"] {
		t.Errorf("us-east-1 = %+v, want default", got)
	}
	if len(profs) != 9 {
		t.Errorf("profiles = %d regions, want 9", len(profs))
	}
}

func TestLoadProfilesRejectsBadInput(t *testing.T) {
	bad := []string{
		`not json`,
		`{"atlantis-1": {"provision": 1, "poolScale": 1}}`, // unknown region
		`{"sa-east-1": {"provision": 0, "poolScale": 1}}`,  // zero provision
		`{"sa-east-1": {"provision": 1, "poolScale": 0}}`,  // zero pool scale
		`{"sa-east-1": {"provision": 1, "poolScale": 1, "volatility": 2}}`,
		`{"sa-east-1": {"provision": 1, "poolScale": 1, "regionalShare": -0.1}}`,
		`{"sa-east-1": {"provision": 1, "poolScale": 1, "spotCNABase": 0.9}}`,
		`{"sa-east-1": {"provision": 1, "poolScale": 1, "spikeRatePerDay": -1}}`,
	}
	for i, in := range bad {
		if _, err := LoadProfiles(strings.NewReader(in)); err == nil {
			t.Errorf("input %d accepted: %s", i, in)
		}
	}
}
