package demand

import (
	"math"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/simtime"
)

func newTestModel(t *testing.T, seed uint64) (*market.Catalog, *Model) {
	t.Helper()
	cat := market.New()
	m, err := NewModel(cat, Config{Seed: seed, Tick: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	return cat, m
}

func TestNewModelValidation(t *testing.T) {
	cat := market.New()
	if _, err := NewModel(cat, Config{Seed: 1, Tick: 0}); err == nil {
		t.Error("NewModel accepted zero tick")
	}
	if _, err := NewModel(cat, Config{Seed: 1, Tick: -time.Second}); err == nil {
		t.Error("NewModel accepted negative tick")
	}
}

func TestModelCardinality(t *testing.T) {
	cat, m := newTestModel(t, 1)
	if m.PoolCount() != len(cat.Pools()) {
		t.Errorf("PoolCount = %d, want %d", m.PoolCount(), len(cat.Pools()))
	}
	if m.MarketCount() != len(cat.SpotMarkets()) {
		t.Errorf("MarketCount = %d, want %d", m.MarketCount(), len(cat.SpotMarkets()))
	}
}

func TestIndexRoundTrip(t *testing.T) {
	cat, m := newTestModel(t, 1)
	pid := cat.Pools()[7]
	i, err := m.PoolIndex(pid)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PoolIDAt(i); got != pid {
		t.Errorf("PoolIDAt(PoolIndex(%v)) = %v", pid, got)
	}
	sid := cat.SpotMarkets()[42]
	j, err := m.MarketIndex(sid)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MarketIDAt(j); got != sid {
		t.Errorf("MarketIDAt(MarketIndex(%v)) = %v", sid, got)
	}
	if _, err := m.PoolIndex(market.PoolID{Zone: "nowhere-1a", Family: "c3"}); err == nil {
		t.Error("PoolIndex accepted unknown pool")
	}
	if _, err := m.MarketIndex(market.SpotID{Zone: "nowhere-1a", Type: "c3.large", Product: market.ProductLinux}); err == nil {
		t.Error("MarketIndex accepted unknown market")
	}
}

func TestMarketPoolIndexConsistent(t *testing.T) {
	_, m := newTestModel(t, 1)
	for i := 0; i < m.MarketCount(); i += 97 {
		sid := m.MarketIDAt(i)
		pi := m.MarketPoolIndex(i)
		if got := m.PoolIDAt(pi); got != sid.Pool() {
			t.Errorf("market %v mapped to pool %v, want %v", sid, got, sid.Pool())
		}
	}
}

// stepDays advances the model n simulated days and invokes visit each tick.
func stepDays(m *Model, start time.Time, days int, tick time.Duration, visit func(now time.Time)) {
	steps := int(time.Duration(days) * 24 * time.Hour / tick)
	now := start
	for s := 0; s < steps; s++ {
		now = now.Add(tick)
		m.Step(now)
		if visit != nil {
			visit(now)
		}
	}
}

func TestInvariantsOverTime(t *testing.T) {
	_, m := newTestModel(t, 2)
	stepDays(m, simtime.StudyEpoch, 3, 5*time.Minute, func(time.Time) {
		for i := 0; i < m.PoolCount(); i += 13 {
			pd := m.PoolAt(i)
			if pd.ReservedGranted < 0 || pd.ReservedGranted > 1 {
				t.Fatalf("pool %v: ReservedGranted=%v out of [0,1]", m.PoolIDAt(i), pd.ReservedGranted)
			}
			if pd.ReservedRunning < 0 || pd.ReservedRunning > pd.ReservedGranted+1e-9 {
				t.Fatalf("pool %v: ReservedRunning=%v exceeds granted %v", m.PoolIDAt(i), pd.ReservedRunning, pd.ReservedGranted)
			}
			if pd.OnDemandDesired < 0 || pd.OnDemandDesired > 1.2 {
				t.Fatalf("pool %v: OnDemandDesired=%v out of range", m.PoolIDAt(i), pd.OnDemandDesired)
			}
		}
		for i := 0; i < m.MarketCount(); i += 211 {
			ms := m.MarketAt(i)
			if ms.DemandFrac < 0 || math.IsNaN(ms.DemandFrac) {
				t.Fatalf("market %v: bad DemandFrac %v", m.MarketIDAt(i), ms.DemandFrac)
			}
			if ms.PriceScale <= 0 || math.IsNaN(ms.PriceScale) {
				t.Fatalf("market %v: bad PriceScale %v", m.MarketIDAt(i), ms.PriceScale)
			}
		}
	})
}

func TestDeterminism(t *testing.T) {
	_, m1 := newTestModel(t, 77)
	_, m2 := newTestModel(t, 77)
	stepDays(m1, simtime.StudyEpoch, 1, 5*time.Minute, nil)
	stepDays(m2, simtime.StudyEpoch, 1, 5*time.Minute, nil)
	for i := 0; i < m1.PoolCount(); i++ {
		if m1.PoolAt(i) != m2.PoolAt(i) {
			t.Fatalf("pool %d diverged under equal seeds", i)
		}
	}
	for i := 0; i < m1.MarketCount(); i++ {
		if m1.MarketAt(i) != m2.MarketAt(i) {
			t.Fatalf("market %d diverged under equal seeds", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	_, m1 := newTestModel(t, 1)
	_, m2 := newTestModel(t, 2)
	stepDays(m1, simtime.StudyEpoch, 1, 5*time.Minute, nil)
	stepDays(m2, simtime.StudyEpoch, 1, 5*time.Minute, nil)
	same := 0
	for i := 0; i < m1.PoolCount(); i++ {
		if m1.PoolAt(i) == m2.PoolAt(i) {
			same++
		}
	}
	if same == m1.PoolCount() {
		t.Error("different seeds produced identical demand")
	}
}

// TestProvisioningOrdering checks the calibration core of §5.2.2: pools in
// under-provisioned regions exceed their on-demand capacity bound far more
// often than pools in the best-provisioned region.
func TestProvisioningOrdering(t *testing.T) {
	cat, m := newTestModel(t, 3)
	saturated := make(map[market.Region]int)
	samples := make(map[market.Region]int)
	stepDays(m, simtime.StudyEpoch, 7, 5*time.Minute, func(time.Time) {
		for i := 0; i < m.PoolCount(); i++ {
			pd := m.PoolAt(i)
			r := m.PoolIDAt(i).Zone.RegionOf()
			samples[r]++
			if pd.OnDemandDesired >= 1-pd.ReservedGranted {
				saturated[r]++
			}
		}
	})
	rate := func(r market.Region) float64 {
		if samples[r] == 0 {
			return 0
		}
		return float64(saturated[r]) / float64(samples[r])
	}
	if rate("sa-east-1") <= rate("us-east-1") {
		t.Errorf("sa-east-1 saturation %.4f should exceed us-east-1 %.4f",
			rate("sa-east-1"), rate("us-east-1"))
	}
	if rate("us-east-1") > 0.02 {
		t.Errorf("us-east-1 saturation %.4f too high for a well-provisioned region", rate("us-east-1"))
	}
	if rate("sa-east-1") == 0 {
		t.Error("sa-east-1 never saturated in a week; demand model too tame")
	}
	_ = cat
}

func TestSupplySharesSumToOnePerPool(t *testing.T) {
	cat, m := newTestModel(t, 1)
	byPool := make(map[market.PoolID]float64)
	for i := 0; i < m.MarketCount(); i++ {
		byPool[m.MarketIDAt(i).Pool()] += m.Params(i).SupplyShare
	}
	if len(byPool) != len(cat.Pools()) {
		t.Fatalf("markets cover %d pools, want %d", len(byPool), len(cat.Pools()))
	}
	for pid, sum := range byPool {
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("pool %v supply shares sum to %v, want 1", pid, sum)
		}
	}
}

func TestStaticParamsRanges(t *testing.T) {
	_, m := newTestModel(t, 1)
	volatile := 0
	for i := 0; i < m.MarketCount(); i++ {
		p := m.Params(i)
		if p.FloorFrac < 0.05 || p.FloorFrac > 0.15 {
			t.Fatalf("market %v FloorFrac %v out of range", m.MarketIDAt(i), p.FloorFrac)
		}
		if p.CNABase < 0 || p.CNABase > 0.3 {
			t.Fatalf("market %v CNABase %v out of range", m.MarketIDAt(i), p.CNABase)
		}
		if p.SigmaClass < 0 || p.SigmaClass > 2 {
			t.Fatalf("market %v SigmaClass %d out of range", m.MarketIDAt(i), p.SigmaClass)
		}
		if p.Volatile {
			volatile++
			if p.SigmaClass != 2 {
				t.Fatalf("volatile market %v has SigmaClass %d, want 2", m.MarketIDAt(i), p.SigmaClass)
			}
		}
	}
	frac := float64(volatile) / float64(m.MarketCount())
	if frac < 0.10 || frac > 0.20 {
		t.Errorf("volatile market fraction = %.3f, want ~0.15", frac)
	}
}

func TestDiurnalShape(t *testing.T) {
	// Peak at 14:00 local, trough at 02:00 local.
	peak := time.Date(2015, 9, 2, 14, 0, 0, 0, time.UTC)
	trough := time.Date(2015, 9, 2, 2, 0, 0, 0, time.UTC)
	if d := diurnal(peak, 0); math.Abs(d-1) > 1e-9 {
		t.Errorf("diurnal at 14:00 = %v, want 1", d)
	}
	if d := diurnal(trough, 0); math.Abs(d+1) > 1e-9 {
		t.Errorf("diurnal at 02:00 = %v, want -1", d)
	}
}

func TestWeeklyShape(t *testing.T) {
	sat := time.Date(2015, 9, 5, 12, 0, 0, 0, time.UTC) // Saturday
	wed := time.Date(2015, 9, 2, 12, 0, 0, 0, time.UTC) // Wednesday
	if weekly(sat) >= weekly(wed) {
		t.Errorf("weekend load %v should be below weekday load %v", weekly(sat), weekly(wed))
	}
}

func TestSpikeDurationTail(t *testing.T) {
	rng := seededRNG(9, "duration-test")
	n := 20000
	over1h, over10h := 0, 0
	for i := 0; i < n; i++ {
		d := spikeDuration(rng)
		if d < 2*time.Minute {
			t.Fatalf("duration %v below the 2-minute floor", d)
		}
		if d > time.Hour {
			over1h++
		}
		if d > 10*time.Hour {
			over10h++
		}
	}
	p1h := float64(over1h) / float64(n)
	p10h := float64(over10h) / float64(n)
	// Fig 5.9 targets: ~17% of outages exceed one hour, ~5% exceed ten.
	if p1h < 0.08 || p1h > 0.35 {
		t.Errorf("P(duration > 1h) = %.3f, want within [0.08, 0.35]", p1h)
	}
	if p10h < 0.005 || p10h > 0.12 {
		t.Errorf("P(duration > 10h) = %.3f, want within [0.005, 0.12]", p10h)
	}
}

func TestPruneSpikes(t *testing.T) {
	now := simtime.StudyEpoch
	ss := []spike{
		{end: now.Add(-time.Minute), mag: 1},
		{end: now.Add(time.Minute), mag: 2},
		{end: now, mag: 3}, // exactly-now expires
	}
	out := pruneSpikes(ss, now)
	if len(out) != 1 || out[0].mag != 2 {
		t.Errorf("pruneSpikes = %+v, want the single live spike", out)
	}
}
