// Package demand generates the seeded stochastic demand that drives the
// cloud simulator: diurnal/weekly load cycles, AR(1) noise, flash-crowd
// spikes, and the spot-market bid-side parameters. Every process is
// deterministic under a fixed seed, which makes studies, tests, and
// benchmarks reproducible.
//
// The statistical features are chosen to reproduce the qualitative
// observations of the paper's Chapter 5: a few under-provisioned regions
// dominate on-demand unavailability (§5.2.2), demand is partially
// correlated across availability zones because AZ-unspecified requests
// spill over (§3.2.2, §5.2.3), outage durations are short with a heavy
// tail (§5.2.4), and spot prices sit near a deep discount with occasional
// spikes past the on-demand price (§5.1).
package demand

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"spotlight/internal/market"
)

// Profile captures the demand character of one region.
type Profile struct {
	// Provision is the capacity headroom factor: the ratio of the
	// on-demand capacity bound to the region's typical peak demand.
	// Values below ~1.05 produce regular saturation at daily peaks;
	// larger values make outages rare. (§5.2.2: us-east-1 is
	// well-provisioned, sa-east-1 / ap-southeast-* are not.)
	Provision float64 `json:"provision"`

	// Volatility is the standard deviation of the AR(1) multiplicative
	// noise on on-demand load.
	Volatility float64 `json:"volatility"`

	// SpikeRatePerDay is the expected number of flash-crowd demand
	// spikes per capacity pool per day.
	SpikeRatePerDay float64 `json:"spikeRatePerDay"`

	// MarketSpikeRatePerDay is the expected number of spot-demand spikes
	// per spot market per day (spot-side surges that move the spot price
	// without any on-demand shortage).
	MarketSpikeRatePerDay float64 `json:"marketSpikeRatePerDay"`

	// RegionalShare is the fraction of noise and spike energy shared by
	// every availability zone in the region (the rest is AZ-local). It
	// controls the cross-AZ unavailability coupling of Fig 5.8.
	RegionalShare float64 `json:"regionalShare"`

	// PoolScale multiplies the base pool capacity; larger regions have
	// more physical servers behind each market.
	PoolScale float64 `json:"poolScale"`

	// SpotCNABase is the peak probability that a spot request is refused
	// with capacity-not-available when the spot price is pinned at the
	// low-price floor (§5.3: EC2 withholds capacity it would otherwise
	// sell below its operating cost).
	SpotCNABase float64 `json:"spotCNABase"`
}

// validate rejects physically meaningless profile values.
func (p Profile) validate() error {
	switch {
	case p.Provision <= 0:
		return errors.New("demand: profile provision must be positive")
	case p.Volatility < 0 || p.Volatility > 1:
		return errors.New("demand: profile volatility outside [0,1]")
	case p.SpikeRatePerDay < 0 || p.MarketSpikeRatePerDay < 0:
		return errors.New("demand: negative spike rate")
	case p.RegionalShare < 0 || p.RegionalShare > 1:
		return errors.New("demand: regional share outside [0,1]")
	case p.PoolScale <= 0:
		return errors.New("demand: pool scale must be positive")
	case p.SpotCNABase < 0 || p.SpotCNABase > 0.5:
		return errors.New("demand: spot CNA base outside [0,0.5]")
	}
	return nil
}

// LoadProfiles reads a JSON object mapping region names to profiles and
// merges it over the defaults, so a file may override only some regions.
// Example file:
//
//	{"sa-east-1": {"provision": 0.9, "volatility": 0.12,
//	               "spikeRatePerDay": 1.0, "marketSpikeRatePerDay": 3.0,
//	               "regionalShare": 0.4, "poolScale": 1.0,
//	               "spotCNABase": 0.05}}
func LoadProfiles(r io.Reader) (map[market.Region]Profile, error) {
	var raw map[market.Region]Profile
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return nil, fmt.Errorf("demand: decode profiles: %w", err)
	}
	out := DefaultProfiles()
	for region, prof := range raw {
		if _, known := out[region]; !known {
			return nil, fmt.Errorf("demand: unknown region %q in profiles", region)
		}
		if err := prof.validate(); err != nil {
			return nil, fmt.Errorf("demand: region %q: %w", region, err)
		}
		out[region] = prof
	}
	return out, nil
}

// DefaultProfiles returns the per-region demand profiles used by the
// study. The ordering of provisioning quality follows the paper's
// Figure 5.5/5.6 observations.
func DefaultProfiles() map[market.Region]Profile {
	return map[market.Region]Profile{
		"us-east-1":      {Provision: 1.35, Volatility: 0.05, SpikeRatePerDay: 0.12, MarketSpikeRatePerDay: 2.2, RegionalShare: 0.30, PoolScale: 4.0, SpotCNABase: 0.055},
		"us-west-2":      {Provision: 1.28, Volatility: 0.05, SpikeRatePerDay: 0.12, MarketSpikeRatePerDay: 1.8, RegionalShare: 0.30, PoolScale: 2.5, SpotCNABase: 0.025},
		"us-west-1":      {Provision: 1.20, Volatility: 0.06, SpikeRatePerDay: 0.18, MarketSpikeRatePerDay: 1.8, RegionalShare: 0.30, PoolScale: 1.6, SpotCNABase: 0.025},
		"eu-west-1":      {Provision: 1.22, Volatility: 0.06, SpikeRatePerDay: 0.15, MarketSpikeRatePerDay: 1.8, RegionalShare: 0.30, PoolScale: 2.2, SpotCNABase: 0.02},
		"eu-central-1":   {Provision: 1.18, Volatility: 0.06, SpikeRatePerDay: 0.20, MarketSpikeRatePerDay: 1.8, RegionalShare: 0.30, PoolScale: 1.4, SpotCNABase: 0.02},
		"ap-northeast-1": {Provision: 1.15, Volatility: 0.07, SpikeRatePerDay: 0.22, MarketSpikeRatePerDay: 2.0, RegionalShare: 0.30, PoolScale: 1.8, SpotCNABase: 0.025},
		"ap-southeast-1": {Provision: 1.08, Volatility: 0.08, SpikeRatePerDay: 0.35, MarketSpikeRatePerDay: 2.4, RegionalShare: 0.35, PoolScale: 1.2, SpotCNABase: 0.025},
		"ap-southeast-2": {Provision: 1.06, Volatility: 0.08, SpikeRatePerDay: 0.40, MarketSpikeRatePerDay: 2.4, RegionalShare: 0.35, PoolScale: 1.2, SpotCNABase: 0.025},
		"sa-east-1":      {Provision: 1.02, Volatility: 0.10, SpikeRatePerDay: 0.55, MarketSpikeRatePerDay: 3.0, RegionalShare: 0.40, PoolScale: 1.0, SpotCNABase: 0.04},
	}
}
