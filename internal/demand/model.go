package demand

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"time"

	"spotlight/internal/market"
)

// Config parameterizes the demand model.
type Config struct {
	// Seed drives every stochastic process; equal seeds give identical
	// demand histories.
	Seed uint64

	// Tick is the simulation step the model will be advanced by.
	Tick time.Duration

	// Profiles maps each region to its demand profile. Regions without a
	// profile fall back to the sa-east-1 default (most conservative).
	Profiles map[market.Region]Profile

	// BaseCapacityUnits is the pool capacity before the region's
	// PoolScale multiplier. Zero selects the default.
	BaseCapacityUnits int

	// ForceVolatile marks specific markets as volatile regardless of the
	// seeded draw. The paper's case studies deliberately pick markets
	// that exhibit frequent price spikes (d2.* in us-east-1e, g2.8xlarge
	// in ap-southeast-2); forcing them keeps those experiments
	// meaningful under any seed.
	ForceVolatile []market.SpotID

	// HotPools marks capacity pools as chronically under-provisioned:
	// higher load, more and longer flash crowds. The Chapter 6 markets
	// show 8-27% on-demand unavailability over the study — behaviour only
	// pools like these produce.
	HotPools []market.PoolID
}

const defaultBaseCapacityUnits = 2560

// PoolDemand is the demand state of one capacity pool at the current tick.
// All quantities are fractions of the pool's capacity.
type PoolDemand struct {
	// ReservedGranted is the share of capacity promised to reservation
	// holders; it upper-bounds on-demand supply (Fig 2.2).
	ReservedGranted float64
	// ReservedRunning is the share of capacity actually used by running
	// reserved instances; it lower-bounds what the spot tier can never
	// touch.
	ReservedRunning float64
	// OnDemandDesired is the share of capacity on-demand customers want
	// right now. Values above 1-ReservedGranted mean the pool is
	// saturated and requests are rejected.
	OnDemandDesired float64
}

// MarketState is the dynamic spot-side demand of one market at the current
// tick.
type MarketState struct {
	// DemandFrac is spot demand in fractions of pool capacity.
	DemandFrac float64
	// PriceScale is a slowly wandering multiplicative jitter on the
	// market's clearing price; it is what lets a c3.2xlarge temporarily
	// out-price a c3.8xlarge (Fig 5.1a).
	PriceScale float64
}

// MarketParams are the static bid-side characteristics of one market.
type MarketParams struct {
	// SupplyShare is the market's share of its pool's spot capacity.
	SupplyShare float64
	// SigmaClass selects the bid-distribution width (0 calm .. 2 volatile).
	SigmaClass int
	// FloorFrac is the price floor as a multiple of the on-demand price.
	FloorFrac float64
	// CNABase is the capacity-not-available probability when the price
	// is pinned at the floor.
	CNABase float64
	// Volatile marks the market as one of the high-churn markets the
	// paper's Revocation probes target.
	Volatile bool
}

type spike struct {
	start time.Time
	end   time.Time
	mag   float64
}

// effectiveMag ramps the flash crowd up and down over 30% of its lifetime
// at each edge. The ramps matter: they create *partial* shortages (only
// the largest instance types rejected) on the shoulders of every event,
// which is what keeps family-related unavailability a probability rather
// than a certainty (§5.2.3).
func (s spike) effectiveMag(now time.Time) float64 {
	total := s.end.Sub(s.start)
	if total <= 0 {
		return s.mag
	}
	pos := float64(now.Sub(s.start)) / float64(total)
	switch {
	case pos <= 0 || pos >= 1:
		return 0
	case pos < 0.3:
		return s.mag * pos / 0.3
	case pos > 0.7:
		return s.mag * (1 - pos) / 0.3
	default:
		return s.mag
	}
}

type regionState struct {
	prof   Profile
	rng    *rand.Rand
	noise  float64
	tzHour float64
	// famSpikes holds region-wide flash crowds per family; they couple
	// demand across the region's availability zones (§3.2.2).
	famSpikes map[market.Family][]spike
	families  []market.Family
}

type poolState struct {
	id       market.PoolID
	region   *regionState
	rng      *rand.Rand
	capacity int
	hot      bool

	noise        float64
	spikes       []spike
	rg0          float64
	rgPhase      float64
	diurnalPhase float64
	// regJitter scales region-wide flash crowds for this pool, so zones
	// of the same family saturate together but not identically (§5.2.3).
	regJitter float64

	cur PoolDemand
}

type marketState struct {
	id     market.SpotID
	pool   *poolState
	rng    *rand.Rand
	params MarketParams

	demandBase float64
	noise      float64
	scaleNoise float64
	spikes     []spike

	cur MarketState
}

// Model generates demand for every pool and spot market in a catalog.
// It is advanced tick by tick with Step and read with the accessor
// methods. A Model is not safe for concurrent mutation; the simulator
// drives it from a single goroutine.
type Model struct {
	cat     *market.Catalog
	cfg     Config
	tickSec float64

	regions   map[market.Region]*regionState
	pools     []*poolState
	poolIdx   map[market.PoolID]int
	markets   []*marketState
	marketIdx map[market.SpotID]int
}

// NewModel builds a demand model over the catalog.
func NewModel(cat *market.Catalog, cfg Config) (*Model, error) {
	if cfg.Tick <= 0 {
		return nil, fmt.Errorf("demand: non-positive tick %v", cfg.Tick)
	}
	if cfg.Profiles == nil {
		cfg.Profiles = DefaultProfiles()
	}
	if cfg.BaseCapacityUnits <= 0 {
		cfg.BaseCapacityUnits = defaultBaseCapacityUnits
	}
	m := &Model{
		cat:       cat,
		cfg:       cfg,
		tickSec:   cfg.Tick.Seconds(),
		regions:   make(map[market.Region]*regionState, len(cat.Regions())),
		poolIdx:   make(map[market.PoolID]int, len(cat.Pools())),
		marketIdx: make(map[market.SpotID]int, len(cat.SpotMarkets())),
	}

	for _, r := range cat.Regions() {
		prof, ok := cfg.Profiles[r]
		if !ok {
			prof = DefaultProfiles()["sa-east-1"]
		}
		m.regions[r] = &regionState{
			prof:      prof,
			rng:       seededRNG(cfg.Seed, "region:"+string(r)),
			tzHour:    regionTZ(r),
			famSpikes: make(map[market.Family][]spike),
			families:  cat.Families(),
		}
	}

	hot := make(map[market.PoolID]bool, len(cfg.HotPools))
	for _, pid := range cfg.HotPools {
		hot[pid] = true
	}
	for _, pid := range cat.Pools() {
		rs := m.regions[pid.Zone.RegionOf()]
		rng := seededRNG(cfg.Seed, "pool:"+pid.String())
		ps := &poolState{
			id:           pid,
			region:       rs,
			rng:          rng,
			capacity:     int(float64(cfg.BaseCapacityUnits) * rs.prof.PoolScale),
			hot:          hot[pid],
			rg0:          0.30 + 0.18*rng.Float64(),
			rgPhase:      rng.Float64() * 2 * math.Pi,
			diurnalPhase: (rng.Float64() - 0.5) * 1.5, // hours of local jitter
			regJitter:    0.4 + rng.Float64(),
		}
		m.poolIdx[pid] = len(m.pools)
		m.pools = append(m.pools, ps)
	}

	forced := make(map[market.SpotID]bool, len(cfg.ForceVolatile))
	for _, id := range cfg.ForceVolatile {
		forced[id] = true
	}
	for _, sid := range cat.SpotMarkets() {
		ps := m.pools[m.poolIdx[sid.Pool()]]
		rng := seededRNG(cfg.Seed, "market:"+sid.String())
		share := m.supplyShare(sid)
		volatile := rng.Float64() < 0.15 || forced[sid]
		sigmaClass := rng.IntN(2) // 0 or 1
		if volatile {
			sigmaClass = 2
		}
		prof := ps.region.prof
		ms := &marketState{
			id:   sid,
			pool: ps,
			rng:  rng,
			params: MarketParams{
				SupplyShare: share,
				SigmaClass:  sigmaClass,
				FloorFrac:   0.06 + 0.08*rng.Float64(),
				CNABase:     prof.SpotCNABase * (0.7 + 0.6*rng.Float64()),
				Volatile:    volatile,
			},
			demandBase: 0.35 * share,
			scaleNoise: 0,
		}
		m.marketIdx[sid] = len(m.markets)
		m.markets = append(m.markets, ms)
	}
	return m, nil
}

// supplyShare computes the static share of the pool's spot capacity
// attributed to market sid: smaller types and the Linux platform carry more
// of the demand.
func (m *Model) supplyShare(sid market.SpotID) float64 {
	typeWeight := func(t market.InstanceType) float64 {
		u, err := m.cat.Units(t)
		if err != nil {
			return 1
		}
		return 1 / math.Sqrt(float64(u))
	}
	prodWeight := map[market.Product]float64{
		market.ProductLinux:   0.70,
		market.ProductWindows: 0.20,
		market.ProductSUSE:    0.10,
	}
	total := 0.0
	for _, t := range m.cat.FamilyTypes(sid.Type.Family()) {
		for _, p := range market.Products {
			total += typeWeight(t) * prodWeight[p]
		}
	}
	return typeWeight(sid.Type) * prodWeight[sid.Product] / total
}

// Step advances every demand process to instant now. Callers must advance
// monotonically in increments of the configured tick.
func (m *Model) Step(now time.Time) {
	for _, rs := range m.regions {
		m.stepRegion(rs, now)
	}
	for _, ps := range m.pools {
		m.stepPool(ps, now)
	}
	for _, ms := range m.markets {
		m.stepMarket(ms, now)
	}
}

func (m *Model) stepRegion(rs *regionState, now time.Time) {
	rs.noise = m.ar1(rs.noise, rs.rng, rs.prof.Volatility)

	// Region-wide flash crowds arrive per family; they make the same
	// family saturate in several availability zones at once (§5.2.3).
	// Regional spikes are smaller-bodied than local ones so that the
	// largest spikes are AZ-local, which is what makes the cross-AZ
	// coupling of Fig 5.8 fall as spike size grows.
	ratePerTick := rs.prof.SpikeRatePerDay * rs.prof.RegionalShare * m.tickSec / 86400
	for _, f := range rs.families {
		rs.famSpikes[f] = pruneSpikes(rs.famSpikes[f], now)
		if rs.rng.Float64() < ratePerTick {
			mag := math.Exp(math.Log(0.05) + 0.6*normFloat(rs.rng))
			dur := spikeDuration(rs.rng)
			rs.famSpikes[f] = append(rs.famSpikes[f], spike{start: now, end: now.Add(dur), mag: mag})
		}
	}
}

func (m *Model) stepPool(ps *poolState, now time.Time) {
	prof := ps.region.prof
	ps.noise = m.ar1(ps.noise, ps.rng, prof.Volatility)
	ps.spikes = pruneSpikes(ps.spikes, now)

	// AZ-local flash crowds: heavier-tailed magnitudes than regional ones.
	localRate := prof.SpikeRatePerDay * (1 - prof.RegionalShare) * m.tickSec / 86400
	if ps.hot {
		localRate *= 6
	}
	if ps.rng.Float64() < localRate {
		mag := math.Exp(math.Log(0.07) + 0.9*normFloat(ps.rng))
		dur := spikeDuration(ps.rng)
		if ps.hot {
			mag *= 2
			dur *= 4
		}
		ps.spikes = append(ps.spikes, spike{start: now, end: now.Add(dur), mag: mag})
	}

	d := diurnal(now, ps.region.tzHour+ps.diurnalPhase)
	w := weekly(now)

	// Reservations drift on a monthly cycle; running reserved instances
	// follow the day.
	tDays := float64(now.Unix()) / 86400
	rg := ps.rg0 + 0.04*math.Sin(2*math.Pi*tDays/30+ps.rgPhase)
	rrun := rg * (0.55 + 0.20*d + 0.03*ps.noise)
	rrun = clamp(rrun, 0.2*rg, rg)

	headroom := 1 - rg

	spikeBoost := 0.0
	for _, s := range ps.spikes {
		spikeBoost += s.effectiveMag(now)
	}
	for _, s := range ps.region.famSpikes[ps.id.Family] {
		spikeBoost += s.effectiveMag(now) * ps.regJitter
	}

	// Hot pools ignore the region's provisioning: they are chronically
	// tight no matter how healthy the region is (the d2/g2 pools of the
	// case studies sit in otherwise well-provisioned us-east-1).
	prov := prof.Provision
	if ps.hot {
		prov = 0.85
	}
	util := (0.70 + 0.16*d) * w
	util *= 1 + prof.RegionalShare*ps.region.noise + (1-prof.RegionalShare)*ps.noise
	util = util/prov + spikeBoost

	ps.cur = PoolDemand{
		ReservedGranted: rg,
		ReservedRunning: rrun,
		OnDemandDesired: clamp(headroom*util, 0, 1.2),
	}
}

func (m *Model) stepMarket(ms *marketState, now time.Time) {
	prof := ms.pool.region.prof
	ms.noise = m.ar1(ms.noise, ms.rng, 0.18)
	ms.scaleNoise = m.ar1(ms.scaleNoise, ms.rng, 0.55)
	ms.spikes = pruneSpikes(ms.spikes, now)

	rate := prof.MarketSpikeRatePerDay
	if ms.params.Volatile {
		rate *= 3
	}
	if ms.rng.Float64() < rate*m.tickSec/86400 {
		mag := math.Exp(math.Log(2.0) + 1.3*normFloat(ms.rng))
		ms.spikes = append(ms.spikes, spike{start: now, end: now.Add(spikeDuration(ms.rng)), mag: mag})
	}

	d := diurnal(now, ms.pool.region.tzHour)
	spikeMult := 1.0
	for _, s := range ms.spikes {
		spikeMult += s.effectiveMag(now)
	}

	ms.cur = MarketState{
		DemandFrac: ms.demandBase * (1 + 0.25*d) * math.Exp(ms.noise) * spikeMult,
		PriceScale: math.Exp(0.18 * ms.scaleNoise),
	}
}

// ar1 advances a zero-mean AR(1) process with ~3 h correlation time and
// stationary standard deviation sigma.
func (m *Model) ar1(x float64, rng *rand.Rand, sigma float64) float64 {
	rho := math.Exp(-m.tickSec / (3 * 3600))
	return rho*x + sigma*math.Sqrt(1-rho*rho)*normFloat(rng)
}

// Pool accessors ------------------------------------------------------------

// PoolCount returns the number of capacity pools.
func (m *Model) PoolCount() int { return len(m.pools) }

// PoolIndex returns the dense index of pool id, or an error for unknown
// pools.
func (m *Model) PoolIndex(id market.PoolID) (int, error) {
	i, ok := m.poolIdx[id]
	if !ok {
		return 0, fmt.Errorf("demand: unknown pool %v", id)
	}
	return i, nil
}

// PoolIDAt returns the pool ID at dense index i.
func (m *Model) PoolIDAt(i int) market.PoolID { return m.pools[i].id }

// PoolAt returns the current demand of the pool at dense index i.
func (m *Model) PoolAt(i int) PoolDemand { return m.pools[i].cur }

// PoolCapacity returns the physical capacity (in units) of the pool at
// dense index i.
func (m *Model) PoolCapacity(i int) int { return m.pools[i].capacity }

// Market accessors ----------------------------------------------------------

// MarketCount returns the number of spot markets.
func (m *Model) MarketCount() int { return len(m.markets) }

// MarketIndex returns the dense index of spot market id, or an error for
// unknown markets.
func (m *Model) MarketIndex(id market.SpotID) (int, error) {
	i, ok := m.marketIdx[id]
	if !ok {
		return 0, fmt.Errorf("demand: unknown market %v", id)
	}
	return i, nil
}

// MarketIDAt returns the spot market ID at dense index i.
func (m *Model) MarketIDAt(i int) market.SpotID { return m.markets[i].id }

// MarketAt returns the current dynamic demand of the market at dense
// index i.
func (m *Model) MarketAt(i int) MarketState { return m.markets[i].cur }

// MarketPoolIndex returns the dense pool index backing market i.
func (m *Model) MarketPoolIndex(i int) int { return m.poolIdx[m.markets[i].pool.id] }

// Params returns the static bid-side parameters of the market at dense
// index i.
func (m *Model) Params(i int) MarketParams { return m.markets[i].params }

// Helpers --------------------------------------------------------------------

// diurnal returns a smooth [-1, 1] day-cycle factor peaking at 14:00 local
// time for the given UTC offset in hours.
func diurnal(now time.Time, tzHour float64) float64 {
	h := float64(now.Hour()) + float64(now.Minute())/60 + tzHour
	return math.Sin(2 * math.Pi * (h - 8) / 24)
}

// weekly returns the weekday load factor: full load on weekdays, reduced on
// weekends.
func weekly(now time.Time) float64 {
	switch now.Weekday() {
	case time.Saturday, time.Sunday:
		return 0.86
	default:
		return 1.0
	}
}

// spikeDuration samples a flash-crowd duration: mostly minutes, with a
// heavy multi-hour tail, reproducing the outage-duration CDF of Fig 5.9
// (~83% of outages under an hour, ~5% over ten hours).
func spikeDuration(rng *rand.Rand) time.Duration {
	var minutes float64
	if rng.Float64() < 0.82 {
		minutes = math.Exp(math.Log(12) + 1.0*normFloat(rng))
	} else {
		minutes = math.Exp(math.Log(170) + 1.5*normFloat(rng))
	}
	if minutes < 2 {
		minutes = 2
	}
	return time.Duration(minutes * float64(time.Minute))
}

func pruneSpikes(ss []spike, now time.Time) []spike {
	out := ss[:0]
	for _, s := range ss {
		if s.end.After(now) {
			out = append(out, s)
		}
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// normFloat draws a standard normal variate.
func normFloat(rng *rand.Rand) float64 { return rng.NormFloat64() }

// seededRNG derives an independent, reproducible PCG stream for a named
// component from the study seed.
func seededRNG(seed uint64, name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return rand.New(rand.NewPCG(seed, h.Sum64()))
}

// regionTZ returns the rough UTC offset of a region, used to phase its
// diurnal cycle.
func regionTZ(r market.Region) float64 {
	switch r {
	case "us-east-1":
		return -5
	case "us-west-1", "us-west-2":
		return -8
	case "eu-west-1":
		return 0
	case "eu-central-1":
		return 1
	case "ap-northeast-1":
		return 9
	case "ap-southeast-1":
		return 8
	case "ap-southeast-2":
		return 10
	case "sa-east-1":
		return -3
	default:
		return 0
	}
}
