package replica

import (
	"strings"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/store"
)

// The cursor round-trip and its skip arithmetic, without a stream: a
// cursor encoded at one position must load back with the same identity
// (salt, token, leader generation, clock), and loadCursor must arm the
// skip counters so that records the recovered store holds beyond the
// cursor are counted off, while a cursor that claims more than the
// store holds (a machine crash that ate flushed bytes) clamps instead
// of double-applying.
func TestCursorRoundTripAndSkipArithmetic(t *testing.T) {
	db, err := store.Open(t.TempDir(), store.PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p := db.Persister()
	defer p.Close()

	ids := market.New().SpotMarkets()[:2]
	at := time.Date(2015, 9, 1, 12, 0, 0, 0, time.UTC)
	appendN := func(id market.SpotID, n int) uint64 {
		for i := 0; i < n; i++ {
			db.AppendProbes([]store.ProbeRecord{{
				At: at.Add(time.Duration(i) * time.Minute), Market: id,
				Kind: store.ProbeOnDemand, Trigger: store.TriggerRecheck, Cost: 0.01,
			}})
		}
		return db.Generation(id)
	}
	gen0, gen1 := appendN(ids[0], 5), appendN(ids[1], 3)
	if gen0 == 0 || gen1 == 0 {
		t.Fatalf("appends did not advance generations: %d, %d", gen0, gen1)
	}

	cfg := Config{Leader: "http://127.0.0.1:9", DB: db, Persist: p}
	r1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1.salt.Store(0x1234abcd5678ef90)
	r1.saltKnown.Store(true)
	r1.leaderGen.Store(77)
	r1.advanceClock(at)
	r1.mu.Lock()
	r1.lastID = "17-245"
	r1.mu.Unlock()
	// Market 0's cursor count trails its recovered generation by 2 (the
	// normal crash gap: records flushed after the cursor was written).
	// Market 1's count exceeds its generation by 3 (flushed bytes lost
	// to a machine crash) and must clamp.
	r1.counts = map[string]uint64{
		ids[0].String(): gen0 - 2,
		ids[1].String(): gen1 + 3,
	}
	data := r1.encodeCursor()
	if data == nil {
		t.Fatal("encodeCursor returned nil")
	}
	if err := p.SaveCursor(data); err != nil {
		t.Fatal(err)
	}

	r2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.salt.Load(); got != 0x1234abcd5678ef90 {
		t.Errorf("salt = %#x, want %#x", got, uint64(0x1234abcd5678ef90))
	}
	if !r2.saltKnown.Load() {
		t.Error("salt not marked known after cursor load")
	}
	if got := r2.leaderGen.Load(); got != 77 {
		t.Errorf("leaderGen = %d, want 77", got)
	}
	if !r2.Clock().Equal(at) {
		t.Errorf("clock = %v, want %v", r2.Clock(), at)
	}
	if r2.resumeID != "17-245" {
		t.Errorf("resumeID = %q, want %q", r2.resumeID, "17-245")
	}
	if got := r2.counts[ids[0].String()]; got != gen0-2 {
		t.Errorf("counts[%s] = %d, want %d", ids[0], got, gen0-2)
	}
	// Skip = recovered − count: market 0 skips exactly the 2 records the
	// store holds past the cursor; market 1 clamps recovered up to the
	// cursor count so the lost records stay lost instead of reappearing
	// as duplicates.
	if got := r2.recovered[ids[0].String()]; got != gen0 {
		t.Errorf("recovered[%s] = %d, want %d (skip of %d)", ids[0], got, gen0, 2)
	}
	if got := r2.recovered[ids[1].String()]; got != gen1+3 {
		t.Errorf("recovered[%s] = %d, want clamped %d", ids[1], got, gen1+3)
	}

	// A corrupt cursor must refuse to construct rather than guess at a
	// stream position.
	if err := p.SaveCursor([]byte("{broken")); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "decode cursor") {
		t.Errorf("corrupt cursor error = %v, want decode failure", err)
	}
	if err := p.SaveCursor([]byte(`{"version":999}` + "\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version cursor error = %v, want version failure", err)
	}
}
