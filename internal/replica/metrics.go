package replica

import (
	"time"

	"spotlight/internal/obs"
)

// EnableMetrics registers the replicator's health as scrape-time
// collectors: every series reads an atomic the apply/poll loops already
// maintain, so replication itself takes zero extra instructions. Safe
// before or after Start; a nil registry is a no-op.
func (r *Replicator) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("spotlight_replica_applied_total",
		"Records applied from the leader's event stream.",
		func() float64 { return float64(r.applied.Load()) })
	reg.CounterFunc("spotlight_replica_skipped_total",
		"Stream records skipped because recovery already held them.",
		func() float64 { return float64(r.skipped.Load()) })
	reg.CounterFunc("spotlight_replica_reconnects_total",
		"Watch-stream reconnects (hello frames after the first).",
		func() float64 { return float64(r.reconnects.Load()) })
	reg.CounterFunc("spotlight_replica_resyncs_total",
		"Reconnects resumed via windowed-index resync (at-least-once gap).",
		func() float64 { return float64(r.resyncs.Load()) })
	reg.GaugeFunc("spotlight_replica_lag_records",
		"Leader generation minus local generation (records behind).",
		func() float64 {
			local := r.cfg.DB.GlobalGeneration()
			leader := r.leaderGen.Load()
			if leader > local {
				return float64(leader - local)
			}
			return 0
		})
	reg.GaugeFunc("spotlight_replica_connected",
		"1 while the watch stream has framed within StaleAfter, else 0.",
		func() float64 {
			if t := r.lastFrame.Load(); t != 0 && time.Since(time.Unix(0, t)) < r.cfg.StaleAfter {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("spotlight_replica_leader_generation",
		"Newest leader generation observed (events and health polls).",
		func() float64 { return float64(r.leaderGen.Load()) })
}
