package replica

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/internal/store"
)

// ingestRound appends one round of all record families at the given
// simulated instant, the same mix the convergence test uses.
func ingestRound(db *store.Store, ids []market.SpotID, round int, at time.Time) {
	var probes []store.ProbeRecord
	for i, id := range ids {
		probes = append(probes, store.ProbeRecord{
			At: at, Market: id, Kind: store.ProbeOnDemand,
			Trigger:  store.TriggerRecheck,
			Rejected: id == ids[2] && round >= 3 && round <= 5,
			Code:     map[bool]string{true: "ICE", false: ""}[id == ids[2] && round >= 3 && round <= 5],
			Cost:     0.01,
		})
		probes = append(probes, store.ProbeRecord{
			At: at.Add(time.Minute), Market: id, Kind: store.ProbeSpot,
			Trigger: store.TriggerSpike, TriggerMarket: ids[0], SourceKind: store.ProbeSpot,
			SpikeRatio: 1.2 + 0.1*float64(round), PriceRatio: 0.4 + 0.01*float64(i),
			Bid: 0.5, Cost: 0.02,
		})
	}
	db.AppendProbes(probes)
	db.AppendSpikes([]store.SpikeEvent{
		{At: at.Add(2 * time.Minute), Market: ids[round%3], Price: 0.9, Ratio: 1.2 + 0.1*float64(round), Probed: true},
	})
	db.RecordPrices(ids[1], []store.PricePoint{{At: at.Add(3 * time.Minute), Price: 0.3 + 0.01*float64(round)}})
	if round%3 == 0 {
		db.AppendRevocations([]store.RevocationRecord{
			{At: at.Add(4 * time.Minute), Market: ids[0], Bid: 0.5, Held: time.Duration(round+1) * time.Hour},
		})
		db.AppendBidSpreads([]store.BidSpreadRecord{
			{At: at.Add(5 * time.Minute), Market: ids[1], Published: 0.3, Intrinsic: 0.35, Attempts: 2 + round},
		})
	}
}

func waitGeneration(t *testing.T, what string, db *store.Store, target uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for db.GlobalGeneration() != target {
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached generation %d (at %d)", what, target, db.GlobalGeneration())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The durable-follower crash contract: a follower whose process dies —
// no final flush, no final cursor save, and a cursor that may trail the
// recovered WAL by several batches — restarts from its data directory,
// resumes the stream from the durable cursor, counts off exactly the
// records the recovered store already holds, and converges to answers
// byte-identical (ETags included) with a follower that never crashed.
func TestDurableFollowerCrashRecovery(t *testing.T) {
	db := store.New()
	var clockNanos atomic.Int64
	clockNanos.Store(t0.UnixNano())
	setClock := func(at time.Time) { clockNanos.Store(at.UnixNano()) }
	lapi := query.NewAPI(query.NewEngine(db, market.New()), func() time.Time {
		return time.Unix(0, clockNanos.Load()).UTC()
	})
	defer lapi.Shutdown()
	srv := httptest.NewServer(lapi.Handler())
	defer srv.Close()

	var ids []market.SpotID
	for _, id := range market.New().SpotMarkets() {
		if strings.HasPrefix(string(id.Zone), "us-east-1") {
			ids = append(ids, id)
			if len(ids) == 3 {
				break
			}
		}
	}
	if len(ids) < 3 {
		t.Fatalf("catalog has %d us-east-1 spot markets, want >= 3", len(ids))
	}

	// Follower A: durable. Follower B: in-memory reference that never
	// crashes — the oracle for what A must still look like afterwards.
	dirA := t.TempDir()
	fdbA, err := store.Open(dirA, store.PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// CursorInterval 1ms: every drained batch flushes and saves, so the
	// on-disk WAL tracks the in-memory store closely and the phase-1
	// cursor rewind below produces a real store-ahead-of-cursor gap.
	repA, err := New(Config{Leader: srv.URL, DB: fdbA, Persist: fdbA.Persister(),
		Poll: 25 * time.Millisecond, CursorInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := repA.Start(); err != nil {
		t.Fatal(err)
	}
	fdbB := store.New()
	repB, err := New(Config{Leader: srv.URL, DB: fdbB, Poll: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := repB.Start(); err != nil {
		t.Fatal(err)
	}
	defer repB.Close()
	for _, rep := range []*Replicator{repA, repB} {
		select {
		case <-rep.Ready():
		case <-time.After(10 * time.Second):
			t.Fatal("replicator never became ready")
		}
	}

	// Phase 1: ingest, let both followers drain, and capture the durable
	// cursor at this position — it becomes the stale cursor of the crash.
	for round := 0; round < 6; round++ {
		setClock(t0.Add(time.Duration(round) * 10 * time.Minute))
		ingestRound(db, ids, round, t0.Add(time.Duration(round)*10*time.Minute))
		time.Sleep(5 * time.Millisecond)
	}
	waitGeneration(t, "follower A", fdbA, db.GlobalGeneration())
	waitGeneration(t, "follower B", fdbB, db.GlobalGeneration())
	time.Sleep(50 * time.Millisecond) // let the last batch's cursor save land
	staleCursor, err := os.ReadFile(filepath.Join(dirA, "cursor.json"))
	if err != nil {
		t.Fatalf("no durable cursor after first apply: %v", err)
	}

	// Phase 2: more ingest, then kill A the hard way: Abandon drops the
	// persister exactly like process death (no flush, no clean marker),
	// and rewinding cursor.json to the phase-1 capture recreates the
	// worst legal crash shape — recovered WAL several batches ahead of
	// the cursor, so resume re-delivers records the store already holds.
	for round := 6; round < 12; round++ {
		setClock(t0.Add(time.Duration(round) * 10 * time.Minute))
		ingestRound(db, ids, round, t0.Add(time.Duration(round)*10*time.Minute))
		time.Sleep(5 * time.Millisecond)
	}
	waitGeneration(t, "follower A", fdbA, db.GlobalGeneration())
	time.Sleep(50 * time.Millisecond) // let the last batch flush before the "crash"
	fdbA.Persister().Abandon()
	repA.Close()
	if err := os.WriteFile(filepath.Join(dirA, "cursor.json"), staleCursor, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart A from the crashed directory.
	fdbA2, err := store.Open(dirA, store.PersistOptions{})
	if err != nil {
		t.Fatalf("reopen crashed data dir: %v", err)
	}
	if fdbA2.GlobalGeneration() == 0 {
		t.Fatal("recovered store is empty; WAL replay failed")
	}
	repA2, err := New(Config{Leader: srv.URL, DB: fdbA2, Persist: fdbA2.Persister(),
		Poll: 25 * time.Millisecond, CursorInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := repA2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		repA2.Close()
		fdbA2.Persister().Close()
	}()
	select {
	case <-repA2.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("restarted replicator never became ready")
	}

	// Phase 3: fresh ingest after the restart, then quiesce everyone at
	// the same final instant.
	for round := 12; round < 16; round++ {
		setClock(t0.Add(time.Duration(round) * 10 * time.Minute))
		ingestRound(db, ids, round, t0.Add(time.Duration(round)*10*time.Minute))
		time.Sleep(5 * time.Millisecond)
	}
	now := t0.Add(24 * time.Hour)
	setClock(now)
	waitGeneration(t, "restarted follower A", fdbA2, db.GlobalGeneration())
	waitGeneration(t, "follower B", fdbB, db.GlobalGeneration())
	deadline := time.Now().Add(15 * time.Second)
	for !repA2.Clock().Equal(now) || !repB.Clock().Equal(now) {
		if time.Now().After(deadline) {
			t.Fatalf("clocks never converged: A %v B %v want %v", repA2.Clock(), repB.Clock(), now)
		}
		time.Sleep(20 * time.Millisecond)
	}

	if st := repA2.Status(); st.Resyncs != 0 {
		t.Errorf("restarted follower resyncs = %d, want 0 (cursor resume must be exactly-once, not a windowed resync)", st.Resyncs)
	}

	// Serve both followers the way daemon follower mode does and demand
	// byte-identical answers — bodies and ETags — from the crashed-and-
	// recovered follower, the never-crashed follower, and the leader.
	serve := func(fdb *store.Store, rep *Replicator) *httptest.Server {
		salt, ok := rep.Salt()
		if !ok {
			t.Fatal("salt never learned")
		}
		fapi := query.NewAPI(query.NewEngine(fdb, market.New()), rep.Clock)
		t.Cleanup(fapi.Shutdown)
		fapi.SetETagSalt(salt)
		s := httptest.NewServer(fapi.Handler())
		t.Cleanup(s.Close)
		return s
	}
	srvA, srvB := serve(fdbA2, repA2), serve(fdbB, repB)

	from, to := t0.Format(time.RFC3339), now.Format(time.RFC3339)
	paths := []string{
		"/v1/summary",
		"/v1/stable?region=us-east-1&n=5&from=" + from + "&to=" + to,
		"/v1/volatile?region=us-east-1&n=5&from=" + from + "&to=" + to,
		"/v1/unavailability?kind=od&from=" + from + "&to=" + to + "&market=" + url.QueryEscape(ids[2].String()),
		"/v1/prices?from=" + from + "&to=" + to + "&market=" + url.QueryEscape(ids[1].String()),
		"/v1/outages?from=" + from + "&to=" + to + "&market=" + url.QueryEscape(ids[2].String()),
	}
	for _, path := range paths {
		ls, lbody, letag := fetch(t, srv.URL+path, "", "")
		as, abody, aetag := fetch(t, srvA.URL+path, "", "")
		bs, bbody, betag := fetch(t, srvB.URL+path, "", "")
		if ls != http.StatusOK {
			t.Fatalf("%s: leader status %d: %s", path, ls, lbody)
		}
		if as != ls || abody != lbody {
			t.Errorf("%s: recovered follower body diverged from leader\nleader:    %d %.200s\nrecovered: %d %.200s", path, ls, lbody, as, abody)
		}
		if bs != ls || bbody != lbody {
			t.Errorf("%s: reference follower body diverged from leader", path)
		}
		if letag == "" || aetag != letag || betag != letag {
			t.Errorf("%s: ETag diverged: leader %q recovered %q reference %q", path, letag, aetag, betag)
		}
		if s, _, _ := fetch(t, srvA.URL+path, "", letag); s != http.StatusNotModified {
			t.Errorf("%s: recovered follower answered %d to the leader's ETag, want 304", path, s)
		}
	}
}
