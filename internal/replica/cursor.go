package replica

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"spotlight/internal/store"
)

// The durable stream cursor. A follower with a durable store persists,
// after every applied-and-flushed batch, exactly where in the leader's
// stream the flushed records end: the leader's ETag salt (the stream
// epoch), the newest resume token, and — the part that makes resume
// exactly-once — the per-market record counts at that position.
//
// Why per-market counts and not just the token: per-shard WAL recovery
// is always an exact prefix of that shard's append history, but a crash
// between a Flush and the cursor write (or a torn cursor write, which
// writeFileAtomic turns into "the previous cursor") leaves the recovered
// store *ahead* of the cursor. Resuming the stream from the cursor token
// would then re-deliver records the store already holds. The stream
// preserves per-market order, so the surplus is exactly the first
// (recovered generation − cursor count) events of each market: the
// replicator counts them off and skips them, and the follower's
// generations — and therefore its ETags — come out identical to a
// follower that never restarted.
//
// The inverse gap (cursor ahead of the recovered store) can only happen
// outside the WAL's process-crash contract (a machine crash losing
// kernel-buffered segment bytes); the skip arithmetic clamps at zero and
// the lost records stay lost, same as they would on the leader.
const cursorVersion = 1

// cursorFile is the JSON schema persisted via store.Persister.SaveCursor.
type cursorFile struct {
	Version int `json:"version"`
	// Salt is the leader's ETag salt in hex — the same rendering the
	// stream hello carries. A hello whose salt differs means the leader
	// is a different store history and the local replica is invalid.
	Salt string `json:"salt"`
	// LastEventID is the newest resume token whose records are flushed.
	LastEventID string `json:"lastEventId"`
	// LeaderGen is the newest leader generation observed.
	LeaderGen uint64 `json:"leaderGen"`
	// Clock is the newest leader instant observed.
	Clock time.Time `json:"clock"`
	// Markets maps market ID to the number of that market's records
	// applied at this stream position.
	Markets map[string]uint64 `json:"markets"`
}

// encodeCursor renders the replicator's current position.
func (r *Replicator) encodeCursor() []byte {
	r.mu.Lock()
	lastID := r.lastID
	r.mu.Unlock()
	cur := cursorFile{
		Version:     cursorVersion,
		Salt:        strconv.FormatUint(r.salt.Load(), 16),
		LastEventID: lastID,
		LeaderGen:   r.leaderGen.Load(),
		Clock:       r.Clock(),
		Markets:     r.counts, // owned by the apply goroutine calling us
	}
	data, err := json.Marshal(cur)
	if err != nil {
		return nil // map[string]uint64 + scalars cannot fail to marshal
	}
	return append(data, '\n')
}

// loadCursor recovers the stream position persisted by a previous life
// of this data directory and arms the skip counters that make resume
// exactly-once over the recovered store. Returns false when no (or an
// unreadable) cursor exists — the follower then attaches like a fresh
// one, re-tailing with Backfill.
func (r *Replicator) loadCursor(p *store.Persister) (bool, error) {
	data, ok, err := p.LoadCursor()
	if err != nil || !ok {
		return false, err
	}
	var cur cursorFile
	if err := json.Unmarshal(data, &cur); err != nil {
		return false, fmt.Errorf("replica: decode cursor: %w", err)
	}
	if cur.Version != cursorVersion {
		return false, fmt.Errorf("replica: cursor version %d is not %d", cur.Version, cursorVersion)
	}
	salt, err := strconv.ParseUint(cur.Salt, 16, 64)
	if err != nil {
		return false, fmt.Errorf("replica: cursor salt %q: %w", cur.Salt, err)
	}

	// Adopt the persisted identity immediately: the follower can mint
	// leader-compatible ETags (and close Ready) from its recovered state
	// before the stream even reattaches.
	r.salt.Store(salt)
	r.saltKnown.Store(true)
	if !cur.Clock.IsZero() {
		r.advanceClock(cur.Clock)
	}
	maxUint(&r.leaderGen, cur.LeaderGen)
	r.mu.Lock()
	r.lastID = cur.LastEventID
	r.mu.Unlock()
	r.resumeID = cur.LastEventID

	// Stream position = the cursor's counts; whatever the recovered
	// store holds beyond them was flushed after the cursor was written
	// and will be re-delivered first — count it off instead of applying
	// it twice.
	r.counts = cur.Markets
	if r.counts == nil {
		r.counts = make(map[string]uint64)
	}
	r.recovered = make(map[string]uint64)
	for _, id := range r.cfg.DB.Markets() {
		key := id.String()
		if g := r.cfg.DB.Generation(id); g > 0 {
			r.recovered[key] = g
			if r.counts[key] > g {
				// Beyond the process-crash contract (machine crash ate
				// flushed bytes): the records between g and the cursor
				// count are gone; resume past them rather than double-
				// apply whatever the stream sends next.
				r.recovered[key] = r.counts[key]
			}
		}
	}
	return true, nil
}

// persistCursor flushes the store (the durability boundary for the
// records the last apply round appended) and then records the stream
// position those records end at. Called from the apply goroutine only.
//
// Saves are throttled to one per CursorInterval (force overrides, for
// the final save on Close): the cursor write is two fsyncs, and paying
// them per drained batch caps apply throughput below what a busy leader
// produces. A cursor that trails the WAL costs nothing but a longer
// resume replay — the skip arithmetic in loadCursor absorbs the gap
// exactly — so the throttle trades a bounded amount of restart work for
// keeping pace with the stream.
func (r *Replicator) persistCursor(force bool) {
	p := r.cfg.Persist
	if p == nil {
		return
	}
	if !force && time.Since(r.lastCursorSave) < r.cfg.CursorInterval {
		return
	}
	p.NoteClock(r.Clock())
	if p.Flush() != nil {
		return // sticky durability error; keep serving from memory
	}
	if data := r.encodeCursor(); data != nil {
		if p.SaveCursor(data) == nil {
			r.lastCursorSave = time.Now()
		}
	}
}
