package replica

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spotlight/internal/market"
	"spotlight/internal/query"
	"spotlight/internal/store"
)

var t0 = time.Date(2015, 9, 1, 0, 0, 0, 0, time.UTC)

// killingWriter aborts the connection after a fixed number of SSE frames,
// simulating a flaky network path between follower and leader.
type killingWriter struct {
	http.ResponseWriter
	frames *int
	limit  int
}

func (k *killingWriter) Write(b []byte) (int, error) {
	n, err := k.ResponseWriter.Write(b)
	*k.frames += bytes.Count(b[:n], []byte("\n\n"))
	if *k.frames >= k.limit {
		k.Flush()
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (k *killingWriter) Flush() {
	if f, ok := k.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// flakyProxy kills the first `kills` watch connections after `limit`
// frames each; later connections (and every non-watch request) pass
// through untouched.
type flakyProxy struct {
	inner http.Handler
	conns atomic.Int64
	kills int64
	limit int
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v2/watch" && p.conns.Add(1) <= p.kills {
		frames := 0
		p.inner.ServeHTTP(&killingWriter{ResponseWriter: w, frames: &frames, limit: p.limit}, r)
		return
	}
	p.inner.ServeHTTP(w, r)
}

// The acceptance test for replication: a follower attached over a link
// that keeps dying mid-ingest must still converge to the leader's exact
// store — every query answer byte-identical, ETags included, so a
// leader-minted validator revalidates (304) on the follower.
func TestFollowerConvergesByteIdenticalAcrossKills(t *testing.T) {
	// Leader: a store fed directly by the test, served by the real query
	// API under a simulated clock the test controls.
	db := store.New()
	var clockNanos atomic.Int64
	clockNanos.Store(t0.UnixNano())
	setClock := func(at time.Time) { clockNanos.Store(at.UnixNano()) }
	lapi := query.NewAPI(query.NewEngine(db, market.New()), func() time.Time {
		return time.Unix(0, clockNanos.Load()).UTC()
	})
	defer lapi.Shutdown()
	proxy := &flakyProxy{inner: lapi.Handler(), kills: 4, limit: 6}
	srv := httptest.NewServer(proxy)
	defer srv.Close()

	// Follower: attaches before the leader ingests anything, so live
	// tailing plus exact ring replay covers the whole history.
	fdb := store.New()
	rep, err := New(Config{Leader: srv.URL, DB: fdb, Poll: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	select {
	case <-rep.Ready():
	case <-time.After(10 * time.Second):
		t.Fatal("replicator never became ready")
	}

	// Three catalog markets in one region, so the scoped rankings and the
	// summary all have signal.
	cat := market.New()
	var ids []market.SpotID
	for _, id := range cat.SpotMarkets() {
		if strings.HasPrefix(string(id.Zone), "us-east-1") {
			ids = append(ids, id)
			if len(ids) == 3 {
				break
			}
		}
	}
	if len(ids) < 3 {
		t.Fatalf("catalog has %d us-east-1 spot markets, want >= 3", len(ids))
	}

	// Ingest in rounds while the stream keeps dying: all five record
	// families, including an outage (rejected on-demand probes on ids[2])
	// that both sides must derive identically from probe order.
	for round := 0; round < 12; round++ {
		at := t0.Add(time.Duration(round) * 10 * time.Minute)
		setClock(at)
		var probes []store.ProbeRecord
		for i, id := range ids {
			probes = append(probes, store.ProbeRecord{
				At: at, Market: id, Kind: store.ProbeOnDemand,
				Trigger:  store.TriggerRecheck,
				Rejected: id == ids[2] && round >= 3 && round <= 5,
				Code:     map[bool]string{true: "ICE", false: ""}[id == ids[2] && round >= 3 && round <= 5],
				Cost:     0.01,
			})
			probes = append(probes, store.ProbeRecord{
				At: at.Add(time.Minute), Market: id, Kind: store.ProbeSpot,
				Trigger: store.TriggerSpike, TriggerMarket: ids[0], SourceKind: store.ProbeSpot,
				SpikeRatio: 1.2 + 0.1*float64(round), PriceRatio: 0.4 + 0.01*float64(i),
				Bid: 0.5, Cost: 0.02,
			})
		}
		db.AppendProbes(probes)
		db.AppendSpikes([]store.SpikeEvent{
			{At: at.Add(2 * time.Minute), Market: ids[round%3], Price: 0.9, Ratio: 1.2 + 0.1*float64(round), Probed: true},
		})
		db.RecordPrices(ids[1], []store.PricePoint{{At: at.Add(3 * time.Minute), Price: 0.3 + 0.01*float64(round)}})
		if round%3 == 0 {
			db.AppendRevocations([]store.RevocationRecord{
				{At: at.Add(4 * time.Minute), Market: ids[0], Bid: 0.5, Held: time.Duration(round+1) * time.Hour},
			})
			db.AppendBidSpreads([]store.BidSpreadRecord{
				{At: at.Add(5 * time.Minute), Market: ids[1], Published: 0.3, Intrinsic: 0.35, Attempts: 2 + round},
			})
		}
		time.Sleep(10 * time.Millisecond) // let kills land mid-ingest
	}
	now := t0.Add(24 * time.Hour)
	setClock(now)

	// Quiesce: the follower must reach the leader's exact generation and
	// clock (the health poll ships the final clock step).
	deadline := time.Now().Add(15 * time.Second)
	for {
		if fdb.GlobalGeneration() == db.GlobalGeneration() && rep.Clock().Equal(now) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: gen %d vs leader %d, clock %v vs %v (status %+v)",
				fdb.GlobalGeneration(), db.GlobalGeneration(), rep.Clock(), now, rep.Status())
		}
		time.Sleep(20 * time.Millisecond)
	}

	st := rep.Status()
	if st.Resyncs != 0 {
		t.Errorf("resyncs = %d, want 0 (ring replay should have covered every kill exactly)", st.Resyncs)
	}
	if st.Reconnects < uint64(proxy.kills) {
		t.Errorf("reconnects = %d, want >= %d (one per killed connection)", st.Reconnects, proxy.kills)
	}
	if st.Lag != 0 {
		t.Errorf("lag = %d after convergence, want 0", st.Lag)
	}

	// The follower's serving stack, assembled exactly as daemon follower
	// mode does: local engine over the replicated store, leader clock,
	// leader ETag salt.
	salt, ok := rep.Salt()
	if !ok {
		t.Fatal("leader salt never learned")
	}
	fapi := query.NewAPI(query.NewEngine(fdb, market.New()), rep.Clock)
	defer fapi.Shutdown()
	fapi.SetETagSalt(salt)
	fsrv := httptest.NewServer(fapi.Handler())
	defer fsrv.Close()

	from, to := t0.Format(time.RFC3339), now.Format(time.RFC3339)
	paths := []string{
		"/v1/summary",
		"/v1/stable?region=us-east-1&n=5&from=" + from + "&to=" + to,
		"/v1/volatile?region=us-east-1&n=5&from=" + from + "&to=" + to,
		"/v1/unavailability?kind=od&from=" + from + "&to=" + to + "&market=" + url.QueryEscape(ids[2].String()),
		"/v1/prices?from=" + from + "&to=" + to + "&market=" + url.QueryEscape(ids[1].String()),
		"/v1/outages?from=" + from + "&to=" + to + "&market=" + url.QueryEscape(ids[2].String()),
		"/v1/fallback?n=3&from=" + from + "&to=" + to + "&market=" + url.QueryEscape(ids[2].String()),
	}
	for _, path := range paths {
		ls, lbody, letag := fetch(t, srv.URL+path, "", "")
		fs, fbody, fetag := fetch(t, fsrv.URL+path, "", "")
		if ls != http.StatusOK {
			t.Fatalf("%s: leader status %d: %s", path, ls, lbody)
		}
		if fs != ls || fbody != lbody {
			t.Errorf("%s: follower body diverged\nleader:   %d %.200s\nfollower: %d %.200s", path, ls, lbody, fs, fbody)
		}
		if letag == "" || fetag != letag {
			t.Errorf("%s: ETag diverged: leader %q follower %q", path, letag, fetag)
		}
		// The point of salt+clock adoption: a leader-minted validator
		// revalidates on the follower.
		if s, _, _ := fetch(t, fsrv.URL+path, "", letag); s != http.StatusNotModified {
			t.Errorf("%s: follower answered %d to the leader's ETag, want 304", path, s)
		}
	}

	batch := fmt.Sprintf(`{"queries":[{"kind":"stable","region":"us-east-1","n":5,"from":%q,"to":%q},{"kind":"summary"},{"kind":"unavailability","market":%q,"window":"24h"}]}`,
		from, to, ids[2].String())
	ls, lbody, letag := fetch(t, srv.URL+"/v2/query", batch, "")
	fs, fbody, fetag := fetch(t, fsrv.URL+"/v2/query", batch, "")
	if ls != http.StatusOK || fs != ls || fbody != lbody {
		t.Errorf("/v2/query: batch diverged\nleader:   %d %.200s\nfollower: %d %.200s", ls, lbody, fs, fbody)
	}
	if letag == "" || fetag != letag {
		t.Errorf("/v2/query: ETag diverged: leader %q follower %q", letag, fetag)
	}
	if s, _, _ := fetch(t, fsrv.URL+"/v2/query", batch, letag); s != http.StatusNotModified {
		t.Errorf("/v2/query: follower answered %d to the leader's batch ETag, want 304", s)
	}
}

// fetch GETs (or, with a body, POSTs) one URL and returns status, body,
// and ETag.
func fetch(t *testing.T, u, body, ifNoneMatch string) (int, string, string) {
	t.Helper()
	var (
		req *http.Request
		err error
	)
	if body == "" {
		req, err = http.NewRequest(http.MethodGet, u, nil)
	} else {
		req, err = http.NewRequest(http.MethodPost, u, strings.NewReader(body))
	}
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s: %v", u, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header.Get("ETag")
}
